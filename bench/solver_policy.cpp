// solver_policy — monolithic vs decompose-and-conquer spectral pipeline.
//
// The pipeline claim (ISSUE 3 acceptance): on a corpus of disjoint FFT
// graphs, the per-component pipeline performs one *small* eigensolve per
// component instead of one monolithic whole-graph eigensolve, flips
// solver tiers when components drop below the dense threshold the union
// exceeds, and reproduces the monolithic spectrum exactly. On top of the
// core pipeline, the Engine's fingerprint-keyed component cache collapses
// equal components across specs to a single eigensolve. Everything
// measured here is algorithmic (eigensolve counts, problem sizes), so the
// conclusions hold on 1 CPU.
//
// Emits BENCH_solver.json:
//
//   {"bench": "solver_policy", "scale": ...,
//    "cases": [{"name": "multi:8:fft:5", "vertices": ..., "components": ...,
//               "monolithic": {"eigensolves": 1, "solver": "dense",
//                              "seconds": ...},
//               "pipeline": {"eigensolves": 8, "seconds": ...,
//                            "tiers": [{"solver": "dense", "solves": 8,
//                                       "seconds": ...}]},
//               "speedup": ..., "max_abs_diff": ...}, ...],
//    "shared_components": {"specs": [...], "eigensolves": 1,
//                          "component_hits": 8}}
#include <cmath>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graphio;

struct TierAggregate {
  std::int64_t solves = 0;
  double seconds = 0.0;
};

struct CaseResult {
  std::string name;
  std::int64_t vertices = 0;
  int components = 0;
  std::int64_t mono_eigensolves = 0;
  std::string mono_solver;
  double mono_seconds = 0.0;
  std::int64_t pipe_eigensolves = 0;
  double pipe_seconds = 0.0;
  std::map<std::string, TierAggregate> tiers;
  double max_abs_diff = 0.0;
};

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size())
    return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

CaseResult run_case(const std::string& spec, int h) {
  const Digraph g = engine::GraphSpec::parse(spec).build();
  CaseResult result;
  result.name = spec;
  result.vertices = g.num_vertices();

  SpectralOptions mono;
  mono.decompose = false;
  mono.max_eigenvalues = h;
  const PipelineResult whole =
      SpectralPipeline(mono).run(g, LaplacianKind::kOutDegreeNormalized, h);
  result.mono_eigensolves = whole.eigensolves;
  result.mono_seconds = whole.seconds;
  result.mono_solver =
      whole.per_component.empty()
          ? "-"
          : std::string(la::to_string(whole.per_component.front().solver));

  SpectralOptions split;
  split.max_eigenvalues = h;
  const PipelineResult piped =
      SpectralPipeline(split).run(g, LaplacianKind::kOutDegreeNormalized, h);
  result.components = piped.components;
  result.pipe_eigensolves = piped.eigensolves;
  result.pipe_seconds = piped.seconds;
  for (const ComponentSolve& solve : piped.per_component) {
    if (!solve.solver_ran) continue;
    TierAggregate& tier = result.tiers[std::string(la::to_string(solve.solver))];
    ++tier.solves;
    tier.seconds += solve.seconds;
  }
  result.max_abs_diff = max_abs_diff(whole.values, piped.values);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Solver policy: monolithic vs per-component spectral pipeline",
      "decompose-and-conquer pipeline (no paper figure)", args);

  // h = 32 eigenvalues: comfortably above every optimal k the evaluation
  // graphs produce (bench/ablation_k) while keeping the monolithic
  // Lanczos baseline affordable at bench scale.
  const int h = 32;
  std::vector<std::string> cases = {"multi:8:fft:4"};
  if (args.scale != BenchScale::kQuick) {
    cases.push_back("multi:8:fft:5");  // union dense, components dense
    cases.push_back("multi:8:fft:6");  // union above the dense threshold
    cases.push_back("multi:4:bhk:7");
  }
  if (args.scale == BenchScale::kPaper) {
    cases.push_back("multi:8:fft:7");
    cases.push_back("multi:16:matmul:5");
  }

  Table table({"case", "n", "comps", "mono solver", "mono solves", "mono s",
               "pipe solves", "pipe s", "speedup", "max |diff|"});
  std::vector<CaseResult> results;
  for (const std::string& spec : cases) {
    CaseResult r = run_case(spec, h);
    table.add_row(
        {r.name, format_int(r.vertices), format_int(r.components),
         r.mono_solver, format_int(r.mono_eigensolves),
         format_double(r.mono_seconds, 3), format_int(r.pipe_eigensolves),
         format_double(r.pipe_seconds, 3),
         format_double(r.pipe_seconds > 0.0 ? r.mono_seconds / r.pipe_seconds
                                            : 0.0,
                       2),
         format_double(r.max_abs_diff, 12)});
    results.push_back(std::move(r));
  }
  bench::finish(table, args);

  // Cross-spec component sharing through the Engine: the second request's
  // components are all content-equal to the first's graph, so the shared
  // component cache turns the whole union into hits.
  const std::string base_spec =
      args.scale == BenchScale::kQuick ? "fft:4" : "fft:5";
  const std::string union_spec = "multi:8:" + base_spec;
  engine::Engine eng;
  engine::BoundRequest request;
  request.spec = base_spec;
  request.memories = {8.0};
  request.methods = {"spectral"};
  eng.evaluate(request);
  request.spec = union_spec;
  const engine::BoundReport shared = eng.evaluate(request);
  std::cout << "shared components: " << base_spec << " then " << union_spec
            << " -> eigensolves " << shared.cache.eigensolves
            << ", component hits " << shared.cache.component_hits << "\n\n";

  io::JsonWriter w;
  w.begin_object();
  w.key("bench").value("solver_policy");
  w.key("scale").value(to_string(args.scale));
  w.key("eigenvalues").value(static_cast<std::int64_t>(h));
  w.key("cases").begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("vertices").value(r.vertices);
    w.key("components").value(static_cast<std::int64_t>(r.components));
    w.key("monolithic").begin_object();
    w.key("eigensolves").value(r.mono_eigensolves);
    w.key("solver").value(r.mono_solver);
    w.key("seconds").value(r.mono_seconds);
    w.end_object();
    w.key("pipeline").begin_object();
    w.key("eigensolves").value(r.pipe_eigensolves);
    w.key("seconds").value(r.pipe_seconds);
    w.key("tiers").begin_array();
    for (const auto& [solver, tier] : r.tiers) {
      w.begin_object();
      w.key("solver").value(solver);
      w.key("solves").value(tier.solves);
      w.key("seconds").value(tier.seconds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("speedup").value(
        r.pipe_seconds > 0.0 ? r.mono_seconds / r.pipe_seconds : 0.0);
    w.key("max_abs_diff").value(r.max_abs_diff);
    w.end_object();
  }
  w.end_array();
  w.key("shared_components").begin_object();
  w.key("specs").begin_array();
  w.value(base_spec);
  w.value(union_spec);
  w.end_array();
  w.key("eigensolves").value(shared.cache.eigensolves);
  w.key("component_hits").value(shared.cache.component_hits);
  w.end_object();
  w.end_object();

  std::ofstream json_out("BENCH_solver.json");
  json_out << w.str() << "\n";
  std::cout << "wrote BENCH_solver.json\n";
  return 0;
}
