// Ablation (paper Section 6.3): the partitioned convex min-cut variant.
//
// Elango et al. propose cutting the runtime of the O(n⁵) baseline by
// partitioning the graph into pieces of ~2M vertices and summing
// per-piece bounds. The paper reports that this collapses to the trivial
// bound 0 on complex graphs, and therefore runs the baseline
// unpartitioned. This bench reproduces that observation across families
// and part sizes.
//
// Shape to expect: partitioned bound 0 (or near 0) wherever the full
// sweep is positive; larger parts recover some signal at rapidly growing
// cost.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Ablation: partitioned convex min-cut (paper's triviality observation)",
      "Jain & Zaharia SPAA'20, Section 6.3", args);

  struct Case {
    std::string name;
    Digraph graph;
    double memory;
  };
  std::vector<Case> cases;
  cases.push_back({"fft l=6 M=4", builders::fft(6), 4.0});
  cases.push_back({"bhk l=8 M=8", builders::bhk_hypercube(8), 8.0});
  cases.push_back({"matmul n=6 M=8", builders::naive_matmul(6), 8.0});
  if (args.scale != BenchScale::kQuick)
    cases.push_back({"fft l=7 M=4", builders::fft(7), 4.0});

  Table table({"case", "n", "full sweep", "parts 2M", "parts 8M",
               "parts 32M"});
  for (const Case& c : cases) {
    const auto full = flow::convex_mincut_bound(c.graph, c.memory);
    auto partitioned = [&](double factor) {
      const auto part_size =
          static_cast<std::int64_t>(factor * c.memory);
      const auto r = flow::partitioned_convex_mincut_bound(
          c.graph, c.memory, part_size);
      return format_double(r.bound, 1);
    };
    table.add_row({c.name, format_int(c.graph.num_vertices()),
                   format_double(full.bound, 1), partitioned(2.0),
                   partitioned(8.0), partitioned(32.0)});
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * 'parts 2M' column is ~0 where 'full sweep' is positive\n"
               "  * growing the parts recovers signal monotonically\n";
  return 0;
}
