// Microbenchmarks: max-flow substrate and the per-vertex wavefront cut
// that the convex min-cut baseline runs n times (google-benchmark).
#include <benchmark/benchmark.h>

#include "graphio/flow/convex_mincut.hpp"
#include "graphio/flow/dinic.hpp"
#include "graphio/flow/push_relabel.hpp"
#include "graphio/graph/builders.hpp"

namespace {

using namespace graphio;

void BM_DinicUnitBipartite(benchmark::State& state) {
  // Dense bipartite unit network: classic Dinic stress shape.
  const std::int64_t k = state.range(0);
  for (auto _ : state) {
    flow::Dinic net(2 * k + 2);
    const std::int64_t s = 2 * k;
    const std::int64_t t = 2 * k + 1;
    for (std::int64_t i = 0; i < k; ++i) {
      net.add_edge(s, i, 1);
      net.add_edge(k + i, t, 1);
      for (std::int64_t j = 0; j < k; ++j) net.add_edge(i, k + j, 1);
    }
    benchmark::DoNotOptimize(net.max_flow(s, t));
  }
}
BENCHMARK(BM_DinicUnitBipartite)->Arg(32)->Arg(128);

void BM_PushRelabelUnitBipartite(benchmark::State& state) {
  // Same shape as BM_DinicUnitBipartite for a direct engine comparison.
  const std::int64_t k = state.range(0);
  for (auto _ : state) {
    flow::PushRelabel net(2 * k + 2);
    const std::int64_t s = 2 * k;
    const std::int64_t t = 2 * k + 1;
    for (std::int64_t i = 0; i < k; ++i) {
      net.add_edge(s, i, 1);
      net.add_edge(k + i, t, 1);
      for (std::int64_t j = 0; j < k; ++j) net.add_edge(i, k + j, 1);
    }
    benchmark::DoNotOptimize(net.max_flow(s, t));
  }
}
BENCHMARK(BM_PushRelabelUnitBipartite)->Arg(32)->Arg(128);

void BM_WavefrontSingleVertex(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const Digraph g = builders::fft(l);
  // A middle vertex — the hardest cuts sit mid-graph.
  const VertexId v = g.num_vertices() / 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(flow::wavefront_mincut(g, v));
}
BENCHMARK(BM_WavefrontSingleVertex)->Arg(5)->Arg(7);

void BM_WavefrontSingleVertexPushRelabel(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const Digraph g = builders::fft(l);
  const VertexId v = g.num_vertices() / 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        flow::wavefront_mincut(g, v, flow::FlowEngine::kPushRelabel));
}
BENCHMARK(BM_WavefrontSingleVertexPushRelabel)->Arg(5)->Arg(7);

void BM_ConvexMinCutFullSweep(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const Digraph g = builders::fft(l);
  for (auto _ : state) {
    auto result = flow::convex_mincut_bound(g, 4.0);
    benchmark::DoNotOptimize(result.bound);
  }
}
BENCHMARK(BM_ConvexMinCutFullSweep)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedMinCut(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const Digraph g = builders::fft(l);
  for (auto _ : state) {
    auto result = flow::partitioned_convex_mincut_bound(g, 4.0, 8);
    benchmark::DoNotOptimize(result.bound);
  }
}
BENCHMARK(BM_PartitionedMinCut)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
