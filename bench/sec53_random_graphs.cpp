// Section 5.3: Erdős–Rényi random graphs — the probabilistic closed form
// vs machine-computed spectral bounds on sampled graphs, in both regimes:
//   sparse  p = p0·log n/(n−1), p0 > 6  (graph barely connected)
//   dense   np/log n → ∞                (graph essentially regular)
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Section 5.3: Erdos-Renyi probabilistic bounds",
                      "Jain & Zaharia SPAA'20, Section 5.3", args);

  const std::int64_t n_max =
      args.scale == BenchScale::kQuick ? 400 : 1200;
  const double memory = 8.0;
  const int samples = args.scale == BenchScale::kPaper ? 5 : 3;

  {
    std::cout << "Sparse regime p = p0 log n/(n-1), p0 = 24, M=" << memory
              << " (bounds averaged over " << samples << " samples):\n";
    Table table({"n", "p", "machine Thm5 (k=2..h)", "closed form (k=2)",
                 "machine/closed"});
    for (std::int64_t n = 200; n <= n_max; n += n >= 800 ? 400 : 200) {
      const double p0 = 24.0;
      const double p =
          p0 * std::log(static_cast<double>(n)) / static_cast<double>(n - 1);
      double machine = 0.0;
      for (int s = 0; s < samples; ++s) {
        const Digraph g = builders::erdos_renyi_dag(n, p, 100 + s);
        machine += spectral_bound_plain(g, memory).bound;
      }
      machine /= samples;
      const double closed = analytic::er_sparse_bound(n, p0, memory);
      table.add_row({format_int(n), format_double(p, 4),
                     format_double(machine, 1), format_double(closed, 1),
                     format_double(machine / closed, 3)});
    }
    bench::finish(table, args);
  }

  {
    std::cout << "Dense regime p = 0.25 (np/log n large), M=" << memory
              << ":\n";
    Table table({"n", "machine Thm5", "closed form n/2-4M",
                 "machine/closed"});
    for (std::int64_t n = 200; n <= n_max; n += n >= 800 ? 400 : 200) {
      double machine = 0.0;
      for (int s = 0; s < samples; ++s) {
        const Digraph g = builders::erdos_renyi_dag(n, 0.25, 500 + s);
        machine += spectral_bound_plain(g, memory).bound;
      }
      machine /= samples;
      const double closed = analytic::er_dense_bound(n, memory);
      table.add_row({format_int(n), format_double(machine, 1),
                     format_double(closed, 1),
                     format_double(machine / closed, 3)});
    }
    bench::finish(table, args);
  }

  std::cout << "Shape checks (Section 5.3): machine bounds scale linearly "
               "in n in both regimes and\nstay within a constant of the "
               "probabilistic closed forms (which keep only leading "
               "terms).\n";
  return 0;
}
