// Figure 10: I/O lower bound for the Bellman–Held–Karp TSP dynamic
// program (boolean hypercube).
//   (top)    bound vs city count l, spectral + convex min-cut,
//            M ∈ {16, 32, 64}
//   (bottom) bound vs 2^l/l — the paper's own §5.1-derived growth term.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 10: Bellman-Held-Karp (TSP) I/O bound",
                      "Jain & Zaharia SPAA'20, Figure 10", args);

  int l_max = 13;                 // n = 8192 (Lanczos path)
  std::int64_t mincut_cap = 600;  // per-vertex max-flows explode (Fig. 11)
  double mincut_budget = 60.0;
  if (args.scale == BenchScale::kQuick) {
    l_max = 9;
    mincut_cap = 260;
    mincut_budget = 10.0;
  } else if (args.scale == BenchScale::kPaper) {
    l_max = 15;                   // the paper's full range (n = 32768)
    mincut_cap = 1100;
    mincut_budget = 3600.0;
  }

  const std::vector<double> memories{16.0, 32.0, 64.0};

  std::vector<std::string> header{"l", "n", "2^l/l"};
  for (double m : memories) {
    header.push_back("spectral M=" + format_double(m, 0));
    header.push_back("mincut M=" + format_double(m, 0));
  }
  header.push_back("closed form a=1 (M=16)");
  Table table(std::move(header));

  for (int l = 6; l <= l_max; ++l) {
    const Digraph g = builders::bhk_hypercube(l);
    std::vector<std::string> row{format_int(l), format_int(g.num_vertices()),
                                 format_double(published::bhk_growth(l), 1)};
    // One eigendecomposition serves every memory size (spectra are M-free).
    const std::vector<SpectralBound> spectral = spectral_bounds(g, memories);
    for (std::size_t i = 0; i < memories.size(); ++i) {
      const double m = memories[i];
      if (static_cast<double>(g.max_in_degree()) > m) {
        row.insert(row.end(), {"-", "-"});
        continue;
      }
      row.push_back(format_double(spectral[i].bound, 1));
      row.push_back(format_double(
          bench::mincut_or_nan(g, m, mincut_cap, mincut_budget), 1));
    }
    row.push_back(
        format_double(std::max(0.0, analytic::bhk_bound_alpha1(l, 16.0)), 1));
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks (paper, Section 6.4):\n"
               "  * spectral above mincut at equal M once l clears the "
               "in-degree rule\n"
               "  * spectral column roughly linear vs the 2^l/l column\n"
               "  * machine bound dominates the alpha=1 closed form (the "
               "solver optimizes k)\n";
  return 0;
}
