// Tightness study: how far below the truth do the lower bounds sit?
//
// On graphs small enough for the exact state-space search, J*(G) is known
// exactly, so each bound's tightness ratio bound/J* is measurable. On
// larger graphs the best simulated schedule stands in as the upper end of
// the sandwich. Not a paper figure — this quantifies what the paper's
// Figure 7-10 curves mean in absolute terms.
//
// Shape to expect: spectral ≤ J* ≤ best schedule everywhere (soundness);
// the spectral/minkut ratios rise with graph size at fixed M.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Tightness: lower bounds vs exact J* / best schedule",
                      "sandwich quantification (no paper figure)", args);

  // --- exact section: tiny graphs, true J* -------------------------------
  struct TinyCase {
    std::string name;
    Digraph graph;
    std::int64_t memory;
  };
  std::vector<TinyCase> tiny;
  tiny.push_back({"inner m=2", builders::inner_product(2), 2});
  tiny.push_back({"inner m=3", builders::inner_product(3), 2});
  tiny.push_back({"fft l=2", builders::fft(2), 2});
  tiny.push_back({"bhk l=3", builders::bhk_hypercube(3), 3});
  tiny.push_back({"bhk l=4", builders::bhk_hypercube(4), 4});
  tiny.push_back({"stencil 5x2", builders::stencil1d(5, 2), 3});
  tiny.push_back({"scan 2^2", builders::prefix_scan(2), 2});

  Table exact_table({"graph", "n", "M", "J* (exact)", "spectral", "mincut",
                     "best schedule", "annealed"});
  for (const TinyCase& c : tiny) {
    if (c.graph.num_vertices() > exact::kMaxExactVertices) continue;
    const auto truth = exact::exact_optimal_io(c.graph, c.memory);
    const double spectral =
        spectral_bound(c.graph, static_cast<double>(c.memory)).bound;
    const double mincut =
        flow::convex_mincut_bound(c.graph, static_cast<double>(c.memory))
            .bound;
    const auto upper = sim::best_schedule_io(c.graph, c.memory);
    sim::AnnealOptions anneal_options;
    anneal_options.iterations = 2000;
    const auto annealed =
        sim::anneal_schedule(c.graph, c.memory, anneal_options);
    exact_table.add_row(
        {c.name, format_int(c.graph.num_vertices()), format_int(c.memory),
         truth.complete ? format_int(truth.io) : "-",
         format_double(spectral, 1), format_double(mincut, 1),
         format_int(upper.total()), format_int(annealed.io)});
  }
  exact_table.print(std::cout);
  std::cout << "\n";

  // --- sandwich section: evaluation-family sizes --------------------------
  struct Case {
    std::string name;
    Digraph graph;
    std::int64_t memory;
  };
  std::vector<Case> cases;
  cases.push_back({"fft l=6 M=2", builders::fft(6), 2});
  cases.push_back({"fft l=8 M=2", builders::fft(8), 2});
  cases.push_back({"bhk l=9 M=16", builders::bhk_hypercube(9), 16});
  cases.push_back({"matmul n=8 M=16", builders::naive_matmul(8), 16});
  cases.push_back({"strassen n=8 M=8", builders::strassen_matmul(8), 8});
  if (args.scale == BenchScale::kPaper) {
    cases.push_back({"fft l=10 M=4", builders::fft(10), 4});
    cases.push_back({"bhk l=12 M=16", builders::bhk_hypercube(12), 16});
  }

  Table table({"graph", "n", "M", "spectral", "mincut", "best schedule",
               "annealed", "spectral/annealed"});
  for (const Case& c : cases) {
    if (c.graph.max_in_degree() > c.memory) continue;  // infeasible at M
    const double m = static_cast<double>(c.memory);
    const double spectral = spectral_bound(c.graph, m).bound;
    const double mincut = bench::mincut_or_nan(c.graph, m, 3000, 120.0);
    const auto upper = sim::best_schedule_io(c.graph, c.memory);
    // Annealing budget shrinks with graph size (each move re-simulates).
    sim::AnnealOptions anneal_options;
    anneal_options.iterations =
        c.graph.num_vertices() > 4000 ? 300 : 1500;
    const auto annealed =
        sim::anneal_schedule(c.graph, c.memory, anneal_options);
    const double ratio =
        annealed.io > 0 ? spectral / static_cast<double>(annealed.io) : 1.0;
    table.add_row({c.name, format_int(c.graph.num_vertices()),
                   format_int(c.memory), format_double(spectral, 1),
                   format_double(mincut, 1), format_int(upper.total()),
                   format_int(annealed.io), format_double(ratio, 3)});
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * every lower bound column <= J* (exact table) and <= "
               "every schedule column\n"
               "  * annealed <= best schedule (annealing refines the best "
               "heuristic order)\n"
               "  * spectral/annealed ratio shrinks with graph size at "
               "fixed M (the bound loses a log-ish factor)\n";
  return 0;
}
