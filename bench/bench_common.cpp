#include "bench_common.hpp"

#include <cmath>
#include <cstring>

namespace graphio::bench {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  args.scale = bench_scale_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      GIO_EXPECTS_MSG(i + 1 < argc, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--csv") {
      args.csv_path = next();
    } else if (arg == "--scale") {
      const std::string value = next();
      if (value == "quick")
        args.scale = BenchScale::kQuick;
      else if (value == "default")
        args.scale = BenchScale::kDefault;
      else if (value == "paper")
        args.scale = BenchScale::kPaper;
      else
        GIO_EXPECTS_MSG(false, "--scale must be quick|default|paper");
    } else {
      GIO_EXPECTS_MSG(false, "unknown argument: " + arg +
                                 " (supported: --csv <path>, --scale <s>)");
    }
  }
  return args;
}

void print_header(const std::string& title, const std::string& anchor,
                  const BenchArgs& args) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << anchor << "   scale: "
            << to_string(args.scale) << "\n\n";
}

double mincut_or_nan(const Digraph& g, double memory,
                     std::int64_t max_vertices, double budget_seconds) {
  if (g.num_vertices() > max_vertices) return std::nan("");
  flow::ConvexMinCutOptions options;
  options.time_budget_seconds = budget_seconds;
  const auto result = flow::convex_mincut_bound(g, memory, options);
  if (!result.completed) return std::nan("");
  return result.bound;
}

void finish(Table& table, const BenchArgs& args) {
  table.print(std::cout);
  if (!args.csv_path.empty()) {
    table.write_csv_file(args.csv_path);
    std::cout << "\nCSV written to " << args.csv_path << "\n";
  }
  std::cout << "\n";
}

}  // namespace graphio::bench
