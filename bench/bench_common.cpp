#include "bench_common.hpp"

#include <cmath>
#include <cstring>
#include <utility>

namespace graphio::bench {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  args.scale = bench_scale_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      GIO_EXPECTS_MSG(i + 1 < argc, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--csv") {
      args.csv_path = next();
    } else if (arg == "--scale") {
      const std::string value = next();
      if (value == "quick")
        args.scale = BenchScale::kQuick;
      else if (value == "default")
        args.scale = BenchScale::kDefault;
      else if (value == "paper")
        args.scale = BenchScale::kPaper;
      else
        GIO_EXPECTS_MSG(false, "--scale must be quick|default|paper");
    } else {
      GIO_EXPECTS_MSG(false, "unknown argument: " + arg +
                                 " (supported: --csv <path>, --scale <s>)");
    }
  }
  return args;
}

void print_header(const std::string& title, const std::string& anchor,
                  const BenchArgs& args) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << anchor << "   scale: "
            << to_string(args.scale) << "\n\n";
}

engine::Engine& shared_engine() {
  static engine::Engine instance;
  return instance;
}

engine::BoundReport run(const std::string& spec,
                        std::vector<double> memories,
                        std::vector<std::string> methods,
                        const RunOptions& options) {
  engine::BoundRequest request;
  request.spec = spec;
  request.memories = std::move(memories);
  request.methods = std::move(methods);
  request.spectral = options.spectral;
  request.mincut.time_budget_seconds = options.mincut_budget_seconds;
  if (shared_engine().graph(spec).num_vertices() >
      options.mincut_max_vertices) {
    std::erase(request.methods, std::string("mincut"));
    if (request.methods.empty()) {
      // An empty method list means "all" to the Engine — which would
      // re-enable the min-cut sweep the cap just excluded. Return an
      // empty report instead.
      engine::BoundReport report;
      report.graph = request.display_name();
      report.vertices = shared_engine().graph(spec).num_vertices();
      report.edges = shared_engine().graph(spec).num_edges();
      report.memories = request.memories;
      return report;
    }
  }
  return shared_engine().evaluate(request);
}

double cell(const engine::BoundReport& report, std::string_view method,
            double memory) {
  const engine::MethodRow* row = report.row(method, memory);
  if (row == nullptr || !row->applicable) return std::nan("");
  if (method == "mincut" && !row->converged) return std::nan("");
  return row->value;
}

double mincut_or_nan(const Digraph& g, double memory,
                     std::int64_t max_vertices, double budget_seconds) {
  if (g.num_vertices() > max_vertices) return std::nan("");
  engine::BoundRequest request;
  request.graph = g;
  request.memories = {memory};
  request.methods = {"mincut"};
  request.mincut.time_budget_seconds = budget_seconds;
  const engine::BoundReport report = shared_engine().evaluate(request);
  return cell(report, "mincut", memory);
}

void finish(Table& table, const BenchArgs& args) {
  table.print(std::cout);
  if (!args.csv_path.empty()) {
    table.write_csv_file(args.csv_path);
    std::cout << "\nCSV written to " << args.csv_path << "\n";
  }
  std::cout << "\n";
}

}  // namespace graphio::bench
