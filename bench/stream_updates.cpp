// stream_updates — incremental re-analysis vs full recompute on an
// evolving multi-component graph.
//
// The stream claim (ISSUE 4 acceptance, tightened by the ISSUE 5
// zero-copy query path and the ISSUE 8 warm-start layer): after a small
// patch, a StreamSession re-eigensolves — and re-*extracts* — only the
// components the patch touched, and each dirty solve is *warm-started*
// from the predecessor component's retained eigenbasis, so it converges
// in a handful of LOBPCG iterations instead of a cold solve. Clean
// components resolve from the fingerprint-keyed component cache without
// materializing a subgraph or recomputing a hash (subgraph_extractions
// == dirty, fingerprint_computes == 0, warm_hits == dirty), while a
// from-scratch Engine on the final graph decomposes, hashes, extracts,
// and cold-solves every component; the bounds agree exactly (the
// decomposition is exact, and with h components the merged smallest
// values are the certified per-component zeros). The corpus is a
// disjoint union of *distinct* Erdős–Rényi DAGs (distinct seeds), so
// the scratch baseline cannot dedupe equal components and honestly pays
// one eigensolve per component. Everything gated is algorithmic
// (eigensolve/extraction/iteration counts), so the conclusions hold on
// 1 CPU. The per-phase breakdown (fingerprint / extract / solve / merge)
// shows where each side's time goes: the incremental side is pinned to
// the dirty components' (warm) solve time, which is the floor.
//
// Emits BENCH_stream.json:
//
//   {"bench": "stream_updates", "scale": ..., "components": C,
//    "component_vertices": N, "vertices": ..., "memories": [2, 8],
//    "cases": [{"patch_edges": 1, "dirty_components": 1,
//               "incremental": {"seconds": ..., "eigensolves": 1,
//                               "component_hits": C-1, "warm_hits": 1,
//                               "warm_iterations_saved": ...,
//                               "subgraph_extractions": 1,
//                               "fingerprint_computes": 0,
//                               "phases": {"fingerprint": ...,
//                                          "extract": ..., "solve": ...,
//                                          "merge": ...}},
//               "scratch": {"seconds": ..., "eigensolves": C,
//                           "subgraph_extractions": C,
//                           "fingerprint_computes": C, "phases": {...}},
//               "speedup": ..., "max_abs_diff": 0}, ...],
//    "method_cases": [{"method": "partition-dp"|"mincut"|"memsim",
//                      "kind": "partition"|"mincut"|"memsim",
//                      "computes": 1, "scratch_computes": C,
//                      "fingerprint_computes": 0,
//                      "speedup": ..., "max_abs_diff": 0}, ...],
//    "restart": {"artifacts_loaded": ..., "cold_seconds": ...,
//                "warm_seconds": ..., "warm_eigensolves": 0, ...,
//                "warm_partition_runs": 0,
//                "speedup": ..., "max_abs_diff": 0},
//    "warm_start": {"dirty_components": 1, "warm_hits": 1,
//                   "cold_iterations": ..., "warm_iterations": ...,
//                   "iterations_saved": ..., "max_abs_diff": 0}}
//
// The per-method cases extend the claim beyond spectra (the store serves
// partition DP rows, min-cut sweeps and memsim rows the same way), the
// restart case certifies the disk tier (a fresh process against a warm
// --store-artifacts directory answers every method without a single
// solve of any kind), and the warm_start case isolates the eigenbasis
// payoff under forced LOBPCG: the dirty re-solve takes strictly fewer
// iterations warm than cold, at exact parity. Each claim is require()d —
// the bench fails hard, so CI gates on the executable spec, not on the
// JSON roll-up alone.
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/telemetry/metrics.hpp"

namespace {

using namespace graphio;

struct SideResult {
  double seconds = 0.0;
  std::int64_t eigensolves = 0;
  std::int64_t component_hits = 0;
  std::int64_t subgraph_extractions = 0;
  std::int64_t fingerprint_computes = 0;
  std::int64_t warm_hits = 0;
  std::int64_t warm_iterations_saved = 0;
  double fingerprint_seconds = 0.0;
  double extract_seconds = 0.0;
  double solve_seconds = 0.0;
  double merge_seconds = 0.0;

  void record(const engine::ArtifactCache::Stats& cache) {
    eigensolves = cache.eigensolves;
    component_hits = cache.component_hits;
    subgraph_extractions = cache.subgraph_extractions;
    fingerprint_computes = cache.fingerprint_computes;
    warm_hits = cache.warm_hits;
    warm_iterations_saved = cache.warm_iterations_saved;
    fingerprint_seconds = cache.fingerprint_seconds;
    extract_seconds = cache.extract_seconds;
    solve_seconds = cache.solve_seconds;
    merge_seconds = cache.merge_seconds;
  }
};

struct CaseResult {
  int patch_edges = 0;
  int dirty = 0;
  int components = 0;
  SideResult inc;
  SideResult scratch;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// One non-spectral artifact kind driven through a single-edge patch:
/// the incremental side must recompute exactly the dirty component's
/// artifact (computes == dirty, fingerprint_computes == 0) while the
/// scratch baseline recomputes every component's.
struct MethodCase {
  std::string method;  ///< engine method id exercising the kind
  std::string kind;    ///< artifact kind: partition | mincut | memsim
  int dirty = 0;
  int components = 0;
  std::int64_t computes = -1;
  std::int64_t store_hits = 0;
  std::int64_t fingerprint_computes = -1;
  std::int64_t scratch_computes = 0;
  double inc_seconds = 0.0;
  double scratch_seconds = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// Cold evaluation into a disk-backed artifact store vs a process
/// "restart" (fresh session + fresh store) against the same directory.
struct RestartCase {
  std::int64_t artifacts_loaded = 0;
  std::int64_t warm_eigensolves = -1;
  std::int64_t warm_topo_computes = -1;
  std::int64_t warm_mincut_sweeps = -1;
  std::int64_t warm_memsim_runs = -1;
  std::int64_t warm_partition_runs = -1;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// Forced-LOBPCG iteration audit: two fresh sessions — basis retention
/// on vs off — apply the same single-edge patch; the metrics registry's
/// solver.iterations delta across the dirty re-solve isolates what the
/// retained eigenbasis buys.
struct WarmStartCase {
  int dirty = 0;
  std::int64_t warm_hits = -1;
  std::int64_t cold_iterations = 0;
  std::int64_t warm_iterations = 0;
  std::int64_t iterations_saved = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double max_abs_diff = 0.0;
};

/// The per-kind compute counter the method exercises.
std::int64_t kind_computes(const std::string& kind,
                           const engine::ArtifactCache::Stats& cache) {
  if (kind == "topo") return cache.topo_computes;
  if (kind == "mincut") return cache.mincut_sweeps;
  if (kind == "partition") return cache.partition_runs;
  return cache.memsim_runs;
}

/// Hard CI gate: the bench is the executable spec of the incremental
/// claims, so a violated claim fails the run, not just the roll-up.
void require(bool ok, const std::string& what) {
  if (ok) return;
  std::cerr << "CLAIM FAILED: " << what << "\n";
  std::exit(1);
}

engine::BoundRequest make_request() {
  engine::BoundRequest req;
  req.memories = {2.0, 8.0};
  req.methods = {"spectral"};
  // Auto policy: cold solves at these component sizes resolve dense
  // (deterministic), while dirty components with a retained predecessor
  // basis take the warm LOBPCG tier. Parity stays exact either way: with
  // h = 32 and >= 32 weak components, the merged smallest-32 are the
  // per-component zero eigenvalues, and the certified lower estimate
  // max(0, theta - ||r||) pins an approximated zero to exactly 0.0 at
  // any tolerance.
  req.spectral.solver = "auto";
  // Fixed h: adaptive doubling would re-request a larger spectrum and
  // re-solve the dirty components once per doubling — identical on both
  // sides, but it blurs the one-solve-per-dirty-component accounting.
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 32;
  return req;
}

double bounds_diff(const engine::BoundReport& a,
                   const engine::BoundReport& b) {
  if (a.rows.size() != b.rows.size())
    return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows.size(); ++i)
    worst = std::max(worst, std::fabs(a.rows[i].value - b.rows[i].value));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Stream updates: incremental re-analysis vs full recompute",
      "graphio::stream (no paper figure)", args);

  // 32 components: the zero-copy query path's win scales with the number
  // of *clean* components a patch leaves behind (each one skipped costs
  // one map lookup instead of an extract + hash + solve), so the corpus
  // carries enough of them for the skip to dominate. The floor on the
  // incremental side is the dirty components' own solve time.
  int components = 32;
  std::int64_t n = 500;
  if (args.scale == BenchScale::kQuick) n = 450;
  if (args.scale == BenchScale::kPaper) {
    components = 40;
    n = 600;
  }

  // Distinct seeds -> distinct components: the scratch baseline's own
  // component cache cannot collapse them.
  std::vector<Digraph> parts;
  parts.reserve(static_cast<std::size_t>(components));
  for (int c = 0; c < components; ++c)
    parts.push_back(
        builders::erdos_renyi_dag(n, 0.03, static_cast<std::uint64_t>(c + 1)));
  const Digraph corpus = disjoint_union(parts);

  // Basis retention on: the session's store keeps converged component
  // eigenbases under a 64 MiB LRU budget, so a patched component's solve
  // warm-starts from its predecessor's basis instead of a random block
  // (the auto policy picks the warm LOBPCG tier whenever the basis is
  // resident).
  const auto session_store = std::make_shared<store::ArtifactStore>();
  session_store->set_eigenbasis_budget(std::int64_t{64} << 20);
  stream::StreamSession session("bench-stream", session_store);
  session.load(corpus);
  // Warm pass: solve every component once; later queries only pay for
  // what their patch dirtied.
  const engine::BoundReport warm = session.evaluate(make_request());
  std::cout << "warm pass: " << warm.cache.eigensolves << " eigensolves over "
            << components << " components\n\n";

  Table table({"patch edges", "dirty", "inc solves", "inc hits", "inc extr",
               "inc s", "scratch solves", "scratch s", "speedup",
               "max |diff|"});
  std::vector<CaseResult> results;
  constexpr int kReps = 3;
  int case_index = 0;
  for (const int patch_edges : {1, 2, 4, 8}) {
    CaseResult r;
    r.patch_edges = patch_edges;
    r.inc.seconds = std::numeric_limits<double>::infinity();
    r.scratch.seconds = std::numeric_limits<double>::infinity();
    // Best-of-kReps: each rep applies a fresh equal-size patch (distinct
    // edges, same component spread), so min-over-reps measures the
    // algorithm, not scheduler noise on a shared CI core. Counters are
    // identical across reps; parity is asserted on every rep.
    for (int rep = 0; rep < kReps; ++rep) {
      // One edge into each of `patch_edges` distinct components; u < v
      // keeps the DAG acyclic, offsets differ per (case, rep) so the
      // patches accumulate without repeating an edge.
      stream::Patch patch;
      const auto jitter = static_cast<VertexId>(2 * (case_index++));
      for (int e = 0; e < patch_edges; ++e) {
        const VertexId off = static_cast<VertexId>(e) * n;
        patch.mutations.push_back(
            stream::Mutation::add_edge(off + jitter, off + jitter + 1));
      }

      WallTimer inc_timer;
      const stream::PatchReport applied = session.apply(patch);
      const engine::BoundReport inc = session.evaluate(make_request());
      const double inc_seconds = inc_timer.seconds();
      r.dirty = applied.dirty_components;
      r.components = applied.components;
      if (inc_seconds < r.inc.seconds) {
        r.inc.seconds = inc_seconds;
        r.inc.record(inc.cache);
      }

      // From-scratch baseline: a fresh Engine (cold component cache) on
      // the same final graph.
      engine::BoundRequest scratch_req = make_request();
      scratch_req.graph = session.graph();
      scratch_req.name = "scratch";
      engine::Engine scratch_engine;
      WallTimer scratch_timer;
      const engine::BoundReport scratch =
          scratch_engine.evaluate(scratch_req);
      const double scratch_seconds = scratch_timer.seconds();
      if (scratch_seconds < r.scratch.seconds) {
        r.scratch.seconds = scratch_seconds;
        r.scratch.record(scratch.cache);
      }
      r.max_abs_diff = std::max(r.max_abs_diff, bounds_diff(inc, scratch));
    }
    r.speedup =
        r.inc.seconds > 0.0 ? r.scratch.seconds / r.inc.seconds : 0.0;

    require(r.inc.warm_hits == r.dirty,
            "every dirty component's solve warm-starts from its "
            "predecessor basis");
    require(r.max_abs_diff == 0.0,
            "incremental (warm) and scratch (cold) bounds agree exactly");

    table.add_row({format_int(r.patch_edges), format_int(r.dirty),
                   format_int(r.inc.eigensolves),
                   format_int(r.inc.component_hits),
                   format_int(r.inc.subgraph_extractions),
                   format_double(r.inc.seconds, 3),
                   format_int(r.scratch.eigensolves),
                   format_double(r.scratch.seconds, 3),
                   format_double(r.speedup, 2),
                   format_double(r.max_abs_diff, 12)});
    results.push_back(r);
  }
  bench::finish(table, args);
  std::cout << "\nsingle-edge phase breakdown (incremental, seconds): "
            << "fingerprint=" << results.front().inc.fingerprint_seconds
            << " extract=" << results.front().inc.extract_seconds
            << " solve=" << results.front().inc.solve_seconds
            << " merge=" << results.front().inc.merge_seconds << "\n";

  // ------------------------------------------ per-method incremental cases
  // The same single-edge-patch claim, per non-spectral artifact kind: the
  // store resolves every clean component's topo order / min-cut sweep /
  // memsim row, so a query recomputes exactly the dirty component's.
  // memsim needs M >= the whole graph's max in-degree to be applicable.
  std::int64_t max_in = 0;
  for (VertexId v = 0; v < corpus.num_vertices(); ++v)
    max_in = std::max(
        max_in, static_cast<std::int64_t>(corpus.parents(v).size()));
  const double memsim_memory = static_cast<double>(max_in + 1);

  std::vector<MethodCase> method_cases;
  method_cases.push_back({"partition-dp", "partition"});
  method_cases.push_back({"mincut", "mincut"});
  method_cases.push_back({"memsim", "memsim"});

  std::cout << "\nPer-method incremental cases (single-edge patch)\n";
  Table mtable({"method", "kind", "dirty", "computes", "scratch computes",
                "inc s", "scratch s", "speedup", "max |diff|"});
  for (MethodCase& mc : method_cases) {
    engine::BoundRequest req;
    req.memories = {mc.kind == "memsim" ? memsim_memory : 8.0};
    req.methods = {mc.method};
    // Warm pass: every component's artifact of this kind enters the store.
    session.evaluate(req);

    stream::Patch patch;
    const auto jitter = static_cast<VertexId>(2 * (case_index++));
    patch.mutations.push_back(stream::Mutation::add_edge(jitter, jitter + 1));
    const stream::PatchReport applied = session.apply(patch);

    WallTimer inc_timer;
    const engine::BoundReport inc = session.evaluate(req);
    mc.inc_seconds = inc_timer.seconds();
    mc.dirty = applied.dirty_components;
    mc.components = applied.components;
    mc.computes = kind_computes(mc.kind, inc.cache);
    mc.store_hits = inc.cache.hits;
    mc.fingerprint_computes = inc.cache.fingerprint_computes;

    engine::BoundRequest scratch_req = req;
    scratch_req.graph = session.graph();
    scratch_req.name = "scratch";
    engine::Engine scratch_engine;
    WallTimer scratch_timer;
    const engine::BoundReport scratch = scratch_engine.evaluate(scratch_req);
    mc.scratch_seconds = scratch_timer.seconds();
    mc.scratch_computes = kind_computes(mc.kind, scratch.cache);
    mc.speedup =
        mc.inc_seconds > 0.0 ? mc.scratch_seconds / mc.inc_seconds : 0.0;
    mc.max_abs_diff = bounds_diff(inc, scratch);

    require(mc.computes == mc.dirty,
            mc.kind + " computes == dirty components");
    require(mc.fingerprint_computes == 0,
            mc.kind + " query never re-hashes a fingerprint");
    require(mc.scratch_computes == mc.components,
            mc.kind + " scratch recomputes every component");
    require(mc.max_abs_diff == 0.0, mc.kind + " bounds agree exactly");
    // The partition DP used to lose to scratch (0.91x): the incremental
    // side paid whole-graph materialization plus an O(n^2) whole-graph DP
    // with zero reuse. Per-component DP rows composed via the seam-refund
    // identity make the query pay for exactly the dirty component, so the
    // win must now be real, not just counter-level.
    if (mc.kind == "partition")
      require(mc.speedup > 1.0,
              "partition-dp incremental query beats from-scratch");

    mtable.add_row({mc.method, mc.kind, format_int(mc.dirty),
                    format_int(mc.computes),
                    format_int(mc.scratch_computes),
                    format_double(mc.inc_seconds, 3),
                    format_double(mc.scratch_seconds, 3),
                    format_double(mc.speedup, 2),
                    format_double(mc.max_abs_diff, 12)});
  }
  mtable.print(std::cout);

  // --------------------------------------------- cold vs warm restart
  // Evaluate the store-backed methods into a disk tier, then "restart the
  // process" — new session, new store, same directory — and re-query: the
  // replayed JSONL answers everything (zero solves of any kind) with
  // bit-identical bounds.
  RestartCase restart;
  {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "graphio_bench_stream_store";
    std::filesystem::remove_all(dir);
    engine::BoundRequest req;
    req.memories = {memsim_memory};
    req.methods = {"spectral", "partition-dp", "mincut", "memsim"};
    req.spectral.solver = "dense";
    req.spectral.adaptive = false;
    req.spectral.max_eigenvalues = 32;

    // Both sides time the whole restart path — store construction (for
    // the warm side, the JSONL replay), session load, query — so the
    // ratio is "process start to answers", not just the query.
    engine::BoundReport cold;
    {
      WallTimer timer;
      stream::StreamSession cold_session(
          "bench-restart", std::make_shared<store::ArtifactStore>(dir));
      cold_session.load(corpus);
      cold = cold_session.evaluate(req);
      restart.cold_seconds = timer.seconds();
    }
    // Warm restarts are milliseconds, so best-of-3 filters scheduler
    // noise out of the denominator (the CI regression gate compares the
    // ratio run-to-run).
    engine::BoundReport warm;
    restart.warm_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      const auto warm_store = std::make_shared<store::ArtifactStore>(dir);
      restart.artifacts_loaded = warm_store->stats().loaded;
      stream::StreamSession warm_session("bench-restart", warm_store);
      warm_session.load(corpus);
      warm = warm_session.evaluate(req);
      restart.warm_seconds = std::min(restart.warm_seconds, timer.seconds());
    }
    restart.warm_eigensolves = warm.cache.eigensolves;
    restart.warm_topo_computes = warm.cache.topo_computes;
    restart.warm_mincut_sweeps = warm.cache.mincut_sweeps;
    restart.warm_memsim_runs = warm.cache.memsim_runs;
    restart.warm_partition_runs = warm.cache.partition_runs;
    restart.speedup = restart.warm_seconds > 0.0
                          ? restart.cold_seconds / restart.warm_seconds
                          : 0.0;
    restart.max_abs_diff = bounds_diff(cold, warm);
    std::filesystem::remove_all(dir);

    require(restart.warm_eigensolves == 0 &&
                restart.warm_topo_computes == 0 &&
                restart.warm_mincut_sweeps == 0 &&
                restart.warm_memsim_runs == 0 &&
                restart.warm_partition_runs == 0,
            "cold restart answers every method from the disk tier");
    require(restart.max_abs_diff == 0.0,
            "restart bounds are bit-identical");

    std::cout << "\ncold vs warm restart (" << restart.artifacts_loaded
              << " artifacts replayed): cold "
              << format_double(restart.cold_seconds, 3) << "s, warm "
              << format_double(restart.warm_seconds, 3) << "s, speedup "
              << format_double(restart.speedup, 2) << "x\n";
  }

  // ------------------------------------------ warm-start iteration audit
  // Forcing LOBPCG on both sides isolates what the retained eigenbasis
  // buys: two fresh sessions, same corpus, same single-edge patch — one
  // retains bases (64 MiB budget), one has retention off (budget 0). The
  // only difference in the dirty re-solve is the starting block, so the
  // registry's solver.iterations delta is the claim: warm converges in
  // strictly fewer iterations than cold. Parity is exact because the
  // compared values are the certified per-component zeros.
  WarmStartCase wsc;
  {
    engine::BoundRequest req = make_request();
    req.spectral.solver = "lobpcg";

    // Patch an edge that is absent from the pristine corpus but stays
    // inside vertex 0's weak component: 0 -> (grandchild of 0 that is not
    // already a child). Edges only ever point low -> high, so the new
    // edge keeps the DAG acyclic and dirties exactly one component.
    VertexId wv = 0;
    {
      std::vector<char> is_child(static_cast<std::size_t>(n), 0);
      for (VertexId c : corpus.children(0))
        is_child[static_cast<std::size_t>(c)] = 1;
      for (VertexId c : corpus.children(0)) {
        for (VertexId g : corpus.children(c))
          if (!is_child[static_cast<std::size_t>(g)]) {
            wv = g;
            break;
          }
        if (wv != 0) break;
      }
    }
    require(wv != 0, "corpus has a non-adjacent grandchild of vertex 0");
    stream::Patch patch;
    patch.mutations.push_back(stream::Mutation::add_edge(0, wv));

    auto& iterations =
        telemetry::MetricsRegistry::global().counter("solver.iterations");
    auto& hits =
        telemetry::MetricsRegistry::global().counter("solver.warm_hits");

    const auto run = [&](std::int64_t basis_budget, double& out_seconds,
                         std::int64_t& out_iterations) {
      const auto side_store = std::make_shared<store::ArtifactStore>();
      side_store->set_eigenbasis_budget(basis_budget);
      stream::StreamSession side("bench-warm-audit", side_store);
      side.load(corpus);
      side.evaluate(req);  // warm pass: spectra (and any bases) stored
      const stream::PatchReport applied = side.apply(patch);
      wsc.dirty = applied.dirty_components;
      const std::int64_t before = iterations.value();
      WallTimer timer;
      const engine::BoundReport rep = side.evaluate(req);
      out_seconds = timer.seconds();
      out_iterations = iterations.value() - before;
      return rep;
    };

    const std::int64_t hits_before_cold = hits.value();
    const engine::BoundReport cold =
        run(0, wsc.cold_seconds, wsc.cold_iterations);
    require(hits.value() == hits_before_cold,
            "retention off: the dirty re-solve starts cold");
    const std::int64_t hits_before_warm = hits.value();
    const engine::BoundReport warmed = run(std::int64_t{64} << 20,
                                           wsc.warm_seconds,
                                           wsc.warm_iterations);
    wsc.warm_hits = hits.value() - hits_before_warm;
    wsc.iterations_saved = wsc.cold_iterations - wsc.warm_iterations;
    wsc.max_abs_diff = bounds_diff(cold, warmed);

    require(wsc.warm_hits == wsc.dirty,
            "every dirty component's solve seeds from a retained basis");
    require(wsc.warm_iterations < wsc.cold_iterations,
            "warm solves take strictly fewer iterations than cold");
    require(wsc.max_abs_diff == 0.0, "warm and cold bounds agree exactly");

    std::cout << "\nwarm-start audit (forced LOBPCG, single-edge patch): "
              << "cold " << wsc.cold_iterations << " iterations, warm "
              << wsc.warm_iterations << " (" << wsc.warm_hits
              << " warm hit), saved " << wsc.iterations_saved << "\n";
  }

  io::JsonWriter w;
  w.begin_object();
  w.key("bench").value("stream_updates");
  w.key("scale").value(to_string(args.scale));
  w.key("components").value(static_cast<std::int64_t>(components));
  w.key("component_vertices").value(n);
  w.key("vertices").value(corpus.num_vertices());
  w.key("edges").value(corpus.num_edges());
  w.key("memories").begin_array();
  for (double m : make_request().memories) w.value(m);
  w.end_array();
  w.key("cases").begin_array();
  for (const CaseResult& r : results) {
    const auto side = [&w](const char* name, const SideResult& s,
                           bool hits) {
      w.key(name).begin_object();
      w.key("seconds").value(s.seconds);
      w.key("eigensolves").value(s.eigensolves);
      if (hits) {
        w.key("component_hits").value(s.component_hits);
        w.key("warm_hits").value(s.warm_hits);
        w.key("warm_iterations_saved").value(s.warm_iterations_saved);
      }
      w.key("subgraph_extractions").value(s.subgraph_extractions);
      w.key("fingerprint_computes").value(s.fingerprint_computes);
      w.key("phases").begin_object();
      w.key("fingerprint").value(s.fingerprint_seconds);
      w.key("extract").value(s.extract_seconds);
      w.key("solve").value(s.solve_seconds);
      w.key("merge").value(s.merge_seconds);
      w.end_object();
      w.end_object();
    };
    w.begin_object();
    w.key("patch_edges").value(r.patch_edges);
    w.key("dirty_components").value(r.dirty);
    w.key("components").value(r.components);
    side("incremental", r.inc, /*hits=*/true);
    side("scratch", r.scratch, /*hits=*/false);
    w.key("speedup").value(r.speedup);
    w.key("max_abs_diff").value(r.max_abs_diff);
    w.end_object();
  }
  w.end_array();
  w.key("method_cases").begin_array();
  for (const MethodCase& mc : method_cases) {
    w.begin_object();
    w.key("method").value(mc.method);
    w.key("kind").value(mc.kind);
    w.key("dirty_components").value(static_cast<std::int64_t>(mc.dirty));
    w.key("components").value(static_cast<std::int64_t>(mc.components));
    w.key("computes").value(mc.computes);
    w.key("scratch_computes").value(mc.scratch_computes);
    w.key("store_hits").value(mc.store_hits);
    w.key("fingerprint_computes").value(mc.fingerprint_computes);
    w.key("incremental_seconds").value(mc.inc_seconds);
    w.key("scratch_seconds").value(mc.scratch_seconds);
    w.key("speedup").value(mc.speedup);
    w.key("max_abs_diff").value(mc.max_abs_diff);
    w.end_object();
  }
  w.end_array();
  w.key("restart").begin_object();
  w.key("artifacts_loaded").value(restart.artifacts_loaded);
  w.key("cold_seconds").value(restart.cold_seconds);
  w.key("warm_seconds").value(restart.warm_seconds);
  w.key("warm_eigensolves").value(restart.warm_eigensolves);
  w.key("warm_topo_computes").value(restart.warm_topo_computes);
  w.key("warm_mincut_sweeps").value(restart.warm_mincut_sweeps);
  w.key("warm_memsim_runs").value(restart.warm_memsim_runs);
  w.key("warm_partition_runs").value(restart.warm_partition_runs);
  w.key("speedup").value(restart.speedup);
  w.key("max_abs_diff").value(restart.max_abs_diff);
  w.end_object();
  w.key("warm_start").begin_object();
  w.key("dirty_components").value(static_cast<std::int64_t>(wsc.dirty));
  w.key("warm_hits").value(wsc.warm_hits);
  w.key("cold_iterations").value(wsc.cold_iterations);
  w.key("warm_iterations").value(wsc.warm_iterations);
  w.key("iterations_saved").value(wsc.iterations_saved);
  w.key("cold_seconds").value(wsc.cold_seconds);
  w.key("warm_seconds").value(wsc.warm_seconds);
  w.key("max_abs_diff").value(wsc.max_abs_diff);
  w.end_object();
  w.end_object();

  std::ofstream json_out("BENCH_stream.json");
  json_out << w.str() << "\n";
  std::cout << "wrote BENCH_stream.json\n";
  return 0;
}
