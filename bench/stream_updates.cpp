// stream_updates — incremental re-analysis vs full recompute on an
// evolving multi-component graph.
//
// The stream claim (ISSUE 4 acceptance, tightened by the ISSUE 5
// zero-copy query path): after a small patch, a StreamSession
// re-eigensolves — and re-*extracts* — only the components the patch
// touched. Clean components resolve from the fingerprint-keyed component
// cache without materializing a subgraph or recomputing a hash
// (subgraph_extractions == dirty, fingerprint_computes == 0), while a
// from-scratch Engine on the final graph decomposes, hashes, extracts,
// and solves every component; the bounds agree exactly (the
// decomposition is exact and the dense tier is deterministic). The
// corpus is a disjoint union of *distinct* Erdős–Rényi DAGs (distinct
// seeds), so the scratch baseline cannot dedupe equal components and
// honestly pays one eigensolve per component. Everything measured is
// algorithmic (eigensolve/extraction counts), so the conclusions hold on
// 1 CPU. The per-phase breakdown (fingerprint / extract / solve / merge)
// shows where each side's time goes: the incremental side is pinned to
// the dirty components' solve time, which is the floor.
//
// Emits BENCH_stream.json:
//
//   {"bench": "stream_updates", "scale": ..., "components": C,
//    "component_vertices": N, "vertices": ..., "memories": [2, 8],
//    "cases": [{"patch_edges": 1, "dirty_components": 1,
//               "incremental": {"seconds": ..., "eigensolves": 1,
//                               "component_hits": C-1,
//                               "subgraph_extractions": 1,
//                               "fingerprint_computes": 0,
//                               "phases": {"fingerprint": ...,
//                                          "extract": ..., "solve": ...,
//                                          "merge": ...}},
//               "scratch": {"seconds": ..., "eigensolves": C,
//                           "subgraph_extractions": C,
//                           "fingerprint_computes": C, "phases": {...}},
//               "speedup": ..., "max_abs_diff": 0}, ...]}
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graphio;

struct SideResult {
  double seconds = 0.0;
  std::int64_t eigensolves = 0;
  std::int64_t component_hits = 0;
  std::int64_t subgraph_extractions = 0;
  std::int64_t fingerprint_computes = 0;
  double fingerprint_seconds = 0.0;
  double extract_seconds = 0.0;
  double solve_seconds = 0.0;
  double merge_seconds = 0.0;

  void record(const engine::ArtifactCache::Stats& cache) {
    eigensolves = cache.eigensolves;
    component_hits = cache.component_hits;
    subgraph_extractions = cache.subgraph_extractions;
    fingerprint_computes = cache.fingerprint_computes;
    fingerprint_seconds = cache.fingerprint_seconds;
    extract_seconds = cache.extract_seconds;
    solve_seconds = cache.solve_seconds;
    merge_seconds = cache.merge_seconds;
  }
};

struct CaseResult {
  int patch_edges = 0;
  int dirty = 0;
  int components = 0;
  SideResult inc;
  SideResult scratch;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

engine::BoundRequest make_request() {
  engine::BoundRequest req;
  req.memories = {2.0, 8.0};
  req.methods = {"spectral"};
  // Dense is deterministic, so incremental (cache-merged) and scratch
  // (all-fresh) spectra — and the bounds — must agree bit for bit.
  req.spectral.solver = "dense";
  // Fixed h: adaptive doubling would re-request a larger spectrum and
  // re-solve the dirty components once per doubling — identical on both
  // sides, but it blurs the one-solve-per-dirty-component accounting.
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 32;
  return req;
}

double bounds_diff(const engine::BoundReport& a,
                   const engine::BoundReport& b) {
  if (a.rows.size() != b.rows.size())
    return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows.size(); ++i)
    worst = std::max(worst, std::fabs(a.rows[i].value - b.rows[i].value));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Stream updates: incremental re-analysis vs full recompute",
      "graphio::stream (no paper figure)", args);

  // 32 components: the zero-copy query path's win scales with the number
  // of *clean* components a patch leaves behind (each one skipped costs
  // one map lookup instead of an extract + hash + solve), so the corpus
  // carries enough of them for the skip to dominate. The floor on the
  // incremental side is the dirty components' own solve time.
  int components = 32;
  std::int64_t n = 500;
  if (args.scale == BenchScale::kQuick) n = 450;
  if (args.scale == BenchScale::kPaper) {
    components = 40;
    n = 600;
  }

  // Distinct seeds -> distinct components: the scratch baseline's own
  // component cache cannot collapse them.
  std::vector<Digraph> parts;
  parts.reserve(static_cast<std::size_t>(components));
  for (int c = 0; c < components; ++c)
    parts.push_back(
        builders::erdos_renyi_dag(n, 0.03, static_cast<std::uint64_t>(c + 1)));
  const Digraph corpus = disjoint_union(parts);

  stream::StreamSession session("bench-stream");
  session.load(corpus);
  // Warm pass: solve every component once; later queries only pay for
  // what their patch dirtied.
  const engine::BoundReport warm = session.evaluate(make_request());
  std::cout << "warm pass: " << warm.cache.eigensolves << " eigensolves over "
            << components << " components\n\n";

  Table table({"patch edges", "dirty", "inc solves", "inc hits", "inc extr",
               "inc s", "scratch solves", "scratch s", "speedup",
               "max |diff|"});
  std::vector<CaseResult> results;
  constexpr int kReps = 3;
  int case_index = 0;
  for (const int patch_edges : {1, 2, 4, 8}) {
    CaseResult r;
    r.patch_edges = patch_edges;
    r.inc.seconds = std::numeric_limits<double>::infinity();
    r.scratch.seconds = std::numeric_limits<double>::infinity();
    // Best-of-kReps: each rep applies a fresh equal-size patch (distinct
    // edges, same component spread), so min-over-reps measures the
    // algorithm, not scheduler noise on a shared CI core. Counters are
    // identical across reps; parity is asserted on every rep.
    for (int rep = 0; rep < kReps; ++rep) {
      // One edge into each of `patch_edges` distinct components; u < v
      // keeps the DAG acyclic, offsets differ per (case, rep) so the
      // patches accumulate without repeating an edge.
      stream::Patch patch;
      const auto jitter = static_cast<VertexId>(2 * (case_index++));
      for (int e = 0; e < patch_edges; ++e) {
        const VertexId off = static_cast<VertexId>(e) * n;
        patch.mutations.push_back(
            stream::Mutation::add_edge(off + jitter, off + jitter + 1));
      }

      WallTimer inc_timer;
      const stream::PatchReport applied = session.apply(patch);
      const engine::BoundReport inc = session.evaluate(make_request());
      const double inc_seconds = inc_timer.seconds();
      r.dirty = applied.dirty_components;
      r.components = applied.components;
      if (inc_seconds < r.inc.seconds) {
        r.inc.seconds = inc_seconds;
        r.inc.record(inc.cache);
      }

      // From-scratch baseline: a fresh Engine (cold component cache) on
      // the same final graph.
      engine::BoundRequest scratch_req = make_request();
      scratch_req.graph = session.graph();
      scratch_req.name = "scratch";
      engine::Engine scratch_engine;
      WallTimer scratch_timer;
      const engine::BoundReport scratch =
          scratch_engine.evaluate(scratch_req);
      const double scratch_seconds = scratch_timer.seconds();
      if (scratch_seconds < r.scratch.seconds) {
        r.scratch.seconds = scratch_seconds;
        r.scratch.record(scratch.cache);
      }
      r.max_abs_diff = std::max(r.max_abs_diff, bounds_diff(inc, scratch));
    }
    r.speedup =
        r.inc.seconds > 0.0 ? r.scratch.seconds / r.inc.seconds : 0.0;

    table.add_row({format_int(r.patch_edges), format_int(r.dirty),
                   format_int(r.inc.eigensolves),
                   format_int(r.inc.component_hits),
                   format_int(r.inc.subgraph_extractions),
                   format_double(r.inc.seconds, 3),
                   format_int(r.scratch.eigensolves),
                   format_double(r.scratch.seconds, 3),
                   format_double(r.speedup, 2),
                   format_double(r.max_abs_diff, 12)});
    results.push_back(r);
  }
  bench::finish(table, args);
  std::cout << "\nsingle-edge phase breakdown (incremental, seconds): "
            << "fingerprint=" << results.front().inc.fingerprint_seconds
            << " extract=" << results.front().inc.extract_seconds
            << " solve=" << results.front().inc.solve_seconds
            << " merge=" << results.front().inc.merge_seconds << "\n";

  io::JsonWriter w;
  w.begin_object();
  w.key("bench").value("stream_updates");
  w.key("scale").value(to_string(args.scale));
  w.key("components").value(static_cast<std::int64_t>(components));
  w.key("component_vertices").value(n);
  w.key("vertices").value(corpus.num_vertices());
  w.key("edges").value(corpus.num_edges());
  w.key("memories").begin_array();
  for (double m : make_request().memories) w.value(m);
  w.end_array();
  w.key("cases").begin_array();
  for (const CaseResult& r : results) {
    const auto side = [&w](const char* name, const SideResult& s,
                           bool hits) {
      w.key(name).begin_object();
      w.key("seconds").value(s.seconds);
      w.key("eigensolves").value(s.eigensolves);
      if (hits) w.key("component_hits").value(s.component_hits);
      w.key("subgraph_extractions").value(s.subgraph_extractions);
      w.key("fingerprint_computes").value(s.fingerprint_computes);
      w.key("phases").begin_object();
      w.key("fingerprint").value(s.fingerprint_seconds);
      w.key("extract").value(s.extract_seconds);
      w.key("solve").value(s.solve_seconds);
      w.key("merge").value(s.merge_seconds);
      w.end_object();
      w.end_object();
    };
    w.begin_object();
    w.key("patch_edges").value(r.patch_edges);
    w.key("dirty_components").value(r.dirty);
    w.key("components").value(r.components);
    side("incremental", r.inc, /*hits=*/true);
    side("scratch", r.scratch, /*hits=*/false);
    w.key("speedup").value(r.speedup);
    w.key("max_abs_diff").value(r.max_abs_diff);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream json_out("BENCH_stream.json");
  json_out << w.str() << "\n";
  std::cout << "wrote BENCH_stream.json\n";
  return 0;
}
