// stream_updates — incremental re-analysis vs full recompute on an
// evolving multi-component graph.
//
// The stream claim (ISSUE 4 acceptance): after a small patch, a
// StreamSession re-eigensolves only the components the patch touched —
// clean components resolve from the fingerprint-keyed component cache —
// while a from-scratch Engine on the final graph re-solves every
// component; the bounds agree exactly (the decomposition is exact and
// the dense tier is deterministic). The corpus is a disjoint union of
// *distinct* Erdős–Rényi DAGs (distinct seeds), so the scratch baseline
// cannot dedupe equal components and honestly pays one eigensolve per
// component. Everything measured is algorithmic (eigensolve counts), so
// the conclusions hold on 1 CPU.
//
// Emits BENCH_stream.json:
//
//   {"bench": "stream_updates", "scale": ..., "components": C,
//    "component_vertices": N, "vertices": ..., "memories": [2, 8],
//    "cases": [{"patch_edges": 1, "dirty_components": 1,
//               "incremental": {"seconds": ..., "eigensolves": 1,
//                               "component_hits": C-1},
//               "scratch": {"seconds": ..., "eigensolves": C},
//               "speedup": ..., "max_abs_diff": 0}, ...]}
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graphio;

struct CaseResult {
  int patch_edges = 0;
  int dirty = 0;
  int components = 0;
  double inc_seconds = 0.0;
  std::int64_t inc_eigensolves = 0;
  std::int64_t inc_component_hits = 0;
  double scratch_seconds = 0.0;
  std::int64_t scratch_eigensolves = 0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

engine::BoundRequest make_request() {
  engine::BoundRequest req;
  req.memories = {2.0, 8.0};
  req.methods = {"spectral"};
  // Dense is deterministic, so incremental (cache-merged) and scratch
  // (all-fresh) spectra — and the bounds — must agree bit for bit.
  req.spectral.solver = "dense";
  // Fixed h: adaptive doubling would re-request a larger spectrum and
  // re-solve the dirty components once per doubling — identical on both
  // sides, but it blurs the one-solve-per-dirty-component accounting.
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 32;
  return req;
}

double bounds_diff(const engine::BoundReport& a,
                   const engine::BoundReport& b) {
  if (a.rows.size() != b.rows.size())
    return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows.size(); ++i)
    worst = std::max(worst, std::fabs(a.rows[i].value - b.rows[i].value));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Stream updates: incremental re-analysis vs full recompute",
      "graphio::stream (no paper figure)", args);

  int components = 20;
  std::int64_t n = 500;
  if (args.scale == BenchScale::kQuick) n = 450;
  if (args.scale == BenchScale::kPaper) {
    components = 24;
    n = 600;
  }

  // Distinct seeds -> distinct components: the scratch baseline's own
  // component cache cannot collapse them.
  std::vector<Digraph> parts;
  parts.reserve(static_cast<std::size_t>(components));
  for (int c = 0; c < components; ++c)
    parts.push_back(
        builders::erdos_renyi_dag(n, 0.03, static_cast<std::uint64_t>(c + 1)));
  const Digraph corpus = disjoint_union(parts);

  stream::StreamSession session("bench-stream");
  session.load(corpus);
  // Warm pass: solve every component once; later queries only pay for
  // what their patch dirtied.
  const engine::BoundReport warm = session.evaluate(make_request());
  std::cout << "warm pass: " << warm.cache.eigensolves << " eigensolves over "
            << components << " components\n\n";

  Table table({"patch edges", "dirty", "inc solves", "inc hits", "inc s",
               "scratch solves", "scratch s", "speedup", "max |diff|"});
  std::vector<CaseResult> results;
  constexpr int kReps = 3;
  int case_index = 0;
  for (const int patch_edges : {1, 2, 4, 8}) {
    CaseResult r;
    r.patch_edges = patch_edges;
    r.inc_seconds = std::numeric_limits<double>::infinity();
    r.scratch_seconds = std::numeric_limits<double>::infinity();
    // Best-of-kReps: each rep applies a fresh equal-size patch (distinct
    // edges, same component spread), so min-over-reps measures the
    // algorithm, not scheduler noise on a shared CI core. Counters are
    // identical across reps; parity is asserted on every rep.
    for (int rep = 0; rep < kReps; ++rep) {
      // One edge into each of `patch_edges` distinct components; u < v
      // keeps the DAG acyclic, offsets differ per (case, rep) so the
      // patches accumulate without repeating an edge.
      stream::Patch patch;
      const auto jitter = static_cast<VertexId>(2 * (case_index++));
      for (int e = 0; e < patch_edges; ++e) {
        const VertexId off = static_cast<VertexId>(e) * n;
        patch.mutations.push_back(
            stream::Mutation::add_edge(off + jitter, off + jitter + 1));
      }

      WallTimer inc_timer;
      const stream::PatchReport applied = session.apply(patch);
      const engine::BoundReport inc = session.evaluate(make_request());
      r.inc_seconds = std::min(r.inc_seconds, inc_timer.seconds());
      r.dirty = applied.dirty_components;
      r.components = applied.components;
      r.inc_eigensolves = inc.cache.eigensolves;
      r.inc_component_hits = inc.cache.component_hits;

      // From-scratch baseline: a fresh Engine (cold component cache) on
      // the same final graph.
      engine::BoundRequest scratch_req = make_request();
      scratch_req.graph = session.graph();
      scratch_req.name = "scratch";
      engine::Engine scratch_engine;
      WallTimer scratch_timer;
      const engine::BoundReport scratch =
          scratch_engine.evaluate(scratch_req);
      r.scratch_seconds = std::min(r.scratch_seconds, scratch_timer.seconds());
      r.scratch_eigensolves = scratch.cache.eigensolves;
      r.max_abs_diff = std::max(r.max_abs_diff, bounds_diff(inc, scratch));
    }
    r.speedup =
        r.inc_seconds > 0.0 ? r.scratch_seconds / r.inc_seconds : 0.0;

    table.add_row({format_int(r.patch_edges), format_int(r.dirty),
                   format_int(r.inc_eigensolves),
                   format_int(r.inc_component_hits),
                   format_double(r.inc_seconds, 3),
                   format_int(r.scratch_eigensolves),
                   format_double(r.scratch_seconds, 3),
                   format_double(r.speedup, 2),
                   format_double(r.max_abs_diff, 12)});
    results.push_back(r);
  }
  bench::finish(table, args);

  io::JsonWriter w;
  w.begin_object();
  w.key("bench").value("stream_updates");
  w.key("scale").value(to_string(args.scale));
  w.key("components").value(static_cast<std::int64_t>(components));
  w.key("component_vertices").value(n);
  w.key("vertices").value(corpus.num_vertices());
  w.key("edges").value(corpus.num_edges());
  w.key("memories").begin_array();
  for (double m : make_request().memories) w.value(m);
  w.end_array();
  w.key("cases").begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.key("patch_edges").value(r.patch_edges);
    w.key("dirty_components").value(r.dirty);
    w.key("components").value(r.components);
    w.key("incremental").begin_object();
    w.key("seconds").value(r.inc_seconds);
    w.key("eigensolves").value(r.inc_eigensolves);
    w.key("component_hits").value(r.inc_component_hits);
    w.end_object();
    w.key("scratch").begin_object();
    w.key("seconds").value(r.scratch_seconds);
    w.key("eigensolves").value(r.scratch_eigensolves);
    w.end_object();
    w.key("speedup").value(r.speedup);
    w.key("max_abs_diff").value(r.max_abs_diff);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream json_out("BENCH_stream.json");
  json_out << w.str() << "\n";
  std::cout << "wrote BENCH_stream.json\n";
  return 0;
}
