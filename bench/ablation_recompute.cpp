// Ablation: what does the no-recomputation assumption cost?
//
// The paper (like [4, 12, 21]) forbids recomputation; Hong & Kung's
// original red-blue pebble game [17] allows it. Both optima are exactly
// computable on tiny graphs, so the modelling gap J*_rb ≤ J* is
// measurable — and the spectral bound, which lower-bounds the
// no-recompute J*, can legitimately EXCEED J*_rb on recomputation-
// friendly graphs.
//
// Shape to expect: the two optima agree on consume-once graphs (trees,
// paths); recomputation wins on graphs with cheap-to-rebuild values
// consumed far apart (fan-out chains); all lower bounds stay ≤ J*.
#include "bench_common.hpp"

#include "graphio/exact/pebble_recompute.hpp"

namespace {

// A chain of `len` unary ops whose endpoints feed two extra consumers —
// the canonical recomputation-wins shape.
graphio::Digraph fanout_chain(int len) {
  graphio::Digraph g(static_cast<std::int64_t>(len) + 3);
  for (graphio::VertexId v = 0; v + 1 < len; ++v) g.add_edge(v, v + 1);
  const graphio::VertexId last = len - 1;
  g.add_edge(0, len);
  g.add_edge(last, len);
  g.add_edge(1, len + 1);
  g.add_edge(last > 1 ? last - 1 : last, len + 1);
  g.add_edge(0, len + 2);
  g.add_edge(last, len + 2);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Ablation: recomputation allowed (Hong-Kung) vs forbidden (paper)",
      "model gap on exactly solvable graphs", args);

  struct Case {
    std::string name;
    Digraph graph;
    std::int64_t memory;
  };
  std::vector<Case> cases;
  cases.push_back({"inner m=2", builders::inner_product(2), 2});
  cases.push_back({"inner m=3", builders::inner_product(3), 2});
  cases.push_back({"fft l=2", builders::fft(2), 2});
  cases.push_back({"bhk l=3", builders::bhk_hypercube(3), 3});
  cases.push_back({"tree d=3", builders::binary_tree(3), 2});
  cases.push_back({"path n=10", builders::path(10), 2});
  cases.push_back({"stencil 5x2", builders::stencil1d(5, 2), 3});
  cases.push_back({"fanout chain 8", fanout_chain(8), 2});
  cases.push_back({"fanout chain 12", fanout_chain(12), 2});

  Table table({"graph", "n", "M", "J*_rb (recompute)", "J* (no recompute)",
               "gap", "spectral", "mincut"});
  for (const Case& c : cases) {
    if (c.graph.num_vertices() > exact::kMaxRecomputeVertices) continue;
    const auto with =
        exact::exact_optimal_io_with_recomputation(c.graph, c.memory);
    const auto without = exact::exact_optimal_io(c.graph, c.memory);
    const double spectral =
        spectral_bound(c.graph, static_cast<double>(c.memory)).bound;
    const double mincut =
        flow::convex_mincut_bound(c.graph, static_cast<double>(c.memory))
            .bound;
    table.add_row(
        {c.name, format_int(c.graph.num_vertices()), format_int(c.memory),
         with.complete ? format_int(with.io) : "-",
         without.complete ? format_int(without.io) : "-",
         (with.complete && without.complete)
             ? format_int(without.io - with.io)
             : "-",
         format_double(spectral, 1), format_double(mincut, 1)});
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * J*_rb <= J* on every row (recomputation only helps)\n"
               "  * gap = 0 on consume-once graphs (tree, path); gap > 0 "
               "on the fan-out chains\n"
               "  * spectral and mincut stay <= J* (they bound the "
               "paper's no-recompute model)\n";
  return 0;
}
