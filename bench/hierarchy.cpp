// Multi-level hierarchy pricing (extension beyond the paper's two-level
// model): one spectral decomposition prices the traffic across every
// boundary of an L1/L2/L3-style inclusive hierarchy.
//
// Shape to expect: traffic bounds decrease as capacity grows (outer
// levels absorb more of the working set); the level where the bound hits
// zero is where the computation "fits"; the best k grows as capacity
// shrinks (finer partitions pay off against small caches).
#include "bench_common.hpp"

#include "graphio/core/hierarchy.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Hierarchy: per-level traffic bounds (L1/L2/L3)",
                      "multi-level extension (no paper figure)", args);

  // A toy inclusive hierarchy in units of values: 8-value L1, 64-value L2,
  // 512-value L3.
  const std::vector<double> capacities{8.0, 64.0, 512.0};

  struct Case {
    std::string name;
    Digraph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"fft l=8", builders::fft(8)});
  cases.push_back({"bhk l=10", builders::bhk_hypercube(10)});
  cases.push_back({"matmul n=12", builders::naive_matmul(12)});
  if (args.scale == BenchScale::kQuick) {
    cases.clear();
    cases.push_back({"fft l=6", builders::fft(6)});
    cases.push_back({"bhk l=8", builders::bhk_hypercube(8)});
  } else if (args.scale == BenchScale::kPaper) {
    cases.push_back({"fft l=10", builders::fft(10)});
    cases.push_back({"strassen n=16", builders::strassen_matmul(16)});
  }

  std::vector<std::string> header{"graph", "n"};
  for (double c : capacities) {
    header.push_back("L(" + format_double(c, 0) + ") traffic");
    header.push_back("k*");
  }
  Table table(std::move(header));

  for (const Case& c : cases) {
    const HierarchyProfile profile = hierarchy_profile(c.graph, capacities);
    std::vector<std::string> row{c.name, format_int(c.graph.num_vertices())};
    for (const LevelTraffic& level : profile.levels) {
      row.push_back(format_double(level.traffic_bound, 1));
      row.push_back(format_int(level.best_k));
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * traffic bounds weakly decrease along each row "
               "(bigger level, less forced traffic)\n"
               "  * the whole row is priced from ONE eigendecomposition\n";
  return 0;
}
