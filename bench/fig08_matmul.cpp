// Figure 8: I/O lower bound for naive n×n matrix multiplication.
//   (top)    bound vs n, spectral + convex min-cut, M ∈ {32, 64, 128}
//   (bottom) bound vs n³ (the Irony–Toledo–Tiskin Ω(n³/√M) growth term)
//
// The paper's caption notes max in-degree n (the traced dot products are
// n-ary sums); points with n > M are therefore not displayed. The paper
// also finds the convex min-cut baseline *trivial* (0) on this family —
// the mincut columns reproduce that.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 8: naive matmul I/O bound vs matrix size",
                      "Jain & Zaharia SPAA'20, Figure 8", args);

  int n_max = 40;
  std::int64_t mincut_cap = 4000;
  double mincut_budget = 60.0;
  SpectralOptions options;
  if (args.scale == BenchScale::kQuick) {
    n_max = 16;
    mincut_cap = 1500;
    mincut_budget = 10.0;
  } else if (args.scale == BenchScale::kPaper) {
    n_max = 64;
    mincut_cap = 8000;
    mincut_budget = 600.0;
    options.lanczos.max_basis = 256;
  }

  const std::vector<double> memories{32.0, 64.0, 128.0};

  std::vector<std::string> header{"n", "vertices", "n^3"};
  for (double m : memories) {
    header.push_back("spectral M=" + format_double(m, 0));
    header.push_back("mincut M=" + format_double(m, 0));
  }
  Table table(std::move(header));

  for (int n = 4; n <= n_max; n += 4) {
    const Digraph g = builders::naive_matmul(n, builders::Reduction::kNary);
    std::vector<std::string> row{
        format_int(n), format_int(g.num_vertices()),
        format_double(published::matmul_growth(n), 0)};
    // One eigendecomposition serves every memory size (spectra are M-free).
    const std::vector<SpectralBound> spectral =
        spectral_bounds(g, memories, options);
    for (std::size_t i = 0; i < memories.size(); ++i) {
      const double m = memories[i];
      if (static_cast<double>(g.max_in_degree()) > m) {
        row.insert(row.end(), {"-", "-"});
        continue;
      }
      row.push_back(format_double(spectral[i].bound, 1));
      row.push_back(format_double(
          bench::mincut_or_nan(g, m, mincut_cap, mincut_budget), 1));
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks (paper, Section 6.4):\n"
               "  * mincut columns are 0 — the baseline is trivial on naive "
               "matmul (paper's finding)\n"
               "  * spectral bound grows with n and stays positive, roughly "
               "linear vs the n^3 column\n";
  return 0;
}
