// Figure 8: I/O lower bound for naive n×n matrix multiplication.
//   (top)    bound vs n, spectral + convex min-cut, M ∈ {32, 64, 128}
//   (bottom) bound vs n³ (the Irony–Toledo–Tiskin Ω(n³/√M) growth term)
//
// The paper's caption notes max in-degree n (the traced dot products are
// n-ary sums); points with n > M are therefore not displayed. The paper
// also finds the convex min-cut baseline *trivial* (0) on this family —
// the mincut columns reproduce that.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 8: naive matmul I/O bound vs matrix size",
                      "Jain & Zaharia SPAA'20, Figure 8", args);

  bench::RunOptions options;
  int n_max = 40;
  options.mincut_max_vertices = 4000;
  options.mincut_budget_seconds = 60.0;
  if (args.scale == BenchScale::kQuick) {
    n_max = 16;
    options.mincut_max_vertices = 1500;
    options.mincut_budget_seconds = 10.0;
  } else if (args.scale == BenchScale::kPaper) {
    n_max = 64;
    options.mincut_max_vertices = 8000;
    options.mincut_budget_seconds = 600.0;
    options.spectral.lanczos.max_basis = 256;
  }

  const std::vector<double> memories{32.0, 64.0, 128.0};

  std::vector<std::string> header{"n", "vertices", "n^3"};
  for (double m : memories) {
    header.push_back("spectral M=" + format_double(m, 0));
    header.push_back("mincut M=" + format_double(m, 0));
  }
  Table table(std::move(header));

  for (int n = 4; n <= n_max; n += 4) {
    const std::string spec = "matmul:" + std::to_string(n);
    const engine::BoundReport report =
        bench::run(spec, memories, {"spectral", "mincut"}, options);
    std::vector<std::string> row{
        format_int(n), format_int(report.vertices),
        format_double(published::matmul_growth(n), 0)};
    for (double m : memories) {
      if (static_cast<double>(n) > m) {  // max in-degree is n (n-ary sums)
        row.insert(row.end(), {"-", "-"});
        continue;
      }
      row.push_back(format_double(bench::cell(report, "spectral", m), 1));
      row.push_back(format_double(bench::cell(report, "mincut", m), 1));
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks (paper, Section 6.4):\n"
               "  * mincut columns are 0 — the baseline is trivial on naive "
               "matmul (paper's finding)\n"
               "  * spectral bound grows with n and stays positive, roughly "
               "linear vs the n^3 column\n";
  return 0;
}
