// serve_batch — throughput and latency of the graphio::serve subsystem.
//
// Fans a mixed fft/bhk/matmul job corpus (4 methods × 4 memory sizes per
// request) through serve::BatchSession at increasing thread counts, then
// measures the persistent-store effect (cold write pass vs warm read
// pass). Emits the perf trajectory as machine-readable BENCH_serve.json
// alongside the usual console table / CSV:
//
//   {"bench": "serve_batch", "jobs": 200,
//    "threads": [{"threads": 1, "seconds": …, "throughput": …,
//                 "p50_seconds": …, "p95_seconds": …, "speedup": …}, …],
//    "store": {"cold_seconds": …, "warm_seconds": …,
//              "warm_hit_rate": 1, "warm_eigensolves": 0}}
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"

namespace {

using namespace graphio;

std::string make_jobs(int count) {
  // Mixed corpus per the serve design target: fft/bhk/matmul specs, four
  // methods, four memory sizes per request; the memory window shifts with
  // the request index so repeated specs still sweep distinct M.
  const std::vector<std::string> specs = {
      "fft:4",    "fft:5",    "fft:6",    "bhk:5",
      "bhk:6",    "bhk:7",    "matmul:3", "matmul:4",
      "matmul:5", "matmul:6",
  };
  std::ostringstream jobs;
  for (int i = 0; i < count; ++i) {
    engine::BoundRequest request;
    request.spec = specs[static_cast<std::size_t>(i) % specs.size()];
    const int shift = (i / static_cast<int>(specs.size())) % 3;
    for (int m = 0; m < 4; ++m)
      request.memories.push_back(static_cast<double>(4L << (m + shift)));
    request.methods = {"spectral", "spectral-plain", "partition-dp",
                      "memsim"};
    jobs << serve::request_to_json_line(request) << '\n';
  }
  return jobs.str();
}

struct NullBuffer : std::streambuf {
  int overflow(int c) override { return c; }
};

serve::BatchSummary run_batch(const std::string& jobs,
                              const serve::BatchOptions& options) {
  serve::BatchSession session(options);
  std::istringstream in(jobs);
  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  return session.run(in, null_stream);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("serve batch throughput",
                      "serve subsystem (no paper figure)", args);

  int jobs_count = 200;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (args.scale == BenchScale::kQuick) {
    jobs_count = 24;
    thread_counts = {1, 2};
  } else if (args.scale == BenchScale::kPaper) {
    jobs_count = 1000;
    thread_counts = {1, 2, 4, 8, 16};
  }
  const std::string jobs = make_jobs(jobs_count);

  Table table({"threads", "seconds", "jobs/s", "p50 ms", "p95 ms",
               "speedup", "steals"});
  std::vector<serve::BatchSummary> series;
  double serial_seconds = 0.0;
  for (const int threads : thread_counts) {
    serve::BatchOptions options;
    options.threads = threads;
    const serve::BatchSummary summary = run_batch(jobs, options);
    if (threads == 1) serial_seconds = summary.seconds;
    series.push_back(summary);
    table.add_row({std::to_string(threads),
                   format_double(summary.seconds, 3),
                   format_double(summary.throughput, 1),
                   format_double(summary.p50_seconds * 1e3, 2),
                   format_double(summary.p95_seconds * 1e3, 2),
                   format_double(summary.seconds > 0.0
                                     ? serial_seconds / summary.seconds
                                     : 0.0,
                                 2),
                   std::to_string(summary.steals)});
  }
  bench::finish(table, args);

  // Persistent-store trajectory: cold pass populates, warm pass must be
  // pure disk (100% hits, zero eigensolves).
  const std::string store_dir = "BENCH_serve.store";
  std::filesystem::remove_all(store_dir);
  serve::BatchOptions store_options;
  store_options.threads = thread_counts.back();
  store_options.store_dir = store_dir;
  const serve::BatchSummary cold = run_batch(jobs, store_options);
  const serve::BatchSummary warm = run_batch(jobs, store_options);
  std::filesystem::remove_all(store_dir);
  std::cout << "store: cold " << format_double(cold.seconds, 3)
            << "s -> warm " << format_double(warm.seconds, 3)
            << "s (hit rate " << format_double(warm.store_hit_rate(), 3)
            << ", eigensolves " << warm.cache.eigensolves << ")\n\n";

  io::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve_batch");
  w.key("scale").value(to_string(args.scale));
  w.key("jobs").value(static_cast<std::int64_t>(jobs_count));
  w.key("threads").begin_array();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const serve::BatchSummary& s = series[i];
    w.begin_object();
    w.key("threads").value(thread_counts[i]);
    w.key("seconds").value(s.seconds);
    w.key("throughput").value(s.throughput);
    w.key("p50_seconds").value(s.p50_seconds);
    w.key("p95_seconds").value(s.p95_seconds);
    w.key("speedup").value(s.seconds > 0.0 ? serial_seconds / s.seconds
                                           : 0.0);
    w.key("steals").value(s.steals);
    w.end_object();
  }
  w.end_array();
  w.key("store").begin_object();
  w.key("cold_seconds").value(cold.seconds);
  w.key("warm_seconds").value(warm.seconds);
  w.key("warm_hit_rate").value(warm.store_hit_rate());
  w.key("warm_eigensolves").value(warm.cache.eigensolves);
  w.end_object();
  w.end_object();

  std::ofstream json_out("BENCH_serve.json");
  json_out << w.str() << "\n";
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}
