// Generality study: the spectral bound on HPC kernel families beyond the
// paper's four evaluation graphs. The paper's pitch is that the method
// applies to *arbitrary* computations — and its §5.3 caveat is that it
// "can perform well on most graphs with high connectivity". This bench
// measures both halves of that sentence.
//
// For each workload: spectral Theorem-4 bound, the convex min-cut
// baseline, and the best simulated schedule (an upper bound on J*), at
// two memory sizes per family. Not a paper figure.
//
// Shape to expect: spectral ≤ best schedule everywhere (soundness). These
// kernels are *low-expansion* — stencils, scans and triangular solves have
// grid/tree-like cuts, so Σ_{i≤k} λ_i stays tiny and the spectral bound is
// near-trivial, while the *local* min-cut baseline keeps a nontrivial
// wavefront bound. This is the mirror image of the paper's Figures 7–10
// (expander-like families where spectral dominates): which automatic bound
// wins is a function of graph expansion, not of bound quality per se.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("New workloads: spectral bound beyond the paper set",
                      "generality study (no paper figure)", args);

  struct Case {
    std::string name;
    Digraph graph;
    std::vector<double> memories;
  };
  std::vector<Case> cases;
  auto add = [&cases](std::string name, Digraph g,
                      std::vector<double> memories) {
    cases.push_back({std::move(name), std::move(g), std::move(memories)});
  };

  if (args.scale == BenchScale::kQuick) {
    add("stencil1d 32x16", builders::stencil1d(32, 16), {4, 16});
    add("stencil2d 8x8x4", builders::stencil2d(8, 8, 4), {8, 16});
    add("prefix scan 2^6", builders::prefix_scan(6), {4, 16});
    add("bitonic 2^4", builders::bitonic_sort(4), {4, 16});
    add("trisolve n=12", builders::triangular_solve(12), {4, 16});
    add("cholesky n=10", builders::cholesky(10), {4, 16});
  } else {
    add("stencil1d 64x48", builders::stencil1d(64, 48), {4, 16});
    add("stencil1d 128x64", builders::stencil1d(128, 64), {4, 16});
    add("stencil2d 16x16x8", builders::stencil2d(16, 16, 8), {8, 32});
    add("prefix scan 2^9", builders::prefix_scan(9), {4, 16});
    add("bitonic 2^5", builders::bitonic_sort(5), {4, 16});
    add("trisolve n=24", builders::triangular_solve(24), {4, 16});
    add("cholesky n=16", builders::cholesky(16), {4, 16});
    if (args.scale == BenchScale::kPaper) {
      add("stencil2d 24x24x12", builders::stencil2d(24, 24, 12), {8, 32});
      add("bitonic 2^6", builders::bitonic_sort(6), {4, 16});
      add("cholesky n=24", builders::cholesky(24), {4, 16});
    }
  }

  Table table({"workload", "n", "edges", "max in-deg", "M", "spectral",
               "best k", "mincut", "best schedule", "spectral/upper"});
  for (const Case& c : cases) {
    const std::vector<SpectralBound> spectral =
        spectral_bounds(c.graph, c.memories);
    for (std::size_t i = 0; i < c.memories.size(); ++i) {
      const double m = c.memories[i];
      if (static_cast<double>(c.graph.max_in_degree()) > m) continue;
      const double mincut = bench::mincut_or_nan(c.graph, m, 3000, 60.0);
      const auto upper =
          sim::best_schedule_io(c.graph, static_cast<std::int64_t>(m));
      const double ratio =
          upper.total() > 0
              ? spectral[i].bound / static_cast<double>(upper.total())
              : 1.0;
      table.add_row({c.name, format_int(c.graph.num_vertices()),
                     format_int(c.graph.num_edges()),
                     format_int(c.graph.max_in_degree()), format_double(m, 0),
                     format_double(spectral[i].bound, 1),
                     format_int(spectral[i].best_k), format_double(mincut, 1),
                     format_int(upper.total()), format_double(ratio, 3)});
    }
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * spectral <= best schedule on every row (soundness)\n"
               "  * spectral is near-trivial here: these kernels have "
               "low expansion (grid/tree-like cuts -> tiny lambda_i), the "
               "regime the paper's 5.3 caveat predicts\n"
               "  * convex min-cut, being local, keeps a nontrivial bound "
               "on the same rows - the two automatic methods are "
               "complementary, split by graph expansion\n"
               "  * '-' cells: min-cut past its size cutoff\n";
  return 0;
}
