// Ablation: eigensolver backend for the spectral bound.
//
// Four routes to the smallest h Laplacian eigenvalues:
//   dense    — Householder + implicit-shift QL, O(n³), exact;
//   lanczos  — block thick-restart Lanczos with Chebyshev filtering;
//   lobpcg   — block LOBPCG, Rayleigh–Ritz on span[X, R, P];
//   power    — deflated power iteration on σI − A (the abstract's
//              "efficiently computable by power iteration" baseline).
// This bench reports wall time and the resulting Theorem-4 bound per
// backend, as the backend-selection evidence behind the kAuto policy
// (DESIGN.md "backend selection").
//
// Shape to expect: dense wins below ~2k vertices; Lanczos wins beyond and
// keeps the bound within a fraction of a percent of dense; LOBPCG tracks
// Lanczos at small h but pays a dense 3b×3b Rayleigh–Ritz per iteration;
// plain power iteration trails both by orders of magnitude in matvecs.
#include "bench_common.hpp"

#include "graphio/la/power_iteration.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: eigensolver backend (dense / Lanczos / power)",
                      "backend-selection policy for Theorem 4", args);

  struct Case {
    std::string name;
    Digraph graph;
    double memory;
  };
  std::vector<Case> cases;
  cases.push_back({"fft l=6", builders::fft(6), 2.0});
  cases.push_back({"bhk l=9", builders::bhk_hypercube(9), 8.0});
  if (args.scale != BenchScale::kQuick) {
    cases.push_back({"fft l=8", builders::fft(8), 2.0});
    cases.push_back({"er n=2000 p=.004", builders::erdos_renyi_dag(2000, 0.004, 11), 8.0});
  }
  if (args.scale == BenchScale::kPaper) {
    cases.push_back({"bhk l=12", builders::bhk_hypercube(12), 16.0});
    cases.push_back({"fft l=9", builders::fft(9), 4.0});
  }

  const int h = 16;  // eigenvalue budget (ablation_k shows this suffices)
  Table table({"case", "n", "dense bound", "dense s", "lanczos bound",
               "lanczos s", "lanczos matvecs", "lobpcg bound", "lobpcg s",
               "lobpcg matvecs", "power bound", "power s", "power matvecs"});

  for (const Case& c : cases) {
    std::vector<std::string> row{c.name, format_int(c.graph.num_vertices())};
    // Dense.
    {
      SpectralOptions opts;
      opts.backend = EigenBackend::kDense;
      opts.max_eigenvalues = h;
      const SpectralBound b = spectral_bound(c.graph, c.memory, opts);
      row.push_back(format_double(b.bound, 2));
      row.push_back(format_double(b.seconds, 2));
    }
    // Lanczos.
    {
      SpectralOptions opts;
      opts.backend = EigenBackend::kLanczos;
      opts.max_eigenvalues = h;
      opts.adaptive = false;
      WallTimer timer;
      const la::CsrMatrix lap =
          laplacian(c.graph, LaplacianKind::kOutDegreeNormalized);
      la::LanczosOptions lopts;
      lopts.rel_tol = 1e-6;
      const la::LanczosResult res = la::smallest_eigenvalues(lap, h, lopts);
      std::vector<double> certified;
      for (std::size_t i = 0; i < res.values.size(); ++i)
        certified.push_back(
            std::max(0.0, res.values[i] - res.residuals[i]));
      std::sort(certified.begin(), certified.end());
      const BoundOverK b = bound_from_spectrum(
          certified, c.graph.num_vertices(), c.memory);
      row.push_back(format_double(b.bound, 2));
      row.push_back(format_double(timer.seconds(), 2));
      row.push_back(format_int(res.matvecs));
    }
    // LOBPCG.
    {
      WallTimer timer;
      const la::CsrMatrix lap =
          laplacian(c.graph, LaplacianKind::kOutDegreeNormalized);
      la::LobpcgOptions lopts;
      lopts.rel_tol = 1e-6;
      const la::LobpcgResult res = la::lobpcg_smallest(lap, h, lopts);
      std::vector<double> certified;
      for (std::size_t i = 0; i < res.values.size(); ++i)
        certified.push_back(
            std::max(0.0, res.values[i] - res.residuals[i]));
      std::sort(certified.begin(), certified.end());
      const BoundOverK b = bound_from_spectrum(
          certified, c.graph.num_vertices(), c.memory);
      row.push_back(format_double(b.bound, 2));
      row.push_back(format_double(timer.seconds(), 2));
      row.push_back(format_int(res.matvecs));
    }
    // Power iteration (skipped at sizes where it would dominate runtime).
    if (c.graph.num_vertices() <= 3000) {
      WallTimer timer;
      const la::CsrMatrix lap =
          laplacian(c.graph, LaplacianKind::kOutDegreeNormalized);
      la::PowerOptions popts;
      popts.rel_tol = 1e-5;
      popts.max_iterations = 20000;
      const la::PowerResult res =
          la::power_smallest_eigenvalues(lap, h, popts);
      std::vector<double> certified;
      for (std::size_t i = 0; i < res.values.size(); ++i)
        certified.push_back(
            std::max(0.0, res.values[i] - res.residuals[i]));
      std::sort(certified.begin(), certified.end());
      const BoundOverK b = bound_from_spectrum(
          certified, c.graph.num_vertices(), c.memory);
      row.push_back(format_double(b.bound, 2));
      row.push_back(format_double(timer.seconds(), 2));
      row.push_back(format_int(res.matvecs));
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * all four backends agree on the bound where they "
               "converge (certified estimates are conservative)\n"
               "  * lanczos uses far fewer matvecs than power at equal "
               "accuracy; lobpcg sits between them at small h\n";
  return 0;
}
