// Shared scaffolding for the figure-reproduction benches, built on the
// unified engine::Engine so every bench resolves graphs, dispatches
// methods, and shares artifacts (spectra, wavefront cut sweeps) the same
// way the CLI does.
#pragma once

#include <cstdint>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "graphio/graphio.hpp"

namespace graphio::bench {

/// Command line: every figure bench accepts `--csv <path>` (mirror rows to
/// CSV) and `--scale quick|default|paper` (overriding GRAPHIO_BENCH_SCALE).
struct BenchArgs {
  std::string csv_path;
  BenchScale scale = BenchScale::kDefault;

  static BenchArgs parse(int argc, char** argv);
};

/// Prints the standard bench header (name, paper anchor, scale).
void print_header(const std::string& title, const std::string& anchor,
                  const BenchArgs& args);

/// The Engine shared by one bench process. Spec-addressed artifacts
/// persist across rows and figures, so e.g. the fft:10 spectrum computed
/// for one table section is reused by the next.
engine::Engine& shared_engine();

/// Knobs the scale presets tune per figure.
struct RunOptions {
  /// Wall-clock cutoff for the min-cut wavefront sweep (the paper cut the
  /// baseline off at 1 day).
  double mincut_budget_seconds = std::numeric_limits<double>::infinity();
  /// Skip the "mincut" method entirely beyond this vertex count (its
  /// O(n · maxflow) sweep explodes); the report then has no mincut rows
  /// and cell() renders "-".
  std::int64_t mincut_max_vertices =
      std::numeric_limits<std::int64_t>::max();
  SpectralOptions spectral;
};

/// Evaluates `methods` over `memories` for `spec` through shared_engine().
engine::BoundReport run(const std::string& spec,
                        std::vector<double> memories,
                        std::vector<std::string> methods,
                        const RunOptions& options = {});

/// The bound of (method, memory) in a report, or NaN — rendered "-" by
/// format_double — when the row is absent, inapplicable, or a cut-off
/// min-cut sweep (matching the paper's missing points).
double cell(const engine::BoundReport& report, std::string_view method,
            double memory);

/// Legacy convenience for benches that build graphs directly: the convex
/// min-cut baseline with a cap and budget; NaN past either limit. Routed
/// through a private Engine request.
double mincut_or_nan(const Digraph& g, double memory,
                     std::int64_t max_vertices, double budget_seconds);

/// Finishes a bench: print table, optionally write CSV.
void finish(Table& table, const BenchArgs& args);

}  // namespace graphio::bench
