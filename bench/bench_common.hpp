// Shared scaffolding for the figure-reproduction benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "graphio/graphio.hpp"

namespace graphio::bench {

/// Command line: every figure bench accepts `--csv <path>` (mirror rows to
/// CSV) and `--scale quick|default|paper` (overriding GRAPHIO_BENCH_SCALE).
struct BenchArgs {
  std::string csv_path;
  BenchScale scale = BenchScale::kDefault;

  static BenchArgs parse(int argc, char** argv);
};

/// Prints the standard bench header (name, paper anchor, scale).
void print_header(const std::string& title, const std::string& anchor,
                  const BenchArgs& args);

/// Runs the convex min-cut baseline with a scale-dependent time budget;
/// returns NaN (rendered "-") when the graph is beyond the cutoff, exactly
/// like the paper cutting off the baseline at 1 day.
double mincut_or_nan(const Digraph& g, double memory,
                     std::int64_t max_vertices, double budget_seconds);

/// Finishes a bench: print table, optionally write CSV.
void finish(Table& table, const BenchArgs& args);

}  // namespace graphio::bench
