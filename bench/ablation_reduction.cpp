// Ablation: reduction shape in the naive-matmul computation graph.
//
// The paper evaluates the n-ary formulation ("max in-degree n", so points
// with n > M are infeasible). Chain and balanced-tree reductions express
// the same computation with in-degree 2, changing both the graph and the
// feasibility region. This bench compares the spectral bound across the
// three shapes — design-choice evidence for the DESIGN.md discussion of
// why the figure uses the paper's n-ary formulation.
//
// Shape to expect: bounds of the three shapes stay within a small factor
// where all are feasible; chain/tree remain available when n > M.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: matmul reduction shape vs spectral bound",
                      "Jain & Zaharia SPAA'20, Section 6.2 graph (2)", args);

  int n_max = 12;
  if (args.scale == BenchScale::kQuick) n_max = 8;
  if (args.scale == BenchScale::kPaper) n_max = 16;
  const double memory = 8.0;

  Table table({"n", "vertices (nary/chain/tree)", "nary", "chain", "tree"});
  for (int n = 4; n <= n_max; n += 2) {
    const Digraph nary = builders::naive_matmul(n, builders::Reduction::kNary);
    const Digraph chain =
        builders::naive_matmul(n, builders::Reduction::kChain);
    const Digraph tree =
        builders::naive_matmul(n, builders::Reduction::kBinaryTree);
    auto bound = [&](const Digraph& g) -> std::string {
      if (static_cast<double>(g.max_in_degree()) > memory)
        return "-";  // the paper's feasibility rule
      return format_double(spectral_bound(g, memory).bound, 1);
    };
    table.add_row({format_int(n),
                   format_int(nary.num_vertices()) + "/" +
                       format_int(chain.num_vertices()) + "/" +
                       format_int(tree.num_vertices()),
                   bound(nary), bound(chain), bound(tree)});
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * nary column goes infeasible (-) once n > M = 8\n"
               "  * chain/tree stay feasible and grow with n\n";
  return 0;
}
