// Figure 7: I/O lower bound for the 2^l-point FFT.
//   (top)    bound vs l, spectral + convex min-cut, M ∈ {4, 8, 16}
//   (bottom) bound vs the growth term l·2^l — should be near-linear, the
//            paper's evidence that the spectral bound tracks the published
//            Ω(l·2^l/log M) shape.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 7: FFT I/O bound vs graph size",
                      "Jain & Zaharia SPAA'20, Figure 7", args);

  bench::RunOptions options;
  int l_max = 10;                       // n = 11·1024 = 11264 (Lanczos path)
  options.mincut_max_vertices = 700;    // min-cut O(n·maxflow) explodes beyond
  options.mincut_budget_seconds = 60.0;
  if (args.scale == BenchScale::kQuick) {
    l_max = 6;
    options.mincut_max_vertices = 200;
    options.mincut_budget_seconds = 10.0;
  } else if (args.scale == BenchScale::kPaper) {
    l_max = 12;                         // the paper's full range
    options.mincut_max_vertices = 1600;
    options.mincut_budget_seconds = 3600.0;
  }

  const std::vector<double> memories{4.0, 8.0, 16.0};

  std::vector<std::string> header{"l", "n", "l*2^l"};
  for (double m : memories) {
    header.push_back("spectral M=" + format_double(m, 0));
    header.push_back("mincut M=" + format_double(m, 0));
    header.push_back("bound/(l*2^l) M=" + format_double(m, 0));
  }
  Table table(std::move(header));

  for (int l = 3; l <= l_max; ++l) {
    const std::string spec = "fft:" + std::to_string(l);
    // One Engine request per graph: the eigendecomposition and the min-cut
    // wavefront sweep are each computed once and reused across all M.
    const engine::BoundReport report =
        bench::run(spec, memories, {"spectral", "mincut"}, options);
    std::vector<std::string> row{format_int(l), format_int(report.vertices),
                                 format_double(published::fft_growth(l), 0)};
    const std::int64_t in_degree =
        bench::shared_engine().graph(spec).max_in_degree();
    for (double m : memories) {
      if (static_cast<double>(in_degree) > m) {
        row.insert(row.end(), {"-", "-", "-"});  // paper's feasibility rule
        continue;
      }
      const double spectral = bench::cell(report, "spectral", m);
      row.push_back(format_double(spectral, 1));
      row.push_back(format_double(bench::cell(report, "mincut", m), 1));
      row.push_back(format_double(spectral / published::fft_growth(l), 4));
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks (paper, Section 6.4):\n"
               "  * spectral > mincut at equal M for all plotted l\n"
               "  * bound/(l*2^l) column roughly flat -> linear growth in "
               "the Hong-Kung term\n"
               "  * '-' cells: min-cut past cutoff (paper cut off at 1 day) "
               "or M < max in-degree\n";
  return 0;
}
