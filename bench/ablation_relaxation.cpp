// Ablation: where does the spectral bound lose tightness?
//
// The paper's derivation is a chain of relaxations (Sections 4.1–4.3):
//
//   J(X)  ≥  Lemma 1  ≥  Theorem 2 objective  =  trace identity
//         ≥  ⌊n/k⌋·Σ_{i≤k} λ_i(L̃)  − 2kM  (spectral, Theorem 4)
//
// For each family this bench fixes the paper's balanced k-partition and
// reports, at the spectral bound's own best k: the Lemma 1 vertex count,
// the Theorem 2 fractional edge objective, and the eigenvalue floor — each
// minimized over a set of real topological orders (the adversary the
// theorems range over), plus exact J* where the graph is small enough.
// The successive gaps show how much each relaxation gives away.
//
// Shape to expect: Lemma1 ≥ Theorem2 ≥ spectral term at every row; the
// orthogonal-relaxation step (dropping X ∈ O_G for XᵀX = I) is the big
// one; subtracting 2kM turns all of them into valid I/O bounds.
#include <limits>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: relaxation chain Lemma1 -> Thm2 -> spectral",
                      "Jain & Zaharia SPAA'20, Sections 4.1-4.3", args);

  struct Case {
    std::string name;
    Digraph graph;
    double memory;
  };
  std::vector<Case> cases;
  cases.push_back({"inner m=3", builders::inner_product(3), 2.0});
  cases.push_back({"fft l=3", builders::fft(3), 2.0});
  cases.push_back({"fft l=5", builders::fft(5), 2.0});
  cases.push_back({"bhk l=4", builders::bhk_hypercube(4), 4.0});
  cases.push_back({"bhk l=7", builders::bhk_hypercube(7), 8.0});
  cases.push_back({"matmul n=4", builders::naive_matmul(4), 4.0});
  if (args.scale != BenchScale::kQuick) {
    cases.push_back({"strassen n=4", builders::strassen_matmul(4), 4.0});
    cases.push_back({"stencil 12x6", builders::stencil1d(12, 6), 3.0});
  }

  const int sampled_orders = args.scale == BenchScale::kQuick ? 8 : 32;

  Table table({"graph", "n", "M", "k*", "min Lemma1", "min Thm2",
               "spectral term", "min DP-opt", "Lemma1 bound",
               "spectral bound", "J* (exact)"});
  for (const Case& c : cases) {
    const Digraph& g = c.graph;
    const SpectralBound spectral = spectral_bound(g, c.memory);
    const std::int64_t k = std::max(spectral.best_k, 2);

    // Adversary: minimize the partition quantities over real orders
    // (natural, DFS, greedy, random samples) — the theorems hold for the
    // minimum over ALL topological orders, which these approach from above.
    // "min DP-opt" additionally lets each order pick its OPTIMAL
    // contiguous partition (core/partition_dp) instead of balanced splits.
    double min_lemma1 = std::numeric_limits<double>::infinity();
    double min_thm2 = std::numeric_limits<double>::infinity();
    double min_dp = std::numeric_limits<double>::infinity();
    auto consider = [&](const std::vector<VertexId>& order) {
      min_lemma1 = std::min(
          min_lemma1,
          static_cast<double>(lemma1_reads_writes(g, order, k)));
      min_thm2 = std::min(min_thm2, partition_edge_objective(g, order, k));
      min_dp =
          std::min(min_dp, optimal_lemma1_bound(g, order, c.memory).bound);
    };
    consider(*topological_order(g));
    consider(dfs_topological_order(g));
    consider(sim::greedy_locality_order(g));
    Prng rng(2024);
    for (int i = 0; i < sampled_orders; ++i)
      consider(random_topological_order(g, rng));

    // The eigenvalue floor at the same k (before subtracting 2kM).
    double prefix = 0.0;
    for (std::int64_t i = 0; i < k && i < static_cast<std::int64_t>(
                                             spectral.eigenvalues.size());
         ++i)
      prefix += std::max(0.0, spectral.eigenvalues[static_cast<std::size_t>(i)]);
    const double spectral_term =
        static_cast<double>(g.num_vertices() / k) * prefix;

    std::string exact_cell = "-";
    if (g.num_vertices() <= exact::kMaxExactVertices &&
        g.max_in_degree() <= static_cast<std::int64_t>(c.memory)) {
      const auto truth =
          exact::exact_optimal_io(g, static_cast<std::int64_t>(c.memory));
      if (truth.complete) exact_cell = format_int(truth.io);
    }

    const double lemma1_bound =
        std::max(0.0, min_lemma1 - 2.0 * static_cast<double>(k) * c.memory);
    table.add_row({c.name, format_int(g.num_vertices()),
                   format_double(c.memory, 0), format_int(k),
                   format_double(min_lemma1, 1), format_double(min_thm2, 2),
                   format_double(spectral_term, 2), format_double(min_dp, 1),
                   format_double(lemma1_bound, 1),
                   format_double(spectral.bound, 2), exact_cell});
  }
  bench::finish(table, args);

  std::cout
      << "Shape checks:\n"
         "  * min Lemma1 >= min Thm2 >= spectral term on every row (the\n"
         "    derivation chain, evaluated on real orders)\n"
         "  * min DP-opt >= Lemma1 bound: optimal contiguous partitions\n"
         "    dominate balanced k-splits per order\n"
         "  * Lemma1/DP bounds >= spectral bound: partitions of concrete\n"
         "    orders are tighter than the orthogonal relaxation\n"
         "  * J* >= min-over-sampled-orders quantities only approximately\n"
         "    (sampled orders approach the true adversary from above)\n";
  return 0;
}
