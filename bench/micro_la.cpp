// Microbenchmarks: linear-algebra substrate (google-benchmark).
//
// These track the primitives the spectral bound's runtime is made of:
// sparse matvec, dense eigensolve, tridiagonal QL, Sturm bisection,
// thick-restart Lanczos, and the Jacobi cross-validator.
#include <benchmark/benchmark.h>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/bisection.hpp"
#include "graphio/la/householder.hpp"
#include "graphio/la/jacobi.hpp"
#include "graphio/la/lanczos.hpp"
#include "graphio/la/lobpcg.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/vector_ops.hpp"
#include "graphio/support/prng.hpp"

namespace {

using namespace graphio;

void BM_CsrMatvec(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const auto lap =
      laplacian(builders::fft(l), LaplacianKind::kOutDegreeNormalized);
  std::vector<double> x(static_cast<std::size_t>(lap.size()), 1.0);
  std::vector<double> y(x.size());
  for (auto _ : state) {
    lap.matvec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * lap.nonzeros());
}
BENCHMARK(BM_CsrMatvec)->Arg(6)->Arg(8)->Arg(10);

void BM_DenseEigenvalues(benchmark::State& state) {
  const auto n = state.range(0);
  const Digraph g = builders::erdos_renyi_dag(n, 8.0 / static_cast<double>(n),
                                              1234);
  const la::DenseMatrix lap = dense_laplacian(g, LaplacianKind::kPlain);
  for (auto _ : state) {
    auto values = la::symmetric_eigenvalues(lap);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_DenseEigenvalues)->Arg(128)->Arg(256)->Arg(512);

void BM_TridiagonalQl(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::SymTridiag t;
  t.diag.assign(n, 2.0);
  t.off.assign(n - 1, -1.0);
  for (auto _ : state) {
    auto values = la::tridiagonal_eigenvalues(t);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_TridiagonalQl)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SturmBisectionSmallest16(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::SymTridiag t;
  t.diag.assign(n, 2.0);
  t.off.assign(n - 1, -1.0);
  for (auto _ : state) {
    auto values = la::bisection_smallest(t, 16);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_SturmBisectionSmallest16)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_LanczosSmallest16(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const auto lap =
      laplacian(builders::bhk_hypercube(l), LaplacianKind::kOutDegreeNormalized);
  la::LanczosOptions opts;
  opts.rel_tol = 1e-6;
  for (auto _ : state) {
    auto result = la::smallest_eigenvalues(lap, 16, opts);
    benchmark::DoNotOptimize(result.values.data());
  }
}
BENCHMARK(BM_LanczosSmallest16)->Arg(9)->Arg(11)->Unit(benchmark::kMillisecond);

void BM_LobpcgSmallest16(benchmark::State& state) {
  // Same problem as BM_LanczosSmallest16 for a direct backend comparison.
  const int l = static_cast<int>(state.range(0));
  const auto lap =
      laplacian(builders::bhk_hypercube(l), LaplacianKind::kOutDegreeNormalized);
  la::LobpcgOptions opts;
  opts.rel_tol = 1e-6;
  opts.dense_fallback = 0;
  for (auto _ : state) {
    auto result = la::lobpcg_smallest(lap, 16, opts);
    benchmark::DoNotOptimize(result.values.data());
  }
}
BENCHMARK(BM_LobpcgSmallest16)->Arg(9)->Arg(11)->Unit(benchmark::kMillisecond);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7);
  la::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      std::vector<double> x(1);
      la::fill_normal(x, rng);
      a(i, j) = a(j, i) = x[0];
    }
  for (auto _ : state) {
    auto result = la::jacobi_eigenvalues(a);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(64)->Arg(128);

void BM_HouseholderTridiagonalize(benchmark::State& state) {
  const auto n = state.range(0);
  const Digraph g = builders::erdos_renyi_dag(n, 8.0 / static_cast<double>(n),
                                              99);
  const la::DenseMatrix lap = dense_laplacian(g, LaplacianKind::kPlain);
  for (auto _ : state) {
    la::DenseMatrix scratch = lap;
    auto t = la::householder_tridiagonalize(scratch, false);
    benchmark::DoNotOptimize(t.diag.data());
  }
}
BENCHMARK(BM_HouseholderTridiagonalize)->Arg(256)->Arg(512);

}  // namespace
