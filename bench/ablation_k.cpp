// Ablation (paper Section 6.5): how many Laplacian eigenvalues does the
// bound actually need? The paper fixes h = 100 and observes that the
// maximizing k stays far below it; this bench sweeps the eigenvalue
// budget h and reports the bound and the argmax k at each budget, across
// the four evaluation families.
//
// Shape to expect: the bound saturates at small h (usually ≤ 32); the
// h = 100 column matches the saturated value, so capping h loses nothing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: eigenvalue budget h vs bound (Section 6.5)",
                      "Jain & Zaharia SPAA'20, Section 6.5", args);

  struct Case {
    std::string name;
    Digraph graph;
    double memory;
  };
  std::vector<Case> cases;
  cases.push_back({"fft l=7 M=2", builders::fft(7), 2.0});
  cases.push_back({"bhk l=9 M=8", builders::bhk_hypercube(9), 8.0});
  cases.push_back({"matmul n=8 M=16", builders::naive_matmul(8), 16.0});
  cases.push_back({"strassen n=8 M=8", builders::strassen_matmul(8), 8.0});
  if (args.scale == BenchScale::kPaper) {
    cases.push_back({"fft l=9 M=4", builders::fft(9), 4.0});
    cases.push_back({"bhk l=12 M=16", builders::bhk_hypercube(12), 16.0});
  }

  const std::vector<int> budgets{2, 4, 8, 16, 32, 64, 100};
  std::vector<std::string> header{"case", "n"};
  for (int h : budgets) header.push_back("h=" + format_int(h));
  header.push_back("best k @h=100");
  Table table(std::move(header));

  for (const Case& c : cases) {
    std::vector<std::string> row{c.name, format_int(c.graph.num_vertices())};
    int final_k = 0;
    for (int h : budgets) {
      SpectralOptions opts;
      opts.max_eigenvalues = h;
      opts.adaptive = false;  // the sweep IS the adaptivity study
      const SpectralBound b = spectral_bound(c.graph, c.memory, opts);
      row.push_back(format_double(b.bound, 1));
      if (h == 100) final_k = b.best_k;
    }
    row.push_back(format_int(final_k));
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout
      << "Shape checks:\n"
         "  * rows saturate well before h=100 (paper: best k << 100)\n"
         "  * columns are non-decreasing in h (more eigenvalues never "
         "hurt)\n";
  return 0;
}
