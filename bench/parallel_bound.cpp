// Theorem 6 (parallel spectral bound): per-processor I/O lower bound as a
// function of the processor count p. The paper derives the bound but does
// not plot it; this bench completes the contribution with a table across
// the evaluation families, sandwiched from above by the p-processor
// execution simulator (busiest-processor I/O of the best partitioned
// schedule, marked "sim").
//
// Shape to expect: the bound decreases roughly like ⌊n/(kp)⌋ (work spread
// over more processors means each one can incur less I/O), never
// increases with p, and stays positive while n/(kp) dominates 2kM; every
// bound column sits below its "sim" column.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Theorem 6: parallel per-processor I/O bound vs processor count",
      "Jain & Zaharia SPAA'20, Section 4.4 (no paper figure)", args);

  struct Case {
    std::string name;
    Digraph graph;
    double memory;
  };
  std::vector<Case> cases;
  if (args.scale == BenchScale::kQuick) {
    cases.push_back({"fft l=6", builders::fft(6), 2.0});
    cases.push_back({"bhk l=8", builders::bhk_hypercube(8), 4.0});
  } else {
    cases.push_back({"fft l=8", builders::fft(8), 2.0});
    cases.push_back({"bhk l=10", builders::bhk_hypercube(10), 8.0});
    cases.push_back({"matmul n=10", builders::naive_matmul(10), 16.0});
    if (args.scale == BenchScale::kPaper) {
      cases.push_back({"fft l=10", builders::fft(10), 2.0});
      cases.push_back({"bhk l=12", builders::bhk_hypercube(12), 8.0});
    }
  }

  const std::vector<std::int64_t> procs{1, 2, 4, 8, 16, 32};
  std::vector<std::string> header{"graph", "n", "M"};
  for (std::int64_t p : procs) {
    header.push_back("p=" + format_int(p));
    header.push_back("sim p=" + format_int(p));
  }
  Table table(std::move(header));

  for (const Case& c : cases) {
    std::vector<std::string> row{c.name, format_int(c.graph.num_vertices()),
                                 format_double(c.memory, 0)};
    double previous = std::numeric_limits<double>::infinity();
    for (std::int64_t p : procs) {
      const SpectralBound b = parallel_spectral_bound(c.graph, c.memory, p);
      row.push_back(format_double(b.bound, 1));
      // Monotonicity sanity (printed bounds must not increase with p).
      if (b.bound > previous + 1e-9)
        row.back() += "!";  // flags a violation in the table itself
      previous = b.bound;
      if (static_cast<double>(c.graph.max_in_degree()) > c.memory) {
        // The bound is still valid below the feasibility line, but no
        // execution exists to simulate (operands cannot fit at once).
        row.push_back("-");
        continue;
      }
      const sim::ParallelSimResult upper = sim::best_parallel_schedule_io(
          c.graph, static_cast<std::int64_t>(c.memory), p);
      row.push_back(format_int(upper.max_total()));
      if (b.bound > static_cast<double>(upper.max_total()) + 1e-9)
        row.back() += "!";  // soundness violation flag
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks:\n"
               "  * each bound row is non-increasing in p (per-processor "
               "bound); '!' flags a violation\n"
               "  * p=1 column equals the serial Theorem 4 bound\n"
               "  * bound <= sim at every p (Theorem 6 soundness against "
               "the partitioned execution simulator)\n";
  return 0;
}
