// Section 5 closed-form results, reproduced as numeric tables:
//   §5.1  hypercube (Bellman–Held–Karp) closed form vs machine bound
//   §5.2  butterfly spectrum (Theorem 7) vs dense numerics, and the FFT
//         closed form vs the Hong–Kung tight bound (the 1/log M headline)
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Section 5: closed-form analytical bounds",
                      "Jain & Zaharia SPAA'20, Sections 5.1-5.2 + Theorem 7",
                      args);

  // --- Theorem 7: butterfly spectrum closed form vs dense numerics ------
  {
    std::cout << "Theorem 7 — closed-form butterfly spectrum vs dense "
                 "eigensolver (max |Δλ| over the full spectrum):\n";
    Table table({"l", "vertices", "max |closed - numeric|"});
    const int l_max = args.scale == BenchScale::kQuick ? 4 : 6;
    for (int l = 1; l <= l_max; ++l) {
      const auto g = builders::fft(l);
      const auto numeric = Spectrum::from_values(
          la::symmetric_eigenvalues(
              dense_laplacian(g, LaplacianKind::kPlain)),
          1e-7);
      table.add_row({format_int(l), format_int(g.num_vertices()),
                     format_double(
                         analytic::butterfly_spectrum(l).max_abs_diff(numeric),
                         12)});
    }
    bench::finish(table, args);
  }

  // --- §5.1: hypercube closed form --------------------------------------
  {
    std::cout << "Section 5.1 — Bellman-Held-Karp closed form "
                 "(2^{l+1}/(l+1) − 2M(l+1), α=1) vs machine Theorem 5 and "
                 "Theorem 4 bounds, M=4:\n";
    Table table({"l", "closed form a=1", "best-a closed form",
                 "machine Thm5", "machine Thm4", "M threshold"});
    const int l_max = args.scale == BenchScale::kQuick ? 9 : 12;
    for (int l = 6; l <= l_max; ++l) {
      const Digraph g = builders::bhk_hypercube(l);
      const double m = 4.0;
      table.add_row(
          {format_int(l),
           format_double(std::max(0.0, analytic::bhk_bound_alpha1(l, m)), 1),
           format_double(analytic::bhk_bound_best_alpha(l, m), 1),
           format_double(spectral_bound_plain(g, m).bound, 1),
           format_double(spectral_bound(g, m).bound, 1),
           format_double(analytic::bhk_nontrivial_memory_threshold(l), 2)});
    }
    bench::finish(table, args);
    std::cout << "Expected ordering per derivation: closed form a=1 <= "
                 "best-a <= machine Thm5 <= machine Thm4.\n\n";
  }

  // --- §5.2: FFT closed form vs Hong–Kung --------------------------------
  {
    std::cout << "Section 5.2 — FFT closed form vs the published tight "
                 "bound (ratio should be ~1/log2(M), the paper's "
                 "headline):\n";
    Table table({"l", "M", "closed form (best a)", "Hong-Kung l*2^l/log M",
                 "ratio", "1/log2(M)"});
    for (int l : {30, 60, 100}) {
      for (double m : {4.0, 16.0}) {
        const double closed = analytic::fft_bound_best_alpha(l, m);
        const double hk = published::fft_hong_kung(l, m);
        table.add_row({format_int(l), format_double(m, 0),
                       format_double(closed, 3), format_double(hk, 3),
                       format_double(closed / hk, 4),
                       format_double(1.0 / std::log2(m), 4)});
      }
    }
    bench::finish(table, args);
    std::cout << "The ratio column approaches the same order as 1/log2(M) "
                 "for l >> M — at most a\n1/log M factor below the tight "
                 "bound, as claimed.\n";
  }
  return 0;
}
