// Figure 11: runtime of computing the bound for the l-city TSP hypercube —
// the spectral method stays near-flat while convex min-cut explodes
// (the paper measured 98 s vs 8.5 h at l = 15 on their machine; absolute
// numbers differ on other hardware, the explosion shape is the result).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 11: bound computation runtime (l-city TSP)",
                      "Jain & Zaharia SPAA'20, Figure 11", args);

  int l_max = 12;
  int mincut_l_max = 9;
  double mincut_budget = 120.0;
  if (args.scale == BenchScale::kQuick) {
    l_max = 9;
    mincut_l_max = 7;
    mincut_budget = 15.0;
  } else if (args.scale == BenchScale::kPaper) {
    l_max = 15;
    mincut_l_max = 11;
    mincut_budget = 3600.0;
  }

  const double memory = 16.0;
  Table table({"l", "n", "spectral (s)", "mincut (s)", "mincut/spectral"});

  for (int l = 6; l <= l_max; ++l) {
    const Digraph g = builders::bhk_hypercube(l);

    WallTimer spectral_timer;
    (void)spectral_bound(g, memory);
    const double spectral_seconds = spectral_timer.seconds();

    double mincut_seconds = std::nan("");
    if (l <= mincut_l_max) {
      flow::ConvexMinCutOptions options;
      options.time_budget_seconds = mincut_budget;
      WallTimer mincut_timer;
      const auto result = flow::convex_mincut_bound(g, memory, options);
      if (result.completed) mincut_seconds = mincut_timer.seconds();
    }

    table.add_row({format_int(l), format_int(g.num_vertices()),
                   format_double(spectral_seconds, 3),
                   format_double(mincut_seconds, 3),
                   format_double(mincut_seconds / spectral_seconds, 1)});
  }
  bench::finish(table, args);

  std::cout << "Shape check (paper, Section 6.5): the mincut/spectral ratio "
               "explodes with l\n(the paper: 98 s vs 8.5 h at l=15); '-' = "
               "past cutoff, exactly like the paper's 1-day cap.\n";
  return 0;
}
