// Figure 9: I/O lower bound for Strassen multiplication.
//   (top)    bound vs n, spectral + convex min-cut, M ∈ {8, 16}
//   (bottom) bound vs n^{log₂7} (Ballard et al.'s growth term)
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 9: Strassen I/O bound vs matrix size",
                      "Jain & Zaharia SPAA'20, Figure 9", args);

  int n_max = 16;
  std::int64_t mincut_cap = 3000;
  double mincut_budget = 60.0;
  if (args.scale == BenchScale::kQuick) {
    n_max = 8;
    mincut_cap = 700;
    mincut_budget = 10.0;
  } else if (args.scale == BenchScale::kPaper) {
    n_max = 32;  // one size past the paper's 16 — the method scales
    mincut_cap = 3000;
    mincut_budget = 600.0;
  }

  const std::vector<double> memories{8.0, 16.0};

  std::vector<std::string> header{"n", "vertices", "n^log2(7)"};
  for (double m : memories) {
    header.push_back("spectral M=" + format_double(m, 0));
    header.push_back("mincut M=" + format_double(m, 0));
    header.push_back("bound/growth M=" + format_double(m, 0));
  }
  Table table(std::move(header));

  for (int n = 4; n <= n_max; n *= 2) {
    const Digraph g = builders::strassen_matmul(n);
    const double growth = published::strassen_growth(n);
    std::vector<std::string> row{format_int(n), format_int(g.num_vertices()),
                                 format_double(growth, 0)};
    // One eigendecomposition serves every memory size (spectra are M-free).
    // Strassen's recursive graph has a tightly clustered near-zero
    // spectrum that defeats Krylov solvers without shift-invert (the
    // authors used ARPACK's shift-invert eigsh); past the dense-rescue
    // size we either pay the dense path (paper scale) or report "nc".
    SpectralOptions options;
    if (args.scale == BenchScale::kPaper && g.num_vertices() > 4096)
      options.backend = EigenBackend::kDense;
    const std::vector<SpectralBound> spectral =
        spectral_bounds(g, memories, options);
    for (std::size_t i = 0; i < memories.size(); ++i) {
      const double m = memories[i];
      if (static_cast<double>(g.max_in_degree()) > m) {
        row.insert(row.end(), {"-", "-", "-"});
        continue;
      }
      const bool converged = spectral[i].eigensolver_converged ||
                             !spectral[i].eigenvalues.empty();
      row.push_back(converged ? format_double(spectral[i].bound, 1) : "nc");
      row.push_back(format_double(
          bench::mincut_or_nan(g, m, mincut_cap, mincut_budget), 1));
      row.push_back(converged
                        ? format_double(spectral[i].bound / growth, 4)
                        : "nc");
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks (paper, Section 6.4):\n"
               "  * spectral above mincut at every plotted point\n"
               "  * bound/growth column roughly flat -> the bound tracks "
               "Ballard et al.'s Omega((n/sqrt(M))^log2(7) * M) shape\n"
               "  * 'nc': the Krylov solver could not certify the clustered "
               "near-zero Strassen spectrum at this size; "
               "--scale paper switches to the exact dense path\n";
  return 0;
}
