// Figure 9: I/O lower bound for Strassen multiplication.
//   (top)    bound vs n, spectral + convex min-cut, M ∈ {8, 16}
//   (bottom) bound vs n^{log₂7} (Ballard et al.'s growth term)
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 9: Strassen I/O bound vs matrix size",
                      "Jain & Zaharia SPAA'20, Figure 9", args);

  bench::RunOptions options;
  int n_max = 16;
  options.mincut_max_vertices = 3000;
  options.mincut_budget_seconds = 60.0;
  if (args.scale == BenchScale::kQuick) {
    n_max = 8;
    options.mincut_max_vertices = 700;
    options.mincut_budget_seconds = 10.0;
  } else if (args.scale == BenchScale::kPaper) {
    n_max = 32;  // one size past the paper's 16 — the method scales
    options.mincut_budget_seconds = 600.0;
  }

  const std::vector<double> memories{8.0, 16.0};

  std::vector<std::string> header{"n", "vertices", "n^log2(7)"};
  for (double m : memories) {
    header.push_back("spectral M=" + format_double(m, 0));
    header.push_back("mincut M=" + format_double(m, 0));
    header.push_back("bound/growth M=" + format_double(m, 0));
  }
  Table table(std::move(header));

  for (int n = 4; n <= n_max; n *= 2) {
    const std::string spec = "strassen:" + std::to_string(n);
    const double growth = published::strassen_growth(n);
    // Strassen's recursive graph has a tightly clustered near-zero
    // spectrum that defeats Krylov solvers without shift-invert (the
    // authors used ARPACK's shift-invert eigsh); past the dense-rescue
    // size we either pay the dense path (paper scale) or report "nc".
    bench::RunOptions run_options = options;
    if (args.scale == BenchScale::kPaper &&
        bench::shared_engine().graph(spec).num_vertices() > 4096)
      run_options.spectral.backend = EigenBackend::kDense;
    const engine::BoundReport report =
        bench::run(spec, memories, {"spectral", "mincut"}, run_options);
    const std::int64_t in_degree =
        bench::shared_engine().graph(spec).max_in_degree();
    std::vector<std::string> row{format_int(n), format_int(report.vertices),
                                 format_double(growth, 0)};
    for (double m : memories) {
      if (static_cast<double>(in_degree) > m) {
        row.insert(row.end(), {"-", "-", "-"});
        continue;
      }
      const engine::MethodRow* spectral = report.row("spectral", m);
      // "nc": the solver certified nothing (no spectrum prefix at all);
      // a partial prefix still yields a valid, just weaker, bound.
      const engine::ArtifactCache* cache = bench::shared_engine().cache(spec);
      const bool certified =
          spectral != nullptr &&
          (spectral->converged ||
           (cache != nullptr &&
            cache->cached_spectrum_values(
                LaplacianKind::kOutDegreeNormalized) > 0));
      row.push_back(certified ? format_double(spectral->value, 1) : "nc");
      row.push_back(format_double(bench::cell(report, "mincut", m), 1));
      row.push_back(certified ? format_double(spectral->value / growth, 4)
                              : "nc");
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args);

  std::cout << "Shape checks (paper, Section 6.4):\n"
               "  * spectral above mincut at every plotted point\n"
               "  * bound/growth column roughly flat -> the bound tracks "
               "Ballard et al.'s Omega((n/sqrt(M))^log2(7) * M) shape\n"
               "  * 'nc': the Krylov solver could not certify the clustered "
               "near-zero Strassen spectrum at this size; "
               "--scale paper switches to the exact dense path\n";
  return 0;
}
