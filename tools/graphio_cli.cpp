// graphio — command-line front end for the spectral I/O bound library.
//
//   graphio generate fft:6 --out fft6.gel        emit a builder graph
//   graphio info fft6.gel [--json]               structural summary
//   graphio bound fft:8 --memory 4,8,16 --method all [--json]
//                                                every bound, one report
//   graphio compare fft:8 bhk:10 --memory 8 --method spectral,mincut
//                                                batch over graphs
//   graphio sweep fft:8 --memory-min 2 --memory-max 64 --method spectral
//                                                geometric M sweep
//   graphio spectrum bhk:8 --count 12            smallest Laplacian values
//   graphio simulate fft:6 --memory 8            schedule I/O (upper bound)
//   graphio exact inner:2 --memory 3             exact J* (tiny graphs)
//   graphio batch jobs.jsonl --threads 8 --store runs/store
//                                                concurrent batch service
//   graphio serve --store runs/store             JSONL request loop (stdin)
//
// Graph arguments are either a family spec (see `graphio help`) or a path
// to a graph file (graphio-edgelist, or Graphviz DOT for *.dot / *.gv).
// All bound evaluation routes through engine::Engine, so artifacts
// (spectra, wavefront cuts) are shared across methods and memory sizes,
// and --json uniformly emits BoundReport JSON. batch/serve route through
// serve::BatchSession: results stream to stdout as deterministic JSONL
// (sortable, timing-free), the summary footer goes to stderr.
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/audit/provenance.hpp"
#include "graphio/core/hierarchy.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/engine/engine.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/io/edgelist.hpp"
#include "graphio/io/json.hpp"
#include "graphio/la/solver_policy.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/sim/anneal.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/parallel_memsim.hpp"
#include "graphio/sim/schedule.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/stream/session.hpp"
#include "graphio/support/table.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace {

using namespace graphio;

std::string method_list() {
  std::string out;
  for (const std::string& id : engine::method_ids()) {
    if (!out.empty()) out += "|";
    out += id;
  }
  return out;
}

std::string solver_list() {
  std::string out;
  for (const std::string& id : la::solver_policy_ids()) {
    if (!out.empty()) out += "|";
    out += id;
  }
  return out;
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: graphio <command> <graph...> [options]\n"
      "\n"
      "commands\n"
      "  generate <graph> [--out FILE]          write graph as edgelist\n"
      "  info <graph> [--json]                  structural summary\n"
      "  bound <graph> --memory M[,M...]        I/O bounds through the Engine\n"
      "        [--method m[,m...]|all] [--processors P] [--json]\n"
      "  compare <graph> <graph...> --memory M[,M...]\n"
      "        [--method ...] [--json]          one report per graph, batched\n"
      "  sweep <graph> --memory-min A --memory-max B [--memory-factor F]\n"
      "        [--method ...] [--json]          geometric memory sweep\n"
      "  spectrum <graph> [--count H] [--plain] smallest Laplacian eigenvalues\n"
      "  simulate <graph> --memory M            schedule I/O (upper bound)\n"
      "  exact <graph> --memory M               exact J* (<= 21 vertices)\n"
      "  anneal <graph> --memory M [--iterations I]\n"
      "                                         local-search schedule tuning\n"
      "  parallel <graph> --memory M [--processors P]\n"
      "                                         Theorem 6 vs simulated p-proc\n"
      "  hierarchy <graph> [--levels 8,64,512]  per-level traffic bounds\n"
      "  batch <jobs.jsonl> [--threads N] [--store DIR]\n"
      "        [--store-artifacts DIR]          fan a JSONL job corpus across\n"
      "                                         workers; results to stdout,\n"
      "                                         summary footer to stderr\n"
      "  serve [--threads N] [--store DIR] [--store-artifacts DIR]\n"
      "                                         JSONL request/response loop\n"
      "                                         on stdin/stdout\n"
      "  stream <updates.jsonl> [--json] [--store-artifacts DIR]\n"
      "        [--warm-basis-mb N]              replay a stream of graph\n"
      "                                         loads/patches/queries in\n"
      "                                         order; incremental re-analysis\n"
      "                                         with warm-started eigensolves\n"
      "                                         (N MiB of retained bases,\n"
      "                                         default 64, 0 = off; --json\n"
      "                                         adds the summary as a final\n"
      "                                         stdout line)\n"
      "  store stats <DIR> [--json]             inspect a durable artifact\n"
      "                                         store (entries per kind,\n"
      "                                         corrupt-line count)\n"
      "  store compact <DIR>                    rewrite the artifact log to\n"
      "                                         its live entries\n"
      "  trace summarize <FILE> [--json]        per-span-name total/self time\n"
      "                                         table for a --trace file\n"
      "                                         (Chrome JSON or JSONL)\n"
      "  audit <DIR|FILE> [updates.jsonl]       check a recorded provenance\n"
      "                                         trail (--provenance output)\n"
      "                                         and replay it from scratch,\n"
      "                                         verifying bit-identical\n"
      "                                         bounds (degraded records\n"
      "                                         verify dominance instead);\n"
      "                                         stream records need the\n"
      "                                         updates file; exit 1 on any\n"
      "                                         mismatch\n"
      "  faults list [--json]                   registered fault-injection\n"
      "                                         sites with armed/hit state\n"
      "\n"
      "robustness (batch/serve/stream)\n"
      "  --fault-plan SPEC                      arm deterministic fault\n"
      "                                         injection: 'site:nth=N' or\n"
      "                                         'site:prob=P[,seed=S]', comma\n"
      "                                         options incl. kind=K, multiple\n"
      "                                         sites ';'-separated (see\n"
      "                                         `graphio faults list`)\n"
      "  --job-timeout-ms N                     per-job soft deadline: over-\n"
      "                                         budget component solves are\n"
      "                                         skipped and the result is a\n"
      "                                         certified partial bound\n"
      "                                         flagged degraded:true\n"
      "  --durable                              fsync result/artifact/\n"
      "                                         provenance logs at batch\n"
      "                                         boundaries\n"
      "  --max-attempts N                       transient-failure attempts\n"
      "                                         per job before quarantine\n"
      "                                         (default 3)\n"
      "\n"
      "telemetry (any command)\n"
      "  --trace FILE                           record spans; write Chrome\n"
      "                                         trace JSON on exit (JSONL\n"
      "                                         when FILE ends in .jsonl)\n"
      "  --metrics                              print the metrics registry\n"
      "                                         as JSON to stderr on exit\n"
      "  --metrics-prom FILE                    write the metrics registry in\n"
      "                                         Prometheus text format on exit\n"
      "\n"
      "provenance (bound/compare/stream/batch/serve)\n"
      "  --explain                              attach the per-result lineage\n"
      "                                         record: per-component solver\n"
      "                                         tier (refresh/warm/cold),\n"
      "                                         iterations, certified residual,\n"
      "                                         artifact source (human table,\n"
      "                                         or a provenance field with\n"
      "                                         --json)\n"
      "  --provenance DIR                       append one provenance record\n"
      "                                         per result to\n"
      "                                         DIR/provenance.jsonl (see\n"
      "                                         `graphio audit`)\n"
      "\n"
      "graph: family spec, edgelist file, or DOT file (*.dot, *.gv)\n"
      << engine::family_help() <<
      "\n"
      "methods: " << method_list() << " | all\n"
      "\n"
      "spectral eigensolver options (bound/compare/sweep/spectrum)\n"
      "  --solver " << solver_list() << "\n"
      "                                         per-component solver policy\n"
      "  --monolithic                           disable the per-component\n"
      "                                         decomposition (one whole-graph\n"
      "                                         eigensolve)\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::int64_t parse_int(const std::string& s, const char* what) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size())
    usage(std::string("bad ") + what + ": '" + s + "'");
  return v;
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    usage(std::string("bad ") + what + ": '" + s + "'");
  }
}

struct Args {
  std::string command;
  std::vector<std::string> graphs;
  std::vector<double> memories;
  double memory_min = 0.0;
  double memory_max = 0.0;
  double memory_factor = 2.0;
  std::int64_t processors = 1;
  std::vector<std::string> methods;
  std::string out;
  int count = 16;
  std::int64_t iterations = 4000;
  std::string levels = "8,64,512";
  std::int64_t threads = 0;
  std::string store;
  std::string store_artifacts;
  /// Eigenbasis warm-start budget in MiB; -1 = unset (commands pick
  /// their default: 64 for `stream`, 0 elsewhere).
  std::int64_t warm_basis_mb = -1;
  std::string solver = "auto";
  std::string trace_file;
  std::string metrics_prom;
  std::string provenance_dir;
  std::string fault_plan;
  std::int64_t job_timeout_ms = 0;
  std::int64_t max_attempts = 3;
  bool durable = false;
  bool explain = false;
  bool metrics = false;
  bool monolithic = false;
  bool plain = false;
  bool json = false;

  [[nodiscard]] const std::string& graph() const {
    if (graphs.empty()) usage("command needs a graph argument");
    return graphs.front();
  }
  [[nodiscard]] double memory() const {
    if (memories.empty()) return -1.0;
    return memories.front();
  }
};

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  int i = 2;
  for (; i < argc && argv[i][0] != '-'; ++i) a.graphs.emplace_back(argv[i]);
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--memory") {
      for (const std::string& part : split(next(), ','))
        a.memories.push_back(parse_double(part, "memory"));
    } else if (flag == "--memory-min") {
      a.memory_min = parse_double(next(), "memory-min");
    } else if (flag == "--memory-max") {
      a.memory_max = parse_double(next(), "memory-max");
    } else if (flag == "--memory-factor") {
      a.memory_factor = parse_double(next(), "memory-factor");
    } else if (flag == "--processors") {
      a.processors = parse_int(next(), "processors");
    } else if (flag == "--method") {
      for (const std::string& part : split(next(), ','))
        a.methods.push_back(part);
    } else if (flag == "--out") {
      a.out = next();
    } else if (flag == "--count") {
      a.count = static_cast<int>(parse_int(next(), "count"));
    } else if (flag == "--iterations") {
      a.iterations = parse_int(next(), "iterations");
    } else if (flag == "--levels") {
      a.levels = next();
    } else if (flag == "--threads") {
      a.threads = parse_int(next(), "threads");
      if (a.threads < 1) usage("--threads must be >= 1");
    } else if (flag == "--store") {
      a.store = next();
    } else if (flag == "--store-artifacts") {
      a.store_artifacts = next();
    } else if (flag == "--warm-basis-mb") {
      a.warm_basis_mb = parse_int(next(), "warm-basis-mb");
      if (a.warm_basis_mb < 0) usage("--warm-basis-mb must be >= 0");
    } else if (flag == "--solver") {
      a.solver = next();
      // Validate here so a typo fails with the registered names instead
      // of surfacing later from deep inside an evaluation.
      try {
        la::require_solver_policy(a.solver);
      } catch (const std::exception& e) {
        usage(e.what());
      }
    } else if (flag == "--trace") {
      a.trace_file = next();
      if (a.trace_file.empty()) usage("--trace needs a file path");
    } else if (flag == "--metrics") {
      a.metrics = true;
    } else if (flag == "--metrics-prom") {
      a.metrics_prom = next();
      if (a.metrics_prom.empty()) usage("--metrics-prom needs a file path");
    } else if (flag == "--fault-plan") {
      a.fault_plan = next();
      if (a.fault_plan.empty()) usage("--fault-plan needs a spec");
    } else if (flag == "--job-timeout-ms") {
      a.job_timeout_ms = parse_int(next(), "job-timeout-ms");
      if (a.job_timeout_ms < 0) usage("--job-timeout-ms must be >= 0");
    } else if (flag == "--max-attempts") {
      a.max_attempts = parse_int(next(), "max-attempts");
      if (a.max_attempts < 1) usage("--max-attempts must be >= 1");
    } else if (flag == "--durable") {
      a.durable = true;
    } else if (flag == "--explain") {
      a.explain = true;
    } else if (flag == "--provenance") {
      a.provenance_dir = next();
      if (a.provenance_dir.empty()) usage("--provenance needs a directory");
    } else if (flag == "--monolithic") {
      a.monolithic = true;
    } else if (flag == "--plain") {
      a.plain = true;
    } else if (flag == "--json") {
      a.json = true;
    } else {
      usage("unknown flag '" + flag + "'");
    }
  }
  return a;
}

void require_memory(const Args& a) {
  if (a.memory() < 1.0)
    usage("command '" + a.command + "' needs --memory M (>= 1)");
}

Digraph resolve_graph(const std::string& spec) {
  return engine::GraphSpec::parse(spec).build();
}

engine::BoundRequest make_request(const Args& a, const std::string& spec) {
  engine::BoundRequest req;
  req.spec = spec;
  req.memories = a.memories;
  req.processors = a.processors;
  req.spectral.solver = a.solver;
  req.spectral.decompose = !a.monolithic;
  req.methods = a.methods.empty() ? std::vector<std::string>{"spectral"}
                                  : a.methods;
  // --processors P with P > 1 asks for the Theorem 6 bound; the serial
  // "spectral" method would silently ignore P, so route it to "parallel"
  // (which is Theorem 4 again when P == 1).
  if (a.processors > 1)
    for (std::string& method : req.methods)
      if (method == "spectral") method = "parallel";
  return req;
}

int emit_reports(const Args& a, std::span<const engine::BoundReport> reports) {
  if (a.json) {
    io::JsonWriter w;
    if (reports.size() == 1) {
      reports.front().append_json(w, /*include_timing=*/true,
                                  /*include_provenance=*/a.explain);
    } else {
      w.begin_array();
      for (const engine::BoundReport& report : reports)
        report.append_json(w, /*include_timing=*/true,
                           /*include_provenance=*/a.explain);
      w.end_array();
    }
    std::cout << w.str() << "\n";
    return 0;
  }
  if (reports.size() == 1)
    reports.front().to_table().print(std::cout);
  else
    engine::reports_to_table(reports).print(std::cout);
  if (a.explain) {
    for (const engine::BoundReport& report : reports) {
      const audit::ProvenanceRecord& prov = report.provenance;
      std::cout << "\nprovenance — " << report.graph << "\n";
      prov.to_table().print(std::cout);
      std::cout << "registry delta: warm_hits=" << prov.registry.warm_hits
                << " iterations=" << prov.registry.iterations
                << (prov.registry.exclusive ? "" : " (not exclusive)")
                << "\n";
    }
  }
  return 0;
}

/// Stamps the identity fields only the CLI layer knows (the Engine never
/// fingerprints eagerly — that would materialize lazy graphs) and the
/// request in its replayable job-line form, then appends the records to
/// --provenance. Gated on --explain/--provenance so plain runs skip the
/// fingerprint work.
void finish_provenance(const Args& a, engine::Engine& eng,
                       std::span<const engine::BoundRequest> requests,
                       std::span<engine::BoundReport> reports) {
  if (!a.explain && a.provenance_dir.empty()) return;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].provenance.fingerprint = eng.fingerprint(requests[i].spec);
    reports[i].provenance.request =
        serve::request_to_json_line(requests[i]);
  }
  if (a.provenance_dir.empty()) return;
  audit::ProvenanceLog log{std::filesystem::path(a.provenance_dir)};
  for (const engine::BoundReport& report : reports)
    log.append(report.provenance);
}

int cmd_generate(const Args& a) {
  const Digraph g = resolve_graph(a.graph());
  if (a.out.empty()) {
    io::write_edgelist(std::cout, g);
  } else {
    io::save_edgelist(a.out, g);
    std::cout << "wrote " << g.num_vertices() << " vertices, "
              << g.num_edges() << " edges to " << a.out << "\n";
  }
  return 0;
}

int cmd_info(const Args& a) {
  const Digraph g = resolve_graph(a.graph());
  const bool acyclic = topological_order(g).has_value();
  if (a.json) {
    io::JsonWriter w;
    w.begin_object();
    w.key("graph").value(a.graph());
    w.key("vertices").value(g.num_vertices());
    w.key("edges").value(g.num_edges());
    w.key("sources").value(static_cast<std::int64_t>(g.sources().size()));
    w.key("sinks").value(static_cast<std::int64_t>(g.sinks().size()));
    w.key("max_in_degree").value(g.max_in_degree());
    w.key("max_out_degree").value(g.max_out_degree());
    w.key("acyclic").value(acyclic);
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  Table t({"property", "value"});
  t.add_row({"vertices", std::to_string(g.num_vertices())});
  t.add_row({"edges", std::to_string(g.num_edges())});
  t.add_row({"sources", std::to_string(g.sources().size())});
  t.add_row({"sinks", std::to_string(g.sinks().size())});
  t.add_row({"max in-degree", std::to_string(g.max_in_degree())});
  t.add_row({"max out-degree", std::to_string(g.max_out_degree())});
  t.add_row({"acyclic", acyclic ? "yes" : "no"});
  t.print(std::cout);
  return 0;
}

int cmd_bound(const Args& a) {
  require_memory(a);
  engine::Engine eng;
  const engine::BoundRequest request = make_request(a, a.graph());
  engine::BoundReport reports[] = {eng.evaluate(request)};
  const engine::BoundRequest requests[] = {request};
  finish_provenance(a, eng, requests, reports);
  return emit_reports(a, reports);
}

int cmd_compare(const Args& a) {
  require_memory(a);
  if (a.graphs.size() < 2)
    usage("compare needs at least two graph arguments");
  std::vector<engine::BoundRequest> requests;
  requests.reserve(a.graphs.size());
  for (const std::string& spec : a.graphs)
    requests.push_back(make_request(a, spec));
  engine::Engine eng;
  auto reports = eng.evaluate_batch(requests);
  finish_provenance(a, eng, requests, reports);
  return emit_reports(a, reports);
}

int cmd_sweep(const Args& a) {
  if (a.memory_min < 1.0 || a.memory_max < a.memory_min)
    usage("sweep needs --memory-min A and --memory-max B with 1 <= A <= B");
  if (a.memory_factor <= 1.0) usage("--memory-factor must be > 1");
  Args sweep = a;
  sweep.memories.clear();
  for (double m = a.memory_min; m <= a.memory_max; m *= a.memory_factor)
    sweep.memories.push_back(m);
  engine::Engine eng;
  const engine::BoundReport report =
      eng.evaluate(make_request(sweep, a.graph()));
  const engine::BoundReport reports[] = {report};
  return emit_reports(a, reports);
}

int cmd_spectrum(const Args& a) {
  const Digraph g = resolve_graph(a.graph());
  SpectralOptions opts;
  opts.solver = a.solver;
  opts.decompose = !a.monolithic;
  bool converged = true;
  const auto kind = a.plain ? LaplacianKind::kPlain
                            : LaplacianKind::kOutDegreeNormalized;
  const auto values =
      smallest_laplacian_eigenvalues(g, kind, a.count, opts, &converged);
  if (a.json) {
    io::JsonWriter w;
    w.begin_object();
    w.key("kind").value(a.plain ? "plain" : "out-degree-normalized");
    w.key("converged").value(converged);
    w.key("values").begin_array();
    for (double v : values) w.value(v);
    w.end_array();
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  std::printf("# %zu smallest eigenvalues (%s Laplacian)%s\n", values.size(),
              a.plain ? "plain" : "out-degree-normalized",
              converged ? "" : "  [NOT fully converged]");
  for (std::size_t i = 0; i < values.size(); ++i)
    std::printf("lambda_%zu = %.12g\n", i + 1, values[i]);
  return 0;
}

int cmd_simulate(const Args& a) {
  require_memory(a);
  const Digraph g = resolve_graph(a.graph());
  const auto m = static_cast<std::int64_t>(a.memory());
  Table t({"schedule", "reads", "writes", "total"});
  auto row = [&](const std::string& name, const sim::SimResult& r) {
    t.add_row({name, std::to_string(r.reads), std::to_string(r.writes),
               std::to_string(r.total())});
  };
  row("natural", sim::simulate_io(g, *topological_order(g), m));
  row("dfs", sim::simulate_io(g, dfs_topological_order(g), m));
  row("greedy-locality", sim::simulate_io(g, sim::greedy_locality_order(g), m));
  row("best-of-all", sim::best_schedule_io(g, m));
  t.print(std::cout);
  return 0;
}

int cmd_exact(const Args& a) {
  require_memory(a);
  const Digraph g = resolve_graph(a.graph());
  exact::ExactOptions opts;
  opts.reconstruct_order = true;
  const auto r = exact::exact_optimal_io(
      g, static_cast<std::int64_t>(a.memory()), opts);
  if (!r.complete) {
    std::cout << "search hit the state cap (" << r.states_expanded
              << " states) — no exact answer\n";
    return 1;
  }
  std::cout << "J* = " << r.io << "   (" << r.states_expanded
            << " states expanded)\n";
  std::cout << "optimal order:";
  for (VertexId v : r.order) std::cout << ' ' << v;
  std::cout << "\n";
  return 0;
}

int cmd_anneal(const Args& a) {
  require_memory(a);
  const Digraph g = resolve_graph(a.graph());
  if (g.max_in_degree() > static_cast<std::int64_t>(a.memory()))
    usage("no feasible schedule: max in-degree exceeds --memory");
  sim::AnnealOptions opts;
  opts.iterations = a.iterations;
  const sim::AnnealResult r =
      sim::anneal_schedule(g, static_cast<std::int64_t>(a.memory()), opts);
  const SpectralBound lower = spectral_bound(g, a.memory());
  std::cout << "start schedule I/O:   " << r.start_io << "\n"
            << "annealed schedule:    " << r.io << "  ("
            << r.moves_accepted << "/" << r.moves_attempted
            << " moves accepted)\n"
            << "spectral lower bound: " << lower.bound << "\n";
  if (!a.out.empty()) {
    io::JsonWriter w;
    w.begin_object();
    w.key("io").value(r.io);
    w.key("order").begin_array();
    for (VertexId v : r.order) w.value(v);
    w.end_array();
    w.end_object();
    std::ofstream out(a.out);
    out << w.str() << "\n";
    std::cout << "wrote annealed order to " << a.out << "\n";
  }
  return 0;
}

int cmd_parallel(const Args& a) {
  require_memory(a);
  const Digraph g = resolve_graph(a.graph());
  const auto m = static_cast<std::int64_t>(a.memory());
  Table t({"p", "Theorem 6 bound", "sim busiest", "sim aggregate"});
  for (std::int64_t p = 1; p <= a.processors; p *= 2) {
    const SpectralBound b = parallel_spectral_bound(g, a.memory(), p);
    std::string busiest = "-";
    std::string aggregate = "-";
    if (g.max_in_degree() <= m) {
      const auto r = sim::best_parallel_schedule_io(g, m, p);
      busiest = std::to_string(r.max_total());
      aggregate = std::to_string(r.sum_total());
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", b.bound);
    t.add_row({std::to_string(p), buf, busiest, aggregate});
  }
  t.print(std::cout);
  return 0;
}

serve::BatchOptions batch_options(const Args& a,
                                  std::int64_t default_warm_mb = 0) {
  serve::BatchOptions options;
  options.threads = static_cast<int>(a.threads);
  options.store_dir = a.store;
  options.artifact_dir = a.store_artifacts;
  options.warm_basis_mb =
      a.warm_basis_mb >= 0 ? a.warm_basis_mb : default_warm_mb;
  options.explain = a.explain;
  options.provenance_dir = a.provenance_dir;
  options.durable = a.durable;
  options.job_timeout_ms = a.job_timeout_ms;
  options.max_attempts = static_cast<int>(a.max_attempts);
  return options;
}

int cmd_batch(const Args& a) {
  if (a.graphs.empty()) usage("batch needs a jobs.jsonl argument");
  std::ifstream jobs(a.graphs.front());
  if (!jobs.good()) usage("cannot open jobs file '" + a.graphs.front() + "'");
  serve::BatchSession session(batch_options(a));
  const serve::BatchSummary summary = session.run(jobs, std::cout);
  std::cerr << summary.to_json() << "\n";
  // Rejected lines are per-line errors, already reported on stdout; only
  // a batch where nothing succeeded exits non-zero.
  return summary.ok > 0 || summary.jobs + summary.rejected_lines == 0 ? 0
                                                                      : 1;
}

int cmd_serve(const Args& a) {
  serve::BatchSession session(batch_options(a));
  const serve::BatchSummary summary = session.serve(std::cin, std::cout);
  std::cerr << summary.to_json() << "\n";
  return 0;
}

int cmd_stream(const Args& a) {
  if (a.graphs.empty()) usage("stream needs an updates.jsonl argument");
  std::ifstream updates(a.graphs.front());
  if (!updates.good())
    usage("cannot open updates file '" + a.graphs.front() + "'");
  // Warm-started solves default ON for stream replay (64 MiB of retained
  // eigenbases); --warm-basis-mb 0 turns the layer off.
  serve::BatchSession session(batch_options(a, /*default_warm_mb=*/64));
  // serve(): the ordered single-lane loop — every query sees exactly the
  // patches above it, and results stream out as they complete.
  const serve::BatchSummary summary = session.serve(updates, std::cout);
  if (a.json)
    std::cout << "{\"summary\":" << summary.to_json() << "}\n";
  std::cerr << summary.to_json() << "\n";
  return summary.ok > 0 || summary.jobs + summary.rejected_lines == 0 ? 0
                                                                      : 1;
}

void append_kind_stats(io::JsonWriter& w, const char* name,
                       const store::ArtifactStore::KindStats& kind) {
  w.key(name).begin_object();
  w.key("entries").value(kind.entries);
  w.key("hits").value(kind.hits);
  w.key("misses").value(kind.misses);
  w.key("evicted").value(kind.evicted);
  w.end_object();
}

int cmd_store(const Args& a) {
  // `graphio store stats|compact DIR`: the subcommand and directory both
  // arrive as positional "graph" arguments.
  if (a.graphs.size() != 2)
    usage("store needs a subcommand and a directory: "
          "graphio store stats|compact DIR");
  const std::string& sub = a.graphs[0];
  const std::string& dir = a.graphs[1];
  if (sub != "stats" && sub != "compact")
    usage("unknown store subcommand '" + sub + "' (stats|compact)");
  store::ArtifactStore artifacts{std::filesystem::path(dir)};
  if (sub == "compact") {
    const std::int64_t written = artifacts.compact();
    std::cout << "compacted " << artifacts.path().string() << " to "
              << written << " artifacts\n";
    return 0;
  }
  const store::ArtifactStore::Stats stats = artifacts.stats();
  if (a.json) {
    io::JsonWriter w;
    w.begin_object();
    w.key("path").value(artifacts.path().string());
    w.key("entries").value(stats.entries());
    w.key("loaded").value(stats.loaded);
    w.key("corrupt").value(stats.corrupt);
    append_kind_stats(w, "spectrum", stats.spectrum);
    append_kind_stats(w, "topo", stats.topo);
    append_kind_stats(w, "mincut", stats.mincut);
    append_kind_stats(w, "memsim", stats.memsim);
    append_kind_stats(w, "partition", stats.partition);
    append_kind_stats(w, "eigenbasis", stats.eigenbasis);
    w.key("eigenbasis_bytes").value(stats.eigenbasis_bytes);
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  Table t({"kind", "entries"});
  t.add_row({"spectrum", std::to_string(stats.spectrum.entries)});
  t.add_row({"topo", std::to_string(stats.topo.entries)});
  t.add_row({"mincut", std::to_string(stats.mincut.entries)});
  t.add_row({"memsim", std::to_string(stats.memsim.entries)});
  t.add_row({"partition", std::to_string(stats.partition.entries)});
  t.add_row({"eigenbasis", std::to_string(stats.eigenbasis.entries)});
  t.add_row({"total", std::to_string(stats.entries())});
  t.print(std::cout);
  std::cout << artifacts.path().string() << ": " << stats.loaded
            << " loaded, " << stats.corrupt << " corrupt line(s) skipped\n";
  return 0;
}

int cmd_trace(const Args& a) {
  // `graphio trace summarize FILE`: subcommand and file arrive as
  // positional "graph" arguments.
  if (a.graphs.size() != 2 || a.graphs[0] != "summarize")
    usage("trace needs a subcommand and a file: graphio trace summarize FILE");
  std::ifstream in(a.graphs[1]);
  if (!in.good()) usage("cannot open trace file '" + a.graphs[1] + "'");
  std::ostringstream text;
  text << in.rdbuf();
  std::int64_t dropped = 0;
  const std::vector<telemetry::SpanRecord> records =
      telemetry::parse_trace(text.str(), &dropped);
  telemetry::TraceSummary summary = telemetry::summarize_records(records);
  summary.dropped = dropped;
  if (dropped > 0)
    std::cerr << "warning: ring buffer overflowed while recording — "
              << dropped << " event(s) dropped, totals undercount\n";
  if (a.json)
    std::cout << telemetry::summary_json(summary) << "\n";
  else
    std::cout << telemetry::summary_table(summary);
  return 0;
}

/// Writes the recorded trace (when --trace was given; format by file
/// extension) and the metrics registry (when --metrics was given) after
/// the command ran. Failures here must not change the command's exit
/// status beyond being reported.
void finish_telemetry(const Args& a) {
  if (!a.trace_file.empty()) {
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    tracer.disable();
    std::ofstream out(a.trace_file);
    if (!out.good()) {
      std::cerr << "error: cannot write trace file '" << a.trace_file
                << "'\n";
    } else {
      const bool jsonl = a.trace_file.size() >= 6 &&
                         a.trace_file.rfind(".jsonl") ==
                             a.trace_file.size() - 6;
      if (jsonl)
        tracer.export_jsonl(out);
      else
        tracer.export_chrome(out);
      const telemetry::TraceSummary summary = tracer.summarize();
      std::cerr << "trace: wrote " << summary.spans << " spans, "
                << summary.instants << " instant events to " << a.trace_file;
      if (summary.dropped > 0)
        std::cerr << " (" << summary.dropped << " dropped)";
      std::cerr << "\n";
    }
  }
  if (a.metrics)
    std::cerr << telemetry::MetricsRegistry::global().to_json() << "\n";
  if (!a.metrics_prom.empty()) {
    std::ofstream out(a.metrics_prom);
    if (!out.good())
      std::cerr << "error: cannot write metrics file '" << a.metrics_prom
                << "'\n";
    else
      out << telemetry::MetricsRegistry::global().to_prometheus();
  }
}

/// `graphio audit DIR|FILE [updates.jsonl]`: loads a recorded provenance
/// trail, checks every record's internal tier/certificate consistency,
/// then replays the recorded work from scratch — bound records through a
/// fresh Engine via their recorded request, stream records by re-running
/// the updates file through fresh StreamSessions — and verifies the
/// bounds come out bit-identical. Solver *tiers* may legitimately differ
/// between recording and replay (a warm recorded run replays cold), so
/// replayed records are checked for internal consistency, not equality.
int cmd_audit(const Args& a) {
  if (a.graphs.empty() || a.graphs.size() > 2)
    usage("audit needs a provenance dir/file and an optional updates file: "
          "graphio audit DIR [updates.jsonl]");
  std::filesystem::path trail(a.graphs.front());
  if (std::filesystem::is_directory(trail)) trail /= "provenance.jsonl";
  const std::vector<audit::ProvenanceRecord> records =
      audit::load_provenance(trail);

  std::int64_t issues = 0;
  const auto report_issues = [&issues](const std::vector<std::string>& found,
                                       std::int64_t record_no,
                                       const char* which) {
    for (const std::string& issue : found) {
      std::cerr << "audit: record " << record_no << " (" << which
                << "): " << issue << "\n";
      ++issues;
    }
  };
  for (std::size_t i = 0; i < records.size(); ++i)
    report_issues(audit::check_record(records[i]),
                  static_cast<std::int64_t>(i) + 1, "recorded");

  std::int64_t replayed = 0;
  std::int64_t mismatches = 0;
  const auto compare = [&replayed, &mismatches](
                           const audit::ProvenanceRecord& recorded,
                           const engine::BoundReport& fresh,
                           std::int64_t record_no) {
    ++replayed;
    const auto flag = [&mismatches, &recorded,
                       record_no](const std::string& what) {
      std::cerr << "audit: record " << record_no << " ('" << recorded.graph
                << "'): " << what << "\n";
      ++mismatches;
    };
    if (recorded.rows.size() != fresh.rows.size()) {
      flag("replay produced " + std::to_string(fresh.rows.size()) +
           " rows, recorded " + std::to_string(recorded.rows.size()));
      return;
    }
    for (std::size_t r = 0; r < recorded.rows.size(); ++r) {
      const audit::RowLineage& want = recorded.rows[r];
      const engine::MethodRow& got = fresh.rows[r];
      const std::string where = "row " + std::to_string(r + 1) + " (" +
                                want.method + ", M=" +
                                format_double(want.memory, 0) + ")";
      if (want.method != got.method || want.memory != got.memory) {
        flag(where + " replayed as (" + got.method + ", M=" +
             format_double(got.memory, 0) + ")");
        continue;
      }
      if (want.applicable != got.applicable) {
        flag(where + " applicability changed on replay");
        continue;
      }
      if (!want.applicable) continue;
      if (want.degraded) {
        // A degraded recorded bound (deadline- or fault-skipped solves)
        // is sound but weaker than a full evaluation, so replay verifies
        // *dominance* instead of bit-equality: the fresh full-strength
        // bound must be at least the recorded one. This is what separates
        // "sound but degraded" from an actual mismatch.
        if (want.bound > got.value)
          flag(where + " degraded bound " + format_double(want.bound, 12) +
               " exceeds fresh bound " + format_double(got.value, 12));
        continue;
      }
      if (want.bound != got.value)  // bit-identical, not approximate
        flag(where + " bound " + format_double(got.value, 12) +
             " != recorded " + format_double(want.bound, 12));
      if (want.best_k != got.best_k)
        flag(where + " best_k " + std::to_string(got.best_k) +
             " != recorded " + std::to_string(want.best_k));
      if (want.converged != got.converged)
        flag(where + " convergence changed on replay");
    }
  };

  // Bound records: re-evaluate the recorded request on a fresh Engine.
  engine::Engine eng;
  std::map<std::string, std::vector<std::pair<
                            std::int64_t, const audit::ProvenanceRecord*>>>
      stream_records;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const audit::ProvenanceRecord& record = records[i];
    const auto record_no = static_cast<std::int64_t>(i) + 1;
    if (record.kind == "stream") {
      stream_records[record.graph].emplace_back(record_no, &record);
      continue;
    }
    if (record.request.empty()) {
      std::cerr << "audit: record " << record_no
                << " carries no request — cannot replay\n";
      ++mismatches;
      continue;
    }
    const engine::BoundRequest request =
        serve::request_from_json_line(record.request);
    const engine::BoundReport fresh = eng.evaluate(request);
    compare(record, fresh, record_no);
    report_issues(audit::check_record(fresh.provenance), record_no,
                  "replayed");
  }

  // Stream records: the mutations matter, not just the final queries, so
  // they replay by re-running the updates file in order, mirroring
  // `graphio stream` (fresh artifact store, same warm-basis default).
  std::map<std::string, std::size_t> cursor;
  if (!stream_records.empty() && a.graphs.size() < 2) {
    std::int64_t pending = 0;
    for (const auto& [name, queue] : stream_records)
      pending += static_cast<std::int64_t>(queue.size());
    std::cerr << "audit: " << pending << " stream record(s) need the "
              << "updates file to replay: graphio audit DIR updates.jsonl\n";
    mismatches += pending;
  } else if (!stream_records.empty()) {
    std::ifstream updates(a.graphs[1]);
    if (!updates.good())
      usage("cannot open updates file '" + a.graphs[1] + "'");
    auto artifacts = std::make_shared<store::ArtifactStore>();
    const std::int64_t warm_mb =
        a.warm_basis_mb >= 0 ? a.warm_basis_mb : 64;
    artifacts->set_eigenbasis_budget(warm_mb << 20);
    std::map<std::string, std::unique_ptr<stream::StreamSession>> sessions;
    std::string line;
    std::int64_t line_no = 0;
    while (std::getline(updates, line)) {
      ++line_no;
      const auto start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos) continue;
      if (line[start] == '#') continue;
      const serve::Job job = serve::job_from_json_line(line);
      if (!job.is_stream()) continue;  // bound jobs replayed via records
      auto it = sessions.find(job.graph);
      if (job.kind == serve::JobKind::kLoad) {
        if (it == sessions.end())
          it = sessions
                   .emplace(job.graph, std::make_unique<stream::StreamSession>(
                                           job.graph, artifacts))
                   .first;
        it->second->load(job.load_spec);
        continue;
      }
      if (it == sessions.end())
        usage("updates file line " + std::to_string(line_no) +
              " addresses unloaded graph '" + job.graph + "'");
      if (job.kind == serve::JobKind::kPatch) {
        it->second->apply(job.patch);
        continue;
      }
      const engine::BoundReport fresh = it->second->evaluate(job.request);
      auto& queue = stream_records[job.graph];
      std::size_t& next = cursor[job.graph];
      if (next >= queue.size()) {
        std::cerr << "audit: updates file line " << line_no << " queries '"
                  << job.graph << "' beyond the recorded trail\n";
        ++mismatches;
        continue;
      }
      const auto [record_no, record] = queue[next++];
      compare(*record, fresh, record_no);
      report_issues(audit::check_record(fresh.provenance), record_no,
                    "replayed");
    }
    for (const auto& [name, queue] : stream_records) {
      const std::size_t done = cursor[name];
      if (done < queue.size()) {
        std::cerr << "audit: " << queue.size() - done
                  << " recorded quer(ies) for '" << name
                  << "' never replayed by the updates file\n";
        mismatches += static_cast<std::int64_t>(queue.size() - done);
      }
    }
  }

  const bool ok = issues == 0 && mismatches == 0;
  if (a.json) {
    io::JsonWriter w;
    w.begin_object();
    w.key("records").value(static_cast<std::int64_t>(records.size()));
    w.key("replayed").value(replayed);
    w.key("issues").value(issues);
    w.key("mismatches").value(mismatches);
    w.key("ok").value(ok);
    w.end_object();
    std::cout << w.str() << "\n";
  } else {
    std::cout << "audit: " << records.size() << " record(s), " << replayed
              << " replayed, " << issues << " consistency issue(s), "
              << mismatches << " replay mismatch(es)"
              << (ok ? " — trail verified" : "") << "\n";
  }
  return ok ? 0 : 1;
}

/// `graphio faults list`: the registered fault-injection sites, with the
/// armed/hit state of the process-wide registry (reflects --fault-plan).
int cmd_faults(const Args& a) {
  if (a.graphs.size() != 1 || a.graphs[0] != "list")
    usage("faults needs a subcommand: graphio faults list");
  const std::vector<faults::SiteInfo> sites =
      faults::FaultRegistry::global().sites();
  if (a.json) {
    io::JsonWriter w;
    w.begin_array();
    for (const faults::SiteInfo& site : sites) {
      w.begin_object();
      w.key("site").value(site.name);
      w.key("description").value(site.description);
      w.key("armed").value(site.armed);
      w.key("hits").value(site.hits);
      w.key("fired").value(site.fired);
      w.end_object();
    }
    w.end_array();
    std::cout << w.str() << "\n";
    return 0;
  }
  Table t({"site", "armed", "hits", "fired", "description"});
  for (const faults::SiteInfo& site : sites)
    t.add_row({site.name, site.armed ? "yes" : "-",
               std::to_string(site.hits), std::to_string(site.fired),
               site.description});
  t.print(std::cout);
  return 0;
}

int cmd_hierarchy(const Args& a) {
  const Digraph g = resolve_graph(a.graph());
  std::vector<double> capacities;
  for (const std::string& part : split(a.levels, ','))
    capacities.push_back(parse_double(part, "level capacity"));
  const HierarchyProfile profile = hierarchy_profile(g, capacities);
  Table t({"level capacity", "traffic bound", "best k"});
  for (const LevelTraffic& level : profile.levels) {
    char cap[32];
    char bound[32];
    std::snprintf(cap, sizeof cap, "%.6g", level.capacity);
    std::snprintf(bound, sizeof bound, "%.6g", level.traffic_bound);
    t.add_row({cap, bound, std::to_string(level.best_k)});
  }
  t.print(std::cout);
  return 0;
}

int dispatch(const Args& a) {
  if (a.command == "generate") return cmd_generate(a);
  if (a.command == "info") return cmd_info(a);
  if (a.command == "bound") return cmd_bound(a);
  if (a.command == "compare") return cmd_compare(a);
  if (a.command == "sweep") return cmd_sweep(a);
  if (a.command == "spectrum") return cmd_spectrum(a);
  if (a.command == "simulate") return cmd_simulate(a);
  if (a.command == "exact") return cmd_exact(a);
  if (a.command == "anneal") return cmd_anneal(a);
  if (a.command == "parallel") return cmd_parallel(a);
  if (a.command == "hierarchy") return cmd_hierarchy(a);
  if (a.command == "store") return cmd_store(a);
  if (a.command == "batch") return cmd_batch(a);
  if (a.command == "serve") return cmd_serve(a);
  if (a.command == "stream") return cmd_stream(a);
  if (a.command == "trace") return cmd_trace(a);
  if (a.command == "audit") return cmd_audit(a);
  if (a.command == "faults") return cmd_faults(a);
  usage("unknown command '" + a.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    if (!a.trace_file.empty()) telemetry::Tracer::global().enable();
    // Arm the process-wide registry before any subsystem runs; a bad
    // spec fails here with the parse error, not mid-batch.
    if (!a.fault_plan.empty())
      faults::FaultRegistry::global().install(
          faults::FaultPlan::parse(a.fault_plan));
    const int rc = dispatch(a);
    finish_telemetry(a);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
