// graphio — command-line front end for the spectral I/O bound library.
//
//   graphio generate fft:6 --out fft6.gel       emit a builder graph
//   graphio info fft6.gel                       structural summary
//   graphio bound fft:8 --memory 4 --method all spectral + baselines
//   graphio spectrum bhk:8 --count 12           smallest Laplacian values
//   graphio simulate fft:6 --memory 8           schedule I/O (upper bound)
//   graphio exact inner:2 --memory 3            exact J* (tiny graphs)
//
// Graph arguments are either a family spec — fft:L, matmul:N[:nary|chain|
// tree], strassen:N, bhk:L, er:N:P:SEED, grid:R:C, tree:D, path:N,
// inner:M — or a path to a graphio-edgelist file.
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "graphio/core/hierarchy.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/io/edgelist.hpp"
#include "graphio/io/json.hpp"
#include "graphio/sim/anneal.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/parallel_memsim.hpp"
#include "graphio/sim/schedule.hpp"
#include "graphio/support/table.hpp"

namespace {

using namespace graphio;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: graphio <command> <graph> [options]\n"
      "\n"
      "commands\n"
      "  generate <graph> [--out FILE]          write graph as edgelist\n"
      "  info <graph>                           structural summary\n"
      "  bound <graph> --memory M [options]     I/O lower bounds\n"
      "  spectrum <graph> [--count H] [--plain] smallest Laplacian eigenvalues\n"
      "  simulate <graph> --memory M            schedule I/O (upper bound)\n"
      "  exact <graph> --memory M               exact J* (<= 21 vertices)\n"
      "  anneal <graph> --memory M [--iterations I]\n"
      "                                         local-search schedule tuning\n"
      "  parallel <graph> --memory M [--processors P]\n"
      "                                         Theorem 6 vs simulated p-proc\n"
      "  hierarchy <graph> [--levels 8,64,512]  per-level traffic bounds\n"
      "\n"
      "graph: family spec or edgelist file\n"
      "  fft:L  matmul:N[:nary|chain|tree]  strassen:N  bhk:L\n"
      "  er:N:P:SEED  grid:R:C  tree:D  path:N  inner:M\n"
      "  stencil1d:C:T  stencil2d:R:C:T  scan:LOGN  bitonic:LOGN\n"
      "  trisolve:N  cholesky:N\n"
      "\n"
      "bound options\n"
      "  --method spectral|plain|mincut|all   (default spectral)\n"
      "  --processors P                       parallel bound, Theorem 6\n"
      "  --json                               machine-readable output\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::int64_t parse_int(const std::string& s, const char* what) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size())
    usage(std::string("bad ") + what + ": '" + s + "'");
  return v;
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    usage(std::string("bad ") + what + ": '" + s + "'");
  }
}

Digraph resolve_graph(const std::string& spec) {
  if (std::filesystem::exists(spec)) return io::load_edgelist(spec);
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  auto arg = [&](std::size_t i) -> const std::string& {
    if (i >= parts.size()) usage("family spec '" + spec + "' needs more arguments");
    return parts[i];
  };
  if (kind == "fft") return builders::fft(static_cast<int>(parse_int(arg(1), "level")));
  if (kind == "matmul") {
    builders::Reduction red = builders::Reduction::kNary;
    if (parts.size() > 2) {
      if (parts[2] == "nary") red = builders::Reduction::kNary;
      else if (parts[2] == "chain") red = builders::Reduction::kChain;
      else if (parts[2] == "tree") red = builders::Reduction::kBinaryTree;
      else usage("unknown reduction '" + parts[2] + "'");
    }
    return builders::naive_matmul(static_cast<int>(parse_int(arg(1), "size")), red);
  }
  if (kind == "strassen")
    return builders::strassen_matmul(static_cast<int>(parse_int(arg(1), "size")));
  if (kind == "bhk")
    return builders::bhk_hypercube(static_cast<int>(parse_int(arg(1), "cities")));
  if (kind == "er")
    return builders::erdos_renyi_dag(parse_int(arg(1), "n"),
                                     parse_double(arg(2), "p"),
                                     static_cast<std::uint64_t>(parse_int(arg(3), "seed")));
  if (kind == "grid")
    return builders::grid(static_cast<int>(parse_int(arg(1), "rows")),
                          static_cast<int>(parse_int(arg(2), "cols")));
  if (kind == "tree")
    return builders::binary_tree(static_cast<int>(parse_int(arg(1), "depth")));
  if (kind == "path") return builders::path(parse_int(arg(1), "n"));
  if (kind == "inner")
    return builders::inner_product(static_cast<int>(parse_int(arg(1), "m")));
  if (kind == "stencil1d")
    return builders::stencil1d(static_cast<int>(parse_int(arg(1), "cells")),
                               static_cast<int>(parse_int(arg(2), "steps")));
  if (kind == "stencil2d")
    return builders::stencil2d(static_cast<int>(parse_int(arg(1), "rows")),
                               static_cast<int>(parse_int(arg(2), "cols")),
                               static_cast<int>(parse_int(arg(3), "steps")));
  if (kind == "scan")
    return builders::prefix_scan(static_cast<int>(parse_int(arg(1), "log n")));
  if (kind == "bitonic")
    return builders::bitonic_sort(static_cast<int>(parse_int(arg(1), "log n")));
  if (kind == "trisolve")
    return builders::triangular_solve(static_cast<int>(parse_int(arg(1), "n")));
  if (kind == "cholesky")
    return builders::cholesky(static_cast<int>(parse_int(arg(1), "n")));
  usage("unknown graph '" + spec + "' (not a family spec or existing file)");
}

struct Args {
  std::string command;
  std::string graph;
  double memory = -1.0;
  std::int64_t processors = 1;
  std::string method = "spectral";
  std::string out;
  int count = 16;
  std::int64_t iterations = 4000;
  std::string levels = "8,64,512";
  bool plain = false;
  bool json = false;
};

Args parse_args(int argc, char** argv) {
  if (argc < 3) usage();
  Args a;
  a.command = argv[1];
  a.graph = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--memory") a.memory = parse_double(next(), "memory");
    else if (flag == "--processors") a.processors = parse_int(next(), "processors");
    else if (flag == "--method") a.method = next();
    else if (flag == "--out") a.out = next();
    else if (flag == "--count") a.count = static_cast<int>(parse_int(next(), "count"));
    else if (flag == "--iterations") a.iterations = parse_int(next(), "iterations");
    else if (flag == "--levels") a.levels = next();
    else if (flag == "--plain") a.plain = true;
    else if (flag == "--json") a.json = true;
    else usage("unknown flag '" + flag + "'");
  }
  return a;
}

void require_memory(const Args& a) {
  if (a.memory < 1.0) usage("command '" + a.command + "' needs --memory M (>= 1)");
}

int cmd_generate(const Args& a, const Digraph& g) {
  if (a.out.empty()) {
    io::write_edgelist(std::cout, g);
  } else {
    io::save_edgelist(a.out, g);
    std::cout << "wrote " << g.num_vertices() << " vertices, "
              << g.num_edges() << " edges to " << a.out << "\n";
  }
  return 0;
}

int cmd_info(const Args& a, const Digraph& g) {
  if (a.json) {
    std::cout << io::graph_to_json(g) << "\n";
    return 0;
  }
  Table t({"property", "value"});
  t.add_row({"vertices", std::to_string(g.num_vertices())});
  t.add_row({"edges", std::to_string(g.num_edges())});
  t.add_row({"sources", std::to_string(g.sources().size())});
  t.add_row({"sinks", std::to_string(g.sinks().size())});
  t.add_row({"max in-degree", std::to_string(g.max_in_degree())});
  t.add_row({"max out-degree", std::to_string(g.max_out_degree())});
  t.add_row({"acyclic", topological_order(g).has_value() ? "yes" : "no"});
  t.print(std::cout);
  return 0;
}

int cmd_bound(const Args& a, const Digraph& g) {
  require_memory(a);
  const bool all = a.method == "all";
  io::JsonWriter json;
  Table table({"method", "bound", "detail", "seconds"});
  if (a.json) json.begin_object();

  auto emit = [&](const std::string& name, double bound,
                  const std::string& detail, double seconds) {
    if (a.json) {
      json.key(name).begin_object();
      json.key("bound").value(bound);
      json.key("detail").value(detail);
      json.key("seconds").value(seconds);
      json.end_object();
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", bound);
      char sec[32];
      std::snprintf(sec, sizeof sec, "%.3f", seconds);
      table.add_row({name, buf, detail, sec});
    }
  };

  if (all || a.method == "spectral") {
    const SpectralBound b =
        a.processors > 1
            ? parallel_spectral_bound(g, a.memory, a.processors)
            : spectral_bound(g, a.memory);
    emit("spectral", b.bound, "k=" + std::to_string(b.best_k), b.seconds);
  }
  if (all || a.method == "plain") {
    const SpectralBound b = spectral_bound_plain(g, a.memory);
    emit("spectral-plain", b.bound, "k=" + std::to_string(b.best_k),
         b.seconds);
  }
  if (all || a.method == "mincut") {
    const auto b = flow::convex_mincut_bound(g, a.memory);
    emit("convex-mincut", b.bound,
         "C(v)=" + std::to_string(b.best_cut), b.seconds);
  }
  if (all) {
    const auto upper = sim::best_schedule_io(g, static_cast<std::int64_t>(a.memory));
    emit("best-schedule (upper)", static_cast<double>(upper.total()),
         "reads+writes", 0.0);
  }
  if (a.json) {
    json.end_object();
    std::cout << json.str() << "\n";
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_spectrum(const Args& a, const Digraph& g) {
  SpectralOptions opts;
  bool converged = true;
  const auto kind = a.plain ? LaplacianKind::kPlain
                            : LaplacianKind::kOutDegreeNormalized;
  const auto values =
      smallest_laplacian_eigenvalues(g, kind, a.count, opts, &converged);
  if (a.json) {
    io::JsonWriter w;
    w.begin_object();
    w.key("kind").value(a.plain ? "plain" : "out-degree-normalized");
    w.key("converged").value(converged);
    w.key("values").begin_array();
    for (double v : values) w.value(v);
    w.end_array();
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  std::printf("# %zu smallest eigenvalues (%s Laplacian)%s\n", values.size(),
              a.plain ? "plain" : "out-degree-normalized",
              converged ? "" : "  [NOT fully converged]");
  for (std::size_t i = 0; i < values.size(); ++i)
    std::printf("lambda_%zu = %.12g\n", i + 1, values[i]);
  return 0;
}

int cmd_simulate(const Args& a, const Digraph& g) {
  require_memory(a);
  const auto m = static_cast<std::int64_t>(a.memory);
  Table t({"schedule", "reads", "writes", "total"});
  auto row = [&](const std::string& name, const sim::SimResult& r) {
    t.add_row({name, std::to_string(r.reads), std::to_string(r.writes),
               std::to_string(r.total())});
  };
  row("natural", sim::simulate_io(g, *topological_order(g), m));
  row("dfs", sim::simulate_io(g, dfs_topological_order(g), m));
  row("greedy-locality", sim::simulate_io(g, sim::greedy_locality_order(g), m));
  row("best-of-all", sim::best_schedule_io(g, m));
  t.print(std::cout);
  return 0;
}

int cmd_exact(const Args& a, const Digraph& g) {
  require_memory(a);
  exact::ExactOptions opts;
  opts.reconstruct_order = true;
  const auto r = exact::exact_optimal_io(
      g, static_cast<std::int64_t>(a.memory), opts);
  if (!r.complete) {
    std::cout << "search hit the state cap (" << r.states_expanded
              << " states) — no exact answer\n";
    return 1;
  }
  std::cout << "J* = " << r.io << "   (" << r.states_expanded
            << " states expanded)\n";
  std::cout << "optimal order:";
  for (VertexId v : r.order) std::cout << ' ' << v;
  std::cout << "\n";
  return 0;
}

int cmd_anneal(const Args& a, const Digraph& g) {
  require_memory(a);
  if (g.max_in_degree() > static_cast<std::int64_t>(a.memory))
    usage("no feasible schedule: max in-degree exceeds --memory");
  sim::AnnealOptions opts;
  opts.iterations = a.iterations;
  const sim::AnnealResult r =
      sim::anneal_schedule(g, static_cast<std::int64_t>(a.memory), opts);
  const SpectralBound lower = spectral_bound(g, a.memory);
  std::cout << "start schedule I/O:   " << r.start_io << "\n"
            << "annealed schedule:    " << r.io << "  ("
            << r.moves_accepted << "/" << r.moves_attempted
            << " moves accepted)\n"
            << "spectral lower bound: " << lower.bound << "\n";
  if (!a.out.empty()) {
    io::JsonWriter w;
    w.begin_object();
    w.key("io").value(r.io);
    w.key("order").begin_array();
    for (VertexId v : r.order) w.value(v);
    w.end_array();
    w.end_object();
    std::ofstream out(a.out);
    out << w.str() << "\n";
    std::cout << "wrote annealed order to " << a.out << "\n";
  }
  return 0;
}

int cmd_parallel(const Args& a, const Digraph& g) {
  require_memory(a);
  const auto m = static_cast<std::int64_t>(a.memory);
  Table t({"p", "Theorem 6 bound", "sim busiest", "sim aggregate"});
  for (std::int64_t p = 1; p <= a.processors; p *= 2) {
    const SpectralBound b = parallel_spectral_bound(g, a.memory, p);
    std::string busiest = "-";
    std::string aggregate = "-";
    if (g.max_in_degree() <= m) {
      const auto r = sim::best_parallel_schedule_io(g, m, p);
      busiest = std::to_string(r.max_total());
      aggregate = std::to_string(r.sum_total());
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", b.bound);
    t.add_row({std::to_string(p), buf, busiest, aggregate});
  }
  t.print(std::cout);
  return 0;
}

int cmd_hierarchy(const Args& a, const Digraph& g) {
  std::vector<double> capacities;
  for (const std::string& part : split(a.levels, ','))
    capacities.push_back(parse_double(part, "level capacity"));
  const HierarchyProfile profile = hierarchy_profile(g, capacities);
  Table t({"level capacity", "traffic bound", "best k"});
  for (const LevelTraffic& level : profile.levels) {
    char cap[32];
    char bound[32];
    std::snprintf(cap, sizeof cap, "%.6g", level.capacity);
    std::snprintf(bound, sizeof bound, "%.6g", level.traffic_bound);
    t.add_row({cap, bound, std::to_string(level.best_k)});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    const Digraph g = resolve_graph(a.graph);
    if (a.command == "generate") return cmd_generate(a, g);
    if (a.command == "info") return cmd_info(a, g);
    if (a.command == "bound") return cmd_bound(a, g);
    if (a.command == "spectrum") return cmd_spectrum(a, g);
    if (a.command == "simulate") return cmd_simulate(a, g);
    if (a.command == "exact") return cmd_exact(a, g);
    if (a.command == "anneal") return cmd_anneal(a, g);
    if (a.command == "parallel") return cmd_parallel(a, g);
    if (a.command == "hierarchy") return cmd_hierarchy(a, g);
    usage("unknown command '" + a.command + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
