#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the test suite.
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
cd "$build_dir"
ctest --output-on-failure -j "$(nproc)"
