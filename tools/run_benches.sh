#!/usr/bin/env bash
# Machine-readable benchmark pass: builds Release and emits
# BENCH_solver.json (monolithic vs per-component spectral pipeline),
# BENCH_serve.json (batch throughput + persistent-store trajectory), and
# BENCH_stream.json (incremental re-analysis vs full recompute) from a
# fixed corpus into the repo root (or $GRAPHIO_BENCH_OUT), then merges
# them all into the schema-stable BENCH_trajectory.json (bench name ->
# headline speedup) so perf history is machine-diffable across PRs.
#
# Usage: tools/run_benches.sh [quick|default|paper] [build-dir]
#   scale default: "default" (CI smoke uses "quick")
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
scale=${1:-default}
build_dir=${2:-"$repo_root/build-bench"}
out_dir=${GRAPHIO_BENCH_OUT:-"$repo_root"}

case "$scale" in
  quick|default|paper) ;;
  *) echo "error: scale must be quick|default|paper (got '$scale')" >&2
     exit 2 ;;
esac

cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_BUILD_TYPE=Release \
      -DGRAPHIO_BUILD_TESTS=OFF \
      -DGRAPHIO_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" \
      --target bench_solver_policy bench_serve_batch bench_stream_updates \
               graphio_bench_trajectory

# The benches write BENCH_*.json into the working directory.
mkdir -p "$out_dir"
cd "$out_dir"
"$build_dir/bench_solver_policy" --scale "$scale"
"$build_dir/bench_serve_batch" --scale "$scale"
"$build_dir/bench_stream_updates" --scale "$scale"
# "." — we already cd'ed into $out_dir (which may be a relative path).
"$build_dir/graphio_bench_trajectory" .

echo
echo "benchmark JSON written to $out_dir:"
ls -l "$out_dir"/BENCH_solver.json "$out_dir"/BENCH_serve.json \
      "$out_dir"/BENCH_stream.json "$out_dir"/BENCH_trajectory.json
