// bench_trajectory — merges every BENCH_*.json in a directory into one
// schema-stable BENCH_trajectory.json, so perf history is machine-
// diffable across PRs without knowing each bench's private schema.
//
//   {"schema": 1, "benches": [
//      {"bench": "solver_policy", "file": "BENCH_solver.json",
//       "scale": "default", "headline_speedup": 174.1,
//       "speedup_samples": 5}, ...],
//    "traces": [
//      {"trace": "TRACE_stream.json", "spans": [
//         {"name": "solve", "count": 3, "total_us": ..., "self_us": ...},
//         ...]}, ...]}
//
// TRACE_*.json files (written by `graphio ... --trace`) contribute
// per-span-name self-time aggregates, so where the wall time of a bench
// went — solve vs extract vs store replay — rides along in the same
// trajectory artifact. The "traces" key is absent when no trace files
// are present, keeping pre-telemetry trajectories byte-stable.
//
// The headline is deliberately schema-agnostic: the maximum over every
// numeric "speedup" field found anywhere in the bench's JSON (each bench
// reports per-case speedups under that key; a bench with none records 0
// with zero samples). Benches are sorted by name, so the output diffs
// cleanly run-over-run. CI uploads the merged file next to the raw
// BENCH_*.json artifacts.
//
// Usage: graphio_bench_trajectory [dir] [out.json]
//   dir default: current directory; out default: dir/BENCH_trajectory.json
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/io/json.hpp"
#include "graphio/telemetry/trace.hpp"

namespace {

using graphio::io::JsonValue;

struct BenchHeadline {
  std::string bench;
  std::string file;
  std::string scale;
  double headline_speedup = 0.0;
  std::int64_t speedup_samples = 0;
};

/// Depth-first sweep for numeric "speedup" members at any nesting level.
void collect_speedups(const JsonValue& value, BenchHeadline& out) {
  if (value.is_object()) {
    for (const auto& [key, member] : value.members()) {
      if (key == "speedup" && member.is_number()) {
        out.headline_speedup =
            std::max(out.headline_speedup, member.as_double());
        ++out.speedup_samples;
      }
      collect_speedups(member, out);
    }
    return;
  }
  if (value.is_array())
    for (const JsonValue& item : value.items()) collect_speedups(item, out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";
  const std::filesystem::path out_path =
      argc > 2 ? std::filesystem::path(argv[2])
               : dir / "BENCH_trajectory.json";

  struct TraceRollup {
    std::string file;
    graphio::telemetry::TraceSummary summary;
  };

  std::vector<BenchHeadline> headlines;
  std::vector<TraceRollup> traces;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("TRACE_", 0) == 0 &&
        (entry.path().extension() == ".json" ||
         entry.path().extension() == ".jsonl")) {
      std::ifstream in(entry.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      try {
        TraceRollup rollup;
        rollup.file = name;
        rollup.summary = graphio::telemetry::summarize_records(
            graphio::telemetry::parse_trace(buffer.str()));
        traces.push_back(std::move(rollup));
      } catch (const std::exception& e) {
        std::cerr << "skipping " << name << ": " << e.what() << "\n";
      }
      continue;
    }
    if (!entry.is_regular_file() || name.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json" ||
        name == "BENCH_trajectory.json")
      continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    BenchHeadline headline;
    headline.file = name;
    try {
      const JsonValue doc = JsonValue::parse(buffer.str());
      const JsonValue* bench = doc.get("bench");
      headline.bench = bench != nullptr && bench->is_string()
                           ? bench->as_string()
                           : name;
      const JsonValue* scale = doc.get("scale");
      if (scale != nullptr && scale->is_string())
        headline.scale = scale->as_string();
      collect_speedups(doc, headline);
    } catch (const std::exception& e) {
      std::cerr << "skipping " << name << ": " << e.what() << "\n";
      continue;
    }
    headlines.push_back(std::move(headline));
  }
  if (ec) {
    std::cerr << "cannot read " << dir << ": " << ec.message() << "\n";
    return 1;
  }
  std::sort(headlines.begin(), headlines.end(),
            [](const BenchHeadline& a, const BenchHeadline& b) {
              return a.bench < b.bench;
            });
  std::sort(traces.begin(), traces.end(),
            [](const TraceRollup& a, const TraceRollup& b) {
              return a.file < b.file;
            });

  graphio::io::JsonWriter w;
  w.begin_object();
  w.key("schema").value(static_cast<std::int64_t>(1));
  w.key("benches").begin_array();
  for (const BenchHeadline& h : headlines) {
    w.begin_object();
    w.key("bench").value(h.bench);
    w.key("file").value(h.file);
    if (!h.scale.empty()) w.key("scale").value(h.scale);
    w.key("headline_speedup").value(h.headline_speedup);
    w.key("speedup_samples").value(h.speedup_samples);
    w.end_object();
  }
  w.end_array();
  if (!traces.empty()) {
    w.key("traces").begin_array();
    for (const TraceRollup& t : traces) {
      w.begin_object();
      w.key("trace").value(t.file);
      w.key("spans").begin_array();
      for (const graphio::telemetry::SpanAggregate& row : t.summary.rows) {
        w.begin_object();
        w.key("name").value(row.name);
        w.key("count").value(row.count);
        w.key("total_us").value(row.total_us);
        w.key("self_us").value(row.self_us);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "merged " << headlines.size() << " bench file(s) and "
            << traces.size() << " trace file(s) into " << out_path.string()
            << "\n";
  return 0;
}
