// End-to-end pipeline on a user-supplied graph: load an edge-list file,
// compute every bound the library offers plus a simulated upper bound, and
// emit a machine-readable JSON report.
//
//   $ ./io_report <graph.edgelist> [memory] [report.json]
//
// With no arguments, a demo Strassen graph is generated, saved, analyzed,
// and reported — so the example is runnable out of the box:
//
//   $ ./io_report
#include <fstream>
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  using namespace graphio;

  Digraph g;
  std::string source;
  if (argc > 1) {
    source = argv[1];
    g = io::load_edgelist(source);
  } else {
    source = "strassen_8.edgelist (generated)";
    g = builders::strassen_matmul(8);
    io::save_edgelist("strassen_8.edgelist", g);
    std::cout << "no input given; wrote demo graph strassen_8.edgelist\n";
  }
  const double memory = argc > 2 ? std::atof(argv[2]) : 8.0;
  const std::string report_path =
      argc > 3 ? argv[3] : std::string("io_report.json");

  std::cout << "graph: " << source << " — " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges, max in-degree "
            << g.max_in_degree() << "\n";

  // Lower bounds.
  const SpectralBound theorem4 = spectral_bound(g, memory);
  const SpectralBound theorem5 = spectral_bound_plain(g, memory);
  const auto mincut = flow::convex_mincut_bound(g, memory);
  std::cout << "Theorem 4 (normalized Laplacian): " << theorem4.bound
            << "  [best k=" << theorem4.best_k << "]\n"
            << "Theorem 5 (plain Laplacian):      " << theorem5.bound << "\n"
            << "convex min-cut baseline:          " << mincut.bound << "\n";

  // Upper bound — only defined when every operand set fits in memory.
  std::int64_t upper = -1;
  if (static_cast<double>(g.max_in_degree()) <= memory) {
    sim::AnnealOptions anneal;
    anneal.iterations = g.num_vertices() > 3000 ? 200 : 1500;
    upper = sim::anneal_schedule(g, static_cast<std::int64_t>(memory), anneal)
                .io;
    std::cout << "annealed schedule (upper bound):  " << upper << "\n";
  } else {
    std::cout << "no feasible schedule: max in-degree exceeds M\n";
  }

  // JSON report.
  io::JsonWriter json;
  json.begin_object();
  json.key("source").value(source);
  json.key("vertices").value(g.num_vertices());
  json.key("edges").value(g.num_edges());
  json.key("memory").value(memory);
  json.key("bounds").begin_object();
  json.key("spectral_theorem4").value(theorem4.bound);
  json.key("spectral_best_k").value(theorem4.best_k);
  json.key("spectral_theorem5").value(theorem5.bound);
  json.key("convex_mincut").value(mincut.bound);
  json.end_object();
  json.key("eigenvalues_used").begin_array();
  for (double lambda : theorem4.eigenvalues) json.value(lambda);
  json.end_array();
  if (upper >= 0) json.key("annealed_upper_bound").value(upper);
  json.end_object();

  std::ofstream out(report_path);
  out << json.str() << "\n";
  std::cout << "wrote " << report_path << "\n";
  return 0;
}
