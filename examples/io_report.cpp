// End-to-end pipeline on a user-supplied graph: load an edge-list file,
// evaluate every bound family the library offers through the Engine, and
// emit the machine-readable BoundReport JSON.
//
//   $ ./io_report <graph.edgelist> [memory] [report.json]
//
// With no arguments, a demo Strassen graph is generated, saved, analyzed,
// and reported — so the example is runnable out of the box:
//
//   $ ./io_report
#include <fstream>
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  using namespace graphio;

  engine::BoundRequest req;
  if (argc > 1) {
    req.spec = argv[1];
  } else {
    io::save_edgelist("strassen_8.edgelist", builders::strassen_matmul(8));
    std::cout << "no input given; wrote demo graph strassen_8.edgelist\n";
    req.spec = "strassen_8.edgelist";
  }
  const double memory = argc > 2 ? std::atof(argv[2]) : 8.0;
  const std::string report_path =
      argc > 3 ? argv[3] : std::string("io_report.json");

  req.memories = {memory};
  req.methods = {"all"};

  Engine engine;
  const engine::BoundReport report = engine.evaluate(req);

  std::cout << "graph: " << report.graph << " — " << report.vertices
            << " vertices, " << report.edges << " edges\n\n";
  report.to_table().print(std::cout);
  std::cout << "\ncache: " << report.cache.misses << " artifacts computed, "
            << report.cache.hits << " reused, " << report.cache.eigensolves
            << " eigensolves\n";

  std::ofstream out(report_path);
  out << report.to_json() << "\n";
  std::cout << "wrote " << report_path << "\n";
  return 0;
}
