// Schedule tuning: how much I/O do different evaluation orders of the same
// computation cost, and how close can local search get to the spectral
// lower bound?
//
//   $ ./schedule_tuner [fft|bhk|matmul|stencil] [size] [memory]
//
// Prints one row per schedule heuristic (natural Kahn, DFS, locality
// greedy, random, annealed) with its simulated I/O under Belady and LRU
// eviction, anchored by the spectral lower bound.
#include <cstdlib>
#include <iostream>
#include <string>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const std::string family = argc > 1 ? argv[1] : "fft";
  const int size = argc > 2 ? std::atoi(argv[2]) : 6;
  const double memory = argc > 3 ? std::atof(argv[3]) : 2.0;

  Digraph g;
  if (family == "fft") {
    g = builders::fft(size);
  } else if (family == "bhk") {
    g = builders::bhk_hypercube(size);
  } else if (family == "matmul") {
    g = builders::naive_matmul(size);
  } else if (family == "stencil") {
    g = builders::stencil1d(4 * size, size);
  } else {
    std::cerr << "unknown family '" << family
              << "' (want fft|bhk|matmul|stencil)\n";
    return 1;
  }
  if (static_cast<double>(g.max_in_degree()) > memory) {
    std::cerr << "M=" << memory << " is below the max in-degree "
              << g.max_in_degree() << "; no schedule is feasible\n";
    return 1;
  }
  const auto m = static_cast<std::int64_t>(memory);

  std::cout << family << " size=" << size << ": " << g.num_vertices()
            << " vertices, M=" << memory << "\n\n";

  Table table({"schedule", "belady I/O", "lru I/O", "vs lower bound"});
  const SpectralBound lower = spectral_bound(g, memory);
  auto report = [&](const std::string& name,
                    const std::vector<VertexId>& order) {
    sim::SimOptions lru;
    lru.policy = sim::EvictionPolicy::kLru;
    const auto belady_io = sim::simulate_io(g, order, m).total();
    const auto lru_io = sim::simulate_io(g, order, m, lru).total();
    const double ratio = lower.bound > 0.0
                             ? static_cast<double>(belady_io) / lower.bound
                             : 0.0;
    table.add_row({name, format_int(belady_io), format_int(lru_io),
                   ratio > 0.0 ? format_double(ratio, 1) + "x" : "-"});
  };

  report("natural (Kahn)", *topological_order(g));
  report("depth-first", dfs_topological_order(g));
  report("locality greedy", sim::greedy_locality_order(g));
  Prng rng(1234);
  report("random", random_topological_order(g, rng));
  sim::AnnealOptions anneal;
  anneal.iterations = g.num_vertices() > 3000 ? 400 : 4000;
  const sim::AnnealResult annealed = sim::anneal_schedule(g, m, anneal);
  report("annealed", annealed.order);

  table.print(std::cout);
  std::cout << "\nspectral lower bound: " << lower.bound
            << "   (no schedule can beat this)\n"
            << "annealing accepted " << annealed.moves_accepted << "/"
            << annealed.moves_attempted << " moves, improving "
            << annealed.start_io << " -> " << annealed.io << "\n";
  return 0;
}
