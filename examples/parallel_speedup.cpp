// Theorem 6 in practice: how much I/O must at least one processor incur
// as the computation is spread across p processors?
//
// The per-processor bound shrinks roughly like ⌊n/(kp)⌋ — this example
// prints the table for an FFT and a BHK hypercube, which is the analysis
// a runtime designer would do before sharding a kernel.
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  const double memory = argc > 1 ? std::atof(argv[1]) : 16.0;
  using namespace graphio;

  for (const auto& [name, graph] :
       {std::pair<std::string, Digraph>{"2^9-point FFT", builders::fft(9)},
        std::pair<std::string, Digraph>{"12-city Bellman-Held-Karp",
                                        builders::bhk_hypercube(12)}}) {
    std::cout << name << " (" << graph.num_vertices() << " vertices), M="
              << memory << "\n";
    // The spectrum does not depend on p: decompose once, re-maximize over
    // k per processor count.
    const std::vector<double> lambda = smallest_laplacian_eigenvalues(
        graph, LaplacianKind::kOutDegreeNormalized, 100);
    Table table({"p", "per-processor lower bound", "bound x p", "best k"});
    for (std::int64_t p : {1, 2, 4, 8, 16, 32}) {
      const BoundOverK b =
          bound_from_spectrum(lambda, graph.num_vertices(), memory, p);
      table.add_row({format_int(p), format_double(b.bound, 1),
                     format_double(b.bound * static_cast<double>(p), 1),
                     format_int(b.best_k)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "The 'bound x p' column is total traffic if every processor "
               "matched the minimum;\nwhen it stops scaling, adding "
               "processors no longer reduces per-processor I/O.\n";
  return 0;
}
