// Quickstart: bound the I/O of an FFT with three lines of library code,
// then sanity-check the bound against real simulated schedules.
//
//   $ ./quickstart [levels] [memory]
#include <cstdlib>
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  const int levels = argc > 1 ? std::atoi(argv[1]) : 8;
  const double memory = argc > 2 ? std::atof(argv[2]) : 16.0;

  // 1. Build (or trace) a computation graph.
  const graphio::Digraph g = graphio::builders::fft(levels);
  std::cout << "2^" << levels << "-point FFT butterfly: " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";

  // 2. Spectral lower bound (Theorem 4) — valid for ANY evaluation order.
  const graphio::SpectralBound lower = graphio::spectral_bound(g, memory);
  std::cout << "spectral lower bound (M=" << memory << "): " << lower.bound
            << "  (best k=" << lower.best_k << ", "
            << lower.seconds * 1e3 << " ms)\n";

  // 3. Compare with the convex min-cut baseline and a real schedule.
  const auto mincut = graphio::flow::convex_mincut_bound(g, memory);
  std::cout << "convex min-cut baseline:    " << mincut.bound << "\n";

  const auto upper = graphio::sim::best_schedule_io(
      g, static_cast<std::int64_t>(memory));
  std::cout << "best simulated schedule:    " << upper.total()
            << " I/Os (upper bound)\n";

  std::cout << "sandwich: " << lower.bound << " <= J* <= " << upper.total()
            << "\n";
  return 0;
}
