// Quickstart: bound the I/O of an FFT through the unified Engine — one
// request evaluates the spectral lower bound, the min-cut baseline, and a
// simulated upper bound, sharing every reusable artifact.
//
//   $ ./quickstart [levels] [memory]
#include <cstdlib>
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  const int levels = argc > 1 ? std::atoi(argv[1]) : 8;
  const double memory = argc > 2 ? std::atof(argv[2]) : 16.0;

  // 1. Describe the analysis: graph, memory sweep, method set.
  graphio::engine::BoundRequest req;
  req.spec = "fft:" + std::to_string(levels);
  req.memories = {memory};
  req.methods = {"spectral", "mincut", "memsim"};

  // 2. Evaluate. The Engine builds the graph, computes shared artifacts
  //    (spectrum, wavefront cuts) once, and runs every method.
  graphio::Engine engine;
  const graphio::engine::BoundReport report = engine.evaluate(req);

  std::cout << "2^" << levels << "-point FFT butterfly: " << report.vertices
            << " vertices, " << report.edges << " edges\n\n";
  report.to_table().print(std::cout);

  // 3. The sandwich: every lower-bound row <= J* <= every upper-bound row.
  const auto* lower = report.row("spectral", memory);
  const auto* upper = report.row("memsim", memory);
  if (lower != nullptr && upper != nullptr && upper->applicable)
    std::cout << "\nsandwich: " << lower->value << " <= J* <= "
              << upper->value << "\n";
  return 0;
}
