// Domain example: sizing fast memory for the Bellman–Held–Karp TSP solver.
//
// Section 5.1 shows the hypercube computation stops being I/O-bound once
// M exceeds ≈ 2^l/(l+1)². This planner sweeps city counts and reports,
// for each, the spectral bound at several memory sizes plus the
// closed-form threshold — the table a systems engineer would use to pick
// a cache budget before running the DP.
//
// The whole M sweep for one city count is a single Engine request, so the
// eigendecomposition is computed once per graph instead of once per cell.
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  const int max_cities = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::vector<double> memories{8.0, 32.0, 128.0};

  graphio::Engine engine;
  graphio::Table table({"cities", "vertices", "M=8", "M=32", "M=128",
                        "closed form (α=1, M=8)", "M threshold (§5.1)"});
  for (int l = 6; l <= max_cities; ++l) {
    graphio::engine::BoundRequest req;
    req.spec = "bhk:" + std::to_string(l);
    req.memories = memories;
    req.methods = {"spectral"};
    const graphio::engine::BoundReport report = engine.evaluate(req);

    std::vector<std::string> row;
    row.push_back(graphio::format_int(l));
    row.push_back(graphio::format_int(report.vertices));
    for (double m : memories) {
      // Paper feasibility rule: no evaluation order exists once the
      // in-degree exceeds M, so the bound column is moot there.
      if (static_cast<double>(l) > m) {
        row.push_back("-");
        continue;
      }
      const auto* cell = report.row("spectral", m);
      row.push_back(graphio::format_double(cell->value, 1));
    }
    row.push_back(graphio::format_double(
        graphio::analytic::bhk_bound_alpha1(l, 8.0), 1));
    row.push_back(graphio::format_double(
        graphio::analytic::bhk_nontrivial_memory_threshold(l), 2));
    table.add_row(std::move(row));
  }

  std::cout << "Bellman–Held–Karp I/O lower bounds (non-trivial I/Os)\n\n";
  table.print(std::cout);
  std::cout << "\nReading: once M clears the threshold column, the DP's "
               "working set fits and the\nspectral bound collapses — "
               "adding cache beyond that point buys nothing.\n";
  return 0;
}
