// Domain example: sizing fast memory for the Bellman–Held–Karp TSP solver.
//
// Section 5.1 shows the hypercube computation stops being I/O-bound once
// M exceeds ≈ 2^l/(l+1)². This planner sweeps city counts and reports,
// for each, the spectral bound at several memory sizes plus the
// closed-form threshold — the table a systems engineer would use to pick
// a cache budget before running the DP.
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  const int max_cities = argc > 1 ? std::atoi(argv[1]) : 12;

  graphio::Table table({"cities", "vertices", "M=8", "M=32", "M=128",
                        "closed form (α=1, M=8)", "M threshold (§5.1)"});
  for (int l = 6; l <= max_cities; ++l) {
    const graphio::Digraph g = graphio::builders::bhk_hypercube(l);
    std::vector<std::string> row;
    row.push_back(graphio::format_int(l));
    row.push_back(graphio::format_int(g.num_vertices()));
    for (double m : {8.0, 32.0, 128.0}) {
      if (static_cast<double>(g.max_in_degree()) > m) {
        row.push_back("-");
        continue;
      }
      row.push_back(graphio::format_double(
          graphio::spectral_bound(g, m).bound, 1));
    }
    row.push_back(graphio::format_double(
        graphio::analytic::bhk_bound_alpha1(l, 8.0), 1));
    row.push_back(graphio::format_double(
        graphio::analytic::bhk_nontrivial_memory_threshold(l), 2));
    table.add_row(std::move(row));
  }

  std::cout << "Bellman–Held–Karp I/O lower bounds (non-trivial I/Os)\n\n";
  table.print(std::cout);
  std::cout << "\nReading: once M clears the threshold column, the DP's "
               "working set fits and the\nspectral bound collapses — "
               "adding cache beyond that point buys nothing.\n";
  return 0;
}
