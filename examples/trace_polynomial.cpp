// The tracer in action: run ordinary-looking numeric code on traced
// values, extract its computation graph, and bound its I/O — the paper's
// "solver" workflow (Section 6.1) in C++.
//
// The computation here is Horner evaluation of a degree-d polynomial at m
// points, sharing the coefficient inputs across points.
#include <iostream>
#include <vector>

#include "graphio/graphio.hpp"

namespace {

/// Horner: p(x) = (((c_d·x + c_{d-1})·x + …)·x + c_0.
graphio::trace::Value horner(const std::vector<graphio::trace::Value>& coeff,
                             graphio::trace::Value x) {
  graphio::trace::Value acc = coeff.back();
  for (std::size_t i = coeff.size() - 1; i-- > 0;) acc = acc * x + coeff[i];
  return acc;
}

}  // namespace

int main() {
  const int degree = 12;
  const int points = 48;
  const double memory = 8.0;

  graphio::trace::Tape tape;
  std::vector<graphio::trace::Value> coeff;
  for (int i = 0; i <= degree; ++i)
    coeff.push_back(tape.input("c" + std::to_string(i)));

  std::vector<graphio::trace::Value> results;
  for (int p = 0; p < points; ++p) {
    const auto x = tape.input("x" + std::to_string(p));
    results.push_back(horner(coeff, x));
  }
  // Reduce all evaluations so the graph has one output (e.g. a checksum).
  (void)graphio::trace::reduce(results, graphio::trace::ReduceShape::kChain,
                               "sum");

  const graphio::Digraph g = tape.release();
  std::cout << "traced polynomial batch: " << g.num_vertices()
            << " operations, " << g.num_edges() << " data edges\n";
  std::cout << "max in-degree " << g.max_in_degree() << ", "
            << g.sources().size() << " inputs, " << g.sinks().size()
            << " output(s)\n";

  const auto lower = graphio::spectral_bound(g, memory);
  const auto upper = graphio::sim::best_schedule_io(
      g, static_cast<std::int64_t>(memory));
  std::cout << "with M=" << memory << ": " << lower.bound
            << " <= J* <= " << upper.total() << "\n";

  // The coefficients are reused by every point: with M much smaller than
  // the coefficient count the computation must re-read them. Watch the
  // bound react to memory size:
  for (double m : {4.0, 8.0, 16.0, 32.0}) {
    const auto b = graphio::spectral_bound(g, m);
    const auto s = graphio::sim::best_schedule_io(
        g, static_cast<std::int64_t>(m));
    std::cout << "  M=" << m << ": lower " << b.bound << " (k=" << b.best_k
              << "), simulated " << s.total() << "\n";
  }
  return 0;
}
