// Parallel planning: for a fixed computation and per-processor memory,
// sweep the processor count and compare the Theorem 6 lower bound with
// simulated partitioned executions (contiguous / round-robin / random
// owner assignment).
//
//   $ ./parallel_planner [levels] [memory]
//
// Reading the table: "bound" is the minimum I/O the busiest processor
// must incur (Theorem 6); the three "sim" columns are the busiest
// processor's I/O under real partitioned executions — the gap is the room
// left for smarter partitioners.
#include <cstdlib>
#include <iostream>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  using namespace graphio;
  const int levels = argc > 1 ? std::atoi(argv[1]) : 8;
  const double memory = argc > 2 ? std::atof(argv[2]) : 2.0;

  const Digraph g = builders::fft(levels);
  const auto m = static_cast<std::int64_t>(memory);
  std::cout << "2^" << levels << "-point FFT, " << g.num_vertices()
            << " vertices, M=" << memory << " per processor\n\n";
  if (g.max_in_degree() > m) {
    std::cerr << "M below max in-degree; infeasible\n";
    return 1;
  }

  const auto order = sim::best_schedule(g, m).order;
  Table table({"p", "Theorem 6 bound", "sim contiguous", "sim round-robin",
               "sim random", "sum of I/O (contig)"});
  for (std::int64_t p : {1, 2, 4, 8, 16}) {
    const SpectralBound bound = parallel_spectral_bound(g, memory, p);
    std::vector<std::string> row{format_int(p),
                                 format_double(bound.bound, 1)};
    std::int64_t contiguous_sum = 0;
    for (auto strategy :
         {sim::PartitionStrategy::kContiguous,
          sim::PartitionStrategy::kRoundRobin,
          sim::PartitionStrategy::kRandom}) {
      const auto assignment = sim::partition_assignment(g, order, p, strategy);
      const auto result = sim::simulate_parallel_io(g, order, assignment, m);
      row.push_back(format_int(result.max_total()));
      if (strategy == sim::PartitionStrategy::kContiguous)
        contiguous_sum = result.sum_total();
    }
    row.push_back(format_int(contiguous_sum));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nExpected shapes: the bound decays like 1/p; contiguous "
               "assignment beats round-robin (fewer cross-processor "
               "edges); the aggregate I/O grows with p (communication "
               "is the price of spreading work).\n";
  return 0;
}
