// Regenerates the paper's illustration figures as Graphviz DOT files:
//   Figure 1 — inner product graph
//   Figure 4 — 3-city Bellman–Held–Karp hypercube
//   Figure 5 — 4-point FFT butterfly
//   Figure 6 — the evaluation-graph gallery (8-pt FFT, 2×2 matmul,
//              2×2 Strassen, 5-city BHK)
//
//   $ ./graph_gallery [output-dir]     (default ".")
//   $ dot -Tpng fig1_inner_product.dot -o fig1.png
#include <iostream>
#include <string>

#include "graphio/graphio.hpp"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  using namespace graphio;

  auto emit = [&](const Digraph& g, const std::string& file,
                  const std::string& name) {
    DotOptions options;
    options.graph_name = name;
    const std::string path = dir + "/" + file;
    write_dot(g, path, options);
    std::cout << path << "  (" << g.num_vertices() << " vertices, "
              << g.num_edges() << " edges)\n";
  };

  emit(builders::inner_product(2), "fig1_inner_product.dot", "inner_product");

  // Figure 4: label hypercube vertices with their visited-set bitstrings.
  Digraph bhk3 = builders::bhk_hypercube(3);
  for (VertexId v = 0; v < bhk3.num_vertices(); ++v) {
    std::string bits;
    for (int b = 2; b >= 0; --b) bits += ((v >> b) & 1) != 0 ? '1' : '0';
    bhk3.set_name(v, bits);
  }
  emit(bhk3, "fig4_bhk_3cities.dot", "bhk_hypercube");

  emit(builders::fft(2), "fig5_fft_4point.dot", "fft_butterfly");

  emit(builders::fft(3), "fig6a_fft_8point.dot", "fft8");
  emit(builders::naive_matmul(2), "fig6b_naive_matmul_2x2.dot", "matmul2");
  emit(builders::strassen_matmul(2), "fig6c_strassen_2x2.dot", "strassen2");
  emit(builders::bhk_hypercube(5), "fig6d_bhk_5cities.dot", "bhk5");

  std::cout << "\nRender with: dot -Tpng <file>.dot -o <file>.png\n";
  return 0;
}
