// Warm-started eigensolve tests (ISSUE satellite 3): a session whose
// store retains eigenbases must answer every query identically to a
// from-scratch Engine, for any patch sequence, any spec, and any solver
// policy — warm starts are a latency lever, never a values lever.
//
// Certified here:
//   * with the refresh fast path disabled, warm-seeded solves match a
//     scratch Engine to 1e-8 across random patch sequences, specs, and
//     every solver policy (the seeding-only parity property),
//   * the refresh fast path reports warm hits for exactly the dirty
//     components and preserves the exact multi-component zero modes the
//     bound consumes,
//   * a patch that disconnects a component falls back to a cold solve
//     without error (the split halves cannot both inherit the
//     predecessor basis),
//   * refcounted stream eviction drops the eigenbases of dead content
//     along with its spectra (ISSUE satellite: eviction respects the
//     stream's refcount discipline).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/stream/session.hpp"

namespace graphio::stream {
namespace {

std::shared_ptr<store::ArtifactStore> warm_store() {
  auto s = std::make_shared<store::ArtifactStore>();
  s->set_eigenbasis_budget(std::int64_t{16} << 20);
  return s;
}

engine::BoundRequest spectral_request(const std::string& solver) {
  engine::BoundRequest req;
  req.memories = {3.0, 7.5};
  req.methods = {"spectral", "spectral-plain"};
  req.spectral.solver = solver;
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 6;
  return req;
}

/// Applies a random mutation to the patch under construction, mirroring
/// state so every mutation is valid for the session's current graph
/// (same shape as the cold-session property test's mutator).
struct RandomMutator {
  std::mt19937_64 rng;
  std::vector<VertexId> alive;
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId next_id = 0;

  explicit RandomMutator(const Digraph& g, std::uint64_t seed) : rng(seed) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) alive.push_back(v);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId w : g.children(v)) edges.emplace_back(v, w);
    next_id = g.num_vertices();
  }

  Patch next_patch(int mutations) {
    Patch patch;
    for (int m = 0; m < mutations; ++m) {
      switch (rng() % 4) {
        case 0: {
          patch.mutations.push_back(Mutation::add_vertex());
          alive.push_back(next_id++);
          break;
        }
        case 1: {
          if (alive.size() < 2) break;
          const VertexId u = alive[rng() % alive.size()];
          const VertexId v = alive[rng() % alive.size()];
          if (u == v) break;
          patch.mutations.push_back(Mutation::add_edge(u, v));
          edges.emplace_back(u, v);
          break;
        }
        case 2: {
          if (edges.empty()) break;
          const std::size_t i = rng() % edges.size();
          patch.mutations.push_back(
              Mutation::remove_edge(edges[i].first, edges[i].second));
          edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
        default: {
          if (alive.size() <= 3) break;
          const std::size_t i = rng() % alive.size();
          const VertexId v = alive[i];
          patch.mutations.push_back(Mutation::remove_vertex(v));
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
          std::erase_if(edges, [v](const auto& e) {
            return e.first == v || e.second == v;
          });
          break;
        }
      }
    }
    return patch;
  }
};

/// Warm-vs-cold parity property (ISSUE satellite): any random patch
/// sequence against a basis-retaining session yields bounds identical
/// (1e-8) to a from-scratch Engine, across specs and every solver
/// policy. The refresh fast path is disabled so this isolates the
/// seeding layer — a warm *start* must change iteration counts only,
/// never converged values.
TEST(StreamWarmTest, SeededSolversMatchScratchAcrossSpecs) {
  const std::vector<std::string> specs = {"fft:4", "er:40:0.1:3",
                                          "multi:3:fft:3"};
  const std::vector<std::string> solvers = {"auto", "dense", "lanczos",
                                            "lobpcg"};
  std::uint64_t seed = 17;
  std::int64_t warm_hits_total = 0;
  for (const std::string& spec : specs) {
    for (const std::string& solver : solvers) {
      StreamSession session("warm-" + spec + "-" + solver, warm_store());
      session.load(spec);
      RandomMutator mutator(session.graph(), seed++);
      for (int round = 0; round < 5; ++round) {
        const Patch patch =
            mutator.next_patch(1 + static_cast<int>(mutator.rng() % 4));
        session.apply(patch);
        engine::BoundRequest req = spectral_request(solver);
        req.spectral.warm_refresh_rel_tol = 0.0;  // seeding only
        const engine::BoundReport incremental = session.evaluate(req);
        warm_hits_total += incremental.cache.warm_hits;

        engine::BoundRequest scratch_req = req;
        scratch_req.graph = session.graph();
        engine::Engine scratch;
        const engine::BoundReport reference = scratch.evaluate(scratch_req);

        ASSERT_EQ(incremental.rows.size(), reference.rows.size());
        for (std::size_t i = 0; i < incremental.rows.size(); ++i) {
          const engine::MethodRow& a = incremental.rows[i];
          const engine::MethodRow& b = reference.rows[i];
          ASSERT_EQ(a.method, b.method);
          ASSERT_EQ(a.memory, b.memory);
          EXPECT_EQ(a.applicable, b.applicable)
              << spec << " " << solver << " round " << round << " "
              << a.method;
          EXPECT_NEAR(a.value, b.value, 1e-8)
              << spec << " " << solver << " round " << round << " "
              << a.method << " M=" << a.memory;
        }
      }
    }
  }
  // The parity above is vacuous unless the warm layer actually engaged.
  EXPECT_GT(warm_hits_total, 0);
}

/// The refresh fast path answers exactly the dirty components warm and
/// keeps the merged zero modes (one per weak component) exact — so the
/// multi-component bound it feeds agrees with a scratch Engine even
/// though the refreshed interior values are certified estimates.
TEST(StreamWarmTest, RefreshReportsWarmHitsForDirtyComponentsOnly) {
  StreamSession session("warm-refresh", warm_store());
  session.load("multi:4:fft:3");
  engine::BoundRequest req;
  req.memories = {3.0, 7.5};
  req.methods = {"spectral"};
  req.spectral.solver = "lobpcg";  // force the iterative (refreshable) tier
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 4;  // = #components: merged zeros only

  const engine::BoundReport cold = session.evaluate(req);
  EXPECT_EQ(cold.cache.warm_hits, 0);  // nothing retained yet

  for (int round = 0; round < 3; ++round) {
    Patch patch;
    // fft edges are layer-adjacent (stride 8); a stride-17 edge is
    // guaranteed new, stays inside copy 0, and keeps the DAG acyclic.
    patch.mutations.push_back(Mutation::add_edge(round, round + 17));
    const PatchReport applied = session.apply(patch);
    ASSERT_EQ(applied.dirty_components, 1);
    const engine::BoundReport warm = session.evaluate(req);
    EXPECT_EQ(warm.cache.warm_hits, 1) << "round " << round;
    EXPECT_EQ(warm.cache.eigensolves, 1) << "round " << round;
    EXPECT_GE(warm.cache.warm_iterations_saved, 0) << "round " << round;

    engine::BoundRequest scratch_req = req;
    scratch_req.graph = session.graph();
    engine::Engine scratch;
    const engine::BoundReport reference = scratch.evaluate(scratch_req);
    ASSERT_EQ(warm.rows.size(), reference.rows.size());
    for (std::size_t i = 0; i < warm.rows.size(); ++i)
      EXPECT_NEAR(warm.rows[i].value, reference.rows[i].value, 1e-9)
          << "round " << round << " M=" << warm.rows[i].memory;
  }
}

/// Disconnecting patch: removing a bridge splits one warm component into
/// two whose fingerprints are both new — at most one half can inherit
/// the predecessor basis (by adoption), the other must solve cold. The
/// query must survive the split and stay exact.
TEST(StreamWarmTest, DisconnectingPatchFallsBackColdCleanly) {
  const std::vector<Digraph> parts = {builders::fft(3),
                                      builders::inner_product(4)};
  Digraph bridged = disjoint_union(parts);
  const VertexId bridge_to = builders::fft(3).num_vertices();  // part 2's v0
  bridged.add_edge(0, bridge_to);

  StreamSession session("warm-split", warm_store());
  session.load(bridged);
  engine::BoundRequest req = spectral_request("lobpcg");
  req.spectral.warm_refresh_rel_tol = 0.0;  // exact parity, any basis state
  session.evaluate(req);  // retains the bridged component's basis

  Patch cut;
  cut.mutations.push_back(Mutation::remove_edge(0, bridge_to));
  const PatchReport applied = session.apply(cut);
  EXPECT_EQ(applied.components, 2);

  const engine::BoundReport warm = session.evaluate(req);
  // At most one of the split halves can warm-start; the cold half's solve
  // must simply run, not fail.
  EXPECT_LE(warm.cache.warm_hits, applied.dirty_components);

  engine::BoundRequest scratch_req = req;
  scratch_req.graph = session.graph();
  engine::Engine scratch;
  const engine::BoundReport reference = scratch.evaluate(scratch_req);
  ASSERT_EQ(warm.rows.size(), reference.rows.size());
  for (std::size_t i = 0; i < warm.rows.size(); ++i) {
    EXPECT_EQ(warm.rows[i].applicable, reference.rows[i].applicable);
    EXPECT_NEAR(warm.rows[i].value, reference.rows[i].value, 1e-8)
        << warm.rows[i].method << " M=" << warm.rows[i].memory;
  }
}

/// Refcounted stream eviction drops dead content's eigenbases along with
/// its spectra: when the last component carrying a content disappears,
/// its retained basis goes too (the adopt-before-release ordering means
/// a *surviving* component's basis instead follows it to the new
/// fingerprint).
TEST(StreamWarmTest, EvictionDropsBasesOfDeadContent) {
  const std::vector<Digraph> parts = {builders::fft(3),
                                      builders::inner_product(4)};
  StreamSession session("warm-evict", warm_store());
  session.load(disjoint_union(parts));
  const auto& cache = *session.engine().artifact_store();

  engine::BoundRequest req;
  req.memories = {8.0};
  req.methods = {"spectral"};
  req.spectral.solver = "lobpcg";
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 4;
  session.evaluate(req);
  // Two distinct contents, one Laplacian kind: two retained bases.
  EXPECT_EQ(cache.stats().eigenbasis.entries, 2);
  EXPECT_GT(cache.eigenbasis_bytes(), 0);

  // Delete every vertex of the second part: its content dies, and the
  // refcount release must take the basis with the spectra.
  const VertexId split = builders::fft(3).num_vertices();
  Patch wipe;
  for (VertexId v = split; v < session.graph().num_vertices(); ++v)
    wipe.mutations.push_back(Mutation::remove_vertex(v));
  const PatchReport applied = session.apply(wipe);
  EXPECT_GT(applied.evicted, 0);
  EXPECT_EQ(cache.stats().eigenbasis.entries, 1);
  EXPECT_GT(cache.stats().eigenbasis.evicted, 0);

  // The surviving component still answers warm after further patches.
  Patch touch;
  touch.mutations.push_back(Mutation::add_edge(0, 9));
  session.apply(touch);
  const engine::BoundReport warm = session.evaluate(req);
  EXPECT_EQ(warm.cache.warm_hits, 1);
}

}  // namespace
}  // namespace graphio::stream
