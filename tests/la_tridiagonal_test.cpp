#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/analytic_spectra.hpp"
#include "graphio/la/dense_matrix.hpp"
#include "graphio/la/householder.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/tridiagonal.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {
namespace {

DenseMatrix tridiag_to_dense(const SymTridiag& t) {
  const std::size_t n = t.diag.size();
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = t.diag[i];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a(i, i + 1) = t.off[i];
    a(i + 1, i) = t.off[i];
  }
  return a;
}

TEST(Tridiagonal, ToeplitzClosedFormMatchesQl) {
  // The paper's P'' matrices: diag 4, off-diag -2 (Lemma 11).
  for (int n : {1, 2, 3, 5, 8, 13}) {
    SymTridiag t;
    t.diag.assign(static_cast<std::size_t>(n), 4.0);
    t.off.assign(static_cast<std::size_t>(n) - (n > 0 ? 1 : 0), -2.0);
    const auto ql = tridiagonal_eigenvalues(t);
    const auto closed = toeplitz_tridiagonal_eigenvalues(n, 4.0, -2.0);
    ASSERT_EQ(ql.size(), closed.size());
    for (std::size_t i = 0; i < ql.size(); ++i)
      EXPECT_NEAR(ql[i], closed[i], 1e-10) << "n=" << n << " i=" << i;
  }
}

TEST(Tridiagonal, ToeplitzMatchesLemma11PathFormula) {
  // λ(L(P''_i)) = 4 − 4cos(jπ/(i+1)) — the same numbers two ways.
  for (int i : {1, 2, 4, 9}) {
    const auto toeplitz = toeplitz_tridiagonal_eigenvalues(i, 4.0, -2.0);
    const auto lemma = analytic::path_pdoubleprime_spectrum(i);
    std::vector<double> sorted = lemma;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(toeplitz.size(), sorted.size());
    for (std::size_t j = 0; j < sorted.size(); ++j)
      EXPECT_NEAR(toeplitz[j], sorted[j], 1e-10);
  }
}

TEST(Tridiagonal, EigenvectorsReconstructMatrix) {
  Prng rng(31);
  SymTridiag t;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) t.diag.push_back(rng.uniform(-2, 2));
  for (std::size_t i = 0; i + 1 < n; ++i) t.off.push_back(rng.uniform(-2, 2));
  const DenseMatrix dense = tridiag_to_dense(t);

  const TridiagEigen eig = tridiagonal_eigen(t);
  // Rebuild V diag(λ) Vᵀ.
  DenseMatrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = eig.values[i];
  const DenseMatrix rebuilt =
      eig.vectors.multiply(lambda).multiply(eig.vectors.transposed());
  EXPECT_LT(rebuilt.max_abs_diff(dense), 1e-10);
}

TEST(Tridiagonal, ZeroOffDiagonalIsJustSorting) {
  SymTridiag t;
  t.diag = {5.0, 1.0, 3.0};
  t.off = {0.0, 0.0};
  const auto values = tridiagonal_eigenvalues(t);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 3.0);
  EXPECT_DOUBLE_EQ(values[2], 5.0);
}

TEST(Tridiagonal, EmptyAndSingleton) {
  SymTridiag empty;
  EXPECT_TRUE(tridiagonal_eigenvalues(empty).empty());
  SymTridiag one;
  one.diag = {7.0};
  const auto v = tridiagonal_eigenvalues(one);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
}

TEST(Householder, PreservesEigenvalues) {
  Prng rng(77);
  const std::size_t n = 20;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  const auto direct = symmetric_eigenvalues(a);

  DenseMatrix scratch = a;
  SymTridiag t = householder_tridiagonalize(scratch, /*accumulate=*/false);
  auto reduced = tridiagonal_eigenvalues(std::move(t));
  ASSERT_EQ(direct.size(), reduced.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], reduced[i], 1e-9);
}

TEST(Householder, AccumulatedTransformIsOrthogonalAndSimilar) {
  Prng rng(5);
  const std::size_t n = 15;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  DenseMatrix q = a;
  const SymTridiag t = householder_tridiagonalize(q, /*accumulate=*/true);

  // Q orthogonal.
  const DenseMatrix qtq = q.transposed().multiply(q);
  EXPECT_LT(qtq.max_abs_diff(DenseMatrix::identity(n)), 1e-10);

  // Qᵀ A Q = T.
  const DenseMatrix t_rebuilt = q.transposed().multiply(a).multiply(q);
  EXPECT_LT(t_rebuilt.max_abs_diff(tridiag_to_dense(t)), 1e-9);
}

}  // namespace
}  // namespace graphio::la
