// Extended workload builders: structure, counts, and degrees match the
// closed-form characterizations in the header.
#include <gtest/gtest.h>

#include "graphio/exact/pebble_search.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {
namespace {

TEST(Stencil1d, CountsAndDegrees) {
  const Digraph g = stencil1d(10, 4);
  EXPECT_EQ(g.num_vertices(), 50);
  // Interior vertex: 3 incoming; border: 2. Edge count:
  // steps · (3·cells − 2).
  EXPECT_EQ(g.num_edges(), 4 * (3 * 10 - 2));
  EXPECT_EQ(g.max_in_degree(), 3);
  EXPECT_TRUE(topological_order(g).has_value());
  EXPECT_EQ(static_cast<int>(g.sources().size()), 10);  // initial row
  EXPECT_EQ(static_cast<int>(g.sinks().size()), 10);    // final row
}

TEST(Stencil1d, ZeroStepsIsAnAntichain) {
  const Digraph g = stencil1d(7, 0);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Stencil2d, CountsAndDegrees) {
  const Digraph g = stencil2d(4, 5, 3);
  EXPECT_EQ(g.num_vertices(), 4 * 5 * 4);
  EXPECT_EQ(g.max_in_degree(), 5);
  EXPECT_TRUE(topological_order(g).has_value());
  // Corners have 3 parents (self + 2 neighbours).
  std::int64_t corner_in = g.in_degree(static_cast<VertexId>(4 * 5));
  EXPECT_EQ(corner_in, 3);
}

TEST(PrefixScan, ShapeAndOutputs) {
  const int log_n = 4;
  const std::int64_t n = 16;
  const Digraph g = prefix_scan(log_n);
  // n inputs + 1 zero + (n−1) up-sweep + (n−1) down-sweep adds + n outputs.
  EXPECT_EQ(g.num_vertices(), n + 1 + (n - 1) + (n - 1) + n);
  EXPECT_TRUE(topological_order(g).has_value());
  EXPECT_EQ(g.max_in_degree(), 2);
  // Outputs: one prefix per input, plus the up-sweep total.
  EXPECT_EQ(static_cast<std::int64_t>(g.sinks().size()), n + 1);
}

TEST(PrefixScan, DepthIsLogarithmic) {
  // Longest path ≈ 2·log n (up + down sweeps), far below the serial n.
  const Digraph g = prefix_scan(5);
  const auto order = *topological_order(g);
  std::vector<std::int64_t> depth(static_cast<std::size_t>(g.num_vertices()),
                                  0);
  std::int64_t longest = 0;
  for (VertexId v : order) {
    for (VertexId p : g.parents(v))
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)],
                   depth[static_cast<std::size_t>(p)] + 1);
    longest = std::max(longest, depth[static_cast<std::size_t>(v)]);
  }
  EXPECT_LE(longest, 2 * 5 + 2);
}

TEST(BitonicSort, ComparatorCount) {
  const int log_n = 3;
  const std::int64_t n = 8;
  const Digraph g = bitonic_sort(log_n);
  // Comparators: n/2 · log_n(log_n+1)/2 = 4·6 = 24, two vertices each.
  const std::int64_t comparators = (n / 2) * log_n * (log_n + 1) / 2;
  EXPECT_EQ(g.num_vertices(), n + 2 * comparators);
  EXPECT_EQ(g.num_edges(), 4 * comparators);
  EXPECT_EQ(g.max_in_degree(), 2);
  EXPECT_TRUE(topological_order(g).has_value());
  // Final wires: n sinks.
  EXPECT_EQ(static_cast<std::int64_t>(g.sinks().size()), n);
}

TEST(TriangularSolve, CountsAndChainStructure) {
  const int n = 5;
  const Digraph g = triangular_solve(n);
  // Inputs: n(n+1)/2 + n; per row i: i products + i subs + 1 divide.
  const std::int64_t inputs = n * (n + 1) / 2 + n;
  std::int64_t ops = 0;
  for (int i = 0; i < n; ++i) ops += 2 * i + 1;
  EXPECT_EQ(g.num_vertices(), inputs + ops);
  EXPECT_EQ(g.max_in_degree(), 2);
  EXPECT_TRUE(topological_order(g).has_value());
  // x_{n-1} is the last solve output and a sink.
  EXPECT_EQ(g.name(g.sinks().back()), "x" + std::to_string(n - 1));
}

TEST(TriangularSolve, SequentialDependencyChainIsDeep) {
  // x_i depends on x_{i-1} (via the products), so depth grows with n.
  const Digraph g = triangular_solve(6);
  const auto order = *topological_order(g);
  std::vector<std::int64_t> depth(static_cast<std::size_t>(g.num_vertices()),
                                  0);
  std::int64_t longest = 0;
  for (VertexId v : order) {
    for (VertexId p : g.parents(v))
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)],
                   depth[static_cast<std::size_t>(p)] + 1);
    longest = std::max(longest, depth[static_cast<std::size_t>(v)]);
  }
  EXPECT_GE(longest, 10);
}

TEST(Cholesky, CountsAndDegrees) {
  const int n = 4;
  const Digraph g = cholesky(n);
  // Inputs n(n+1)/2; ops: per k one sqrt, (n−k−1) divides, T(k) updates
  // where T(k) = (n−k−1)(n−k)/2.
  std::int64_t ops = 0;
  for (int k = 0; k < n; ++k)
    ops += 1 + (n - k - 1) + (n - k - 1) * (n - k) / 2;
  EXPECT_EQ(g.num_vertices(), n * (n + 1) / 2 + ops);
  EXPECT_EQ(g.max_in_degree(), 3);
  EXPECT_TRUE(topological_order(g).has_value());
}

TEST(Cholesky, FactorEntriesAreNamed) {
  const Digraph g = cholesky(3);
  bool found = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    found = found || g.name(v) == "L22";
  EXPECT_TRUE(found);
}

TEST(ExtendedBuilders, RejectBadArguments) {
  EXPECT_THROW(stencil1d(0, 1), contract_error);
  EXPECT_THROW(stencil2d(1, 0, 1), contract_error);
  EXPECT_THROW(prefix_scan(0), contract_error);
  EXPECT_THROW(bitonic_sort(0), contract_error);
  EXPECT_THROW(triangular_solve(0), contract_error);
  EXPECT_THROW(cholesky(0), contract_error);
}

TEST(ExtendedBuilders, TinyInstancesAreExactlySolvable) {
  // Smoke the whole stack on the new families: exact J* is well-defined
  // and sandwiched by the simulator.
  for (const Digraph& g : {stencil1d(3, 2), prefix_scan(2),
                           triangular_solve(2), cholesky(2)}) {
    if (g.num_vertices() > exact::kMaxExactVertices) continue;
    const std::int64_t m = std::max<std::int64_t>(3, g.max_in_degree());
    const auto r = exact::exact_optimal_io(g, m);
    ASSERT_TRUE(r.complete);
    EXPECT_LE(r.io, sim::best_schedule_io(g, m).total());
  }
}

}  // namespace
}  // namespace graphio::builders
