#include <gtest/gtest.h>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/graph/transforms.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Reverse, SwapsSourcesAndSinks) {
  const Digraph g = builders::fft(3);
  const Digraph r = reverse(g);
  EXPECT_EQ(g.sources(), r.sinks());
  EXPECT_EQ(g.sinks(), r.sources());
  EXPECT_EQ(g.num_edges(), r.num_edges());
  EXPECT_TRUE(is_dag(r));
}

TEST(Reverse, IsAnInvolution) {
  const Digraph g = builders::strassen_matmul(4);
  EXPECT_TRUE(same_structure(g, reverse(reverse(g))));
}

TEST(Reverse, PreservesPlainLaplacian) {
  // The undirected skeleton is unchanged, so L is identical.
  const Digraph g = builders::naive_matmul(3);
  const Digraph r = reverse(g);
  const auto lg = dense_laplacian(g, LaplacianKind::kPlain);
  const auto lr = dense_laplacian(r, LaplacianKind::kPlain);
  EXPECT_DOUBLE_EQ(lg.max_abs_diff(lr), 0.0);
}

TEST(Reverse, Theorem4CanDifferBetweenComputationAndAdjoint) {
  // Normalized edge weights 1/dout(u) flip direction under reversal; on a
  // graph with asymmetric degrees the two bounds differ.
  const Digraph g = builders::star(6);  // hub out-degree 5; reverse: in 5
  const auto fwd = laplacian(g, LaplacianKind::kOutDegreeNormalized);
  const auto bwd =
      laplacian(reverse(g), LaplacianKind::kOutDegreeNormalized);
  EXPECT_GT(fwd.to_dense().max_abs_diff(bwd.to_dense()), 0.1);
}

TEST(TransitiveReduction, RemovesImpliedEdges) {
  // Triangle 0→1, 1→2, 0→2: the direct 0→2 edge is implied.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const Digraph tr = transitive_reduction(g);
  EXPECT_EQ(tr.num_edges(), 2);
  EXPECT_EQ(tr.children(0).size(), 1u);
  EXPECT_EQ(tr.children(0)[0], 1);
}

TEST(TransitiveReduction, CollapsesParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(transitive_reduction(g).num_edges(), 1);
}

TEST(TransitiveReduction, FixedPointOnAlreadyReducedGraphs) {
  // Butterfly and hypercube graphs have no transitive edges.
  for (const Digraph& g : {builders::fft(4), builders::bhk_hypercube(4),
                           builders::path(7)}) {
    const Digraph tr = transitive_reduction(g);
    EXPECT_TRUE(same_structure(g, tr)) << "n=" << g.num_vertices();
  }
}

TEST(TransitiveReduction, PreservesReachability) {
  // Random DAG: the reduction must preserve the reachable-set of every
  // vertex while never adding edges.
  const Digraph g = builders::erdos_renyi_dag(40, 0.15, 5);
  const Digraph tr = transitive_reduction(g);
  EXPECT_LE(tr.num_edges(), g.num_edges());

  auto reach_set = [](const Digraph& graph, VertexId from) {
    std::vector<char> seen(static_cast<std::size_t>(graph.num_vertices()), 0);
    std::vector<VertexId> stack{from};
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId w : graph.children(u)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          stack.push_back(w);
        }
      }
    }
    return seen;
  };
  for (VertexId v = 0; v < g.num_vertices(); v += 7)
    EXPECT_EQ(reach_set(g, v), reach_set(tr, v)) << "vertex " << v;
}

TEST(TransitiveReduction, BoundNeverGrows) {
  // Removing edges removes Laplacian weight; Σ smallest eigenvalues can
  // only shrink (Weyl monotonicity), so the spectral bound cannot grow.
  const Digraph g = builders::erdos_renyi_dag(200, 0.05, 11);
  const Digraph tr = transitive_reduction(g);
  const double before = spectral_bound(g, 4.0).bound;
  const double after = spectral_bound(tr, 4.0).bound;
  EXPECT_LE(after, before + 1e-9);
}

TEST(TransitiveReduction, ThrowsOnCycles) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(transitive_reduction(g), contract_error);
}

TEST(SameStructure, DetectsDifferences) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(0, 2);
  EXPECT_FALSE(same_structure(a, b));
  EXPECT_TRUE(same_structure(a, a));
  EXPECT_FALSE(same_structure(a, Digraph(4)));
}

}  // namespace
}  // namespace graphio
