#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Topo, OrdersSimpleDag) {
  Digraph g(4);
  g.add_edge(3, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(is_topological(g, *order));
}

TEST(Topo, DetectsCycles) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_dag(g));
  EXPECT_THROW(dfs_topological_order(g), contract_error);
  Prng rng(1);
  EXPECT_THROW(random_topological_order(g, rng), contract_error);
}

TEST(Topo, CycleBuilderIsNotADag) {
  EXPECT_FALSE(is_dag(builders::cycle(5)));
  EXPECT_TRUE(is_dag(builders::path(5)));
}

TEST(Topo, IsTopologicalRejectsBadOrders) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(is_topological(g, {0, 1, 2}));
  EXPECT_FALSE(is_topological(g, {1, 0, 2}));     // violates 0 -> 1
  EXPECT_FALSE(is_topological(g, {0, 1}));        // too short
  EXPECT_FALSE(is_topological(g, {0, 1, 1}));     // duplicate
  EXPECT_FALSE(is_topological(g, {0, 1, 5}));     // bad id
}

TEST(Topo, KahnOrderIsDeterministicLowestIdFirst) {
  Digraph g(4);  // two independent chains
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ((*order)[0], 0);  // lowest ready id first
}

TEST(Topo, DfsOrderIsTopological) {
  const auto g = builders::fft(4);
  const auto order = dfs_topological_order(g);
  EXPECT_TRUE(is_topological(g, order));
}

TEST(Topo, DfsHandlesVeryDeepGraphsWithoutOverflow) {
  const auto g = builders::path(200000);
  const auto order = dfs_topological_order(g);
  EXPECT_TRUE(is_topological(g, order));
}

TEST(Topo, RandomOrdersAreTopologicalAndVary) {
  const auto g = builders::bhk_hypercube(5);
  Prng rng(99);
  std::set<std::vector<VertexId>> seen;
  for (int i = 0; i < 8; ++i) {
    auto order = random_topological_order(g, rng);
    EXPECT_TRUE(is_topological(g, order));
    seen.insert(std::move(order));
  }
  EXPECT_GT(seen.size(), 1u);  // randomization actually varies
}

TEST(Topo, BuilderGraphsAreAllDags) {
  EXPECT_TRUE(is_dag(builders::fft(5)));
  EXPECT_TRUE(is_dag(builders::naive_matmul(4)));
  EXPECT_TRUE(is_dag(builders::strassen_matmul(4)));
  EXPECT_TRUE(is_dag(builders::bhk_hypercube(5)));
  EXPECT_TRUE(is_dag(builders::erdos_renyi_dag(60, 0.2, 5)));
  EXPECT_TRUE(is_dag(builders::grid(7, 9)));
  EXPECT_TRUE(is_dag(builders::binary_tree(5)));
  EXPECT_TRUE(is_dag(builders::inner_product(6)));
  EXPECT_TRUE(is_dag(builders::complete_dag(12)));
  EXPECT_TRUE(is_dag(builders::star(12)));
}

}  // namespace
}  // namespace graphio
