#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/lobpcg.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

// Forces the iterative path (the solver hands tiny problems to the dense
// solver by default, which would make these tests vacuous).
la::LobpcgOptions iterative() {
  la::LobpcgOptions opts;
  opts.dense_fallback = 0;
  return opts;
}

void expect_matches_dense(const Digraph& g, LaplacianKind kind, int want,
                          double tol = 1e-6) {
  const la::CsrMatrix lap = laplacian(g, kind);
  const la::LobpcgResult res = la::lobpcg_smallest(lap, want, iterative());
  ASSERT_TRUE(res.converged) << "n=" << lap.size() << " want=" << want;
  ASSERT_EQ(res.values.size(), static_cast<std::size_t>(want));
  std::vector<double> dense = la::symmetric_eigenvalues(lap.to_dense());
  for (int i = 0; i < want; ++i)
    EXPECT_NEAR(res.values[static_cast<std::size_t>(i)],
                dense[static_cast<std::size_t>(i)], tol)
        << "eigenvalue index " << i;
}

TEST(Lobpcg, PathLaplacianMatchesDense) {
  expect_matches_dense(builders::path(400), LaplacianKind::kPlain, 8);
}

TEST(Lobpcg, ButterflyNormalizedLaplacianMatchesDense) {
  expect_matches_dense(builders::fft(6), LaplacianKind::kOutDegreeNormalized,
                       12);
}

TEST(Lobpcg, HypercubeRecoversMultiplicities) {
  // Q_9 Laplacian spectrum: eigenvalue 2i with multiplicity C(9, i); the
  // first ten values are {0, 2×9}. Multiplicity recovery is the classic
  // LOBPCG failure mode that hard locking plus random refills must handle.
  const Digraph g = builders::bhk_hypercube(9);
  const la::CsrMatrix lap = laplacian(g, LaplacianKind::kPlain);
  const la::LobpcgResult res = la::lobpcg_smallest(lap, 10, iterative());
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.values[0], 0.0, 1e-7);
  for (std::size_t i = 1; i < 10; ++i)
    EXPECT_NEAR(res.values[i], 2.0, 1e-6) << "index " << i;
}

TEST(Lobpcg, ResidualsCertifyTheValues) {
  const Digraph g = builders::erdos_renyi_dag(600, 0.02, 7);
  const la::CsrMatrix lap = laplacian(g, LaplacianKind::kOutDegreeNormalized);
  const la::LobpcgResult res = la::lobpcg_smallest(lap, 6, iterative());
  ASSERT_TRUE(res.converged);
  const std::vector<double> dense = la::symmetric_eigenvalues(lap.to_dense());
  for (std::size_t i = 0; i < res.values.size(); ++i) {
    // |θ − λ| ≤ ‖r‖ for some true eigenvalue λ; with ascending-prefix
    // locking the matched eigenvalue is the i-th.
    EXPECT_LE(std::abs(res.values[i] - dense[i]), res.residuals[i] + 1e-9);
  }
}

TEST(Lobpcg, DenseFallbackOnTinyProblems) {
  const Digraph g = builders::fft(3);
  const la::CsrMatrix lap = laplacian(g, LaplacianKind::kPlain);
  la::LobpcgOptions opts;  // default fallback threshold of 320 covers n=32
  const la::LobpcgResult res = la::lobpcg_smallest(lap, 5, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.matvecs, 0);  // dense path does no sparse matvecs
  EXPECT_EQ(res.values.size(), 5u);
}

TEST(Lobpcg, WantZeroAndWantClampedToN) {
  const la::CsrMatrix lap =
      laplacian(builders::path(5), LaplacianKind::kPlain);
  const la::LobpcgResult none = la::lobpcg_smallest(lap, 0);
  EXPECT_TRUE(none.converged);
  EXPECT_TRUE(none.values.empty());
  const la::LobpcgResult all = la::lobpcg_smallest(lap, 99);
  EXPECT_EQ(all.values.size(), 5u);
}

TEST(Lobpcg, ValuesAscendAndAreNonNegativeOnPsdLaplacians) {
  const Digraph g = builders::stencil1d(40, 12);
  const la::CsrMatrix lap = laplacian(g, LaplacianKind::kOutDegreeNormalized);
  const la::LobpcgResult res = la::lobpcg_smallest(lap, 8, iterative());
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(std::is_sorted(res.values.begin(), res.values.end()));
  for (double v : res.values) EXPECT_GE(v, -1e-8);
}

TEST(Lobpcg, RejectsBadOptions) {
  const la::CsrMatrix lap =
      laplacian(builders::path(4), LaplacianKind::kPlain);
  la::LobpcgOptions opts;
  opts.max_iterations = 0;
  EXPECT_THROW(la::lobpcg_smallest(lap, 2, opts), contract_error);
  opts = {};
  opts.rel_tol = 0.0;
  EXPECT_THROW(la::lobpcg_smallest(lap, 2, opts), contract_error);
  EXPECT_THROW(la::lobpcg_smallest(lap, -1), contract_error);
}

TEST(LobpcgBackend, SpectralBoundAgreesWithDenseBackend) {
  const Digraph g = builders::fft(7);  // 1024 vertices
  SpectralOptions dense;
  dense.backend = EigenBackend::kDense;
  dense.max_eigenvalues = 12;
  SpectralOptions lobpcg;
  lobpcg.backend = EigenBackend::kLobpcg;
  lobpcg.max_eigenvalues = 12;
  lobpcg.eig_rel_tol = 1e-9;
  const SpectralBound a = spectral_bound(g, 4.0, dense);
  const SpectralBound b = spectral_bound(g, 4.0, lobpcg);
  // The sparse bound uses certified lower estimates, so it can only sit
  // at or slightly below the dense bound.
  EXPECT_LE(b.bound, a.bound + 1e-6);
  EXPECT_GT(b.bound, 0.95 * a.bound);
}

class LobpcgFamilySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LobpcgFamilySweep, MatchesDenseAcrossFamiliesAndWants) {
  const auto [family, want] = GetParam();
  Digraph g;
  switch (family) {
    case 0: g = builders::fft(5); break;
    case 1: g = builders::bhk_hypercube(8); break;
    case 2: g = builders::naive_matmul(5); break;
    default: g = builders::erdos_renyi_dag(500, 0.015, 3); break;
  }
  expect_matches_dense(g, LaplacianKind::kOutDegreeNormalized, want, 1e-5);
}

std::string sweep_name(const ::testing::TestParamInfo<std::tuple<int, int>>& p) {
  static constexpr const char* kNames[] = {"fft", "bhk", "matmul", "er"};
  return std::string(kNames[std::get<0>(p.param)]) + "_want" +
         std::to_string(std::get<1>(p.param));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LobpcgFamilySweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(4, 12)),
                         sweep_name);

}  // namespace
}  // namespace graphio
