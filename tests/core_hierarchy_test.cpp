#include <gtest/gtest.h>

#include "graphio/core/hierarchy.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"

namespace graphio {
namespace {

TEST(Hierarchy, EachLevelMatchesTheTwoLevelBound) {
  const Digraph g = builders::fft(6);
  const std::vector<double> capacities{2.0, 8.0, 32.0};
  const HierarchyProfile profile = hierarchy_profile(g, capacities);
  ASSERT_EQ(profile.levels.size(), 3u);
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const SpectralBound two_level = spectral_bound(g, capacities[i]);
    EXPECT_DOUBLE_EQ(profile.levels[i].traffic_bound, two_level.bound)
        << "level " << i;
    EXPECT_EQ(profile.levels[i].capacity, capacities[i]);
  }
}

TEST(Hierarchy, TrafficWeaklyDecreasesWithCapacity) {
  const Digraph g = builders::bhk_hypercube(8);
  const std::vector<double> capacities{2.0, 4.0, 16.0, 64.0, 256.0};
  const HierarchyProfile profile = hierarchy_profile(g, capacities);
  for (std::size_t i = 1; i < profile.levels.size(); ++i)
    EXPECT_LE(profile.levels[i].traffic_bound,
              profile.levels[i - 1].traffic_bound + 1e-9);
}

TEST(Hierarchy, SharedSpectrumAcrossLevels) {
  const Digraph g = builders::fft(5);
  const std::vector<double> capacities{4.0, 16.0};
  const HierarchyProfile profile = hierarchy_profile(g, capacities);
  EXPECT_FALSE(profile.eigenvalues.empty());
  EXPECT_TRUE(profile.eigensolver_converged);
  // The profile's spectrum is the same one a direct bound call computes.
  const SpectralBound direct = spectral_bound(g, 4.0);
  EXPECT_EQ(profile.eigenvalues, direct.eigenvalues);
}

TEST(Hierarchy, EmptyCapacitiesAndEdgelessGraphs) {
  const Digraph g = builders::fft(4);
  EXPECT_TRUE(hierarchy_profile(g, {}).levels.empty());
  const Digraph isolated(6);
  const std::vector<double> capacities{1.0, 2.0};
  const HierarchyProfile profile = hierarchy_profile(isolated, capacities);
  for (const LevelTraffic& level : profile.levels)
    EXPECT_DOUBLE_EQ(level.traffic_bound, 0.0);
}

TEST(Hierarchy, UnsortedCapacitiesArePricedIndependently) {
  const Digraph g = builders::fft(6);
  const std::vector<double> forward{2.0, 32.0};
  const std::vector<double> backward{32.0, 2.0};
  const HierarchyProfile a = hierarchy_profile(g, forward);
  const HierarchyProfile b = hierarchy_profile(g, backward);
  EXPECT_DOUBLE_EQ(a.levels[0].traffic_bound, b.levels[1].traffic_bound);
  EXPECT_DOUBLE_EQ(a.levels[1].traffic_bound, b.levels[0].traffic_bound);
}

}  // namespace
}  // namespace graphio
