#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "graphio/support/contracts.hpp"
#include "graphio/support/env.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/prng.hpp"
#include "graphio/support/table.hpp"
#include "graphio/support/timer.hpp"

namespace graphio {
namespace {

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(GIO_EXPECTS(1 == 2), contract_error);
  EXPECT_NO_THROW(GIO_EXPECTS(1 == 1));
  EXPECT_THROW(GIO_EXPECTS_MSG(false, "context"), contract_error);
}

TEST(Contracts, MessageMentionsConditionAndContext) {
  try {
    GIO_EXPECTS_MSG(false, "helpful note");
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("helpful note"), std::string::npos);
  }
}

TEST(Prng, DeterministicForEqualSeeds) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Prng, BelowIsUnbiasedAcrossRange) {
  Prng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 450);
}

TEST(Prng, NormalHasUnitVariance) {
  Prng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sq / trials, 1.0, 0.05);
}

TEST(Prng, ShuffleIsAPermutation) {
  Prng rng(17);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(items);
  std::set<int> seen(items.begin(), items.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, SplitStreamsAreIndependent) {
  Prng a(3);
  Prng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i)
    sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.seconds(), 0.0);
  const double first = t.milliseconds();
  const double second = t.milliseconds();
  EXPECT_GE(second, first);  // monotone across calls
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
}

TEST(Table, RejectsMisshapenRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "x"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(12.5), "12.5");
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(std::nan("")), "-");
}

TEST(Env, MissingVariableIsNullopt) {
  EXPECT_FALSE(env_string("GRAPHIO_DEFINITELY_NOT_SET").has_value());
  EXPECT_FALSE(env_int("GRAPHIO_DEFINITELY_NOT_SET").has_value());
}

TEST(Env, ReadsIntegers) {
  ::setenv("GRAPHIO_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("GRAPHIO_TEST_INT").value(), 42);
  ::setenv("GRAPHIO_TEST_INT", "nonsense", 1);
  EXPECT_THROW(env_int("GRAPHIO_TEST_INT"), contract_error);
  ::unsetenv("GRAPHIO_TEST_INT");
}

// parallel_for / parallel_for_dynamic must produce the same result as a
// serial loop in every build flavor: OpenMP, the std::thread fallback,
// and the degraded serial paths (small n, nested regions). The bodies
// write disjoint slots per CP.2, so these also serve as the
// ThreadSanitizer CI job's data-race probes.

TEST(Parallel, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Parallel, StaticScheduleCoversEveryIndexOnce) {
  // Above the fallback's spawn threshold so the threaded path runs when
  // hardware allows.
  const std::int64_t n = 10000;
  std::vector<int> touched(static_cast<std::size_t>(n), 0);
  parallel_for(n, [&](std::int64_t i) {
    ++touched[static_cast<std::size_t>(i)];
  });
  for (std::int64_t i = 0; i < n; ++i)
    ASSERT_EQ(touched[static_cast<std::size_t>(i)], 1) << i;
}

TEST(Parallel, DynamicScheduleCoversEveryIndexOnce) {
  const std::int64_t n = 257;
  std::vector<int> touched(static_cast<std::size_t>(n), 0);
  parallel_for_dynamic(n, [&](std::int64_t i) {
    ++touched[static_cast<std::size_t>(i)];
  });
  for (std::int64_t i = 0; i < n; ++i)
    ASSERT_EQ(touched[static_cast<std::size_t>(i)], 1) << i;
}

TEST(Parallel, HandlesSmallAndEmptyRanges) {
  int calls = 0;
  parallel_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(3, [&](std::int64_t) { ++calls; });  // below threshold
  EXPECT_EQ(calls, 3);
  parallel_for_dynamic(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 3);
  parallel_for_dynamic(1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(Parallel, SerialRegionForcesSerialExecutionInEveryBuild) {
  // Inside a SerialRegion the loop must run on the calling thread only —
  // a non-atomic counter would race otherwise. Holds for OpenMP and the
  // std::thread fallback alike (the serve scheduler relies on it to stop
  // worker-level × loop-level thread multiplication).
  const SerialRegion guard;
  const std::int64_t n = 100000;
  std::int64_t counter = 0;
  parallel_for(n, [&](std::int64_t) { ++counter; });
  EXPECT_EQ(counter, n);
  parallel_for_dynamic(1000, [&](std::int64_t) { ++counter; });
  EXPECT_EQ(counter, n + 1000);
}

TEST(Parallel, NestedRegionsStaySafe) {
  // An outer dynamic loop whose body runs an inner parallel_for: the
  // fallback must serialize the inner loop instead of oversubscribing
  // (OpenMP does the same with nesting disabled). Totals must match the
  // doubly-serial result either way.
  const std::int64_t outer = 8;
  const std::int64_t inner = 5000;
  std::vector<std::int64_t> sums(static_cast<std::size_t>(outer), 0);
  parallel_for_dynamic(outer, [&](std::int64_t o) {
    std::vector<std::int64_t> local(static_cast<std::size_t>(inner), 0);
    parallel_for(inner, [&](std::int64_t i) { local[
        static_cast<std::size_t>(i)] = i; });
    std::int64_t sum = 0;
    for (std::int64_t v : local) sum += v;
    sums[static_cast<std::size_t>(o)] = sum;
  });
  for (std::int64_t o = 0; o < outer; ++o)
    EXPECT_EQ(sums[static_cast<std::size_t>(o)],
              inner * (inner - 1) / 2);
}

TEST(Env, BenchScaleParses) {
  ::setenv("GRAPHIO_BENCH_SCALE", "quick", 1);
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kQuick);
  ::setenv("GRAPHIO_BENCH_SCALE", "paper", 1);
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kPaper);
  ::setenv("GRAPHIO_BENCH_SCALE", "bogus", 1);
  EXPECT_THROW(bench_scale_from_env(), contract_error);
  ::unsetenv("GRAPHIO_BENCH_SCALE");
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kDefault);
}

}  // namespace
}  // namespace graphio
