#include <gtest/gtest.h>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/csr_matrix.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {
namespace {

TEST(CsrMatrix, BuildsFromTripletsWithDuplicateSumming) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, {{0, 1, 2.0}, {0, 1, 3.0}, {2, 2, 1.0}, {1, 0, -4.0}});
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.nonzeros(), 3);
  const DenseMatrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), -4.0);
  EXPECT_DOUBLE_EQ(d(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(CsrMatrix, DropsEntriesThatCancel) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {{0, 1, 1.0}, {0, 1, -1.0}});
  EXPECT_EQ(m.nonzeros(), 0);
}

TEST(CsrMatrix, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{0, 2, 1.0}}),
               graphio::contract_error);
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{-1, 0, 1.0}}),
               graphio::contract_error);
}

TEST(CsrMatrix, MatvecMatchesDense) {
  Prng rng(123);
  std::vector<Triplet> entries;
  const std::int64_t n = 50;
  for (int e = 0; e < 300; ++e)
    entries.push_back({static_cast<std::int64_t>(rng.below(n)),
                       static_cast<std::int64_t>(rng.below(n)),
                       rng.uniform(-1, 1)});
  const CsrMatrix sparse = CsrMatrix::from_triplets(n, entries);
  const DenseMatrix dense = sparse.to_dense();

  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1, 1);
  std::vector<double> ys(static_cast<std::size_t>(n));
  std::vector<double> yd(static_cast<std::size_t>(n));
  sparse.matvec(x, ys);
  dense.matvec(x, yd);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(CsrMatrix, SymmetryErrorDetectsAsymmetry) {
  const CsrMatrix sym =
      CsrMatrix::from_triplets(2, {{0, 1, 3.0}, {1, 0, 3.0}});
  EXPECT_NEAR(sym.symmetry_error(), 0.0, 1e-15);
  const CsrMatrix asym =
      CsrMatrix::from_triplets(2, {{0, 1, 3.0}, {1, 0, 1.0}});
  EXPECT_NEAR(asym.symmetry_error(), 2.0, 1e-15);
}

TEST(CsrMatrix, GershgorinBoundsLaplacianSpectrum) {
  const auto g = builders::fft(5);
  const CsrMatrix lap = laplacian(g, LaplacianKind::kPlain);
  // Laplacian Gershgorin bound = 2 · max degree = 2 · 4 = 8 for interior
  // butterfly vertices.
  EXPECT_DOUBLE_EQ(lap.gershgorin_upper_bound(), 8.0);
}

TEST(CsrMatrix, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::from_triplets(0, {});
  EXPECT_EQ(m.size(), 0);
  EXPECT_EQ(m.nonzeros(), 0);
  std::vector<double> x;
  std::vector<double> y;
  m.matvec(x, y);  // no-op, no crash
}

}  // namespace
}  // namespace graphio::la
