// The Lanczos solver underwrites the soundness of every large-graph bound,
// so these tests focus on the failure mode that would silently corrupt
// bounds: missing eigenvalue multiplicity.
#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/analytic_spectra.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/lanczos.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {
namespace {

void expect_matches_dense(const Digraph& g, LaplacianKind kind, int want,
                          double tol, const LanczosOptions& opts = {}) {
  const CsrMatrix lap = laplacian(g, kind);
  LanczosOptions forced = opts;
  forced.dense_fallback = 0;  // force the Krylov path
  const LanczosResult sparse = smallest_eigenvalues(lap, want, forced);
  ASSERT_TRUE(sparse.converged)
      << "cycles=" << sparse.cycles << " got=" << sparse.values.size();

  auto dense = symmetric_eigenvalues(lap.to_dense());
  ASSERT_GE(static_cast<int>(dense.size()), want);
  for (int i = 0; i < want; ++i)
    EXPECT_NEAR(sparse.values[static_cast<std::size_t>(i)],
                dense[static_cast<std::size_t>(i)], tol)
        << "index " << i;
}

TEST(Lanczos, PathGraphSimpleSpectrum) {
  expect_matches_dense(builders::path(400), LaplacianKind::kPlain, 25, 1e-7);
}

TEST(Lanczos, GridGraph) {
  expect_matches_dense(builders::grid(20, 20), LaplacianKind::kPlain, 30,
                       1e-7);
}

TEST(Lanczos, HypercubeMultiplicities) {
  // Q_8: eigenvalues 0,2,4,6 with multiplicities 1,8,28,56 — the first 37
  // values contain a 28-fold eigenvalue, larger than the block size.
  expect_matches_dense(builders::bhk_hypercube(8), LaplacianKind::kPlain, 60,
                       1e-7);
}

TEST(Lanczos, HypercubeNormalizedLaplacian) {
  expect_matches_dense(builders::bhk_hypercube(8),
                       LaplacianKind::kOutDegreeNormalized, 40, 1e-7);
}

TEST(Lanczos, ButterflyPlainLaplacian) {
  expect_matches_dense(builders::fft(5), LaplacianKind::kPlain, 40, 1e-7);
}

TEST(Lanczos, ButterflyNormalizedLaplacian) {
  expect_matches_dense(builders::fft(5),
                       LaplacianKind::kOutDegreeNormalized, 40, 1e-7);
}

TEST(Lanczos, ErdosRenyiGraph) {
  expect_matches_dense(builders::erdos_renyi_dag(300, 0.05, 9),
                       LaplacianKind::kOutDegreeNormalized, 30, 1e-7);
}

TEST(Lanczos, DisconnectedGraphZeroMultiplicity) {
  // Three disjoint paths → eigenvalue 0 with multiplicity 3.
  Digraph g(0);
  for (int c = 0; c < 3; ++c) {
    const VertexId base = g.num_vertices();
    for (int i = 0; i < 120; ++i) g.add_vertex();
    for (int i = 0; i + 1 < 120; ++i)
      g.add_edge(base + i, base + i + 1);
  }
  const CsrMatrix lap = laplacian(g, LaplacianKind::kPlain);
  LanczosOptions opts;
  opts.dense_fallback = 0;
  const LanczosResult res = smallest_eigenvalues(lap, 5, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.values[0], 0.0, 1e-8);
  EXPECT_NEAR(res.values[1], 0.0, 1e-8);
  EXPECT_NEAR(res.values[2], 0.0, 1e-8);
  EXPECT_GT(res.values[3], 1e-6);
}

TEST(Lanczos, SmallProblemsFallBackToDense) {
  const CsrMatrix lap =
      laplacian(builders::path(40), LaplacianKind::kPlain);
  const LanczosResult res = smallest_eigenvalues(lap, 10);  // default opts
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.matvecs, 0);  // dense path used
  const auto dense = symmetric_eigenvalues(lap.to_dense());
  for (int i = 0; i < 10; ++i)
    EXPECT_NEAR(res.values[static_cast<std::size_t>(i)],
                dense[static_cast<std::size_t>(i)], 1e-9);
}

TEST(Lanczos, WantZeroAndWantAll) {
  const CsrMatrix lap =
      laplacian(builders::path(500), LaplacianKind::kPlain);
  const LanczosResult none = smallest_eigenvalues(lap, 0);
  EXPECT_TRUE(none.converged);
  EXPECT_TRUE(none.values.empty());
}

TEST(Lanczos, DeterministicAcrossRuns) {
  const CsrMatrix lap =
      laplacian(builders::grid(25, 25), LaplacianKind::kPlain);
  LanczosOptions opts;
  opts.dense_fallback = 0;
  const LanczosResult a = smallest_eigenvalues(lap, 12, opts);
  const LanczosResult b = smallest_eigenvalues(lap, 12, opts);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i)
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
}

TEST(Lanczos, InterlacingNeverUndershootsTruth) {
  // Locked values must match true eigenvalues to residual tolerance; in
  // particular the k-th smallest locked value must not be significantly
  // *below* the k-th smallest true value (that would inflate bounds).
  const auto g = builders::erdos_renyi_dag(500, 0.02, 77);
  const CsrMatrix lap = laplacian(g, LaplacianKind::kPlain);
  LanczosOptions opts;
  opts.dense_fallback = 0;
  const LanczosResult sparse = smallest_eigenvalues(lap, 20, opts);
  ASSERT_TRUE(sparse.converged);
  const auto dense = symmetric_eigenvalues(lap.to_dense());
  for (std::size_t i = 0; i < sparse.values.size(); ++i)
    EXPECT_GT(sparse.values[i], dense[i] - 1e-6);
}

}  // namespace
}  // namespace graphio::la
