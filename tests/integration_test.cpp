// End-to-end sandwich tests: every lower bound must sit below the
// simulated I/O of every actual schedule, across all graph families and
// memory sizes (parameterized sweeps).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graphio/core/published.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/schedule.hpp"
#include "graphio/trace/tape.hpp"

namespace graphio {
namespace {

enum class Family { kFft, kMatmul, kStrassen, kHypercube, kErdosRenyi };

std::string family_name(Family f) {
  switch (f) {
    case Family::kFft: return "fft";
    case Family::kMatmul: return "matmul";
    case Family::kStrassen: return "strassen";
    case Family::kHypercube: return "hypercube";
    case Family::kErdosRenyi: return "er";
  }
  return "?";
}

Digraph build(Family f, int size) {
  switch (f) {
    case Family::kFft: return builders::fft(size);
    case Family::kMatmul: return builders::naive_matmul(size);
    case Family::kStrassen: return builders::strassen_matmul(size);
    case Family::kHypercube: return builders::bhk_hypercube(size);
    case Family::kErdosRenyi:
      return builders::erdos_renyi_dag(40 * size, 0.1, 1234 + size);
  }
  return Digraph();
}

using Case = std::tuple<Family, int, std::int64_t>;  // family, size, M

class SandwichTest : public ::testing::TestWithParam<Case> {};

TEST_P(SandwichTest, LowerBoundsNeverExceedSimulatedSchedules) {
  const auto [family, size, memory] = GetParam();
  const Digraph g = build(family, size);
  if (g.max_in_degree() > memory) GTEST_SKIP() << "infeasible M";

  // Upper bounds: several real schedules under Belady eviction.
  const sim::SimResult upper = sim::best_schedule_io(g, memory, 3);
  const std::int64_t greedy =
      sim::simulate_io(g, sim::greedy_locality_order(g), memory).total();
  const std::int64_t best_upper = std::min(upper.total(), greedy);

  // Lower bounds.
  const double thm4 = spectral_bound(g, static_cast<double>(memory)).bound;
  const double thm5 =
      spectral_bound_plain(g, static_cast<double>(memory)).bound;
  const double mincut =
      flow::convex_mincut_bound(g, static_cast<double>(memory)).bound;

  EXPECT_LE(thm4, static_cast<double>(best_upper) + 1e-6)
      << family_name(family) << " size=" << size << " M=" << memory;
  EXPECT_LE(thm5, static_cast<double>(best_upper) + 1e-6);
  EXPECT_LE(mincut, static_cast<double>(best_upper) + 1e-6);
  // Theorem 5 is the looser variant.
  EXPECT_LE(thm5, thm4 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SandwichTest,
    ::testing::Values(
        Case{Family::kFft, 3, 4}, Case{Family::kFft, 4, 4},
        Case{Family::kFft, 5, 8}, Case{Family::kFft, 6, 16},
        Case{Family::kMatmul, 3, 4}, Case{Family::kMatmul, 4, 8},
        Case{Family::kMatmul, 5, 8}, Case{Family::kStrassen, 2, 4},
        Case{Family::kStrassen, 4, 8}, Case{Family::kStrassen, 8, 16},
        Case{Family::kHypercube, 4, 4}, Case{Family::kHypercube, 5, 8},
        Case{Family::kHypercube, 6, 8}, Case{Family::kErdosRenyi, 1, 8},
        Case{Family::kErdosRenyi, 2, 16}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return family_name(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_m" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(Integration, TracedGraphFlowsThroughTheWholePipeline) {
  // Trace a computation, bound it, simulate it — the full user journey.
  trace::Tape tape;
  std::vector<trace::Value> xs;
  for (int i = 0; i < 16; ++i) xs.push_back(tape.input());
  // A butterfly-ish mixing computation.
  for (int round = 0; round < 3; ++round) {
    std::vector<trace::Value> next;
    for (std::size_t i = 0; i < xs.size(); ++i)
      next.push_back(xs[i] * xs[(i + (1u << round)) % xs.size()]);
    xs = std::move(next);
  }
  const Digraph g = tape.release();

  const double lower = spectral_bound(g, 4).bound;
  const auto upper = sim::best_schedule_io(g, 4);
  EXPECT_LE(lower, static_cast<double>(upper.total()) + 1e-6);
  EXPECT_GT(upper.total(), 0);  // this computation genuinely spills at M=4
}

TEST(Integration, FigureShapesFftGrowsRoughlyLinearlyInGrowthTerm) {
  // Figure 7 (bottom): bound vs l·2^l should look linear — check the
  // ratio stays within a modest band across l.
  // M = 2 keeps the bound positive at test-sized graphs (at M = 4 the 2kM
  // term wins until l = 7, as the paper's own figure shows near-zero
  // values at small l).
  double lo = 1e18;
  double hi = 0.0;
  for (int l : {6, 7, 8}) {
    const double bound = spectral_bound(builders::fft(l), 2).bound;
    ASSERT_GT(bound, 0.0) << l;
    const double ratio = bound / published::fft_growth(l);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  EXPECT_LT(hi / lo, 4.0);
}

TEST(Integration, SpectralBeatsMinCutOnEvaluationGraphs) {
  // The paper's headline comparison (Section 6.4): the spectral bound is
  // tighter than convex min-cut on the evaluated families.
  {
    // At l = 8 the spectral bound has overtaken the min-cut baseline
    // (32.4 vs 24 at M = 4); below l ≈ 7 both are near zero and the
    // baseline can even lead, exactly as in the small-l region of Fig. 7.
    const Digraph g = builders::fft(8);
    EXPECT_GT(spectral_bound(g, 4).bound,
              flow::convex_mincut_bound(g, 4).bound);
  }
  {
    const Digraph g = builders::bhk_hypercube(10);
    EXPECT_GT(spectral_bound(g, 16).bound,
              flow::convex_mincut_bound(g, 16).bound);
  }
  {
    // §6.4: "the convex min-cut method is trivial for the naive matrix
    // multiplication graph" — wavefronts through non-sink vertices stay
    // tiny, so the baseline collapses while the spectral bound does not.
    const Digraph g = builders::naive_matmul(8);
    EXPECT_DOUBLE_EQ(flow::convex_mincut_bound(g, 32).bound, 0.0);
    EXPECT_GE(spectral_bound(g, 32).bound, 0.0);
  }
}

}  // namespace
}  // namespace graphio
