#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/io/json.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/serve/scheduler.hpp"
#include "graphio/stream/session.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio::telemetry {
namespace {

// ---------------------------------------------------------------- metrics

TEST(TelemetryMetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  // Same name resolves to the same counter.
  reg.counter("c").increment();
  EXPECT_EQ(c.value(), 6);

  Gauge& g = reg.gauge("g");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

// The interpolation is exact for data uniform within each bucket: 1000
// values 1ms..1s in 1ms steps land uniformly in the 1-2-5 latency
// buckets, so p50/p95/p99 come out exactly 0.5/0.95/0.99.
TEST(TelemetryHistogramTest, PercentilesExactOnUniformData) {
  Histogram h(default_latency_bounds());
  for (int i = 1; i <= 1000; ++i) h.observe(0.001 * i);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_NEAR(snap.sum, 500.5, 1e-9);
  EXPECT_NEAR(snap.percentile(0.50), 0.50, 1e-12);
  EXPECT_NEAR(snap.percentile(0.95), 0.95, 1e-12);
  EXPECT_NEAR(snap.percentile(0.99), 0.99, 1e-12);
}

TEST(TelemetryHistogramTest, SnapshotDeltaBracketsARun) {
  Histogram h(default_latency_bounds());
  for (int i = 0; i < 100; ++i) h.observe(0.010);  // pre-existing noise
  const HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.observe(0.100);
  const HistogramSnapshot delta = h.snapshot() - before;
  EXPECT_EQ(delta.count, 50);
  EXPECT_NEAR(delta.sum, 5.0, 1e-9);
  // Every delta observation sits in the (0.05, 0.1] bucket.
  EXPECT_NEAR(delta.percentile(0.99), 0.1, 1e-2);
}

TEST(TelemetryHistogramTest, OverflowBucketClampsToLastBound) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(100.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 2.0);
}

TEST(TelemetryMetricsTest, RegistryJsonParses) {
  MetricsRegistry reg;
  reg.counter("a.events").add(3);
  reg.gauge("a.level").set(1.25);
  reg.histogram("a.seconds").observe(0.002);
  const std::string json = reg.to_json();
  const io::JsonValue doc = io::JsonValue::parse(json);
  EXPECT_EQ(doc.at("counters").at("a.events").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("a.level").as_double(), 1.25);
  EXPECT_EQ(doc.at("histograms").at("a.seconds").at("count").as_int(), 1);
}

TEST(TelemetryMetricsTest, PrometheusExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("solver.warm_hits").add(3);
  reg.gauge("queue.depth").set(1.5);
  reg.histogram("job.seconds", {0.01, 0.1}).observe(0.002);
  reg.histogram("job.seconds").observe(0.05);
  reg.histogram("job.seconds").observe(5.0);  // overflow bucket
  const std::string text = reg.to_prometheus();

  // Counters get the graphio_ prefix, sanitized names, and _total.
  EXPECT_NE(text.find("# TYPE graphio_solver_warm_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("graphio_solver_warm_hits_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("graphio_queue_depth 1.5"), std::string::npos);
  // Histogram buckets are CUMULATIVE and end at +Inf == count.
  EXPECT_NE(text.find("graphio_job_seconds_bucket{le=\"0.01\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("graphio_job_seconds_bucket{le=\"0.1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("graphio_job_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("graphio_job_seconds_count 3"), std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.rfind("graphio_", 0), 0u) << line;
  }
}

// ------------------------------------------------------------------ spans

TEST(TelemetryTraceTest, SpanNestingRecordsParentLinks) {
  Tracer tracer;
  tracer.enable();
  {
    Span outer("outer", tracer);
    outer.attr("k", "v");
    {
      Span inner("inner", tracer);
      inner.attr("n", 7);
    }
  }
  tracer.disable();
  const std::vector<SpanRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Children end (and record) before their parents.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[0].parent, records[1].id);
  EXPECT_EQ(records[1].parent, 0u);
  EXPECT_EQ(records[0].tid, records[1].tid);
  EXPECT_GE(records[0].start_us, records[1].start_us);
  ASSERT_EQ(records[0].attrs.size(), 1u);
  EXPECT_EQ(records[0].attrs[0].key, "n");
  EXPECT_EQ(records[0].attrs[0].int_value, 7);
}

TEST(TelemetryTraceTest, DisabledTracerRecordsNothingButTimes) {
  Tracer tracer;  // never enabled
  Span span("quiet", tracer);
  span.attr("ignored", 1);
  span.end();
  EXPECT_GE(span.seconds(), 0.0);
  EXPECT_FALSE(span.recording());
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TelemetryTraceTest, SpanSecondsFreezesAtEnd) {
  Tracer tracer;
  Span span("t", tracer);
  span.end();
  const double first = span.seconds();
  const double second = span.seconds();
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(TelemetryTraceTest, RingBufferDropsOldestAndCounts) {
  Tracer tracer;
  tracer.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) Span(std::to_string(i), tracer).end();
  tracer.disable();
  const std::vector<SpanRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().name, "6");  // oldest surviving
  EXPECT_EQ(records.back().name, "9");
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(TelemetryTraceTest, ChromeExportRoundTrips) {
  Tracer tracer;
  tracer.enable();
  {
    Span outer("phase", tracer);
    outer.attr("graph", "fft:4").attr("items", 3).attr("ratio", 0.5);
    tracer.instant("marker", {Attr::str("kind", "spectrum")});
  }
  tracer.disable();

  std::ostringstream chrome;
  tracer.export_chrome(chrome);
  // Valid JSON first.
  const io::JsonValue doc = io::JsonValue::parse(chrome.str());
  ASSERT_TRUE(doc.get("traceEvents") != nullptr);
  EXPECT_EQ(doc.at("traceEvents").items().size(), 2u);

  // And parse_trace recovers the records.
  const std::vector<SpanRecord> records = parse_trace(chrome.str());
  ASSERT_EQ(records.size(), 2u);
  int spans = 0;
  int instants = 0;
  for (const SpanRecord& r : records) {
    if (r.instant()) {
      ++instants;
      EXPECT_EQ(r.name, "marker");
    } else {
      ++spans;
      EXPECT_EQ(r.name, "phase");
      ASSERT_EQ(r.attrs.size(), 3u);
      EXPECT_EQ(r.attrs[0].string_value, "fft:4");
      EXPECT_EQ(r.attrs[1].int_value, 3);
      EXPECT_DOUBLE_EQ(r.attrs[2].double_value, 0.5);
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
}

TEST(TelemetryTraceTest, JsonlExportRoundTrips) {
  Tracer tracer;
  tracer.enable();
  {
    Span a("a", tracer);
    Span b("b", tracer);
  }
  tracer.disable();
  std::ostringstream jsonl;
  tracer.export_jsonl(jsonl);
  const std::vector<SpanRecord> records = parse_trace(jsonl.str());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "b");
  EXPECT_EQ(records[1].name, "a");
  EXPECT_EQ(records[0].parent, records[1].id);
}

TEST(TelemetryTraceTest, DropCountsSurviveExportRoundTrip) {
  Tracer tracer;
  tracer.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) Span(std::to_string(i), tracer).end();
  tracer.disable();
  ASSERT_EQ(tracer.dropped(), 6u);

  // Both export formats carry the drop count, and parse_trace recovers
  // it so `trace summarize` can warn that its totals undercount.
  std::ostringstream chrome;
  tracer.export_chrome(chrome);
  std::int64_t dropped = -1;
  std::vector<SpanRecord> records = parse_trace(chrome.str(), &dropped);
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(records.size(), 4u);

  std::ostringstream jsonl;
  tracer.export_jsonl(jsonl);
  dropped = -1;
  records = parse_trace(jsonl.str(), &dropped);
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(records.size(), 4u);

  // A clean trace exports byte-identically to the pre-drop format: no
  // meta line, and the out-param comes back zero.
  Tracer clean;
  clean.enable();
  Span("first", clean).end();
  Span("second", clean).end();
  clean.disable();
  std::ostringstream clean_jsonl;
  clean.export_jsonl(clean_jsonl);
  EXPECT_EQ(clean_jsonl.str().find("trace_meta"), std::string::npos);
  dropped = -1;
  records = parse_trace(clean_jsonl.str(), &dropped);
  EXPECT_EQ(dropped, 0);
  EXPECT_EQ(records.size(), 2u);
}

TEST(TelemetryTraceTest, SummarizeComputesSelfTime) {
  // Hand-built tree: parent (100us) with two children (30us + 20us),
  // plus an unrelated root (10us). Self time subtracts direct children.
  std::vector<SpanRecord> records;
  SpanRecord parent;
  parent.name = "parent";
  parent.id = 1;
  parent.start_us = 0;
  parent.dur_us = 100;
  SpanRecord c1;
  c1.name = "child";
  c1.id = 2;
  c1.parent = 1;
  c1.start_us = 10;
  c1.dur_us = 30;
  SpanRecord c2 = c1;
  c2.id = 3;
  c2.start_us = 50;
  c2.dur_us = 20;
  SpanRecord other;
  other.name = "other";
  other.id = 4;
  other.start_us = 200;
  other.dur_us = 10;
  records = {parent, c1, c2, other};

  const TraceSummary summary = summarize_records(records);
  EXPECT_EQ(summary.spans, 4);
  ASSERT_EQ(summary.rows.size(), 3u);
  // Rows sorted by self time descending: parent 50, child 50... child's
  // aggregate self is 30+20=50 == parent's; order between equals is by
  // appearance, so just look rows up by name.
  double parent_self = -1;
  double child_self = -1;
  double child_total = -1;
  for (const SpanAggregate& row : summary.rows) {
    if (row.name == "parent") parent_self = row.self_us;
    if (row.name == "child") {
      child_self = row.self_us;
      child_total = row.total_us;
    }
  }
  EXPECT_DOUBLE_EQ(parent_self, 50.0);
  EXPECT_DOUBLE_EQ(child_self, 50.0);
  EXPECT_DOUBLE_EQ(child_total, 50.0);

  // The renderers accept the summary.
  EXPECT_FALSE(summary_table(summary).empty());
  const io::JsonValue doc = io::JsonValue::parse(summary_json(summary));
  EXPECT_EQ(doc.at("spans").as_int(), 4);
}

// ----------------------------------------------------- instrumented layers

// Engine artifact activity must mirror into the registry 1:1 — the legacy
// Stats struct and the registry delta report identical values.
TEST(TelemetryIntegrationTest, CacheStatsEqualRegistryDelta) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t hits_before = reg.counter("cache.hits").value();
  const std::int64_t misses_before = reg.counter("cache.misses").value();
  const std::int64_t solves_before = reg.counter("cache.eigensolves").value();

  engine::Engine eng;
  engine::BoundRequest req;
  req.spec = "fft:4";
  req.memories = {4, 8};
  req.methods = {"spectral"};
  (void)eng.evaluate(req);
  const engine::ArtifactCache::Stats stats = eng.stats();

  EXPECT_EQ(reg.counter("cache.hits").value() - hits_before, stats.hits);
  EXPECT_EQ(reg.counter("cache.misses").value() - misses_before,
            stats.misses);
  EXPECT_EQ(reg.counter("cache.eigensolves").value() - solves_before,
            stats.eigensolves);
  EXPECT_GT(stats.eigensolves, 0);
}

// Reinstalling a graph under the same name (what every stream patch does)
// used to zero the per-graph cache Stats; lifetime Engine totals must be
// monotone across reinstalls.
TEST(TelemetryIntegrationTest, EngineStatsSurviveGraphReinstall) {
  stream::StreamSession session("telemetry_g");
  session.load("fft:4");
  engine::BoundRequest req;
  req.memories = {8};
  req.methods = {"spectral"};
  (void)session.evaluate(req);
  const engine::ArtifactCache::Stats before = session.engine().stats();
  EXPECT_GT(before.eigensolves, 0);

  // Patch zero: reload replaces the installed graph outright.
  session.load("fft:4");
  const engine::ArtifactCache::Stats after = session.engine().stats();
  EXPECT_GE(after.eigensolves, before.eigensolves);
  EXPECT_GE(after.misses, before.misses);

  (void)session.evaluate(req);
  const engine::ArtifactCache::Stats final_stats = session.engine().stats();
  EXPECT_GT(final_stats.eigensolves, 0);
  EXPECT_GE(final_stats.misses, after.misses);
}

// Span nesting stays consistent when the multi-threaded Scheduler runs
// jobs concurrently (this test is part of the TSan suite).
TEST(TelemetryIntegrationTest, SchedulerEmitsJobSpansAcrossThreads) {
  Tracer& tracer = Tracer::global();
  tracer.enable();

  serve::SchedulerOptions options;
  options.threads = 4;
  serve::Scheduler scheduler(options);
  std::vector<serve::Job> jobs;
  const char* specs[] = {"fft:3", "fft:4", "grid:3:3", "path:16",
                         "tree:3", "inner:4"};
  for (int i = 0; i < 12; ++i) {
    serve::Job job;
    job.id = i + 1;
    job.request.spec = specs[i % 6];
    job.request.memories = {4};
    job.request.methods = {"mincut"};
    jobs.push_back(std::move(job));
  }
  int results = 0;
  scheduler.run(std::move(jobs), [&](const serve::JobResult& result) {
    EXPECT_TRUE(result.ok) << result.error;
    ++results;
  });
  tracer.disable();
  EXPECT_EQ(results, 12);

  const std::vector<SpanRecord> records = tracer.snapshot();
  int job_spans = 0;
  std::set<std::uint64_t> job_ids;
  for (const SpanRecord& r : records) {
    if (r.name != "serve.job") continue;
    ++job_spans;
    EXPECT_EQ(r.parent, 0u);  // scheduler jobs are root spans
    job_ids.insert(r.id);
  }
  EXPECT_EQ(job_spans, 12);
  EXPECT_EQ(job_ids.size(), 12u);  // ids are process-unique
  // Every non-root span's parent ran on the same thread.
  for (const SpanRecord& r : records) {
    if (r.parent == 0) continue;
    for (const SpanRecord& p : records)
      if (p.id == r.parent) EXPECT_EQ(p.tid, r.tid);
  }
  tracer.clear();
}

// BatchSummary latency distribution: count covers every job, p99 comes
// from the registry histogram delta, and the JSON footer carries both.
TEST(TelemetryIntegrationTest, BatchSummaryCarriesLatencyHistogram) {
  serve::BatchSession session(serve::BatchOptions{.threads = 2});
  std::istringstream jobs(
      "{\"spec\": \"fft:3\", \"memories\": [4], \"methods\": [\"mincut\"]}\n"
      "{\"spec\": \"fft:4\", \"memories\": [4], \"methods\": [\"mincut\"]}\n"
      "{\"spec\": \"grid:3:3\", \"memories\": [4], \"methods\": "
      "[\"mincut\"]}\n");
  std::ostringstream out;
  const serve::BatchSummary summary = session.run(jobs, out);
  EXPECT_EQ(summary.ok, 3);
  EXPECT_EQ(summary.latency.count, 3);
  // p99 interpolates within the histogram bucket holding rank 0.99*count
  // (it need not dominate the exact rank-based p50 when every sample
  // shares one bucket); it is positive whenever any job ran.
  EXPECT_GT(summary.p99_seconds, 0.0);

  const io::JsonValue doc = io::JsonValue::parse(summary.to_json());
  EXPECT_EQ(doc.at("latency").at("count").as_int(), 3);
  EXPECT_TRUE(doc.get("p99_seconds") != nullptr);
  std::int64_t bucket_total = 0;
  for (const io::JsonValue& bucket : doc.at("latency").at("buckets").items())
    bucket_total += bucket.at("count").as_int();
  EXPECT_EQ(bucket_total, 3);
}

// Stream sessions mirror their Stats into stream.* registry counters.
TEST(TelemetryIntegrationTest, StreamStatsEqualRegistryDelta) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t patches_before = reg.counter("stream.patches").value();
  const std::int64_t queries_before = reg.counter("stream.queries").value();

  stream::StreamSession session("telemetry_s");
  session.load("fft:3");
  stream::Patch patch;
  patch.mutations.push_back(stream::Mutation::add_vertex());
  session.apply(patch);
  engine::BoundRequest req;
  req.memories = {4};
  req.methods = {"mincut"};
  (void)session.evaluate(req);

  const stream::StreamSession::Stats stats = session.stats();
  EXPECT_EQ(reg.counter("stream.patches").value() - patches_before,
            stats.patches);
  EXPECT_EQ(reg.counter("stream.queries").value() - queries_before,
            stats.queries);
  EXPECT_EQ(stats.patches, 2);  // load counts as patch zero
  EXPECT_EQ(stats.queries, 1);
}

}  // namespace
}  // namespace graphio::telemetry
