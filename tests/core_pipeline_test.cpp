#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

SpectralOptions dense_monolithic() {
  SpectralOptions options;
  options.backend = EigenBackend::kDense;
  options.decompose = false;
  return options;
}

void expect_near_spectra(const std::vector<double>& a,
                         const std::vector<double>& b, double tol,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << what << " lambda_" << i;
}

// ------------------------------------------------------------- decomposition

TEST(SpectralPipeline, ConnectedGraphIsSingleInPlaceSolve) {
  const Digraph g = builders::fft(4);
  const PipelineResult result = SpectralPipeline(SpectralOptions{}).run(
      g, LaplacianKind::kOutDegreeNormalized, 16);
  EXPECT_EQ(result.components, 1);
  EXPECT_EQ(result.eigensolves, 1);
  ASSERT_EQ(result.per_component.size(), 1u);
  EXPECT_EQ(result.per_component[0].vertices, g.num_vertices());
  EXPECT_EQ(static_cast<int>(result.values.size()), 16);
  EXPECT_TRUE(result.converged);
}

TEST(SpectralPipeline, DisjointFftCorpusSolvesPerComponent) {
  // The ISSUE 3 acceptance shape: 8 disjoint FFTs -> 8 small eigensolves,
  // never 1 monolithic one, with the merged spectrum matching the
  // monolithic dense solve exactly.
  const Digraph g = engine::GraphSpec::parse("multi:8:fft:4").build();
  const int h = 40;

  const PipelineResult piped =
      SpectralPipeline(SpectralOptions{}).run(g, LaplacianKind::kOutDegreeNormalized, h);
  EXPECT_EQ(piped.components, 8);
  EXPECT_EQ(piped.eigensolves, 8);
  for (const ComponentSolve& solve : piped.per_component) {
    EXPECT_EQ(solve.vertices, g.num_vertices() / 8);
    EXPECT_EQ(solve.solver, la::SolverKind::kDense);  // tier flip
  }

  const PipelineResult mono = SpectralPipeline(dense_monolithic())
                                  .run(g, LaplacianKind::kOutDegreeNormalized,
                                       h);
  EXPECT_EQ(mono.components, 1);
  EXPECT_EQ(mono.eigensolves, 1);
  expect_near_spectra(piped.values, mono.values, 1e-8, "multi:8:fft:4");
}

TEST(SpectralPipeline, EdgelessComponentsNeedNoEigensolve) {
  // path(3) plus two isolated vertices: the singletons contribute exact
  // zeros without touching a solver.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const PipelineResult result =
      SpectralPipeline(SpectralOptions{}).run(g, LaplacianKind::kPlain, 5);
  EXPECT_EQ(result.components, 3);
  EXPECT_EQ(result.eigensolves, 1);  // only the path
  ASSERT_EQ(result.values.size(), 5u);
  // Plain Laplacian of P3 has spectrum {0, 1, 3}; the union adds two 0s.
  const std::vector<double> expected{0.0, 0.0, 0.0, 1.0, 3.0};
  expect_near_spectra(result.values, expected, 1e-9, "path+isolated");
}

TEST(SpectralPipeline, WhollyEdgelessGraphIsAllZerosNoSolve) {
  const Digraph g(6);
  const PipelineResult result =
      SpectralPipeline(SpectralOptions{}).run(g, LaplacianKind::kOutDegreeNormalized, 4);
  EXPECT_EQ(result.eigensolves, 0);
  EXPECT_EQ(result.components, 6);
  ASSERT_EQ(result.values.size(), 4u);
  for (double v : result.values) EXPECT_EQ(v, 0.0);
}

TEST(SpectralPipeline, DecomposeOffReproducesMonolithicBehavior) {
  const Digraph g = engine::GraphSpec::parse("multi:3:inner:3").build();
  SpectralOptions mono;
  mono.decompose = false;
  const PipelineResult result =
      SpectralPipeline(mono).run(g, LaplacianKind::kPlain, 8);
  EXPECT_EQ(result.components, 1);
  EXPECT_EQ(result.eigensolves, 1);
}

TEST(SpectralPipeline, UnknownSolverPolicyThrowsWithNames) {
  SpectralOptions options;
  options.solver = "qr";
  try {
    (void)SpectralPipeline(options).run(builders::path(4),
                                        LaplacianKind::kPlain, 2);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("auto|dense|lanczos|lobpcg"),
              std::string::npos);
  }
}

TEST(SpectralPipeline, ComponentSolverHookIsUsed) {
  const Digraph g = engine::GraphSpec::parse("multi:4:path:3").build();
  int calls = 0;
  SpectralPipeline pipeline((SpectralOptions()));
  pipeline.set_component_solver(
      [&calls](const Digraph& component, LaplacianKind kind, int h,
               const SpectralOptions& options) {
        ++calls;
        return solve_component_spectrum(component, kind, h, options);
      });
  const PipelineResult result = pipeline.run(g, LaplacianKind::kPlain, 6);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(result.components, 4);
}

// --------------------------------------------------- merged-spectrum parity

// Random disjoint unions with 2..8 components: the merged per-component
// spectrum must match the monolithic dense spectrum of the union within
// 1e-8 (it is exactly the same multiset, so the tolerance only absorbs
// floating-point noise between solve orders).
class RandomUnionParity : public ::testing::TestWithParam<int> {};

TEST_P(RandomUnionParity, MergedMatchesWholeGraphDense) {
  const int seed = GetParam();
  const int num_components = 2 + seed % 7;  // 2..8
  std::vector<Digraph> parts;
  for (int c = 0; c < num_components; ++c) {
    const std::int64_t n = 10 + ((seed * 7 + c * 13) % 30);
    const double p = 0.08 + 0.02 * (c % 4);
    parts.push_back(builders::erdos_renyi_dag(
        n, p, static_cast<std::uint64_t>(seed * 100 + c)));
  }
  const Digraph g = disjoint_union(parts);
  const int h = static_cast<int>(std::min<std::int64_t>(
      g.num_vertices(), 24));

  for (const LaplacianKind kind :
       {LaplacianKind::kPlain, LaplacianKind::kOutDegreeNormalized}) {
    const PipelineResult piped = SpectralPipeline(SpectralOptions{}).run(g, kind, h);
    const PipelineResult mono =
        SpectralPipeline(dense_monolithic()).run(g, kind, h);
    // The ER parts may themselves be disconnected, so expect *at least*
    // the assembled component count.
    EXPECT_GE(piped.components, num_components);
    EXPECT_TRUE(piped.converged);
    expect_near_spectra(piped.values, mono.values, 1e-8,
                        "seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomUnionParity,
                         ::testing::Range(0, 10));

// Engine-facing acceptance: on every shipped builder family (small
// instances, so the dense reference is affordable) the pipeline bound
// equals the monolithic dense whole-graph bound within 1e-8.
class BuilderParity : public ::testing::TestWithParam<const char*> {};

TEST_P(BuilderParity, PipelineBoundMatchesMonolithicDense) {
  const std::string spec = GetParam();
  const Digraph g = engine::GraphSpec::parse(spec).build();
  SpectralOptions piped;
  piped.adaptive = false;
  const SpectralBound a = spectral_bound(g, 8.0, piped);
  const SpectralBound b = spectral_bound(g, 8.0, dense_monolithic());
  EXPECT_NEAR(a.bound, b.bound, 1e-8) << spec;
  EXPECT_EQ(a.best_k, b.best_k) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Families, BuilderParity,
    ::testing::Values("fft:4", "bhk:5", "inner:6", "matmul:3", "strassen:2",
                      "er:60:0.1:7", "grid:5:6", "tree:4", "path:12",
                      "stencil1d:6:4", "stencil2d:4:4:3", "scan:4",
                      "bitonic:3", "trisolve:5", "cholesky:4",
                      "multi:4:fft:3", "multi:2:bhk:4"));

}  // namespace
}  // namespace graphio
