#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/engine/artifact_cache.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

SpectralOptions dense_monolithic() {
  SpectralOptions options;
  options.backend = EigenBackend::kDense;
  options.decompose = false;
  return options;
}

void expect_near_spectra(const std::vector<double>& a,
                         const std::vector<double>& b, double tol,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << what << " lambda_" << i;
}

// ------------------------------------------------------------- decomposition

TEST(SpectralPipeline, ConnectedGraphIsSingleInPlaceSolve) {
  const Digraph g = builders::fft(4);
  const PipelineResult result = SpectralPipeline(SpectralOptions{}).run(
      g, LaplacianKind::kOutDegreeNormalized, 16);
  EXPECT_EQ(result.components, 1);
  EXPECT_EQ(result.eigensolves, 1);
  ASSERT_EQ(result.per_component.size(), 1u);
  EXPECT_EQ(result.per_component[0].vertices, g.num_vertices());
  EXPECT_EQ(static_cast<int>(result.values.size()), 16);
  EXPECT_TRUE(result.converged);
}

TEST(SpectralPipeline, DisjointFftCorpusSolvesPerComponent) {
  // The ISSUE 3 acceptance shape: 8 disjoint FFTs -> 8 small eigensolves,
  // never 1 monolithic one, with the merged spectrum matching the
  // monolithic dense solve exactly.
  const Digraph g = engine::GraphSpec::parse("multi:8:fft:4").build();
  const int h = 40;

  const PipelineResult piped =
      SpectralPipeline(SpectralOptions{}).run(g, LaplacianKind::kOutDegreeNormalized, h);
  EXPECT_EQ(piped.components, 8);
  EXPECT_EQ(piped.eigensolves, 8);
  for (const ComponentSolve& solve : piped.per_component) {
    EXPECT_EQ(solve.vertices, g.num_vertices() / 8);
    EXPECT_EQ(solve.solver, la::SolverKind::kDense);  // tier flip
  }

  const PipelineResult mono = SpectralPipeline(dense_monolithic())
                                  .run(g, LaplacianKind::kOutDegreeNormalized,
                                       h);
  EXPECT_EQ(mono.components, 1);
  EXPECT_EQ(mono.eigensolves, 1);
  expect_near_spectra(piped.values, mono.values, 1e-8, "multi:8:fft:4");
}

TEST(SpectralPipeline, EdgelessComponentsNeedNoEigensolve) {
  // path(3) plus two isolated vertices: the singletons contribute exact
  // zeros without touching a solver.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const PipelineResult result =
      SpectralPipeline(SpectralOptions{}).run(g, LaplacianKind::kPlain, 5);
  EXPECT_EQ(result.components, 3);
  EXPECT_EQ(result.eigensolves, 1);  // only the path
  ASSERT_EQ(result.values.size(), 5u);
  // Plain Laplacian of P3 has spectrum {0, 1, 3}; the union adds two 0s.
  const std::vector<double> expected{0.0, 0.0, 0.0, 1.0, 3.0};
  expect_near_spectra(result.values, expected, 1e-9, "path+isolated");
}

TEST(SpectralPipeline, WhollyEdgelessGraphIsAllZerosNoSolve) {
  const Digraph g(6);
  const PipelineResult result =
      SpectralPipeline(SpectralOptions{}).run(g, LaplacianKind::kOutDegreeNormalized, 4);
  EXPECT_EQ(result.eigensolves, 0);
  EXPECT_EQ(result.components, 6);
  ASSERT_EQ(result.values.size(), 4u);
  for (double v : result.values) EXPECT_EQ(v, 0.0);
}

TEST(SpectralPipeline, DecomposeOffReproducesMonolithicBehavior) {
  const Digraph g = engine::GraphSpec::parse("multi:3:inner:3").build();
  SpectralOptions mono;
  mono.decompose = false;
  const PipelineResult result =
      SpectralPipeline(mono).run(g, LaplacianKind::kPlain, 8);
  EXPECT_EQ(result.components, 1);
  EXPECT_EQ(result.eigensolves, 1);
}

TEST(SpectralPipeline, UnknownSolverPolicyThrowsWithNames) {
  SpectralOptions options;
  options.solver = "qr";
  try {
    (void)SpectralPipeline(options).run(builders::path(4),
                                        LaplacianKind::kPlain, 2);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("auto|dense|lanczos|lobpcg"),
              std::string::npos);
  }
}

TEST(SpectralPipeline, ComponentSolverHookIsUsed) {
  const Digraph g = engine::GraphSpec::parse("multi:4:path:3").build();
  int calls = 0;
  SpectralPipeline pipeline((SpectralOptions()));
  pipeline.set_component_solver(
      [&calls](const Digraph& component, LaplacianKind kind, int h,
               const SpectralOptions& options) {
        ++calls;
        return solve_component_spectrum(component, kind, h, options);
      });
  const PipelineResult result = pipeline.run(g, LaplacianKind::kPlain, 6);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(result.components, 4);
}

// ------------------------------------------------- fingerprint-first plans

/// Builds the eager plan run() would use, with counted materializers and
/// precomputed fingerprints — the shape every resolver test needs.
ComponentPlan counted_plan(const Digraph& g, const WeakComponents& wc,
                           int* materialized) {
  ComponentPlan plan;
  for (int c = 0; c < wc.count; ++c) {
    PlannedComponent entry;
    entry.vertices = static_cast<std::int64_t>(
        wc.vertices[static_cast<std::size_t>(c)].size());
    entry.edges = wc.edges_in(g, c);
    entry.fingerprint = engine::subgraph_fingerprint(g, wc, c);
    entry.fingerprinted = true;
    entry.materialize = [&g, &wc, c, materialized] {
      ++*materialized;
      return wc.subgraph(g, c);
    };
    plan.components.push_back(std::move(entry));
  }
  return plan;
}

void attach_cache(SpectralPipeline& pipeline,
                  store::ArtifactStore& cache) {
  pipeline.set_component_resolver(
      [&cache](std::uint64_t fp, std::int64_t, std::int64_t,
               LaplacianKind k, int h, const SpectralOptions& opts) {
        return cache.lookup_spectrum(fp, k, h, opts);
      },
      [&cache](std::uint64_t fp, LaplacianKind k, int requested,
               const SpectralOptions& opts, const ComponentSolve& solve) {
        cache.store_spectrum(fp, k, requested, opts, solve);
      });
}

TEST(SpectralPipeline, ResolvedComponentsNeverMaterialize) {
  // Four content-equal components, cache warm for that content: the whole
  // run_plan is lookups — zero extractions, zero eigensolves.
  const Digraph g = engine::GraphSpec::parse("multi:4:fft:3").build();
  const WeakComponents wc = weakly_connected_components(g);
  ASSERT_EQ(wc.count, 4);
  const SpectralOptions options;
  const int h = 6;

  store::ArtifactStore cache;
  const Digraph sub0 = wc.subgraph(g, 0);
  cache.store_spectrum(engine::graph_fingerprint(sub0), LaplacianKind::kPlain, h,
              options,
              solve_component_spectrum(sub0, LaplacianKind::kPlain, h,
                                       options));

  int materialized = 0;
  const ComponentPlan plan = counted_plan(g, wc, &materialized);
  SpectralPipeline pipeline(options);
  attach_cache(pipeline, cache);
  const PipelineResult result =
      pipeline.run_plan(plan, LaplacianKind::kPlain, h);

  EXPECT_EQ(materialized, 0);
  EXPECT_EQ(result.subgraph_extractions, 0);
  EXPECT_EQ(result.fingerprint_computes, 0);
  EXPECT_EQ(result.component_cache_hits, 4);
  EXPECT_EQ(result.eigensolves, 0);

  const PipelineResult direct =
      SpectralPipeline(options).run(g, LaplacianKind::kPlain, h);
  expect_near_spectra(result.values, direct.values, 1e-8, "resolved plan");
}

TEST(SpectralPipeline, MissesMaterializePublishAndThenResolve) {
  // Cold cache: each *distinct* content extracts and solves once; the
  // published solves make an immediate second run all-hits.
  const Digraph g = engine::GraphSpec::parse("multi:3:inner:4").build();
  const WeakComponents wc = weakly_connected_components(g);
  ASSERT_EQ(wc.count, 3);
  const SpectralOptions options;
  const int h = 5;

  store::ArtifactStore cache;
  int materialized = 0;
  const ComponentPlan plan = counted_plan(g, wc, &materialized);
  SpectralPipeline pipeline(options);
  attach_cache(pipeline, cache);

  const PipelineResult first =
      pipeline.run_plan(plan, LaplacianKind::kOutDegreeNormalized, h);
  EXPECT_EQ(first.subgraph_extractions, 1);  // 3 equal copies, 1 content
  EXPECT_EQ(first.eigensolves, 1);
  EXPECT_EQ(first.component_cache_hits, 2);
  EXPECT_EQ(materialized, 1);

  const PipelineResult second =
      pipeline.run_plan(plan, LaplacianKind::kOutDegreeNormalized, h);
  EXPECT_EQ(second.subgraph_extractions, 0);
  EXPECT_EQ(second.component_cache_hits, 3);
  EXPECT_EQ(materialized, 1);
  expect_near_spectra(first.values, second.values, 0.0, "warm replay");
}

TEST(SpectralPipeline, LazyFingerprintsAreComputedOnDemandAndCounted) {
  const Digraph g = engine::GraphSpec::parse("multi:2:fft:3").build();
  const WeakComponents wc = weakly_connected_components(g);
  const SpectralOptions options;
  store::ArtifactStore cache;

  int hashed = 0;
  int materialized = 0;
  ComponentPlan plan = counted_plan(g, wc, &materialized);
  for (int c = 0; c < wc.count; ++c) {
    PlannedComponent& entry =
        plan.components[static_cast<std::size_t>(c)];
    entry.fingerprinted = false;
    entry.fingerprint_fn = [&g, &wc, &hashed, c] {
      ++hashed;
      return engine::subgraph_fingerprint(g, wc, c);
    };
  }
  SpectralPipeline pipeline(options);
  attach_cache(pipeline, cache);
  const PipelineResult result =
      pipeline.run_plan(plan, LaplacianKind::kPlain, 4);
  EXPECT_EQ(result.fingerprint_computes, 2);
  EXPECT_EQ(hashed, 2);
  // Equal content: the first copy misses (extracts, publishes), the
  // second resolves off its freshly published fingerprint.
  EXPECT_EQ(result.subgraph_extractions, 1);
  EXPECT_EQ(result.component_cache_hits, 1);
}

TEST(SpectralPipeline, TrivialPlannedComponentsSkipEverything) {
  // Edgeless components: no fingerprint, no resolve, no materialize.
  Digraph g(4);
  g.add_edge(0, 1);
  const WeakComponents wc = weakly_connected_components(g);
  ASSERT_EQ(wc.count, 3);
  store::ArtifactStore cache;
  int materialized = 0;
  const ComponentPlan plan = counted_plan(g, wc, &materialized);
  SpectralPipeline pipeline((SpectralOptions()));
  attach_cache(pipeline, cache);
  const PipelineResult result =
      pipeline.run_plan(plan, LaplacianKind::kPlain, 4);
  EXPECT_EQ(result.subgraph_extractions, 1);  // only the edge's component
  EXPECT_EQ(cache.stats().spectrum.hits + cache.stats().spectrum.misses, 1);
  ASSERT_EQ(result.values.size(), 4u);
  EXPECT_EQ(result.values[0], 0.0);
  EXPECT_EQ(result.values[1], 0.0);
}

// Satellite (ISSUE 5): lookup-then-extract bounds equal the pre-plan
// extract-then-lookup path to 1e-8 across specs × every solver policy.
// The reference reproduces the PR 3/4 control flow literally: extract the
// subgraph first, hash it, then consult the same cache type.
class PlanPathParity
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(PlanPathParity, LookupFirstEqualsExtractFirst) {
  const std::string spec = std::get<0>(GetParam());
  const std::string solver = std::get<1>(GetParam());
  const Digraph g = engine::GraphSpec::parse(spec).build();
  SpectralOptions options;
  options.solver = solver;
  // Small h keeps the forced sparse tiers well-posed on tiny components.
  const int h =
      static_cast<int>(std::min<std::int64_t>(g.num_vertices(), 6));

  for (const LaplacianKind kind :
       {LaplacianKind::kPlain, LaplacianKind::kOutDegreeNormalized}) {
    // Lookup-then-extract: the engine's plan-driven artifact cache.
    engine::ArtifactCache plan_cache{Digraph(g)};
    const std::vector<double> plan_values =
        plan_cache.spectrum(kind, h, options).values;

    // Extract-then-lookup: materialize every component, hash the
    // materialized subgraph, then consult the cache — the old hook.
    store::ArtifactStore cache;
    SpectralPipeline reference(options);
    reference.set_component_solver(
        [&cache](const Digraph& component, LaplacianKind k, int hh,
                 const SpectralOptions& opts) {
          if (component.num_edges() == 0)
            return solve_component_spectrum(component, k, hh, opts);
          const std::uint64_t fp = engine::graph_fingerprint(component);
          if (auto cached = cache.lookup_spectrum(fp, k, hh, opts))
            return *std::move(cached);
          ComponentSolve solve =
              solve_component_spectrum(component, k, hh, opts);
          cache.store_spectrum(fp, k, hh, opts, solve);
          return solve;
        });
    const PipelineResult ref = reference.run(g, kind, h);
    expect_near_spectra(plan_values, ref.values, 1e-8,
                        spec + "/" + solver);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpecsBySolvers, PlanPathParity,
    ::testing::Combine(::testing::Values("fft:4", "matmul:2",
                                         "multi:3:fft:3", "multi:2:inner:5"),
                       ::testing::Values("auto", "dense", "lanczos",
                                         "lobpcg")));

// --------------------------------------------------- merged-spectrum parity

// Random disjoint unions with 2..8 components: the merged per-component
// spectrum must match the monolithic dense spectrum of the union within
// 1e-8 (it is exactly the same multiset, so the tolerance only absorbs
// floating-point noise between solve orders).
class RandomUnionParity : public ::testing::TestWithParam<int> {};

TEST_P(RandomUnionParity, MergedMatchesWholeGraphDense) {
  const int seed = GetParam();
  const int num_components = 2 + seed % 7;  // 2..8
  std::vector<Digraph> parts;
  for (int c = 0; c < num_components; ++c) {
    const std::int64_t n = 10 + ((seed * 7 + c * 13) % 30);
    const double p = 0.08 + 0.02 * (c % 4);
    parts.push_back(builders::erdos_renyi_dag(
        n, p, static_cast<std::uint64_t>(seed * 100 + c)));
  }
  const Digraph g = disjoint_union(parts);
  const int h = static_cast<int>(std::min<std::int64_t>(
      g.num_vertices(), 24));

  for (const LaplacianKind kind :
       {LaplacianKind::kPlain, LaplacianKind::kOutDegreeNormalized}) {
    const PipelineResult piped = SpectralPipeline(SpectralOptions{}).run(g, kind, h);
    const PipelineResult mono =
        SpectralPipeline(dense_monolithic()).run(g, kind, h);
    // The ER parts may themselves be disconnected, so expect *at least*
    // the assembled component count.
    EXPECT_GE(piped.components, num_components);
    EXPECT_TRUE(piped.converged);
    expect_near_spectra(piped.values, mono.values, 1e-8,
                        "seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomUnionParity,
                         ::testing::Range(0, 10));

// Engine-facing acceptance: on every shipped builder family (small
// instances, so the dense reference is affordable) the pipeline bound
// equals the monolithic dense whole-graph bound within 1e-8.
class BuilderParity : public ::testing::TestWithParam<const char*> {};

TEST_P(BuilderParity, PipelineBoundMatchesMonolithicDense) {
  const std::string spec = GetParam();
  const Digraph g = engine::GraphSpec::parse(spec).build();
  SpectralOptions piped;
  piped.adaptive = false;
  const SpectralBound a = spectral_bound(g, 8.0, piped);
  const SpectralBound b = spectral_bound(g, 8.0, dense_monolithic());
  EXPECT_NEAR(a.bound, b.bound, 1e-8) << spec;
  EXPECT_EQ(a.best_k, b.best_k) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Families, BuilderParity,
    ::testing::Values("fft:4", "bhk:5", "inner:6", "matmul:3", "strassen:2",
                      "er:60:0.1:7", "grid:5:6", "tree:4", "path:12",
                      "stencil1d:6:4", "stencil2d:4:4:3", "scan:4",
                      "bitonic:3", "trisolve:5", "cholesky:4",
                      "multi:4:fft:3", "multi:2:bhk:4"));

}  // namespace
}  // namespace graphio
