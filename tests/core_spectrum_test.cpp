#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/spectrum.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Spectrum, FromEntriesSortsAndMerges) {
  const Spectrum s = Spectrum::from_entries({{2.0, 3}, {0.0, 1}, {2.0, 2}});
  ASSERT_EQ(s.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 0.0);
  EXPECT_EQ(s.entries()[0].multiplicity, 1);
  EXPECT_DOUBLE_EQ(s.entries()[1].value, 2.0);
  EXPECT_EQ(s.entries()[1].multiplicity, 5);
  EXPECT_EQ(s.total_count(), 6);
}

TEST(Spectrum, FromEntriesDropsZeroMultiplicity) {
  const Spectrum s = Spectrum::from_entries({{1.0, 0}, {2.0, 1}});
  ASSERT_EQ(s.entries().size(), 1u);
  EXPECT_THROW(Spectrum::from_entries({{1.0, -1}}), contract_error);
}

TEST(Spectrum, FromValuesMergesWithinTolerance) {
  const std::vector<double> values{1.0, 1.0 + 1e-12, 2.0, 0.0};
  const Spectrum s = Spectrum::from_values(values, 1e-9);
  ASSERT_EQ(s.entries().size(), 3u);
  EXPECT_EQ(s.entries()[1].multiplicity, 2);  // the two ~1.0 values
  EXPECT_EQ(s.total_count(), 4);
}

TEST(Spectrum, SmallestExpandsMultiplicity) {
  const Spectrum s = Spectrum::from_entries({{0.0, 1}, {2.0, 3}, {5.0, 1}});
  const auto two = s.smallest(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_DOUBLE_EQ(two[0], 0.0);
  EXPECT_DOUBLE_EQ(two[1], 2.0);
  const auto all = s.smallest();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_DOUBLE_EQ(all[3], 2.0);
  EXPECT_DOUBLE_EQ(all[4], 5.0);
  EXPECT_EQ(s.smallest(99).size(), 5u);  // clamped to total
}

TEST(Spectrum, MaxAbsDiff) {
  const Spectrum a = Spectrum::from_entries({{0.0, 2}, {1.0, 2}});
  const Spectrum b = Spectrum::from_entries({{0.0, 2}, {1.25, 2}});
  EXPECT_NEAR(a.max_abs_diff(b), 0.25, 1e-15);
  EXPECT_NEAR(a.max_abs_diff(b, 2), 0.0, 1e-15);  // first two values agree
  const Spectrum shorter = Spectrum::from_entries({{0.0, 1}});
  EXPECT_TRUE(std::isinf(a.max_abs_diff(shorter)));
}

TEST(Spectrum, EmptySpectrum) {
  const Spectrum s;
  EXPECT_EQ(s.total_count(), 0);
  EXPECT_TRUE(s.smallest().empty());
}

}  // namespace
}  // namespace graphio
