#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/spectrum.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Spectrum, FromEntriesSortsAndMerges) {
  const Spectrum s = Spectrum::from_entries({{2.0, 3}, {0.0, 1}, {2.0, 2}});
  ASSERT_EQ(s.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 0.0);
  EXPECT_EQ(s.entries()[0].multiplicity, 1);
  EXPECT_DOUBLE_EQ(s.entries()[1].value, 2.0);
  EXPECT_EQ(s.entries()[1].multiplicity, 5);
  EXPECT_EQ(s.total_count(), 6);
}

TEST(Spectrum, FromEntriesDropsZeroMultiplicity) {
  const Spectrum s = Spectrum::from_entries({{1.0, 0}, {2.0, 1}});
  ASSERT_EQ(s.entries().size(), 1u);
  EXPECT_THROW(Spectrum::from_entries({{1.0, -1}}), contract_error);
}

TEST(Spectrum, FromValuesMergesWithinTolerance) {
  const std::vector<double> values{1.0, 1.0 + 1e-12, 2.0, 0.0};
  const Spectrum s = Spectrum::from_values(values, 1e-9);
  ASSERT_EQ(s.entries().size(), 3u);
  EXPECT_EQ(s.entries()[1].multiplicity, 2);  // the two ~1.0 values
  EXPECT_EQ(s.total_count(), 4);
}

TEST(Spectrum, SmallestExpandsMultiplicity) {
  const Spectrum s = Spectrum::from_entries({{0.0, 1}, {2.0, 3}, {5.0, 1}});
  const auto two = s.smallest(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_DOUBLE_EQ(two[0], 0.0);
  EXPECT_DOUBLE_EQ(two[1], 2.0);
  const auto all = s.smallest();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_DOUBLE_EQ(all[3], 2.0);
  EXPECT_DOUBLE_EQ(all[4], 5.0);
  EXPECT_EQ(s.smallest(99).size(), 5u);  // clamped to total
}

TEST(Spectrum, MaxAbsDiff) {
  const Spectrum a = Spectrum::from_entries({{0.0, 2}, {1.0, 2}});
  const Spectrum b = Spectrum::from_entries({{0.0, 2}, {1.25, 2}});
  EXPECT_NEAR(a.max_abs_diff(b), 0.25, 1e-15);
  EXPECT_NEAR(a.max_abs_diff(b, 2), 0.0, 1e-15);  // first two values agree
  const Spectrum shorter = Spectrum::from_entries({{0.0, 1}});
  EXPECT_TRUE(std::isinf(a.max_abs_diff(shorter)));
}

TEST(Spectrum, EmptySpectrum) {
  const Spectrum s;
  EXPECT_EQ(s.total_count(), 0);
  EXPECT_TRUE(s.smallest().empty());
}

TEST(Spectrum, FromEntriesMergesWithinTolerance) {
  // Unified with from_values: entries closer than merge_tol collapse.
  const Spectrum s = Spectrum::from_entries(
      {{1.0, 2}, {1.0 + 1e-12, 3}, {2.0, 1}}, 1e-9);
  ASSERT_EQ(s.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 1.0);  // smaller value survives
  EXPECT_EQ(s.entries()[0].multiplicity, 5);
  EXPECT_EQ(s.total_count(), 6);
  EXPECT_THROW(Spectrum::from_entries({{1.0, 1}}, -1.0), contract_error);
}

TEST(Spectrum, FromEntriesToleranceZeroIsExactEquality) {
  const Spectrum s =
      Spectrum::from_entries({{1.0, 1}, {1.0 + 1e-12, 1}}, 0.0);
  ASSERT_EQ(s.entries().size(), 2u);  // distinct at tolerance 0
}

TEST(Spectrum, FromEntriesAndFromValuesAgree) {
  const std::vector<double> values{0.0, 1.0, 1.0 + 1e-12, 2.5, 2.5};
  std::vector<Spectrum::Entry> entries;
  for (double v : values) entries.push_back({v, 1});
  const Spectrum a = Spectrum::from_values(values, 1e-9);
  const Spectrum b = Spectrum::from_entries(std::move(entries), 1e-9);
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.entries()[i].value, b.entries()[i].value);
    EXPECT_EQ(a.entries()[i].multiplicity, b.entries()[i].multiplicity);
  }
}

TEST(Spectrum, MergeIsMultisetUnion) {
  const Spectrum a = Spectrum::from_entries({{0.0, 1}, {2.0, 2}});
  const Spectrum b = Spectrum::from_entries({{0.0, 1}, {1.0, 3}});
  const Spectrum u = a.merge(b);
  EXPECT_EQ(u.total_count(), a.total_count() + b.total_count());
  const auto all = u.smallest();
  const std::vector<double> expected{0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0};
  ASSERT_EQ(all.size(), expected.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_DOUBLE_EQ(all[i], expected[i]);
}

TEST(Spectrum, MergeToleranceCollapsesNearDuplicates) {
  const Spectrum a = Spectrum::from_entries({{1.0, 1}});
  const Spectrum b = Spectrum::from_entries({{1.0 + 1e-12, 1}});
  EXPECT_EQ(a.merge(b, 0.0).entries().size(), 2u);
  const Spectrum merged = a.merge(b, 1e-9);
  ASSERT_EQ(merged.entries().size(), 1u);
  EXPECT_EQ(merged.entries()[0].multiplicity, 2);
  EXPECT_DOUBLE_EQ(merged.entries()[0].value, 1.0);
}

TEST(Spectrum, MergeWithEmptyIsIdentity) {
  const Spectrum a = Spectrum::from_entries({{0.5, 2}});
  const Spectrum u = a.merge(Spectrum{});
  ASSERT_EQ(u.entries().size(), 1u);
  EXPECT_EQ(u.total_count(), 2);
}

}  // namespace
}  // namespace graphio
