#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/analytic_spectra.hpp"
#include "graphio/core/spectrum.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/dense_matrix.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {
namespace {

DenseMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(DenseMatrix, IdentityAndAccess) {
  DenseMatrix eye = DenseMatrix::identity(3);
  EXPECT_EQ(eye.rows(), 3u);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  eye(0, 1) = 5.0;
  EXPECT_EQ(eye(0, 1), 5.0);
  EXPECT_GT(eye.symmetry_error(), 0.0);
}

TEST(DenseMatrix, MatvecMatchesManualComputation) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  std::vector<double> x{1.0, -1.0, 2.0};
  std::vector<double> y(2);
  a.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1 - 2 + 6);
  EXPECT_DOUBLE_EQ(y[1], 4 - 5 + 12);
}

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const DenseMatrix at = a.transposed();
  EXPECT_EQ(at(0, 1), 3);
  const DenseMatrix prod = a.multiply(at);
  EXPECT_DOUBLE_EQ(prod(0, 0), 5);
  EXPECT_DOUBLE_EQ(prod(0, 1), 11);
  EXPECT_DOUBLE_EQ(prod(1, 1), 25);
  EXPECT_NEAR(prod.symmetry_error(), 0.0, 1e-15);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const auto values = symmetric_eigenvalues(a);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NEAR(values[0], -1.0, 1e-12);
  EXPECT_NEAR(values[1], 2.0, 1e-12);
  EXPECT_NEAR(values[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, TwoByTwoClosedForm) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const auto values = symmetric_eigenvalues(a);
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, RejectsNonSymmetric) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1.0;  // a(1,0) stays 0
  EXPECT_THROW(symmetric_eigenvalues(a), contract_error);
}

TEST(SymmetricEigen, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(symmetric_eigenvalues(a), contract_error);
}

TEST(SymmetricEigen, TraceAndFrobeniusInvariants) {
  const DenseMatrix a = random_symmetric(40, 99);
  const auto values = symmetric_eigenvalues(a);
  double trace = 0.0;
  double frob = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    trace += a(i, i);
    for (std::size_t j = 0; j < 40; ++j) frob += a(i, j) * a(i, j);
  }
  double vsum = 0.0;
  double vsq = 0.0;
  for (double v : values) {
    vsum += v;
    vsq += v * v;
  }
  EXPECT_NEAR(vsum, trace, 1e-9);
  EXPECT_NEAR(vsq, frob, 1e-8);
}

TEST(SymmetricEigen, EigenpairsSatisfyResidualAndOrthogonality) {
  const DenseMatrix a = random_symmetric(30, 7);
  const SymmetricEigen eig = symmetric_eigen(a);
  ASSERT_EQ(eig.values.size(), 30u);

  // Residuals ‖A v − λ v‖.
  std::vector<double> av(30);
  for (std::size_t j = 0; j < 30; ++j) {
    std::vector<double> v(30);
    for (std::size_t i = 0; i < 30; ++i) v[i] = eig.vectors(i, j);
    a.matvec(v, av);
    double res = 0.0;
    for (std::size_t i = 0; i < 30; ++i) {
      const double r = av[i] - eig.values[j] * v[i];
      res += r * r;
    }
    EXPECT_LT(std::sqrt(res), 1e-9) << "eigenpair " << j;
  }

  // VᵀV = I.
  const DenseMatrix vtv = eig.vectors.transposed().multiply(eig.vectors);
  EXPECT_LT(vtv.max_abs_diff(DenseMatrix::identity(30)), 1e-10);
}

TEST(SymmetricEigen, ValuesAreAscending) {
  const auto values = symmetric_eigenvalues(random_symmetric(25, 5));
  for (std::size_t i = 1; i < values.size(); ++i)
    EXPECT_LE(values[i - 1], values[i]);
}

TEST(SymmetricEigen, ValuesOnlyPathMatchesVectorPath) {
  const DenseMatrix a = random_symmetric(35, 21);
  const auto values = symmetric_eigenvalues(a);
  const SymmetricEigen full = symmetric_eigen(a);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], full.values[i], 1e-9);
}

// --- validation against known graph spectra ------------------------------

TEST(SymmetricEigen, CompleteGraphSpectrum) {
  const auto g = builders::complete_dag(12);
  const auto values =
      symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  const auto expected = analytic::complete_spectrum(12).smallest();
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-9);
}

TEST(SymmetricEigen, StarGraphSpectrum) {
  const auto g = builders::star(9);
  const auto values =
      symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  const auto expected = analytic::star_spectrum(9).smallest();
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-9);
}

TEST(SymmetricEigen, PathGraphSpectrum) {
  const auto g = builders::path(17);
  const auto values =
      symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  const auto expected = analytic::path_spectrum(17).smallest();
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-9);
}

TEST(SymmetricEigen, CycleGraphSpectrum) {
  const auto g = builders::cycle(16);
  const auto values =
      symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  const auto expected = analytic::cycle_spectrum(16).smallest();
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-9);
}

TEST(SymmetricEigen, HypercubeSpectrumWithMultiplicities) {
  const auto g = builders::bhk_hypercube(6);  // 64 vertices
  const auto values =
      symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  const auto expected = analytic::hypercube_spectrum(6).smallest();
  ASSERT_EQ(values.size(), expected.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-8);
}

TEST(SymmetricEigen, HandlesOneByOneAndEmpty) {
  DenseMatrix a(1, 1);
  a(0, 0) = 4.0;
  const auto one = symmetric_eigenvalues(a);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 4.0);
  const auto none = symmetric_eigenvalues(DenseMatrix(0, 0));
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace graphio::la
