#include <gtest/gtest.h>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::sim {
namespace {

std::vector<VertexId> natural(const Digraph& g) {
  auto order = topological_order(g);
  EXPECT_TRUE(order.has_value());
  return *order;
}

TEST(MemSim, ChainNeedsNoIo) {
  const Digraph g = builders::path(16);
  for (std::int64_t m : {1, 2, 8}) {
    const SimResult r = simulate_io(g, natural(g), m);
    EXPECT_EQ(r.total(), 0) << "M=" << m;
  }
}

TEST(MemSim, DiamondFitsInTwoSlots) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(simulate_io(g, natural(g), 2).total(), 0);
}

TEST(MemSim, ForcedSpillIsExactlyTwo) {
  // a,b inputs; c=a+b; d=f(a,c); e=f(b,c). With M=2, after computing c
  // three values are live: one spill (write+read) is forced.
  Digraph g(5);
  g.add_edge(0, 2);  // a -> c
  g.add_edge(1, 2);  // b -> c
  g.add_edge(0, 3);  // a -> d
  g.add_edge(2, 3);  // c -> d
  g.add_edge(1, 4);  // b -> e
  g.add_edge(2, 4);  // c -> e
  const SimResult r = simulate_io(g, {0, 1, 2, 3, 4}, 2);
  EXPECT_EQ(r.writes, 1);
  EXPECT_EQ(r.reads, 1);
  // With M=3 everything fits.
  EXPECT_EQ(simulate_io(g, {0, 1, 2, 3, 4}, 3).total(), 0);
}

TEST(MemSim, RejectsNonTopologicalOrder) {
  const Digraph g = builders::path(3);
  EXPECT_THROW(simulate_io(g, {1, 0, 2}, 4), contract_error);
  EXPECT_THROW(simulate_io(g, {0, 1}, 4), contract_error);
}

TEST(MemSim, RejectsMemorySmallerThanOperandSet) {
  const Digraph g = builders::naive_matmul(3);  // n-ary sums need 3 operands
  EXPECT_THROW(simulate_io(g, natural(g), 2), contract_error);
  EXPECT_NO_THROW(simulate_io(g, natural(g), 4));
}

TEST(MemSim, ParallelEdgesNeedOneSlot) {
  // x -> y twice (y = x·x): one resident copy serves both operand slots.
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(simulate_io(g, {0, 1}, 1).total(), 0);
}

TEST(MemSim, TrivialIoAccounting) {
  const Digraph g = builders::inner_product(2);  // 4 inputs, 1 output
  const SimResult plain = simulate_io(g, natural(g), 8);
  EXPECT_EQ(plain.total(), 0);
  EXPECT_EQ(plain.trivial_io, 5);
  SimOptions opts;
  opts.count_trivial = true;
  const SimResult with = simulate_io(g, natural(g), 8, opts);
  EXPECT_EQ(with.reads, 4);
  EXPECT_EQ(with.writes, 1);
}

TEST(MemSim, PeakResidentNeverExceedsMemory) {
  const Digraph g = builders::fft(4);
  for (std::int64_t m : {2, 3, 4, 8}) {
    const SimResult r = simulate_io(g, natural(g), m);
    EXPECT_LE(r.peak_resident, m);
  }
}

TEST(MemSim, MoreMemoryNeverHurts) {
  const Digraph g = builders::fft(5);
  const auto order = natural(g);
  std::int64_t previous = simulate_io(g, order, 2).total();
  for (std::int64_t m : {3, 4, 6, 8, 16, 64}) {
    const std::int64_t current = simulate_io(g, order, m).total();
    EXPECT_LE(current, previous) << "M=" << m;
    previous = current;
  }
}

TEST(MemSim, LargeMemoryMeansOnlyCompulsoryIo) {
  const Digraph g = builders::strassen_matmul(4);
  const SimResult r = simulate_io(g, natural(g), g.num_vertices());
  EXPECT_EQ(r.total(), 0);
}

TEST(MemSim, BeladyNoWorseThanLruOnFft) {
  const Digraph g = builders::fft(5);
  const auto order = natural(g);
  for (std::int64_t m : {2, 4, 8}) {
    SimOptions belady;
    SimOptions lru;
    lru.policy = EvictionPolicy::kLru;
    EXPECT_LE(simulate_io(g, order, m, belady).reads,
              simulate_io(g, order, m, lru).reads)
        << "M=" << m;
  }
}

TEST(MemSim, FftRequiresIoWithTinyMemory) {
  const Digraph g = builders::fft(4);
  EXPECT_GT(simulate_io(g, natural(g), 2).total(), 0);
}

TEST(BestScheduleIo, PicksTheCheapestOrder) {
  const Digraph g = builders::fft(4);
  const SimResult best = best_schedule_io(g, 4);
  const SimResult nat = simulate_io(g, natural(g), 4);
  EXPECT_LE(best.total(), nat.total());
}

TEST(BestScheduleIo, ThrowsOnCyclicGraph) {
  EXPECT_THROW(best_schedule_io(builders::cycle(4), 4), contract_error);
}

}  // namespace
}  // namespace graphio::sim
