#include <gtest/gtest.h>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/graph/transforms.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(WeakComponentsTest, ConnectedGraphIsOneComponentVerbatim) {
  const Digraph g = builders::fft(3);
  const WeakComponents comps = weakly_connected_components(g);
  ASSERT_EQ(comps.count, 1);
  ASSERT_EQ(comps.vertices[0].size(),
            static_cast<std::size_t>(g.num_vertices()));
  // Ascending vertex map means the single component reproduces the graph
  // exactly — the pipeline's in-place fast path depends on this.
  for (std::size_t i = 0; i < comps.vertices[0].size(); ++i)
    EXPECT_EQ(comps.vertices[0][i], static_cast<VertexId>(i));
  EXPECT_TRUE(same_structure(comps.subgraph(g, 0), g));
  EXPECT_EQ(comps.edges_in(g, 0), g.num_edges());
}

TEST(WeakComponentsTest, DirectionIsIgnored) {
  // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  EXPECT_EQ(num_weak_components(g), 1);
}

TEST(WeakComponentsTest, DisjointUnionRoundTrip) {
  const std::vector<Digraph> parts = {builders::inner_product(2),
                                      builders::path(4), builders::fft(2)};
  std::vector<VertexId> offsets;
  const Digraph u = disjoint_union(parts, &offsets);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], parts[0].num_vertices());
  EXPECT_EQ(u.num_vertices(), parts[0].num_vertices() +
                                  parts[1].num_vertices() +
                                  parts[2].num_vertices());
  EXPECT_EQ(u.num_edges(), parts[0].num_edges() + parts[1].num_edges() +
                               parts[2].num_edges());

  const WeakComponents comps = weakly_connected_components(u);
  ASSERT_EQ(comps.count, 3);
  for (int c = 0; c < comps.count; ++c)
    EXPECT_TRUE(same_structure(comps.subgraph(u, c),
                               parts[static_cast<std::size_t>(c)]))
        << "component " << c;
}

TEST(WeakComponentsTest, ComponentOfIsConsistentWithVertexLists) {
  const std::vector<Digraph> parts = {builders::path(3),
                                      builders::inner_product(2)};
  const Digraph u = disjoint_union(parts);
  const WeakComponents comps = weakly_connected_components(u);
  ASSERT_EQ(comps.count, 2);
  std::int64_t total = 0;
  for (int c = 0; c < comps.count; ++c) {
    for (VertexId v : comps.vertices[static_cast<std::size_t>(c)])
      EXPECT_EQ(comps.component_of[static_cast<std::size_t>(v)], c);
    total += static_cast<std::int64_t>(
        comps.vertices[static_cast<std::size_t>(c)].size());
  }
  EXPECT_EQ(total, u.num_vertices());
}

TEST(WeakComponentsTest, IsolatedVerticesAreSingletons) {
  Digraph g(4);
  g.add_edge(1, 2);
  const WeakComponents comps = weakly_connected_components(g);
  EXPECT_EQ(comps.count, 3);  // {0}, {1,2}, {3}
  EXPECT_EQ(num_weak_components(g), 3);
  const Digraph singleton = comps.subgraph(g, 0);
  EXPECT_EQ(singleton.num_vertices(), 1);
  EXPECT_EQ(singleton.num_edges(), 0);
}

TEST(WeakComponentsTest, ParallelEdgesAndNamesSurvive) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // parallel operand edge
  g.set_name(0, "x");
  g.set_name(2, "lonely");
  const WeakComponents comps = weakly_connected_components(g);
  ASSERT_EQ(comps.count, 2);
  const Digraph main = comps.subgraph(g, 0);
  EXPECT_EQ(main.num_edges(), 2);
  EXPECT_EQ(main.name(0), "x");
  EXPECT_EQ(comps.subgraph(g, 1).name(0), "lonely");
}

TEST(WeakComponentsTest, SubgraphIndexIsBoundsChecked) {
  const Digraph g = builders::path(3);
  const WeakComponents comps = weakly_connected_components(g);
  EXPECT_THROW(comps.subgraph(g, -1), contract_error);
  EXPECT_THROW(comps.subgraph(g, comps.count), contract_error);
}

TEST(WeakComponentsTest, EmptyGraph) {
  const Digraph g(0);
  EXPECT_EQ(weakly_connected_components(g).count, 0);
  EXPECT_EQ(num_weak_components(g), 0);
  EXPECT_EQ(disjoint_union({}).num_vertices(), 0);
}

}  // namespace
}  // namespace graphio
