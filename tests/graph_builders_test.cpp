// Structural validation of every builder: vertex/edge counts, degree
// profiles, and the figure captions' max in-degree claims.
#include <gtest/gtest.h>

#include <bit>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {
namespace {

TEST(InnerProduct, PaperFigure1Shape) {
  // Two elements: 4 inputs, 2 products, 1 sum = 7 vertices (Figure 1).
  const Digraph g = inner_product(2);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.sources().size(), 4u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.max_in_degree(), 2);
}

TEST(InnerProduct, GeneralSize) {
  const Digraph g = inner_product(5);
  EXPECT_EQ(g.num_vertices(), 2 * 5 + 5 + 4);
  EXPECT_EQ(g.sources().size(), 10u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Fft, VertexAndEdgeCounts) {
  for (int l : {1, 2, 3, 6}) {
    const Digraph g = fft(l);
    const std::int64_t width = std::int64_t{1} << l;
    EXPECT_EQ(g.num_vertices(), (l + 1) * width) << "l=" << l;
    EXPECT_EQ(g.num_edges(), 2 * l * width) << "l=" << l;
    EXPECT_EQ(g.max_in_degree(), 2) << "l=" << l;   // paper Fig. 7 caption
    EXPECT_EQ(g.max_out_degree(), 2) << "l=" << l;  // §5.2 divides by 2
    EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(width));
    EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(width));
  }
}

TEST(Fft, ButterflyWiring) {
  const Digraph g = fft(3);
  // Column 1, row 5 (=101b) has parents (0, 5) and (0, 4): bit 0 flipped.
  const VertexId v = fft_vertex(3, 1, 5);
  const auto parents = g.parents(v);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0], fft_vertex(3, 0, 5));
  EXPECT_EQ(parents[1], fft_vertex(3, 0, 4));
  // Column 3, row 2 pairs with row 6: bit 2 flipped.
  const VertexId w = fft_vertex(3, 3, 2);
  const auto wp = g.parents(w);
  EXPECT_EQ(wp[0], fft_vertex(3, 2, 2));
  EXPECT_EQ(wp[1], fft_vertex(3, 2, 6));
}

TEST(Fft, DegenerateZeroLevels) {
  const Digraph g = fft(0);
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(NaiveMatmul, NaryCountsAndCaptionInDegree) {
  for (int n : {2, 3, 5}) {
    const Digraph g = naive_matmul(n, Reduction::kNary);
    const std::int64_t n64 = n;
    EXPECT_EQ(g.num_vertices(), 2 * n64 * n64 + n64 * n64 * n64 + n64 * n64);
    // Products: 2 in-edges each; sums: n in-edges each.
    EXPECT_EQ(g.num_edges(), 2 * n64 * n64 * n64 + n64 * n64 * n64);
    EXPECT_EQ(g.max_in_degree(), n64) << "paper Fig. 8 caption";
    EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(2 * n64 * n64));
    EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(n64 * n64));
  }
}

TEST(NaiveMatmul, ChainAndTreeCounts) {
  for (auto reduction : {Reduction::kChain, Reduction::kBinaryTree}) {
    const Digraph g = naive_matmul(4, reduction);
    // 2·16 inputs + 64 products + 16·(4−1) adds.
    EXPECT_EQ(g.num_vertices(), 32 + 64 + 48);
    EXPECT_EQ(g.max_in_degree(), 2);
    EXPECT_EQ(g.sinks().size(), 16u);
  }
}

TEST(NaiveMatmul, SizeOneHasNoReduction) {
  const Digraph g = naive_matmul(1);
  EXPECT_EQ(g.num_vertices(), 2 + 1);  // two inputs, one product
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Strassen, BaseCaseIsSingleProduct) {
  const Digraph g = strassen_matmul(1);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Strassen, CaptionInDegreeFourAndCounts) {
  for (int n : {2, 4, 8}) {
    const Digraph g = strassen_matmul(n);
    EXPECT_EQ(g.max_in_degree(), 4) << "paper Fig. 9 caption";
    EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(2 * n * n));
    EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(n * n));
    EXPECT_TRUE(is_dag(g));
  }
}

TEST(Strassen, RecursiveVertexCountFormula) {
  // V(n) = 2n² inputs + I(n), where internal I(n) satisfies
  // I(n) = 7·I(n/2) + 10·(n/2)² pre-adds + 4·(n/2)² post-combines... the
  // closed form is awkward; verify the recurrence numerically instead.
  auto internal = [](int n) {
    return strassen_matmul(n).num_vertices() - 2LL * n * n;
  };
  const std::int64_t i1 = internal(1);
  const std::int64_t i2 = internal(2);
  const std::int64_t i4 = internal(4);
  EXPECT_EQ(i1, 1);
  EXPECT_EQ(i2, 7 * i1 + 10 * 1 + 4 * 1);
  EXPECT_EQ(i4, 7 * i2 + 10 * 4 + 4 * 4);
}

TEST(Strassen, RejectsNonPowerOfTwo) {
  EXPECT_THROW(strassen_matmul(3), contract_error);
  EXPECT_THROW(strassen_matmul(0), contract_error);
}

TEST(BhkHypercube, CountsAndDegrees) {
  for (int l : {1, 3, 6}) {
    const Digraph g = bhk_hypercube(l);
    const std::int64_t n = std::int64_t{1} << l;
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_EQ(g.num_edges(), l * (n / 2));
    EXPECT_EQ(g.max_in_degree(), l) << "paper Fig. 10 caption";
    EXPECT_EQ(g.max_out_degree(), l);
    EXPECT_EQ(g.sources().size(), 1u);  // empty set 000…0
    EXPECT_EQ(g.sinks().size(), 1u);    // full set 111…1
  }
}

TEST(BhkHypercube, DegreesFollowPopcount) {
  const Digraph g = bhk_hypercube(5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const int ones = std::popcount(static_cast<std::uint64_t>(v));
    EXPECT_EQ(g.in_degree(v), ones);
    EXPECT_EQ(g.out_degree(v), 5 - ones);
  }
}

TEST(ErdosRenyi, EdgeCountConcentratesAroundExpectation) {
  const std::int64_t n = 200;
  const double p = 0.1;
  const Digraph g = erdos_renyi_dag(n, p, 42);
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
  EXPECT_TRUE(is_dag(g));
}

TEST(ErdosRenyi, SeedsAreReproducibleAndDistinct) {
  const Digraph a = erdos_renyi_dag(100, 0.05, 7);
  const Digraph b = erdos_renyi_dag(100, 0.05, 7);
  const Digraph c = erdos_renyi_dag(100, 0.05, 8);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(ErdosRenyi, ProbabilityExtremes) {
  EXPECT_EQ(erdos_renyi_dag(50, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(erdos_renyi_dag(50, 1.0, 1).num_edges(), 50 * 49 / 2);
  EXPECT_THROW(erdos_renyi_dag(10, 1.5, 1), contract_error);
}

TEST(Classics, PathCycleCompleteStarGridTree) {
  EXPECT_EQ(path(6).num_edges(), 5);
  EXPECT_EQ(cycle(6).num_edges(), 6);
  EXPECT_EQ(complete_dag(6).num_edges(), 15);
  EXPECT_EQ(star(6).num_edges(), 5);
  EXPECT_EQ(star(6).max_out_degree(), 5);
  const Digraph gr = grid(3, 4);
  EXPECT_EQ(gr.num_vertices(), 12);
  EXPECT_EQ(gr.num_edges(), 3 * 3 + 2 * 4);  // rights + downs
  const Digraph bt = binary_tree(3);
  EXPECT_EQ(bt.num_vertices(), 15);
  EXPECT_EQ(bt.num_edges(), 14);
  EXPECT_EQ(bt.sinks().size(), 1u);
  EXPECT_EQ(bt.sources().size(), 8u);
}

}  // namespace
}  // namespace graphio::builders
