#include <gtest/gtest.h>

#include "graphio/exact/pebble_recompute.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Recompute, TrivialGraphsCostNothing) {
  // Pure inputs-to-outputs with enough memory: everything is trivial I/O.
  const Digraph g = builders::inner_product(2);  // 7 vertices
  const auto r = exact::exact_optimal_io_with_recomputation(g, 7);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.io, 0);
}

TEST(Recompute, NeverExceedsTheNoRecomputeOptimum) {
  // Every no-recompute execution is a valid pebbling, so J*_rb ≤ J*.
  struct Case {
    Digraph graph;
    std::int64_t memory;
  };
  std::vector<Case> cases;
  cases.push_back({builders::inner_product(2), 2});
  cases.push_back({builders::inner_product(3), 2});
  cases.push_back({builders::fft(2), 2});
  cases.push_back({builders::bhk_hypercube(3), 3});
  cases.push_back({builders::stencil1d(5, 2), 3});
  cases.push_back({builders::prefix_scan(2), 2});
  for (const Case& c : cases) {
    if (c.graph.num_vertices() > exact::kMaxRecomputeVertices) continue;
    const auto with = exact::exact_optimal_io_with_recomputation(
        c.graph, c.memory);
    const auto without = exact::exact_optimal_io(c.graph, c.memory);
    ASSERT_TRUE(with.complete && without.complete)
        << "n=" << c.graph.num_vertices();
    EXPECT_LE(with.io, without.io) << "n=" << c.graph.num_vertices();
  }
}

TEST(Recompute, RecomputationStrictlyWinsOnFanOutChains) {
  // A cheap value consumed at both ends of a long chain: the no-recompute
  // model must spill it; the pebble game just rebuilds it from the input.
  //   0 → 1 → 2 → 3 → 4 → 5 (chain), plus 0 → 6 and 5 → 6, 1 → 7, 4 → 7
  Digraph g(8);
  for (VertexId v = 0; v < 5; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, 6);
  g.add_edge(5, 6);
  g.add_edge(1, 7);
  g.add_edge(4, 7);
  const std::int64_t memory = 2;
  const auto with = exact::exact_optimal_io_with_recomputation(g, memory);
  const auto without = exact::exact_optimal_io(g, memory);
  ASSERT_TRUE(with.complete && without.complete);
  EXPECT_LT(with.io, without.io);
}

TEST(Recompute, MemoryOneOnAPathIsFree) {
  // A path needs only the previous value; M = 1 suffices with zero I/O
  // under both models.
  const Digraph g = builders::path(8);
  const auto r = exact::exact_optimal_io_with_recomputation(g, 1);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.io, 0);
}

TEST(Recompute, MatchesNoRecomputeWhenRecomputationCannotHelp) {
  // A single binary tree reduction: every value is consumed exactly once,
  // so recomputation buys nothing.
  const Digraph g = builders::binary_tree(3);  // 15 vertices
  const auto with = exact::exact_optimal_io_with_recomputation(g, 2);
  const auto without = exact::exact_optimal_io(g, 2);
  ASSERT_TRUE(with.complete && without.complete);
  EXPECT_EQ(with.io, without.io);
}

TEST(Recompute, RejectsBadInputs) {
  EXPECT_THROW(
      exact::exact_optimal_io_with_recomputation(builders::fft(3), 2),
      contract_error);  // 32 vertices > 16
  EXPECT_THROW(
      exact::exact_optimal_io_with_recomputation(builders::path(3), 0),
      contract_error);
  Digraph cyclic(2);
  cyclic.add_edge(0, 1);
  cyclic.add_edge(1, 0);
  EXPECT_THROW(exact::exact_optimal_io_with_recomputation(cyclic, 2),
               contract_error);
}

TEST(Recompute, StateCapReportsIncomplete) {
  const Digraph g = builders::bhk_hypercube(3);
  exact::RecomputeOptions opts;
  opts.max_states = 3;
  const auto r = exact::exact_optimal_io_with_recomputation(g, 3, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.io, -1);
}

}  // namespace
}  // namespace graphio
