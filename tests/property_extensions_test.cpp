// Randomized property sweeps for the modules added on top of the paper
// reproduction: schedule annealing, the p-processor simulator, the
// push-relabel engine, and graph transforms. Random Erdős–Rényi DAGs
// exercise shapes no hand-picked family covers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/graph/transforms.hpp"
#include "graphio/sim/anneal.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/parallel_memsim.hpp"
#include "graphio/support/prng.hpp"

namespace graphio {
namespace {

struct RandomCase {
  std::int64_t n;
  double p;
  std::uint64_t seed;
};

class RandomExtensions : public ::testing::TestWithParam<RandomCase> {
 protected:
  Digraph graph() const {
    const RandomCase& c = GetParam();
    return builders::erdos_renyi_dag(c.n, c.p, c.seed);
  }
  std::int64_t feasible_memory(const Digraph& g) const {
    return std::max<std::int64_t>(4, g.max_in_degree());
  }
};

TEST_P(RandomExtensions, AnnealedOrdersStayTopologicalAndImproveMonotone) {
  const Digraph g = graph();
  const std::int64_t m = feasible_memory(g);
  sim::AnnealOptions options;
  options.iterations = 400;
  options.seed = GetParam().seed;
  const sim::AnnealResult r = sim::anneal_schedule(g, m, options);
  EXPECT_TRUE(is_topological(g, r.order));
  EXPECT_LE(r.io, r.start_io);
  EXPECT_EQ(r.io, sim::simulate_io(g, r.order, m).total());
  // The lower bound must hold for the annealed order too.
  EXPECT_LE(spectral_bound(g, static_cast<double>(m)).bound,
            static_cast<double>(r.io) + 1e-6);
}

TEST_P(RandomExtensions, ParallelSimConservesWorkAndDominatesTheorem6) {
  const Digraph g = graph();
  const std::int64_t m = feasible_memory(g);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  Prng rng(GetParam().seed ^ 0xABCD);
  for (std::int64_t p : {2, 5}) {
    for (auto strategy :
         {sim::PartitionStrategy::kContiguous,
          sim::PartitionStrategy::kRoundRobin,
          sim::PartitionStrategy::kRandom}) {
      const auto assignment =
          sim::partition_assignment(g, *order, p, strategy, rng());
      const auto result = sim::simulate_parallel_io(g, *order, assignment, m);
      std::int64_t vertices = 0;
      for (const auto& proc : result.per_processor) {
        vertices += proc.vertices;
        EXPECT_GE(proc.reads, 0);
        EXPECT_GE(proc.writes, 0);
        EXPECT_GE(proc.sends, 0);
      }
      EXPECT_EQ(vertices, g.num_vertices());
      const double lower =
          parallel_spectral_bound(g, static_cast<double>(m), p).bound;
      EXPECT_LE(lower, static_cast<double>(result.max_total()) + 1e-6);
    }
  }
}

TEST_P(RandomExtensions, SerialAndParallelSimulatorsAgreeAtPEqualsOne) {
  const Digraph g = graph();
  const std::int64_t m = feasible_memory(g);
  const auto order = topological_order(g);
  const std::vector<int> all_zero(
      static_cast<std::size_t>(g.num_vertices()), 0);
  const auto parallel = sim::simulate_parallel_io(g, *order, all_zero, m);
  const auto serial = sim::simulate_io(g, *order, m);
  EXPECT_EQ(parallel.per_processor[0].reads, serial.reads);
  EXPECT_EQ(parallel.per_processor[0].writes, serial.writes);
  EXPECT_EQ(parallel.per_processor[0].sends, 0);
}

TEST_P(RandomExtensions, FlowEnginesAgreeOnWavefronts) {
  const Digraph g = graph();
  Prng rng(GetParam().seed ^ 0x5A5A);
  for (int i = 0; i < 6; ++i) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    EXPECT_EQ(flow::wavefront_mincut(g, v, flow::FlowEngine::kDinic),
              flow::wavefront_mincut(g, v, flow::FlowEngine::kPushRelabel))
        << "v=" << v;
  }
}

TEST_P(RandomExtensions, TransitiveReductionInvariants) {
  const Digraph g = graph();
  const Digraph tr = transitive_reduction(g);
  EXPECT_TRUE(is_dag(tr));
  EXPECT_LE(tr.num_edges(), g.num_edges());
  // Reducing twice changes nothing.
  EXPECT_TRUE(same_structure(tr, transitive_reduction(tr)));
  // Reversal and reduction commute (both are reachability-determined).
  EXPECT_TRUE(
      same_structure(reverse(transitive_reduction(g)),
                     transitive_reduction(reverse(g))));
}

TEST_P(RandomExtensions, MultiMemoryBoundsMatchSingleCalls) {
  const Digraph g = graph();
  const std::vector<double> memories{4.0, 9.0, 33.0};
  const auto multi = spectral_bounds(g, memories);
  for (std::size_t i = 0; i < memories.size(); ++i) {
    EXPECT_NEAR(multi[i].bound, spectral_bound(g, memories[i]).bound,
                1e-9 * std::max(1.0, multi[i].bound));
  }
}

std::string case_name(const ::testing::TestParamInfo<RandomCase>& info) {
  return "n" + std::to_string(info.param.n) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomExtensions,
    ::testing::Values(RandomCase{30, 0.15, 1}, RandomCase{30, 0.3, 2},
                      RandomCase{80, 0.08, 3}, RandomCase{80, 0.2, 4},
                      RandomCase{150, 0.05, 5}, RandomCase{150, 0.1, 6}),
    case_name);

}  // namespace
}  // namespace graphio
