#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/stream/session.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::stream {
namespace {

engine::BoundRequest spectral_request(const std::string& solver) {
  engine::BoundRequest req;
  req.memories = {3.0, 7.5};
  req.methods = {"spectral", "spectral-plain"};
  req.spectral.solver = solver;
  // Small fixed h keeps the forced sparse tiers well-posed on the tiny
  // property-test components.
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 6;
  return req;
}

/// Applies a random mutation to the patch under construction, mirroring
/// state so every mutation is valid for the session's current graph.
struct RandomMutator {
  std::mt19937_64 rng;
  std::vector<VertexId> alive;
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// Mirrors DynamicGraph id allocation: append-ordered, dead ids never
  /// reused — so the id every add_vertex will yield is predictable.
  VertexId next_id = 0;

  explicit RandomMutator(const Digraph& g, std::uint64_t seed) : rng(seed) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) alive.push_back(v);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId w : g.children(v)) edges.emplace_back(v, w);
    next_id = g.num_vertices();
  }

  Patch next_patch(int mutations) {
    Patch patch;
    for (int m = 0; m < mutations; ++m) {
      switch (rng() % 4) {
        case 0: {
          patch.mutations.push_back(Mutation::add_vertex());
          alive.push_back(next_id++);
          break;
        }
        case 1: {
          if (alive.size() < 2) break;
          const VertexId u = alive[rng() % alive.size()];
          const VertexId v = alive[rng() % alive.size()];
          if (u == v) break;
          patch.mutations.push_back(Mutation::add_edge(u, v));
          edges.emplace_back(u, v);
          break;
        }
        case 2: {
          if (edges.empty()) break;
          const std::size_t i = rng() % edges.size();
          patch.mutations.push_back(
              Mutation::remove_edge(edges[i].first, edges[i].second));
          edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
        default: {
          if (alive.size() <= 3) break;
          const std::size_t i = rng() % alive.size();
          const VertexId v = alive[i];
          patch.mutations.push_back(Mutation::remove_vertex(v));
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
          std::erase_if(edges, [v](const auto& e) {
            return e.first == v || e.second == v;
          });
          break;
        }
      }
    }
    return patch;
  }
};

/// Satellite property (ISSUE 4): any sequence of patches yields bounds
/// identical (1e-8) to a from-scratch Engine on the final graph, across
/// fft/matmul/multi-component specs and every solver policy.
TEST(StreamSessionTest, RandomPatchesMatchScratchAcrossSolvers) {
  const std::vector<std::string> specs = {"fft:4", "matmul:2",
                                          "multi:3:fft:3"};
  const std::vector<std::string> solvers = {"auto", "dense", "lanczos",
                                            "lobpcg"};
  std::uint64_t seed = 1;
  for (const std::string& spec : specs) {
    for (const std::string& solver : solvers) {
      StreamSession session("prop-" + spec + "-" + solver);
      session.load(spec);
      RandomMutator mutator(session.graph(), seed++);
      for (int round = 0; round < 5; ++round) {
        const Patch patch =
            mutator.next_patch(1 + static_cast<int>(mutator.rng() % 4));
        session.apply(patch);
        const engine::BoundReport incremental =
            session.evaluate(spectral_request(solver));

        engine::BoundRequest scratch_req = spectral_request(solver);
        scratch_req.graph = session.graph();
        engine::Engine scratch;
        const engine::BoundReport reference = scratch.evaluate(scratch_req);

        ASSERT_EQ(incremental.rows.size(), reference.rows.size());
        for (std::size_t i = 0; i < incremental.rows.size(); ++i) {
          const engine::MethodRow& a = incremental.rows[i];
          const engine::MethodRow& b = reference.rows[i];
          ASSERT_EQ(a.method, b.method);
          ASSERT_EQ(a.memory, b.memory);
          EXPECT_EQ(a.applicable, b.applicable)
              << spec << " " << solver << " round " << round << " "
              << a.method;
          EXPECT_NEAR(a.value, b.value, 1e-8)
              << spec << " " << solver << " round " << round << " "
              << a.method << " M=" << a.memory;
        }
      }
    }
  }
}

TEST(StreamSessionTest, SingleEdgePatchSolvesOnlyTheDirtyComponent) {
  StreamSession session("g");
  session.load("multi:4:fft:3");
  const engine::BoundRequest req = spectral_request("dense");
  session.evaluate(req);  // warm every component

  Patch patch;
  patch.mutations.push_back(Mutation::add_edge(0, 9));
  const PatchReport applied = session.apply(patch);
  EXPECT_EQ(applied.components, 4);
  EXPECT_EQ(applied.dirty_components, 1);
  EXPECT_EQ(applied.clean_components, 3);

  const engine::BoundReport report = session.evaluate(req);
  // Two Laplacian kinds (spectral + spectral-plain) over one dirty
  // component: two eigensolves; the three clean components hit the
  // component cache for both kinds.
  EXPECT_EQ(report.cache.eigensolves, 2);
  EXPECT_EQ(report.cache.component_hits, 6);
}

TEST(StreamSessionTest, ExtractionsEqualDirtyAfterEveryPatch) {
  // The zero-copy invariant (ISSUE 5): at query time only the dirty
  // components materialize, and nothing is ever re-fingerprinted — the
  // session's incrementally-maintained hashes seed the artifact cache.
  StreamSession session("g");
  session.load("multi:6:fft:3");
  engine::BoundRequest req;
  req.memories = {8.0};
  req.methods = {"spectral"};  // one Laplacian kind: clean accounting
  req.spectral.solver = "dense";
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 8;

  const engine::BoundReport warm = session.evaluate(req);
  EXPECT_EQ(warm.cache.fingerprint_computes, 0);  // seeded by load
  // 6 equal copies: one content, one extraction, five resolver hits.
  EXPECT_EQ(warm.cache.subgraph_extractions, 1);

  // Patch distinct components one at a time; every query must extract
  // exactly the dirty (non-trivial) components and hash nothing.
  for (int round = 0; round < 4; ++round) {
    Patch patch;
    for (int c = 0; c <= round; ++c) {
      const VertexId off = static_cast<VertexId>(c) * 32;  // |fft:3| = 32
      patch.mutations.push_back(
          Mutation::add_edge(off + 2 * round, off + 2 * round + 1));
    }
    const PatchReport applied = session.apply(patch);
    EXPECT_EQ(applied.dirty_components, round + 1);
    const engine::BoundReport report = session.evaluate(req);
    EXPECT_EQ(report.cache.subgraph_extractions, applied.dirty_components)
        << "round " << round;
    EXPECT_EQ(report.cache.fingerprint_computes, 0) << "round " << round;
    EXPECT_EQ(report.cache.eigensolves, applied.dirty_components)
        << "round " << round;
  }
}

TEST(StreamSessionTest, FailedPatchJournalMatchesUntouchedTwin) {
  // Randomized failure injection: a valid prefix followed by an invalid
  // mutation must leave the session bit-identical to a twin that never
  // saw the patch — graph, names, component structure, fingerprint, and
  // all later behavior.
  const std::vector<std::string> specs = {"multi:3:fft:3", "er:40:0.1:3"};
  std::uint64_t seed = 11;
  for (const std::string& spec : specs) {
    for (int trial = 0; trial < 6; ++trial) {
      StreamSession session("victim");
      StreamSession twin("twin");
      session.load(spec);
      twin.load(spec);

      RandomMutator mutator(session.graph(), seed++);
      Patch bad = mutator.next_patch(1 + static_cast<int>(seed % 5));
      bad.mutations.push_back(Mutation::remove_vertex(1 << 20));
      EXPECT_THROW(session.apply(bad), contract_error);

      EXPECT_EQ(session.fingerprint(), twin.fingerprint())
          << spec << " trial " << trial;
      const Digraph a = session.graph();
      const Digraph b = twin.graph();
      EXPECT_EQ(engine::graph_fingerprint(a), engine::graph_fingerprint(b));
      ASSERT_EQ(a.num_vertices(), b.num_vertices());
      for (VertexId v = 0; v < a.num_vertices(); ++v)
        EXPECT_EQ(a.name(v), b.name(v));

      // Both sessions now take the same valid patch and answer queries
      // identically — the failed patch left no latent damage behind.
      RandomMutator replay(twin.graph(), 999 + seed);
      const Patch good = replay.next_patch(3);
      const PatchReport pa = session.apply(good);
      const PatchReport pb = twin.apply(good);
      EXPECT_EQ(pa.fingerprint, pb.fingerprint);
      EXPECT_EQ(pa.dirty_components, pb.dirty_components);
      const engine::BoundReport ra =
          session.evaluate(spectral_request("dense"));
      const engine::BoundReport rb = twin.evaluate(spectral_request("dense"));
      ASSERT_EQ(ra.rows.size(), rb.rows.size());
      for (std::size_t i = 0; i < ra.rows.size(); ++i)
        EXPECT_EQ(ra.rows[i].value, rb.rows[i].value);
    }
  }
}

TEST(StreamSessionTest, QueriesBetweenPatchesShareArtifacts) {
  StreamSession session("g");
  session.load("fft:4");
  const engine::BoundRequest req = spectral_request("dense");
  const engine::BoundReport first = session.evaluate(req);
  EXPECT_GT(first.cache.eigensolves, 0);
  // Same graph, second query: the installed ArtifactCache still holds the
  // spectra — no new eigensolve, not even component-cache traffic.
  const engine::BoundReport second = session.evaluate(req);
  EXPECT_EQ(second.cache.eigensolves, 0);
  EXPECT_EQ(second.cache.misses, 0);
}

TEST(StreamSessionTest, EvictsComponentCacheEntriesWhenContentDisappears) {
  StreamSession session("g");
  session.load("multi:3:fft:3");
  session.evaluate(spectral_request("dense"));
  const auto& cache = *session.engine().artifact_store();
  const std::int64_t entries_before = cache.stats().entries();
  ASSERT_GT(entries_before, 0);

  // Patch one copy: its content becomes unique, but the fft:3 content
  // still exists (two clean copies) — nothing evicts.
  Patch patch;
  patch.mutations.push_back(Mutation::add_edge(0, 9));
  const PatchReport first = session.apply(patch);
  EXPECT_EQ(first.evicted, 0);

  session.evaluate(spectral_request("dense"));  // caches the patched comp
  const std::int64_t entries_mid = cache.stats().entries();
  EXPECT_GT(entries_mid, entries_before);

  // Revert: the patched content disappears — its entries must go.
  Patch revert;
  revert.mutations.push_back(Mutation::remove_edge(0, 9));
  const PatchReport second = session.apply(revert);
  EXPECT_GT(second.evicted, 0);
  EXPECT_LT(cache.stats().entries(), entries_mid);
  EXPECT_GT(cache.stats().evicted(), 0);
}

TEST(StreamSessionTest, FingerprintIsOrderIndependentAndRevertsExactly) {
  // Equal component multisets in different id order hash equal.
  const Digraph a = builders::fft(3);
  const Digraph b = builders::inner_product(4);
  const std::vector<Digraph> ab = {a, b};
  const std::vector<Digraph> ba = {b, a};
  StreamSession s1("g1");
  StreamSession s2("g2");
  s1.load(disjoint_union(ab));
  s2.load(disjoint_union(ba));
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());

  // Patch + exact inverse restores the fingerprint bit-for-bit.
  const std::uint64_t before = s1.fingerprint();
  Patch patch;
  patch.mutations.push_back(Mutation::add_edge(0, 5));
  s1.apply(patch);
  EXPECT_NE(s1.fingerprint(), before);
  Patch revert;
  revert.mutations.push_back(Mutation::remove_edge(0, 5));
  s1.apply(revert);
  EXPECT_EQ(s1.fingerprint(), before);
}

TEST(StreamSessionTest, FailedPatchRollsBackAtomically) {
  StreamSession session("g");
  session.load("fft:3");
  const std::uint64_t before = session.fingerprint();
  const std::int64_t edges_before = session.graph().num_edges();

  Patch bad;
  bad.mutations.push_back(Mutation::add_edge(0, 1));      // fine
  bad.mutations.push_back(Mutation::remove_vertex(999));  // invalid
  try {
    session.apply(bad);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("mutation 2/2"), std::string::npos);
  }
  // Nothing from the failed patch sticks — not even its first mutation.
  EXPECT_EQ(session.fingerprint(), before);
  EXPECT_EQ(session.graph().num_edges(), edges_before);

  // And the session still works.
  Patch good;
  good.mutations.push_back(Mutation::add_edge(0, 1));
  session.apply(good);
  EXPECT_EQ(session.graph().num_edges(), edges_before + 1);
}

TEST(StreamSessionTest, RejectsSpecCollidingNamesAndUnloadedUse) {
  EXPECT_THROW(StreamSession("fft:8"), contract_error);
  EXPECT_THROW(StreamSession(""), contract_error);
  StreamSession session("g");
  Patch patch;
  patch.mutations.push_back(Mutation::add_vertex());
  EXPECT_THROW(session.apply(patch), contract_error);
  EXPECT_THROW(session.evaluate(spectral_request("auto")), contract_error);
  EXPECT_THROW(session.graph(), contract_error);
}

TEST(StreamSessionTest, ConcurrentQueriesAndPatchesAreSerialized) {
  StreamSession session("g");
  session.load("multi:3:fft:3");
  const engine::BoundRequest req = spectral_request("dense");
  std::thread mutator([&] {
    for (int i = 0; i < 6; ++i) {
      Patch patch;
      patch.mutations.push_back(Mutation::add_edge(0, 9));
      session.apply(patch);
      Patch revert;
      revert.mutations.push_back(Mutation::remove_edge(0, 9));
      session.apply(revert);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t)
    readers.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        const engine::BoundReport report = session.evaluate(req);
        for (const engine::MethodRow& row : report.rows)
          ASSERT_TRUE(std::isfinite(row.value));
        (void)session.fingerprint();
        (void)session.stats();
      }
    });
  mutator.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(session.stats().patches, 1 + 12);  // load + 12 patches
}

}  // namespace
}  // namespace graphio::stream
