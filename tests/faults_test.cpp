// Tests for graphio::faults — deterministic fault injection and the
// robustness behaviors layered on it (ISSUE PR 10).
//
// The load-bearing guarantees certified here:
//   * plans parse deterministically and reject malformed specs up front,
//   * a disarmed registry is a no-op (and every canonical seam is listed),
//   * store write faults demote to memory-only — never crash, never
//     corrupt: a fault-written directory always loads and compacts clean,
//   * a compaction rename fault leaves the original log intact,
//   * the scheduler retries transient job faults with bounded attempts
//     and quarantines poison jobs,
//   * a job deadline yields a *sound* degraded bound (<= the full bound),
//   * a mid-patch fault rolls the stream session back to its twin-exact
//     pre-patch state,
//   * a single-site fault sweep over a mixed batch yields, per job,
//     a bit-identical result, a structured error, or a degraded/
//     non-converged flag — never a silent wrong bound.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/io/json.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/serve/result_store.hpp"
#include "graphio/serve/scheduler.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/stream/session.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::faults {
namespace {

/// Temp directory that cleans up after itself.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

ComponentSolve converged_solve() {
  ComponentSolve solve;
  solve.vertices = 4;
  solve.edges = 3;
  solve.solver = la::SolverKind::kLanczos;
  solve.solver_ran = true;
  solve.converged = true;
  solve.values = {0.0, 0.25, 0.5};
  return solve;
}

// -------------------------------------------------------- plan grammar

TEST(FaultPlan, ParsesNthProbabilityAndKinds) {
  const FaultPlan plan = FaultPlan::parse(
      "store.disk.append:nth=3;"
      "serve.worker:prob=0.5,seed=9,kind=fatal;"
      "solver.converge:nth=1,kind=io");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, "store.disk.append");
  EXPECT_EQ(plan.specs[0].nth, 3);
  EXPECT_EQ(plan.specs[0].kind, "transient");  // default
  EXPECT_TRUE(plan.specs[0].transient());
  EXPECT_EQ(plan.specs[1].site, "serve.worker");
  EXPECT_EQ(plan.specs[1].probability, 0.5);
  EXPECT_EQ(plan.specs[1].seed, 9u);
  EXPECT_FALSE(plan.specs[1].transient());
  EXPECT_EQ(plan.specs[2].kind, "io");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("store.disk.append"), contract_error);
  EXPECT_THROW(FaultPlan::parse("store.disk.append:nth=0"), contract_error);
  EXPECT_THROW(FaultPlan::parse("store.disk.append:prob=1.5"),
               contract_error);
  EXPECT_THROW(FaultPlan::parse("store.disk.append:nth=1,prob=0.5"),
               contract_error);
  EXPECT_THROW(FaultPlan::parse("store.disk.append:nth=1,bogus=2"),
               contract_error);
  EXPECT_THROW(FaultPlan::parse("store.disk.append:seed=7"), contract_error);
  // Unknown sites are rejected at install time.
  EXPECT_THROW(
      FaultRegistry::global().install(FaultPlan::parse("no.such.site:nth=1")),
      contract_error);
  EXPECT_FALSE(FaultRegistry::global().armed());
}

TEST(FaultRegistry, DisarmedIsNoOpAndCanonicalSitesAreListed) {
  EXPECT_FALSE(FaultRegistry::global().armed());
  EXPECT_NO_THROW(inject("store.disk.append"));
  EXPECT_FALSE(trip("solver.converge"));
  std::map<std::string, bool> listed;
  for (const SiteInfo& site : FaultRegistry::global().sites())
    listed[site.name] = site.armed;
  for (const char* name :
       {"store.disk.append", "store.disk.compact", "result_store.append",
        "provenance.append", "solver.converge", "serve.worker",
        "stream.apply"}) {
    ASSERT_TRUE(listed.count(name)) << name;
    EXPECT_FALSE(listed[name]) << name;
  }
}

TEST(FaultRegistry, NthHitFiresExactlyOnceAndCounts) {
  const ScopedFaultPlan plan("solver.converge:nth=2");
  EXPECT_TRUE(FaultRegistry::global().armed());
  EXPECT_FALSE(trip("solver.converge"));
  EXPECT_TRUE(trip("solver.converge"));
  EXPECT_FALSE(trip("solver.converge"));
  for (const SiteInfo& site : FaultRegistry::global().sites()) {
    if (site.name != "solver.converge") continue;
    EXPECT_TRUE(site.armed);
    EXPECT_EQ(site.hits, 3);
    EXPECT_EQ(site.fired, 1);
  }
}

TEST(FaultRegistry, ProbabilityModeIsSeedDeterministic) {
  auto sequence = [](std::uint64_t seed) {
    const ScopedFaultPlan plan(FaultPlan::parse(
        "solver.converge:prob=0.5,seed=" + std::to_string(seed)));
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) fired.push_back(trip("solver.converge"));
    return fired;
  };
  EXPECT_EQ(sequence(7), sequence(7));  // same seed, same trace
  const ScopedFaultPlan always("solver.converge:prob=1,seed=1");
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(trip("solver.converge"));
}

// ----------------------------------------------------- store demotion

TEST(FaultStore, ArtifactAppendFaultDemotesToMemoryOnly) {
  const TempDir dir("graphio_faults_store_append");
  SpectralOptions options;
  options.solver = "lanczos";
  {
    store::ArtifactStore a(dir.path);
    const ScopedFaultPlan plan("store.disk.append:nth=1");
    a.store_spectrum(1, LaplacianKind::kOutDegreeNormalized, 4, options,
                     converged_solve());
    EXPECT_TRUE(a.stats().demoted);
    EXPECT_FALSE(a.durable());
    // The memory tier keeps serving the process.
    EXPECT_TRUE(a.lookup_spectrum(1, LaplacianKind::kOutDegreeNormalized, 4,
                                  options));
    // Demoted: later appends are silently dropped, never crash.
    a.store_spectrum(2, LaplacianKind::kOutDegreeNormalized, 4, options,
                     converged_solve());
    EXPECT_EQ(a.stats().appended, 0);
  }
  // The fault-written directory loads clean and compacts clean.
  store::ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().corrupt, 0);
  EXPECT_FALSE(b.stats().demoted);
  b.store_spectrum(3, LaplacianKind::kOutDegreeNormalized, 4, options,
                   converged_solve());
  EXPECT_EQ(b.stats().appended, 1);
  EXPECT_NO_THROW(b.compact());
}

TEST(FaultStore, CompactRenameFaultLeavesOriginalLogIntact) {
  const TempDir dir("graphio_faults_store_compact");
  SpectralOptions options;
  options.solver = "lanczos";
  store::ArtifactStore a(dir.path);
  a.store_spectrum(1, LaplacianKind::kOutDegreeNormalized, 4, options,
                   converged_solve());
  {
    const ScopedFaultPlan plan("store.disk.compact:nth=1");
    EXPECT_THROW(a.compact(), FaultInjected);
  }
  // No stale .tmp, original log intact, store still appendable.
  EXPECT_FALSE(std::filesystem::exists(
      a.path().string() + ".tmp"));
  a.store_spectrum(2, LaplacianKind::kOutDegreeNormalized, 4, options,
                   converged_solve());
  EXPECT_EQ(a.compact(), 2);
  store::ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 2);
  EXPECT_EQ(b.stats().corrupt, 0);
}

TEST(FaultStore, ResultStoreAppendFaultDemotesToMemoryOnly) {
  const TempDir dir("graphio_faults_result_store");
  serve::ResultStore::Key key;
  key.graph_fingerprint = 42;
  key.method = "spectral";
  key.memory = 8.0;
  engine::MethodRow row;
  row.method = "spectral";
  row.memory = 8.0;
  row.value = 3.5;
  {
    serve::ResultStore store(dir.path);
    const ScopedFaultPlan plan("result_store.append:nth=1");
    store.insert(key, row);
    EXPECT_TRUE(store.stats().demoted);
    // The in-process index still serves the row.
    const auto hit = store.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->value, 3.5);
  }
  // Nothing durable, but the directory loads clean and works again.
  serve::ResultStore reopened(dir.path);
  EXPECT_EQ(reopened.stats().loaded, 0);
  EXPECT_EQ(reopened.stats().corrupt, 0);
  reopened.insert(key, row);
  EXPECT_EQ(reopened.stats().appended, 1);
}

// ------------------------------------------------ retry and quarantine

serve::Job bound_job(std::int64_t id) {
  serve::Job job = serve::job_from_json_line(
      R"({"spec": "fft:3", "memories": [4], "methods": ["spectral"]})");
  job.id = id;
  return job;
}

TEST(FaultScheduler, TransientFaultIsRetriedToSuccess) {
  serve::SchedulerOptions options;
  options.threads = 1;
  options.max_attempts = 3;
  options.backoff_ms = 0.0;
  serve::Scheduler scheduler(options);
  const ScopedFaultPlan plan("serve.worker:nth=1");
  const serve::JobResult result = scheduler.run_one(bound_job(1));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2);  // first attempt faulted, retry succeeded
  EXPECT_FALSE(result.quarantined);
}

TEST(FaultScheduler, PoisonJobIsQuarantinedAfterMaxAttempts) {
  serve::SchedulerOptions options;
  options.threads = 1;
  options.max_attempts = 3;
  options.backoff_ms = 0.0;
  serve::Scheduler scheduler(options);
  const ScopedFaultPlan plan("serve.worker:prob=1,seed=5");
  const serve::JobResult result = scheduler.run_one(bound_job(1));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_TRUE(result.quarantined);
  EXPECT_EQ(result.error_kind, "transient");
  EXPECT_EQ(result.error_site, "serve.worker");
}

TEST(FaultScheduler, NonTransientFaultFailsFirstTry) {
  serve::SchedulerOptions options;
  options.threads = 1;
  options.max_attempts = 3;
  options.backoff_ms = 0.0;
  serve::Scheduler scheduler(options);
  const ScopedFaultPlan plan("serve.worker:nth=1,kind=fatal");
  const serve::JobResult result = scheduler.run_one(bound_job(1));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(result.quarantined);
  EXPECT_EQ(result.error_kind, "fatal");
}

TEST(FaultScheduler, DeterministicFailuresAreNeverRetried) {
  serve::SchedulerOptions options;
  options.threads = 1;
  options.max_attempts = 3;
  options.backoff_ms = 0.0;
  serve::Scheduler scheduler(options);
  serve::Job job = serve::job_from_json_line(
      R"({"spec": "fft:3", "memories": [4], "methods": ["nope"]})");
  job.id = 1;
  const serve::JobResult result = scheduler.run_one(job);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.error_kind, "error");
  EXPECT_FALSE(result.quarantined);
}

// ------------------------------------------------- degraded deadlines

TEST(FaultDegraded, DeadlineYieldsSoundWeakerBoundFlaggedDegraded) {
  engine::BoundRequest request;
  request.spec = "multi:3:fft:3";
  request.memories = {4.0};
  request.methods = {"spectral"};
  engine::Engine full;
  const engine::BoundReport baseline = full.evaluate(request);
  ASSERT_EQ(baseline.rows.size(), 1u);
  ASSERT_TRUE(baseline.rows[0].applicable);
  EXPECT_FALSE(baseline.rows[0].degraded);

  engine::BoundRequest limited = request;
  limited.spectral.deadline_seconds = 1e-12;  // every boundary over budget
  engine::Engine partial;
  const engine::BoundReport degraded = partial.evaluate(limited);
  ASSERT_EQ(degraded.rows.size(), 1u);
  ASSERT_TRUE(degraded.rows[0].applicable);
  EXPECT_TRUE(degraded.rows[0].degraded);
  EXPECT_FALSE(degraded.rows[0].converged);
  // Sound: still a lower bound, just weaker than the full evaluation.
  EXPECT_GE(degraded.rows[0].value, 0.0);
  EXPECT_LE(degraded.rows[0].value, baseline.rows[0].value);
}

TEST(FaultDegraded, SolverConvergenceFaultNeverSilentlyConverges) {
  engine::BoundRequest request;
  request.spec = "fft:4";
  request.memories = {4.0};
  request.methods = {"spectral"};
  engine::Engine clean;
  const engine::BoundReport baseline = clean.evaluate(request);

  const ScopedFaultPlan plan("solver.converge:prob=1,seed=2");
  engine::Engine faulted;
  const engine::BoundReport report = faulted.evaluate(request);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.rows[0].converged);
  EXPECT_TRUE(report.rows[0].degraded);
  EXPECT_GE(report.rows[0].value, 0.0);
  EXPECT_LE(report.rows[0].value, baseline.rows[0].value);
}

// -------------------------------------------- mid-patch twin rollback

TEST(FaultStream, MidPatchFaultRollsBackToTwinExactState) {
  auto artifacts = std::make_shared<store::ArtifactStore>();
  stream::StreamSession faulted("a", artifacts);
  stream::StreamSession control("b", artifacts);
  faulted.load("multi:2:fft:3");
  control.load("multi:2:fft:3");
  ASSERT_EQ(faulted.fingerprint(), control.fingerprint());

  const serve::Job patch_job = serve::job_from_json_line(
      R"({"graph": "a", "patch": [
            {"op": "add_vertex"},
            {"op": "add_edge", "u": 0, "v": 2},
            {"op": "add_edge", "u": 1, "v": 2}]})");
  {
    // Fire between mutations: the first applied, then the fault — the
    // inverse journal must unwind the partial patch completely.
    const ScopedFaultPlan plan("stream.apply:nth=2");
    EXPECT_THROW(faulted.apply(patch_job.patch), FaultInjected);
  }
  EXPECT_EQ(faulted.num_vertices(), control.num_vertices());
  EXPECT_EQ(faulted.num_edges(), control.num_edges());
  EXPECT_EQ(faulted.fingerprint(), control.fingerprint());

  // Replaying the patch for real keeps the twins in lockstep.
  faulted.apply(patch_job.patch);
  control.apply(patch_job.patch);
  EXPECT_EQ(faulted.fingerprint(), control.fingerprint());
}

// --------------------------------------------- single-site fault sweep

/// One mixed batch — stream lane (load, query, patch) plus spec jobs —
/// with every persistence layer attached. The stream query deliberately
/// precedes the patch so its result does not depend on whether the patch
/// survived a fault.
const char* kSweepCorpus =
    R"({"graph": "g", "load": "multi:2:fft:3"})"
    "\n"
    R"({"graph": "g", "memories": [4], "methods": ["spectral"]})"
    "\n"
    R"({"graph": "g", "patch": [{"op": "add_edge", "u": 0, "v": 2}]})"
    "\n"
    R"({"spec": "fft:3", "memories": [4], "methods": ["spectral", "mincut"]})"
    "\n"
    R"({"spec": "fft:4", "memories": [4], "methods": ["spectral"]})"
    "\n";

std::map<std::int64_t, std::string> run_corpus(
    const std::filesystem::path& root) {
  serve::BatchOptions options;
  options.threads = 1;  // deterministic site hit order
  options.store_dir = (root / "results").string();
  options.artifact_dir = (root / "artifacts").string();
  options.provenance_dir = (root / "prov").string();
  options.backoff_ms = 0.0;
  serve::BatchSession session(options);
  std::istringstream in(kSweepCorpus);
  std::ostringstream out;
  session.run(in, out);
  std::map<std::int64_t, std::string> by_job;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const io::JsonValue parsed = io::JsonValue::parse(line);
    by_job[parsed.at("job").as_int()] = line;
  }
  return by_job;
}

/// A result line that differs from the fault-free run must be loud about
/// it: a structured error object, a degraded flag, or a non-converged row.
bool loudly_flagged(const std::string& line) {
  const io::JsonValue parsed = io::JsonValue::parse(line);
  if (parsed.get("error") != nullptr) {
    // Structured: kind + message at minimum.
    return parsed.at("error").get("kind") != nullptr &&
           parsed.at("error").get("message") != nullptr;
  }
  if (parsed.get("degraded") != nullptr && parsed.at("degraded").as_bool())
    return true;
  if (parsed.get("report") != nullptr) {
    for (const io::JsonValue& row :
         parsed.at("report").at("rows").items()) {
      if (row.get("converged") != nullptr && !row.at("converged").as_bool())
        return true;
    }
  }
  return false;
}

TEST(FaultSweep, EverySiteYieldsIdenticalFlaggedOrStructuredResults) {
  const TempDir base("graphio_faults_sweep_baseline");
  const std::map<std::int64_t, std::string> baseline =
      run_corpus(base.path);
  ASSERT_EQ(baseline.size(), 5u);

  for (const SiteInfo& site : FaultRegistry::global().sites()) {
    const TempDir dir("graphio_faults_sweep_" + site.name);
    std::map<std::int64_t, std::string> faulted;
    {
      const ScopedFaultPlan plan(site.name + ":nth=1");
      faulted = run_corpus(dir.path);
    }
    ASSERT_EQ(faulted.size(), baseline.size()) << site.name;
    for (const auto& [job, line] : faulted) {
      if (line == baseline.at(job)) continue;  // bit-identical: fine
      EXPECT_TRUE(loudly_flagged(line))
          << site.name << " job " << job
          << " silently diverged: " << line;
    }
    // A fault-written store directory always loads and compacts clean.
    store::ArtifactStore artifacts(dir.path / "artifacts");
    EXPECT_EQ(artifacts.stats().corrupt, 0) << site.name;
    EXPECT_NO_THROW(artifacts.compact()) << site.name;
    serve::ResultStore results(dir.path / "results");
    EXPECT_EQ(results.stats().corrupt, 0) << site.name;
  }
}

TEST(FaultSweep, DurableRunFsyncsAndSurvivesReload) {
  const TempDir dir("graphio_faults_durable");
  serve::BatchOptions options;
  options.threads = 1;
  options.store_dir = (dir.path / "results").string();
  options.artifact_dir = (dir.path / "artifacts").string();
  options.provenance_dir = (dir.path / "prov").string();
  options.durable = true;
  serve::BatchSession session(options);
  std::istringstream in(kSweepCorpus);
  std::ostringstream out;
  const serve::BatchSummary summary = session.run(in, out);
  EXPECT_EQ(summary.failed, 0);
  serve::ResultStore results(dir.path / "results");
  EXPECT_GT(results.stats().loaded, 0);
  EXPECT_TRUE(
      std::filesystem::exists(dir.path / "prov" / "provenance.jsonl"));
}

}  // namespace
}  // namespace graphio::faults
