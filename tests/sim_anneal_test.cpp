#include <gtest/gtest.h>

#include <algorithm>

#include "graphio/exact/pebble_search.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/anneal.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio {
namespace {

TEST(Anneal, ResultIsTopologicalAndNeverWorseThanStart) {
  const Digraph g = builders::fft(4);
  const auto start = topological_order(g);
  ASSERT_TRUE(start.has_value());
  sim::AnnealOptions options;
  options.iterations = 800;
  const sim::AnnealResult r = sim::anneal_schedule(g, 4, *start, options);
  EXPECT_TRUE(is_topological(g, r.order));
  EXPECT_LE(r.io, r.start_io);
  EXPECT_EQ(r.io, sim::simulate_io(g, r.order, 4).total());
}

TEST(Anneal, ImprovesABadStartingOrder) {
  // A random Kahn order on a butterfly scatters column-adjacent work, so
  // local insertion moves should find something strictly better.
  const Digraph g = builders::fft(4);
  Prng rng(17);
  const std::vector<VertexId> bad = random_topological_order(g, rng);
  sim::AnnealOptions options;
  options.iterations = 3000;
  options.seed = 3;
  const sim::AnnealResult r = sim::anneal_schedule(g, 3, bad, options);
  EXPECT_LT(r.io, r.start_io);
}

TEST(Anneal, NeverGoesBelowTheExactOptimum) {
  const Digraph g = builders::bhk_hypercube(4);  // 16 vertices, exact range
  const auto truth = exact::exact_optimal_io(g, 4);
  ASSERT_TRUE(truth.complete);
  sim::AnnealOptions options;
  options.iterations = 2000;
  const sim::AnnealResult r = sim::anneal_schedule(g, 4, options);
  EXPECT_GE(r.io, truth.io);
}

TEST(Anneal, DeterministicForFixedSeed) {
  const Digraph g = builders::stencil1d(8, 4);
  sim::AnnealOptions options;
  options.iterations = 500;
  options.seed = 99;
  const sim::AnnealResult a = sim::anneal_schedule(g, 4, options);
  const sim::AnnealResult b = sim::anneal_schedule(g, 4, options);
  EXPECT_EQ(a.io, b.io);
  EXPECT_EQ(a.order, b.order);
}

TEST(Anneal, ZeroIterationsReturnsTheStart) {
  const Digraph g = builders::inner_product(3);
  const auto start = topological_order(g);
  ASSERT_TRUE(start.has_value());
  sim::AnnealOptions options;
  options.iterations = 0;
  const sim::AnnealResult r = sim::anneal_schedule(g, 2, *start, options);
  EXPECT_EQ(r.order, *start);
  EXPECT_EQ(r.io, r.start_io);
  EXPECT_EQ(r.moves_attempted, 0);
}

TEST(Anneal, HillClimbingModeAcceptsNoUphillMoves) {
  const Digraph g = builders::fft(3);
  sim::AnnealOptions options;
  options.iterations = 1500;
  options.initial_temperature = 0.0;
  const sim::AnnealResult r = sim::anneal_schedule(g, 2, options);
  EXPECT_TRUE(is_topological(g, r.order));
  EXPECT_LE(r.io, r.start_io);
}

TEST(Anneal, RejectsNonTopologicalStart) {
  const Digraph g = builders::path(4);
  std::vector<VertexId> backwards{3, 2, 1, 0};
  EXPECT_THROW(sim::anneal_schedule(g, 2, backwards, {}), contract_error);
}

TEST(Anneal, PathGraphHasNothingToImprove) {
  // A path admits exactly one topological order; annealing must return it
  // with zero accepted moves that change anything.
  const Digraph g = builders::path(6);
  const sim::AnnealResult r = sim::anneal_schedule(g, 2, sim::AnnealOptions{});
  const auto only = topological_order(g);
  EXPECT_EQ(r.order, *only);
  EXPECT_EQ(r.io, r.start_io);
}

TEST(Anneal, LruPolicyIsRespected) {
  const Digraph g = builders::fft(3);
  sim::AnnealOptions options;
  options.iterations = 400;
  options.policy = sim::EvictionPolicy::kLru;
  const sim::AnnealResult r = sim::anneal_schedule(g, 2, options);
  sim::SimOptions sim_options;
  sim_options.policy = sim::EvictionPolicy::kLru;
  EXPECT_EQ(r.io, sim::simulate_io(g, r.order, 2, sim_options).total());
}

class AnnealSandwich
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(AnnealSandwich, StaysBetweenExactAndStart) {
  const auto [cities, memory] = GetParam();
  const Digraph g = builders::bhk_hypercube(cities);
  if (g.max_in_degree() > memory)
    GTEST_SKIP() << "infeasible: max in-degree exceeds fast memory";
  const auto truth = exact::exact_optimal_io(g, memory);
  ASSERT_TRUE(truth.complete);
  sim::AnnealOptions options;
  options.iterations = 1200;
  options.seed = static_cast<std::uint64_t>(cities) * 1000 +
                 static_cast<std::uint64_t>(memory);
  const sim::AnnealResult r = sim::anneal_schedule(g, memory, options);
  EXPECT_GE(r.io, truth.io);
  EXPECT_LE(r.io, r.start_io);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnnealSandwich,
    ::testing::Combine(::testing::Values(3, 4), ::testing::Values(3, 4, 6)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::int64_t>>& param_info) {
      return "l" + std::to_string(std::get<0>(param_info.param)) + "_m" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace graphio
