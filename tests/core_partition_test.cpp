// Numerical verification of the paper's derivation chain (Lemma 1 →
// Theorem 2 → trace identity → Theorem 4) on explicit orders.
#include <gtest/gtest.h>

#include <numeric>

#include "graphio/core/partition.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(BalancedPartition, SizesAndSegments) {
  const auto sizes = balanced_partition_sizes(10, 3);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4);  // first n mod k get the extra vertex
  EXPECT_EQ(sizes[1], 3);
  EXPECT_EQ(sizes[2], 3);

  const auto segments = balanced_segments(10, 3);
  EXPECT_EQ(segments[0], (std::pair<std::int64_t, std::int64_t>{0, 4}));
  EXPECT_EQ(segments[2], (std::pair<std::int64_t, std::int64_t>{7, 10}));

  EXPECT_THROW(balanced_partition_sizes(3, 4), contract_error);
  EXPECT_THROW(balanced_partition_sizes(3, 0), contract_error);
}

TEST(BalancedPartition, EqualSplitWhenDivisible) {
  for (std::int64_t size : balanced_partition_sizes(12, 4)) EXPECT_EQ(size, 3);
}

TEST(PartitionObjective, HandComputedOnPath) {
  // Path 0→1→2→3, natural order, k=2 → segments {0,1} {2,3}; the single
  // crossing edge (1,2) has dout(1)=1 and lies in both boundaries: 2/1.
  const Digraph g = builders::path(4);
  const std::vector<VertexId> order{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(partition_edge_objective(g, order, 2), 2.0);
  // k=4: every edge crosses → 3 edges × 2 = 6.
  EXPECT_DOUBLE_EQ(partition_edge_objective(g, order, 4), 6.0);
}

TEST(PartitionObjective, Lemma1HandComputedOnPath) {
  const Digraph g = builders::path(4);
  const std::vector<VertexId> order{0, 1, 2, 3};
  // k=2: R of segment 2 = {1}, W of segment 1 = {1} → total 2.
  EXPECT_EQ(lemma1_reads_writes(g, order, 2), 2);
}

TEST(PartitionObjective, TraceIdentityHoldsExactly) {
  // tr(XᵀL̃XW(k)) == Σ_S Σ_{∂S} 1/dout — Equation 3 / Section 4.2.
  Prng rng(21);
  for (const Digraph& g :
       {builders::fft(4), builders::bhk_hypercube(5),
        builders::erdos_renyi_dag(60, 0.1, 3)}) {
    for (int trial = 0; trial < 3; ++trial) {
      const auto order = random_topological_order(g, rng);
      for (std::int64_t k : {2, 3, 7}) {
        EXPECT_NEAR(
            trace_objective(g, order, k, LaplacianKind::kOutDegreeNormalized),
            partition_edge_objective(g, order, k), 1e-9);
      }
    }
  }
}

TEST(PartitionObjective, PlainTraceCountsUnweightedBoundary) {
  const Digraph g = builders::path(6);
  const std::vector<VertexId> order{0, 1, 2, 3, 4, 5};
  // k=3 → segments of 2; crossing edges (1,2) and (3,4) → |∂S| total 4.
  EXPECT_NEAR(trace_objective(g, order, 3, LaplacianKind::kPlain), 4.0,
              1e-12);
}

TEST(DerivationChain, Lemma1DominatesTheorem2Objective) {
  Prng rng(5);
  for (const Digraph& g :
       {builders::fft(4), builders::naive_matmul(3),
        builders::strassen_matmul(4), builders::bhk_hypercube(5)}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto order = random_topological_order(g, rng);
      for (std::int64_t k : {2, 4, 8}) {
        EXPECT_GE(static_cast<double>(lemma1_reads_writes(g, order, k)),
                  partition_edge_objective(g, order, k) - 1e-9)
            << "k=" << k;
      }
    }
  }
}

TEST(DerivationChain, ObjectiveDominatesSpectralRelaxation) {
  // For every order X and every k:
  //   Σ_S Σ_{∂S} 1/dout ≥ ⌊n/k⌋ · Σ_{i≤k} λ_i(L̃)   (Theorem 4 inner step)
  Prng rng(17);
  for (const Digraph& g :
       {builders::fft(4), builders::bhk_hypercube(5),
        builders::erdos_renyi_dag(50, 0.15, 11)}) {
    const auto lambda = la::symmetric_eigenvalues(
        dense_laplacian(g, LaplacianKind::kOutDegreeNormalized));
    const std::int64_t n = g.num_vertices();
    for (int trial = 0; trial < 4; ++trial) {
      const auto order = random_topological_order(g, rng);
      for (std::int64_t k : {2, 3, 5, 10}) {
        double prefix = 0.0;
        for (std::int64_t i = 0; i < k; ++i)
          prefix += std::max(0.0, lambda[static_cast<std::size_t>(i)]);
        const double relaxed = static_cast<double>(n / k) * prefix;
        EXPECT_GE(partition_edge_objective(g, order, k), relaxed - 1e-8)
            << "k=" << k;
      }
    }
  }
}

TEST(PartitionObjective, RejectsNonPermutationOrders) {
  const Digraph g = builders::path(4);
  EXPECT_THROW(partition_edge_objective(g, {0, 1, 2}, 2), contract_error);
  EXPECT_THROW(partition_edge_objective(g, {0, 1, 2, 2}, 2), contract_error);
}

}  // namespace
}  // namespace graphio
