#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/graph/transforms.hpp"
#include "graphio/stream/dynamic_components.hpp"
#include "graphio/stream/dynamic_graph.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::stream {
namespace {

TEST(StreamDynamicGraphTest, SeedsFromDigraphAndMaterializesBack) {
  const Digraph g = builders::fft(3);
  DynamicGraph d(g);
  EXPECT_EQ(d.num_vertices(), g.num_vertices());
  EXPECT_EQ(d.num_edges(), g.num_edges());
  EXPECT_TRUE(same_structure(d.materialize(), g));
  EXPECT_EQ(engine::graph_fingerprint(d.materialize()),
            engine::graph_fingerprint(g));
}

TEST(StreamDynamicGraphTest, IdsAreStableAcrossRemovals) {
  DynamicGraph d;
  const VertexId a = d.add_vertex();
  const VertexId b = d.add_vertex();
  const VertexId c = d.add_vertex();
  d.add_edge(a, c);
  d.remove_vertex(b);
  EXPECT_FALSE(d.alive(b));
  EXPECT_TRUE(d.alive(c));
  // Dead ids are never reused: the next vertex gets a fresh id.
  const VertexId e = d.add_vertex();
  EXPECT_EQ(e, 3);
  d.add_edge(c, e);
  EXPECT_EQ(d.num_vertices(), 3);
  EXPECT_EQ(d.num_edges(), 2);
  // Materialization compacts ascending: a->0, c->1, e->2.
  const Digraph m = d.materialize();
  ASSERT_EQ(m.num_vertices(), 3);
  ASSERT_EQ(m.children(0).size(), 1u);
  EXPECT_EQ(m.children(0)[0], 1);
  ASSERT_EQ(m.children(1).size(), 1u);
  EXPECT_EQ(m.children(1)[0], 2);
}

TEST(StreamDynamicGraphTest, ParallelEdgesRemoveOneMultiplicityAtATime) {
  DynamicGraph d;
  d.add_vertex();
  d.add_vertex();
  d.add_edge(0, 1);
  d.add_edge(0, 1);
  EXPECT_EQ(d.num_edges(), 2);
  d.remove_edge(0, 1);
  EXPECT_EQ(d.num_edges(), 1);
  d.remove_edge(0, 1);
  EXPECT_EQ(d.num_edges(), 0);
  EXPECT_THROW(d.remove_edge(0, 1), contract_error);
}

TEST(StreamDynamicGraphTest, RemoveVertexDropsAllIncidentMultiplicities) {
  DynamicGraph d;
  for (int i = 0; i < 3; ++i) d.add_vertex();
  d.add_edge(0, 1);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 1);
  d.remove_vertex(1);
  EXPECT_EQ(d.num_edges(), 0);
  EXPECT_EQ(d.children(0).size(), 0u);
  EXPECT_EQ(d.parents(2).size(), 0u);
}

TEST(StreamDynamicGraphTest, RejectsInvalidMutations) {
  DynamicGraph d;
  d.add_vertex();
  d.add_vertex();
  EXPECT_THROW(d.add_edge(0, 0), contract_error);
  EXPECT_THROW(d.add_edge(0, 9), contract_error);
  EXPECT_THROW(d.remove_vertex(9), contract_error);
  d.remove_vertex(1);
  EXPECT_THROW(d.add_edge(0, 1), contract_error);
  EXPECT_THROW(d.remove_vertex(1), contract_error);
}

TEST(StreamDynamicComponentsTest, UnionMergesAndNumbersDeterministically) {
  DynamicGraph d;
  for (int i = 0; i < 4; ++i) d.add_vertex();
  DynamicComponents comps(d);
  EXPECT_EQ(comps.count(), 4);
  comps.begin_patch();
  d.add_edge(0, 1);
  comps.on_add_edge(0, 1);
  d.add_edge(2, 3);
  comps.on_add_edge(2, 3);
  comps.flush(d);
  EXPECT_EQ(comps.count(), 2);
  EXPECT_EQ(comps.component_of(0), comps.component_of(1));
  EXPECT_EQ(comps.component_of(2), comps.component_of(3));
  EXPECT_NE(comps.component_of(0), comps.component_of(2));
  EXPECT_EQ(comps.dirty().size(), 2u);
  EXPECT_TRUE(comps.matches(d));
}

TEST(StreamDynamicComponentsTest, DeletionSplitsViaPartialRebuild) {
  // Path 0-1-2-3; cutting the middle edge splits one component in two.
  DynamicGraph d;
  for (int i = 0; i < 4; ++i) d.add_vertex();
  for (int i = 0; i < 3; ++i) d.add_edge(i, i + 1);
  DynamicComponents comps(d);
  EXPECT_EQ(comps.count(), 1);
  comps.begin_patch();
  d.remove_edge(1, 2);
  comps.on_remove_edge(1, 2);
  comps.flush(d);
  EXPECT_EQ(comps.count(), 2);
  EXPECT_EQ(comps.component_of(0), comps.component_of(1));
  EXPECT_EQ(comps.component_of(2), comps.component_of(3));
  EXPECT_NE(comps.component_of(0), comps.component_of(2));
  // Both pieces are dirty (their content changed).
  EXPECT_EQ(comps.dirty().size(), 2u);
  EXPECT_TRUE(comps.matches(d));
}

TEST(StreamDynamicComponentsTest, CleanComponentsStayOutOfDirty) {
  const Digraph g = disjoint_copies(builders::fft(2), 3);
  DynamicGraph d(g);
  DynamicComponents comps(d);
  ASSERT_EQ(comps.count(), 3);
  const std::int64_t per = builders::fft(2).num_vertices();
  comps.begin_patch();
  d.add_edge(0, 1);  // inside component 0 (may be a parallel edge)
  comps.on_add_edge(0, 1);
  comps.flush(d);
  const std::vector<int> dirty = comps.dirty();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], comps.component_of(0));
  // The clean components' membership is untouched.
  EXPECT_EQ(comps.vertices_of(comps.component_of(per)).size(),
            static_cast<std::size_t>(per));
}

TEST(StreamDynamicComponentsTest, SubgraphMatchesWeakComponentsExtraction) {
  // The stream-side extraction must fingerprint identically to the
  // pipeline's WeakComponents::subgraph of the materialized graph —
  // that equality is what lets cached component spectra survive patches.
  const Digraph g = disjoint_copies(builders::inner_product(3), 2);
  DynamicGraph d(g);
  DynamicComponents comps(d);
  comps.begin_patch();
  comps.on_add_vertex(d.add_vertex());
  d.add_edge(2, g.num_vertices());
  comps.on_add_edge(2, g.num_vertices());
  ASSERT_FALSE(d.children(0).empty());
  const VertexId cut = d.children(0)[0];
  d.remove_edge(0, cut);
  comps.on_remove_edge(0, cut);
  comps.flush(d);

  const Digraph m = d.materialize();
  const WeakComponents reference = weakly_connected_components(m);
  ASSERT_EQ(comps.count(), reference.count);
  std::vector<std::uint64_t> stream_fps;
  for (int c : comps.component_ids())
    stream_fps.push_back(engine::graph_fingerprint(comps.subgraph(d, c)));
  std::vector<std::uint64_t> reference_fps;
  for (int c = 0; c < reference.count; ++c)
    reference_fps.push_back(
        engine::graph_fingerprint(reference.subgraph(m, c)));
  std::sort(stream_fps.begin(), stream_fps.end());
  std::sort(reference_fps.begin(), reference_fps.end());
  EXPECT_EQ(stream_fps, reference_fps);
}

/// Random mutation churn: after every patch the incremental labels must
/// equal a from-scratch decomposition, and the component count must match
/// the materialized graph's.
TEST(StreamDynamicComponentsTest, RandomChurnMatchesScratchDecomposition) {
  std::mt19937_64 rng(20260731);
  for (int trial = 0; trial < 8; ++trial) {
    DynamicGraph d(builders::erdos_renyi_dag(24, 0.06, trial + 1));
    DynamicComponents comps(d);
    std::vector<VertexId> alive;
    for (VertexId v = 0; v < d.id_limit(); ++v) alive.push_back(v);
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId v : alive)
      for (VertexId w : d.children(v)) edges.emplace_back(v, w);

    for (int patch = 0; patch < 12; ++patch) {
      comps.begin_patch();
      const int mutations = 1 + static_cast<int>(rng() % 4);
      for (int m = 0; m < mutations; ++m) {
        switch (rng() % 4) {
          case 0: {
            const VertexId v = d.add_vertex();
            comps.on_add_vertex(v);
            alive.push_back(v);
            break;
          }
          case 1: {
            if (alive.size() < 2) break;
            const VertexId u = alive[rng() % alive.size()];
            const VertexId v = alive[rng() % alive.size()];
            if (u == v) break;
            d.add_edge(u, v);
            comps.on_add_edge(u, v);
            edges.emplace_back(u, v);
            break;
          }
          case 2: {
            if (edges.empty()) break;
            const std::size_t i = rng() % edges.size();
            const auto [u, v] = edges[i];
            d.remove_edge(u, v);
            comps.on_remove_edge(u, v);
            edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
          default: {
            if (alive.size() <= 2) break;
            const std::size_t i = rng() % alive.size();
            const VertexId v = alive[i];
            comps.on_remove_vertex(v);
            d.remove_vertex(v);
            alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
            std::erase_if(edges, [v](const auto& e) {
              return e.first == v || e.second == v;
            });
            break;
          }
        }
      }
      comps.flush(d);
      ASSERT_TRUE(comps.matches(d))
          << "trial " << trial << " patch " << patch;
      ASSERT_EQ(comps.count(), num_weak_components(d.materialize()));
    }
  }
}

// ---------------------------------------------------- rollback journals

/// Bit-exact equality of two DynamicGraphs over their full external-id
/// range: adjacency lists (order and multiplicity included), liveness,
/// names, counters — everything a fingerprint or a later patch can see.
void expect_graphs_identical(const DynamicGraph& a, const DynamicGraph& b) {
  ASSERT_EQ(a.id_limit(), b.id_limit());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.id_limit(); ++v) {
    ASSERT_EQ(a.alive(v), b.alive(v)) << "vertex " << v;
    if (!a.alive(v)) continue;
    const auto ac = a.children(v);
    const auto bc = b.children(v);
    ASSERT_TRUE(std::equal(ac.begin(), ac.end(), bc.begin(), bc.end()))
        << "children of " << v;
    const auto ap = a.parents(v);
    const auto bp = b.parents(v);
    ASSERT_TRUE(std::equal(ap.begin(), ap.end(), bp.begin(), bp.end()))
        << "parents of " << v;
    EXPECT_EQ(a.name(v), b.name(v)) << "name of " << v;
  }
  EXPECT_EQ(engine::graph_fingerprint(a.materialize()),
            engine::graph_fingerprint(b.materialize()));
}

TEST(StreamJournalTest, GraphRollbackRestoresEveryListExactly) {
  // Parallel edges, names, interleaved adds/removes: rollback must put
  // every adjacency entry back at its original index, not just restore
  // set-equality — content fingerprints hash list order.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 1);  // parallel
  g.add_edge(3, 1);
  g.add_edge(2, 4);
  g.set_name(2, "mid");
  DynamicGraph d(g);
  const DynamicGraph reference = d;  // one-off snapshot, test-only

  d.begin_journal();
  d.remove_edge(0, 1);                     // drops the *last* multiplicity
  const VertexId fresh = d.add_vertex();
  d.add_edge(fresh, 0);
  d.add_edge(1, fresh);
  d.remove_vertex(2);                      // mid vertex with name + edges
  d.remove_vertex(3);
  d.add_edge(0, 4);
  d.rollback_journal();

  expect_graphs_identical(d, reference);
}

TEST(StreamJournalTest, GraphCommitKeepsMutationsAndReleasesJournal) {
  DynamicGraph d(builders::path(4));
  d.begin_journal();
  d.add_edge(0, 3);
  d.commit_journal();
  EXPECT_EQ(d.num_edges(), 4);
  EXPECT_THROW(d.rollback_journal(), contract_error);
}

TEST(StreamJournalTest, ComponentsRollbackUndoesMergesSplitsAndRemovals) {
  // Two components that merge, one that loses a vertex, one fresh vertex:
  // every labeled structure must return to the begin_patch state.
  std::vector<Digraph> parts = {builders::path(4), builders::path(3),
                                builders::path(5)};
  DynamicGraph d(disjoint_union(parts));
  DynamicComponents comps(d);
  ASSERT_EQ(comps.count(), 3);
  const std::vector<int> ids_before = comps.component_ids();
  std::vector<std::vector<VertexId>> members_before;
  for (int c : ids_before) members_before.push_back(comps.vertices_of(c));

  d.begin_journal();
  comps.begin_patch();
  comps.on_add_vertex(d.add_vertex());     // fresh singleton slot
  d.add_edge(0, 4);
  comps.on_add_edge(0, 4);                 // merge path(4) into path(3)
  comps.on_remove_vertex(11);              // shrink path(5)
  d.remove_vertex(11);
  d.remove_edge(0, 1);
  comps.on_remove_edge(0, 1);              // queue a rebuild
  comps.rollback_patch();
  d.rollback_journal();

  ASSERT_EQ(comps.component_ids(), ids_before);
  for (std::size_t i = 0; i < ids_before.size(); ++i)
    EXPECT_EQ(comps.vertices_of(ids_before[i]), members_before[i]);
  EXPECT_TRUE(comps.matches(d));
  // The structures still work: a real patch after the rollback behaves
  // as if the failed one never happened.
  comps.begin_patch();
  d.add_edge(0, 4);
  comps.on_add_edge(0, 4);
  comps.flush(d);
  EXPECT_EQ(comps.count(), 2);
  EXPECT_TRUE(comps.matches(d));
}

TEST(StreamJournalTest, RandomRollbacksAlwaysRestoreScratchEquality) {
  // Randomized failure injection at the structure level: apply a random
  // mutation burst, roll it back, and demand exact equality with the
  // untouched twin — across many seeds, so merges-of-merges, splits, and
  // parallel-edge removals all get exercised.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph base = builders::erdos_renyi_dag(
        24, 0.12, static_cast<std::uint64_t>(100 + trial));
    DynamicGraph d(base);
    DynamicComponents comps(d);
    const DynamicGraph graph_ref = d;

    std::vector<VertexId> alive;
    for (VertexId v = 0; v < d.id_limit(); ++v)
      if (d.alive(v)) alive.push_back(v);
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId v : alive)
      for (VertexId w : d.children(v)) edges.emplace_back(v, w);

    d.begin_journal();
    comps.begin_patch();
    const int burst = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < burst; ++m) {
      switch (rng() % 4) {
        case 0:
          comps.on_add_vertex(d.add_vertex());
          break;
        case 1: {
          const VertexId u = alive[rng() % alive.size()];
          const VertexId v = alive[rng() % alive.size()];
          if (u == v) break;
          d.add_edge(u, v);
          comps.on_add_edge(u, v);
          edges.emplace_back(u, v);
          break;
        }
        case 2: {
          if (edges.empty()) break;
          const auto [u, v] = edges[rng() % edges.size()];
          d.remove_edge(u, v);
          comps.on_remove_edge(u, v);
          std::erase(edges, std::make_pair(u, v));
          break;
        }
        default: {
          if (alive.size() <= 2) break;
          const std::size_t i = rng() % alive.size();
          const VertexId v = alive[i];
          comps.on_remove_vertex(v);
          d.remove_vertex(v);
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
          std::erase_if(edges, [v](const auto& e) {
            return e.first == v || e.second == v;
          });
          break;
        }
      }
    }
    comps.rollback_patch();
    d.rollback_journal();
    expect_graphs_identical(d, graph_ref);
    EXPECT_TRUE(comps.matches(d)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace graphio::stream
