#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/dot.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Dot, EmitsVerticesAndEdges) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v2;"), std::string::npos);
  EXPECT_NE(dot.find("v1 -> v2;"), std::string::npos);
}

TEST(Dot, UsesNamesAsLabels) {
  const Digraph g = builders::inner_product(2);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("label=\"a0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"a0*b0\""), std::string::npos);
}

TEST(Dot, EscapesQuotesInLabels) {
  Digraph g(1);
  g.set_name(0, "say \"hi\"");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(Dot, RespectsOptions) {
  Digraph g(1);
  DotOptions options;
  options.graph_name = "fft";
  options.rankdir = "LR";
  options.use_names = false;
  g.set_name(0, "ignored");
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("digraph \"fft\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_EQ(dot.find("ignored"), std::string::npos);
}

TEST(Dot, WritesFile) {
  const std::string path = ::testing::TempDir() + "graphio_dot_test.dot";
  write_dot(builders::path(3), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("v0 -> v1;"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Dot, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_dot(builders::path(2), "/nonexistent-dir/x.dot"),
               contract_error);
}

TEST(Dot, ParallelEdgesAppearTwice) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const std::string dot = to_dot(g);
  const auto first = dot.find("v0 -> v1;");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1;", first + 1), std::string::npos);
}

}  // namespace
}  // namespace graphio
