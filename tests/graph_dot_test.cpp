#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/dot.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Dot, EmitsVerticesAndEdges) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v2;"), std::string::npos);
  EXPECT_NE(dot.find("v1 -> v2;"), std::string::npos);
}

TEST(Dot, UsesNamesAsLabels) {
  const Digraph g = builders::inner_product(2);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("label=\"a0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"a0*b0\""), std::string::npos);
}

TEST(Dot, EscapesQuotesInLabels) {
  Digraph g(1);
  g.set_name(0, "say \"hi\"");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(Dot, RespectsOptions) {
  Digraph g(1);
  DotOptions options;
  options.graph_name = "fft";
  options.rankdir = "LR";
  options.use_names = false;
  g.set_name(0, "ignored");
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("digraph \"fft\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_EQ(dot.find("ignored"), std::string::npos);
}

TEST(Dot, WritesFile) {
  const std::string path = ::testing::TempDir() + "graphio_dot_test.dot";
  write_dot(builders::path(3), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("v0 -> v1;"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Dot, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_dot(builders::path(2), "/nonexistent-dir/x.dot"),
               contract_error);
}

TEST(Dot, ParallelEdgesAppearTwice) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const std::string dot = to_dot(g);
  const auto first = dot.find("v0 -> v1;");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1;", first + 1), std::string::npos);
}

// ----------------------------------------------------------------- reader

TEST(DotReader, RoundTripsExporterOutput) {
  for (const Digraph& g :
       {builders::fft(3), builders::inner_product(3), builders::grid(3, 4)}) {
    const Digraph back = from_dot_string(to_dot(g));
    ASSERT_EQ(back.num_vertices(), g.num_vertices());
    ASSERT_EQ(back.num_edges(), g.num_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(std::vector<VertexId>(back.children(v).begin(),
                                      back.children(v).end()),
                std::vector<VertexId>(g.children(v).begin(),
                                      g.children(v).end()));
      EXPECT_EQ(back.name(v), g.name(v));
    }
  }
}

TEST(DotReader, ParsesHandWrittenSubset) {
  const Digraph g = from_dot_string(R"(
    // line comment
    strict digraph my_graph {
      rankdir=LR;  /* block comment */
      node [shape=box];
      # hash comment
      a [label="input"];
      a -> b -> c;
      a -> c [style=dotted];
      "quoted id" -> c;
    }
  )");
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.name(0), "input");
  EXPECT_EQ(std::vector<VertexId>(g.children(0).begin(),
                                  g.children(0).end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(DotReader, ParsesSpacelessEdgesAndNegativeAttributes) {
  // "a->b" with no spaces is the common hand-written form; the tokenizer
  // must not swallow the dash into the id.
  const Digraph g = from_dot_string(
      "digraph{a->b;b->c [weight=-2, fontsize=-1.5];}");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(std::vector<VertexId>(g.children(0).begin(),
                                  g.children(0).end()),
            (std::vector<VertexId>{1}));
  // A negative unquoted label is captured whole, not as the lone dash.
  const Digraph labeled = from_dot_string("digraph { a [label=-5]; }");
  EXPECT_EQ(labeled.name(0), "-5");
}

TEST(DotReader, RejectsMalformedDocuments) {
  EXPECT_THROW(from_dot_string(""), contract_error);
  EXPECT_THROW(from_dot_string("graph g { a -- b }"), contract_error);
  EXPECT_THROW(from_dot_string("digraph { a -> }"), contract_error);
  EXPECT_THROW(from_dot_string("digraph { a -> a }"), contract_error);
  EXPECT_THROW(from_dot_string("digraph { a -> b"), contract_error);
  EXPECT_THROW(from_dot_string("digraph { subgraph s { a } }"),
               contract_error);
  EXPECT_THROW(from_dot_string("digraph { a [label=] }"), contract_error);
  EXPECT_THROW(from_dot_string("digraph { } trailing"), contract_error);
  EXPECT_THROW(from_dot_string("digraph { \"open"), contract_error);
}

TEST(DotReader, LoadsFilesAndReportsMissingOnes) {
  const std::string path = ::testing::TempDir() + "graphio_dot_read.dot";
  write_dot(builders::binary_tree(3), path);
  const Digraph g = load_dot(path);
  EXPECT_EQ(g.num_vertices(), builders::binary_tree(3).num_vertices());
  std::remove(path.c_str());
  EXPECT_THROW(load_dot(path), contract_error);
}

}  // namespace
}  // namespace graphio
