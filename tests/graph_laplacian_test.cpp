#include <gtest/gtest.h>

#include <cmath>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/symmetric_eigen.hpp"

namespace graphio {
namespace {

TEST(Laplacian, PlainMatchesHandComputation) {
  // Inner-product graph of Figure 1: a0,a1,b0,b1 -> products -> sum.
  const Digraph g = builders::inner_product(2);
  const la::DenseMatrix lap = dense_laplacian(g, LaplacianKind::kPlain);
  // Inputs have degree 1, products degree 3, sum degree 2.
  EXPECT_DOUBLE_EQ(lap(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(lap(4, 4), 3.0);
  EXPECT_DOUBLE_EQ(lap(6, 6), 2.0);
  EXPECT_DOUBLE_EQ(lap(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(lap(4, 0), -1.0);
}

TEST(Laplacian, NormalizedUsesOutDegreeWeights) {
  // 0 -> 1, 0 -> 2: dout(0)=2, so both edges carry weight 1/2.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const la::DenseMatrix lap =
      dense_laplacian(g, LaplacianKind::kOutDegreeNormalized);
  EXPECT_DOUBLE_EQ(lap(0, 0), 1.0);  // 1/2 + 1/2
  EXPECT_DOUBLE_EQ(lap(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(lap(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(lap(2, 2), 0.5);
}

TEST(Laplacian, ParallelEdgesAccumulate) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const la::DenseMatrix plain = dense_laplacian(g, LaplacianKind::kPlain);
  EXPECT_DOUBLE_EQ(plain(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(plain(0, 1), -2.0);
  const la::DenseMatrix norm =
      dense_laplacian(g, LaplacianKind::kOutDegreeNormalized);
  // Two edges of weight 1/dout(0) = 1/2 each.
  EXPECT_DOUBLE_EQ(norm(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm(0, 1), -1.0);
}

TEST(Laplacian, SparseAndDenseAgree) {
  for (auto kind :
       {LaplacianKind::kPlain, LaplacianKind::kOutDegreeNormalized}) {
    const Digraph g = builders::strassen_matmul(4);
    const la::DenseMatrix dense = dense_laplacian(g, kind);
    const la::DenseMatrix via_sparse = laplacian(g, kind).to_dense();
    EXPECT_LT(dense.max_abs_diff(via_sparse), 1e-14);
  }
}

TEST(Laplacian, RowSumsAreZero) {
  for (auto kind :
       {LaplacianKind::kPlain, LaplacianKind::kOutDegreeNormalized}) {
    const Digraph g = builders::fft(4);
    const la::DenseMatrix lap = dense_laplacian(g, kind);
    for (std::size_t i = 0; i < lap.rows(); ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < lap.cols(); ++j) row_sum += lap(i, j);
      EXPECT_NEAR(row_sum, 0.0, 1e-12);
    }
  }
}

TEST(Laplacian, IsSymmetricPositiveSemidefinite) {
  for (auto kind :
       {LaplacianKind::kPlain, LaplacianKind::kOutDegreeNormalized}) {
    const Digraph g = builders::naive_matmul(3);
    const la::CsrMatrix lap = laplacian(g, kind);
    EXPECT_NEAR(lap.symmetry_error(), 0.0, 1e-14);
    const auto values = la::symmetric_eigenvalues(lap.to_dense());
    EXPECT_GT(values.front(), -1e-9);  // PSD
    EXPECT_NEAR(values.front(), 0.0, 1e-9);
  }
}

TEST(Laplacian, ZeroEigenvalueMultiplicityEqualsComponents) {
  // Two disjoint inner products -> two components -> two zero eigenvalues.
  Digraph g = builders::inner_product(2);
  const auto h = builders::inner_product(2);
  const VertexId offset = g.num_vertices();
  for (VertexId v = 0; v < h.num_vertices(); ++v) (void)g.add_vertex();
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    for (VertexId c : h.children(v)) g.add_edge(v + offset, c + offset);

  const auto values =
      la::symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  EXPECT_NEAR(values[0], 0.0, 1e-10);
  EXPECT_NEAR(values[1], 0.0, 1e-10);
  EXPECT_GT(values[2], 1e-8);
}

TEST(Laplacian, QuadraticFormCountsWeightedBoundary) {
  // Equation 3: xᵀL̃x = Σ_{(u,v)∈∂S} 1/dout(u) for indicator x of S.
  const Digraph g = builders::fft(3);
  const la::CsrMatrix lap =
      laplacian(g, LaplacianKind::kOutDegreeNormalized);
  // S = column 0 (the inputs).
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()), 0.0);
  for (std::int64_t r = 0; r < 8; ++r)
    x[static_cast<std::size_t>(builders::fft_vertex(3, 0, r))] = 1.0;
  std::vector<double> y(x.size());
  lap.matvec(x, y);
  double quad = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) quad += x[i] * y[i];
  // Boundary: all 16 edges out of column 0, each of weight 1/2.
  EXPECT_NEAR(quad, 8.0, 1e-12);
}

TEST(Laplacian, EdgelessGraph) {
  const Digraph g(5);
  const la::CsrMatrix lap = laplacian(g, LaplacianKind::kPlain);
  EXPECT_EQ(lap.nonzeros(), 0);
  EXPECT_DOUBLE_EQ(lap.gershgorin_upper_bound(), 0.0);
}

}  // namespace
}  // namespace graphio
