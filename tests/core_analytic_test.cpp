// Closed-form spectra and Section 5 bounds, validated against numerics.
#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/analytic_bounds.hpp"
#include "graphio/core/analytic_spectra.hpp"
#include "graphio/core/published.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/tridiagonal.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::analytic {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial(20, 10), 184756.0);
}

TEST(HypercubeSpectrum, MatchesDenseForSmallCubes) {
  for (int l : {1, 2, 4, 6}) {
    const auto g = builders::bhk_hypercube(l);
    const auto numeric = Spectrum::from_values(
        la::symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain)),
        1e-7);
    EXPECT_LT(hypercube_spectrum(l).max_abs_diff(numeric), 1e-7) << "l=" << l;
  }
}

TEST(HypercubeSpectrum, CountsAndExtremes) {
  const Spectrum s = hypercube_spectrum(10);
  EXPECT_EQ(s.total_count(), 1024);
  EXPECT_DOUBLE_EQ(s.entries().front().value, 0.0);
  EXPECT_DOUBLE_EQ(s.entries().back().value, 20.0);
  EXPECT_EQ(s.entries()[1].multiplicity, 10);  // λ=2 has multiplicity C(10,1)
}

// The paper's novel result (Theorem 7): the butterfly spectrum closed form.
// This is the strongest test in the module — the closed form must
// reproduce the dense spectrum of the actual graph including every
// multiplicity.
TEST(ButterflySpectrum, Theorem7MatchesDenseSpectrum) {
  for (int l : {1, 2, 3, 4, 5, 6}) {
    const auto g = builders::fft(l);
    const auto numeric = Spectrum::from_values(
        la::symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain)),
        1e-7);
    const Spectrum closed = butterfly_spectrum(l);
    ASSERT_EQ(closed.total_count(), numeric.total_count()) << "l=" << l;
    EXPECT_LT(closed.max_abs_diff(numeric), 1e-7) << "l=" << l;
  }
}

TEST(ButterflySpectrum, TotalCountFormula) {
  for (int l : {1, 4, 8, 12})
    EXPECT_EQ(butterfly_spectrum(l).total_count(),
              static_cast<std::int64_t>(l + 1) * (std::int64_t{1} << l));
}

TEST(ButterflySpectrum, SingleVertexBaseCase) {
  const Spectrum s = butterfly_spectrum(0);
  ASSERT_EQ(s.total_count(), 1);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 0.0);
}

namespace {
la::SymTridiag weighted_path(int i, bool left_weight, bool right_weight) {
  // Path with i vertices, edge weights 2, optional +2 vertex weights at
  // the ends (the P / P' / P'' family of Appendix A).
  la::SymTridiag t;
  t.diag.assign(static_cast<std::size_t>(i), 4.0);
  if (i >= 1) {
    t.diag.front() = left_weight ? 4.0 : 2.0;
    t.diag.back() = right_weight ? 4.0 : 2.0;
  }
  if (i == 1) {
    // Single vertex: degree contributions collapse; weight only.
    t.diag[0] = (left_weight ? 2.0 : 0.0) + (right_weight ? 2.0 : 0.0);
  }
  t.off.assign(i > 0 ? static_cast<std::size_t>(i - 1) : 0, -2.0);
  return t;
}
}  // namespace

TEST(PathSpectra, Lemma11FormulasMatchTridiagonalNumerics) {
  for (int i : {2, 3, 5, 8}) {
    // P_i: no end weights.
    auto p = tridiagonal_eigenvalues(weighted_path(i, false, false));
    auto p_closed = path_p_spectrum(i);
    std::sort(p_closed.begin(), p_closed.end());
    for (std::size_t j = 0; j < p.size(); ++j)
      EXPECT_NEAR(p[j], p_closed[j], 1e-9) << "P_" << i;

    // P'_i: one end weighted.
    auto pp = tridiagonal_eigenvalues(weighted_path(i, false, true));
    auto pp_closed = path_pprime_spectrum(i);
    std::sort(pp_closed.begin(), pp_closed.end());
    for (std::size_t j = 0; j < pp.size(); ++j)
      EXPECT_NEAR(pp[j], pp_closed[j], 1e-9) << "P'_" << i;

    // P''_i: both ends weighted.
    auto ppp = tridiagonal_eigenvalues(weighted_path(i, true, true));
    auto ppp_closed = path_pdoubleprime_spectrum(i);
    std::sort(ppp_closed.begin(), ppp_closed.end());
    for (std::size_t j = 0; j < ppp.size(); ++j)
      EXPECT_NEAR(ppp[j], ppp_closed[j], 1e-9) << "P''_" << i;
  }
}

TEST(BhkBounds, GeneralAlphaFormulaReducesToAlpha1) {
  for (int l : {6, 10, 14})
    for (double m : {4.0, 16.0})
      EXPECT_NEAR(bhk_bound(l, m, 1), bhk_bound_alpha1(l, m), 1e-9);
}

TEST(BhkBounds, Alpha1HandValue) {
  // l=10, M=4: 2^11/11 − 2·4·11 = 186.18… − 88.
  EXPECT_NEAR(bhk_bound_alpha1(10, 4), 2048.0 / 11.0 - 88.0, 1e-9);
}

TEST(BhkBounds, BestAlphaDominatesAlpha1) {
  for (int l : {8, 12}) {
    for (double m : {2.0, 8.0}) {
      int alpha = -1;
      const double best = bhk_bound_best_alpha(l, m, &alpha);
      EXPECT_GE(best, std::max(0.0, bhk_bound_alpha1(l, m)) - 1e-9);
      EXPECT_GE(alpha, 0);
    }
  }
}

TEST(BhkBounds, NontrivialExactlyBelowThreshold) {
  // §5.1: the α=1 bound is positive as long as M ≤ 2^l/(l+1)².
  const int l = 10;
  const double threshold = bhk_nontrivial_memory_threshold(l);
  EXPECT_NEAR(threshold, 1024.0 / 121.0, 1e-12);
  EXPECT_GT(bhk_bound_alpha1(l, threshold * 0.99), 0.0);
  EXPECT_LT(bhk_bound_alpha1(l, threshold * 1.01), 0.0);
}

TEST(BhkBounds, ClosedFormIsValidSpectralBound) {
  // The closed form must agree with mechanically evaluating Theorem 5 on
  // the analytic hypercube spectrum with k = l+1 (α = 1).
  const int l = 9;
  const double m = 3.0;
  const auto lambda = hypercube_spectrum(l).smallest(l + 1);
  // floor(n/k)·Σλ/l − 2kM with k = l+1: matches bhk_bound_alpha1 up to the
  // paper's floor-free simplification ⌊2^l/(l+1)⌋ ≈ 2^l/(l+1).
  double prefix = 0.0;
  for (double v : lambda) prefix += v;
  const double mechanical =
      std::floor(std::ldexp(1.0, l) / (l + 1)) * prefix / l -
      2.0 * (l + 1) * m;
  const double closed = bhk_bound_alpha1(l, m);
  EXPECT_NEAR(mechanical, closed, prefix / l + 1e-9);  // floor slack ≤ Σλ/l
  EXPECT_LE(mechanical, closed + 1e-9);
}

TEST(FftBounds, PaperAlphaChoiceAndHandValue) {
  // l=10, M=4 → α = 10−2 = 8: (11·1024)(1−cos(π/5)) − 2^10·4.
  const double expected =
      11.0 * 1024.0 * (1.0 - std::cos(3.14159265358979323846 / 5.0)) -
      std::ldexp(1.0, 10) * 4.0;
  EXPECT_NEAR(fft_bound(10, 4, 8), expected, 1e-9);
  EXPECT_NEAR(fft_bound_paper_alpha(10, 4), expected, 1e-9);
}

TEST(FftBounds, BestAlphaDominatesPaperChoice) {
  for (int l : {8, 12})
    for (double m : {4.0, 16.0})
      EXPECT_GE(fft_bound_best_alpha(l, m),
                std::max(0.0, fft_bound_paper_alpha(l, m)) - 1e-9);
}

TEST(FftBounds, WithinLogFactorOfHongKung) {
  // §5.2's headline: the spectral closed form is at most ~1/log₂M weaker
  // than the tight Ω(l·2^l/log M) bound. The asymptotic regime needs
  // M ≪ l (the −4/(l+1) correction must be dominated), so test far out.
  const int l = 100;
  const double m = 4.0;
  const double spectral = fft_bound_best_alpha(l, m);
  const double hong_kung = published::fft_hong_kung(l, m);
  EXPECT_GT(spectral, 0.0);
  // "only a 1/log₂M factor worse": allow a constant of 4 on top.
  EXPECT_GT(spectral, hong_kung / (4.0 * std::log2(m)));
  EXPECT_LT(spectral, hong_kung);
}

TEST(FftBounds, NegativeOutsideTheAsymptoticRegime) {
  // At small l the 2^{α+2}M term wins — the closed form is honest about it.
  EXPECT_LT(fft_bound_paper_alpha(20, 16.0), 0.0);
}

TEST(ErBounds, SparseAndDenseRegimes) {
  EXPECT_THROW(er_sparse_bound(100, 5.0, 1.0), contract_error);
  // p0 = 24: n/(1+0.5)·(1−√(1/12)) − 4M with M = 0.25.
  const double expected =
      1000.0 / 1.5 * (1.0 - std::sqrt(2.0 / 24.0)) - 4.0 * 0.25;
  EXPECT_NEAR(er_sparse_bound(1000, 24.0, 0.25), expected, 1e-9);
  EXPECT_DOUBLE_EQ(er_dense_bound(1000, 10.0), 460.0);
}

TEST(Published, ReferenceCurves) {
  EXPECT_DOUBLE_EQ(published::fft_hong_kung(10, 4), 10.0 * 1024.0 / 2.0);
  EXPECT_DOUBLE_EQ(published::matmul_irony(8, 16), 512.0 / 4.0);
  EXPECT_NEAR(published::strassen_ballard(8, 4),
              std::pow(4.0, std::log2(7.0)) * 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(published::bhk_growth(10), 102.4);
  EXPECT_DOUBLE_EQ(published::fft_growth(3), 24.0);
  EXPECT_DOUBLE_EQ(published::matmul_growth(4), 64.0);
}

TEST(ProductSpectra, GridMatchesDenseEigensolver) {
  // L(G □ H) = L_G ⊕ L_H: the grid builder's undirected skeleton is
  // path(rows) □ path(cols).
  for (const auto& [rows, cols] :
       {std::pair<int, int>{3, 5}, {4, 4}, {2, 9}}) {
    const Digraph g = builders::grid(rows, cols);
    const std::vector<double> numeric =
        la::symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
    const Spectrum closed = grid_spectrum(rows, cols);
    EXPECT_EQ(closed.total_count(), g.num_vertices());
    EXPECT_LT(closed.max_abs_diff(Spectrum::from_values(numeric)), 1e-8)
        << rows << "x" << cols;
  }
}

TEST(ProductSpectra, TorusMatchesDenseEigensolver) {
  // Assemble a 4×5 torus directly (cycle □ cycle skeleton).
  const std::int64_t rows = 4;
  const std::int64_t cols = 5;
  Digraph g(rows * cols);
  auto id = [&](std::int64_t r, std::int64_t c) { return r * cols + c; };
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id((r + 1) % rows, c));
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
    }
  const std::vector<double> numeric =
      la::symmetric_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  const Spectrum closed = torus_spectrum(rows, cols);
  EXPECT_LT(closed.max_abs_diff(Spectrum::from_values(numeric)), 1e-8);
}

TEST(ProductSpectra, HypercubeIsAPowerOfK2) {
  // Q_4 = K_2 □ K_2 □ K_2 □ K_2 — the product engine must rebuild the
  // binomial-multiplicity closed form exactly.
  Spectrum q = complete_spectrum(2);
  for (int i = 1; i < 4; ++i)
    q = cartesian_product_spectrum(q, complete_spectrum(2));
  EXPECT_DOUBLE_EQ(q.max_abs_diff(hypercube_spectrum(4)), 0.0);
}

TEST(ProductSpectra, ProductIsCommutativeAndCountsMultiply) {
  const Spectrum a = path_spectrum(6);
  const Spectrum b = cycle_spectrum(5);
  const Spectrum ab = cartesian_product_spectrum(a, b);
  const Spectrum ba = cartesian_product_spectrum(b, a);
  EXPECT_EQ(ab.total_count(), a.total_count() * b.total_count());
  EXPECT_DOUBLE_EQ(ab.max_abs_diff(ba), 0.0);
}

}  // namespace
}  // namespace graphio::analytic
