// The tracer must reconstruct, from running arithmetic code, exactly the
// graphs the direct builders produce.
#include <gtest/gtest.h>

#include <vector>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/trace/tape.hpp"

namespace graphio::trace {
namespace {

void expect_same_graph(const Digraph& a, const Digraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto ca = a.children(v);
    const auto cb = b.children(v);
    ASSERT_EQ(ca.size(), cb.size()) << "vertex " << v;
    for (std::size_t i = 0; i < ca.size(); ++i)
      EXPECT_EQ(ca[i], cb[i]) << "vertex " << v << " child " << i;
  }
}

TEST(Trace, RecordsInputsAndBinaryOps) {
  Tape tape;
  const Value a = tape.input("a");
  const Value b = tape.input("b");
  const Value c = a + b;
  const Value d = c * a;
  (void)d;
  const Digraph& g = tape.graph();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.name(2), "+");
  EXPECT_EQ(g.name(3), "*");
  EXPECT_EQ(g.in_degree(3), 2);
  EXPECT_TRUE(is_dag(g));
}

TEST(Trace, SquaringCreatesParallelEdges) {
  Tape tape;
  const Value x = tape.input("x");
  const Value sq = x * x;
  (void)sq;
  EXPECT_EQ(tape.graph().num_edges(), 2);
  EXPECT_EQ(tape.graph().in_degree(1), 2);
}

TEST(Trace, CompoundAssignmentChains) {
  Tape tape;
  Value acc = tape.input();
  acc += tape.input();
  acc *= tape.input();
  acc -= tape.input();
  acc /= tape.input();
  EXPECT_EQ(tape.graph().num_vertices(), 5 + 4);
  EXPECT_EQ(tape.graph().sinks().size(), 1u);
}

TEST(Trace, RejectsCrossTapeOperations) {
  Tape t1;
  Tape t2;
  const Value a = t1.input();
  const Value b = t2.input();
  EXPECT_THROW((void)(a + b), contract_error);
}

TEST(Trace, RejectsInvalidValuesAndEmptyOps) {
  Tape tape;
  Value uninitialized;
  const Value a = tape.input();
  EXPECT_THROW((void)(a + uninitialized), contract_error);
  EXPECT_THROW(tape.op({}), contract_error);
}

TEST(Trace, NaryOpRecordsAllOperands) {
  Tape tape;
  std::vector<Value> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(tape.input());
  const Value s = tape.op(xs, "sum5");
  EXPECT_EQ(tape.graph().in_degree(s.id()), 5);
  EXPECT_EQ(tape.graph().name(s.id()), "sum5");
}

TEST(Trace, InnerProductMatchesBuilder) {
  const int m = 4;
  Tape tape;
  std::vector<Value> a;
  std::vector<Value> b;
  for (int i = 0; i < m; ++i) a.push_back(tape.input());
  for (int i = 0; i < m; ++i) b.push_back(tape.input());
  std::vector<Value> products;
  for (int i = 0; i < m; ++i)
    products.push_back(a[static_cast<std::size_t>(i)] *
                       b[static_cast<std::size_t>(i)]);
  (void)reduce(products, ReduceShape::kChain);
  expect_same_graph(tape.graph(), builders::inner_product(m));
}

TEST(Trace, TracedFftMatchesButterflyBuilder) {
  const int levels = 4;
  const std::size_t width = 1u << levels;
  Tape tape;
  std::vector<Value> column;
  for (std::size_t r = 0; r < width; ++r) column.push_back(tape.input());
  for (int c = 1; c <= levels; ++c) {
    const std::size_t stride = 1u << (c - 1);
    std::vector<Value> next;
    next.reserve(width);
    for (std::size_t r = 0; r < width; ++r)
      next.push_back(tape.op({column[r], column[r ^ stride]}, "bf"));
    column = std::move(next);
  }
  expect_same_graph(tape.graph(), builders::fft(levels));
}

TEST(Trace, TracedMatmulMatchesBuilder) {
  const int n = 3;
  Tape tape;
  std::vector<Value> a;
  std::vector<Value> b;
  for (int i = 0; i < n * n; ++i) a.push_back(tape.input());
  for (int i = 0; i < n * n; ++i) b.push_back(tape.input());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::vector<Value> terms;
      for (int k = 0; k < n; ++k)
        terms.push_back(a[static_cast<std::size_t>(i * n + k)] *
                        b[static_cast<std::size_t>(k * n + j)]);
      (void)reduce(terms, ReduceShape::kNary, "dot");
    }
  }
  expect_same_graph(tape.graph(),
                    builders::naive_matmul(n, builders::Reduction::kNary));
}

TEST(Trace, ReduceShapes) {
  for (auto shape :
       {ReduceShape::kChain, ReduceShape::kBinaryTree, ReduceShape::kNary}) {
    Tape tape;
    std::vector<Value> xs;
    for (int i = 0; i < 6; ++i) xs.push_back(tape.input());
    const Value r = reduce(xs, shape);
    const Digraph& g = tape.graph();
    EXPECT_EQ(g.sinks().size(), 1u);
    EXPECT_EQ(g.sinks()[0], r.id());
    if (shape == ReduceShape::kNary) {
      EXPECT_EQ(g.num_vertices(), 7);
      EXPECT_EQ(g.in_degree(r.id()), 6);
    } else {
      EXPECT_EQ(g.num_vertices(), 6 + 5);
      EXPECT_EQ(g.max_in_degree(), 2);
    }
  }
}

TEST(Trace, ReleaseEmptiesTheTape) {
  Tape tape;
  (void)(tape.input() + tape.input());
  const Digraph g = tape.release();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(tape.num_operations(), 0);
}

}  // namespace
}  // namespace graphio::trace
