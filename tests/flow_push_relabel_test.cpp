#include <gtest/gtest.h>

#include "graphio/flow/convex_mincut.hpp"
#include "graphio/flow/dinic.hpp"
#include "graphio/flow/push_relabel.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio {
namespace {

TEST(PushRelabel, TextbookNetwork) {
  // CLRS figure: max flow 23.
  flow::PushRelabel net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(PushRelabel, DisconnectedSinkGivesZero) {
  flow::PushRelabel net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 0);
}

TEST(PushRelabel, ParallelEdgesAccumulate) {
  flow::PushRelabel net(2);
  net.add_edge(0, 1, 3);
  net.add_edge(0, 1, 4);
  EXPECT_EQ(net.max_flow(0, 1), 7);
}

TEST(PushRelabel, MinCutSeparatesSourceFromSink) {
  flow::PushRelabel net(4);
  net.add_edge(0, 1, 2);
  net.add_edge(0, 2, 2);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
  const std::vector<char> side = net.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

TEST(PushRelabel, RejectsBadArguments) {
  flow::PushRelabel net(3);
  EXPECT_THROW(net.add_edge(-1, 0, 1), contract_error);
  EXPECT_THROW(net.add_edge(0, 3, 1), contract_error);
  EXPECT_THROW(net.add_edge(0, 1, -1), contract_error);
  EXPECT_THROW(net.max_flow(1, 1), contract_error);
}

TEST(PushRelabel, AgreesWithDinicOnRandomNetworks) {
  Prng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n = 4 + static_cast<std::int64_t>(rng.below(24));
    flow::Dinic dinic(n);
    flow::PushRelabel pr(n);
    const std::int64_t edges = n * 3;
    for (std::int64_t e = 0; e < edges; ++e) {
      const auto u = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const auto cap = static_cast<std::int64_t>(rng.below(20));
      dinic.add_edge(u, v, cap);
      pr.add_edge(u, v, cap);
    }
    EXPECT_EQ(dinic.max_flow(0, n - 1), pr.max_flow(0, n - 1))
        << "trial " << trial << " n=" << n;
  }
}

TEST(PushRelabel, AgreesWithDinicOnUnitCapacityBipartite) {
  // The convex min-cut networks are unit-capacity vertex splits; this
  // mimics that regime with unit bipartite matchings.
  Prng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t half = 5 + static_cast<std::int64_t>(rng.below(12));
    const std::int64_t n = 2 * half + 2;
    const std::int64_t s = n - 2;
    const std::int64_t t = n - 1;
    flow::Dinic dinic(n);
    flow::PushRelabel pr(n);
    auto add = [&](std::int64_t u, std::int64_t v, std::int64_t c) {
      dinic.add_edge(u, v, c);
      pr.add_edge(u, v, c);
    };
    for (std::int64_t i = 0; i < half; ++i) {
      add(s, i, 1);
      add(half + i, t, 1);
      for (std::int64_t j = 0; j < half; ++j)
        if (rng.bernoulli(0.3)) add(i, half + j, 1);
    }
    EXPECT_EQ(dinic.max_flow(s, t), pr.max_flow(s, t)) << "trial " << trial;
  }
}

TEST(WavefrontMincut, EnginesAgreeAcrossFamilies) {
  for (const Digraph& g :
       {builders::fft(4), builders::bhk_hypercube(5),
        builders::naive_matmul(3), builders::stencil1d(6, 3),
        builders::strassen_matmul(4)}) {
    for (VertexId v = 0; v < g.num_vertices();
         v += std::max<VertexId>(1, g.num_vertices() / 17)) {
      EXPECT_EQ(flow::wavefront_mincut(g, v, flow::FlowEngine::kDinic),
                flow::wavefront_mincut(g, v, flow::FlowEngine::kPushRelabel))
          << "n=" << g.num_vertices() << " v=" << v;
    }
  }
}

TEST(WavefrontMincut, ConvexBoundMatchesAcrossEngines) {
  const Digraph g = builders::fft(4);
  flow::ConvexMinCutOptions dinic_options;
  dinic_options.engine = flow::FlowEngine::kDinic;
  flow::ConvexMinCutOptions pr_options;
  pr_options.engine = flow::FlowEngine::kPushRelabel;
  const auto a = flow::convex_mincut_bound(g, 2.0, dinic_options);
  const auto b = flow::convex_mincut_bound(g, 2.0, pr_options);
  EXPECT_DOUBLE_EQ(a.bound, b.bound);
  EXPECT_EQ(a.best_cut, b.best_cut);
}

TEST(PushRelabel, InfinityArcsSurviveStructuralNetworks) {
  // A reduction-style network: infinite structural arcs must never be cut.
  flow::PushRelabel net(5);
  net.add_edge(0, 1, flow::PushRelabel::kInfinity);
  net.add_edge(1, 2, 1);
  net.add_edge(2, 3, flow::PushRelabel::kInfinity);
  net.add_edge(3, 4, 1);
  net.add_edge(1, 4, 1);
  const std::int64_t flow_value = net.max_flow(0, 4);
  EXPECT_EQ(flow_value, 2);
  EXPECT_LT(flow_value, flow::PushRelabel::kInfinity);
}

}  // namespace
}  // namespace graphio
