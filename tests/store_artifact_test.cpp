// Tests for graphio::store::ArtifactStore — the typed content-addressed
// artifact store with an optional durable JSONL tier.
//
// The load-bearing guarantees certified here:
//   * every artifact kind round-trips through the disk tier bit-exactly
//     (doubles via to_chars/from_chars, so restart bounds are identical),
//   * torn/garbage log lines are counted and skipped, never served,
//   * erase() is memory-tier-only (the disk tier warms restarts),
//   * a cold-restarted StreamSession against a warm directory answers
//     every method with zero eigensolves/topo/min-cut/memsim computes and
//     bit-identical bounds (ISSUE satellite 3),
//   * a corrupted disk tier degrades to recompute, never to wrong results
//     (ISSUE satellite 4).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/stream/session.hpp"

namespace graphio::store {
namespace {

/// Temp directory that cleans up after itself.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

SpectralOptions lanczos_options() {
  SpectralOptions options;
  options.solver = "lanczos";
  options.eig_rel_tol = 1e-7;
  return options;
}

ComponentSolve sample_solve() {
  ComponentSolve solve;
  solve.vertices = 5;
  solve.edges = 7;
  solve.solver = la::SolverKind::kLanczos;
  solve.solver_ran = true;
  solve.converged = true;
  // Awkward binary64 values: round-tripping through shortest-exact text
  // must reproduce them bit-for-bit.
  solve.values = {0.0, 0.1234567890123456789, std::nextafter(2.0, 3.0),
                  1e-300};
  return solve;
}

std::int64_t line_count(const std::filesystem::path& log) {
  std::ifstream in(log);
  std::string line;
  std::int64_t n = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++n;
  return n;
}

// ----------------------------------------------------- disk round-trips

TEST(ArtifactStore, SpectrumRoundTripsBitExactAcrossRestart) {
  const TempDir dir("graphio_artifacts_spectrum");
  const SpectralOptions options = lanczos_options();
  const ComponentSolve solve = sample_solve();
  {
    ArtifactStore a(dir.path);
    a.store_spectrum(0xabcdefull, LaplacianKind::kOutDegreeNormalized, 4, options,
                     solve);
    EXPECT_EQ(a.stats().appended, 1);
  }
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 1);
  EXPECT_EQ(b.stats().corrupt, 0);
  const auto hit =
      b.lookup_spectrum(0xabcdefull, LaplacianKind::kOutDegreeNormalized, 4, options);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_FALSE(hit->solver_ran);
  EXPECT_EQ(hit->vertices, solve.vertices);
  EXPECT_EQ(hit->edges, solve.edges);
  EXPECT_TRUE(hit->converged);
  ASSERT_EQ(hit->values.size(), solve.values.size());
  for (std::size_t i = 0; i < solve.values.size(); ++i)
    EXPECT_EQ(hit->values[i], solve.values[i]);  // bit-exact, not near

  // Different options group or a different Laplacian kind: miss.
  SpectralOptions other = options;
  other.eig_rel_tol = 1e-6;
  EXPECT_FALSE(
      b.lookup_spectrum(0xabcdefull, LaplacianKind::kOutDegreeNormalized, 4, other));
  EXPECT_FALSE(
      b.lookup_spectrum(0xabcdefull, LaplacianKind::kPlain, 4, options));
}

TEST(ArtifactStore, NonConvergedSpectraStayMemoryOnly) {
  const TempDir dir("graphio_artifacts_partial");
  ComponentSolve partial = sample_solve();
  partial.converged = false;
  {
    ArtifactStore a(dir.path);
    a.store_spectrum(7, LaplacianKind::kOutDegreeNormalized, 4, lanczos_options(),
                     partial);
    // Served from memory within the process...
    EXPECT_TRUE(a.lookup_spectrum(7, LaplacianKind::kOutDegreeNormalized, 4,
                                  lanczos_options()));
    EXPECT_EQ(a.stats().appended, 0);
  }
  // ...but never across a restart: a degraded spectrum must not be
  // served forever.
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 0);
  EXPECT_FALSE(b.lookup_spectrum(7, LaplacianKind::kOutDegreeNormalized, 4,
                                 lanczos_options()));
}

TEST(ArtifactStore, TopoMincutMemsimRoundTripAcrossRestart) {
  const TempDir dir("graphio_artifacts_kinds");
  TopoOrderArtifact topo;
  topo.order = {0, 2, 1, 3};
  MincutSweepArtifact sweep;
  sweep.best_cut = 9;
  sweep.best_vertex = 2;
  sweep.vertices_processed = 4;
  MemsimRowArtifact row;
  row.reads = 12;
  row.writes = 34;
  {
    ArtifactStore a(dir.path);
    a.store_topo(11, topo);
    a.store_mincut(11, flow::FlowEngine::kDinic, sweep);
    a.store_memsim(11, /*memory=*/8, /*random_orders=*/3, row);
    EXPECT_EQ(a.stats().appended, 3);
  }
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 3);
  const auto t = b.lookup_topo(11);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->order, topo.order);
  const auto c = b.lookup_mincut(11, flow::FlowEngine::kDinic);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->best_cut, sweep.best_cut);
  EXPECT_EQ(c->best_vertex, sweep.best_vertex);
  EXPECT_EQ(c->vertices_processed, sweep.vertices_processed);
  EXPECT_TRUE(c->completed);
  const auto m = b.lookup_memsim(11, 8, 3);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->reads, row.reads);
  EXPECT_EQ(m->writes, row.writes);
  // Key dimensions are honored: other engine / memory / orders miss.
  EXPECT_FALSE(b.lookup_mincut(11, flow::FlowEngine::kPushRelabel));
  EXPECT_FALSE(b.lookup_memsim(11, 16, 3));
  EXPECT_FALSE(b.lookup_memsim(11, 8, 4));
}

TEST(ArtifactStore, IncompleteMincutSweepsStayMemoryOnly) {
  const TempDir dir("graphio_artifacts_mincut_partial");
  MincutSweepArtifact partial;
  partial.best_cut = 3;
  partial.completed = false;
  {
    ArtifactStore a(dir.path);
    a.store_mincut(5, flow::FlowEngine::kDinic, partial);
    EXPECT_EQ(a.stats().appended, 0);
  }
  ArtifactStore b(dir.path);
  EXPECT_FALSE(b.lookup_mincut(5, flow::FlowEngine::kDinic));
}

// ------------------------------------------------- corruption tolerance

TEST(ArtifactStore, SkipsCorruptLinesOnLoad) {
  const TempDir dir("graphio_artifacts_corrupt");
  {
    ArtifactStore a(dir.path);
    TopoOrderArtifact topo;
    topo.order = {0, 1};
    a.store_topo(1, topo);
    a.store_memsim(1, 4, 0, MemsimRowArtifact{3, 4});
  }
  {
    // Torn write, plain garbage, wrong JSON shape, unknown kind.
    std::ofstream log(dir.path / "artifacts.jsonl", std::ios::app);
    log << "{\"kind\":\"topo\",\"fp\":\"00\n";
    log << "not json at all\n";
    log << "[1, 2, 3]\n";
    log << "{\"kind\":\"hologram\",\"fp\":\"0000000000000001\"}\n";
  }
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 2);
  EXPECT_EQ(b.stats().corrupt, 4);
  // The valid entries still serve — corruption never poisons results.
  const auto t = b.lookup_topo(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->order, (std::vector<VertexId>{0, 1}));
  const auto m = b.lookup_memsim(1, 4, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->reads, 3);
}

TEST(ArtifactStoreStream, CorruptedLogNeverPoisonsBounds) {
  const TempDir dir("graphio_artifacts_poison");
  {
    // Seed the log with nothing but garbage before any store exists.
    std::filesystem::create_directories(dir.path);
    std::ofstream log(dir.path / "artifacts.jsonl");
    log << "}}}}{{\n\x01\x02\x03\n{\"kind\":\"spectrum\"\n";
  }
  engine::BoundRequest req;
  req.memories = {4.0};
  req.methods = {"spectral", "mincut", "partition-dp"};

  stream::StreamSession poisoned(
      "poisoned", std::make_shared<ArtifactStore>(dir.path));
  poisoned.load("multi:3:fft:3");
  const engine::BoundReport got = poisoned.evaluate(req);
  EXPECT_EQ(poisoned.engine().artifact_store()->stats().corrupt, 3);

  stream::StreamSession clean("clean");
  clean.load("multi:3:fft:3");
  const engine::BoundReport want = clean.evaluate(req);

  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (std::size_t i = 0; i < got.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].method, want.rows[i].method);
    EXPECT_EQ(got.rows[i].applicable, want.rows[i].applicable);
    EXPECT_EQ(got.rows[i].value, want.rows[i].value);
  }
}

// ------------------------------------------------ erase/compact/stats

TEST(ArtifactStore, EraseDropsMemoryTierOnly) {
  const TempDir dir("graphio_artifacts_erase");
  {
    ArtifactStore a(dir.path);
    a.store_spectrum(9, LaplacianKind::kOutDegreeNormalized, 2, lanczos_options(),
                     sample_solve());
    a.store_topo(9, TopoOrderArtifact{{0}});
    a.store_mincut(9, flow::FlowEngine::kDinic, MincutSweepArtifact{1, 0, 1});
    a.store_memsim(9, 4, 0, MemsimRowArtifact{1, 1});
    a.store_topo(10, TopoOrderArtifact{{0}});  // unrelated fingerprint
    EXPECT_EQ(a.stats().entries(), 5);
    EXPECT_EQ(a.erase(9), 4);  // all kinds, one call
    EXPECT_EQ(a.stats().entries(), 1);
    EXPECT_EQ(a.stats().evicted(), 4);
    EXPECT_FALSE(a.lookup_topo(9));
    EXPECT_TRUE(a.lookup_topo(10));
    EXPECT_EQ(a.erase(9), 0);  // idempotent
  }
  // The disk tier is append-only: a restart resurrects everything.
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 5);
  EXPECT_TRUE(b.lookup_topo(9));
  EXPECT_TRUE(b.lookup_spectrum(9, LaplacianKind::kOutDegreeNormalized, 2,
                                lanczos_options()));
}

TEST(ArtifactStore, CompactRewritesLogToLiveEntries) {
  const TempDir dir("graphio_artifacts_compact");
  ArtifactStore a(dir.path);
  // Erase-then-restore cycles accumulate duplicate log lines.
  for (int round = 0; round < 3; ++round) {
    a.store_topo(1, TopoOrderArtifact{{0, 1}});
    a.store_memsim(1, 4, 0, MemsimRowArtifact{2, 2});
    a.erase(1);
  }
  a.store_topo(1, TopoOrderArtifact{{0, 1}});
  EXPECT_EQ(line_count(dir.path / "artifacts.jsonl"), 7);
  EXPECT_EQ(a.compact(), 1);  // only the topo order is live
  EXPECT_EQ(line_count(dir.path / "artifacts.jsonl"), 1);
  // The compacted log replays cleanly.
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 1);
  EXPECT_TRUE(b.lookup_topo(1));
}

TEST(ArtifactStore, PerKindStatsCountHitsAndMisses) {
  ArtifactStore store;  // memory-only
  EXPECT_FALSE(store.durable());
  EXPECT_FALSE(store.lookup_topo(1));
  store.store_topo(1, TopoOrderArtifact{{0}});
  EXPECT_TRUE(store.lookup_topo(1));
  EXPECT_FALSE(store.lookup_mincut(1, flow::FlowEngine::kDinic));
  EXPECT_FALSE(store.lookup_memsim(1, 4, 0));
  const ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.topo.hits, 1);
  EXPECT_EQ(s.topo.misses, 1);
  EXPECT_EQ(s.topo.entries, 1);
  EXPECT_EQ(s.mincut.misses, 1);
  EXPECT_EQ(s.memsim.misses, 1);
  EXPECT_EQ(s.spectrum.hits, 0);
  EXPECT_EQ(s.hits(), 1);
  EXPECT_EQ(s.misses(), 3);
  EXPECT_EQ(s.entries(), 1);
}

TEST(ArtifactStore, CompactRequiresDurableTier) {
  ArtifactStore store;
  EXPECT_THROW(store.compact(), contract_error);
}

// ------------------------------------------- cold-restart warm path

/// ISSUE satellite 3: kill the process (destroy the session), start a new
/// one against the same --store-artifacts directory, re-query every
/// method: zero eigensolves, zero topo/min-cut/memsim computes, and
/// bit-identical bounds.
TEST(ArtifactStoreStream, ColdRestartWarmPathAnswersAllMethods) {
  const TempDir dir("graphio_artifacts_restart");
  engine::BoundRequest req;
  req.memories = {4.0, 8.0};
  req.methods = {"all"};
  req.spectral.adaptive = false;
  req.spectral.max_eigenvalues = 6;

  engine::BoundReport cold;
  {
    stream::StreamSession session(
        "restart", std::make_shared<ArtifactStore>(dir.path));
    session.load("multi:3:fft:3");
    cold = session.evaluate(req);
    EXPECT_GT(cold.cache.eigensolves, 0);
    EXPECT_GT(cold.cache.topo_computes, 0);
    EXPECT_GT(cold.cache.mincut_sweeps, 0);
    EXPECT_GT(cold.cache.memsim_runs, 0);
  }  // session gone; only the JSONL log survives

  stream::StreamSession session(
      "restart", std::make_shared<ArtifactStore>(dir.path));
  session.load("multi:3:fft:3");
  const engine::BoundReport warm = session.evaluate(req);

  // The headline guarantee: the disk tier answers everything.
  EXPECT_EQ(warm.cache.eigensolves, 0);
  EXPECT_EQ(warm.cache.topo_computes, 0);
  EXPECT_EQ(warm.cache.mincut_sweeps, 0);
  EXPECT_EQ(warm.cache.memsim_runs, 0);

  // Bit-identical bounds, row by row (doubles compared with ==, not near:
  // the JSONL tier serializes binary64 exactly).
  ASSERT_EQ(warm.rows.size(), cold.rows.size());
  for (std::size_t i = 0; i < warm.rows.size(); ++i) {
    EXPECT_EQ(warm.rows[i].method, cold.rows[i].method);
    EXPECT_EQ(warm.rows[i].memory, cold.rows[i].memory);
    EXPECT_EQ(warm.rows[i].applicable, cold.rows[i].applicable);
    if (warm.rows[i].applicable) {
      EXPECT_EQ(warm.rows[i].value, cold.rows[i].value)
          << "method " << warm.rows[i].method << " at M="
          << warm.rows[i].memory;
      EXPECT_EQ(warm.rows[i].converged, cold.rows[i].converged);
    }
  }
}

// ------------------------------------------------- eigenbasis LRU tier

/// A basis of `cols` columns × `n` rows whose bytes() is deterministic,
/// tagged so lookups can tell bases apart.
Eigenbasis sample_basis(std::size_t n, std::size_t cols, int tag) {
  Eigenbasis basis;
  for (std::size_t j = 0; j < cols; ++j)
    basis.vectors.emplace_back(n, static_cast<double>(tag));
  basis.source_iterations = tag;
  return basis;
}

TEST(ArtifactStore, EigenbasisTierOffByDefault) {
  ArtifactStore store;
  EXPECT_EQ(store.eigenbasis_budget(), 0);
  store.store_eigenbasis(1, LaplacianKind::kPlain, sample_basis(8, 2, 1));
  EXPECT_FALSE(store.lookup_eigenbasis(1, LaplacianKind::kPlain));
  EXPECT_EQ(store.stats().eigenbasis.entries, 0);
  EXPECT_EQ(store.eigenbasis_bytes(), 0);
}

TEST(ArtifactStore, EigenbasisLruEvictsLeastRecentlyUsedWithinBudget) {
  ArtifactStore store;
  const auto one = static_cast<std::int64_t>(sample_basis(64, 4, 0).bytes());
  store.set_eigenbasis_budget(2 * one);  // room for exactly two bases

  store.store_eigenbasis(1, LaplacianKind::kPlain, sample_basis(64, 4, 1));
  store.store_eigenbasis(2, LaplacianKind::kPlain, sample_basis(64, 4, 2));
  EXPECT_EQ(store.stats().eigenbasis.entries, 2);
  EXPECT_LE(store.eigenbasis_bytes(), 2 * one);

  // Touch 1 so 2 becomes the LRU victim when 3 arrives.
  EXPECT_TRUE(store.lookup_eigenbasis(1, LaplacianKind::kPlain));
  store.store_eigenbasis(3, LaplacianKind::kPlain, sample_basis(64, 4, 3));
  EXPECT_EQ(store.stats().eigenbasis.entries, 2);
  EXPECT_EQ(store.stats().eigenbasis.evicted, 1);
  EXPECT_TRUE(store.lookup_eigenbasis(1, LaplacianKind::kPlain));
  EXPECT_FALSE(store.lookup_eigenbasis(2, LaplacianKind::kPlain));
  EXPECT_TRUE(store.lookup_eigenbasis(3, LaplacianKind::kPlain));

  // Shrinking the budget to zero drops everything resident.
  store.set_eigenbasis_budget(0);
  EXPECT_EQ(store.stats().eigenbasis.entries, 0);
  EXPECT_EQ(store.eigenbasis_bytes(), 0);
  EXPECT_FALSE(store.lookup_eigenbasis(1, LaplacianKind::kPlain));
}

TEST(ArtifactStore, EigenbasisAdoptRekeysAndEraseDrops) {
  ArtifactStore store;
  store.set_eigenbasis_budget(1 << 20);
  store.store_eigenbasis(10, LaplacianKind::kPlain, sample_basis(8, 2, 1));
  store.store_eigenbasis(10, LaplacianKind::kOutDegreeNormalized,
                         sample_basis(8, 2, 2));

  // Adoption moves every kind's basis to the successor fingerprint and
  // records the predecessor; the old key is gone.
  store.adopt_eigenbasis(10, 11);
  EXPECT_FALSE(store.lookup_eigenbasis(10, LaplacianKind::kPlain));
  const auto plain = store.lookup_eigenbasis(11, LaplacianKind::kPlain);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->predecessor, 10u);
  EXPECT_EQ(plain->source_iterations, 1);
  const auto norm =
      store.lookup_eigenbasis(11, LaplacianKind::kOutDegreeNormalized);
  ASSERT_TRUE(norm.has_value());
  EXPECT_EQ(norm->source_iterations, 2);
  EXPECT_EQ(store.stats().eigenbasis.entries, 2);

  // A successor that already retained its own basis keeps it.
  store.store_eigenbasis(20, LaplacianKind::kPlain, sample_basis(8, 2, 5));
  store.store_eigenbasis(21, LaplacianKind::kPlain, sample_basis(8, 2, 6));
  store.adopt_eigenbasis(20, 21);
  const auto kept = store.lookup_eigenbasis(21, LaplacianKind::kPlain);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->source_iterations, 6);

  // erase() takes bases with the rest of the fingerprint's entries.
  const std::int64_t bytes_before = store.eigenbasis_bytes();
  EXPECT_GT(store.erase(11), 0);
  EXPECT_FALSE(store.lookup_eigenbasis(11, LaplacianKind::kPlain));
  EXPECT_LT(store.eigenbasis_bytes(), bytes_before);
  EXPECT_GT(store.stats().eigenbasis.evicted, 0);
}

// ------------------------------------------------------- partition rows

TEST(ArtifactStore, PartitionRowRoundTripsBitExactAcrossRestart) {
  const TempDir dir("graphio_artifacts_partition");
  PartitionRowArtifact row;
  row.objective = -0.1234567890123456789;  // awkward binary64, negative
  row.segments = 7;
  const double memory = 3.0000000000000004;  // must key exactly
  {
    ArtifactStore a(dir.path);
    a.store_partition(42, memory, row);
    EXPECT_EQ(a.stats().appended, 1);
    const auto hit = a.lookup_partition(42, memory);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->objective, row.objective);
  }
  ArtifactStore b(dir.path);
  EXPECT_EQ(b.stats().loaded, 1);
  const auto hit = b.lookup_partition(42, memory);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->objective, row.objective);  // bit-exact
  EXPECT_EQ(hit->segments, row.segments);
  // A nearby-but-different memory value is a different key.
  EXPECT_FALSE(b.lookup_partition(42, 3.0));
  EXPECT_EQ(b.stats().partition.hits, 1);
  EXPECT_EQ(b.stats().partition.misses, 1);

  // erase() is memory-tier-only for partition rows too.
  EXPECT_GT(b.erase(42), 0);
  EXPECT_FALSE(b.lookup_partition(42, memory));
  ArtifactStore c(dir.path);
  EXPECT_TRUE(c.lookup_partition(42, memory));
}

}  // namespace
}  // namespace graphio::store
