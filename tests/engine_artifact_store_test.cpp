#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "graphio/engine/artifact_cache.hpp"
#include "graphio/engine/engine.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::engine {
namespace {

constexpr LaplacianKind kNorm = LaplacianKind::kOutDegreeNormalized;

TEST(ArtifactStoreEngine, SharedComponentAcrossTwoSpecsEigensolvesOnce) {
  // The ISSUE 3 cache acceptance: a component shared by two specs of the
  // same Engine is eigensolved exactly once.
  Engine engine;
  BoundRequest request;
  request.spec = "fft:4";
  request.memories = {4.0, 8.0};
  request.methods = {"spectral"};
  const BoundReport first = engine.evaluate(request);
  EXPECT_EQ(first.cache.eigensolves, 1);
  EXPECT_EQ(first.cache.component_hits, 0);

  // Every component of the disjoint union is content-equal to fft:4.
  request.spec = "multi:3:fft:4";
  const BoundReport second = engine.evaluate(request);
  EXPECT_EQ(second.cache.eigensolves, 0);
  EXPECT_EQ(second.cache.component_hits, 3);
  EXPECT_EQ(engine.artifact_store()->stats().spectrum.entries, 1);
}

TEST(ArtifactStoreEngine, IdenticalComponentsWithinOneGraphDedupe) {
  // Even a standalone ArtifactCache (private component cache) solves each
  // *distinct* component once: 5 copies -> 1 eigensolve + 4 hits — and on
  // the fingerprint-first path only the one miss ever materializes.
  ArtifactCache cache(GraphSpec::parse("multi:5:inner:3").build());
  const auto& artifact = cache.spectrum(kNorm, 20);
  EXPECT_EQ(artifact.components, 5);
  EXPECT_EQ(artifact.eigensolves, 1);
  EXPECT_EQ(artifact.component_hits, 4);
  EXPECT_EQ(artifact.subgraph_extractions, 1);
  EXPECT_EQ(artifact.fingerprint_computes, 5);
  EXPECT_EQ(cache.stats().eigensolves, 1);
  EXPECT_EQ(cache.stats().component_hits, 4);
  EXPECT_EQ(cache.stats().subgraph_extractions, 1);
  EXPECT_EQ(cache.stats().fingerprint_computes, 5);
}

TEST(ArtifactStoreEngine, FingerprintsComputeOncePerGraphAcrossKinds) {
  // The decomposition and its fingerprints belong to the graph, not to
  // one spectrum: a second Laplacian kind re-solves (different matrix)
  // but never re-hashes or re-decomposes.
  ArtifactCache cache(GraphSpec::parse("multi:5:inner:3").build());
  cache.spectrum(kNorm, 20);
  EXPECT_EQ(cache.stats().fingerprint_computes, 5);
  const auto& plain = cache.spectrum(LaplacianKind::kPlain, 20);
  EXPECT_EQ(plain.fingerprint_computes, 0);
  EXPECT_EQ(plain.subgraph_extractions, 1);  // the new kind's one miss
  EXPECT_EQ(cache.stats().fingerprint_computes, 5);
  ASSERT_EQ(plain.component_fingerprints.size(), 5u);
  for (std::uint64_t fp : plain.component_fingerprints) EXPECT_NE(fp, 0u);
}

TEST(ArtifactStoreEngine, CleanComponentsNeverMaterializeAcrossSpecs) {
  // The zero-copy headline: once fft:4 is cached, every fft:4-shaped
  // component of any later spec resolves by fingerprint alone — no
  // subgraph is ever built for it.
  Engine engine;
  BoundRequest request;
  request.spec = "fft:4";
  request.memories = {8.0};
  request.methods = {"spectral"};
  const BoundReport first = engine.evaluate(request);
  // Connected graph: solved in place, so even the miss never extracted.
  EXPECT_EQ(first.cache.subgraph_extractions, 0);
  EXPECT_EQ(first.cache.fingerprint_computes, 1);

  request.spec = "multi:3:fft:4";
  const BoundReport second = engine.evaluate(request);
  EXPECT_EQ(second.cache.eigensolves, 0);
  EXPECT_EQ(second.cache.component_hits, 3);
  EXPECT_EQ(second.cache.subgraph_extractions, 0);
  EXPECT_EQ(second.cache.fingerprint_computes, 3);
}

TEST(ArtifactStoreEngine, SeededCacheSkipsDecompositionAndHashing) {
  // A ComponentSeed (what the stream session hands install_graph) makes
  // the first query fingerprint-free; only cache misses extract.
  const Digraph g = GraphSpec::parse("multi:2:fft:3").build();
  const auto wc = weakly_connected_components(g);
  ASSERT_EQ(wc.count, 2);
  ComponentSeed seed;
  for (int c = 0; c < wc.count; ++c) {
    ComponentSeed::Component comp;
    comp.vertices = wc.vertices[static_cast<std::size_t>(c)];
    comp.edges = wc.edges_in(g, c);
    comp.fingerprint = graph_fingerprint(wc.subgraph(g, c));
    seed.components.push_back(std::move(comp));
  }
  ArtifactCache cache(Digraph(g), nullptr, std::move(seed));
  const auto& artifact = cache.spectrum(kNorm, 10);
  EXPECT_EQ(artifact.components, 2);
  EXPECT_EQ(artifact.fingerprint_computes, 0);
  EXPECT_EQ(artifact.subgraph_extractions, 1);  // equal copies: one miss
  EXPECT_EQ(artifact.eigensolves, 1);
  EXPECT_EQ(artifact.component_hits, 1);

  // Parity with an unseeded cache on the same graph.
  ArtifactCache plain{Digraph(g)};
  EXPECT_EQ(plain.spectrum(kNorm, 10).values, artifact.values);
}

TEST(ArtifactStoreEngine, MalformedSeedsAreRejected) {
  const Digraph g = GraphSpec::parse("multi:2:fft:3").build();
  const auto wc = weakly_connected_components(g);
  const auto seed_for = [&](bool drop_vertex, bool wrong_edges) {
    ComponentSeed seed;
    for (int c = 0; c < wc.count; ++c) {
      ComponentSeed::Component comp;
      comp.vertices = wc.vertices[static_cast<std::size_t>(c)];
      comp.edges = wc.edges_in(g, c) + (wrong_edges ? 1 : 0);
      comp.fingerprint = 1;
      seed.components.push_back(std::move(comp));
    }
    if (drop_vertex) seed.components[0].vertices.pop_back();
    return seed;
  };
  {
    ArtifactCache cache(Digraph(g), nullptr, seed_for(true, false));
    EXPECT_THROW(cache.spectrum(kNorm, 4), contract_error);
  }
  {
    ArtifactCache cache(Digraph(g), nullptr, seed_for(false, true));
    EXPECT_THROW(cache.spectrum(kNorm, 4), contract_error);
  }
}

TEST(ArtifactStoreEngine, TwoArtifactCachesShareThroughOneComponentCache) {
  const auto shared = std::make_shared<store::ArtifactStore>();
  ArtifactCache a(builders::fft(4), shared);
  ArtifactCache b(GraphSpec::parse("multi:2:fft:4").build(), shared);

  a.spectrum(kNorm, 16);
  EXPECT_EQ(a.stats().eigensolves, 1);
  b.spectrum(kNorm, 16);
  EXPECT_EQ(b.stats().eigensolves, 0);
  EXPECT_EQ(b.stats().component_hits, 2);
  // Same values: merging two copies of a spectrum and truncating to the
  // request reproduces the single copy's prefix (eigenvalue union).
  EXPECT_EQ(shared->stats().spectrum.entries, 1);
  EXPECT_GE(shared->stats().spectrum.hits, 2);
}

TEST(ArtifactStoreEngine, DifferentKindsAndOptionsAreDistinctEntries) {
  const auto shared = std::make_shared<store::ArtifactStore>();
  ArtifactCache cache(builders::fft(4), shared);
  cache.spectrum(kNorm, 8);
  cache.spectrum(LaplacianKind::kPlain, 8);
  EXPECT_EQ(shared->stats().spectrum.entries, 2);
  EXPECT_EQ(cache.stats().eigensolves, 2);

  SpectralOptions lanczos;
  lanczos.backend = EigenBackend::kLanczos;
  cache.spectrum(kNorm, 8, lanczos);  // changed options: recompute
  EXPECT_EQ(cache.stats().eigensolves, 3);
}

TEST(ArtifactStoreEngine, LargerRequestRecomputesSmallerHits) {
  store::ArtifactStore cache;
  const SpectralOptions options;
  ComponentSolve solve;
  solve.vertices = 4;
  solve.values = {0.0, 1.0};
  cache.store_spectrum(42, kNorm, 2, options, solve);
  EXPECT_TRUE(cache.lookup_spectrum(42, kNorm, 2, options).has_value());
  EXPECT_TRUE(cache.lookup_spectrum(42, kNorm, 1, options).has_value());
  EXPECT_FALSE(cache.lookup_spectrum(42, kNorm, 3, options).has_value());
  EXPECT_FALSE(cache.lookup_spectrum(7, kNorm, 2, options).has_value());

  const auto served = cache.lookup_spectrum(42, kNorm, 2, options);
  ASSERT_TRUE(served.has_value());
  EXPECT_TRUE(served->from_cache);
  EXPECT_FALSE(served->solver_ran);

  // A smaller request is served truncated — exactly what a fresh solve
  // for that count would return, so results cannot depend on which
  // request populated the cache first.
  const auto truncated = cache.lookup_spectrum(42, kNorm, 1, options);
  ASSERT_TRUE(truncated.has_value());
  ASSERT_EQ(truncated->values.size(), 1u);
  EXPECT_EQ(truncated->values[0], 0.0);
}

TEST(ArtifactStoreEngine, MixedSolverOptionsCoexistWithoutThrashing) {
  store::ArtifactStore cache;
  SpectralOptions auto_policy;
  SpectralOptions dense;
  dense.solver = "dense";
  ComponentSolve solve;
  solve.values = {0.0, 1.0};
  cache.store_spectrum(9, kNorm, 2, auto_policy, solve);
  cache.store_spectrum(9, kNorm, 2, dense, solve);
  // Both configurations stay resident — a batch alternating solvers must
  // not evict the other group's entry on every store.
  EXPECT_TRUE(cache.lookup_spectrum(9, kNorm, 2, auto_policy).has_value());
  EXPECT_TRUE(cache.lookup_spectrum(9, kNorm, 2, dense).has_value());
  EXPECT_EQ(cache.stats().spectrum.entries, 2);
}

TEST(ArtifactStoreEngine, StoreKeepsTheLargerSolve) {
  store::ArtifactStore cache;
  const SpectralOptions options;
  ComponentSolve big;
  big.values = {0.0, 1.0, 2.0, 3.0};
  cache.store_spectrum(1, kNorm, 4, options, big);
  ComponentSolve small;
  small.values = {0.0, 1.0};
  cache.store_spectrum(1, kNorm, 2, options, small);  // must not shrink
  const auto served = cache.lookup_spectrum(1, kNorm, 4, options);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->values.size(), 4u);
}

TEST(ArtifactStoreEngine, EngineClearDropsComponentSpectra) {
  Engine engine;
  BoundRequest request;
  request.spec = "fft:4";
  request.memories = {4.0};
  request.methods = {"spectral"};
  engine.evaluate(request);
  EXPECT_EQ(engine.artifact_store()->stats().spectrum.entries, 1);
  engine.clear();
  EXPECT_EQ(engine.artifact_store()->stats().spectrum.entries, 0);
  const BoundReport again = engine.evaluate(request);
  EXPECT_EQ(again.cache.eigensolves, 1);  // really recomputed
}

TEST(ArtifactStoreEngine, BatchFanOutSharesComponents) {
  // The parallel batch path uses private ArtifactCaches but the shared
  // component cache: N requests over the same graph still eigensolve each
  // kind once.
  Engine engine;
  std::vector<BoundRequest> requests(4);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].spec = "fft:4";
    requests[i].memories = {static_cast<double>(4 << i)};
    requests[i].methods = {"spectral"};
  }
  engine.evaluate_batch(requests, /*parallel=*/true);
  const store::ArtifactStore::Stats stats = engine.artifact_store()->stats();
  // Workers race, so up to hardware-parallelism requests may miss before
  // the first store lands; the store still converges to one entry and
  // every lookup is accounted for.
  EXPECT_EQ(stats.spectrum.entries, 1);
  EXPECT_EQ(stats.spectrum.hits + stats.spectrum.misses, 4);
  // A serial re-evaluation of the same spec is a pure component hit.
  BoundRequest again;
  again.spec = "fft:4";
  again.memories = {64.0};
  again.methods = {"spectral"};
  const BoundReport report = engine.evaluate(again);
  EXPECT_EQ(report.cache.eigensolves, 0);
  EXPECT_EQ(report.cache.component_hits, 1);
}

}  // namespace
}  // namespace graphio::engine
