#include <gtest/gtest.h>

#include <algorithm>

#include "graphio/core/partition.hpp"
#include "graphio/core/partition_dp.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio {
namespace {

TEST(OptimalPartition, HandComputedPath) {
  // Path 0→1→2→3 with M = 0: every vertex with children is a write and
  // every producer left of a segment is a read. One segment per vertex:
  // segment {v} has R = (v>0 ? 1 : 0), W = (v<3 ? 1 : 0) → total 6.
  const Digraph g = builders::path(4);
  const auto order = topological_order(g);
  const OptimalPartitionResult r = optimal_lemma1_bound(g, *order, 0.0);
  EXPECT_DOUBLE_EQ(r.bound, 6.0);
}

TEST(OptimalPartition, DominatesEveryBalancedPartition) {
  // The DP maximizes over ALL contiguous partitions; balanced k-splits
  // are feasible points, so the DP value must dominate each of them.
  Prng rng(77);
  for (const Digraph& g :
       {builders::fft(4), builders::bhk_hypercube(5),
        builders::erdos_renyi_dag(60, 0.12, 9)}) {
    const std::vector<VertexId> order = random_topological_order(g, rng);
    const double memory = 3.0;
    const OptimalPartitionResult opt =
        optimal_lemma1_bound(g, order, memory);
    for (std::int64_t k = 1; k <= std::min<std::int64_t>(
                                 g.num_vertices(), 12); ++k) {
      const double balanced =
          static_cast<double>(lemma1_reads_writes(g, order, k)) -
          2.0 * static_cast<double>(k) * memory;
      EXPECT_GE(opt.bound + 1e-9, std::max(0.0, balanced))
          << "n=" << g.num_vertices() << " k=" << k;
    }
  }
}

TEST(OptimalPartition, NeverExceedsSimulatedIoOfTheSameOrder) {
  // Lemma 1 at the optimal partition lower-bounds J(X); the simulator
  // upper-bounds it — per-order sandwich.
  Prng rng(123);
  for (const Digraph& g :
       {builders::fft(4), builders::naive_matmul(3),
        builders::stencil1d(8, 4), builders::erdos_renyi_dag(50, 0.15, 4)}) {
    const std::int64_t memory = std::max<std::int64_t>(4, g.max_in_degree());
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<VertexId> order = random_topological_order(g, rng);
      const OptimalPartitionResult lower =
          optimal_lemma1_bound(g, order, static_cast<double>(memory));
      const std::int64_t upper = sim::simulate_io(g, order, memory).total();
      EXPECT_LE(lower.bound, static_cast<double>(upper) + 1e-9)
          << "n=" << g.num_vertices() << " trial=" << trial;
    }
  }
}

TEST(OptimalPartition, ExactOptimumRespectsTheCertificateOnTinyGraphs) {
  // J*(G) = min_X J(X) ≥ min_X optimal_lemma1(X); check against a few
  // explicitly enumerated orders on an exactly solvable graph.
  const Digraph g = builders::bhk_hypercube(4);
  const std::int64_t memory = 4;
  const auto truth = exact::exact_optimal_io(g, memory);
  ASSERT_TRUE(truth.complete);
  Prng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const std::vector<VertexId> order = random_topological_order(g, rng);
    const OptimalPartitionResult r =
        optimal_lemma1_bound(g, order, static_cast<double>(memory));
    // J(X) ≥ J* and J(X) ≥ r.bound; nothing forces r.bound ≤ J*, but the
    // simulated I/O of this very order must dominate the certificate.
    EXPECT_LE(r.bound,
              static_cast<double>(sim::simulate_io(g, order, memory).total()));
  }
}

TEST(OptimalPartition, BreakpointsDescribeTheReportedPartition) {
  const Digraph g = builders::fft(4);
  const auto order = topological_order(g);
  const OptimalPartitionResult r = optimal_lemma1_bound(g, *order, 1.0);
  ASSERT_GT(r.bound, 0.0);
  ASSERT_EQ(static_cast<std::int64_t>(r.breakpoints.size()), r.segments);
  EXPECT_EQ(r.breakpoints.front(), 0);
  EXPECT_TRUE(std::is_sorted(r.breakpoints.begin(), r.breakpoints.end()));
  EXPECT_LT(r.breakpoints.back(), g.num_vertices());
}

TEST(OptimalPartition, LargeMemoryDrivesTheBoundToZero) {
  const Digraph g = builders::fft(3);
  const auto order = topological_order(g);
  const OptimalPartitionResult r = optimal_lemma1_bound(g, *order, 1e6);
  EXPECT_DOUBLE_EQ(r.bound, 0.0);
  EXPECT_EQ(r.segments, 0);
}

TEST(OptimalPartition, RejectsNonTopologicalOrders) {
  const Digraph g = builders::path(3);
  EXPECT_THROW(optimal_lemma1_bound(g, {2, 1, 0}, 1.0), contract_error);
}

TEST(OptimalPartition, EmptyGraph) {
  const Digraph g(0);
  EXPECT_DOUBLE_EQ(optimal_lemma1_bound(g, {}, 1.0).bound, 0.0);
}

}  // namespace
}  // namespace graphio
