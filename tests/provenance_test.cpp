#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/audit/provenance.hpp"
#include "graphio/engine/engine.hpp"
#include "graphio/io/json.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/stream/mutation.hpp"
#include "graphio/stream/session.hpp"
#include "graphio/telemetry/metrics.hpp"

namespace graphio::audit {
namespace {

/// Temp directory that cleans up after itself.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

ProvenanceRecord sample_record() {
  ProvenanceRecord record;
  record.kind = "bound";
  record.graph = "fft:4";
  record.fingerprint = 0x7af99b8ffab0d233ULL;
  record.request = R"({"spec": "fft:4", "memories": [8]})";
  record.registry.warm_hits = 1;
  record.registry.iterations = 1;

  SpectrumProvenance spectrum;
  spectrum.laplacian = "norm";
  spectrum.requested = 16;
  spectrum.computed = true;
  spectrum.merged_values = 16;
  ComponentProvenance c;
  c.fingerprint = 0x1234abcdULL;
  c.fingerprinted = true;
  c.vertices = 32;
  c.edges = 48;
  c.tier = "refresh";
  c.solver = "lanczos";
  c.source = "computed";
  c.iterations = 1;
  c.residual = 3.5e-4;
  c.certified_floor = 1.25e-2;
  c.warm_predecessor = 0x9999ULL;
  spectrum.components.push_back(c);
  record.spectra.push_back(spectrum);

  RowLineage row;
  row.method = "spectral";
  row.memory = 8;
  row.bound = 12.5;
  row.best_k = 3;
  record.rows.push_back(row);
  return record;
}

TEST(ProvenanceRecordTest, JsonRoundTripIsByteStable) {
  const ProvenanceRecord record = sample_record();
  const std::string json = record.to_json();
  const ProvenanceRecord reparsed =
      parse_record(io::JsonValue::parse(json));
  // Byte-identical re-serialization is the audit contract: two runs that
  // did the same work must produce diffable records.
  EXPECT_EQ(reparsed.to_json(), json);
  EXPECT_EQ(reparsed.fingerprint, record.fingerprint);
  EXPECT_EQ(reparsed.request, record.request);
  ASSERT_EQ(reparsed.spectra.size(), 1u);
  ASSERT_EQ(reparsed.spectra[0].components.size(), 1u);
  EXPECT_EQ(reparsed.spectra[0].components[0].tier, "refresh");
  EXPECT_EQ(reparsed.spectra[0].components[0].warm_predecessor, 0x9999ULL);
  EXPECT_TRUE(check_record(reparsed).empty());
}

TEST(ProvenanceRecordTest, CheckRecordFlagsSeededCorruption) {
  EXPECT_TRUE(check_record(sample_record()).empty());

  // A refresh tier certifies exactly one Rayleigh–Ritz pass over a
  // retained predecessor basis; breaking either invariant must surface.
  ProvenanceRecord bad_pred = sample_record();
  bad_pred.spectra[0].components[0].warm_predecessor = 0;
  EXPECT_FALSE(check_record(bad_pred).empty());

  ProvenanceRecord bad_tier = sample_record();
  bad_tier.spectra[0].components[0].tier = "lukewarm";
  EXPECT_FALSE(check_record(bad_tier).empty());

  ProvenanceRecord bad_floor = sample_record();
  bad_floor.spectra[0].components[0].certified_floor = -1e-9;
  EXPECT_FALSE(check_record(bad_floor).empty());

  // Exclusive registry deltas must reconcile with the claimed tiers.
  ProvenanceRecord bad_delta = sample_record();
  bad_delta.registry.warm_hits = 2;
  EXPECT_FALSE(check_record(bad_delta).empty());

  // ...but a non-exclusive record (parallel lanes interleaved the
  // process-wide counters) skips reconciliation by design.
  bad_delta.registry.exclusive = false;
  EXPECT_TRUE(check_record(bad_delta).empty());
}

TEST(ProvenanceLogTest, AppendsReplayableJsonl) {
  TempDir dir("graphio_provenance_log_test");
  {
    ProvenanceLog log(dir.path);
    log.append(sample_record());
    log.append(sample_record());
    EXPECT_EQ(log.appended(), 2);
  }
  const std::vector<ProvenanceRecord> records =
      load_provenance(dir.path / "provenance.jsonl");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].to_json(), sample_record().to_json());
}

TEST(ProvenanceEngineTest, EvaluationAssemblesLineage) {
  engine::Engine eng;
  engine::BoundRequest request;
  request.spec = "multi:2:fft:3";
  request.memories = {8};
  request.methods = {"spectral"};
  const engine::BoundReport report = eng.evaluate(request);

  const ProvenanceRecord& record = report.provenance;
  EXPECT_EQ(record.kind, "bound");
  EXPECT_EQ(record.graph, "multi:2:fft:3");
  EXPECT_TRUE(record.registry.exclusive);
  ASSERT_FALSE(record.spectra.empty());
  // Two identical fft:3 components: one computed, one served from the
  // content-addressed memory tier of the producing solve.
  bool saw_computed = false;
  bool saw_memory = false;
  for (const SpectrumProvenance& s : record.spectra)
    for (const ComponentProvenance& c : s.components) {
      saw_computed |= c.source == "computed";
      saw_memory |= c.source == "memory";
      EXPECT_GE(c.certified_floor, 0.0);
    }
  EXPECT_TRUE(saw_computed);
  EXPECT_TRUE(saw_memory);
  ASSERT_EQ(record.rows.size(), report.rows.size());
  for (std::size_t i = 0; i < record.rows.size(); ++i) {
    EXPECT_EQ(record.rows[i].method, report.rows[i].method);
    EXPECT_EQ(record.rows[i].bound, report.rows[i].value);
  }
  const std::vector<std::string> issues = check_record(record);
  EXPECT_TRUE(issues.empty())
      << (issues.empty() ? "" : issues.front());
}

TEST(ProvenanceStreamTest, WarmTiersReconcileWithRegistryDeltas) {
  auto store = std::make_shared<store::ArtifactStore>();
  store->set_eigenbasis_budget(64 << 20);
  stream::StreamSession session("g", store);
  session.load("multi:3:fft:4");

  engine::BoundRequest request;
  request.memories = {8};
  request.methods = {"spectral"};
  request.spectral.solver = "lanczos";

  const engine::BoundReport cold = session.evaluate(request);
  EXPECT_TRUE(check_record(cold.provenance).empty());
  EXPECT_EQ(cold.provenance.kind, "stream");
  EXPECT_EQ(cold.provenance.dirty, 3);  // a load dirties every component

  stream::Patch patch;
  patch.mutations.push_back(stream::Mutation::add_edge(2, 75));
  session.apply(patch);

  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
  const std::int64_t warm_before = registry.counter("solver.warm_hits").value();
  const std::int64_t iter_before = registry.counter("solver.iterations").value();
  const engine::BoundReport warm = session.evaluate(request);
  const std::int64_t warm_delta =
      registry.counter("solver.warm_hits").value() - warm_before;
  const std::int64_t iter_delta =
      registry.counter("solver.iterations").value() - iter_before;

  const ProvenanceRecord& record = warm.provenance;
  EXPECT_EQ(record.dirty, 1);
  EXPECT_EQ(record.clean, 2);
  EXPECT_TRUE(record.registry.exclusive);
  // The record's bracketed deltas must equal the raw counter movement...
  EXPECT_EQ(record.registry.warm_hits, warm_delta);
  EXPECT_EQ(record.registry.iterations, iter_delta);
  // ...and the claimed per-component tiers must reconcile with them
  // exactly: every refresh/warm tier is one solver.warm_hits tick, every
  // computed component's iterations sum to solver.iterations.
  std::int64_t claimed_warm = 0;
  std::int64_t claimed_iterations = 0;
  bool saw_warm_tier = false;
  for (const SpectrumProvenance& s : record.spectra) {
    if (!s.computed) continue;
    for (const ComponentProvenance& c : s.components) {
      if (c.source != "computed") continue;
      claimed_iterations += c.iterations;
      if (c.tier == "refresh" || c.tier == "warm") {
        ++claimed_warm;
        saw_warm_tier = true;
        EXPECT_NE(c.warm_predecessor, 0u);
      }
    }
  }
  EXPECT_TRUE(saw_warm_tier);
  EXPECT_EQ(claimed_warm, warm_delta);
  EXPECT_EQ(claimed_iterations, iter_delta);
  const std::vector<std::string> issues = check_record(record);
  EXPECT_TRUE(issues.empty())
      << (issues.empty() ? "" : issues.front());
}

TEST(ProvenanceStoreTest, DiskReplaySurfacesAsDiskSource) {
  TempDir dir("graphio_provenance_disk_test");
  engine::BoundRequest request;
  request.spec = "fft:4";
  request.memories = {8};
  request.methods = {"spectral"};
  {
    engine::Engine eng(std::make_shared<store::ArtifactStore>(dir.path));
    eng.evaluate(request);
  }
  // A fresh process over the same durable dir replays the artifact from
  // the disk tier; provenance must say so rather than claim a solve.
  engine::Engine eng(std::make_shared<store::ArtifactStore>(dir.path));
  const engine::BoundReport report = eng.evaluate(request);
  bool saw_disk = false;
  for (const SpectrumProvenance& s : report.provenance.spectra)
    for (const ComponentProvenance& c : s.components)
      saw_disk |= c.source == "disk";
  EXPECT_TRUE(saw_disk);
  EXPECT_TRUE(check_record(report.provenance).empty());
}

// --- BatchSession surfacing ------------------------------------------------

std::vector<io::JsonValue> parse_lines(const std::string& text) {
  std::vector<io::JsonValue> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(io::JsonValue::parse(line));
  return lines;
}

constexpr const char* kStreamJobs =
    R"({"graph": "g", "load": "multi:2:fft:3"}
{"graph": "g", "memories": [8], "methods": ["spectral"], "solver": "lanczos"}
{"graph": "g", "patch": [{"op": "add_edge", "u": 1, "v": 40}], "label": "p"}
{"graph": "g", "memories": [8], "methods": ["spectral"], "solver": "lanczos"}
)";

std::vector<std::string> provenance_lines(int threads, bool explain) {
  serve::BatchOptions options;
  options.threads = threads;
  options.explain = explain;
  serve::BatchSession session(options);
  std::istringstream in(kStreamJobs);
  std::ostringstream out;
  session.run(in, out);
  std::vector<std::string> provenance;
  for (const io::JsonValue& line : parse_lines(out.str())) {
    if (line.get("report") == nullptr) continue;
    const io::JsonValue* record = line.at("report").get("provenance");
    if (record == nullptr) continue;
    // Re-serialize through parse_record: stable JSON, so equal lineage
    // means equal bytes regardless of how the line was assembled.
    provenance.push_back(parse_record(*record).to_json());
  }
  return provenance;
}

TEST(ProvenanceBatchTest, StreamRecordsDeterministicAcrossThreadCounts) {
  const std::vector<std::string> one = provenance_lines(1, true);
  const std::vector<std::string> four = provenance_lines(4, true);
  ASSERT_EQ(one.size(), 2u);  // two stream queries carry provenance
  EXPECT_EQ(one, four);
  for (const std::string& json : one) {
    const ProvenanceRecord record =
        parse_record(io::JsonValue::parse(json));
    EXPECT_EQ(record.kind, "stream");
    EXPECT_TRUE(record.registry.exclusive);  // ingest is single-lane
    EXPECT_TRUE(check_record(record).empty());
  }
}

TEST(ProvenanceBatchTest, ResultLinesOmitProvenanceWithoutExplain) {
  // --explain is opt-in precisely so default result lines stay
  // byte-comparable across warm/cold stores.
  EXPECT_TRUE(provenance_lines(1, false).empty());
}

}  // namespace
}  // namespace graphio::audit
