// Sandwich and cross-engine sweeps over the extended (beyond-the-paper)
// workload families: stencils, prefix scan, bitonic sorting networks,
// triangular solve, Cholesky. These are the low-expansion kernels where
// the spectral bound is weakest (§5.3 connectivity caveat) — exactly
// where soundness bugs would hide, since the bound must stay below tight
// schedules rather than comfortably below loose ones.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graphio/core/hierarchy.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/graph/transforms.hpp"
#include "graphio/sim/anneal.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/parallel_memsim.hpp"

namespace graphio {
namespace {

enum class Kernel {
  kStencil1d,
  kStencil2d,
  kScan,
  kBitonic,
  kTrisolve,
  kCholesky,
};

std::string kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kStencil1d: return "stencil1d";
    case Kernel::kStencil2d: return "stencil2d";
    case Kernel::kScan: return "scan";
    case Kernel::kBitonic: return "bitonic";
    case Kernel::kTrisolve: return "trisolve";
    case Kernel::kCholesky: return "cholesky";
  }
  return "?";
}

Digraph build(Kernel k, int size) {
  switch (k) {
    case Kernel::kStencil1d: return builders::stencil1d(6 * size, 2 * size);
    case Kernel::kStencil2d: return builders::stencil2d(3 * size, 3 * size, size);
    case Kernel::kScan: return builders::prefix_scan(size + 2);
    case Kernel::kBitonic: return builders::bitonic_sort(size + 1);
    case Kernel::kTrisolve: return builders::triangular_solve(4 * size);
    case Kernel::kCholesky: return builders::cholesky(3 * size);
  }
  return Digraph();
}

using Case = std::tuple<Kernel, int, std::int64_t>;  // kernel, size, M

class ExtendedSandwich : public ::testing::TestWithParam<Case> {};

TEST_P(ExtendedSandwich, AllLowerBoundsBelowTightSchedules) {
  const auto [kernel, size, memory] = GetParam();
  const Digraph g = build(kernel, size);
  ASSERT_TRUE(is_dag(g));
  if (g.max_in_degree() > memory) GTEST_SKIP() << "infeasible M";

  // The tightest cheap upper bound we have: anneal from the best
  // heuristic schedule.
  sim::AnnealOptions anneal;
  anneal.iterations = g.num_vertices() > 1500 ? 150 : 600;
  anneal.seed = static_cast<std::uint64_t>(size) * 31 +
                static_cast<std::uint64_t>(memory);
  const std::int64_t upper = sim::anneal_schedule(g, memory, anneal).io;

  const double m = static_cast<double>(memory);
  const double thm4 = spectral_bound(g, m).bound;
  const double thm5 = spectral_bound_plain(g, m).bound;
  const double mincut = flow::convex_mincut_bound(g, m).bound;

  EXPECT_LE(thm4, static_cast<double>(upper) + 1e-6)
      << kernel_name(kernel) << " size=" << size << " M=" << memory;
  EXPECT_LE(thm5, thm4 + 1e-9);
  EXPECT_LE(mincut, static_cast<double>(upper) + 1e-6);
}

TEST_P(ExtendedSandwich, ParallelBoundBelowPartitionedExecutions) {
  const auto [kernel, size, memory] = GetParam();
  const Digraph g = build(kernel, size);
  if (g.max_in_degree() > memory) GTEST_SKIP() << "infeasible M";
  for (std::int64_t p : {2, 4}) {
    const double lower =
        parallel_spectral_bound(g, static_cast<double>(memory), p).bound;
    const auto upper = sim::best_parallel_schedule_io(g, memory, p);
    EXPECT_LE(lower, static_cast<double>(upper.max_total()) + 1e-6)
        << kernel_name(kernel) << " p=" << p;
  }
}

TEST_P(ExtendedSandwich, ReversalKeepsTheoremFiveInvariant) {
  // The adjoint computation has the same undirected skeleton; Theorem 5's
  // eigenvalue sum is identical, only the degree normalization differs
  // (max out-degree becomes max in-degree).
  const auto [kernel, size, memory] = GetParam();
  const Digraph g = build(kernel, size);
  const Digraph r = reverse(g);
  const double m = static_cast<double>(memory);
  const double fwd = spectral_bound_plain(g, m).bound;
  const double bwd = spectral_bound_plain(r, m).bound;
  const double degree_ratio =
      static_cast<double>(g.max_out_degree()) /
      static_cast<double>(std::max<std::int64_t>(r.max_out_degree(), 1));
  // fwd/bwd can differ only through the degree factor.
  if (fwd > 0.0 && bwd > 0.0 && std::abs(degree_ratio - 1.0) < 1e-12) {
    EXPECT_NEAR(fwd, bwd, 1e-6 * std::max(1.0, fwd));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ExtendedSandwich,
    ::testing::Combine(
        ::testing::Values(Kernel::kStencil1d, Kernel::kStencil2d,
                          Kernel::kScan, Kernel::kBitonic, Kernel::kTrisolve,
                          Kernel::kCholesky),
        ::testing::Values(2, 3), ::testing::Values<std::int64_t>(5, 12)),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return kernel_name(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_m" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(ExtendedIntegration, HierarchyProfileAgreesWithSandwich) {
  // Each hierarchy level must itself respect the two-level sandwich.
  const Digraph g = builders::cholesky(8);
  const std::vector<double> capacities{4.0, 8.0, 16.0};
  const HierarchyProfile profile = hierarchy_profile(g, capacities);
  for (const LevelTraffic& level : profile.levels) {
    if (g.max_in_degree() > static_cast<std::int64_t>(level.capacity))
      continue;
    const auto upper = sim::best_schedule_io(
        g, static_cast<std::int64_t>(level.capacity));
    EXPECT_LE(level.traffic_bound, static_cast<double>(upper.total()) + 1e-6)
        << "capacity " << level.capacity;
  }
}

TEST(ExtendedIntegration, MincutEnginesAgreeOnExtendedKernels) {
  for (Kernel k : {Kernel::kScan, Kernel::kTrisolve, Kernel::kStencil1d}) {
    const Digraph g = build(k, 2);
    flow::ConvexMinCutOptions dinic;
    dinic.engine = flow::FlowEngine::kDinic;
    flow::ConvexMinCutOptions pr;
    pr.engine = flow::FlowEngine::kPushRelabel;
    EXPECT_DOUBLE_EQ(flow::convex_mincut_bound(g, 4.0, dinic).bound,
                     flow::convex_mincut_bound(g, 4.0, pr).bound)
        << kernel_name(k);
  }
}

}  // namespace
}  // namespace graphio
