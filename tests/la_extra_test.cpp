// Secondary eigensolvers: Sturm bisection, cyclic Jacobi, power iteration.
// Each is validated against closed forms and against the primary QL path —
// three independent routes to the same spectra.
#include <gtest/gtest.h>

#include <cmath>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/bisection.hpp"
#include "graphio/la/householder.hpp"
#include "graphio/la/jacobi.hpp"
#include "graphio/la/power_iteration.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/tridiagonal.hpp"
#include "graphio/la/vector_ops.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {
namespace {

SymTridiag toeplitz(int n, double a, double b) {
  SymTridiag t;
  t.diag.assign(static_cast<std::size_t>(n), a);
  t.off.assign(static_cast<std::size_t>(n - 1), b);
  return t;
}

DenseMatrix random_symmetric(std::size_t n, Prng& rng) {
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      std::vector<double> x(1);
      fill_normal(x, rng);
      a(i, j) = x[0];
      a(j, i) = x[0];
    }
  }
  return a;
}

// --- Sturm bisection ---------------------------------------------------

TEST(Bisection, CountBelowMatchesClosedForm) {
  // Toeplitz(2, -1): eigenvalues 2 − 2cos(kπ/(n+1)).
  const SymTridiag t = toeplitz(8, 2.0, -1.0);
  const auto exact = toeplitz_tridiagonal_eigenvalues(8, 2.0, -1.0);
  // x values avoid exact eigenvalues (ties are resolution-dependent).
  for (double x : {0.0, 0.11, 1.01, 2.02, 3.9, 4.5}) {
    std::int64_t expected = 0;
    for (double lam : exact) expected += lam < x ? 1 : 0;
    EXPECT_EQ(sturm_count_below(t, x), expected) << "x=" << x;
  }
}

TEST(Bisection, EigenvaluesMatchToeplitzClosedForm) {
  const int n = 12;
  const SymTridiag t = toeplitz(n, 4.0, -2.0);
  const auto exact = toeplitz_tridiagonal_eigenvalues(n, 4.0, -2.0);
  for (int k = 0; k < n; ++k)
    EXPECT_NEAR(bisection_eigenvalue(t, k), exact[static_cast<std::size_t>(k)],
                1e-10)
        << k;
}

TEST(Bisection, SmallestAgreesWithQl) {
  const SymTridiag t = toeplitz(40, 1.0, 0.3);
  auto ql = tridiagonal_eigenvalues(t);
  const auto bis = bisection_smallest(t, 10);
  for (int k = 0; k < 10; ++k)
    EXPECT_NEAR(bis[static_cast<std::size_t>(k)],
                ql[static_cast<std::size_t>(k)], 1e-10);
}

TEST(Bisection, WindowQueries) {
  const SymTridiag t = toeplitz(16, 2.0, -1.0);
  const auto exact = toeplitz_tridiagonal_eigenvalues(16, 2.0, -1.0);
  const auto window = bisection_in_window(t, 1.0, 3.0);
  std::int64_t expected = 0;
  for (double lam : exact) expected += (lam >= 1.0 && lam < 3.0) ? 1 : 0;
  EXPECT_EQ(static_cast<std::int64_t>(window.size()), expected);
  for (double lam : window) {
    EXPECT_GE(lam, 1.0 - 1e-9);
    EXPECT_LT(lam, 3.0 + 1e-9);
  }
}

TEST(Bisection, HandlesRepeatedEigenvalues) {
  // Two decoupled copies (off-diagonal zero in the middle): every
  // eigenvalue is doubled; bisection must count and find both copies.
  SymTridiag t = toeplitz(8, 2.0, -1.0);
  t.off[3] = 0.0;  // splits into two 4-blocks with identical spectra
  const auto vals = bisection_smallest(t, 8);
  for (int k = 0; k + 1 < 8; k += 2)
    EXPECT_NEAR(vals[static_cast<std::size_t>(k)],
                vals[static_cast<std::size_t>(k + 1)], 1e-9);
}

TEST(Bisection, WindowedLaplacianPathAgreesWithDenseSolver) {
  // Full pipeline: Laplacian → Householder tridiagonalization → bisection
  // window == dense QL smallest values.
  const Digraph g = builders::fft(4);
  DenseMatrix lap = dense_laplacian(g, LaplacianKind::kOutDegreeNormalized);
  const auto dense = symmetric_eigenvalues(lap);
  DenseMatrix scratch = dense_laplacian(g, LaplacianKind::kOutDegreeNormalized);
  const SymTridiag t = householder_tridiagonalize(scratch, false);
  const auto bis = bisection_smallest(t, 12);
  for (int k = 0; k < 12; ++k)
    EXPECT_NEAR(bis[static_cast<std::size_t>(k)],
                dense[static_cast<std::size_t>(k)], 1e-8);
}

// --- Jacobi ---------------------------------------------------------------

TEST(Jacobi, DiagonalMatrixIsItsOwnSpectrum) {
  DenseMatrix a(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 0.5;
  a(3, 3) = 7.0;
  const auto r = jacobi_eigen(a);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.values[0], -1.0);
  EXPECT_DOUBLE_EQ(r.values[3], 7.0);
}

TEST(Jacobi, AgreesWithQlOnRandomMatrices) {
  Prng rng(42);
  for (int trial = 0; trial < 3; ++trial) {
    const DenseMatrix a = random_symmetric(24, rng);
    const auto ql = symmetric_eigenvalues(a);
    const auto jac = jacobi_eigenvalues(a);
    ASSERT_TRUE(jacobi_eigen(a).converged);
    for (std::size_t i = 0; i < ql.size(); ++i)
      EXPECT_NEAR(jac[i], ql[i], 1e-9) << i;
  }
}

TEST(Jacobi, EigenvectorsSatisfyDefinition) {
  Prng rng(7);
  const DenseMatrix a = random_symmetric(12, rng);
  const auto r = jacobi_eigen(a);
  ASSERT_TRUE(r.converged);
  for (std::size_t j = 0; j < 12; ++j) {
    // ‖A x_j − λ_j x_j‖ small.
    double err = 0.0;
    for (std::size_t i = 0; i < 12; ++i) {
      double axi = 0.0;
      for (std::size_t k = 0; k < 12; ++k) axi += a(i, k) * r.vectors(k, j);
      const double diff = axi - r.values[j] * r.vectors(i, j);
      err += diff * diff;
    }
    EXPECT_LT(std::sqrt(err), 1e-9) << j;
  }
}

TEST(Jacobi, LaplacianSpectraMatchAnalytic) {
  // K_5: 0 once, 5 with multiplicity 4.
  const Digraph g = builders::complete_dag(5);
  const auto vals =
      jacobi_eigenvalues(dense_laplacian(g, LaplacianKind::kPlain));
  EXPECT_NEAR(vals[0], 0.0, 1e-12);
  for (int i = 1; i < 5; ++i)
    EXPECT_NEAR(vals[static_cast<std::size_t>(i)], 5.0, 1e-10);
}

TEST(Jacobi, RejectsAsymmetricInput) {
  DenseMatrix a(3, 3);
  a(0, 1) = 1.0;  // a(1,0) stays 0
  EXPECT_THROW(jacobi_eigen(a), contract_error);
}

// --- power iteration --------------------------------------------------------

TEST(Power, LargestEigenvalueOfCompleteGraphLaplacian) {
  // K_n Laplacian: λ_max = n.
  const Digraph g = builders::complete_dag(12);
  const auto lap = laplacian(g, LaplacianKind::kPlain);
  const auto r = largest_eigenvalue(lap);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 12.0, 1e-5);
}

TEST(Power, SmallestEigenvaluesOfPathLaplacian) {
  const Digraph g = builders::path(24);
  const auto lap = laplacian(g, LaplacianKind::kPlain);
  const auto dense = symmetric_eigenvalues(lap.to_dense());
  PowerOptions opts;
  opts.max_iterations = 200000;
  const auto r = power_smallest_eigenvalues(lap, 3, opts);
  ASSERT_TRUE(r.converged);
  for (int k = 0; k < 3; ++k)
    EXPECT_NEAR(r.values[static_cast<std::size_t>(k)],
                dense[static_cast<std::size_t>(k)], 1e-5)
        << k;
}

TEST(Power, ZeroModeOfConnectedLaplacianIsFoundFirst) {
  const Digraph g = builders::grid(5, 5);
  const auto lap = laplacian(g, LaplacianKind::kPlain);
  const auto r = power_smallest_eigenvalues(lap, 1);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 0.0, 1e-6);
}

TEST(Power, ResidualsBoundTheError) {
  const Digraph g = builders::bhk_hypercube(5);
  const auto lap = laplacian(g, LaplacianKind::kPlain);
  const auto dense = symmetric_eigenvalues(lap.to_dense());
  const auto r = power_smallest_eigenvalues(lap, 4);
  for (std::size_t k = 0; k < r.values.size(); ++k) {
    // |θ − λ| ≤ ‖residual‖ for the matched eigenvalue.
    double best = 1e300;
    for (double lam : dense) best = std::min(best, std::fabs(lam - r.values[k]));
    EXPECT_LE(best, r.residuals[k] + 1e-9) << k;
  }
}

TEST(Power, WantZeroIsTriviallyConverged) {
  const auto lap =
      laplacian(builders::path(10), LaplacianKind::kPlain);
  const auto r = power_smallest_eigenvalues(lap, 0);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.values.empty());
}

}  // namespace
}  // namespace graphio::la
