#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/engine/engine.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/io/json.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::engine {
namespace {

// Direct calls compare against the Engine with adaptivity disabled: the
// cache always resolves the full h = min(max_eigenvalues, n) prefix, and
// non-adaptive direct calls do the same, so results must agree exactly.
SpectralOptions exact_options() {
  SpectralOptions options;
  options.adaptive = false;
  return options;
}

// ----------------------------------------------------------------- registry

TEST(MethodRegistry, ContainsEveryDocumentedId) {
  const std::vector<std::string> expected{
      "spectral", "spectral-plain", "parallel",     "mincut",
      "partition-dp", "analytic",   "pebble-exact", "memsim"};
  const std::vector<std::string> ids = method_ids();
  EXPECT_EQ(ids, expected);
  for (const std::string& id : expected) {
    const BoundMethod* method = find_method(id);
    ASSERT_NE(method, nullptr) << id;
    EXPECT_EQ(method->id(), id);
    EXPECT_FALSE(method->summary().empty());
  }
}

TEST(MethodRegistry, UnknownIdIsNull) {
  EXPECT_EQ(find_method("does-not-exist"), nullptr);
  EXPECT_EQ(find_method(""), nullptr);
}

TEST(MethodRegistry, UnknownMethodInRequestThrows) {
  Engine engine;
  BoundRequest request;
  request.spec = "inner:3";
  request.memories = {4.0};
  request.methods = {"spectral", "bogus"};
  EXPECT_THROW(engine.evaluate(request), contract_error);
}

// ------------------------------------------------------------------- specs

TEST(GraphSpec, ParsesFamiliesAndRejectsGarbage) {
  const GraphSpec fft = GraphSpec::parse("fft:5");
  EXPECT_EQ(fft.family, "fft");
  EXPECT_EQ(fft.int_param(0), 5);
  EXPECT_EQ(fft.build().num_vertices(), 6 * 32);

  EXPECT_THROW(GraphSpec::parse("nope:3"), contract_error);
  EXPECT_THROW(GraphSpec::parse("fft"), contract_error);
  // Non-numeric arguments surface at build time (params may legitimately
  // be symbolic, e.g. matmul:4:tree).
  EXPECT_THROW(GraphSpec::parse("fft:x").build(), contract_error);
  EXPECT_FALSE(GraphSpec::try_parse("nope:3").has_value());
  EXPECT_TRUE(GraphSpec::try_parse("bhk:7").has_value());
}

TEST(GraphSpec, DispatchesDotFilesByExtension) {
  const std::string path = ::testing::TempDir() + "graphio_spec_test.dot";
  {
    std::ofstream out(path);
    out << "digraph { a -> b; a -> c; }\n";
  }
  const GraphSpec spec = GraphSpec::parse(path);
  EXPECT_EQ(spec.family, "file");
  const Digraph g = spec.build();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);

  // Malformed DOT surfaces as a contract_error at build, not a crash or a
  // silent empty graph.
  {
    std::ofstream out(path);
    out << "digraph { a -> a }\n";  // self-loop
  }
  EXPECT_THROW(GraphSpec::parse(path).build(), contract_error);
  {
    std::ofstream out(path);
    out << "graphio-edgelist 1\nn 2\ne 0 1\n";  // edgelist body, .dot name
  }
  EXPECT_THROW(GraphSpec::parse(path).build(), contract_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ parity

struct ParityCase {
  const char* spec;
  double memory;
};

class EngineParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(EngineParity, SpectralMatchesDirectCall) {
  const auto [spec_text, memory] = GetParam();
  Engine engine;
  BoundRequest request;
  request.spec = spec_text;
  request.memories = {memory};
  request.methods = {"spectral", "spectral-plain", "mincut"};
  request.spectral = exact_options();
  const BoundReport report = engine.evaluate(request);

  const Digraph g = GraphSpec::parse(spec_text).build();
  const SpectralBound direct = spectral_bound(g, memory, exact_options());
  const MethodRow* spectral = report.row("spectral", memory);
  ASSERT_NE(spectral, nullptr);
  EXPECT_TRUE(spectral->applicable);
  EXPECT_DOUBLE_EQ(spectral->value, direct.bound);
  EXPECT_EQ(spectral->best_k, direct.best_k);

  const SpectralBound direct_plain =
      spectral_bound_plain(g, memory, exact_options());
  const MethodRow* plain = report.row("spectral-plain", memory);
  ASSERT_NE(plain, nullptr);
  EXPECT_DOUBLE_EQ(plain->value, direct_plain.bound);
  EXPECT_EQ(plain->best_k, direct_plain.best_k);

  const flow::ConvexMinCutResult direct_mincut =
      flow::convex_mincut_bound(g, memory);
  const MethodRow* mincut = report.row("mincut", memory);
  ASSERT_NE(mincut, nullptr);
  EXPECT_DOUBLE_EQ(mincut->value, direct_mincut.bound);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, EngineParity,
    ::testing::Values(ParityCase{"fft:5", 4.0}, ParityCase{"fft:6", 2.0},
                      ParityCase{"bhk:6", 4.0}, ParityCase{"bhk:7", 8.0},
                      ParityCase{"inner:6", 3.0}, ParityCase{"inner:10", 2.0}),
    [](const auto& info) {
      std::string name = info.param.spec;
      std::replace(name.begin(), name.end(), ':', '_');
      return name + "_m" + std::to_string(static_cast<int>(info.param.memory));
    });

TEST(EngineParity, ParallelMatchesTheorem6) {
  Engine engine;
  BoundRequest request;
  request.spec = "bhk:7";
  request.memories = {4.0};
  request.processors = 4;
  request.methods = {"parallel"};
  request.spectral = exact_options();
  const BoundReport report = engine.evaluate(request);

  const Digraph g = builders::bhk_hypercube(7);
  const SpectralBound direct =
      parallel_spectral_bound(g, 4.0, 4, exact_options());
  const MethodRow* row = report.row("parallel", 4.0);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->processors, 4);
  EXPECT_DOUBLE_EQ(row->value, direct.bound);
  EXPECT_EQ(row->best_k, direct.best_k);
}

TEST(EngineParity, MemsimMatchesBestSchedule) {
  Engine engine;
  BoundRequest request;
  request.spec = "fft:4";
  request.memories = {8.0};
  request.methods = {"memsim"};
  const BoundReport report = engine.evaluate(request);
  const MethodRow* row = report.row("memsim", 8.0);
  ASSERT_NE(row, nullptr);
  const sim::SimResult direct =
      sim::best_schedule_io(builders::fft(4), 8);
  EXPECT_DOUBLE_EQ(row->value, static_cast<double>(direct.total()));
}

TEST(EngineParity, PebbleExactMatchesSearch) {
  Engine engine;
  BoundRequest request;
  request.spec = "inner:3";  // 6 inputs, 3 products, 2 adds = 11 vertices
  request.memories = {3.0};
  request.methods = {"pebble-exact", "spectral", "memsim"};
  const BoundReport report = engine.evaluate(request);
  const MethodRow* exact_row = report.row("pebble-exact", 3.0);
  ASSERT_NE(exact_row, nullptr);
  ASSERT_TRUE(exact_row->applicable);
  const auto direct =
      exact::exact_optimal_io(builders::inner_product(3), 3);
  EXPECT_DOUBLE_EQ(exact_row->value, static_cast<double>(direct.io));

  // Sandwich through the report: lower <= exact <= upper.
  const MethodRow* lower = report.row("spectral", 3.0);
  const MethodRow* upper = report.row("memsim", 3.0);
  ASSERT_NE(lower, nullptr);
  ASSERT_NE(upper, nullptr);
  EXPECT_LE(lower->value, exact_row->value);
  EXPECT_LE(exact_row->value, upper->value);
}

// ----------------------------------------------------------- artifact reuse

TEST(ArtifactReuse, SpectrumComputedExactlyOncePerKind) {
  // The acceptance shape: --method all --memory 4,8,16 on one graph must
  // run exactly one eigendecomposition per Laplacian kind — the
  // normalized spectrum is shared by "spectral" and "parallel" across all
  // three memory sizes, the plain spectrum by "spectral-plain".
  Engine engine;
  BoundRequest request;
  request.spec = "fft:5";
  request.memories = {4.0, 8.0, 16.0};
  request.methods = {"all"};
  const BoundReport report = engine.evaluate(request);

  EXPECT_EQ(report.cache.eigensolves, 2);
  EXPECT_EQ(report.cache.mincut_sweeps, 1);
  EXPECT_GT(report.cache.hits, 0);

  const ArtifactCache* cache = engine.cache("fft:5");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->eigensolves(LaplacianKind::kOutDegreeNormalized), 1);
  EXPECT_EQ(cache->eigensolves(LaplacianKind::kPlain), 1);
}

TEST(ArtifactReuse, SecondEvaluationIsAllHits) {
  Engine engine;
  BoundRequest request;
  request.spec = "bhk:6";
  request.memories = {4.0, 8.0};
  request.methods = {"spectral", "mincut"};
  const BoundReport first = engine.evaluate(request);
  EXPECT_EQ(first.cache.eigensolves, 1);
  EXPECT_EQ(first.cache.mincut_sweeps, 1);

  // Same spec again — every artifact must come from the cache, and the
  // results must be identical.
  const BoundReport second = engine.evaluate(request);
  EXPECT_EQ(second.cache.eigensolves, 0);
  EXPECT_EQ(second.cache.mincut_sweeps, 0);
  EXPECT_EQ(second.cache.misses, 0);
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(second.rows[i].method, first.rows[i].method);
    EXPECT_DOUBLE_EQ(second.rows[i].value, first.rows[i].value);
  }
}

TEST(ArtifactReuse, CacheServesSmallerSpectrumRequests) {
  ArtifactCache cache(builders::fft(4));
  const auto& big = cache.spectrum(LaplacianKind::kPlain, 20);
  EXPECT_EQ(cache.stats().eigensolves, 1);
  EXPECT_GE(big.values.size(), 20u);
  const auto& again = cache.spectrum(LaplacianKind::kPlain, 8);
  EXPECT_EQ(cache.stats().eigensolves, 1);  // served from cache
  EXPECT_EQ(&again, &big);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ArtifactReuse, ChangedSolverOptionsInvalidateSpectrum) {
  ArtifactCache cache(builders::fft(4));
  const SpectralOptions defaults;
  cache.spectrum(LaplacianKind::kPlain, 8, defaults);
  cache.spectrum(LaplacianKind::kPlain, 8, defaults);  // hit
  EXPECT_EQ(cache.stats().eigensolves, 1);

  SpectralOptions dense = defaults;
  dense.backend = EigenBackend::kDense;
  cache.spectrum(LaplacianKind::kPlain, 8, dense);  // options changed
  EXPECT_EQ(cache.stats().eigensolves, 2);
  cache.spectrum(LaplacianKind::kPlain, 8, dense);  // hit again
  EXPECT_EQ(cache.stats().eigensolves, 2);
}

// ------------------------------------------------------------------ report

TEST(BoundReport, JsonIsValidAndCarriesRows) {
  Engine engine;
  BoundRequest request;
  request.spec = "inner:4";
  request.memories = {3.0, 5.0};
  request.methods = {"all"};
  const BoundReport report = engine.evaluate(request);

  EXPECT_EQ(report.rows.size(), methods().size() * 2);
  const std::string json = report.to_json();
  EXPECT_TRUE(io::json_valid(json)) << json;
  EXPECT_NE(json.find("\"eigensolves\""), std::string::npos);

  const Table table = report.to_table();
  EXPECT_EQ(table.rows(), report.rows.size());
}

TEST(BoundReport, AnalyticAppliesOnlyToClosedFormFamilies) {
  Engine engine;
  BoundRequest request;
  request.spec = "fft:6";
  request.memories = {8.0};
  request.methods = {"analytic"};
  const BoundReport fft_report = engine.evaluate(request);
  ASSERT_EQ(fft_report.rows.size(), 1u);
  EXPECT_TRUE(fft_report.rows[0].applicable);

  request.spec = "grid:4:4";
  const BoundReport grid_report = engine.evaluate(request);
  ASSERT_EQ(grid_report.rows.size(), 1u);
  EXPECT_FALSE(grid_report.rows[0].applicable);
}

TEST(BoundReport, ExplicitGraphRequestsWork) {
  Engine engine;
  BoundRequest request;
  request.graph = builders::grid(3, 3);
  request.name = "my-grid";
  request.memories = {2.0};
  request.methods = {"spectral", "memsim"};
  const BoundReport report = engine.evaluate(request);
  EXPECT_EQ(report.graph, "my-grid");
  EXPECT_EQ(report.vertices, 9);
  EXPECT_EQ(report.rows.size(), 2u);
  // Explicit graphs use a private cache; nothing is persisted.
  EXPECT_EQ(engine.cache("my-grid"), nullptr);
}

// ------------------------------------------------------------------- batch

TEST(EngineBatch, MatchesSequentialEvaluation) {
  std::vector<BoundRequest> requests(3);
  requests[0].spec = "fft:4";
  requests[1].spec = "bhk:5";
  requests[2].spec = "inner:5";
  for (auto& r : requests) {
    r.memories = {3.0, 6.0};
    r.methods = {"spectral", "mincut", "partition-dp"};
    r.spectral = exact_options();
  }
  Engine parallel_engine;
  const auto parallel =
      parallel_engine.evaluate_batch(requests, /*parallel=*/true);
  Engine serial_engine;
  const auto serial =
      serial_engine.evaluate_batch(requests, /*parallel=*/false);

  ASSERT_EQ(parallel.size(), 3u);
  ASSERT_EQ(serial.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parallel[i].graph, requests[i].spec);
    ASSERT_EQ(parallel[i].rows.size(), serial[i].rows.size());
    for (std::size_t j = 0; j < parallel[i].rows.size(); ++j)
      EXPECT_DOUBLE_EQ(parallel[i].rows[j].value, serial[i].rows[j].value)
          << requests[i].spec << " row " << j;
  }
  const std::string json = reports_to_json(parallel);
  EXPECT_TRUE(io::json_valid(json));
}

TEST(EngineBatch, BadSpecThrowsWithContext) {
  std::vector<BoundRequest> requests(2);
  requests[0].spec = "fft:4";
  requests[0].memories = {4.0};
  requests[1].spec = "bogus:1";
  requests[1].memories = {4.0};
  Engine engine;
  EXPECT_THROW(engine.evaluate_batch(requests), contract_error);
}

// ----------------------------------------------------------------- guards

TEST(EngineGuards, EmptySweepAndBadMemoryThrow) {
  Engine engine;
  BoundRequest request;
  request.spec = "fft:4";
  EXPECT_THROW(engine.evaluate(request), contract_error);  // no memories
  request.memories = {-1.0};
  EXPECT_THROW(engine.evaluate(request), contract_error);
  request.memories = {4.0};
  request.spec.clear();
  EXPECT_THROW(engine.evaluate(request), contract_error);  // no graph
}

TEST(EngineGuards, InapplicableMethodsReportNotThrow) {
  Engine engine;
  BoundRequest request;
  request.spec = "fft:5";  // 192 vertices: pebble-exact out of range
  request.memories = {1.0};  // below max in-degree: memsim infeasible
  request.methods = {"pebble-exact", "memsim"};
  const BoundReport report = engine.evaluate(request);
  ASSERT_EQ(report.rows.size(), 2u);
  for (const MethodRow& row : report.rows) {
    EXPECT_FALSE(row.applicable);
    EXPECT_FALSE(row.note.empty());
  }
}

}  // namespace
}  // namespace graphio::engine
