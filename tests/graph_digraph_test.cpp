#include <gtest/gtest.h>

#include "graphio/graph/digraph.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(Digraph, StartsEmpty) {
  Digraph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.sources().empty());
  EXPECT_TRUE(g.sinks().empty());
}

TEST(Digraph, AddVertexReturnsSequentialIds) {
  Digraph g;
  EXPECT_EQ(g.add_vertex(), 0);
  EXPECT_EQ(g.add_vertex(), 1);
  Digraph h(5);
  EXPECT_EQ(h.num_vertices(), 5);
  EXPECT_EQ(h.add_vertex(), 5);
}

TEST(Digraph, EdgesAndDegrees) {
  Digraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.out_degree(2), 1);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.max_in_degree(), 2);
  EXPECT_EQ(g.max_out_degree(), 1);
}

TEST(Digraph, ParallelEdgesCountWithMultiplicity) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // x*x style reuse
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(1), 2);
  ASSERT_EQ(g.children(0).size(), 2u);
  EXPECT_EQ(g.children(0)[0], 1);
  EXPECT_EQ(g.children(0)[1], 1);
}

TEST(Digraph, RejectsSelfLoopsAndBadIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), contract_error);
  EXPECT_THROW(g.add_edge(0, 2), contract_error);
  EXPECT_THROW(g.add_edge(-1, 0), contract_error);
  EXPECT_THROW((void)g.children(5), contract_error);
}

TEST(Digraph, SourcesAndSinks) {
  Digraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 0);
  EXPECT_EQ(sources[1], 1);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], 3);
}

TEST(Digraph, NamesDefaultEmptyAndRoundTrip) {
  Digraph g(2);
  EXPECT_EQ(g.name(0), "");
  g.set_name(1, "output");
  EXPECT_EQ(g.name(1), "output");
  EXPECT_EQ(g.name(0), "");
  EXPECT_THROW(g.set_name(7, "x"), contract_error);
}

TEST(Digraph, ParentsReflectEdgeOrigins) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const auto parents = g.parents(2);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0], 0);
  EXPECT_EQ(parents[1], 1);
  EXPECT_TRUE(g.parents(0).empty());
}

}  // namespace
}  // namespace graphio
