#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/io/json.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/serve/result_store.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::serve {
namespace {

std::vector<io::JsonValue> parse_lines(const std::string& text) {
  std::vector<io::JsonValue> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(io::JsonValue::parse(line));
  return lines;
}

TEST(StreamJobTest, ParsesLoadPatchAndNamedQuery) {
  const Job load = job_from_json_line(R"({"graph": "g", "load": "fft:5"})");
  EXPECT_EQ(load.kind, JobKind::kLoad);
  EXPECT_EQ(load.graph, "g");
  EXPECT_EQ(load.load_spec, "fft:5");

  const Job patch = job_from_json_line(
      R"({"graph": "g", "patch": [{"op": "add_edge", "u": 0, "v": 2}],
          "label": "p"})");
  EXPECT_EQ(patch.kind, JobKind::kPatch);
  EXPECT_EQ(patch.patch.size(), 1);
  EXPECT_EQ(patch.patch.label, "p");

  const Job query = job_from_json_line(
      R"({"graph": "g", "memories": [8], "methods": ["spectral"],
          "solver": "dense"})");
  EXPECT_EQ(query.kind, JobKind::kBound);
  EXPECT_TRUE(query.is_stream());
  EXPECT_EQ(query.request.spectral.solver, "dense");
}

TEST(StreamJobTest, RejectsAmbiguousOrMalformedStreamJobs) {
  // load + patch + query forms are mutually exclusive.
  EXPECT_THROW(job_from_json_line(
                   R"({"graph": "g", "load": "fft:5", "patch": []})"),
               contract_error);
  EXPECT_THROW(job_from_json_line(
                   R"({"graph": "g", "load": "fft:5", "memories": [8]})"),
               contract_error);
  // load/patch need a graph name.
  EXPECT_THROW(job_from_json_line(R"({"load": "fft:5"})"), contract_error);
  EXPECT_THROW(job_from_json_line(
                   R"({"patch": [{"op": "add_vertex"}]})"),
               contract_error);
  // A query names spec or graph, never both; label is patch-only.
  EXPECT_THROW(job_from_json_line(
                   R"({"graph": "g", "spec": "fft:5", "memories": [8]})"),
               contract_error);
  EXPECT_THROW(job_from_json_line(
                   R"({"spec": "fft:5", "memories": [8], "label": "x"})"),
               contract_error);
  EXPECT_THROW(job_from_json_line(
                   R"({"graph": "g", "load": "fft:5", "label": "x"})"),
               contract_error);
  // Analysis keys on load/patch lines would be silently dead config.
  EXPECT_THROW(job_from_json_line(
                   R"({"graph": "g", "patch": [], "solver": "dense"})"),
               contract_error);
  EXPECT_THROW(job_from_json_line(
                   R"({"graph": "g", "load": "fft:5", "processors": 2})"),
               contract_error);
  // Plain bound jobs still validate as before.
  EXPECT_THROW(job_from_json_line(R"({"memories": [8]})"), contract_error);
  EXPECT_THROW(request_from_json_line(R"({"graph": "g", "memories": [8]})"),
               contract_error);
}

TEST(StreamServeTest, InterleavedStreamAndSpecJobsRunInOrder) {
  const std::string jobs =
      R"({"graph": "g", "load": "multi:3:fft:3"})"
      "\n"
      R"({"graph": "g", "memories": [8], "methods": ["spectral"]})"
      "\n"
      R"({"graph": "g", "patch": [{"op": "add_vertex"}, {"op": "add_edge", "u": 96, "v": 0}], "label": "attach"})"
      "\n"
      R"({"graph": "g", "memories": [8], "methods": ["spectral"]})"
      "\n"
      R"({"spec": "fft:3", "memories": [8], "methods": ["spectral"]})"
      "\n";
  BatchOptions options;
  options.threads = 2;
  BatchSession session(options);
  std::istringstream in(jobs);
  std::ostringstream out;
  const BatchSummary summary = session.run(in, out);

  EXPECT_EQ(summary.jobs, 5);
  EXPECT_EQ(summary.ok, 5);
  EXPECT_EQ(summary.failed, 0);
  EXPECT_EQ(summary.stream_jobs, 4);
  EXPECT_EQ(summary.patches, 2);  // load + patch
  EXPECT_EQ(summary.mutations, 2);

  const auto lines = parse_lines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  // Stream lane executes during ingest, in file order.
  EXPECT_NE(lines[0].get("load"), nullptr);
  EXPECT_EQ(lines[0].at("job").as_int(), 1);
  EXPECT_NE(lines[1].get("report"), nullptr);
  EXPECT_NE(lines[2].get("patch"), nullptr);
  EXPECT_NE(lines[3].get("report"), nullptr);

  // The first query sees 96 vertices, the post-patch query 97: ordering
  // is observable, not just asserted.
  EXPECT_EQ(lines[1].at("report").at("graph").at("vertices").as_int(), 96);
  EXPECT_EQ(lines[3].at("report").at("graph").at("vertices").as_int(), 97);
  const io::JsonValue& patch = lines[2].at("patch");
  EXPECT_EQ(patch.at("label").as_string(), "attach");
  EXPECT_EQ(patch.at("components").as_int(), 3);
  EXPECT_EQ(patch.at("dirty").as_int(), 1);
  EXPECT_EQ(patch.at("clean").as_int(), 2);

  const auto* stream = session.stream_session("g");
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->graph().num_vertices(), 97);
}

TEST(StreamServeTest, ServeLoopHandlesStreamJobsAndErrors) {
  const std::string jobs =
      R"({"graph": "g", "patch": [{"op": "add_vertex"}]})"
      "\n"
      R"({"graph": "g", "load": "fft:3"})"
      "\n"
      R"({"graph": "g", "patch": [{"op": "remove_vertex", "v": 400}]})"
      "\n"
      R"({"graph": "fft:4", "load": "fft:4"})"
      "\n"
      R"({"graph": "g", "memories": [8], "methods": ["spectral"]})"
      "\n";
  BatchSession session(BatchOptions{});
  std::istringstream in(jobs);
  std::ostringstream out;
  const BatchSummary summary = session.serve(in, out);

  const auto lines = parse_lines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  // Patch before load: a structured per-line error naming the fix.
  ASSERT_NE(lines[0].get("error"), nullptr);
  EXPECT_NE(lines[0].at("error").at("message").as_string().find(
                "load it first"),
            std::string::npos);
  EXPECT_EQ(lines[0].at("error").at("kind").as_string(), "error");
  EXPECT_NE(lines[1].get("load"), nullptr);
  // Invalid mutation: error carries the mutation index and reason.
  ASSERT_NE(lines[2].get("error"), nullptr);
  EXPECT_NE(
      lines[2].at("error").at("message").as_string().find("mutation 1/1"),
      std::string::npos);
  // A graph name colliding with a family spec is rejected.
  EXPECT_NE(lines[3].get("error"), nullptr);
  EXPECT_NE(lines[4].get("report"), nullptr);

  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.failed, 3);
}

TEST(StreamServeTest, StreamResultLinesAreDeterministic) {
  const std::string jobs =
      R"({"graph": "g", "load": "multi:3:fft:3"})"
      "\n"
      R"({"graph": "g", "patch": [{"op": "add_edge", "u": 0, "v": 9}]})"
      "\n"
      R"({"graph": "g", "memories": [4, 8], "methods": ["spectral"]})"
      "\n";
  auto run_once = [&] {
    BatchSession session(BatchOptions{});
    std::istringstream in(jobs);
    std::ostringstream out;
    session.run(in, out);
    return out.str();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  // No wall-clock fields leak into result lines.
  EXPECT_EQ(first.find("seconds"), std::string::npos);
}

TEST(StreamServeTest, RevertedStateHitsTheResultStore) {
  // Satellite (ISSUE 5): stream query rows are keyed by the session's
  // order-independent component-multiset fingerprint, so a graph that
  // reverts to a previously analyzed state hits the disk store — even
  // though the in-memory component cache evicted the patched content in
  // between. Sequence: query, patch, query, inverse patch, re-query.
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "graphio-stream-store-test";
  std::filesystem::remove_all(store_dir);

  const std::string query =
      R"({"graph": "g", "memories": [4, 8], "methods": ["spectral"]})";
  const std::string jobs =
      R"({"graph": "g", "load": "multi:3:fft:3"})" "\n" + query + "\n" +
      R"({"graph": "g", "patch": [{"op": "add_edge", "u": 0, "v": 9}]})"
      "\n" + query + "\n" +
      R"({"graph": "g", "patch": [{"op": "remove_edge", "u": 0, "v": 9}]})"
      "\n" + query + "\n";

  BatchOptions options;
  options.threads = 1;
  options.store_dir = store_dir.string();
  std::string first_out;
  BatchSummary first;
  {
    BatchSession session(options);
    std::istringstream in(jobs);
    std::ostringstream out;
    first = session.run(in, out);
    first_out = out.str();
  }
  EXPECT_EQ(first.failed, 0);
  EXPECT_EQ(first.rejected_lines, 0);
  // The post-revert query re-keys to the first query's rows: store hit,
  // and no eigensolve even though the patched component's spectrum was
  // evicted when its content disappeared.
  EXPECT_EQ(first.store_hits, 2);    // 1 method x 2 memories, third query
  EXPECT_EQ(first.store_misses, 4);  // first + post-patch queries

  // A cold process over the warm store: query-only replay of the same
  // states performs zero eigensolves.
  const std::string replay =
      R"({"graph": "g", "load": "multi:3:fft:3"})" "\n" + query + "\n";
  BatchSession session(options);
  std::istringstream in(replay);
  std::ostringstream out;
  const BatchSummary warm = session.run(in, out);
  EXPECT_EQ(warm.failed, 0);
  EXPECT_EQ(warm.store_hits, 2);
  EXPECT_EQ(warm.cache.eigensolves, 0);

  // Result lines are deterministic across computed/stored paths: the
  // reverted-state report (computed cold, then served warm) serializes
  // identically after the job-id prefix.
  const auto report_payload = [](const std::string& text) {
    std::string last;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      const auto at = line.find("\"report\"");
      if (at != std::string::npos) last = line.substr(at);
    }
    return last;
  };
  const std::string cold_report = report_payload(first_out);
  const std::string warm_report = report_payload(out.str());
  ASSERT_FALSE(cold_report.empty());
  EXPECT_EQ(cold_report, warm_report);
  std::filesystem::remove_all(store_dir);
}

TEST(StreamServeTest, NumberingSensitiveRowsBypassTheStreamStore) {
  // The multiset key is numbering-agnostic, but memsim schedules
  // tie-break on vertex ids — isomorphic states could disagree, so its
  // rows must neither persist under nor be served from the stream key.
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "graphio-stream-memsim-test";
  std::filesystem::remove_all(store_dir);
  const std::string jobs =
      R"({"graph": "g", "load": "multi:2:fft:3"})" "\n"
      R"({"graph": "g", "memories": [8], "methods": ["memsim"]})" "\n"
      R"({"graph": "g", "memories": [8], "methods": ["memsim"]})" "\n";
  BatchOptions options;
  options.threads = 1;
  options.store_dir = store_dir.string();
  for (int run = 0; run < 2; ++run) {
    BatchSession session(options);
    std::istringstream in(jobs);
    std::ostringstream out;
    const BatchSummary summary = session.run(in, out);
    EXPECT_EQ(summary.failed, 0);
    EXPECT_EQ(summary.store_hits, 0) << "run " << run;
    EXPECT_EQ(summary.store_misses, 0) << "run " << run;
    // Rows are still produced — just computed fresh each time.
    EXPECT_NE(out.str().find("\"memsim\""), std::string::npos);
  }
  std::filesystem::remove_all(store_dir);
}

TEST(ResultStoreErrorTest, UnusableStoreDirectoryIsAHardError) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::temp_directory_path() / "graphio_store_error_test";
  fs::remove_all(base);
  fs::create_directories(base);
  // A store path that exists as a regular file cannot become a directory.
  const fs::path file_path = base / "occupied";
  std::ofstream(file_path) << "not a directory\n";
  EXPECT_THROW(ResultStore{file_path}, contract_error);
  // Same through BatchSession: the constructor must throw, not fall back
  // to a silent cache-less run.
  BatchOptions options;
  options.store_dir = file_path.string();
  EXPECT_THROW(BatchSession{options}, contract_error);
  // A path *under* a regular file is just as unusable.
  BatchOptions nested;
  nested.store_dir = (file_path / "store").string();
  EXPECT_THROW(BatchSession{nested}, contract_error);
  fs::remove_all(base);
}

}  // namespace
}  // namespace graphio::serve
