#include <gtest/gtest.h>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/schedule.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::sim {
namespace {

TEST(GreedyLocality, ProducesTopologicalOrders) {
  for (const Digraph& g :
       {builders::fft(5), builders::naive_matmul(4),
        builders::bhk_hypercube(5), builders::strassen_matmul(4)}) {
    EXPECT_TRUE(is_topological(g, greedy_locality_order(g)));
  }
}

TEST(GreedyLocality, ThrowsOnCycle) {
  EXPECT_THROW(greedy_locality_order(builders::cycle(4)), contract_error);
}

TEST(GreedyLocality, FollowsFreshOperandsOnChains) {
  // Two chains 0->1->2 and 3->4->5. Greedy must finish one chain before
  // starting the other (fresh operands win over lower ids).
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto order = greedy_locality_order(g);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // child of the just-produced 0
  EXPECT_EQ(order[2], 2);
}

TEST(GreedyLocality, NearParityOnMatmulWhereNaturalOrderIsTuned) {
  // The matmul builder emits vertices in complete-dot-product order, which
  // is already near-optimal for the simulator; the heuristic must not lose
  // more than a few percent against that hand-tuned baseline.
  const Digraph g = builders::naive_matmul(6, builders::Reduction::kChain);
  const auto natural = *topological_order(g);
  const auto greedy = greedy_locality_order(g);
  const std::int64_t m = 8;
  EXPECT_LE(static_cast<double>(simulate_io(g, greedy, m).total()),
            1.05 * static_cast<double>(simulate_io(g, natural, m).total()));
}

TEST(GreedyLocality, LargeWinOnButterflyWhereIdOrderThrashes) {
  // The point of the heuristic: on the butterfly the id order walks whole
  // columns (every value spills at small M) while the kill-maximizing
  // greedy schedule recurses into sub-butterflies.
  const Digraph g = builders::fft(6);
  const auto natural = *topological_order(g);
  const auto greedy = greedy_locality_order(g);
  const std::int64_t m = 8;
  EXPECT_LT(static_cast<double>(simulate_io(g, greedy, m).total()),
            0.5 * static_cast<double>(simulate_io(g, natural, m).total()));
}

}  // namespace
}  // namespace graphio::sim
