#include <gtest/gtest.h>

#include "graphio/flow/dinic.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::flow {
namespace {

TEST(Dinic, SingleEdge) {
  Dinic net(2);
  net.add_edge(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 1), 7);
}

TEST(Dinic, SeriesTakesMinimum) {
  Dinic net(3);
  net.add_edge(0, 1, 5);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPathsAdd) {
  Dinic net(4);
  net.add_edge(0, 1, 2);
  net.add_edge(1, 3, 2);
  net.add_edge(0, 2, 3);
  net.add_edge(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(Dinic, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  Dinic net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(Dinic, DisconnectedIsZero) {
  Dinic net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 0);
}

TEST(Dinic, BipartiteMatchingAsUnitFlow) {
  // 3x3 bipartite with perfect matching available.
  Dinic net(8);  // 0=s, 1..3 left, 4..6 right, 7=t
  for (int l = 1; l <= 3; ++l) net.add_edge(0, l, 1);
  for (int r = 4; r <= 6; ++r) net.add_edge(r, 7, 1);
  net.add_edge(1, 4, 1);
  net.add_edge(1, 5, 1);
  net.add_edge(2, 4, 1);
  net.add_edge(3, 6, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3);
}

TEST(Dinic, MinCutSeparatesSourceFromSink) {
  Dinic net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 3, 10);
  EXPECT_EQ(net.max_flow(0, 3), 1);
  const auto side = net.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[1]);  // the unit edge is the bottleneck
  EXPECT_FALSE(side[3]);
}

TEST(Dinic, LongChainDoesNotOverflowStack) {
  const std::int64_t n = 300000;
  Dinic net(n);
  for (std::int64_t i = 0; i + 1 < n; ++i) net.add_edge(i, i + 1, 2);
  EXPECT_EQ(net.max_flow(0, n - 1), 2);
}

TEST(Dinic, RejectsBadArguments) {
  Dinic net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1), contract_error);
  EXPECT_THROW(net.add_edge(0, 1, -1), contract_error);
  EXPECT_THROW(net.max_flow(0, 0), contract_error);
  EXPECT_THROW(net.max_flow(0, 9), contract_error);
}

TEST(Dinic, ZeroCapacityEdgesCarryNothing) {
  Dinic net(2);
  net.add_edge(0, 1, 0);
  EXPECT_EQ(net.max_flow(0, 1), 0);
}

}  // namespace
}  // namespace graphio::flow
