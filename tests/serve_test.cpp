// Tests for the graphio::serve subsystem: job parsing, the work-stealing
// scheduler, the persistent ResultStore, and the BatchSession front-end.
//
// The load-bearing guarantees certified here:
//   * result sets are identical (as sorted JSONL) across thread counts,
//   * malformed job lines are rejected without aborting the batch,
//   * a warm-store rerun is 100% disk hits and performs zero eigensolves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/io/json.hpp"
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/serve/job_queue.hpp"
#include "graphio/serve/result_store.hpp"
#include "graphio/serve/scheduler.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::serve {
namespace {

// A small mixed corpus: cheap graphs, methods covering spectra, the DP
// certificate, closed forms, and the memsim upper bound.
std::string test_jobs() {
  return R"({"spec": "fft:4", "memories": [4, 8], "methods": ["spectral", "partition-dp"]}
{"spec": "bhk:5", "memories": [8], "methods": ["spectral", "analytic"]}
{"spec": "inner:4", "memories": [4, 8], "methods": ["spectral-plain", "memsim"]}
{"spec": "tree:3", "memories": [2, 4], "methods": ["spectral", "mincut"]}
{"spec": "fft:4", "memories": [2, 16], "methods": ["spectral"]}
{"spec": "grid:4:5", "memories": [4], "methods": ["spectral", "partition-dp"]}
)";
}

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

BatchSummary run_jobs(const std::string& jobs, int threads,
                      std::string* output,
                      const std::string& store_dir = "") {
  BatchOptions options;
  options.threads = threads;
  options.store_dir = store_dir;
  BatchSession session(options);
  std::istringstream in(jobs);
  std::ostringstream out;
  const BatchSummary summary = session.run(in, out);
  if (output != nullptr) *output = out.str();
  return summary;
}

/// Temp directory that cleans up after itself.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// -------------------------------------------------------------- job parsing

TEST(ServeJob, ParsesFullJobLine) {
  const engine::BoundRequest request = request_from_json_line(
      R"({"spec": "fft:6", "name": "butterfly", "memories": [4, 8.5],)"
      R"( "methods": ["spectral", "mincut"], "processors": 4,)"
      R"( "sim_random_orders": 7})");
  EXPECT_EQ(request.spec, "fft:6");
  EXPECT_EQ(request.name, "butterfly");
  EXPECT_EQ(request.memories, (std::vector<double>{4.0, 8.5}));
  EXPECT_EQ(request.methods,
            (std::vector<std::string>{"spectral", "mincut"}));
  EXPECT_EQ(request.processors, 4);
  EXPECT_EQ(request.sim_random_orders, 7);
}

TEST(ServeJob, DefaultsAreMinimal) {
  const engine::BoundRequest request =
      request_from_json_line(R"({"spec": "bhk:5", "memories": [8]})");
  EXPECT_TRUE(request.methods.empty());  // empty selects every method
  EXPECT_EQ(request.processors, 1);
}

TEST(ServeJob, RejectsMalformedLines) {
  EXPECT_THROW(request_from_json_line("not json"), contract_error);
  EXPECT_THROW(request_from_json_line("[1, 2]"), contract_error);
  EXPECT_THROW(request_from_json_line(R"({"memories": [4]})"),
               contract_error);  // missing spec
  EXPECT_THROW(request_from_json_line(R"({"spec": "fft:4"})"),
               contract_error);  // missing memories
  EXPECT_THROW(
      request_from_json_line(R"({"spec": "fft:4", "memories": []})"),
      contract_error);  // empty sweep
  EXPECT_THROW(
      request_from_json_line(R"({"spec": "fft:4", "memories": [-1]})"),
      contract_error);  // negative memory
  EXPECT_THROW(request_from_json_line(
                   R"({"spec": "fft:4", "memories": [4], "bogus": 1})"),
               contract_error);  // unknown key
  EXPECT_THROW(request_from_json_line(
                   R"({"spec": "fft:4", "memories": [4], "processors": 0})"),
               contract_error);
}

TEST(ServeJob, RoundTripsThroughJsonLine) {
  engine::BoundRequest request;
  request.spec = "matmul:4";
  request.name = "mm";
  request.memories = {4, 8};
  request.methods = {"spectral"};
  request.processors = 2;
  const engine::BoundRequest back =
      request_from_json_line(request_to_json_line(request));
  EXPECT_EQ(back.spec, request.spec);
  EXPECT_EQ(back.name, request.name);
  EXPECT_EQ(back.memories, request.memories);
  EXPECT_EQ(back.methods, request.methods);
  EXPECT_EQ(back.processors, request.processors);
}

TEST(ServeJob, SolverPolicyKeysParseAndRoundTrip) {
  const engine::BoundRequest request = request_from_json_line(
      R"({"spec": "fft:5", "memories": [8], "solver": "dense",)"
      R"( "decompose": false})");
  EXPECT_EQ(request.spectral.solver, "dense");
  EXPECT_FALSE(request.spectral.decompose);

  const engine::BoundRequest back =
      request_from_json_line(request_to_json_line(request));
  EXPECT_EQ(back.spectral.solver, "dense");
  EXPECT_FALSE(back.spectral.decompose);

  // Defaults are omitted from the serialized line.
  engine::BoundRequest defaults;
  defaults.spec = "fft:5";
  defaults.memories = {8};
  const std::string line = request_to_json_line(defaults);
  EXPECT_EQ(line.find("solver"), std::string::npos);
  EXPECT_EQ(line.find("decompose"), std::string::npos);
}

TEST(ServeJob, UnknownSolverIsRejectedWithRegisteredNames) {
  try {
    request_from_json_line(
        R"({"spec": "fft:5", "memories": [8], "solver": "qr"})");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("auto|dense|lanczos|lobpcg"),
              std::string::npos);
  }
}

// -------------------------------------------------------------- fingerprint

TEST(Fingerprint, EqualGraphsCollideDistinctGraphsDiffer) {
  const Digraph a = builders::fft(4);
  const Digraph b = builders::fft(4);
  const Digraph c = builders::fft(5);
  EXPECT_EQ(engine::graph_fingerprint(a), engine::graph_fingerprint(b));
  EXPECT_NE(engine::graph_fingerprint(a), engine::graph_fingerprint(c));

  // Same edge count, different wiring.
  Digraph d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  Digraph e(3);
  e.add_edge(0, 1);
  e.add_edge(0, 2);
  EXPECT_NE(engine::graph_fingerprint(d), engine::graph_fingerprint(e));
}

TEST(Fingerprint, IgnoresNamesAndRendersHex) {
  Digraph a(2);
  a.add_edge(0, 1);
  Digraph b(2);
  b.add_edge(0, 1);
  b.set_name(0, "input");
  EXPECT_EQ(engine::graph_fingerprint(a), engine::graph_fingerprint(b));
  const std::string hex = engine::fingerprint_hex(0xDEADBEEFULL);
  EXPECT_EQ(hex, "00000000deadbeef");
}

// ---------------------------------------------------------------- job queue

TEST(JobQueue, ShardAffinityAndStealing) {
  JobQueue queue(2);
  for (int i = 0; i < 8; ++i) {
    Job job;
    job.id = i;
    job.request.spec = "fft:4";  // one spec -> one shard
    queue.push(std::move(job));
  }
  // Whichever shard owns the spec, both workers must drain all 8 jobs.
  std::vector<std::int64_t> seen;
  Job job;
  while (queue.pop(0, job)) seen.push_back(job.id);
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_FALSE(queue.pop(1, job));
}

TEST(JobQueue, StealsFromBack) {
  JobQueue queue(2);
  for (int i = 0; i < 4; ++i) {
    Job job;
    job.id = i;
    queue.push_to_shard(0, std::move(job));
  }
  Job job;
  ASSERT_TRUE(queue.pop(1, job));  // worker 1 owns nothing; steals
  EXPECT_EQ(job.id, 3);            // from the back
  EXPECT_EQ(queue.steals(), 1);
  ASSERT_TRUE(queue.pop(0, job));  // owner pops from the front
  EXPECT_EQ(job.id, 0);
}

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, ResultsMatchSerialAcrossThreadCounts) {
  std::string serial;
  std::string threaded;
  const BatchSummary s1 = run_jobs(test_jobs(), 1, &serial);
  const BatchSummary s4 = run_jobs(test_jobs(), 4, &threaded);
  EXPECT_EQ(s1.ok, 6);
  EXPECT_EQ(s4.ok, 6);
  EXPECT_EQ(s1.failed, 0);
  // Completion order may differ; content may not.
  EXPECT_EQ(sorted_lines(serial), sorted_lines(threaded));
}

TEST(Scheduler, FingerprintResolverIsRaceFreeAcrossWorkers) {
  // Specs sharing component content shard to different workers, whose
  // Engines race fingerprint-first lookups and publishes on the one
  // shared ArtifactStore — the hook the TSan job pins down.
  // Determinism across thread counts certifies the resolved solves are
  // the same answers a serial run computes.
  std::string jobs;
  for (int copies = 1; copies <= 6; ++copies)
    jobs += "{\"spec\": \"multi:" + std::to_string(copies) +
            ":fft:4\", \"memories\": [4, 8], \"methods\": [\"spectral\"]}\n";
  std::string serial;
  std::string threaded;
  run_jobs(jobs, 1, &serial);
  const BatchSummary s4 = run_jobs(jobs, 4, &threaded);
  EXPECT_EQ(s4.ok, 6);
  EXPECT_EQ(sorted_lines(serial), sorted_lines(threaded));
  // Every job after the first resolves its components without solving:
  // at most one eigensolve per raced worker can slip through.
  EXPECT_GT(s4.cache.component_hits, 0);
  EXPECT_EQ(s4.cache.fingerprint_computes,
            s4.cache.component_hits + s4.cache.eigensolves);
}

TEST(Scheduler, FailedJobsReportWithoutSinkingTheBatch) {
  const std::string jobs =
      R"({"spec": "fft:4", "memories": [4], "methods": ["spectral"]}
{"spec": "nonsense:9", "memories": [4], "methods": ["spectral"]}
{"spec": "fft:4", "memories": [4], "methods": ["no-such-method"]}
)";
  std::string output;
  const BatchSummary summary = run_jobs(jobs, 2, &output);
  EXPECT_EQ(summary.jobs, 3);
  EXPECT_EQ(summary.ok, 1);
  EXPECT_EQ(summary.failed, 2);
  EXPECT_NE(output.find("\"error\""), std::string::npos);
  EXPECT_NE(output.find("unknown method"), std::string::npos);
}

TEST(Scheduler, RunOneEvaluatesSynchronously) {
  Scheduler scheduler(SchedulerOptions{.threads = 1});
  Job job;
  job.id = 42;
  job.request.spec = "inner:3";
  job.request.memories = {4};
  job.request.methods = {"spectral"};
  const JobResult result = scheduler.run_one(job);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.id, 42);
  ASSERT_EQ(result.report.rows.size(), 1u);
  EXPECT_EQ(result.report.rows[0].method, "spectral");
}

// ------------------------------------------------------------ batch session

TEST(BatchSession, MalformedLinesAreRejectedNotFatal) {
  const std::string jobs =
      "\n"
      "# a comment line\n"
      R"({"spec": "fft:4", "memories": [4], "methods": ["spectral"]})"
      "\n"
      "{broken json\n"
      R"({"spec": "tree:3", "memories": [4], "methods": ["spectral"]})"
      "\n"
      R"({"spec": "tree:3", "memories": [4], "methods": 17})"
      "\n";
  std::string output;
  const BatchSummary summary = run_jobs(jobs, 2, &output);
  EXPECT_EQ(summary.jobs, 2);
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.rejected_lines, 2);
  // Rejected lines keep their ids: lines 4 and 6 of the input.
  EXPECT_NE(output.find("{\"job\":4,\"error\""), std::string::npos);
  EXPECT_NE(output.find("{\"job\":6,\"error\""), std::string::npos);
}

TEST(BatchSession, EveryResultLineIsValidJson) {
  std::string output;
  run_jobs(test_jobs(), 2, &output);
  for (const std::string& line : sorted_lines(output))
    EXPECT_TRUE(io::json_valid(line)) << line;
}

TEST(BatchSession, SummaryJsonIsValid) {
  std::string output;
  const BatchSummary summary = run_jobs(test_jobs(), 2, &output);
  EXPECT_TRUE(io::json_valid(summary.to_json())) << summary.to_json();
  EXPECT_GT(summary.throughput, 0.0);
  EXPECT_GE(summary.p95_seconds, summary.p50_seconds);
}

// -------------------------------------------------------------- result store

TEST(ResultStore, PersistsAndReloadsRows) {
  const TempDir dir("graphio_store_roundtrip");
  ResultStore::Key key;
  key.graph_fingerprint = 0x1234;
  key.method = "spectral";
  key.memory = 8.0;
  engine::MethodRow row;
  row.method = "spectral";
  row.memory = 8.0;
  row.kind = engine::BoundKind::kLower;
  row.value = 123.456789012345;
  row.best_k = 7;
  row.converged = true;
  row.note = "k=7";
  {
    ResultStore store(dir.path);
    EXPECT_FALSE(store.lookup(key).has_value());
    store.insert(key, row);
    EXPECT_TRUE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().appended, 1);
  }
  ResultStore reloaded(dir.path);
  EXPECT_EQ(reloaded.stats().loaded, 1);
  const auto back = reloaded.lookup(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->value, row.value);  // exact double round-trip
  EXPECT_EQ(back->best_k, row.best_k);
  EXPECT_EQ(back->note, row.note);
  EXPECT_EQ(back->kind, row.kind);
}

TEST(ResultStore, SkipsCorruptLinesOnLoad) {
  const TempDir dir("graphio_store_corrupt");
  {
    ResultStore store(dir.path);
    ResultStore::Key key;
    key.graph_fingerprint = 1;
    key.method = "spectral";
    key.memory = 4.0;
    engine::MethodRow row;
    row.method = "spectral";
    row.memory = 4.0;
    store.insert(key, row);
  }
  {
    // Simulate a torn write.
    std::ofstream log(dir.path / "results.jsonl", std::ios::app);
    log << "{\"graph\":\"0000\n";
  }
  ResultStore store(dir.path);
  EXPECT_EQ(store.stats().loaded, 1);
  EXPECT_EQ(store.stats().corrupt, 1);
}

TEST(ResultStore, WarmRerunHitsDiskAndSkipsEigensolves) {
  const TempDir dir("graphio_store_warm");
  std::string cold_output;
  const BatchSummary cold =
      run_jobs(test_jobs(), 2, &cold_output, dir.path.string());
  EXPECT_EQ(cold.ok, 6);
  EXPECT_EQ(cold.store_hits, 0);
  EXPECT_GT(cold.store_misses, 0);
  EXPECT_GT(cold.cache.eigensolves, 0);

  std::string warm_output;
  const BatchSummary warm =
      run_jobs(test_jobs(), 2, &warm_output, dir.path.string());
  EXPECT_EQ(warm.ok, 6);
  EXPECT_EQ(warm.store_misses, 0);
  EXPECT_EQ(warm.store_hits, cold.store_misses);
  EXPECT_DOUBLE_EQ(warm.store_hit_rate(), 1.0);
  EXPECT_EQ(warm.cache.eigensolves, 0);   // the headline guarantee
  EXPECT_EQ(warm.cache.mincut_sweeps, 0);

  // And the results are byte-identical to the cold run's.
  EXPECT_EQ(sorted_lines(cold_output), sorted_lines(warm_output));
}

TEST(ResultStore, ExplicitGraphJobsAreContentAddressed) {
  // A request carrying an explicit Digraph (no buildable spec) must work
  // with the store, and must share warm rows with the equivalent family
  // spec: content-addressing ignores how the request named the graph.
  const TempDir dir("graphio_store_explicit");
  ResultStore store(dir.path);
  SchedulerOptions options;
  options.threads = 1;
  options.store = &store;
  Scheduler scheduler(options);

  Job by_graph;
  by_graph.id = 1;
  by_graph.request.graph = builders::fft(4);
  by_graph.request.name = "anonymous-dag";
  by_graph.request.memories = {4};
  by_graph.request.methods = {"spectral"};
  const JobResult cold = scheduler.run_one(by_graph);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.store_misses, 1);
  EXPECT_EQ(cold.report.vertices, builders::fft(4).num_vertices());

  Job by_spec;
  by_spec.id = 2;
  by_spec.request.spec = "fft:4";
  by_spec.request.memories = {4};
  by_spec.request.methods = {"spectral"};
  const JobResult warm = scheduler.run_one(by_spec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.store_hits, 1);
  EXPECT_EQ(warm.report.rows[0].value, cold.report.rows[0].value);
}

TEST(ResultStore, FailureRowsAreNeverPersisted) {
  // A method that throws out of evaluate() is converted by the Engine to
  // applicable=false, converged=false rows; those must not poison the
  // store (the failure could be transient). Methods whose *deterministic*
  // verdict is "inapplicable" stay converged and cached.
  const TempDir dir("graphio_store_failures");
  const std::string jobs =
      // pebble-exact on 80 vertices: deterministic inapplicability.
      R"({"spec": "fft:4", "memories": [4], "methods": ["pebble-exact"]})"
      "\n";
  const BatchSummary cold = run_jobs(jobs, 1, nullptr, dir.path.string());
  EXPECT_EQ(cold.ok, 1);
  const BatchSummary warm = run_jobs(jobs, 1, nullptr, dir.path.string());
  EXPECT_EQ(warm.store_hits, 1);  // the verdict row was cached

  // An explicit graph whose display name parses as "fft:x" routes the
  // analytic method into int_param("x"), which throws mid-evaluate — the
  // archetype of a row the Engine flags converged=false. It must be
  // reported but never written to the store.
  ResultStore store(dir.path);
  SchedulerOptions options;
  options.threads = 1;
  options.store = &store;
  Scheduler scheduler(options);
  Job job;
  job.id = 7;
  job.request.graph = builders::fft(3);
  job.request.name = "fft:x";
  job.request.memories = {4};
  job.request.methods = {"analytic"};
  const std::int64_t appended_before = store.stats().appended;
  const JobResult first = scheduler.run_one(job);
  ASSERT_TRUE(first.ok);
  ASSERT_EQ(first.report.rows.size(), 1u);
  EXPECT_FALSE(first.report.rows[0].applicable);
  EXPECT_FALSE(first.report.rows[0].converged);
  EXPECT_EQ(store.stats().appended, appended_before);  // nothing persisted
  const JobResult second = scheduler.run_one(job);
  EXPECT_EQ(second.store_hits, 0);  // recomputed, not served from disk
}

TEST(ResultStore, SharedAcrossSpecSpellings) {
  // fft:4 via the family builder and via an edgelist file have the same
  // fingerprint, so one warms the store for the other.
  const TempDir dir("graphio_store_spelling");
  const std::filesystem::path gel = dir.path / "g.gel";
  std::filesystem::create_directories(dir.path);
  {
    std::ofstream out(gel);
    const Digraph g = builders::fft(4);
    out << "graphio-edgelist 1\nn " << g.num_vertices() << "\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId c : g.children(v)) out << "e " << v << " " << c << "\n";
  }
  const std::string store_dir = (dir.path / "store").string();
  BatchSummary family = run_jobs(
      R"({"spec": "fft:4", "memories": [4], "methods": ["spectral"]})"
      "\n",
      1, nullptr, store_dir);
  EXPECT_EQ(family.store_misses, 1);
  BatchSummary file = run_jobs(
      R"({"spec": ")" + gel.string() + R"(", "memories": [4], "methods": ["spectral"]})"
      "\n",
      1, nullptr, store_dir);
  EXPECT_EQ(file.store_hits, 1);
  EXPECT_EQ(file.cache.eigensolves, 0);
}

// -------------------------------------------------------------- serve loop

TEST(BatchSession, ServeLoopAnswersLineByLine) {
  BatchSession session(BatchOptions{.threads = 1});
  std::istringstream in(
      R"({"spec": "inner:3", "memories": [4], "methods": ["spectral"]})"
      "\n"
      "garbage\n"
      R"({"spec": "inner:3", "memories": [8], "methods": ["spectral"]})"
      "\n");
  std::ostringstream out;
  const BatchSummary summary = session.serve(in, out);
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.rejected_lines, 1);
  const std::vector<std::string> lines = sorted_lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) EXPECT_TRUE(io::json_valid(line));
  // The second request reuses the first's spectrum (same worker Engine).
  EXPECT_GT(summary.cache.hits, 0);
}

}  // namespace
}  // namespace graphio::serve
