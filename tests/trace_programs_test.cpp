// Traced programs vs direct builders: two independent constructions of
// each evaluation graph must agree on structure and on the bound itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/trace/programs.hpp"

namespace graphio::trace {
namespace {

std::vector<std::pair<std::int64_t, std::int64_t>> degree_profile(
    const Digraph& g) {
  std::vector<std::pair<std::int64_t, std::int64_t>> profile;
  profile.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    profile.emplace_back(g.in_degree(v), g.out_degree(v));
  std::sort(profile.begin(), profile.end());
  return profile;
}

/// Structural agreement: counts, degree profiles, and the low end of the
/// Laplacian spectrum (a strong isomorphism invariant).
void expect_structurally_equal(const Digraph& a, const Digraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.sources().size(), b.sources().size());
  EXPECT_EQ(a.sinks().size(), b.sinks().size());
  EXPECT_EQ(degree_profile(a), degree_profile(b));
  const auto sa =
      la::symmetric_eigenvalues(dense_laplacian(a, LaplacianKind::kPlain));
  const auto sb =
      la::symmetric_eigenvalues(dense_laplacian(b, LaplacianKind::kPlain));
  const std::size_t check = std::min<std::size_t>(sa.size(), 40);
  for (std::size_t i = 0; i < check; ++i)
    EXPECT_NEAR(sa[i], sb[i], 1e-8) << "eigenvalue " << i;
}

TEST(TracedPrograms, FftMatchesButterflyBuilderExactly) {
  for (int l : {1, 2, 3, 4}) {
    const Digraph traced = traced_fft(l);
    const Digraph built = builders::fft(l);
    ASSERT_EQ(traced.num_vertices(), built.num_vertices()) << l;
    // Identical construction order ⇒ identical ids; compare edges 1:1.
    for (VertexId v = 0; v < built.num_vertices(); ++v) {
      std::vector<VertexId> pa(traced.parents(v).begin(),
                               traced.parents(v).end());
      std::vector<VertexId> pb(built.parents(v).begin(),
                               built.parents(v).end());
      std::sort(pa.begin(), pa.end());
      std::sort(pb.begin(), pb.end());
      ASSERT_EQ(pa, pb) << "vertex " << v << " at level " << l;
    }
  }
}

TEST(TracedPrograms, MatmulMatchesBuilderStructurally) {
  using builders::Reduction;
  const std::pair<ReduceShape, Reduction> shapes[] = {
      {ReduceShape::kNary, Reduction::kNary},
      {ReduceShape::kChain, Reduction::kChain},
      {ReduceShape::kBinaryTree, Reduction::kBinaryTree},
  };
  for (const auto& [trace_shape, build_shape] : shapes) {
    expect_structurally_equal(traced_matmul(3, trace_shape),
                              builders::naive_matmul(3, build_shape));
  }
}

TEST(TracedPrograms, StrassenMatchesBuilderStructurally) {
  expect_structurally_equal(traced_strassen(2), builders::strassen_matmul(2));
  expect_structurally_equal(traced_strassen(4), builders::strassen_matmul(4));
}

TEST(TracedPrograms, BhkMatchesHypercubeBuilderStructurally) {
  expect_structurally_equal(traced_bhk(3), builders::bhk_hypercube(3));
  expect_structurally_equal(traced_bhk(5), builders::bhk_hypercube(5));
}

TEST(TracedPrograms, SpectralBoundsAgreeAcrossConstructionRoutes) {
  // The figure benches could have been driven by either construction.
  {
    const double a = spectral_bound(traced_fft(5), 2).bound;
    const double b = spectral_bound(builders::fft(5), 2).bound;
    EXPECT_NEAR(a, b, 1e-6);
  }
  {
    const double a = spectral_bound(traced_bhk(6), 4).bound;
    const double b = spectral_bound(builders::bhk_hypercube(6), 4).bound;
    EXPECT_NEAR(a, b, 1e-6);
  }
}

TEST(TracedPrograms, HornerIsAChainOfFmas) {
  const int d = 6;
  const Digraph g = traced_horner(d);
  // Inputs: x + d+1 coefficients; ops: d multiplies + d adds.
  EXPECT_EQ(g.num_vertices(), 1 + (d + 1) + 2 * d);
  EXPECT_EQ(static_cast<int>(g.sinks().size()), 1);
  EXPECT_TRUE(topological_order(g).has_value());
  // x feeds every multiply: out-degree d.
  EXPECT_EQ(g.out_degree(0), d);
}

TEST(TracedPrograms, HornerDegreeZeroIsJustTheConstant) {
  const Digraph g = traced_horner(0);
  EXPECT_EQ(g.num_vertices(), 2);  // x (unused) and c0
  EXPECT_EQ(g.num_edges(), 0);
}

}  // namespace
}  // namespace graphio::trace
