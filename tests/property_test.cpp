// Randomized property sweeps over Erdős–Rényi computation DAGs: every
// invariant the theory promises must hold for arbitrary graphs, not just
// the structured families.
#include <gtest/gtest.h>

#include <algorithm>

#include "graphio/core/partition.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/sim/memsim.hpp"

namespace graphio {
namespace {

struct RandomCase {
  std::int64_t n;
  double p;
  std::uint64_t seed;
};

class RandomGraphProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomGraphProperty, FullTheoremChainOnRandomOrders) {
  const auto [n, p, seed] = GetParam();
  const Digraph g = builders::erdos_renyi_dag(n, p, seed);
  const auto lambda = la::symmetric_eigenvalues(
      dense_laplacian(g, LaplacianKind::kOutDegreeNormalized));

  Prng rng(seed ^ 0xABCD);
  for (int trial = 0; trial < 3; ++trial) {
    const auto order = random_topological_order(g, rng);
    for (std::int64_t k : {2, 5, 11}) {
      if (k > n) continue;
      const double objective = partition_edge_objective(g, order, k);
      // Theorem 2 step.
      EXPECT_GE(static_cast<double>(lemma1_reads_writes(g, order, k)),
                objective - 1e-9);
      // Trace identity.
      EXPECT_NEAR(
          trace_objective(g, order, k, LaplacianKind::kOutDegreeNormalized),
          objective, 1e-8);
      // Spectral relaxation.
      double prefix = 0.0;
      for (std::int64_t i = 0; i < k; ++i)
        prefix += std::max(0.0, lambda[static_cast<std::size_t>(i)]);
      EXPECT_GE(objective, static_cast<double>(n / k) * prefix - 1e-8);
    }
  }
}

TEST_P(RandomGraphProperty, BoundsSandwichSimulatedIo) {
  const auto [n, p, seed] = GetParam();
  const Digraph g = builders::erdos_renyi_dag(n, p, seed);
  const std::int64_t memory = std::max<std::int64_t>(g.max_in_degree(), 4);

  const auto upper = sim::best_schedule_io(g, memory, 3, seed);
  const double thm4 = spectral_bound(g, static_cast<double>(memory)).bound;
  const double thm5 =
      spectral_bound_plain(g, static_cast<double>(memory)).bound;
  const double mincut =
      flow::convex_mincut_bound(g, static_cast<double>(memory)).bound;

  EXPECT_LE(thm4, static_cast<double>(upper.total()) + 1e-6);
  EXPECT_LE(thm5, thm4 + 1e-9);
  EXPECT_LE(mincut, static_cast<double>(upper.total()) + 1e-6);
}

TEST_P(RandomGraphProperty, SimulatorInvariants) {
  const auto [n, p, seed] = GetParam();
  const Digraph g = builders::erdos_renyi_dag(n, p, seed);
  const std::int64_t base = std::max<std::int64_t>(g.max_in_degree(), 2);
  const auto order = *topological_order(g);

  std::int64_t previous = sim::simulate_io(g, order, base).total();
  for (std::int64_t extra : {2, 8, 32}) {
    const std::int64_t current =
        sim::simulate_io(g, order, base + extra).total();
    EXPECT_LE(current, previous);
    previous = current;
  }
  // Unbounded memory ⇒ zero non-trivial I/O.
  EXPECT_EQ(sim::simulate_io(g, order, g.num_vertices() + 1).total(), 0);
}

TEST_P(RandomGraphProperty, ParallelBoundMonotoneInProcessors) {
  const auto [n, p, seed] = GetParam();
  const Digraph g = builders::erdos_renyi_dag(n, p, seed);
  double previous = parallel_spectral_bound(g, 4, 1).bound;
  for (std::int64_t procs : {2, 4}) {
    const double current = parallel_spectral_bound(g, 4, procs).bound;
    EXPECT_LE(current, previous + 1e-12);
    previous = current;
  }
}

TEST_P(RandomGraphProperty, WavefrontCutsAreSchedulerRealizable) {
  // C(v) lower-bounds the live set at the moment v completes under ANY
  // schedule; verify against a direct simulation-derived live-set count.
  const auto [n, p, seed] = GetParam();
  if (n > 80) GTEST_SKIP() << "O(n²) live-set replay";
  const Digraph g = builders::erdos_renyi_dag(n, p, seed);
  Prng rng(seed);
  const auto order = random_topological_order(g, rng);
  std::vector<std::int64_t> position(static_cast<std::size_t>(n));
  for (std::size_t t = 0; t < order.size(); ++t)
    position[static_cast<std::size_t>(order[t])] =
        static_cast<std::int64_t>(t);

  for (std::size_t t = 0; t < order.size(); ++t) {
    // Live set right after computing order[t]: computed values with a
    // consumer still pending.
    std::int64_t live = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (position[static_cast<std::size_t>(u)] >
          static_cast<std::int64_t>(t))
        continue;
      bool needed = false;
      for (VertexId c : g.children(u))
        needed |= position[static_cast<std::size_t>(c)] >
                  static_cast<std::int64_t>(t);
      live += needed ? 1 : 0;
    }
    EXPECT_LE(flow::wavefront_mincut(g, order[t]), live)
        << "vertex " << order[t] << " at step " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphProperty,
    ::testing::Values(RandomCase{40, 0.08, 1}, RandomCase{40, 0.2, 2},
                      RandomCase{80, 0.05, 3}, RandomCase{80, 0.12, 4},
                      RandomCase{140, 0.03, 5}, RandomCase{140, 0.08, 6},
                      RandomCase{220, 0.02, 7}, RandomCase{220, 0.05, 8}),
    [](const ::testing::TestParamInfo<RandomCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(PropertyEdgeCases, SingleVertexAndEmptyGraphs) {
  Digraph empty;
  EXPECT_DOUBLE_EQ(spectral_bound(empty, 1).bound, 0.0);
  Digraph one(1);
  EXPECT_DOUBLE_EQ(spectral_bound(one, 1).bound, 0.0);
  EXPECT_DOUBLE_EQ(flow::convex_mincut_bound(one, 1).bound, 0.0);
  const auto order = *topological_order(one);
  EXPECT_EQ(sim::simulate_io(one, order, 1).total(), 0);
}

TEST(PropertyEdgeCases, DisconnectedGraphBoundsStayValid) {
  // Union of two FFTs: two zero eigenvalues; bounds must survive.
  Digraph g = builders::fft(3);
  const Digraph h = builders::fft(3);
  const VertexId offset = g.num_vertices();
  for (VertexId v = 0; v < h.num_vertices(); ++v) (void)g.add_vertex();
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    for (VertexId c : h.children(v)) g.add_edge(v + offset, c + offset);

  const double lower = spectral_bound(g, 4).bound;
  const auto upper = sim::best_schedule_io(g, 4);
  EXPECT_LE(lower, static_cast<double>(upper.total()) + 1e-6);
}

}  // namespace
}  // namespace graphio
