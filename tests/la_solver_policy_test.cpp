#include <gtest/gtest.h>

#include <string>

#include "graphio/la/solver_policy.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::la {
namespace {

TEST(SolverPolicy, RegistryContainsEveryDocumentedName) {
  const std::vector<std::string> expected{"auto", "dense", "lanczos",
                                          "lobpcg"};
  EXPECT_EQ(solver_policy_ids(), expected);
  for (const std::string& name : expected) {
    const SolverPolicy* policy = find_solver_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
    EXPECT_FALSE(policy->summary().empty());
  }
}

TEST(SolverPolicy, UnknownNameIsNullAndRequireListsRegistered) {
  EXPECT_EQ(find_solver_policy("qr"), nullptr);
  try {
    require_solver_policy("qr");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("qr"), std::string::npos);
    EXPECT_NE(what.find("auto|dense|lanczos|lobpcg"), std::string::npos);
  }
}

TEST(SolverPolicy, AutoPicksDenseAtOrBelowThreshold) {
  const SolverPolicy& policy = require_solver_policy("auto");
  const SolverThresholds t;
  EXPECT_EQ(policy.choose({t.dense_n, 4 * t.dense_n, 100}, t).kind,
            SolverKind::kDense);
  EXPECT_EQ(policy.choose({1, 1, 1}, t).kind, SolverKind::kDense);
  EXPECT_EQ(policy.choose({t.dense_n + 1, 4 * t.dense_n, 100}, t).kind,
            SolverKind::kLanczos);
}

TEST(SolverPolicy, AutoPicksLobpcgOnlyInItsNiche) {
  const SolverPolicy& policy = require_solver_policy("auto");
  const SolverThresholds t;
  // Large, very sparse, tiny h: the LOBPCG niche.
  const SolverProblem niche{t.lobpcg_min_n, 2 * t.lobpcg_min_n,
                            t.lobpcg_max_h};
  EXPECT_EQ(policy.choose(niche, t).kind, SolverKind::kLobpcg);
  // Each violated condition falls back to Lanczos.
  SolverProblem too_many_values = niche;
  too_many_values.h = t.lobpcg_max_h + 1;
  EXPECT_EQ(policy.choose(too_many_values, t).kind, SolverKind::kLanczos);
  SolverProblem too_dense = niche;
  too_dense.nnz =
      static_cast<std::int64_t>(2.0 * t.lobpcg_max_density * niche.n);
  EXPECT_EQ(policy.choose(too_dense, t).kind, SolverKind::kLanczos);
  SolverProblem too_small = niche;
  too_small.n = t.lobpcg_min_n - 1;
  too_small.nnz = 2 * too_small.n;
  // ... unless that drops it below the dense threshold entirely.
  if (too_small.n > t.dense_n)
    EXPECT_EQ(policy.choose(too_small, t).kind, SolverKind::kLanczos);
}

TEST(SolverPolicy, ForcedPoliciesIgnoreShape) {
  const SolverThresholds t;
  const SolverProblem tiny{4, 8, 2};
  EXPECT_EQ(require_solver_policy("lanczos").choose(tiny, t).kind,
            SolverKind::kLanczos);
  EXPECT_EQ(require_solver_policy("lobpcg").choose(tiny, t).kind,
            SolverKind::kLobpcg);
  EXPECT_EQ(require_solver_policy("dense").choose({1 << 20, 1 << 22, 100}, t)
                .kind,
            SolverKind::kDense);
}

TEST(SolverPolicy, ChoicesCarryReasons) {
  const SolverThresholds t;
  EXPECT_FALSE(
      require_solver_policy("auto").choose({10, 20, 4}, t).reason.empty());
  EXPECT_FALSE(
      require_solver_policy("dense").choose({10, 20, 4}, t).reason.empty());
}

}  // namespace
}  // namespace graphio::la
