#include <gtest/gtest.h>

#include <numeric>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/parallel_memsim.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

std::vector<int> all_on_one(const Digraph& g) {
  return std::vector<int>(static_cast<std::size_t>(g.num_vertices()), 0);
}

TEST(ParallelMemsim, SingleProcessorMatchesSerialSimulator) {
  for (const Digraph& g :
       {builders::fft(4), builders::bhk_hypercube(5),
        builders::naive_matmul(3), builders::stencil1d(8, 4)}) {
    const auto order = topological_order(g);
    ASSERT_TRUE(order.has_value());
    const std::int64_t memory = std::max<std::int64_t>(4, g.max_in_degree());
    const sim::ParallelSimResult par =
        sim::simulate_parallel_io(g, *order, all_on_one(g), memory);
    const sim::SimResult serial = sim::simulate_io(g, *order, memory);
    ASSERT_EQ(par.per_processor.size(), 1u);
    EXPECT_EQ(par.per_processor[0].reads, serial.reads);
    EXPECT_EQ(par.per_processor[0].writes, serial.writes);
    EXPECT_EQ(par.per_processor[0].sends, 0);
  }
}

TEST(ParallelMemsim, VertexCountsPartitionTheGraph) {
  const Digraph g = builders::fft(5);
  const auto order = topological_order(g);
  const auto assignment = sim::partition_assignment(
      g, *order, 4, sim::PartitionStrategy::kRoundRobin);
  const sim::ParallelSimResult r =
      sim::simulate_parallel_io(g, *order, assignment, 8);
  std::int64_t total = 0;
  for (const auto& p : r.per_processor) total += p.vertices;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(ParallelMemsim, ContiguousAssignmentBalancesWithinOne) {
  const Digraph g = builders::bhk_hypercube(6);  // 64 vertices
  const auto order = topological_order(g);
  const auto assignment = sim::partition_assignment(
      g, *order, 5, sim::PartitionStrategy::kContiguous);
  std::vector<std::int64_t> counts(5, 0);
  for (int owner : assignment) ++counts[static_cast<std::size_t>(owner)];
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*hi - *lo, 13);  // ceil(64/5) = 13; last block may be short
  EXPECT_GT(*lo, 0);
}

TEST(ParallelMemsim, SandwichesTheoremSixOnEvaluationGraphs) {
  // Theorem 6: at least one processor incurs at least the parallel
  // spectral bound, so every simulated execution's busiest processor must
  // sit at or above it.
  for (std::int64_t p : {2, 4, 8}) {
    for (const Digraph& g : {builders::fft(5), builders::bhk_hypercube(7)}) {
      const double memory = 4.0;
      if (static_cast<double>(g.max_in_degree()) > memory) continue;
      const SpectralBound lower =
          parallel_spectral_bound(g, memory, p);
      const sim::ParallelSimResult upper = sim::best_parallel_schedule_io(
          g, static_cast<std::int64_t>(memory), p);
      EXPECT_LE(lower.bound, static_cast<double>(upper.max_total()))
          << "p=" << p << " n=" << g.num_vertices();
    }
  }
}

TEST(ParallelMemsim, RemotePullChargesReaderAndUnwrittenHolder) {
  // Path 0 -> 1 with the two vertices on different processors: processor 1
  // must read 0's value (1 read), pulling it straight out of processor 0's
  // fast memory (1 send); nothing is ever written.
  const Digraph g = builders::path(2);
  const std::vector<VertexId> order{0, 1};
  const std::vector<int> assignment{0, 1};
  const sim::ParallelSimResult r =
      sim::simulate_parallel_io(g, order, assignment, 2);
  EXPECT_EQ(r.per_processor[1].reads, 1);
  EXPECT_EQ(r.per_processor[0].sends, 1);
  EXPECT_EQ(r.per_processor[0].writes, 0);
  EXPECT_EQ(r.per_processor[1].writes, 0);
  EXPECT_EQ(r.sum_total(), 2);
}

TEST(ParallelMemsim, StarSourceStaysResidentAndServesPeerPulls) {
  // Star 0 -> {1, 2, 3}: sinks never occupy a slot, so owner 0 keeps the
  // hub value in fast memory forever — it is never written, and each
  // remote consumer's read is a P2P pull charged to the holder as a send.
  const Digraph g = builders::star(4);
  const std::vector<VertexId> order{0, 1, 2, 3};
  const std::vector<int> assignment{0, 0, 1, 2};
  const sim::ParallelSimResult r =
      sim::simulate_parallel_io(g, order, assignment, 1);
  EXPECT_EQ(r.per_processor[0].writes, 0);
  EXPECT_EQ(r.per_processor[0].sends, 2);
  EXPECT_EQ(r.per_processor[1].reads, 1);
  EXPECT_EQ(r.per_processor[2].reads, 1);
}

TEST(ParallelMemsim, WrittenValuesAreReadFromSlowMemoryWithoutSends) {
  // Two producers on processor 0 with memory 1: computing the second
  // evicts the first (live, unwritten -> one write). Its remote consumer
  // then reads from slow memory with no send; the second producer's value
  // is still resident, so its consumer's read is a P2P pull.
  Digraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  const std::vector<VertexId> order{0, 1, 2, 3};
  const std::vector<int> assignment{0, 0, 1, 1};
  const sim::ParallelSimResult r =
      sim::simulate_parallel_io(g, order, assignment, 1);
  EXPECT_EQ(r.per_processor[0].writes, 1);  // vertex 0 evicted live
  EXPECT_EQ(r.per_processor[0].sends, 1);   // vertex 1 pulled directly
  EXPECT_EQ(r.per_processor[1].reads, 2);
}

TEST(ParallelMemsim, MorProcessorsNeverIncreaseTheBusiestLoadOnFft) {
  // Splitting work can only shed load from the busiest processor on this
  // family (communication stays bounded by the butterfly's degree).
  const Digraph g = builders::fft(5);
  const sim::ParallelSimResult p1 = sim::best_parallel_schedule_io(g, 4, 1);
  const sim::ParallelSimResult p4 = sim::best_parallel_schedule_io(g, 4, 4);
  EXPECT_LE(p4.max_total(), p1.max_total() + g.num_vertices());
  EXPECT_GT(p4.per_processor.size(), p1.per_processor.size());
}

TEST(ParallelMemsim, RejectsBadInputs) {
  const Digraph g = builders::path(4);
  const auto order = topological_order(g);
  EXPECT_THROW(sim::simulate_parallel_io(g, *order, {0, 0, 0}, 2),
               contract_error);  // wrong assignment size
  EXPECT_THROW(sim::simulate_parallel_io(g, *order, {0, -1, 0, 0}, 2),
               contract_error);  // negative owner
  EXPECT_THROW(
      sim::simulate_parallel_io(g, {3, 2, 1, 0}, all_on_one(g), 2),
      contract_error);  // non-topological order
  EXPECT_THROW(sim::partition_assignment(g, *order, 0,
                                         sim::PartitionStrategy::kContiguous),
               contract_error);
}

TEST(ParallelMemsim, LruPolicyRunsAndStaysAboveBelady) {
  const Digraph g = builders::fft(4);
  const auto order = topological_order(g);
  const auto assignment = sim::partition_assignment(
      g, *order, 2, sim::PartitionStrategy::kContiguous);
  sim::SimOptions lru;
  lru.policy = sim::EvictionPolicy::kLru;
  const auto belady = sim::simulate_parallel_io(g, *order, assignment, 3);
  const auto with_lru =
      sim::simulate_parallel_io(g, *order, assignment, 3, lru);
  EXPECT_GE(with_lru.sum_total(), belady.sum_total());
}

class ParallelSandwichSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(ParallelSandwichSweep, HypercubeBoundBelowSimulatedMax) {
  const auto [p, memory] = GetParam();
  const Digraph g = builders::bhk_hypercube(7);
  if (g.max_in_degree() > memory) GTEST_SKIP();
  const SpectralBound lower =
      parallel_spectral_bound(g, static_cast<double>(memory), p);
  const sim::ParallelSimResult upper =
      sim::best_parallel_schedule_io(g, memory, p);
  EXPECT_LE(lower.bound, static_cast<double>(upper.max_total()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSandwichSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 3, 8, 16),
                       ::testing::Values<std::int64_t>(8, 16, 32)),
    [](const ::testing::TestParamInfo<std::tuple<std::int64_t, std::int64_t>>&
           param_info) {
      return "p" + std::to_string(std::get<0>(param_info.param)) + "_m" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace graphio
