// Theorem 6: the parallel spectral bound.
#include <gtest/gtest.h>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(ParallelBound, OneProcessorReducesToTheorem4) {
  for (const Digraph& g : {builders::fft(5), builders::bhk_hypercube(6)}) {
    const SpectralBound serial = spectral_bound(g, 4);
    const SpectralBound p1 = parallel_spectral_bound(g, 4, 1);
    EXPECT_DOUBLE_EQ(serial.bound, p1.bound);
    EXPECT_EQ(serial.best_k, p1.best_k);
  }
}

TEST(ParallelBound, MonotoneNonIncreasingInProcessors) {
  const Digraph g = builders::bhk_hypercube(7);
  double previous = parallel_spectral_bound(g, 2, 1).bound;
  for (std::int64_t p : {2, 4, 8, 16}) {
    const double current = parallel_spectral_bound(g, 2, p).bound;
    EXPECT_LE(current, previous) << "p=" << p;
    previous = current;
  }
}

TEST(ParallelBound, FloorMatchesHandComputation) {
  // Directly check ⌊n/(kp)⌋ against bound_from_spectrum on a fixed
  // spectrum: n=100, λ={0,1}, M=0, p=3, k=2 → ⌊100/6⌋·1 = 16.
  const std::vector<double> lambda{0.0, 1.0};
  const BoundOverK b = bound_from_spectrum(lambda, 100, 0.0, 3);
  EXPECT_DOUBLE_EQ(b.bound, 16.0);
}

TEST(ParallelBound, VanishesWhenProcessorsExceedVertices) {
  const Digraph g = builders::fft(4);
  const SpectralBound b =
      parallel_spectral_bound(g, 1, g.num_vertices() + 1);
  EXPECT_DOUBLE_EQ(b.bound, 0.0);  // ⌊n/(kp)⌋ = 0 for every k
}

TEST(ParallelBound, RejectsBadProcessorCount) {
  EXPECT_THROW(parallel_spectral_bound(builders::path(4), 1, 0),
               contract_error);
}

TEST(ParallelBound, StillPositiveForModestParallelism) {
  // The hypercube keeps a positive per-processor bound at small M.
  const Digraph g = builders::bhk_hypercube(8);
  EXPECT_GT(parallel_spectral_bound(g, 2, 2).bound, 0.0);
}

}  // namespace
}  // namespace graphio
