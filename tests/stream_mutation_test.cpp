#include <gtest/gtest.h>

#include "graphio/stream/mutation.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::stream {
namespace {

TEST(StreamMutationTest, ParsesEveryOp) {
  const Patch p = patch_from_json_line(
      R"({"patch": [{"op": "add_vertex"},
                    {"op": "add_vertex", "count": 3},
                    {"op": "remove_vertex", "v": 5},
                    {"op": "add_edge", "u": 0, "v": 7},
                    {"op": "remove_edge", "u": 7, "v": 0}],
          "label": "all-ops"})");
  ASSERT_EQ(p.size(), 5);
  EXPECT_EQ(p.label, "all-ops");
  EXPECT_EQ(p.mutations[0].op, MutationOp::kAddVertex);
  EXPECT_EQ(p.mutations[0].count, 1);
  EXPECT_EQ(p.mutations[1].count, 3);
  EXPECT_EQ(p.mutations[2].op, MutationOp::kRemoveVertex);
  EXPECT_EQ(p.mutations[2].v, 5);
  EXPECT_EQ(p.mutations[3].op, MutationOp::kAddEdge);
  EXPECT_EQ(p.mutations[3].u, 0);
  EXPECT_EQ(p.mutations[3].v, 7);
  EXPECT_EQ(p.mutations[4].op, MutationOp::kRemoveEdge);
}

TEST(StreamMutationTest, BareArrayFormParses) {
  const Patch p =
      patch_from_json_line(R"([{"op": "add_edge", "u": 1, "v": 2}])");
  ASSERT_EQ(p.size(), 1);
  EXPECT_TRUE(p.label.empty());
}

TEST(StreamMutationTest, EmptyPatchIsValidNoOp) {
  EXPECT_TRUE(patch_from_json_line(R"({"patch": []})").empty());
}

TEST(StreamMutationTest, RoundTripsThroughJson) {
  Patch p;
  p.mutations.push_back(Mutation::add_vertex(2));
  p.mutations.push_back(Mutation::add_edge(0, 4));
  p.mutations.push_back(Mutation::remove_edge(4, 2));
  p.mutations.push_back(Mutation::remove_vertex(3));
  p.label = "round-trip";
  const Patch back = patch_from_json_line(patch_to_json_line(p));
  ASSERT_EQ(back.size(), p.size());
  EXPECT_EQ(back.label, p.label);
  for (std::size_t i = 0; i < p.mutations.size(); ++i) {
    EXPECT_EQ(back.mutations[i].op, p.mutations[i].op);
    EXPECT_EQ(back.mutations[i].count, p.mutations[i].count);
    EXPECT_EQ(back.mutations[i].u, p.mutations[i].u);
    EXPECT_EQ(back.mutations[i].v, p.mutations[i].v);
  }
}

TEST(StreamMutationTest, RejectsMalformedMutations) {
  // Unknown op, with the known ones listed.
  try {
    patch_from_json_line(R"({"patch": [{"op": "rename", "v": 1}]})");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("add_vertex|remove_vertex"),
              std::string::npos);
  }
  // Unknown keys, missing endpoints, misplaced count, self-loop.
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "add_edge",
      "u": 0, "v": 1, "w": 2}]})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "add_edge",
      "u": 0}]})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "remove_vertex",
      "u": 0, "v": 1}]})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "remove_edge",
      "u": 0, "v": 1, "count": 2}]})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "add_edge",
      "u": 3, "v": 3}]})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "add_vertex",
      "count": 0}]})"),
               contract_error);
  // One line must not be able to allocate unbounded vertices.
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "add_vertex",
      "count": 100000000000}]})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [{"op": "remove_vertex",
      "v": -2}]})"),
               contract_error);
}

TEST(StreamMutationTest, RejectsMalformedPatches) {
  EXPECT_THROW(patch_from_json_line(R"({"label": "no-mutations"})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": [], "extra": 1})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line(R"({"patch": {"op": "add_vertex"}})"),
               contract_error);
  EXPECT_THROW(patch_from_json_line("not json"), contract_error);
}

}  // namespace
}  // namespace graphio::stream
