// Exact optimal I/O (state-space search): hand-checked values on small
// graphs, model invariants, and agreement with the simulator's semantics.
#include <gtest/gtest.h>

#include <tuple>

#include "graphio/exact/enumerate.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::exact {
namespace {

TEST(ExactPebble, SingleVertexCostsNothing) {
  Digraph g(1);
  const ExactResult r = exact_optimal_io(g, 1);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.io, 0);
}

TEST(ExactPebble, PathNeverSpillsWithTwoSlots) {
  // A chain keeps exactly one live value; M = 2 (operand + result) is
  // enough to run I/O-free at any length.
  const ExactResult r = exact_optimal_io(builders::path(10), 2);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.io, 0);
}

TEST(ExactPebble, InnerProductFigure1) {
  // Paper Figure 1: 4 inputs, 2 products, 1 sum. With M = 3 evaluate
  // product-by-product I/O-free; with M = 2 one product must spill
  // (write + read = 2).
  const Digraph g = builders::inner_product(2);
  const ExactResult m3 = exact_optimal_io(g, 3);
  ASSERT_TRUE(m3.complete);
  EXPECT_EQ(m3.io, 0);
  const ExactResult m2 = exact_optimal_io(g, 2);
  ASSERT_TRUE(m2.complete);
  EXPECT_EQ(m2.io, 2);
}

TEST(ExactPebble, DiamondRunsFreeBecauseDeathFreesTheSlot) {
  // 0 → 1, 0 → 2, {1,2} → 3. Even M = 2 suffices: computing 2 is 0's
  // last use, so 0's slot frees exactly when 2 needs one, and 3 is a sink
  // (reported, never stored).
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const ExactResult m2 = exact_optimal_io(g, 2);
  ASSERT_TRUE(m2.complete);
  EXPECT_EQ(m2.io, 0);
}

TEST(ExactPebble, ThreeWayFanOutForcesASpill) {
  // a, b inputs; c = f(a,b); d = f(a,c); e = f(b,c). With M = 2 the three
  // values a, b, c can never coexist, yet each pair is needed — at least
  // one write+read round trip is unavoidable; the search finds exactly 2.
  Digraph g(5);
  g.add_edge(0, 2);  // a → c
  g.add_edge(1, 2);  // b → c
  g.add_edge(0, 3);  // a → d
  g.add_edge(2, 3);  // c → d
  g.add_edge(1, 4);  // b → e
  g.add_edge(2, 4);  // c → e
  const ExactResult m2 = exact_optimal_io(g, 2);
  ASSERT_TRUE(m2.complete);
  EXPECT_EQ(m2.io, 2);
  const ExactResult m3 = exact_optimal_io(g, 3);
  ASSERT_TRUE(m3.complete);
  EXPECT_EQ(m3.io, 0);
}

TEST(ExactPebble, MonotoneInMemory) {
  const Digraph g = builders::fft(2);  // 12 vertices
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t m = 2; m <= 6; ++m) {
    const ExactResult r = exact_optimal_io(g, m);
    ASSERT_TRUE(r.complete) << m;
    EXPECT_LE(r.io, previous) << m;
    previous = r.io;
  }
}

TEST(ExactPebble, LargeMemoryMeansZeroIo) {
  for (const Digraph& g :
       {builders::fft(2), builders::inner_product(3),
        builders::bhk_hypercube(3), builders::binary_tree(3)}) {
    const ExactResult r =
        exact_optimal_io(g, g.num_vertices());
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(r.io, 0);
  }
}

TEST(ExactPebble, RejectsOversizedGraphs) {
  EXPECT_THROW(exact_optimal_io(builders::path(22), 2), contract_error);
}

TEST(ExactPebble, RejectsCycles) {
  EXPECT_THROW(exact_optimal_io(builders::cycle(4), 2), contract_error);
}

TEST(ExactPebble, RejectsTooSmallMemory) {
  // The 4-ary reduction vertex needs all 4 operands resident.
  Digraph g(5);
  for (VertexId v = 0; v < 4; ++v) g.add_edge(v, 4);
  EXPECT_THROW(exact_optimal_io(g, 3), contract_error);
  EXPECT_EQ(exact_optimal_io(g, 4).io, 0);
}

TEST(ExactPebble, StateCapReportsIncomplete) {
  ExactOptions tiny;
  tiny.max_states = 3;
  const ExactResult r = exact_optimal_io(builders::fft(2), 2, tiny);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.io, -1);
}

TEST(ExactPebble, ReconstructedOrderIsTopological) {
  ExactOptions opts;
  opts.reconstruct_order = true;
  const Digraph g = builders::inner_product(3);
  const ExactResult r = exact_optimal_io(g, 3, opts);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(static_cast<std::int64_t>(r.order.size()), g.num_vertices());
  EXPECT_TRUE(is_topological(g, r.order));
}

TEST(ExactPebble, SimulatorNeverBeatsExactSearch) {
  // The search optimizes eviction decisions too, so the best simulated
  // schedule (Belady) is an upper bound — often strictly above.
  for (std::int64_t m : {2, 3, 4}) {
    for (const Digraph& g :
         {builders::inner_product(3), builders::fft(2),
          builders::bhk_hypercube(3)}) {
      if (g.max_in_degree() > m) continue;
      const ExactResult exact = exact_optimal_io(g, m);
      ASSERT_TRUE(exact.complete);
      EXPECT_LE(exact.io, sim::best_schedule_io(g, m).total());
    }
  }
}

TEST(ExactPebble, MatchesExhaustiveOrderSearchWhenEvictionIsForced) {
  // On graphs where at most one value is ever evictable, Belady's choice
  // is vacuous and the exhaustive order sweep must agree exactly.
  const Digraph g = builders::inner_product(2);
  EXPECT_EQ(exact_optimal_io(g, 2).io,
            min_simulated_io_over_all_orders(g, 2));
}

// --- enumeration helpers -----------------------------------------------

TEST(Enumerate, CountsOrdersOfAnAntichain) {
  // 4 isolated vertices: 4! orders.
  EXPECT_EQ(count_topological_orders(Digraph(4), 100), 24);
}

TEST(Enumerate, CountsOrdersOfAChain) {
  EXPECT_EQ(count_topological_orders(builders::path(6), 100), 1);
}

TEST(Enumerate, CapStopsEarly) {
  EXPECT_EQ(count_topological_orders(Digraph(8), 10), 10);
}

TEST(Enumerate, VisitSeesValidOrders) {
  const Digraph g = builders::inner_product(2);
  std::int64_t seen = 0;
  for_each_topological_order(g, [&](const std::vector<VertexId>& order) {
    EXPECT_TRUE(is_topological(g, order));
    ++seen;
    return true;
  });
  EXPECT_GT(seen, 0);
}

// --- brute-force wavefront vs the Dinic reduction ------------------------

class WavefrontAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WavefrontAgreement, BruteForceMatchesMaxFlow) {
  const auto [kind, size] = GetParam();
  Digraph g;
  switch (kind) {
    case 0: g = builders::fft(size); break;
    case 1: g = builders::bhk_hypercube(size); break;
    case 2: g = builders::inner_product(size); break;
    case 3: g = builders::binary_tree(size); break;
    default: g = builders::grid(size, size); break;
  }
  ASSERT_LE(g.num_vertices(), 24);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(flow::wavefront_mincut(g, v), brute_force_wavefront(g, v))
        << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, WavefrontAgreement,
    ::testing::Values(std::make_tuple(0, 2), std::make_tuple(1, 3),
                      std::make_tuple(1, 4), std::make_tuple(2, 3),
                      std::make_tuple(3, 3), std::make_tuple(4, 3),
                      std::make_tuple(4, 4)));

}  // namespace
}  // namespace graphio::exact
