// Serialization: edge-list round trips (including multiplicity and names),
// parser failure injection, JSON writer discipline, and validator rigor.
#include <gtest/gtest.h>

#include <filesystem>

#include "graphio/graph/builders.hpp"
#include "graphio/io/edgelist.hpp"
#include "graphio/io/json.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::io {
namespace {

bool same_graph(const Digraph& a, const Digraph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    std::vector<VertexId> ca(a.children(v).begin(), a.children(v).end());
    std::vector<VertexId> cb(b.children(v).begin(), b.children(v).end());
    std::sort(ca.begin(), ca.end());
    std::sort(cb.begin(), cb.end());
    if (ca != cb) return false;
    if (a.name(v) != b.name(v)) return false;
  }
  return true;
}

TEST(Edgelist, RoundTripsBuilders) {
  for (const Digraph& g :
       {builders::fft(4), builders::naive_matmul(3),
        builders::bhk_hypercube(4), builders::inner_product(3)}) {
    EXPECT_TRUE(same_graph(g, from_edgelist_string(to_edgelist_string(g))));
  }
}

TEST(Edgelist, RoundTripsParallelEdgesAndNames) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 2);  // x·x-style parallel edge
  g.add_edge(1, 2);
  g.set_name(0, "x");
  g.set_name(2, "x squared plus y");  // names may contain spaces
  const Digraph back = from_edgelist_string(to_edgelist_string(g));
  EXPECT_TRUE(same_graph(g, back));
  EXPECT_EQ(back.name(2), "x squared plus y");
}

TEST(Edgelist, RoundTripsRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Digraph g = builders::erdos_renyi_dag(60, 0.08, seed);
    EXPECT_TRUE(same_graph(g, from_edgelist_string(to_edgelist_string(g))));
  }
}

TEST(Edgelist, EmptyGraphRoundTrips) {
  EXPECT_TRUE(
      same_graph(Digraph(0), from_edgelist_string(to_edgelist_string(Digraph(0)))));
}

TEST(Edgelist, CommentsAndBlankLinesAreIgnored) {
  const Digraph g = from_edgelist_string(
      "graphio-edgelist 1\n"
      "# a comment\n"
      "\n"
      "n 2   # trailing comment\n"
      "e 0 1\n");
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Edgelist, RejectsMalformedDocuments) {
  EXPECT_THROW(from_edgelist_string(""), contract_error);
  EXPECT_THROW(from_edgelist_string("bogus 1\n"), contract_error);
  EXPECT_THROW(from_edgelist_string("graphio-edgelist 2\nn 1\n"),
               contract_error);
  EXPECT_THROW(from_edgelist_string("graphio-edgelist 1\ne 0 1\n"),
               contract_error);  // edge before n
  EXPECT_THROW(from_edgelist_string("graphio-edgelist 1\nn 2\nn 2\n"),
               contract_error);  // duplicate n
  EXPECT_THROW(from_edgelist_string("graphio-edgelist 1\nn 2\ne 0 5\n"),
               contract_error);  // id out of range
  EXPECT_THROW(from_edgelist_string("graphio-edgelist 1\nn 2\ne 1 1\n"),
               contract_error);  // self loop
  EXPECT_THROW(from_edgelist_string("graphio-edgelist 1\nn 2\nq 0 1\n"),
               contract_error);  // unknown directive
}

TEST(Edgelist, ErrorsCarryLineNumbers) {
  try {
    (void)from_edgelist_string("graphio-edgelist 1\nn 2\ne 0 9\n");
    FAIL() << "expected throw";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Edgelist, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "graphio_edgelist_test.txt";
  const Digraph g = builders::fft(3);
  save_edgelist(path, g);
  EXPECT_TRUE(same_graph(g, load_edgelist(path)));
  std::filesystem::remove(path);
}

// --- JSON writer -----------------------------------------------------------

TEST(Json, WritesScalarsAndContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("graphio");
  w.key("n").value(std::int64_t{42});
  w.key("pi").value(3.25);
  w.key("ok").value(true);
  w.key("missing").null();
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.end_object();
  const std::string text = w.str();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"n\":42"), std::string::npos);
  EXPECT_NE(text.find("\"xs\":[1,2]"), std::string::npos);
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  JsonWriter w;
  w.value("a\"b\\c\nd\te\x01");
  const std::string text = w.str();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), contract_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), contract_error);  // two keys in a row
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), contract_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW((void)w.str(), contract_error);  // incomplete document
  }
}

TEST(Json, ValidatorAcceptsValidDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("[1,-2.5,3e8,\"x\",true,false,null]"));
  EXPECT_TRUE(json_valid("{\"a\":{\"b\":[{}]}}"));
  EXPECT_TRUE(json_valid("  42  "));
}

TEST(Json, ValidatorRejectsInvalidDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\"}"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("01"));
  EXPECT_FALSE(json_valid("1 2"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("nul"));
  EXPECT_FALSE(json_valid("[\"bad\\escape\"]"));
}

TEST(Json, GraphConversionIsValidAndComplete) {
  Digraph g = builders::inner_product(2);
  g.set_name(0, "x0");
  const std::string text = graph_to_json(g);
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"n\":7"), std::string::npos);
  EXPECT_NE(text.find("\"names\""), std::string::npos);
}

TEST(Json, RoundTripsThroughValidatorForAllBuilders) {
  for (const Digraph& g :
       {builders::fft(3), builders::strassen_matmul(2),
        builders::bhk_hypercube(3), builders::grid(3, 4)}) {
    EXPECT_TRUE(json_valid(graph_to_json(g)));
  }
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("  7  ").as_int(), 7);  // surrounding ws
}

TEST(JsonValue, ParsesContainersPreservingOrder) {
  const JsonValue v = JsonValue::parse(
      R"({"b": [1, 2.5, "x"], "a": {"nested": true}, "n": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  const JsonValue& array = v.at("b");
  ASSERT_TRUE(array.is_array());
  ASSERT_EQ(array.size(), 3u);
  EXPECT_EQ(array.at(std::size_t{0}).as_int(), 1);
  EXPECT_DOUBLE_EQ(array.at(1).as_double(), 2.5);
  EXPECT_EQ(array.at(2).as_string(), "x");
  EXPECT_TRUE(v.at("a").at("nested").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_EQ(v.get("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), contract_error);
}

TEST(JsonValue, UnescapesStrings) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\n\tA")").as_string(),
            "a\"b\\c\n\tA");
}

TEST(JsonValue, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fft:5");
  w.key("pi").value(3.141592653589793);
  w.key("big").value(std::int64_t{1} << 40);
  w.key("flags").begin_array().value(true).value(false).end_array();
  w.end_object();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("name").as_string(), "fft:5");
  EXPECT_DOUBLE_EQ(v.at("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(v.at("big").as_int(), std::int64_t{1} << 40);
  EXPECT_TRUE(v.at("flags").at(std::size_t{0}).as_bool());
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), contract_error);
  EXPECT_THROW(JsonValue::parse("{"), contract_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), contract_error);
  EXPECT_THROW(JsonValue::parse("{\"a\"}"), contract_error);
  EXPECT_THROW(JsonValue::parse("1 2"), contract_error);
  EXPECT_THROW(JsonValue::parse("\"open"), contract_error);
  EXPECT_THROW(JsonValue::parse("tru"), contract_error);
}

TEST(JsonValue, TypeMismatchesThrow) {
  const JsonValue v = JsonValue::parse(R"({"a": 1.5})");
  EXPECT_THROW((void)v.at("a").as_string(), contract_error);
  EXPECT_THROW((void)v.at("a").as_int(), contract_error);  // non-integral
  // Out-of-int64-range numbers must reject, not overflow (UB).
  EXPECT_THROW((void)JsonValue::parse("1e300").as_int(), contract_error);
  EXPECT_THROW((void)JsonValue::parse("-1e300").as_int(), contract_error);
  EXPECT_THROW((void)v.at("a").items(), contract_error);
  EXPECT_THROW((void)v.as_double(), contract_error);
  EXPECT_THROW((void)v.at(std::size_t{0}), contract_error);  // object, not array
}

}  // namespace
}  // namespace graphio::io
