#include <gtest/gtest.h>

#include <cmath>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {
namespace {

TEST(BoundFromSpectrum, HandComputedExample) {
  // λ = {0, 1, 2}, n = 10, M = 1:
  //   k=1: 10·0 − 2 = −2;  k=2: 5·1 − 4 = 1;  k=3: 3·3 − 6 = 3.
  const std::vector<double> lambda{0.0, 1.0, 2.0};
  const BoundOverK b = bound_from_spectrum(lambda, 10, 1.0);
  EXPECT_DOUBLE_EQ(b.bound, 3.0);
  EXPECT_EQ(b.best_k, 3);
}

TEST(BoundFromSpectrum, ClampsAtZero) {
  const std::vector<double> lambda{0.0, 0.1};
  const BoundOverK b = bound_from_spectrum(lambda, 4, 100.0);
  EXPECT_DOUBLE_EQ(b.bound, 0.0);
  EXPECT_EQ(b.best_k, 0);
}

TEST(BoundFromSpectrum, FloorsSegmentCount) {
  // n = 7, k = 2 → ⌊7/2⌋ = 3 segments of the smaller size.
  const std::vector<double> lambda{0.0, 2.0};
  const BoundOverK b = bound_from_spectrum(lambda, 7, 0.0);
  EXPECT_DOUBLE_EQ(b.bound, 3.0 * 2.0);
}

TEST(BoundFromSpectrum, ProcessorsShrinkSegments) {
  const std::vector<double> lambda{0.0, 1.0, 2.0};
  const BoundOverK serial = bound_from_spectrum(lambda, 64, 1.0, 1);
  const BoundOverK parallel4 = bound_from_spectrum(lambda, 64, 1.0, 4);
  EXPECT_GT(serial.bound, parallel4.bound);
}

TEST(BoundFromSpectrum, ScaleActsLinearlyOnEigenvalueTerm) {
  const std::vector<double> lambda{0.0, 4.0};
  const BoundOverK full = bound_from_spectrum(lambda, 8, 0.0, 1, 1.0);
  const BoundOverK half = bound_from_spectrum(lambda, 8, 0.0, 1, 0.5);
  EXPECT_DOUBLE_EQ(half.bound, full.bound / 2.0);
}

TEST(BoundFromSpectrum, RejectsUnsortedInput) {
  const std::vector<double> lambda{1.0, 0.0};
  EXPECT_THROW(bound_from_spectrum(lambda, 4, 1.0), contract_error);
}

TEST(BoundFromSpectrum, NegativeNoiseIsClampedConservatively) {
  // Tiny negative eigenvalues (numerical noise on PSD matrices) must not
  // reduce partial sums below their true non-negative values.
  const std::vector<double> noisy{-1e-13, 1.0};
  const std::vector<double> clean{0.0, 1.0};
  const BoundOverK a = bound_from_spectrum(noisy, 10, 0.0);
  const BoundOverK b = bound_from_spectrum(clean, 10, 0.0);
  EXPECT_DOUBLE_EQ(a.bound, b.bound);
}

TEST(SpectralBound, MonotoneNonIncreasingInMemory) {
  const Digraph g = builders::fft(6);
  double previous = spectral_bound(g, 2).bound;
  for (double m : {4.0, 8.0, 16.0, 64.0}) {
    const double current = spectral_bound(g, m).bound;
    EXPECT_LE(current, previous) << "M=" << m;
    previous = current;
  }
}

TEST(SpectralBound, PlainTheorem5NeverExceedsTheorem4) {
  // L̃ ⪰ L/dout_max in the PSD order, so eigenvalue-wise sums dominate.
  for (const Digraph& g :
       {builders::fft(5), builders::bhk_hypercube(6),
        builders::naive_matmul(4), builders::strassen_matmul(4)}) {
    for (double m : {2.0, 8.0}) {
      EXPECT_LE(spectral_bound_plain(g, m).bound,
                spectral_bound(g, m).bound + 1e-9);
    }
  }
}

TEST(SpectralBound, DenseAndLanczosBackendsAgree) {
  const Digraph g = builders::fft(6);  // 448 vertices
  SpectralOptions dense;
  dense.backend = EigenBackend::kDense;
  SpectralOptions sparse;
  sparse.backend = EigenBackend::kLanczos;
  sparse.lanczos.dense_fallback = 0;
  const SpectralBound a = spectral_bound(g, 4, dense);
  const SpectralBound b = spectral_bound(g, 4, sparse);
  ASSERT_TRUE(b.eigensolver_converged);
  EXPECT_NEAR(a.bound, b.bound, 1e-5 * std::max(1.0, a.bound));
  EXPECT_EQ(a.best_k, b.best_k);
}

TEST(SpectralBound, ReportsEigenvaluesAscending) {
  const SpectralBound b = spectral_bound(builders::bhk_hypercube(6), 4);
  ASSERT_FALSE(b.eigenvalues.empty());
  EXPECT_NEAR(b.eigenvalues.front(), 0.0, 1e-9);
  for (std::size_t i = 1; i < b.eigenvalues.size(); ++i)
    EXPECT_LE(b.eigenvalues[i - 1], b.eigenvalues[i] + 1e-12);
}

TEST(SpectralBound, HonorsMaxEigenvalues) {
  SpectralOptions opts;
  opts.max_eigenvalues = 7;
  const SpectralBound b = spectral_bound(builders::fft(5), 4, opts);
  EXPECT_EQ(b.eigenvalues.size(), 7u);
  EXPECT_LE(b.best_k, 7);
}

TEST(SpectralBound, EdgelessAndTinyGraphs) {
  const Digraph isolated(5);
  EXPECT_DOUBLE_EQ(spectral_bound(isolated, 2).bound, 0.0);
  EXPECT_DOUBLE_EQ(spectral_bound_plain(isolated, 2).bound, 0.0);
  Digraph single(1);
  EXPECT_DOUBLE_EQ(spectral_bound(single, 1).bound, 0.0);
}

TEST(SpectralBound, RejectsNegativeMemory) {
  EXPECT_THROW(spectral_bound(builders::path(4), -1.0), contract_error);
}

TEST(SpectralBound, PositiveForConnectedGraphsWithTinyMemory) {
  // Section 5.1: the hypercube bound is positive while M ≤ 2^l/(l+1)².
  const Digraph g = builders::bhk_hypercube(8);  // threshold ≈ 3.16
  EXPECT_GT(spectral_bound(g, 2).bound, 0.0);
}

TEST(SpectralBoundsMulti, MatchesPerMemoryCallsOnDensePath) {
  const Digraph g = builders::fft(5);
  const std::vector<double> memories{4.0, 8.0, 16.0};
  const std::vector<SpectralBound> multi = spectral_bounds(g, memories);
  ASSERT_EQ(multi.size(), memories.size());
  for (std::size_t i = 0; i < memories.size(); ++i) {
    const SpectralBound single = spectral_bound(g, memories[i]);
    EXPECT_DOUBLE_EQ(multi[i].bound, single.bound);
    EXPECT_EQ(multi[i].best_k, single.best_k);
    EXPECT_EQ(multi[i].eigenvalues, multi[0].eigenvalues)
        << "all entries share one spectrum";
  }
}

TEST(SpectralBoundsMulti, SoundOnSparsePathForEveryMemory) {
  // Lanczos adaptivity must grow h until *every* memory size's best k is
  // interior; the multi result can only match or beat the single-call
  // bound (both are valid lower bounds from the same spectrum family).
  SpectralOptions options;
  options.backend = EigenBackend::kLanczos;
  const Digraph g = builders::bhk_hypercube(9);
  const std::vector<double> memories{2.0, 16.0, 64.0};
  const std::vector<SpectralBound> multi =
      spectral_bounds(g, memories, options);
  for (std::size_t i = 0; i < memories.size(); ++i) {
    const SpectralBound single = spectral_bound(g, memories[i], options);
    EXPECT_NEAR(multi[i].bound, single.bound,
                1e-6 * std::max(1.0, single.bound));
  }
}

TEST(SpectralBoundsMulti, PlainVariantMatchesTheorem5) {
  const Digraph g = builders::naive_matmul(4);
  const std::vector<double> memories{8.0, 32.0};
  const std::vector<SpectralBound> multi = spectral_bounds_plain(g, memories);
  for (std::size_t i = 0; i < memories.size(); ++i)
    EXPECT_DOUBLE_EQ(multi[i].bound,
                     spectral_bound_plain(g, memories[i]).bound);
}

TEST(SpectralBoundsMulti, EmptyMemoryListAndEdgelessGraph) {
  const Digraph g = builders::path(6);
  EXPECT_TRUE(spectral_bounds(g, {}).empty());
  const Digraph isolated(4);
  const std::vector<double> memories{1.0, 2.0};
  for (const SpectralBound& b : spectral_bounds_plain(isolated, memories))
    EXPECT_DOUBLE_EQ(b.bound, 0.0);
}

TEST(SpectralBoundsMulti, MemoriesNeedNotBeSorted) {
  const Digraph g = builders::fft(4);
  const std::vector<double> memories{16.0, 4.0, 8.0};
  const std::vector<SpectralBound> multi = spectral_bounds(g, memories);
  EXPECT_GE(multi[1].bound, multi[2].bound);  // M=4 bound ≥ M=8 bound
  EXPECT_GE(multi[2].bound, multi[0].bound);  // M=8 bound ≥ M=16 bound
}

}  // namespace
}  // namespace graphio
