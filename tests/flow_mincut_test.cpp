#include <gtest/gtest.h>

#include <set>

#include "graphio/flow/convex_mincut.hpp"
#include "graphio/flow/partitioner.hpp"
#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::flow {
namespace {

TEST(WavefrontMinCut, PathGraphHasUnitWavefronts) {
  const Digraph g = builders::path(4);
  EXPECT_EQ(wavefront_mincut(g, 0), 1);
  EXPECT_EQ(wavefront_mincut(g, 1), 1);
  EXPECT_EQ(wavefront_mincut(g, 2), 1);
  EXPECT_EQ(wavefront_mincut(g, 3), 0);  // sink
}

TEST(WavefrontMinCut, DiamondGraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(wavefront_mincut(g, 0), 1);
  EXPECT_EQ(wavefront_mincut(g, 1), 2);
  EXPECT_EQ(wavefront_mincut(g, 2), 2);
  EXPECT_EQ(wavefront_mincut(g, 3), 0);
}

TEST(WavefrontMinCut, BroadcastGatherPicksCheapestClosure) {
  // 0 -> {1,2,3,4} -> 5. For v=1 the best down-closed set is {0,1}:
  // wavefront {0, 1} of size 2 (not the 4-wide closure of all middles).
  Digraph g(6);
  for (VertexId mid = 1; mid <= 4; ++mid) {
    g.add_edge(0, mid);
    g.add_edge(mid, 5);
  }
  EXPECT_EQ(wavefront_mincut(g, 1), 2);
  EXPECT_EQ(wavefront_mincut(g, 0), 1);
  EXPECT_EQ(wavefront_mincut(g, 5), 0);
}

TEST(WavefrontMinCut, InnerProductGraph) {
  const Digraph g = builders::inner_product(2);
  // Products have wavefront 1 ({inputs...product} closes cheaply).
  EXPECT_EQ(wavefront_mincut(g, 4), 1);
  EXPECT_EQ(wavefront_mincut(g, 5), 1);
  EXPECT_EQ(wavefront_mincut(g, 6), 0);
}

TEST(WavefrontMinCut, RejectsBadVertex) {
  const Digraph g = builders::path(3);
  EXPECT_THROW(wavefront_mincut(g, 9), contract_error);
}

TEST(ConvexMinCut, BoundOnPathIsTrivialForAnyMemory) {
  const Digraph g = builders::path(32);
  const auto result = convex_mincut_bound(g, 1.0);
  EXPECT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.bound, 0.0);  // 2·(1 − 1) = 0
  EXPECT_EQ(result.best_cut, 1);
  EXPECT_EQ(result.vertices_processed, 32);
}

TEST(ConvexMinCut, HypercubeGivesPositiveBoundForSmallMemory) {
  const Digraph g = builders::bhk_hypercube(6);
  const auto small = convex_mincut_bound(g, 2.0);
  EXPECT_TRUE(small.completed);
  EXPECT_GT(small.bound, 0.0);
  EXPECT_DOUBLE_EQ(small.bound,
                   2.0 * (static_cast<double>(small.best_cut) - 2.0));

  // Monotone non-increasing in M.
  const auto large = convex_mincut_bound(g, 8.0);
  EXPECT_LE(large.bound, small.bound);
  EXPECT_EQ(small.best_cut, large.best_cut);  // cut independent of M
}

TEST(ConvexMinCut, SerialAndParallelAgree) {
  const Digraph g = builders::fft(4);
  ConvexMinCutOptions serial;
  serial.parallel = false;
  const auto a = convex_mincut_bound(g, 4.0, serial);
  const auto b = convex_mincut_bound(g, 4.0);
  EXPECT_DOUBLE_EQ(a.bound, b.bound);
  EXPECT_EQ(a.best_cut, b.best_cut);
}

TEST(ConvexMinCut, TimeBudgetStopsEarlyButStaysValid) {
  const Digraph g = builders::bhk_hypercube(8);
  ConvexMinCutOptions options;
  options.time_budget_seconds = 0.0;  // expire immediately
  const auto result = convex_mincut_bound(g, 2.0, options);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.vertices_processed, g.num_vertices());
  // Whatever was processed still yields a valid (possibly zero) bound.
  EXPECT_GE(result.bound, 0.0);
}

TEST(ConvexMinCut, RejectsNegativeMemory) {
  EXPECT_THROW(convex_mincut_bound(builders::path(3), -1.0), contract_error);
}

TEST(Partitioner, CoversEveryVertexOnceWithinCap) {
  const Digraph g = builders::fft(5);
  const auto parts = bfs_partition(g, 16);
  std::set<VertexId> seen;
  for (const auto& part : parts) {
    EXPECT_LE(static_cast<std::int64_t>(part.size()), 16);
    EXPECT_FALSE(part.empty());
    for (VertexId v : part) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), g.num_vertices());
}

TEST(Partitioner, SinglePartWhenCapIsLarge) {
  const Digraph g = builders::inner_product(3);
  const auto parts = bfs_partition(g, 1000);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(static_cast<std::int64_t>(parts[0].size()), g.num_vertices());
}

TEST(Partitioner, InducedSubgraphKeepsInternalEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<VertexId> keep{1, 2};
  const Digraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.num_vertices(), 2);
  EXPECT_EQ(sub.num_edges(), 1);  // only 1 -> 2 survives
  EXPECT_EQ(sub.children(0)[0], 1);
}

TEST(Partitioner, InducedSubgraphRejectsDuplicates) {
  const Digraph g = builders::path(3);
  const std::vector<VertexId> bad{0, 0};
  EXPECT_THROW(induced_subgraph(g, bad), contract_error);
}

TEST(PartitionedMinCut, ReproducesPaperTrivialityObservation) {
  // Section 6.3: with sub-graphs of ~2M vertices the baseline collapses to
  // zero on complex graphs like the butterfly.
  const Digraph g = builders::fft(6);
  const double memory = 4.0;
  const auto partitioned = partitioned_convex_mincut_bound(
      g, memory, static_cast<std::int64_t>(2 * memory));
  EXPECT_DOUBLE_EQ(partitioned.bound, 0.0);
  // While the unpartitioned sweep is positive at this M.
  const auto full = convex_mincut_bound(g, memory);
  EXPECT_GT(full.bound, 0.0);
}

}  // namespace
}  // namespace graphio::flow
