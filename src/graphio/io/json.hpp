// Minimal streaming JSON writer, validating scanner, and value parser.
//
// The writer emits machine-readable experiment artifacts — graphs, bound
// reports, bench series — without an external JSON dependency. It checks
// nesting discipline at runtime (object keys before values, matching
// closes) so misuse fails loudly in tests rather than producing garbage.
// The scanner is a strict structural validator used by the test suite to
// certify everything the writer (or a bench) produces. JsonValue is the
// read side: the serve subsystem parses JSONL job lines and result-store
// records with it, so the library round-trips its own output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::io {

class JsonWriter {
 public:
  /// Writes into an internal buffer; collect with str().
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document (throws if containers remain open).
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame { kObject, kArray };
  void comma_if_needed();
  void expect_value_allowed();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;
  bool done_ = false;
};

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// A parsed JSON document: one immutable tree of values. Object member
/// order is preserved; duplicate keys keep the first occurrence (lookups
/// are front-to-back). Accessors throw contract_error on type mismatches
/// so malformed job lines surface as one catchable error with context.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON value (trailing non-whitespace is an
  /// error). Throws contract_error with a byte offset on malformed input.
  static JsonValue parse(std::string_view text);

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors (throwing on mismatch). as_int additionally rejects
  /// non-integral numbers.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access. size() also works for objects (member count).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t i) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object access: get() returns nullptr when absent, at() throws.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Structural validation: true iff `text` is one complete, well-formed
/// JSON value (objects, arrays, strings, numbers, true/false/null).
bool json_valid(std::string_view text);

/// Serializes a graph as {"n": ..., "edges": [[u, v], ...],
/// "names": {"id": "name", ...}} (names only when present).
std::string graph_to_json(const Digraph& g);

}  // namespace graphio::io
