// Minimal streaming JSON writer (and validating scanner).
//
// The writer emits machine-readable experiment artifacts — graphs, bound
// reports, bench series — without an external JSON dependency. It checks
// nesting discipline at runtime (object keys before values, matching
// closes) so misuse fails loudly in tests rather than producing garbage.
// The scanner is a strict structural validator used by the test suite to
// certify everything the writer (or a bench) produces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::io {

class JsonWriter {
 public:
  /// Writes into an internal buffer; collect with str().
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document (throws if containers remain open).
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame { kObject, kArray };
  void comma_if_needed();
  void expect_value_allowed();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;
  bool done_ = false;
};

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Structural validation: true iff `text` is one complete, well-formed
/// JSON value (objects, arrays, strings, numbers, true/false/null).
bool json_valid(std::string_view text);

/// Serializes a graph as {"n": ..., "edges": [[u, v], ...],
/// "names": {"id": "name", ...}} (names only when present).
std::string graph_to_json(const Digraph& g);

}  // namespace graphio::io
