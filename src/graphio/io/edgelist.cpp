#include "graphio/io/edgelist.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "graphio/support/contracts.hpp"

namespace graphio::io {

namespace {

[[noreturn]] void fail(std::int64_t line, const std::string& what) {
  throw contract_error("edgelist parse error at line " +
                       std::to_string(line) + ": " + what);
}

}  // namespace

void write_edgelist(std::ostream& out, const Digraph& g) {
  out << "graphio-edgelist 1\n";
  out << "n " << g.num_vertices() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::string& name = g.name(v);
    if (!name.empty()) out << "v " << v << " " << name << "\n";
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId c : g.children(v)) out << "e " << v << " " << c << "\n";
}

Digraph read_edgelist(std::istream& in) {
  std::string line;
  std::int64_t line_no = 0;
  bool saw_header = false;
  bool saw_n = false;
  Digraph g;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;

    if (!saw_header) {
      if (tag != "graphio-edgelist") fail(line_no, "missing header");
      int version = 0;
      if (!(ls >> version) || version != 1)
        fail(line_no, "unsupported version");
      saw_header = true;
      continue;
    }
    if (tag == "n") {
      if (saw_n) fail(line_no, "duplicate n directive");
      std::int64_t n = -1;
      if (!(ls >> n) || n < 0) fail(line_no, "bad vertex count");
      g = Digraph(n);
      saw_n = true;
    } else if (tag == "v") {
      if (!saw_n) fail(line_no, "v before n");
      VertexId v = -1;
      if (!(ls >> v) || !g.contains(v)) fail(line_no, "bad vertex id");
      std::string name;
      std::getline(ls, name);
      if (const auto start = name.find_first_not_of(" \t");
          start != std::string::npos)
        g.set_name(v, name.substr(start));
    } else if (tag == "e") {
      if (!saw_n) fail(line_no, "e before n");
      VertexId u = -1;
      VertexId w = -1;
      if (!(ls >> u >> w) || !g.contains(u) || !g.contains(w))
        fail(line_no, "bad edge endpoint");
      if (u == w) fail(line_no, "self-loop");
      g.add_edge(u, w);
    } else {
      fail(line_no, "unknown directive '" + tag + "'");
    }
  }
  if (!saw_header) fail(line_no, "empty document (missing header)");
  if (!saw_n) fail(line_no, "missing n directive");
  return g;
}

void save_edgelist(const std::filesystem::path& path, const Digraph& g) {
  std::ofstream out(path);
  GIO_EXPECTS_MSG(out.good(), "cannot open file for writing");
  write_edgelist(out, g);
  GIO_EXPECTS_MSG(out.good(), "write failed");
}

Digraph load_edgelist(const std::filesystem::path& path) {
  std::ifstream in(path);
  GIO_EXPECTS_MSG(in.good(), "cannot open file for reading");
  return read_edgelist(in);
}

std::string to_edgelist_string(const Digraph& g) {
  std::ostringstream os;
  write_edgelist(os, g);
  return os.str();
}

Digraph from_edgelist_string(const std::string& text) {
  std::istringstream is(text);
  return read_edgelist(is);
}

}  // namespace graphio::io
