// Plain-text edge-list serialization for computation graphs.
//
// Format (line oriented, '#' starts a comment):
//   graphio-edgelist 1        header, required
//   n <num_vertices>          required, before any v/e line
//   v <id> <name>             optional vertex name (rest of line)
//   e <u> <w>                 one directed edge; repeat for parallel edges
//
// The format is deliberately trivial: it exists so users can feed their
// own computation graphs to the bound tools (tools/graphio-cli) without
// writing C++, and so benches can persist generated workloads.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "graphio/graph/digraph.hpp"

namespace graphio::io {

/// Writes `g` in edge-list format. Names are emitted only when non-empty.
void write_edgelist(std::ostream& out, const Digraph& g);

/// Parses an edge-list document. Throws contract_error with a line number
/// on malformed input (unknown directive, ids out of range, missing
/// header, duplicate n line, edges before n).
Digraph read_edgelist(std::istream& in);

/// File convenience wrappers (throw on unopenable paths).
void save_edgelist(const std::filesystem::path& path, const Digraph& g);
Digraph load_edgelist(const std::filesystem::path& path);

/// Round-trip helpers used by tests and tools.
std::string to_edgelist_string(const Digraph& g);
Digraph from_edgelist_string(const std::string& text);

}  // namespace graphio::io
