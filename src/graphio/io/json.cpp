#include "graphio/io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "graphio/support/contracts.hpp"

namespace graphio::io {

// --- writer ----------------------------------------------------------------

void JsonWriter::comma_if_needed() {
  if (stack_.empty()) return;
  if (!first_in_frame_.back() && !pending_key_) out_ << ",";
  first_in_frame_.back() = false;
}

void JsonWriter::expect_value_allowed() {
  GIO_EXPECTS_MSG(!done_, "document already complete");
  if (!stack_.empty() && stack_.back() == Frame::kObject)
    GIO_EXPECTS_MSG(pending_key_, "object members need a key first");
}

JsonWriter& JsonWriter::begin_object() {
  expect_value_allowed();
  comma_if_needed();
  out_ << "{";
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  pending_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  GIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "no object to close");
  GIO_EXPECTS_MSG(!pending_key_, "dangling key");
  out_ << "}";
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  expect_value_allowed();
  comma_if_needed();
  out_ << "[";
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  pending_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  GIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                  "no array to close");
  out_ << "]";
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  GIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "keys only make sense inside objects");
  GIO_EXPECTS_MSG(!pending_key_, "two keys in a row");
  comma_if_needed();
  out_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  expect_value_allowed();
  comma_if_needed();
  out_ << '"' << json_escape(v) << '"';
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  expect_value_allowed();
  comma_if_needed();
  if (std::isfinite(v)) {
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, v,
                      std::chars_format::general, 17);
    GIO_ASSERT(ec == std::errc());
    out_ << std::string_view(buf, static_cast<std::size_t>(end - buf));
  } else {
    out_ << "null";  // JSON has no inf/nan
  }
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  expect_value_allowed();
  comma_if_needed();
  out_ << v;
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  expect_value_allowed();
  comma_if_needed();
  out_ << (v ? "true" : "false");
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  expect_value_allowed();
  comma_if_needed();
  out_ << "null";
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  GIO_EXPECTS_MSG(done_ && stack_.empty(),
                  "document incomplete (open containers)");
  return out_.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- validator ---------------------------------------------------------------

namespace {

struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos;
        if (eof()) return false;
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() ||
                std::isxdigit(static_cast<unsigned char>(text[pos + i])) ==
                    0)
              return false;
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;
  }

  bool number() {
    const std::size_t begin = pos;
    if (!eof() && peek() == '-') ++pos;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    if (peek() == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    return pos > begin;
  }

  bool value(int depth) {
    if (depth > 256) return false;  // stack guard
    skip_ws();
    if (eof()) return false;
    switch (peek()) {
      case '{': {
        ++pos;
        skip_ws();
        if (!eof() && peek() == '}') {
          ++pos;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (eof() || peek() != ':') return false;
          ++pos;
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eof()) return false;
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!eof() && peek() == ']') {
          ++pos;
          return true;
        }
        for (;;) {
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eof()) return false;
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            return true;
          }
          return false;
        }
      }
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Scanner s{text};
  if (!s.value(0)) return false;
  s.skip_ws();
  return s.eof();
}

// --- value parser ------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    check(pos_ >= text_.size(), "trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw contract_error("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }
  void check(bool ok, const char* what) const {
    if (!ok) fail(what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c, const char* what) {
    check(peek() == c, what);
    ++pos_;
  }
  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::string parse_string() {
    expect('"', "expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      check(static_cast<unsigned char>(c) >= 0x20,
            "raw control character in string");
      if (c == '\\') {
        ++pos_;
        check(pos_ < text_.size(), "truncated escape");
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            check(pos_ + 4 < text_.size(), "truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              check(std::isxdigit(static_cast<unsigned char>(h)) != 0,
                    "bad \\u escape");
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs are passed through as two
            // 3-byte sequences; the writer never emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    fail("unterminated string");
  }

  double parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    check(std::isdigit(static_cast<unsigned char>(peek())) != 0,
          "expected number");
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + begin, text_.data() + pos_, v);
    check(ec == std::errc() && end == text_.data() + pos_, "bad number");
    return v;
  }

  JsonValue parse_value(int depth) {
    check(depth <= 256, "nesting too deep");
    skip_ws();
    check(pos_ < text_.size(), "unexpected end of input");
    JsonValue v;
    switch (peek()) {
      case '{': {
        ++pos_;
        v.type_ = JsonValue::Type::kObject;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':', "expected ':' after object key");
          v.object_.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}', "expected ',' or '}' in object");
          return v;
        }
      }
      case '[': {
        ++pos_;
        v.type_ = JsonValue::Type::kArray;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array_.push_back(parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']', "expected ',' or ']' in array");
          return v;
        }
      }
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        check(consume("true"), "bad literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        check(consume("false"), "bad literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        check(consume("null"), "bad literal");
        return v;
      default:
        v.type_ = JsonValue::Type::kNumber;
        v.number_ = parse_number();
        return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {
const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_fail(const char* wanted, JsonValue::Type got) {
  throw contract_error(std::string("JSON value is ") + type_name(got) +
                       ", not " + wanted);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_fail("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (!is_number()) type_fail("number", type_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  if (!is_number()) type_fail("integer", type_);
  // Range-check before the cast: double→int64 outside the representable
  // range is undefined behavior, and job lines are untrusted input. Both
  // bounds are exactly representable doubles (±2^63); NaN fails both.
  GIO_EXPECTS_MSG(
      number_ >= -9223372036854775808.0 && number_ < 9223372036854775808.0,
      "JSON number out of integer range");
  const auto v = static_cast<std::int64_t>(number_);
  GIO_EXPECTS_MSG(static_cast<double>(v) == number_,
                  "JSON number is not an integer");
  return v;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_fail("string", type_);
  return string_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  type_fail("array or object", type_);
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (!is_array()) type_fail("array", type_);
  GIO_EXPECTS_MSG(i < array_.size(), "JSON array index out of range");
  return array_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) type_fail("array", type_);
  return array_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (!is_object()) type_fail("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = get(key);
  GIO_EXPECTS_MSG(v != nullptr,
                  "missing JSON object key '" + std::string(key) + "'");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (!is_object()) type_fail("object", type_);
  return object_;
}

// --- converters ---------------------------------------------------------------

std::string graph_to_json(const Digraph& g) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(g.num_vertices());
  w.key("edges").begin_array();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId c : g.children(v)) {
      w.begin_array();
      w.value(v);
      w.value(c);
      w.end_array();
    }
  }
  w.end_array();
  bool any_names = false;
  for (VertexId v = 0; v < g.num_vertices() && !any_names; ++v)
    any_names = !g.name(v).empty();
  if (any_names) {
    w.key("names").begin_object();
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (!g.name(v).empty()) w.key(std::to_string(v)).value(g.name(v));
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace graphio::io
