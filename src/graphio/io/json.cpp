#include "graphio/io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "graphio/support/contracts.hpp"

namespace graphio::io {

// --- writer ----------------------------------------------------------------

void JsonWriter::comma_if_needed() {
  if (stack_.empty()) return;
  if (!first_in_frame_.back() && !pending_key_) out_ << ",";
  first_in_frame_.back() = false;
}

void JsonWriter::expect_value_allowed() {
  GIO_EXPECTS_MSG(!done_, "document already complete");
  if (!stack_.empty() && stack_.back() == Frame::kObject)
    GIO_EXPECTS_MSG(pending_key_, "object members need a key first");
}

JsonWriter& JsonWriter::begin_object() {
  expect_value_allowed();
  comma_if_needed();
  out_ << "{";
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  pending_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  GIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "no object to close");
  GIO_EXPECTS_MSG(!pending_key_, "dangling key");
  out_ << "}";
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  expect_value_allowed();
  comma_if_needed();
  out_ << "[";
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  pending_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  GIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                  "no array to close");
  out_ << "]";
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  GIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "keys only make sense inside objects");
  GIO_EXPECTS_MSG(!pending_key_, "two keys in a row");
  comma_if_needed();
  out_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  expect_value_allowed();
  comma_if_needed();
  out_ << '"' << json_escape(v) << '"';
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  expect_value_allowed();
  comma_if_needed();
  if (std::isfinite(v)) {
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, v,
                      std::chars_format::general, 17);
    GIO_ASSERT(ec == std::errc());
    out_ << std::string_view(buf, static_cast<std::size_t>(end - buf));
  } else {
    out_ << "null";  // JSON has no inf/nan
  }
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  expect_value_allowed();
  comma_if_needed();
  out_ << v;
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  expect_value_allowed();
  comma_if_needed();
  out_ << (v ? "true" : "false");
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  expect_value_allowed();
  comma_if_needed();
  out_ << "null";
  pending_key_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  GIO_EXPECTS_MSG(done_ && stack_.empty(),
                  "document incomplete (open containers)");
  return out_.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- validator ---------------------------------------------------------------

namespace {

struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos;
        if (eof()) return false;
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() ||
                std::isxdigit(static_cast<unsigned char>(text[pos + i])) ==
                    0)
              return false;
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;
  }

  bool number() {
    const std::size_t begin = pos;
    if (!eof() && peek() == '-') ++pos;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    if (peek() == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    return pos > begin;
  }

  bool value(int depth) {
    if (depth > 256) return false;  // stack guard
    skip_ws();
    if (eof()) return false;
    switch (peek()) {
      case '{': {
        ++pos;
        skip_ws();
        if (!eof() && peek() == '}') {
          ++pos;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (eof() || peek() != ':') return false;
          ++pos;
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eof()) return false;
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!eof() && peek() == ']') {
          ++pos;
          return true;
        }
        for (;;) {
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eof()) return false;
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            return true;
          }
          return false;
        }
      }
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Scanner s{text};
  if (!s.value(0)) return false;
  s.skip_ws();
  return s.eof();
}

// --- converters ---------------------------------------------------------------

std::string graph_to_json(const Digraph& g) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(g.num_vertices());
  w.key("edges").begin_array();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId c : g.children(v)) {
      w.begin_array();
      w.value(v);
      w.value(c);
      w.end_array();
    }
  }
  w.end_array();
  bool any_names = false;
  for (VertexId v = 0; v < g.num_vertices() && !any_names; ++v)
    any_names = !g.name(v).empty();
  if (any_names) {
    w.key("names").begin_object();
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (!g.name(v).empty()) w.key(std::to_string(v)).value(g.name(v));
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace graphio::io
