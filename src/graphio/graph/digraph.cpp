#include "graphio/graph/digraph.hpp"

#include <algorithm>

#include "graphio/support/contracts.hpp"

namespace graphio {

namespace {
const std::string kEmptyName;
}

Digraph::Digraph(std::int64_t num_vertices) {
  GIO_EXPECTS(num_vertices >= 0);
  out_.resize(static_cast<std::size_t>(num_vertices));
  in_.resize(static_cast<std::size_t>(num_vertices));
}

VertexId Digraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  return num_vertices() - 1;
}

void Digraph::add_edge(VertexId u, VertexId v) {
  check_vertex(u);
  check_vertex(v);
  GIO_EXPECTS_MSG(u != v, "self-loops are not valid computation edges");
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
}

std::span<const VertexId> Digraph::children(VertexId v) const {
  check_vertex(v);
  return out_[static_cast<std::size_t>(v)];
}

std::span<const VertexId> Digraph::parents(VertexId v) const {
  check_vertex(v);
  return in_[static_cast<std::size_t>(v)];
}

std::int64_t Digraph::out_degree(VertexId v) const {
  return static_cast<std::int64_t>(children(v).size());
}

std::int64_t Digraph::in_degree(VertexId v) const {
  return static_cast<std::int64_t>(parents(v).size());
}

std::int64_t Digraph::degree(VertexId v) const {
  return in_degree(v) + out_degree(v);
}

std::int64_t Digraph::max_out_degree() const {
  std::int64_t best = 0;
  for (const auto& adj : out_)
    best = std::max(best, static_cast<std::int64_t>(adj.size()));
  return best;
}

std::int64_t Digraph::max_in_degree() const {
  std::int64_t best = 0;
  for (const auto& adj : in_)
    best = std::max(best, static_cast<std::int64_t>(adj.size()));
  return best;
}

std::vector<VertexId> Digraph::sources() const {
  std::vector<VertexId> result;
  for (VertexId v = 0; v < num_vertices(); ++v)
    if (in_degree(v) == 0) result.push_back(v);
  return result;
}

std::vector<VertexId> Digraph::sinks() const {
  std::vector<VertexId> result;
  for (VertexId v = 0; v < num_vertices(); ++v)
    if (out_degree(v) == 0) result.push_back(v);
  return result;
}

void Digraph::set_name(VertexId v, std::string name) {
  check_vertex(v);
  if (names_.size() < out_.size()) names_.resize(out_.size());
  names_[static_cast<std::size_t>(v)] = std::move(name);
}

const std::string& Digraph::name(VertexId v) const {
  check_vertex(v);
  if (static_cast<std::size_t>(v) >= names_.size()) return kEmptyName;
  return names_[static_cast<std::size_t>(v)];
}

void Digraph::check_vertex(VertexId v) const {
  GIO_EXPECTS_MSG(contains(v), "vertex id out of range");
}

}  // namespace graphio
