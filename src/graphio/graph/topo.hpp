// Topological orders — the paper's evaluation orders X ∈ O_G.
#pragma once

#include <optional>
#include <vector>

#include "graphio/graph/digraph.hpp"
#include "graphio/support/prng.hpp"

namespace graphio {

/// Kahn's algorithm; deterministic (lowest-id-first among ready vertices).
/// Returns nullopt when the graph has a cycle.
std::optional<std::vector<VertexId>> topological_order(const Digraph& g);

/// True iff the graph is acyclic.
bool is_dag(const Digraph& g);

/// True iff `order` is a permutation of the vertices that respects all edges.
bool is_topological(const Digraph& g, const std::vector<VertexId>& order);

/// A uniformly-randomized Kahn order (random choice among ready vertices).
/// Used by the property tests to sample evaluation orders. Throws on cycles.
std::vector<VertexId> random_topological_order(const Digraph& g, Prng& rng);

/// DFS-based order (reverse postorder). Often memory-friendlier than BFS
/// orders; used as a schedule heuristic in the simulator benches.
/// Throws on cycles.
std::vector<VertexId> dfs_topological_order(const Digraph& g);

}  // namespace graphio
