// Structural graph transforms.
//
// These are analysis tools, not schedule-preserving rewrites: reversing a
// computation graph swaps inputs and outputs (the adjoint computation),
// and the transitive reduction is the minimal DAG with the same
// reachability. Two bound-relevant facts the tests pin down:
//
//  * reverse(G) has the same undirected skeleton as G, so the *plain*
//    Laplacian L is identical and the Theorem 5 bound is
//    reversal-invariant (up to the max-out-degree factor, which becomes
//    the max in-degree). The normalized L̃ is NOT invariant — edge
//    weights 1/dout(u) change direction — so Theorem 4 can differ between
//    a computation and its adjoint.
//
//  * removing transitively implied edges only removes Laplacian weight,
//    so bounds on the reduction are never larger — the reduction is the
//    conservative graph to bound when the true operand structure is
//    uncertain.
#pragma once

#include "graphio/graph/digraph.hpp"

namespace graphio {

/// Every edge (u, v) becomes (v, u); names are preserved. The reverse of
/// a DAG is a DAG (the adjoint computation).
Digraph reverse(const Digraph& g);

/// The transitive reduction of a DAG: keeps edge (u, v) iff there is no
/// other path u → v. Parallel edges collapse to one (a second identical
/// operand edge is transitively implied by the first). Throws on cyclic
/// graphs. O(V·E).
Digraph transitive_reduction(const Digraph& g);

/// True iff `a` and `b` have identical vertex counts and identical
/// multisets of edges (names ignored).
bool same_structure(const Digraph& a, const Digraph& b);

}  // namespace graphio
