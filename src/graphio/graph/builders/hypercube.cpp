#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

Digraph bhk_hypercube(int cities) {
  GIO_EXPECTS_MSG(cities >= 1 && cities <= 28, "city count out of range");
  const std::int64_t n = std::int64_t{1} << cities;
  Digraph g(n);
  for (std::int64_t mask = 0; mask < n; ++mask) {
    for (int bit = 0; bit < cities; ++bit) {
      const std::int64_t flag = std::int64_t{1} << bit;
      if ((mask & flag) == 0)
        g.add_edge(static_cast<VertexId>(mask),
                   static_cast<VertexId>(mask | flag));
    }
  }
  return g;
}

}  // namespace graphio::builders
