#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

Digraph inner_product(int m) {
  GIO_EXPECTS_MSG(m >= 1, "inner product needs at least one element");
  Digraph g;
  std::vector<VertexId> a(static_cast<std::size_t>(m));
  std::vector<VertexId> b(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    a[static_cast<std::size_t>(i)] = g.add_vertex();
    g.set_name(a[static_cast<std::size_t>(i)], "a" + std::to_string(i));
  }
  for (int i = 0; i < m; ++i) {
    b[static_cast<std::size_t>(i)] = g.add_vertex();
    g.set_name(b[static_cast<std::size_t>(i)], "b" + std::to_string(i));
  }
  std::vector<VertexId> products(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const VertexId p = g.add_vertex();
    g.set_name(p, "a" + std::to_string(i) + "*b" + std::to_string(i));
    g.add_edge(a[static_cast<std::size_t>(i)], p);
    g.add_edge(b[static_cast<std::size_t>(i)], p);
    products[static_cast<std::size_t>(i)] = p;
  }
  VertexId acc = products[0];
  for (int i = 1; i < m; ++i) {
    const VertexId s = g.add_vertex();
    g.set_name(s, "sum" + std::to_string(i));
    g.add_edge(acc, s);
    g.add_edge(products[static_cast<std::size_t>(i)], s);
    acc = s;
  }
  return g;
}

}  // namespace graphio::builders
