#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::builders {

Digraph erdos_renyi_dag(std::int64_t n, double p, std::uint64_t seed) {
  GIO_EXPECTS(n >= 0);
  GIO_EXPECTS_MSG(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  Digraph g(n);
  Prng rng(seed);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(p))
        g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
  return g;
}

}  // namespace graphio::builders
