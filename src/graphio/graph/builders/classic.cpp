#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

Digraph path(std::int64_t n) {
  GIO_EXPECTS(n >= 0);
  Digraph g(n);
  for (std::int64_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  return g;
}

Digraph cycle(std::int64_t n) {
  GIO_EXPECTS_MSG(n >= 3, "a cycle needs at least 3 vertices");
  Digraph g(n);
  for (std::int64_t i = 0; i < n; ++i)
    g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  return g;
}

Digraph complete_dag(std::int64_t n) {
  GIO_EXPECTS(n >= 0);
  Digraph g(n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j)
      g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
  return g;
}

Digraph star(std::int64_t n) {
  GIO_EXPECTS_MSG(n >= 1, "a star needs a center");
  Digraph g(n);
  for (std::int64_t i = 1; i < n; ++i)
    g.add_edge(0, static_cast<VertexId>(i));
  return g;
}

Digraph grid(int rows, int cols) {
  GIO_EXPECTS(rows >= 1 && cols >= 1);
  Digraph g(static_cast<std::int64_t>(rows) * cols);
  auto id = [cols](int i, int j) {
    return static_cast<VertexId>(static_cast<std::int64_t>(i) * cols + j);
  };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (j + 1 < cols) g.add_edge(id(i, j), id(i, j + 1));
      if (i + 1 < rows) g.add_edge(id(i, j), id(i + 1, j));
    }
  }
  return g;
}

Digraph binary_tree(int depth) {
  GIO_EXPECTS(depth >= 0 && depth <= 30);
  // Leaves are inputs; each internal vertex sums its two children.
  // Build level by level from the leaves up.
  Digraph g;
  std::vector<VertexId> level;
  const std::int64_t leaves = std::int64_t{1} << depth;
  level.reserve(static_cast<std::size_t>(leaves));
  for (std::int64_t i = 0; i < leaves; ++i) level.push_back(g.add_vertex());
  while (level.size() > 1) {
    std::vector<VertexId> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const VertexId parent = g.add_vertex();
      g.add_edge(level[i], parent);
      g.add_edge(level[i + 1], parent);
      next.push_back(parent);
    }
    level = std::move(next);
  }
  return g;
}

}  // namespace graphio::builders
