#include <string>
#include <vector>

#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

Digraph stencil1d(int cells, int steps) {
  GIO_EXPECTS(cells >= 1 && steps >= 0);
  Digraph g(static_cast<std::int64_t>(cells) * (steps + 1));
  auto at = [cells](int t, int i) {
    return static_cast<VertexId>(t) * cells + i;
  };
  for (int t = 1; t <= steps; ++t) {
    for (int i = 0; i < cells; ++i) {
      for (int di = -1; di <= 1; ++di) {
        const int j = i + di;
        if (j < 0 || j >= cells) continue;
        g.add_edge(at(t - 1, j), at(t, i));
      }
    }
  }
  return g;
}

Digraph stencil2d(int rows, int cols, int steps) {
  GIO_EXPECTS(rows >= 1 && cols >= 1 && steps >= 0);
  const std::int64_t plane = static_cast<std::int64_t>(rows) * cols;
  Digraph g(plane * (steps + 1));
  auto at = [&](int t, int r, int c) {
    return static_cast<VertexId>(t) * plane + static_cast<VertexId>(r) * cols +
           c;
  };
  constexpr int kDr[] = {0, -1, 1, 0, 0};
  constexpr int kDc[] = {0, 0, 0, -1, 1};
  for (int t = 1; t <= steps; ++t) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        for (int k = 0; k < 5; ++k) {
          const int rr = r + kDr[k];
          const int cc = c + kDc[k];
          if (rr < 0 || rr >= rows || cc < 0 || cc >= cols) continue;
          g.add_edge(at(t - 1, rr, cc), at(t, r, c));
        }
      }
    }
  }
  return g;
}

Digraph prefix_scan(int log_n) {
  GIO_EXPECTS(log_n >= 1 && log_n <= 24);
  const std::int64_t n = std::int64_t{1} << log_n;
  Digraph g;

  // Inputs.
  std::vector<VertexId> level(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    level[static_cast<std::size_t>(i)] = g.add_vertex();
    g.set_name(level[static_cast<std::size_t>(i)],
               "x" + std::to_string(i));
  }

  // Up-sweep: reduction tree; ups[d][j] is the sum of block j at level d
  // (blocks of size 2^{d+1}). ups[d] has n >> (d+1) vertices.
  std::vector<std::vector<VertexId>> ups;
  {
    std::vector<VertexId> current = level;
    for (int d = 0; d < log_n; ++d) {
      std::vector<VertexId> next(current.size() / 2);
      for (std::size_t j = 0; j < next.size(); ++j) {
        const VertexId s = g.add_vertex();
        g.add_edge(current[2 * j], s);
        g.add_edge(current[2 * j + 1], s);
        next[j] = s;
      }
      ups.push_back(next);
      current = std::move(next);
    }
  }

  // Down-sweep: exclusive prefixes flow back down. down[d][j] is the
  // exclusive prefix of block j at level d; the root's prefix is the
  // identity (a fresh zero input vertex).
  std::vector<VertexId> down(1);
  down[0] = g.add_vertex();  // identity element
  g.set_name(down[0], "zero");
  for (int d = log_n - 1; d >= 0; --d) {
    const std::vector<VertexId>& sums =
        d > 0 ? ups[static_cast<std::size_t>(d - 1)] : level;
    std::vector<VertexId> next(sums.size());
    for (std::size_t j = 0; j < down.size(); ++j) {
      // Left child inherits the parent's prefix as-is (reuse the vertex);
      // right child gets prefix + left block sum (one add vertex).
      next[2 * j] = down[j];
      const VertexId add = g.add_vertex();
      g.add_edge(down[j], add);
      g.add_edge(sums[2 * j], add);
      next[2 * j + 1] = add;
    }
    down = std::move(next);
  }

  // Final inclusive prefixes: exclusive prefix + own element.
  for (std::int64_t i = 0; i < n; ++i) {
    const VertexId out = g.add_vertex();
    g.set_name(out, "prefix" + std::to_string(i));
    g.add_edge(down[static_cast<std::size_t>(i)], out);
    g.add_edge(level[static_cast<std::size_t>(i)], out);
  }
  return g;
}

Digraph bitonic_sort(int log_n) {
  GIO_EXPECTS(log_n >= 1 && log_n <= 12);
  const std::int64_t n = std::int64_t{1} << log_n;
  Digraph g;
  std::vector<VertexId> wire(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    wire[static_cast<std::size_t>(i)] = g.add_vertex();
    g.set_name(wire[static_cast<std::size_t>(i)], "in" + std::to_string(i));
  }
  // Standard bitonic network: stages k = 2,4,...,n; sub-stages j = k/2..1.
  for (std::int64_t k = 2; k <= n; k <<= 1) {
    for (std::int64_t j = k >> 1; j > 0; j >>= 1) {
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t partner = i ^ j;
        if (partner <= i) continue;
        // One compare-exchange: two outputs, each consuming both wires.
        const VertexId lo = g.add_vertex();
        const VertexId hi = g.add_vertex();
        g.add_edge(wire[static_cast<std::size_t>(i)], lo);
        g.add_edge(wire[static_cast<std::size_t>(partner)], lo);
        g.add_edge(wire[static_cast<std::size_t>(i)], hi);
        g.add_edge(wire[static_cast<std::size_t>(partner)], hi);
        const bool ascending = (i & k) == 0;
        wire[static_cast<std::size_t>(i)] = ascending ? lo : hi;
        wire[static_cast<std::size_t>(partner)] = ascending ? hi : lo;
      }
    }
  }
  return g;
}

Digraph triangular_solve(int n) {
  GIO_EXPECTS(n >= 1);
  Digraph g;
  // Inputs: L(i, j) for j <= i, and b(i).
  std::vector<std::vector<VertexId>> l(static_cast<std::size_t>(n));
  std::vector<VertexId> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    l[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(i) + 1);
    for (int j = 0; j <= i; ++j)
      l[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          g.add_vertex();
    b[static_cast<std::size_t>(i)] = g.add_vertex();
  }
  std::vector<VertexId> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // acc = b_i − Σ_{j<i} L(i,j)·x_j, then x_i = acc / L(i,i).
    VertexId acc = b[static_cast<std::size_t>(i)];
    for (int j = 0; j < i; ++j) {
      const VertexId prod = g.add_vertex();  // L(i,j)·x_j
      g.add_edge(l[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                 prod);
      g.add_edge(x[static_cast<std::size_t>(j)], prod);
      const VertexId sub = g.add_vertex();  // acc − prod
      g.add_edge(acc, sub);
      g.add_edge(prod, sub);
      acc = sub;
    }
    const VertexId xi = g.add_vertex();  // acc / L(i,i)
    g.add_edge(acc, xi);
    g.add_edge(l[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)],
               xi);
    g.set_name(xi, "x" + std::to_string(i));
    x[static_cast<std::size_t>(i)] = xi;
  }
  return g;
}

Digraph cholesky(int n) {
  GIO_EXPECTS(n >= 1);
  Digraph g;
  // a[i][j] tracks the current value-producing vertex for entry (i, j) of
  // the working lower triangle; starts as the input A(i, j).
  std::vector<std::vector<VertexId>> a(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(i) + 1);
    for (int j = 0; j <= i; ++j)
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          g.add_vertex();
  }
  for (int k = 0; k < n; ++k) {
    // L(k,k) = sqrt(a_kk)
    const VertexId lkk = g.add_vertex();
    g.set_name(lkk, "L" + std::to_string(k) + std::to_string(k));
    g.add_edge(a[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)],
               lkk);
    a[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = lkk;
    // Column scale: L(i,k) = a_ik / L(k,k).
    for (int i = k + 1; i < n; ++i) {
      const VertexId lik = g.add_vertex();
      g.add_edge(a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                 lik);
      g.add_edge(lkk, lik);
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = lik;
    }
    // Trailing update: a_ij -= L(i,k)·L(j,k) for k < j <= i.
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j <= i; ++j) {
        const VertexId upd = g.add_vertex();
        g.add_edge(a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                   upd);
        g.add_edge(a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                   upd);
        g.add_edge(a[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)],
                   upd);
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = upd;
      }
    }
  }
  return g;
}

}  // namespace graphio::builders
