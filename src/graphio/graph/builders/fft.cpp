#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

VertexId fft_vertex(int levels, int column, std::int64_t row) {
  GIO_EXPECTS(levels >= 0 && column >= 0 && column <= levels);
  const std::int64_t width = std::int64_t{1} << levels;
  GIO_EXPECTS(row >= 0 && row < width);
  return static_cast<VertexId>(column) * width + row;
}

Digraph fft(int levels) {
  GIO_EXPECTS_MSG(levels >= 0 && levels <= 24, "FFT level out of range");
  const std::int64_t width = std::int64_t{1} << levels;
  Digraph g((static_cast<std::int64_t>(levels) + 1) * width);
  for (int c = 1; c <= levels; ++c) {
    const std::int64_t stride = std::int64_t{1} << (c - 1);
    for (std::int64_t r = 0; r < width; ++r) {
      const VertexId dst = fft_vertex(levels, c, r);
      g.add_edge(fft_vertex(levels, c - 1, r), dst);
      g.add_edge(fft_vertex(levels, c - 1, r ^ stride), dst);
    }
  }
  return g;
}

}  // namespace graphio::builders
