#include <functional>

#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

namespace {

/// Reduces `terms` to a single vertex according to the reduction style.
VertexId reduce_terms(Digraph& g, const std::vector<VertexId>& terms,
                      Reduction reduction) {
  GIO_ASSERT(!terms.empty());
  if (terms.size() == 1) return terms[0];
  switch (reduction) {
    case Reduction::kNary: {
      const VertexId sum = g.add_vertex();
      for (VertexId t : terms) g.add_edge(t, sum);
      return sum;
    }
    case Reduction::kChain: {
      VertexId acc = terms[0];
      for (std::size_t i = 1; i < terms.size(); ++i) {
        const VertexId s = g.add_vertex();
        g.add_edge(acc, s);
        g.add_edge(terms[i], s);
        acc = s;
      }
      return acc;
    }
    case Reduction::kBinaryTree: {
      std::vector<VertexId> layer = terms;
      while (layer.size() > 1) {
        std::vector<VertexId> next;
        next.reserve((layer.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
          const VertexId s = g.add_vertex();
          g.add_edge(layer[i], s);
          g.add_edge(layer[i + 1], s);
          next.push_back(s);
        }
        if (layer.size() % 2 == 1) next.push_back(layer.back());
        layer = std::move(next);
      }
      return layer[0];
    }
  }
  GIO_ASSERT(false);
  return terms[0];
}

}  // namespace

Digraph naive_matmul(int n, Reduction reduction) {
  GIO_EXPECTS_MSG(n >= 1, "matrix side must be positive");
  const std::int64_t n64 = n;
  Digraph g(2 * n64 * n64);  // inputs A then B
  auto a_in = [&](int i, int k) {
    return static_cast<VertexId>(static_cast<std::int64_t>(i) * n64 + k);
  };
  auto b_in = [&](int k, int j) {
    return static_cast<VertexId>(n64 * n64 + static_cast<std::int64_t>(k) * n64 + j);
  };

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::vector<VertexId> products(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        const VertexId p = g.add_vertex();
        g.add_edge(a_in(i, k), p);
        g.add_edge(b_in(k, j), p);
        products[static_cast<std::size_t>(k)] = p;
      }
      (void)reduce_terms(g, products, reduction);
    }
  }
  return g;
}

}  // namespace graphio::builders
