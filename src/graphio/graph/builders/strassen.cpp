#include <vector>

#include "graphio/graph/builders.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::builders {

namespace {

/// A square matrix of vertex ids, n×n row-major.
struct VertexMatrix {
  int n = 0;
  std::vector<VertexId> ids;

  VertexId at(int i, int j) const {
    return ids[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + j];
  }
  VertexId& at(int i, int j) {
    return ids[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + j];
  }
  static VertexMatrix sized(int n) {
    VertexMatrix m;
    m.n = n;
    m.ids.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
    return m;
  }
};

VertexMatrix quadrant(const VertexMatrix& m, int qi, int qj) {
  const int h = m.n / 2;
  VertexMatrix out = VertexMatrix::sized(h);
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < h; ++j) out.at(i, j) = m.at(qi * h + i, qj * h + j);
  return out;
}

/// Elementwise binary combination (add/sub): one new vertex per element
/// with two parents.
VertexMatrix combine2(Digraph& g, const VertexMatrix& x,
                      const VertexMatrix& y) {
  GIO_ASSERT(x.n == y.n);
  VertexMatrix out = VertexMatrix::sized(x.n);
  for (int i = 0; i < x.n; ++i) {
    for (int j = 0; j < x.n; ++j) {
      const VertexId v = g.add_vertex();
      g.add_edge(x.at(i, j), v);
      g.add_edge(y.at(i, j), v);
      out.at(i, j) = v;
    }
  }
  return out;
}

/// Elementwise 4-ary combination (e.g. C11 = M1 + M4 − M5 + M7): one new
/// vertex per element with four parents — the paper's "max in-degree 4".
VertexMatrix combine4(Digraph& g, const VertexMatrix& a,
                      const VertexMatrix& b, const VertexMatrix& c,
                      const VertexMatrix& d) {
  VertexMatrix out = VertexMatrix::sized(a.n);
  for (int i = 0; i < a.n; ++i) {
    for (int j = 0; j < a.n; ++j) {
      const VertexId v = g.add_vertex();
      g.add_edge(a.at(i, j), v);
      g.add_edge(b.at(i, j), v);
      g.add_edge(c.at(i, j), v);
      g.add_edge(d.at(i, j), v);
      out.at(i, j) = v;
    }
  }
  return out;
}

VertexMatrix strassen_rec(Digraph& g, const VertexMatrix& a,
                          const VertexMatrix& b) {
  GIO_ASSERT(a.n == b.n);
  if (a.n == 1) {
    VertexMatrix out = VertexMatrix::sized(1);
    const VertexId p = g.add_vertex();
    g.add_edge(a.at(0, 0), p);
    g.add_edge(b.at(0, 0), p);
    out.at(0, 0) = p;
    return out;
  }

  const VertexMatrix a11 = quadrant(a, 0, 0), a12 = quadrant(a, 0, 1);
  const VertexMatrix a21 = quadrant(a, 1, 0), a22 = quadrant(a, 1, 1);
  const VertexMatrix b11 = quadrant(b, 0, 0), b12 = quadrant(b, 0, 1);
  const VertexMatrix b21 = quadrant(b, 1, 0), b22 = quadrant(b, 1, 1);

  // The seven Strassen products with their pre-combinations.
  const VertexMatrix m1 = strassen_rec(g, combine2(g, a11, a22), combine2(g, b11, b22));
  const VertexMatrix m2 = strassen_rec(g, combine2(g, a21, a22), b11);
  const VertexMatrix m3 = strassen_rec(g, a11, combine2(g, b12, b22));
  const VertexMatrix m4 = strassen_rec(g, a22, combine2(g, b21, b11));
  const VertexMatrix m5 = strassen_rec(g, combine2(g, a11, a12), b22);
  const VertexMatrix m6 = strassen_rec(g, combine2(g, a21, a11), combine2(g, b11, b12));
  const VertexMatrix m7 = strassen_rec(g, combine2(g, a12, a22), combine2(g, b21, b22));

  const int h = a.n / 2;
  VertexMatrix c = VertexMatrix::sized(a.n);
  const VertexMatrix c11 = combine4(g, m1, m4, m5, m7);
  const VertexMatrix c12 = combine2(g, m3, m5);
  const VertexMatrix c21 = combine2(g, m2, m4);
  const VertexMatrix c22 = combine4(g, m1, m2, m3, m6);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      c.at(i, j) = c11.at(i, j);
      c.at(i, j + h) = c12.at(i, j);
      c.at(i + h, j) = c21.at(i, j);
      c.at(i + h, j + h) = c22.at(i, j);
    }
  }
  return c;
}

}  // namespace

Digraph strassen_matmul(int n) {
  GIO_EXPECTS_MSG(n >= 1 && (n & (n - 1)) == 0,
                  "Strassen builder requires a power-of-two side");
  Digraph g(2LL * n * n);
  VertexMatrix a = VertexMatrix::sized(n);
  VertexMatrix b = VertexMatrix::sized(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a.at(i, j) = static_cast<VertexId>(static_cast<std::int64_t>(i) * n + j);
      b.at(i, j) = static_cast<VertexId>(
          static_cast<std::int64_t>(n) * n + static_cast<std::int64_t>(i) * n + j);
    }
  }
  (void)strassen_rec(g, a, b);
  return g;
}

}  // namespace graphio::builders
