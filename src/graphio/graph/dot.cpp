#include "graphio/graph/dot.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "graphio/support/contracts.hpp"

namespace graphio {

namespace {
std::string dot_escape(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char ch : label) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}
}  // namespace

std::string to_dot(const Digraph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(options.graph_name) << "\" {\n";
  os << "  rankdir=" << options.rankdir << ";\n";
  os << "  node [shape=circle, fontsize=10];\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  v" << v;
    if (options.use_names && !g.name(v).empty())
      os << " [label=\"" << dot_escape(g.name(v)) << "\"]";
    os << ";\n";
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.children(u)) os << "  v" << u << " -> v" << v << ";\n";
  os << "}\n";
  return os.str();
}

void write_dot(const Digraph& g, const std::string& path,
               const DotOptions& options) {
  std::ofstream out(path);
  GIO_EXPECTS_MSG(out.good(), "cannot open DOT output file: " + path);
  out << to_dot(g, options);
}

// --- reader ----------------------------------------------------------------

namespace {

/// Tokenizer + recursive-descent parser for the structural DOT subset.
class DotReader {
 public:
  explicit DotReader(std::string text) : text_(std::move(text)) {}

  Digraph parse() {
    next_token();
    if (token_ == "strict") next_token();
    check(token_ == "digraph",
          "expected 'digraph' (undirected graphs are not supported)");
    next_token();
    if (token_ != "{") next_token();  // optional graph name
    check(token_ == "{", "expected '{'");
    next_token();
    while (token_ != "}") {
      check(!token_.empty(), "unexpected end of input (missing '}')");
      statement();
    }
    next_token();
    check(token_.empty(), "trailing content after closing '}'");
    return std::move(graph_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw contract_error("DOT parse error at offset " +
                         std::to_string(token_pos_) + ": " + what);
  }
  void check(bool ok, const std::string& what) const {
    if (!ok) fail(what);
  }

  // '-' is deliberately NOT an id character: it would swallow the leading
  // dash of a spaceless edge operator ("a->b" must tokenize as a, ->, b).
  // Negative numeric literals only occur in attribute values, which are
  // skipped; quoted ids cover names containing dashes.
  static bool id_char(char c) {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
           c == '.' || c == '+';
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        const auto end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          token_pos_ = pos_;
          fail("unterminated /* comment");
        }
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  /// Advances to the next token; token_ empty at end of input.
  /// Quoted tokens are unescaped and flagged so "->" in a label is not
  /// mistaken for an edge operator.
  void next_token() {
    skip_space_and_comments();
    token_.clear();
    token_quoted_ = false;
    token_pos_ = pos_;
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (c == '"') {
      token_quoted_ = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        token_ += text_[pos_];
        ++pos_;
      }
      check(pos_ < text_.size(), "unterminated quoted string");
      ++pos_;
      return;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      token_ = "->";
      pos_ += 2;
      return;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
      fail("undirected edge '--' (only digraphs are supported)");
    }
    if (id_char(c)) {
      while (pos_ < text_.size() && id_char(text_[pos_])) {
        token_ += text_[pos_];
        ++pos_;
      }
      return;
    }
    token_ = std::string(1, c);
    ++pos_;
  }

  [[nodiscard]] bool at_keyword(const char* word) const {
    return !token_quoted_ && token_ == word;
  }

  VertexId vertex(const std::string& id) {
    const auto it = ids_.find(id);
    if (it != ids_.end()) return it->second;
    const VertexId v = graph_.add_vertex();
    ids_.emplace(id, v);
    return v;
  }

  /// Parses `[k=v, k=v; …]`* and returns the last `label` value (or "").
  std::string attr_list() {
    std::string label;
    while (token_ == "[") {
      next_token();
      while (token_ != "]") {
        check(!token_.empty(), "unterminated attribute list");
        const std::string key = token_;
        next_token();
        check(token_ == "=", "expected '=' in attribute");
        next_token();
        check(!token_.empty() && token_ != "]" && token_ != ",",
              "missing attribute value");
        std::string value = token_;
        // Negative numeric values ("fontsize=-1") arrive as '-' + digits;
        // rejoin them so a negative label is captured whole.
        if (!token_quoted_ && token_ == "-") {
          next_token();
          check(!token_.empty() && token_ != "]" && token_ != ",",
                "missing attribute value after '-'");
          value += token_;
        }
        if (key == "label") label = value;
        next_token();
        if (token_ == "," || token_ == ";") next_token();
      }
      next_token();
    }
    return label;
  }

  void statement() {
    check(!token_quoted_ || !token_.empty(), "empty statement");
    if (at_keyword("subgraph") || token_ == "{")
      fail("subgraphs are not supported");
    if (at_keyword("node") || at_keyword("edge") || at_keyword("graph")) {
      // Default-attribute statement: consume and ignore.
      next_token();
      check(token_ == "[", "expected '[' after '" + token_ + "'");
      attr_list();
      if (token_ == ";") next_token();
      return;
    }
    check(token_quoted_ ||
              (!token_.empty() && token_ != "[" && token_ != "=" &&
               token_ != ";" && token_ != "]"),
          "expected a node id, got '" + token_ + "'");
    const std::string first = token_;
    const std::size_t first_pos = token_pos_;
    next_token();
    if (token_ == "=") {
      // Graph-level attribute (rankdir=TB;): consume and ignore.
      next_token();
      check(!token_.empty(), "missing value after '='");
      next_token();
      if (token_ == ";") next_token();
      return;
    }
    VertexId tail = vertex(first);
    bool is_edge = false;
    while (token_ == "->") {
      next_token();
      check(!token_.empty() && (token_quoted_ || id_char(token_[0])),
            "expected a node id after '->'");
      const VertexId head = vertex(token_);
      if (head == tail) {
        token_pos_ = first_pos;
        fail("self-loop on '" + first + "'");
      }
      graph_.add_edge(tail, head);
      tail = head;
      is_edge = true;
      next_token();
    }
    const std::string label = attr_list();
    // A label on a plain node statement names the vertex; edge labels are
    // presentation-only and dropped.
    if (!is_edge && !label.empty())
      graph_.set_name(ids_.at(first), label);
    if (token_ == ";") next_token();
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string token_;
  std::size_t token_pos_ = 0;
  bool token_quoted_ = false;
  Digraph graph_;
  std::unordered_map<std::string, VertexId> ids_;
};

}  // namespace

Digraph read_dot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DotReader(buffer.str()).parse();
}

Digraph from_dot_string(const std::string& text) {
  return DotReader(text).parse();
}

Digraph load_dot(const std::string& path) {
  std::ifstream in(path);
  GIO_EXPECTS_MSG(in.good(), "cannot open DOT file: " + path);
  return read_dot(in);
}

}  // namespace graphio
