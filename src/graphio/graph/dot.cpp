#include "graphio/graph/dot.hpp"

#include <fstream>
#include <sstream>

#include "graphio/support/contracts.hpp"

namespace graphio {

namespace {
std::string dot_escape(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char ch : label) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}
}  // namespace

std::string to_dot(const Digraph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(options.graph_name) << "\" {\n";
  os << "  rankdir=" << options.rankdir << ";\n";
  os << "  node [shape=circle, fontsize=10];\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  v" << v;
    if (options.use_names && !g.name(v).empty())
      os << " [label=\"" << dot_escape(g.name(v)) << "\"]";
    os << ";\n";
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.children(u)) os << "  v" << u << " -> v" << v << ";\n";
  os << "}\n";
  return os.str();
}

void write_dot(const Digraph& g, const std::string& path,
               const DotOptions& options) {
  std::ofstream out(path);
  GIO_EXPECTS_MSG(out.good(), "cannot open DOT output file: " + path);
  out << to_dot(g, options);
}

}  // namespace graphio
