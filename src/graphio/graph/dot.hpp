// Graphviz DOT export, used by the graph gallery example to regenerate the
// paper's illustration figures (1, 4, 5, 6).
#pragma once

#include <string>

#include "graphio/graph/digraph.hpp"

namespace graphio {

struct DotOptions {
  std::string graph_name = "G";
  /// "TB" top-to-bottom (default), "LR" left-to-right.
  std::string rankdir = "TB";
  /// Emit vertex names (when set) as labels; otherwise vertex ids.
  bool use_names = true;
};

/// Renders the graph in DOT syntax.
std::string to_dot(const Digraph& g, const DotOptions& options = {});

/// Writes to_dot(g) to a file; throws contract_error when unwritable.
void write_dot(const Digraph& g, const std::string& path,
               const DotOptions& options = {});

}  // namespace graphio
