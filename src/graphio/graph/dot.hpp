// Graphviz DOT export and import.
//
// Export regenerates the paper's illustration figures (1, 4, 5, 6) via
// the graph gallery example. Import lets users feed DOT computation
// graphs straight to the tools: engine::GraphSpec dispatches *.dot / *.gv
// paths here, so `graphio bound my_dag.dot --memory 8` works the same as
// an edgelist file. The reader accepts the structural digraph subset —
// node statements, `a -> b [-> c …]` edge chains, attribute lists (only
// `label` is consumed; layout attributes are skipped), quoted ids, and
// // /*…*/ # comments. Subgraphs and undirected graphs are rejected with
// a contract_error naming the offending token.
#pragma once

#include <iosfwd>
#include <string>

#include "graphio/graph/digraph.hpp"

namespace graphio {

struct DotOptions {
  std::string graph_name = "G";
  /// "TB" top-to-bottom (default), "LR" left-to-right.
  std::string rankdir = "TB";
  /// Emit vertex names (when set) as labels; otherwise vertex ids.
  bool use_names = true;
};

/// Renders the graph in DOT syntax.
std::string to_dot(const Digraph& g, const DotOptions& options = {});

/// Writes to_dot(g) to a file; throws contract_error when unwritable.
void write_dot(const Digraph& g, const std::string& path,
               const DotOptions& options = {});

/// Parses the structural digraph subset described above. Vertices are
/// numbered in order of first mention; a `label` attribute becomes the
/// vertex name. Throws contract_error on malformed input (with the byte
/// offset), undirected graphs, subgraphs, or self-loops.
Digraph read_dot(std::istream& in);

/// read_dot over an in-memory document (round-trips to_dot exactly).
Digraph from_dot_string(const std::string& text);

/// Loads a DOT file; throws contract_error on unopenable paths.
Digraph load_dot(const std::string& path);

}  // namespace graphio
