// Graph Laplacians of Section 4.2.
//
// The paper converts the directed computation graph G into a weighted
// undirected graph G̃: each directed edge (u, v) contributes an undirected
// edge of weight 1/dout(u). Theorem 4 uses the Laplacian L̃ of G̃; the
// looser Theorem 5 uses the plain (unweighted) undirected Laplacian L
// together with a 1/max-out-degree factor. Parallel edges accumulate
// weight in both variants.
#pragma once

#include "graphio/graph/digraph.hpp"
#include "graphio/la/csr_matrix.hpp"
#include "graphio/la/dense_matrix.hpp"

namespace graphio {

enum class LaplacianKind {
  /// L = D − A of the undirected multigraph skeleton of G.
  kPlain,
  /// L̃ of G̃ with edge weights 1/dout(u) (Section 4.2).
  kOutDegreeNormalized,
};

/// Sparse Laplacian of the requested kind. Always symmetric PSD with row
/// sums zero; vertices with no incident edges yield empty rows.
la::CsrMatrix laplacian(const Digraph& g, LaplacianKind kind);

/// Dense variant (small graphs / tests).
la::DenseMatrix dense_laplacian(const Digraph& g, LaplacianKind kind);

}  // namespace graphio
