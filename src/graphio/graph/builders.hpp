// Computation-graph builders for every family in the paper's evaluation
// (Section 6.2), the illustration graphs (Figures 1, 4, 5, 6), and classic
// graphs with known spectra used to validate the eigensolvers.
#pragma once

#include <cstdint>

#include "graphio/graph/digraph.hpp"

namespace graphio::builders {

/// Inner product of two length-m vectors (paper Figure 1 for m = 2):
/// 2m inputs, m products, and a chain of m−1 additions.
Digraph inner_product(int m);

/// The 2^l-point FFT butterfly graph B_l (paper Figure 5): (l+1)·2^l
/// vertices in l+1 columns; vertex (c, r) for c ≥ 1 has parents
/// (c−1, r) and (c−1, r xor 2^{c−1}). Max in/out degree 2.
Digraph fft(int levels);

/// Vertex id of butterfly vertex (column c, row r) in fft(levels).
VertexId fft_vertex(int levels, int column, std::int64_t row);

/// How the n products of each dot product are reduced in naive_matmul.
enum class Reduction {
  kNary,        ///< one sum vertex with n parents (paper: "max in-degree n")
  kChain,       ///< left-to-right accumulation, n−1 binary adds
  kBinaryTree,  ///< balanced tree, n−1 binary adds
};

/// Naive n×n matrix multiplication C = A·B: 2n² inputs, n³ products,
/// plus the reduction vertices (paper Figure 6, second graph).
Digraph naive_matmul(int n, Reduction reduction = Reduction::kNary);

/// Strassen multiplication of two n×n matrices (n a power of two).
/// Quadrant pre-additions are binary; the C11/C22 recombinations are
/// 4-ary (paper: "max in-degree 4").
Digraph strassen_matmul(int n);

/// Bellman–Held–Karp dynamic program for an l-city TSP: the boolean
/// l-dimensional hypercube (paper Figure 4); edges go from each subset to
/// its supersets with one extra city. 2^l vertices, max in-degree l.
Digraph bhk_hypercube(int cities);

/// Erdős–Rényi G(n, p) oriented low-index → high-index (a DAG whose
/// undirected skeleton is exactly G(n, p)); Section 5.3.
Digraph erdos_renyi_dag(std::int64_t n, double p, std::uint64_t seed);

// --- classic graphs (eigensolver validation, extra workloads) -----------

/// Directed path 0 → 1 → … → n−1.
Digraph path(std::int64_t n);

/// Directed cycle (not a DAG; Laplacian tests only).
Digraph cycle(std::int64_t n);

/// Complete DAG: edge i → j for every i < j (undirected skeleton K_n).
Digraph complete_dag(std::int64_t n);

/// Star: 0 → i for i = 1..n−1.
Digraph star(std::int64_t n);

/// rows×cols grid with edges right and down (stencil-style computation).
Digraph grid(int rows, int cols);

/// Complete binary reduction tree with 2^depth leaves feeding one root.
Digraph binary_tree(int depth);

// --- extended workloads (beyond the paper's evaluation set) --------------
// The paper's method applies to arbitrary computations; these builders
// exercise it on further kernel families common in HPC practice. Used by
// bench/new_workloads and the generality tests.

/// Iterated 3-point stencil: `steps` time steps over `cells` cells; vertex
/// (t, i) consumes (t−1, i−1), (t−1, i), (t−1, i+1) (clamped at borders).
/// (steps+1)·cells vertices, max in-degree 3.
Digraph stencil1d(int cells, int steps);

/// Iterated 5-point stencil over a rows×cols domain for `steps` steps.
/// (steps+1)·rows·cols vertices, max in-degree 5.
Digraph stencil2d(int rows, int cols, int steps);

/// Blelloch parallel prefix sum over 2^log_n inputs: up-sweep reduction
/// tree followed by the down-sweep. Outputs one inclusive prefix per
/// input plus the up-sweep root (the grand total), as in the classic
/// formulation.
Digraph prefix_scan(int log_n);

/// Bitonic sorting network on 2^log_n wires. Every compare-exchange is
/// two vertices (min and max of the two incoming wire values), so the
/// graph has 2^log_n · (1 + log_n(log_n+1)) vertices and in-degree 2.
Digraph bitonic_sort(int log_n);

/// Forward-substitution dataflow for solving L·x = b with dense lower
/// triangular L: n(n+1)/2 + n matrix/vector inputs, one multiply per
/// (i, j) pair and a chain of subtractions per row. In-degree ≤ 2.
Digraph triangular_solve(int n);

/// Right-looking dense Cholesky factorization dataflow (A = L·Lᵀ):
/// sqrt/divide/update vertices over the lower triangle. Θ(n³) vertices,
/// in-degree ≤ 3.
Digraph cholesky(int n);

}  // namespace graphio::builders
