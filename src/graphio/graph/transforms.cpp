#include "graphio/graph/transforms.hpp"

#include <algorithm>
#include <vector>

#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {

Digraph reverse(const Digraph& g) {
  Digraph out(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.children(u)) out.add_edge(v, u);
    if (!g.name(u).empty()) out.set_name(u, g.name(u));
  }
  return out;
}

Digraph transitive_reduction(const Digraph& g) {
  const auto order = topological_order(g);
  GIO_EXPECTS_MSG(order.has_value(),
                  "transitive_reduction requires an acyclic graph");
  const std::int64_t n = g.num_vertices();
  std::vector<std::int64_t> position(static_cast<std::size_t>(n), 0);
  for (std::size_t t = 0; t < order->size(); ++t)
    position[static_cast<std::size_t>((*order)[t])] =
        static_cast<std::int64_t>(t);

  Digraph out(n);
  // reachable[w] == stamp iff w is reachable from u via a kept path.
  std::vector<std::int64_t> reachable(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> stack;
  for (VertexId u = 0; u < n; ++u) {
    if (!g.name(u).empty()) out.set_name(u, g.name(u));
    // Deduplicate and order u's children by topological position: a child
    // is kept iff it is not reachable from an earlier-kept child.
    std::vector<VertexId> children(g.children(u).begin(),
                                   g.children(u).end());
    std::sort(children.begin(), children.end(),
              [&](VertexId a, VertexId b) {
                return position[static_cast<std::size_t>(a)] <
                       position[static_cast<std::size_t>(b)];
              });
    children.erase(std::unique(children.begin(), children.end()),
                   children.end());

    const std::int64_t stamp = u;
    for (VertexId child : children) {
      if (reachable[static_cast<std::size_t>(child)] == stamp) continue;
      out.add_edge(u, child);
      // Mark everything reachable from the kept child.
      stack.assign(1, child);
      while (!stack.empty()) {
        const VertexId w = stack.back();
        stack.pop_back();
        if (reachable[static_cast<std::size_t>(w)] == stamp) continue;
        reachable[static_cast<std::size_t>(w)] = stamp;
        for (VertexId next : g.children(w)) stack.push_back(next);
      }
    }
  }
  return out;
}

bool same_structure(const Digraph& a, const Digraph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges())
    return false;
  for (VertexId u = 0; u < a.num_vertices(); ++u) {
    std::vector<VertexId> ca(a.children(u).begin(), a.children(u).end());
    std::vector<VertexId> cb(b.children(u).begin(), b.children(u).end());
    std::sort(ca.begin(), ca.end());
    std::sort(cb.begin(), cb.end());
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace graphio
