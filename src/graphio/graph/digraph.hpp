// Directed computation graph (Section 3 of the paper).
//
// Each vertex is one operation producing one value; an edge (u, v) means v
// consumes u's value. Parallel edges are allowed (an operation may use the
// same operand twice, e.g. x·x); self-loops are not. Most of the library
// requires acyclicity, which is validated where it matters (topological
// orders, simulators) rather than on every add_edge.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace graphio {

using VertexId = std::int64_t;

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::int64_t num_vertices);

  /// Appends an isolated vertex; returns its id.
  VertexId add_vertex();

  /// Adds a directed edge u → v. Parallel edges accumulate; self-loops throw.
  void add_edge(VertexId u, VertexId v);

  [[nodiscard]] std::int64_t num_vertices() const noexcept {
    return static_cast<std::int64_t>(out_.size());
  }
  [[nodiscard]] std::int64_t num_edges() const noexcept { return num_edges_; }

  /// Out-neighbors of v, with multiplicity.
  [[nodiscard]] std::span<const VertexId> children(VertexId v) const;
  /// In-neighbors of v, with multiplicity.
  [[nodiscard]] std::span<const VertexId> parents(VertexId v) const;

  [[nodiscard]] std::int64_t out_degree(VertexId v) const;
  [[nodiscard]] std::int64_t in_degree(VertexId v) const;
  /// Undirected degree: in_degree + out_degree.
  [[nodiscard]] std::int64_t degree(VertexId v) const;

  [[nodiscard]] std::int64_t max_out_degree() const;
  [[nodiscard]] std::int64_t max_in_degree() const;

  /// Vertices with no parents (the computation's inputs).
  [[nodiscard]] std::vector<VertexId> sources() const;
  /// Vertices with no children (the computation's outputs).
  [[nodiscard]] std::vector<VertexId> sinks() const;

  /// Optional human-readable vertex names (used by DOT export / tracer).
  void set_name(VertexId v, std::string name);
  [[nodiscard]] const std::string& name(VertexId v) const;

  /// True if `v` is a valid vertex id.
  [[nodiscard]] bool contains(VertexId v) const noexcept {
    return v >= 0 && v < num_vertices();
  }

 private:
  void check_vertex(VertexId v) const;

  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  std::vector<std::string> names_;
  std::int64_t num_edges_ = 0;
};

}  // namespace graphio
