#include "graphio/graph/laplacian.hpp"

#include "graphio/support/contracts.hpp"

namespace graphio {

namespace {

std::vector<la::Triplet> laplacian_triplets(const Digraph& g,
                                            LaplacianKind kind) {
  std::vector<la::Triplet> entries;
  entries.reserve(static_cast<std::size_t>(4 * g.num_edges()));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const double dout = static_cast<double>(g.out_degree(u));
    for (VertexId v : g.children(u)) {
      const double w =
          kind == LaplacianKind::kPlain ? 1.0 : 1.0 / dout;
      entries.push_back({u, u, w});
      entries.push_back({v, v, w});
      entries.push_back({u, v, -w});
      entries.push_back({v, u, -w});
    }
  }
  return entries;
}

}  // namespace

la::CsrMatrix laplacian(const Digraph& g, LaplacianKind kind) {
  return la::CsrMatrix::from_triplets(g.num_vertices(),
                                      laplacian_triplets(g, kind));
}

la::DenseMatrix dense_laplacian(const Digraph& g, LaplacianKind kind) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  la::DenseMatrix m(n, n);
  for (const la::Triplet& t : laplacian_triplets(g, kind))
    m(static_cast<std::size_t>(t.row), static_cast<std::size_t>(t.col)) +=
        t.value;
  return m;
}

}  // namespace graphio
