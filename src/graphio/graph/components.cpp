#include "graphio/graph/components.hpp"

#include <algorithm>

#include "graphio/support/contracts.hpp"

namespace graphio {

WeakComponents weakly_connected_components(const Digraph& g) {
  const std::int64_t n = g.num_vertices();
  WeakComponents out;
  out.component_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (out.component_of[static_cast<std::size_t>(root)] != -1) continue;
    const int c = out.count++;
    out.vertices.emplace_back();
    stack.assign(1, root);
    out.component_of[static_cast<std::size_t>(root)] = c;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      out.vertices[static_cast<std::size_t>(c)].push_back(v);
      for (std::span<const VertexId> neighbors :
           {g.children(v), g.parents(v)}) {
        for (VertexId w : neighbors) {
          if (out.component_of[static_cast<std::size_t>(w)] != -1) continue;
          out.component_of[static_cast<std::size_t>(w)] = c;
          stack.push_back(w);
        }
      }
    }
    std::sort(out.vertices[static_cast<std::size_t>(c)].begin(),
              out.vertices[static_cast<std::size_t>(c)].end());
  }
  out.local_id.assign(static_cast<std::size_t>(n), 0);
  for (const std::vector<VertexId>& ids : out.vertices)
    for (std::size_t i = 0; i < ids.size(); ++i)
      out.local_id[static_cast<std::size_t>(ids[i])] =
          static_cast<VertexId>(i);
  return out;
}

Digraph WeakComponents::subgraph(const Digraph& g, int c) const {
  GIO_EXPECTS_MSG(c >= 0 && c < count, "component index out of range");
  const std::vector<VertexId>& ids = vertices[static_cast<std::size_t>(c)];
  // Local ids follow the ascending original-id order of vertices[c], so a
  // connected graph's single component reproduces the graph verbatim —
  // identical Laplacian, identical eigensolver run.
  Digraph sub(static_cast<std::int64_t>(ids.size()));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const VertexId v = ids[i];
    for (VertexId w : g.children(v))
      sub.add_edge(static_cast<VertexId>(i),
                   local_id[static_cast<std::size_t>(w)]);
    if (!g.name(v).empty()) sub.set_name(static_cast<VertexId>(i), g.name(v));
  }
  return sub;
}

std::int64_t WeakComponents::edges_in(const Digraph& g, int c) const {
  GIO_EXPECTS_MSG(c >= 0 && c < count, "component index out of range");
  std::int64_t edges = 0;
  for (VertexId v : vertices[static_cast<std::size_t>(c)])
    edges += g.out_degree(v);
  return edges;
}

std::int64_t num_weak_components(const Digraph& g) {
  // One traversal implementation to maintain; the bookkeeping the full
  // decomposition adds is linear and cheap next to the traversal itself.
  return weakly_connected_components(g).count;
}

namespace {

/// Copies `part` into `out` with its vertex ids shifted by `offset`.
void append_part(Digraph& out, const Digraph& part, VertexId offset) {
  for (VertexId v = 0; v < part.num_vertices(); ++v) {
    for (VertexId w : part.children(v)) out.add_edge(offset + v, offset + w);
    if (!part.name(v).empty()) out.set_name(offset + v, part.name(v));
  }
}

}  // namespace

Digraph disjoint_union(std::span<const Digraph> parts,
                       std::vector<VertexId>* offsets) {
  std::int64_t total = 0;
  for (const Digraph& part : parts) total += part.num_vertices();
  Digraph out(total);
  if (offsets != nullptr) {
    offsets->clear();
    offsets->reserve(parts.size());
  }
  VertexId offset = 0;
  for (const Digraph& part : parts) {
    if (offsets != nullptr) offsets->push_back(offset);
    append_part(out, part, offset);
    offset += part.num_vertices();
  }
  return out;
}

Digraph disjoint_copies(const Digraph& part, std::int64_t copies) {
  GIO_EXPECTS_MSG(copies >= 0, "copy count must be non-negative");
  Digraph out(part.num_vertices() * copies);
  for (std::int64_t c = 0; c < copies; ++c)
    append_part(out, part, c * part.num_vertices());
  return out;
}

}  // namespace graphio
