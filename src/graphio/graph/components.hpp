// Weakly-connected-component decomposition — the graph-level half of the
// decompose-and-conquer spectral pipeline (core/spectral_pipeline.hpp).
//
// The Laplacian of a disjoint union is block-diagonal, so its spectrum is
// the multiset union of the components' spectra; both Laplacian kinds in
// laplacian.hpp respect the decomposition exactly (the normalized weight
// 1/dout(u) only reads u's own out-degree, which an induced component
// preserves). Decomposing before eigensolving is therefore exact, and
// asymptotically cheaper whenever the graph is disconnected: the dense
// solver is cubic, so c equal components cost n³/c² instead of n³, and
// small components drop below the dense threshold that a monolithic solve
// of the union would exceed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio {

/// A partition of a digraph into weakly connected components (connected
/// components of the undirected skeleton), with the vertex-map
/// bookkeeping needed to relate component-local results back to the
/// original graph.
struct WeakComponents {
  /// Number of components (0 only for the empty graph).
  int count = 0;
  /// Component index of each original vertex. Components are numbered by
  /// their smallest original vertex id, so the numbering is deterministic.
  std::vector<int> component_of;
  /// Original vertex ids of each component, ascending — local vertex i of
  /// component c is original vertex vertices[c][i].
  std::vector<std::vector<VertexId>> vertices;
  /// Local id of each original vertex within its component (the inverse
  /// of `vertices`), so subgraph extraction is O(n_c + m_c) rather than
  /// rebuilding an O(n) map per component.
  std::vector<VertexId> local_id;

  /// The induced subgraph of component `c`: local ids follow vertices[c]
  /// order, every original edge (and parallel-edge multiplicity) inside
  /// the component is preserved, and so are vertex names.
  [[nodiscard]] Digraph subgraph(const Digraph& g, int c) const;

  /// Edge count of component `c` (edges are never split by a weak
  /// decomposition, so these sum to g.num_edges()).
  [[nodiscard]] std::int64_t edges_in(const Digraph& g, int c) const;
};

/// Decomposes `g` into weakly connected components. O(V + E).
WeakComponents weakly_connected_components(const Digraph& g);

/// Number of weakly connected components, without the bookkeeping.
std::int64_t num_weak_components(const Digraph& g);

/// The disjoint union of `parts`: vertices of parts[i] are renumbered by
/// the running offset (returned in `offsets` when non-null, one entry per
/// part); edges, multiplicities, and names are preserved. The inverse of
/// weakly_connected_components up to component numbering.
Digraph disjoint_union(std::span<const Digraph> parts,
                       std::vector<VertexId>* offsets = nullptr);

/// `copies` disjoint copies of one prototype — disjoint_union without
/// materializing the prototype `copies` times first (the multi:C:SPEC
/// builder; copy counts reach thousands).
Digraph disjoint_copies(const Digraph& part, std::int64_t copies);

}  // namespace graphio
