#include "graphio/graph/topo.hpp"

#include <algorithm>

#include "graphio/support/contracts.hpp"

namespace graphio {

namespace {

/// Kahn's algorithm with a caller-supplied policy for picking the next
/// ready vertex (index into the ready list).
template <typename Pick>
std::optional<std::vector<VertexId>> kahn(const Digraph& g, Pick pick) {
  const std::int64_t n = g.num_vertices();
  std::vector<std::int64_t> missing(static_cast<std::size_t>(n));
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    missing[static_cast<std::size_t>(v)] = g.in_degree(v);
    if (missing[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }

  std::vector<VertexId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const std::size_t idx = pick(ready);
    const VertexId v = ready[idx];
    ready[idx] = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (VertexId child : g.children(v)) {
      if (--missing[static_cast<std::size_t>(child)] == 0)
        ready.push_back(child);
    }
  }
  if (static_cast<std::int64_t>(order.size()) != n) return std::nullopt;
  return order;
}

}  // namespace

std::optional<std::vector<VertexId>> topological_order(const Digraph& g) {
  return kahn(g, [](const std::vector<VertexId>& ready) {
    return static_cast<std::size_t>(
        std::min_element(ready.begin(), ready.end()) - ready.begin());
  });
}

bool is_dag(const Digraph& g) { return topological_order(g).has_value(); }

bool is_topological(const Digraph& g, const std::vector<VertexId>& order) {
  const std::int64_t n = g.num_vertices();
  if (static_cast<std::int64_t>(order.size()) != n) return false;
  std::vector<std::int64_t> position(static_cast<std::size_t>(n), -1);
  for (std::size_t t = 0; t < order.size(); ++t) {
    if (!g.contains(order[t])) return false;
    auto& slot = position[static_cast<std::size_t>(order[t])];
    if (slot != -1) return false;  // duplicate
    slot = static_cast<std::int64_t>(t);
  }
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : g.children(u))
      if (position[static_cast<std::size_t>(u)] >
          position[static_cast<std::size_t>(v)])
        return false;
  return true;
}

std::vector<VertexId> random_topological_order(const Digraph& g, Prng& rng) {
  auto order = kahn(g, [&rng](const std::vector<VertexId>& ready) {
    return static_cast<std::size_t>(rng.below(ready.size()));
  });
  GIO_EXPECTS_MSG(order.has_value(), "graph has a cycle");
  return std::move(*order);
}

std::vector<VertexId> dfs_topological_order(const Digraph& g) {
  const std::int64_t n = g.num_vertices();
  std::vector<int> state(static_cast<std::size_t>(n), 0);  // 0 new 1 open 2 done
  std::vector<VertexId> postorder;
  postorder.reserve(static_cast<std::size_t>(n));

  // Iterative DFS from every root to avoid stack overflow on deep graphs.
  std::vector<std::pair<VertexId, std::size_t>> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (state[static_cast<std::size_t>(root)] != 0) continue;
    stack.emplace_back(root, 0);
    state[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto kids = g.children(v);
      if (next < kids.size()) {
        const VertexId child = kids[next++];
        const auto cs = state[static_cast<std::size_t>(child)];
        GIO_EXPECTS_MSG(cs != 1, "graph has a cycle");
        if (cs == 0) {
          state[static_cast<std::size_t>(child)] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        state[static_cast<std::size_t>(v)] = 2;
        postorder.push_back(v);
        stack.pop_back();
      }
    }
  }
  std::reverse(postorder.begin(), postorder.end());
  return postorder;
}

}  // namespace graphio
