#pragma once

// Deterministic fault injection.
//
// Failure-prone seams (disk appends, compaction renames, worker bodies,
// eigensolve convergence, mid-patch mutation apply) declare a *named site*
// and consult the process-wide FaultRegistry before doing the risky thing.
// A FaultPlan arms sites with deterministic triggers: fire on the Nth hit
// of a site, or per-hit with a seeded-PRNG probability. With no plan
// installed the check is a single relaxed atomic load, so production runs
// pay nothing.
//
// Two consumption styles:
//   faults::inject("store.disk.append")  — throws FaultInjected when armed,
//     modelling an I/O error escaping the call.
//   faults::trip("solver.converge")      — returns true when armed, for
//     seams where the failure mode is a *state* (a solve that reports
//     non-convergence) rather than an exception.
//
// Plans are installed from a textual spec (see FaultPlan::parse):
//   site:nth=N[,kind=K]            fire on exactly the Nth hit (1-based)
//   site:prob=P,seed=S[,kind=K]    fire each hit with probability P
// entries separated by ';'. `kind` defaults to "transient"; the scheduler
// retries transient job faults and quarantines everything else.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graphio/support/prng.hpp"

namespace graphio::faults {

/// Thrown by an armed injection site (the throwing consumption style).
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(std::string site, std::string kind, bool transient);

  const std::string& site() const noexcept { return site_; }
  const std::string& kind() const noexcept { return kind_; }
  bool transient() const noexcept { return transient_; }

 private:
  std::string site_;
  std::string kind_;
  bool transient_ = false;
};

/// One armed trigger. Exactly one of nth / probability is active.
struct FaultSpec {
  std::string site;
  std::string kind = "transient";
  std::int64_t nth = 0;      // fire on exactly this hit (1-based); 0 = off
  double probability = 0.0;  // per-hit Bernoulli when nth == 0
  std::uint64_t seed = 0;    // PRNG seed for probability mode

  bool transient() const noexcept { return kind == "transient"; }
};

/// An ordered set of FaultSpecs, parsed from the --fault-plan grammar.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const noexcept { return specs.empty(); }

  /// Parses `site:nth=N[,kind=K]` / `site:prob=P[,seed=S][,kind=K]`
  /// entries separated by ';'. Throws contract_error on malformed specs
  /// or unknown sites.
  static FaultPlan parse(std::string_view text);
};

/// Listing entry for `graphio faults list`.
struct SiteInfo {
  std::string name;
  std::string description;
  bool armed = false;       // a spec in the installed plan targets this site
  std::int64_t hits = 0;    // evaluations while any plan was installed
  std::int64_t fired = 0;   // faults actually injected
};

/// Process-wide registry of injection sites. Sites are registered eagerly
/// at construction so `graphio faults list` enumerates every seam without
/// executing a workload.
class FaultRegistry {
 public:
  static FaultRegistry& global();

  /// Adds a site (idempotent). Canonical sites self-register.
  void register_site(std::string_view name, std::string_view description);

  /// Replaces the current plan and resets per-site hit counts, so Nth-hit
  /// triggers are deterministic from the moment of installation.
  void install(FaultPlan plan);
  void clear();

  /// Disarmed fast path: one relaxed load, no lock.
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Counts a hit and returns the triggering spec if the plan fires.
  std::optional<FaultSpec> check(std::string_view site);

  /// Throwing style: throws FaultInjected when the plan fires.
  void inject(std::string_view site);
  /// State style: returns true when the plan fires.
  bool trip(std::string_view site);

  std::vector<SiteInfo> sites() const;

 private:
  FaultRegistry();

  struct SiteState {
    std::string description;
    std::int64_t hits = 0;
    std::int64_t fired = 0;
    int spec_index = -1;  // into plan_.specs, -1 when unarmed
    Prng prng{0};
  };

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::map<std::string, SiteState, std::less<>> sites_;
  FaultPlan plan_;
};

/// Site check with the zero-overhead disarmed fast path. Throws
/// FaultInjected when an installed plan fires at `site`.
inline void inject(std::string_view site) {
  FaultRegistry& registry = FaultRegistry::global();
  if (!registry.armed()) return;
  registry.inject(site);
}

/// Non-throwing variant for state-style failure seams.
inline bool trip(std::string_view site) {
  FaultRegistry& registry = FaultRegistry::global();
  if (!registry.armed()) return false;
  return registry.trip(site);
}

/// RAII plan installation for tests: installs on construction, clears on
/// destruction so no plan leaks across test cases.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::string_view spec);
  explicit ScopedFaultPlan(FaultPlan plan);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace graphio::faults
