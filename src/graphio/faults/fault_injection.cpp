#include "graphio/faults/fault_injection.hpp"

#include <charconv>
#include <cstdlib>

#include "graphio/support/contracts.hpp"
#include "graphio/telemetry/metrics.hpp"

namespace graphio::faults {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

std::int64_t parse_int(std::string_view text, std::string_view what) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.begin(), text.end(), value);
  GIO_EXPECTS_MSG(ec == std::errc{} && ptr == text.end(),
                  "fault plan: bad " + std::string(what) + " '" +
                      std::string(text) + "'");
  return value;
}

double parse_double(std::string_view text, std::string_view what) {
  std::string owned(text);
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  GIO_EXPECTS_MSG(end == owned.c_str() + owned.size() && !owned.empty(),
                  "fault plan: bad " + std::string(what) + " '" + owned + "'");
  return value;
}

std::uint64_t site_hash(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

telemetry::Counter& injected_counter() {
  static telemetry::Counter& counter =
      telemetry::MetricsRegistry::global().counter("faults.injected");
  return counter;
}

}  // namespace

FaultInjected::FaultInjected(std::string site, std::string kind,
                             bool transient)
    : std::runtime_error("injected fault at " + site + " (kind=" + kind + ")"),
      site_(std::move(site)),
      kind_(std::move(kind)),
      transient_(transient) {}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view entry = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    GIO_EXPECTS_MSG(colon != std::string_view::npos && colon > 0,
                    "fault plan: entry '" + std::string(entry) +
                        "' is not site:key=value[,key=value...]");
    FaultSpec spec;
    spec.site = std::string(trim(entry.substr(0, colon)));
    bool have_nth = false;
    bool have_prob = false;
    bool have_seed = false;

    std::string_view params = entry.substr(colon + 1);
    while (!params.empty()) {
      const std::size_t comma = params.find(',');
      std::string_view kv = trim(params.substr(0, comma));
      params = comma == std::string_view::npos ? std::string_view{}
                                               : params.substr(comma + 1);
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      GIO_EXPECTS_MSG(eq != std::string_view::npos,
                      "fault plan: parameter '" + std::string(kv) +
                          "' is not key=value");
      const std::string_view key = trim(kv.substr(0, eq));
      const std::string_view value = trim(kv.substr(eq + 1));
      if (key == "nth") {
        spec.nth = parse_int(value, "nth");
        GIO_EXPECTS_MSG(spec.nth >= 1, "fault plan: nth must be >= 1");
        have_nth = true;
      } else if (key == "prob") {
        spec.probability = parse_double(value, "prob");
        GIO_EXPECTS_MSG(spec.probability >= 0.0 && spec.probability <= 1.0,
                        "fault plan: prob must be in [0, 1]");
        have_prob = true;
      } else if (key == "seed") {
        spec.seed = static_cast<std::uint64_t>(parse_int(value, "seed"));
        have_seed = true;
      } else if (key == "kind") {
        GIO_EXPECTS_MSG(!value.empty(), "fault plan: empty kind");
        spec.kind = std::string(value);
      } else {
        GIO_EXPECTS_MSG(false, "fault plan: unknown parameter '" +
                                   std::string(key) + "'");
      }
    }
    GIO_EXPECTS_MSG(have_nth != have_prob,
                    "fault plan: entry for '" + spec.site +
                        "' needs exactly one of nth= or prob=");
    GIO_EXPECTS_MSG(!have_seed || have_prob,
                    "fault plan: seed= only applies to prob= triggers");
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

FaultRegistry& FaultRegistry::global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() {
  register_site("store.disk.append",
                "artifact store disk-tier log append");
  register_site("store.disk.compact",
                "artifact store compaction tmp->rename");
  register_site("result_store.append",
                "serve result store log append");
  register_site("provenance.append",
                "provenance trail append");
  register_site("solver.converge",
                "force an eigensolve to report non-convergence");
  register_site("serve.worker",
                "scheduler worker job body");
  register_site("stream.apply",
                "mid-patch mutation apply");
}

void FaultRegistry::register_site(std::string_view name,
                                  std::string_view description) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = sites_[std::string(name)];
  if (state.description.empty()) state.description = std::string(description);
}

void FaultRegistry::install(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, state] : sites_) {
    state.hits = 0;
    state.fired = 0;
    state.spec_index = -1;
  }
  plan_ = std::move(plan);
  for (int i = 0; i < static_cast<int>(plan_.specs.size()); ++i) {
    const FaultSpec& spec = plan_.specs[static_cast<std::size_t>(i)];
    auto it = sites_.find(spec.site);
    GIO_EXPECTS_MSG(it != sites_.end(),
                    "fault plan: unknown site '" + spec.site +
                        "' (see `graphio faults list`)");
    GIO_EXPECTS_MSG(it->second.spec_index < 0,
                    "fault plan: duplicate entry for site '" + spec.site +
                        "'");
    it->second.spec_index = i;
    it->second.prng = Prng(spec.seed ^ site_hash(spec.site));
  }
  armed_.store(!plan_.specs.empty(), std::memory_order_relaxed);
}

void FaultRegistry::clear() { install(FaultPlan{}); }

std::optional<FaultSpec> FaultRegistry::check(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Unregistered sites are tolerated (counted from first sight) so a seam
    // added without updating the canonical list still injects.
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& state = it->second;
  ++state.hits;
  if (state.spec_index < 0) return std::nullopt;
  const FaultSpec& spec = plan_.specs[static_cast<std::size_t>(state.spec_index)];
  const bool fire = spec.nth > 0 ? state.hits == spec.nth
                                 : state.prng.bernoulli(spec.probability);
  if (!fire) return std::nullopt;
  ++state.fired;
  injected_counter().increment();
  return spec;
}

void FaultRegistry::inject(std::string_view site) {
  std::optional<FaultSpec> spec = check(site);
  if (spec)
    throw FaultInjected(spec->site, spec->kind, spec->transient());
}

bool FaultRegistry::trip(std::string_view site) {
  return check(site).has_value();
}

std::vector<SiteInfo> FaultRegistry::sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SiteInfo> out;
  out.reserve(sites_.size());
  for (const auto& [name, state] : sites_) {
    SiteInfo info;
    info.name = name;
    info.description = state.description;
    info.armed = state.spec_index >= 0;
    info.hits = state.hits;
    info.fired = state.fired;
    out.push_back(std::move(info));
  }
  return out;
}

ScopedFaultPlan::ScopedFaultPlan(std::string_view spec) {
  FaultRegistry::global().install(FaultPlan::parse(spec));
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) {
  FaultRegistry::global().install(std::move(plan));
}

ScopedFaultPlan::~ScopedFaultPlan() { FaultRegistry::global().clear(); }

}  // namespace graphio::faults
