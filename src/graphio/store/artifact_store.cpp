#include "graphio/store/artifact_store.hpp"

#include <charconv>
#include <limits>

#include <cstdio>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/io/json.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/durability.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio::store {

namespace {

// Registry mirrors of the per-kind Stats counters plus disk-tier events.
// Process-wide lifetime totals; the struct Stats stays the per-instance
// view. One relaxed atomic add per event once resolved.
struct KindMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& evicted;
};

struct StoreMetrics {
  KindMetrics spectrum;
  KindMetrics topo;
  KindMetrics mincut;
  KindMetrics memsim;
  KindMetrics partition;
  KindMetrics eigenbasis;
  telemetry::Counter& loaded;
  telemetry::Counter& corrupt;
  telemetry::Counter& appended;
  telemetry::Counter& demoted;
};

StoreMetrics& store_metrics() {
  auto& reg = telemetry::MetricsRegistry::global();
  auto kind = [&reg](const char* name) {
    const std::string prefix = std::string("store.") + name;
    return KindMetrics{reg.counter(prefix + ".hits"),
                       reg.counter(prefix + ".misses"),
                       reg.counter(prefix + ".evicted")};
  };
  static StoreMetrics metrics{kind("spectrum"),
                              kind("topo"),
                              kind("mincut"),
                              kind("memsim"),
                              kind("partition"),
                              kind("eigenbasis"),
                              reg.counter("store.disk.loaded"),
                              reg.counter("store.disk.corrupt"),
                              reg.counter("store.disk.appended"),
                              reg.counter("store.disk.demoted")};
  return metrics;
}

// Marker event under the current span (a method or stream query span)
// when tracing is on — the hit/miss attribution per lookup the counters
// cannot give.
void trace_lookup(const char* kind, bool hit) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  if (!tracer.enabled()) return;
  tracer.instant(hit ? "store.hit" : "store.miss",
                 {telemetry::Attr::str("kind", kind)});
}

/// Round-trippable double rendering (same contract as the ResultStore's):
/// a value always looks up the way it was written.
std::string format_double_exact(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                       std::chars_format::general, 17);
  GIO_ASSERT(ec == std::errc());
  return std::string(buf, static_cast<std::size_t>(end - buf));
}

std::uint64_t parse_fingerprint(const std::string& hex) {
  GIO_EXPECTS_MSG(hex.size() == 16, "bad fingerprint");
  std::uint64_t fp = 0;
  const auto [p, ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), fp, 16);
  GIO_EXPECTS_MSG(ec == std::errc() && p == hex.data() + hex.size(),
                  "bad fingerprint");
  return fp;
}

std::string_view lap_name(LaplacianKind kind) {
  return kind == LaplacianKind::kPlain ? "plain" : "norm";
}

LaplacianKind lap_from(const std::string& s) {
  if (s == "plain") return LaplacianKind::kPlain;
  if (s == "norm") return LaplacianKind::kOutDegreeNormalized;
  GIO_EXPECTS_MSG(false, "unknown laplacian kind '" + s + "'");
  return LaplacianKind::kPlain;  // unreachable
}

std::string_view flow_name(flow::FlowEngine engine) {
  return engine == flow::FlowEngine::kDinic ? "dinic" : "push-relabel";
}

flow::FlowEngine flow_from(const std::string& s) {
  if (s == "dinic") return flow::FlowEngine::kDinic;
  if (s == "push-relabel") return flow::FlowEngine::kPushRelabel;
  GIO_EXPECTS_MSG(false, "unknown flow engine '" + s + "'");
  return flow::FlowEngine::kDinic;  // unreachable
}

la::SolverKind solver_from(const std::string& s) {
  if (s == "dense") return la::SolverKind::kDense;
  if (s == "lanczos") return la::SolverKind::kLanczos;
  if (s == "lobpcg") return la::SolverKind::kLobpcg;
  GIO_EXPECTS_MSG(false, "unknown solver kind '" + s + "'");
  return la::SolverKind::kDense;  // unreachable
}

std::string spectrum_line(std::uint64_t fp, LaplacianKind kind,
                          int requested, const std::string& options_key,
                          const ComponentSolve& solve) {
  io::JsonWriter w;
  w.begin_object();
  w.key("kind").value("spectrum");
  w.key("fp").value(engine::fingerprint_hex(fp));
  w.key("lap").value(lap_name(kind));
  w.key("opts").value(options_key);
  w.key("requested").value(requested);
  w.key("vertices").value(solve.vertices);
  w.key("edges").value(solve.edges);
  w.key("solver").value(la::to_string(solve.solver));
  w.key("converged").value(solve.converged);
  // Provenance of the producing solve, written only when non-default so
  // pre-existing logs stay byte-compatible and replay stays cheap.
  if (solve.iterations != 0) w.key("iterations").value(solve.iterations);
  if (solve.warm_started) w.key("warm").value(true);
  if (solve.refresh) w.key("refresh").value(true);
  if (solve.max_residual != 0.0)
    w.key("residual").value(solve.max_residual);
  if (solve.warm_predecessor != 0)
    w.key("pred").value(engine::fingerprint_hex(solve.warm_predecessor));
  if (!solve.solver_reason.empty())
    w.key("reason").value(solve.solver_reason);
  w.key("values").begin_array();
  for (double v : solve.values) w.value(v);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string topo_line(std::uint64_t fp, const TopoOrderArtifact& topo) {
  io::JsonWriter w;
  w.begin_object();
  w.key("kind").value("topo");
  w.key("fp").value(engine::fingerprint_hex(fp));
  w.key("order").begin_array();
  for (VertexId v : topo.order) w.value(static_cast<std::int64_t>(v));
  w.end_array();
  w.end_object();
  return w.str();
}

std::string mincut_line(std::uint64_t fp, flow::FlowEngine engine,
                        const MincutSweepArtifact& sweep) {
  io::JsonWriter w;
  w.begin_object();
  w.key("kind").value("mincut");
  w.key("fp").value(engine::fingerprint_hex(fp));
  w.key("engine").value(flow_name(engine));
  w.key("best_cut").value(sweep.best_cut);
  w.key("best_vertex").value(static_cast<std::int64_t>(sweep.best_vertex));
  w.key("vertices_processed").value(sweep.vertices_processed);
  w.end_object();
  return w.str();
}

std::string memsim_line(std::uint64_t fp, std::int64_t memory,
                        int random_orders, const MemsimRowArtifact& row) {
  io::JsonWriter w;
  w.begin_object();
  w.key("kind").value("memsim");
  w.key("fp").value(engine::fingerprint_hex(fp));
  w.key("memory").value(memory);
  w.key("orders").value(random_orders);
  w.key("reads").value(row.reads);
  w.key("writes").value(row.writes);
  w.end_object();
  return w.str();
}

std::string partition_line(std::uint64_t fp, double memory,
                           const PartitionRowArtifact& row) {
  io::JsonWriter w;
  w.begin_object();
  w.key("kind").value("partition");
  w.key("fp").value(engine::fingerprint_hex(fp));
  w.key("memory").value(memory);
  w.key("objective").value(row.objective);
  w.key("segments").value(row.segments);
  w.end_object();
  return w.str();
}

}  // namespace

std::string ArtifactStore::spectral_options_key(
    const SpectralOptions& options) {
  // Exactly the fields of solver_options_equal, pipe-joined; the solver
  // policy names are identifiers, so '|' never collides.
  std::string out = std::to_string(static_cast<int>(options.backend));
  out += '|';
  out += options.solver;
  out += options.decompose ? "|1|" : "|0|";
  out += format_double_exact(options.eig_rel_tol);
  out += '|';
  out += format_double_exact(options.warm_refresh_rel_tol);
  out += '|';
  out += std::to_string(options.dense_threshold);
  out += '|';
  out += std::to_string(options.dense_rescue_threshold);
  out += '|';
  out += std::to_string(options.lanczos.block_size);
  out += '|';
  out += std::to_string(options.lanczos.max_basis);
  out += '|';
  out += std::to_string(options.lanczos.stall_basis_cap);
  out += '|';
  out += std::to_string(options.lanczos.max_cycles);
  return out;
}

ArtifactStore::ArtifactStore(const std::filesystem::path& dir) {
  GIO_EXPECTS_MSG(!dir.empty(), "artifact store directory must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  GIO_EXPECTS_MSG(!ec, "cannot create artifact store directory '" +
                           dir.string() + "': " + ec.message());
  GIO_EXPECTS_MSG(std::filesystem::is_directory(dir, ec) && !ec,
                  "artifact store path '" + dir.string() +
                      "' is not a directory");
  log_path_ = dir / "artifacts.jsonl";

  if (std::filesystem::exists(log_path_)) {
    std::ifstream in(log_path_);
    GIO_EXPECTS_MSG(in.good(), "cannot read artifact store log '" +
                                   log_path_.string() + "'");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        replay_line_locked(line);
        ++stats_.loaded;
      } catch (const std::exception&) {
        ++stats_.corrupt;  // torn/garbage line; keep replaying
      }
    }
    store_metrics().loaded.add(stats_.loaded);
    store_metrics().corrupt.add(stats_.corrupt);
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant("store.replay",
                     {telemetry::Attr::integer("loaded", stats_.loaded),
                      telemetry::Attr::integer("corrupt", stats_.corrupt)});
    }
  }

  log_.open(log_path_, std::ios::app);
  GIO_EXPECTS_MSG(log_.good(), "cannot append to artifact store log '" +
                                   log_path_.string() + "'");
}

void ArtifactStore::replay_line_locked(const std::string& line) {
  const io::JsonValue v = io::JsonValue::parse(line);
  const std::string& kind = v.at("kind").as_string();
  const std::uint64_t fp = parse_fingerprint(v.at("fp").as_string());
  if (kind == "spectrum") {
    ComponentSolve solve;
    solve.vertices = v.at("vertices").as_int();
    solve.edges = v.at("edges").as_int();
    solve.solver = solver_from(v.at("solver").as_string());
    solve.converged = v.at("converged").as_bool();
    // Optional provenance keys (absent in logs written before they
    // existed — defaults are the cold-solve values).
    if (const io::JsonValue* it = v.get("iterations"))
      solve.iterations = static_cast<int>(it->as_int());
    if (const io::JsonValue* warm = v.get("warm"))
      solve.warm_started = warm->as_bool();
    if (const io::JsonValue* refresh = v.get("refresh"))
      solve.refresh = refresh->as_bool();
    if (const io::JsonValue* residual = v.get("residual"))
      solve.max_residual = residual->as_double();
    if (const io::JsonValue* pred = v.get("pred"))
      solve.warm_predecessor = parse_fingerprint(pred->as_string());
    if (const io::JsonValue* reason = v.get("reason"))
      solve.solver_reason = reason->as_string();
    solve.from_disk = true;  // this entry's values crossed a process restart
    for (const io::JsonValue& item : v.at("values").items())
      solve.values.push_back(item.as_double());
    put_spectrum_locked(fp, lap_from(v.at("lap").as_string()),
                        static_cast<int>(v.at("requested").as_int()),
                        v.at("opts").as_string(), solve);
    return;
  }
  if (kind == "topo") {
    TopoOrderArtifact topo;
    for (const io::JsonValue& item : v.at("order").items())
      topo.order.push_back(static_cast<VertexId>(item.as_int()));
    put_topo_locked(fp, topo);
    return;
  }
  if (kind == "mincut") {
    MincutSweepArtifact sweep;
    sweep.best_cut = v.at("best_cut").as_int();
    sweep.best_vertex = static_cast<VertexId>(v.at("best_vertex").as_int());
    sweep.vertices_processed = v.at("vertices_processed").as_int();
    sweep.completed = true;  // only completed sweeps are persisted
    put_mincut_locked(fp, flow_from(v.at("engine").as_string()), sweep);
    return;
  }
  if (kind == "memsim") {
    MemsimRowArtifact row;
    row.reads = v.at("reads").as_int();
    row.writes = v.at("writes").as_int();
    put_memsim_locked(fp, v.at("memory").as_int(),
                      static_cast<int>(v.at("orders").as_int()), row);
    return;
  }
  if (kind == "partition") {
    PartitionRowArtifact row;
    row.objective = v.at("objective").as_double();
    row.segments = v.at("segments").as_int();
    put_partition_locked(fp, v.at("memory").as_double(), row);
    return;
  }
  GIO_EXPECTS_MSG(false, "unknown artifact kind '" + kind + "'");
}

void ArtifactStore::append_locked(const std::string& line) {
  if (demoted_) return;
  try {
    faults::inject("store.disk.append");
    log_ << line << '\n';
    log_.flush();
    // A failed flush (ENOSPC, short write) sets badbit; the line may be
    // torn on disk, which replay tolerates. Never keep writing into a
    // failed stream — that is how logs corrupt.
    if (!log_.good())
      throw std::runtime_error("write failed on '" + log_path_.string() +
                               "'");
    ++stats_.appended;
    store_metrics().appended.increment();
  } catch (const std::exception& e) {
    demote_locked(e.what());
  }
}

void ArtifactStore::demote_locked(const std::string& why) {
  demoted_ = true;
  stats_.demoted = true;
  store_metrics().demoted.increment();
  log_.close();
  std::fprintf(stderr,
               "graphio: artifact store disk tier disabled (%s); "
               "continuing memory-only\n",
               why.c_str());
}

// ------------------------------------------------------------- spectrum

std::optional<ComponentSolve> ArtifactStore::lookup_spectrum(
    std::uint64_t fingerprint, LaplacianKind kind, int count,
    const SpectralOptions& options) {
  const std::string key = spectral_options_key(options);
  const std::scoped_lock lock(mutex_);
  const auto it = spectra_.find({fingerprint, kind});
  if (it != spectra_.end()) {
    for (const SpectrumEntry& entry : it->second) {
      if (entry.requested < count || entry.options_key != key) continue;
      ++stats_.spectrum.hits;
      store_metrics().spectrum.hits.increment();
      trace_lookup("spectrum", true);
      ComponentSolve solve = entry.solve;
      // Truncate to the request (values are ascending, so the prefix IS
      // the smallest `count`) — equal-count requests then see one
      // deterministic answer regardless of population order.
      if (static_cast<int>(solve.values.size()) > count)
        solve.values.resize(static_cast<std::size_t>(count));
      solve.from_cache = true;
      solve.solver_ran = false;  // this call ran no eigensolver
      solve.seconds = 0.0;
      return solve;
    }
  }
  ++stats_.spectrum.misses;
  store_metrics().spectrum.misses.increment();
  trace_lookup("spectrum", false);
  return std::nullopt;
}

bool ArtifactStore::put_spectrum_locked(std::uint64_t fingerprint,
                                        LaplacianKind kind, int requested,
                                        const std::string& options_key,
                                        const ComponentSolve& solve) {
  std::vector<SpectrumEntry>& slots = spectra_[{fingerprint, kind}];
  for (SpectrumEntry& entry : slots) {
    if (entry.options_key != options_key) continue;
    // Two workers can race to solve the same component; keep the entry
    // that answers more future requests (ties keep the existing one).
    if (entry.requested >= requested) return false;
    entry.solve = solve;
    entry.solve.from_cache = false;
    entry.requested = requested;
    return true;
  }
  SpectrumEntry entry;
  entry.options_key = options_key;
  entry.requested = requested;
  entry.solve = solve;
  entry.solve.from_cache = false;
  slots.push_back(std::move(entry));
  ++stats_.spectrum.entries;
  return true;
}

void ArtifactStore::store_spectrum(std::uint64_t fingerprint,
                                   LaplacianKind kind, int requested,
                                   const SpectralOptions& options,
                                   const ComponentSolve& solve) {
  const std::string key = spectral_options_key(options);
  const std::scoped_lock lock(mutex_);
  if (!put_spectrum_locked(fingerprint, kind, requested, key, solve)) return;
  if (durable() && solve.converged)
    append_locked(spectrum_line(fingerprint, kind, requested, key, solve));
}

// ----------------------------------------------------------- topo order

std::optional<TopoOrderArtifact> ArtifactStore::lookup_topo(
    std::uint64_t fingerprint) {
  const std::scoped_lock lock(mutex_);
  const auto it = topo_.find(fingerprint);
  if (it == topo_.end()) {
    ++stats_.topo.misses;
    store_metrics().topo.misses.increment();
    trace_lookup("topo", false);
    return std::nullopt;
  }
  ++stats_.topo.hits;
  store_metrics().topo.hits.increment();
  trace_lookup("topo", true);
  return it->second;
}

bool ArtifactStore::put_topo_locked(std::uint64_t fingerprint,
                                    const TopoOrderArtifact& topo) {
  if (!topo_.emplace(fingerprint, topo).second) return false;
  ++stats_.topo.entries;
  return true;
}

void ArtifactStore::store_topo(std::uint64_t fingerprint,
                               const TopoOrderArtifact& topo) {
  const std::scoped_lock lock(mutex_);
  if (!put_topo_locked(fingerprint, topo)) return;
  if (durable()) append_locked(topo_line(fingerprint, topo));
}

// -------------------------------------------------------- min-cut sweep

std::optional<MincutSweepArtifact> ArtifactStore::lookup_mincut(
    std::uint64_t fingerprint, flow::FlowEngine engine) {
  const std::scoped_lock lock(mutex_);
  const auto it = mincut_.find({fingerprint, engine});
  if (it == mincut_.end()) {
    ++stats_.mincut.misses;
    store_metrics().mincut.misses.increment();
    trace_lookup("mincut", false);
    return std::nullopt;
  }
  ++stats_.mincut.hits;
  store_metrics().mincut.hits.increment();
  trace_lookup("mincut", true);
  return it->second;
}

bool ArtifactStore::put_mincut_locked(std::uint64_t fingerprint,
                                      flow::FlowEngine engine,
                                      const MincutSweepArtifact& sweep) {
  if (!mincut_.emplace(std::make_pair(fingerprint, engine), sweep).second)
    return false;
  ++stats_.mincut.entries;
  return true;
}

void ArtifactStore::store_mincut(std::uint64_t fingerprint,
                                 flow::FlowEngine engine,
                                 const MincutSweepArtifact& sweep) {
  const std::scoped_lock lock(mutex_);
  if (!put_mincut_locked(fingerprint, engine, sweep)) return;
  if (durable() && sweep.completed)
    append_locked(mincut_line(fingerprint, engine, sweep));
}

// ----------------------------------------------------------- memsim row

std::optional<MemsimRowArtifact> ArtifactStore::lookup_memsim(
    std::uint64_t fingerprint, std::int64_t memory, int random_orders) {
  const std::scoped_lock lock(mutex_);
  const auto it = memsim_.find({fingerprint, memory, random_orders});
  if (it == memsim_.end()) {
    ++stats_.memsim.misses;
    store_metrics().memsim.misses.increment();
    trace_lookup("memsim", false);
    return std::nullopt;
  }
  ++stats_.memsim.hits;
  store_metrics().memsim.hits.increment();
  trace_lookup("memsim", true);
  return it->second;
}

bool ArtifactStore::put_memsim_locked(std::uint64_t fingerprint,
                                      std::int64_t memory, int random_orders,
                                      const MemsimRowArtifact& row) {
  if (!memsim_
           .emplace(std::make_tuple(fingerprint, memory, random_orders), row)
           .second)
    return false;
  ++stats_.memsim.entries;
  return true;
}

void ArtifactStore::store_memsim(std::uint64_t fingerprint,
                                 std::int64_t memory, int random_orders,
                                 const MemsimRowArtifact& row) {
  const std::scoped_lock lock(mutex_);
  if (!put_memsim_locked(fingerprint, memory, random_orders, row)) return;
  if (durable())
    append_locked(memsim_line(fingerprint, memory, random_orders, row));
}

// -------------------------------------------------------- partition row

std::optional<PartitionRowArtifact> ArtifactStore::lookup_partition(
    std::uint64_t fingerprint, double memory) {
  const std::scoped_lock lock(mutex_);
  const auto it = partition_.find({fingerprint, memory});
  if (it == partition_.end()) {
    ++stats_.partition.misses;
    store_metrics().partition.misses.increment();
    trace_lookup("partition", false);
    return std::nullopt;
  }
  ++stats_.partition.hits;
  store_metrics().partition.hits.increment();
  trace_lookup("partition", true);
  return it->second;
}

bool ArtifactStore::put_partition_locked(std::uint64_t fingerprint,
                                         double memory,
                                         const PartitionRowArtifact& row) {
  if (!partition_.emplace(std::make_pair(fingerprint, memory), row).second)
    return false;
  ++stats_.partition.entries;
  return true;
}

void ArtifactStore::store_partition(std::uint64_t fingerprint, double memory,
                                    const PartitionRowArtifact& row) {
  const std::scoped_lock lock(mutex_);
  if (!put_partition_locked(fingerprint, memory, row)) return;
  if (durable()) append_locked(partition_line(fingerprint, memory, row));
}

// ----------------------------------------------------------- eigenbasis

std::optional<Eigenbasis> ArtifactStore::lookup_eigenbasis(
    std::uint64_t fingerprint, LaplacianKind kind) {
  const std::scoped_lock lock(mutex_);
  if (basis_budget_ > 0) {
    const auto it = bases_.find({fingerprint, kind});
    if (it != bases_.end()) {
      it->second.last_used = ++basis_tick_;
      ++stats_.eigenbasis.hits;
      store_metrics().eigenbasis.hits.increment();
      trace_lookup("eigenbasis", true);
      return it->second.basis;
    }
  }
  ++stats_.eigenbasis.misses;
  store_metrics().eigenbasis.misses.increment();
  trace_lookup("eigenbasis", false);
  return std::nullopt;
}

void ArtifactStore::store_eigenbasis(std::uint64_t fingerprint,
                                     LaplacianKind kind, Eigenbasis basis) {
  const std::scoped_lock lock(mutex_);
  if (basis_budget_ <= 0) return;  // tier off: drop on the floor
  const auto bytes = static_cast<std::int64_t>(basis.bytes());
  auto [it, inserted] = bases_.try_emplace({fingerprint, kind});
  if (!inserted) basis_bytes_ -= static_cast<std::int64_t>(it->second.bytes);
  else ++stats_.eigenbasis.entries;
  it->second.basis = std::move(basis);
  it->second.bytes = static_cast<std::size_t>(bytes);
  it->second.last_used = ++basis_tick_;
  basis_bytes_ += bytes;
  evict_eigenbases_locked();
}

void ArtifactStore::adopt_eigenbasis(std::uint64_t from, std::uint64_t to) {
  const std::scoped_lock lock(mutex_);
  if (from == to || bases_.empty()) return;
  auto it = bases_.lower_bound({from, LaplacianKind{}});
  while (it != bases_.end() && it->first.first == from) {
    BasisEntry entry = std::move(it->second);
    const LaplacianKind kind = it->first.second;
    it = bases_.erase(it);
    entry.basis.predecessor = from;
    auto [slot, inserted] = bases_.try_emplace({to, kind});
    if (!inserted) {
      // The successor already has its own basis — keep it, drop ours.
      basis_bytes_ -= static_cast<std::int64_t>(entry.bytes);
      --stats_.eigenbasis.entries;
      continue;
    }
    slot->second = std::move(entry);
  }
}

void ArtifactStore::evict_eigenbases_locked() {
  while (basis_bytes_ > basis_budget_ && !bases_.empty()) {
    auto victim = bases_.begin();
    for (auto it = bases_.begin(); it != bases_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    basis_bytes_ -= static_cast<std::int64_t>(victim->second.bytes);
    bases_.erase(victim);
    --stats_.eigenbasis.entries;
    ++stats_.eigenbasis.evicted;
    store_metrics().eigenbasis.evicted.increment();
  }
}

void ArtifactStore::set_eigenbasis_budget(std::int64_t bytes) {
  const std::scoped_lock lock(mutex_);
  basis_budget_ = bytes < 0 ? 0 : bytes;
  if (basis_budget_ == 0) {
    stats_.eigenbasis.entries -= static_cast<std::int64_t>(bases_.size());
    bases_.clear();
    basis_bytes_ = 0;
  } else {
    evict_eigenbases_locked();
  }
}

std::int64_t ArtifactStore::eigenbasis_budget() const {
  const std::scoped_lock lock(mutex_);
  return basis_budget_;
}

std::int64_t ArtifactStore::eigenbasis_bytes() const {
  const std::scoped_lock lock(mutex_);
  return basis_bytes_;
}

// ------------------------------------------------------------- lifetime

std::int64_t ArtifactStore::erase(std::uint64_t fingerprint) {
  const std::scoped_lock lock(mutex_);
  std::int64_t removed = 0;
  // Each map's keys sort by fingerprint first, so a fingerprint's entries
  // form one contiguous range starting at the smallest secondary key.
  {
    auto it = spectra_.lower_bound({fingerprint, LaplacianKind{}});
    while (it != spectra_.end() && it->first.first == fingerprint) {
      const auto n = static_cast<std::int64_t>(it->second.size());
      stats_.spectrum.entries -= n;
      stats_.spectrum.evicted += n;
      store_metrics().spectrum.evicted.add(n);
      removed += n;
      it = spectra_.erase(it);
    }
  }
  if (topo_.erase(fingerprint) > 0) {
    --stats_.topo.entries;
    ++stats_.topo.evicted;
    store_metrics().topo.evicted.increment();
    ++removed;
  }
  {
    auto it = mincut_.lower_bound({fingerprint, flow::FlowEngine{}});
    while (it != mincut_.end() && it->first.first == fingerprint) {
      --stats_.mincut.entries;
      ++stats_.mincut.evicted;
      store_metrics().mincut.evicted.increment();
      ++removed;
      it = mincut_.erase(it);
    }
  }
  {
    auto it = memsim_.lower_bound(std::make_tuple(
        fingerprint, std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<int>::min()));
    while (it != memsim_.end() && std::get<0>(it->first) == fingerprint) {
      --stats_.memsim.entries;
      ++stats_.memsim.evicted;
      store_metrics().memsim.evicted.increment();
      ++removed;
      it = memsim_.erase(it);
    }
  }
  {
    auto it = partition_.lower_bound(
        {fingerprint, -std::numeric_limits<double>::infinity()});
    while (it != partition_.end() && it->first.first == fingerprint) {
      --stats_.partition.entries;
      ++stats_.partition.evicted;
      store_metrics().partition.evicted.increment();
      ++removed;
      it = partition_.erase(it);
    }
  }
  {
    auto it = bases_.lower_bound({fingerprint, LaplacianKind{}});
    while (it != bases_.end() && it->first.first == fingerprint) {
      basis_bytes_ -= static_cast<std::int64_t>(it->second.bytes);
      --stats_.eigenbasis.entries;
      ++stats_.eigenbasis.evicted;
      store_metrics().eigenbasis.evicted.increment();
      ++removed;
      it = bases_.erase(it);
    }
  }
  return removed;
}

void ArtifactStore::clear() {
  const std::scoped_lock lock(mutex_);
  spectra_.clear();
  topo_.clear();
  mincut_.clear();
  memsim_.clear();
  partition_.clear();
  bases_.clear();
  basis_bytes_ = 0;
  stats_.spectrum.entries = 0;
  stats_.topo.entries = 0;
  stats_.mincut.entries = 0;
  stats_.memsim.entries = 0;
  stats_.partition.entries = 0;
  stats_.eigenbasis.entries = 0;
}

std::int64_t ArtifactStore::compact() {
  const std::scoped_lock lock(mutex_);
  GIO_EXPECTS_MSG(durable(), "artifact store has no disk tier to compact");
  std::filesystem::path tmp = log_path_;
  tmp += ".tmp";
  std::int64_t written = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    GIO_EXPECTS_MSG(out.good(), "cannot write compacted artifact log '" +
                                    tmp.string() + "'");
    for (const auto& [key, slots] : spectra_)
      for (const SpectrumEntry& entry : slots) {
        if (!entry.solve.converged) continue;  // never persisted
        out << spectrum_line(key.first, key.second, entry.requested,
                             entry.options_key, entry.solve)
            << '\n';
        ++written;
      }
    for (const auto& [fp, topo] : topo_) {
      out << topo_line(fp, topo) << '\n';
      ++written;
    }
    for (const auto& [key, sweep] : mincut_) {
      if (!sweep.completed) continue;
      out << mincut_line(key.first, key.second, sweep) << '\n';
      ++written;
    }
    for (const auto& [key, row] : memsim_) {
      out << memsim_line(std::get<0>(key), std::get<1>(key),
                         std::get<2>(key), row)
          << '\n';
      ++written;
    }
    for (const auto& [key, row] : partition_) {
      out << partition_line(key.first, key.second, row) << '\n';
      ++written;
    }
    out.flush();
    GIO_EXPECTS_MSG(out.good(), "error writing compacted artifact log '" +
                                    tmp.string() + "'");
  }
  log_.close();
  std::error_code ec;
  const bool injected = faults::trip("store.disk.compact");
  if (!injected) std::filesystem::rename(tmp, log_path_, ec);
  if (injected || ec) {
    // The original log is untouched by a failed rename: drop the stale
    // .tmp, resume appending to the original, and surface the failure.
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    log_.open(log_path_, std::ios::app);
    if (injected)
      throw faults::FaultInjected("store.disk.compact", "io", false);
    GIO_EXPECTS_MSG(false, "cannot replace artifact log '" +
                               log_path_.string() + "': " + ec.message());
  }
  // Make the rename itself durable: without a directory fsync a crash can
  // resurface the old inode — or nothing at all.
  fsync_path(log_path_.string());
  fsync_parent_dir(log_path_.string());
  log_.open(log_path_, std::ios::app);
  GIO_EXPECTS_MSG(log_.good(), "cannot reopen artifact store log '" +
                                   log_path_.string() + "'");
  return written;
}

void ArtifactStore::sync() {
  const std::scoped_lock lock(mutex_);
  if (!durable()) return;
  log_.flush();
  if (!log_.good()) {
    demote_locked("flush failed on '" + log_path_.string() + "'");
    return;
  }
  fsync_path(log_path_.string());
}

ArtifactStore::Stats ArtifactStore::stats() const {
  const std::scoped_lock lock(mutex_);
  Stats out = stats_;
  out.eigenbasis_bytes = basis_bytes_;
  return out;
}

}  // namespace graphio::store
