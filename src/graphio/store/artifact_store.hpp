// ArtifactStore — typed, content-addressed store of per-component
// analysis artifacts, with an optional durable tier.
//
// Kwasniewski-style composability (PAPERS.md) says every per-component
// artifact the bound methods consume — not just eigen-spectra — is a pure
// function of the component's content: its spectrum, its topological
// order, its max-wavefront min-cut sweep, its memsim schedule row, its
// optimal Lemma 1 partition objective. The store therefore keys every
// kind by the component's content
// fingerprint (engine/fingerprint.hpp) plus a kind-specific options key,
// and serves them across specs, across stream patches, and (with the disk
// tier) across process restarts:
//
//   memory tier   mutex-guarded maps, refcount-evicted by the stream
//                 session via erase(fingerprint) — subsumes the former
//                 ComponentSpectrumCache with identical hit semantics;
//   disk tier     append-only JSONL (`<dir>/artifacts.jsonl`), mirroring
//                 serve/ResultStore: replayed on startup, torn/garbage
//                 lines counted and skipped, inserts appended and
//                 flushed. erase() never touches disk — a cold restart
//                 against a warm directory answers every method with
//                 zero eigensolves and zero topo recomputes.
//
// One instance is shared by every ArtifactCache of an Engine, every
// worker Engine of a serve Scheduler, and every stream session of a
// BatchSession; all public methods are thread-safe.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/laplacian.hpp"

namespace graphio::store {

/// The artifact families the store types its entries by.
enum class ArtifactKind {
  kSpectrum,
  kTopoOrder,
  kMincutSweep,
  kMemsimRow,
  kPartitionRow,
  kEigenbasis
};

/// Kahn topological order of one component, in the component's local
/// vertex ids (ascending-extraction numbering, so the order is meaningful
/// for any graph the component's content appears in).
struct TopoOrderArtifact {
  std::vector<VertexId> order;
};

/// The memory-independent core of one component's convex min-cut sweep:
/// max_v C(v) over the component (the bound at memory M derives as
/// 2·max(0, best_cut − M); per-component sweeps sum per Kwasniewski).
struct MincutSweepArtifact {
  std::int64_t best_cut = 0;
  VertexId best_vertex = -1;  ///< component-local id (-1 if none positive)
  std::int64_t vertices_processed = 0;
  bool completed = true;
};

/// One component's best simulated schedule at a fixed (memory, orders)
/// configuration — components share no values, so per-component rows sum
/// to a valid whole-graph schedule cost.
struct MemsimRowArtifact {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
};

/// One component's optimal Lemma 1 partition objective at a fixed memory
/// size, UNCLAMPED (core/partition_dp.hpp OptimalPartitionResult
/// ::objective): segment costs are additive across weak components, so
/// per-component objectives compose to the whole-graph certificate as
/// Σ_c objective_c + 2M·(components − 1), clamped at 0 by the consumer.
struct PartitionRowArtifact {
  double objective = 0.0;
  std::int64_t segments = 0;  ///< segments of the maximizing partition
};

class ArtifactStore {
 public:
  /// Memory-only store (no durable tier).
  ArtifactStore() = default;

  /// Memory store backed by `dir/artifacts.jsonl`: the log is replayed on
  /// construction (unparseable lines counted and skipped) and every new
  /// artifact is appended. Throws contract_error when the directory
  /// cannot be created or the log cannot be opened for append — a
  /// silently cache-less run would recompute every eigensolve while the
  /// caller believes artifacts persist.
  explicit ArtifactStore(const std::filesystem::path& dir);

  // ---------------------------------------------------------- spectrum
  /// The cached solve for (fingerprint, kind) computed with equivalent
  /// solver options and at least `count` requested values — the exact hit
  /// rule of the former ComponentSpectrumCache: a non-converged solve is
  /// still a hit for its requested count (re-running an identical failing
  /// solve helps nobody), and values are truncated to the `count`
  /// smallest so equal-count requests see one deterministic answer
  /// regardless of population order.
  std::optional<ComponentSolve> lookup_spectrum(
      std::uint64_t fingerprint, LaplacianKind kind, int count,
      const SpectralOptions& options);

  /// Records a solve computed for `requested` values. Distinct solver
  /// options coexist as separate entries; within one options group,
  /// whichever of the existing and new entry answers more requests wins
  /// (ties keep the existing entry). Converged solves are mirrored to the
  /// disk tier; partial ones stay memory-only (persisting a degraded
  /// spectrum would serve it forever).
  void store_spectrum(std::uint64_t fingerprint, LaplacianKind kind,
                      int requested, const SpectralOptions& options,
                      const ComponentSolve& solve);

  // --------------------------------------------------------- topo order
  std::optional<TopoOrderArtifact> lookup_topo(std::uint64_t fingerprint);
  void store_topo(std::uint64_t fingerprint, const TopoOrderArtifact& topo);

  // ------------------------------------------------------ min-cut sweep
  std::optional<MincutSweepArtifact> lookup_mincut(std::uint64_t fingerprint,
                                                   flow::FlowEngine engine);
  /// Only completed sweeps reach the disk tier — a time-budget-cut sweep
  /// is a valid but degraded bound that must not be served forever.
  void store_mincut(std::uint64_t fingerprint, flow::FlowEngine engine,
                    const MincutSweepArtifact& sweep);

  // --------------------------------------------------------- memsim row
  std::optional<MemsimRowArtifact> lookup_memsim(std::uint64_t fingerprint,
                                                 std::int64_t memory,
                                                 int random_orders);
  void store_memsim(std::uint64_t fingerprint, std::int64_t memory,
                    int random_orders, const MemsimRowArtifact& row);

  // ------------------------------------------------------ partition row
  /// Keyed by the exact memory value (doubles round-trip through the disk
  /// tier at 17 significant digits, so a value always looks up the way it
  /// was written).
  std::optional<PartitionRowArtifact> lookup_partition(
      std::uint64_t fingerprint, double memory);
  void store_partition(std::uint64_t fingerprint, double memory,
                       const PartitionRowArtifact& row);

  // --------------------------------------------------------- eigenbasis
  // Retained component eigenbases (Ritz vectors) for warm-started
  // solves. Memory tier ONLY: vectors are n×h doubles and must never hit
  // the append-only JSONL disk tier. The tier is a bytes-bounded LRU —
  // lookups refresh recency, inserts evict the least recently used bases
  // until the budget holds. A budget of 0 disables the tier entirely
  // (lookups miss, puts drop).
  std::optional<Eigenbasis> lookup_eigenbasis(std::uint64_t fingerprint,
                                              LaplacianKind kind);
  void store_eigenbasis(std::uint64_t fingerprint, LaplacianKind kind,
                        Eigenbasis basis);
  /// Re-keys every retained basis of `from` to `to`, recording `from` as
  /// the predecessor — the stream session calls this while
  /// re-fingerprinting a dirty component, BEFORE releasing the old
  /// fingerprint, so refcount eviction of dead content (which also drops
  /// its basis) cannot race the warm solve that needs it.
  void adopt_eigenbasis(std::uint64_t from, std::uint64_t to);
  /// Sets the eigenbasis LRU budget in bytes (0 disables and drops all
  /// resident bases).
  void set_eigenbasis_budget(std::int64_t bytes);
  [[nodiscard]] std::int64_t eigenbasis_budget() const;
  /// Resident eigenbasis bytes (for stats surfaces).
  [[nodiscard]] std::int64_t eigenbasis_bytes() const;

  /// Drops every memory-tier entry cached for one component fingerprint —
  /// all kinds, all options groups; returns how many entries went. The
  /// stream subsystem calls this when the last component with that
  /// content disappears from a session, so a long-lived mutation stream
  /// cannot grow the memory tier without bound. The disk tier is
  /// append-only and deliberately untouched: the content may return (a
  /// reverted patch, a restarted process), and compact() reclaims space
  /// offline.
  std::int64_t erase(std::uint64_t fingerprint);

  /// Drops every memory-tier entry (counters kept, disk untouched).
  void clear();

  /// Rewrites the log to exactly the current memory-tier contents —
  /// deduplicating lines accumulated by erase-then-recompute cycles —
  /// and returns the number of lines written. Requires a disk tier. On
  /// rename failure the original log is left intact and appendable (the
  /// stale `.tmp` is removed) and the error is surfaced; on success the
  /// rename is made durable with a directory fsync.
  std::int64_t compact();

  /// Flushes and fsyncs the disk tier (no-op without one). BatchSession
  /// calls this at batch boundaries under `--durable`.
  void sync();

  struct KindStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
    std::int64_t evicted = 0;
  };
  struct Stats {
    KindStats spectrum;
    KindStats topo;
    KindStats mincut;
    KindStats memsim;
    KindStats partition;
    KindStats eigenbasis;            ///< memory-only warm-start tier
    std::int64_t eigenbasis_bytes = 0;  ///< resident basis bytes
    std::int64_t loaded = 0;   ///< artifacts replayed from disk at startup
    std::int64_t corrupt = 0;  ///< log lines skipped as unparseable
    std::int64_t appended = 0; ///< artifacts written to disk this session
    bool demoted = false;      ///< disk tier disabled after a write failure
    [[nodiscard]] std::int64_t entries() const noexcept {
      return spectrum.entries + topo.entries + mincut.entries +
             memsim.entries + partition.entries + eigenbasis.entries;
    }
    [[nodiscard]] std::int64_t hits() const noexcept {
      return spectrum.hits + topo.hits + mincut.hits + memsim.hits +
             partition.hits + eigenbasis.hits;
    }
    [[nodiscard]] std::int64_t misses() const noexcept {
      return spectrum.misses + topo.misses + mincut.misses + memsim.misses +
             partition.misses + eigenbasis.misses;
    }
    [[nodiscard]] std::int64_t evicted() const noexcept {
      return spectrum.evicted + topo.evicted + mincut.evicted +
             memsim.evicted + partition.evicted + eigenbasis.evicted;
    }
  };
  [[nodiscard]] Stats stats() const;

  /// True when a durable tier is attached and healthy. A disk-tier write
  /// failure (short write, ENOSPC, injected fault) *demotes* the store to
  /// memory-only — the log stops growing but is never corrupted, lookups
  /// and inserts keep working, and the incident is surfaced once on
  /// stderr plus the `store.disk.demoted` counter.
  [[nodiscard]] bool durable() const noexcept {
    return !log_path_.empty() && !demoted_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return log_path_;
  }

  /// Canonical encoding of exactly the solver-relevant option fields
  /// (core/spectral_bound.hpp solver_options_equal): two options compare
  /// equal iff their keys are byte-identical, which is what lets the disk
  /// tier round-trip spectrum entries without serializing the full
  /// options struct. Exposed for tests.
  static std::string spectral_options_key(const SpectralOptions& options);

 private:
  struct SpectrumEntry {
    std::string options_key;
    int requested = 0;
    ComponentSolve solve;
  };

  /// Inserts without counting hits/misses; returns true when the memory
  /// tier changed (new entry, or an existing one improved) — the signal
  /// that a non-replay insert should also append to disk.
  bool put_spectrum_locked(std::uint64_t fingerprint, LaplacianKind kind,
                           int requested, const std::string& options_key,
                           const ComponentSolve& solve);
  bool put_topo_locked(std::uint64_t fingerprint,
                       const TopoOrderArtifact& topo);
  bool put_mincut_locked(std::uint64_t fingerprint, flow::FlowEngine engine,
                         const MincutSweepArtifact& sweep);
  bool put_memsim_locked(std::uint64_t fingerprint, std::int64_t memory,
                         int random_orders, const MemsimRowArtifact& row);
  bool put_partition_locked(std::uint64_t fingerprint, double memory,
                            const PartitionRowArtifact& row);
  void replay_line_locked(const std::string& line);
  void append_locked(const std::string& line);
  /// Disables the disk tier after a write failure. Caller holds the mutex.
  void demote_locked(const std::string& why);

  struct BasisEntry {
    Eigenbasis basis;
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;  ///< LRU tick (monotonic per store)
  };
  /// Evicts least-recently-used bases until resident bytes fit the
  /// budget; updates stats. Caller holds the mutex.
  void evict_eigenbases_locked();

  mutable std::mutex mutex_;
  std::map<std::pair<std::uint64_t, LaplacianKind>,
           std::vector<SpectrumEntry>>
      spectra_;
  std::map<std::uint64_t, TopoOrderArtifact> topo_;
  std::map<std::pair<std::uint64_t, flow::FlowEngine>, MincutSweepArtifact>
      mincut_;
  std::map<std::tuple<std::uint64_t, std::int64_t, int>, MemsimRowArtifact>
      memsim_;
  std::map<std::pair<std::uint64_t, double>, PartitionRowArtifact> partition_;
  std::map<std::pair<std::uint64_t, LaplacianKind>, BasisEntry> bases_;
  std::int64_t basis_budget_ = 0;
  std::int64_t basis_bytes_ = 0;
  std::uint64_t basis_tick_ = 0;
  Stats stats_;
  std::filesystem::path log_path_;
  std::ofstream log_;
  bool demoted_ = false;
};

}  // namespace graphio::store
