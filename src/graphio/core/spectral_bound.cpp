#include "graphio/core/spectral_bound.hpp"

#include <algorithm>
#include <cmath>

#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio {

BoundOverK bound_from_spectrum(std::span<const double> lambda, std::int64_t n,
                               double memory, std::int64_t processors,
                               double scale) {
  GIO_EXPECTS(n >= 0 && processors >= 1 && memory >= 0.0 && scale >= 0.0);
  GIO_EXPECTS_MSG(std::is_sorted(lambda.begin(), lambda.end()),
                  "eigenvalues must be ascending");
  BoundOverK best;
  double prefix = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    const auto k = static_cast<std::int64_t>(i) + 1;
    if (k > n) break;
    // PSD Laplacians can produce tiny negative eigenvalues numerically;
    // clamping keeps the partial sums conservative (never inflates them).
    prefix += std::max(lambda[i], 0.0);
    const double segments = static_cast<double>(n / (k * processors));
    const double value =
        scale * segments * prefix - 2.0 * static_cast<double>(k) * memory;
    if (value > best.bound) {
      best.bound = value;
      best.best_k = static_cast<int>(k);
    }
  }
  return best;
}

std::vector<double> smallest_laplacian_eigenvalues(
    const Digraph& g, LaplacianKind kind, int h,
    const SpectralOptions& options, bool* converged) {
  GIO_EXPECTS(h >= 0);
  PipelineResult result = SpectralPipeline(options).run(g, kind, h);
  if (converged != nullptr) *converged = result.converged;
  return std::move(result.values);
}

bool solver_options_equal(const SpectralOptions& a, const SpectralOptions& b) {
  return a.backend == b.backend && a.solver == b.solver &&
         a.decompose == b.decompose && a.eig_rel_tol == b.eig_rel_tol &&
         a.warm_refresh_rel_tol == b.warm_refresh_rel_tol &&
         a.dense_threshold == b.dense_threshold &&
         a.dense_rescue_threshold == b.dense_rescue_threshold &&
         a.lanczos.block_size == b.lanczos.block_size &&
         a.lanczos.max_basis == b.lanczos.max_basis &&
         a.lanczos.stall_basis_cap == b.lanczos.stall_basis_cap &&
         a.lanczos.max_cycles == b.lanczos.max_cycles;
}

namespace {

std::vector<SpectralBound> bound_impl_multi(const Digraph& g,
                                            std::span<const double> memories,
                                            std::int64_t processors,
                                            LaplacianKind kind, double scale,
                                            const SpectralOptions& options) {
  GIO_EXPECTS(processors >= 1);
  for (double memory : memories)
    GIO_EXPECTS_MSG(memory >= 0.0, "memory size must be non-negative");
  WallTimer timer;

  const int h_cap = static_cast<int>(std::min<std::int64_t>(
      options.max_eigenvalues, g.num_vertices()));
  // The dense path produces the whole spectrum in one decomposition, so
  // adaptivity only pays when some component actually takes a sparse
  // tier. Preview on the *largest component's* shape (under
  // decomposition the whole-graph verdict is too pessimistic: a union
  // above the dense threshold usually splits into components below it,
  // and re-running fully dense component solves per h-doubling would
  // quadruple the cubic work for nothing). Auto-policy tiers are
  // monotone in n, so the largest component being dense means all are.
  std::int64_t preview_n = g.num_vertices();
  std::int64_t preview_edges = g.num_edges();
  if (options.decompose) {
    const WeakComponents components = weakly_connected_components(g);
    preview_n = 0;
    for (int c = 0; c < components.count; ++c) {
      const auto n_c = static_cast<std::int64_t>(
          components.vertices[static_cast<std::size_t>(c)].size());
      if (n_c <= preview_n) continue;
      preview_n = n_c;
      preview_edges = components.edges_in(g, c);
    }
  }
  const la::SolverChoice preview = resolve_component_solver(
      preview_n, preview_n + 2 * preview_edges, h_cap, options);
  const bool adapt =
      options.adaptive && preview.kind != la::SolverKind::kDense;
  int h = adapt ? std::min(std::max(options.initial_eigenvalues, 2), h_cap)
                : h_cap;

  std::vector<double> lambda;
  bool converged = true;
  std::vector<BoundOverK> best(memories.size());
  for (;;) {
    lambda = smallest_laplacian_eigenvalues(g, kind, h, options, &converged);
    bool any_at_ceiling = false;
    for (std::size_t i = 0; i < memories.size(); ++i) {
      best[i] = bound_from_spectrum(lambda, g.num_vertices(), memories[i],
                                    processors, scale);
      any_at_ceiling |=
          best[i].best_k == static_cast<int>(lambda.size());
    }
    if (!adapt || h >= h_cap || !converged) break;
    // Interior maxima: more eigenvalues cannot move those k's values, and
    // the curves have already turned over — stop once every memory size's
    // maximizing k sits strictly inside the computed prefix.
    if (!any_at_ceiling) break;
    h = std::min(2 * h, h_cap);
  }

  std::vector<SpectralBound> out(memories.size());
  for (std::size_t i = 0; i < memories.size(); ++i) {
    out[i].bound = best[i].bound;
    out[i].best_k = best[i].best_k;
    out[i].eigenvalues = lambda;
    out[i].eigensolver_converged = converged;
    // Decomposition time is charged to the first entry; re-evaluations of
    // the max-over-k are effectively free.
    out[i].seconds = i == 0 ? timer.seconds() : 0.0;
  }
  return out;
}

SpectralBound bound_impl(const Digraph& g, double memory,
                         std::int64_t processors, LaplacianKind kind,
                         double scale, const SpectralOptions& options) {
  const double memories[] = {memory};
  return std::move(
      bound_impl_multi(g, memories, processors, kind, scale, options)[0]);
}

}  // namespace

std::vector<SpectralBound> spectral_bounds(const Digraph& g,
                                           std::span<const double> memories,
                                           const SpectralOptions& options) {
  return bound_impl_multi(g, memories, 1,
                          LaplacianKind::kOutDegreeNormalized, 1.0, options);
}

std::vector<SpectralBound> spectral_bounds_plain(
    const Digraph& g, std::span<const double> memories,
    const SpectralOptions& options) {
  const std::int64_t dmax = g.max_out_degree();
  if (dmax == 0) {
    // Edgeless graph: every Laplacian is zero and the bound is trivial.
    std::vector<SpectralBound> out(memories.size());
    for (auto& b : out)
      b.eigenvalues.assign(
          static_cast<std::size_t>(std::min<std::int64_t>(
              options.max_eigenvalues, g.num_vertices())),
          0.0);
    return out;
  }
  return bound_impl_multi(g, memories, 1, LaplacianKind::kPlain,
                          1.0 / static_cast<double>(dmax), options);
}

SpectralBound spectral_bound(const Digraph& g, double memory,
                             const SpectralOptions& options) {
  return bound_impl(g, memory, 1, LaplacianKind::kOutDegreeNormalized, 1.0,
                    options);
}

SpectralBound spectral_bound_plain(const Digraph& g, double memory,
                                   const SpectralOptions& options) {
  const std::int64_t dmax = g.max_out_degree();
  if (dmax == 0) {
    // Edgeless graph: every Laplacian is zero and the bound is trivial.
    SpectralBound out;
    out.eigenvalues.assign(
        static_cast<std::size_t>(std::min<std::int64_t>(
            options.max_eigenvalues, g.num_vertices())),
        0.0);
    return out;
  }
  return bound_impl(g, memory, 1, LaplacianKind::kPlain,
                    1.0 / static_cast<double>(dmax), options);
}

SpectralBound parallel_spectral_bound(const Digraph& g, double memory,
                                      std::int64_t processors,
                                      const SpectralOptions& options) {
  return bound_impl(g, memory, processors,
                    LaplacianKind::kOutDegreeNormalized, 1.0, options);
}

}  // namespace graphio
