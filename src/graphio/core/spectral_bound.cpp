#include "graphio/core/spectral_bound.hpp"

#include <algorithm>
#include <cmath>

#include "graphio/la/lobpcg.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio {

BoundOverK bound_from_spectrum(std::span<const double> lambda, std::int64_t n,
                               double memory, std::int64_t processors,
                               double scale) {
  GIO_EXPECTS(n >= 0 && processors >= 1 && memory >= 0.0 && scale >= 0.0);
  GIO_EXPECTS_MSG(std::is_sorted(lambda.begin(), lambda.end()),
                  "eigenvalues must be ascending");
  BoundOverK best;
  double prefix = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    const auto k = static_cast<std::int64_t>(i) + 1;
    if (k > n) break;
    // PSD Laplacians can produce tiny negative eigenvalues numerically;
    // clamping keeps the partial sums conservative (never inflates them).
    prefix += std::max(lambda[i], 0.0);
    const double segments = static_cast<double>(n / (k * processors));
    const double value =
        scale * segments * prefix - 2.0 * static_cast<double>(k) * memory;
    if (value > best.bound) {
      best.bound = value;
      best.best_k = static_cast<int>(k);
    }
  }
  return best;
}

std::vector<double> smallest_laplacian_eigenvalues(
    const Digraph& g, LaplacianKind kind, int h,
    const SpectralOptions& options, bool* converged) {
  GIO_EXPECTS(h >= 0);
  const std::int64_t n = g.num_vertices();
  h = static_cast<int>(std::min<std::int64_t>(h, n));
  if (converged != nullptr) *converged = true;
  if (h == 0) return {};

  EigenBackend backend = options.backend;
  if (backend == EigenBackend::kAuto)
    backend = n <= options.dense_threshold ? EigenBackend::kDense
                                           : EigenBackend::kLanczos;

  if (backend == EigenBackend::kDense) {
    std::vector<double> all =
        la::symmetric_eigenvalues(dense_laplacian(g, kind));
    all.resize(static_cast<std::size_t>(h));
    return all;
  }

  const la::CsrMatrix lap = laplacian(g, kind);
  std::vector<double> values;
  std::vector<double> residuals;
  bool sparse_converged = false;
  if (backend == EigenBackend::kLobpcg) {
    la::LobpcgOptions lopts;
    lopts.rel_tol = options.eig_rel_tol;
    la::LobpcgResult res = la::lobpcg_smallest(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    sparse_converged = res.converged;
  } else {
    la::LanczosOptions lopts = options.lanczos;
    lopts.rel_tol = options.eig_rel_tol;
    la::LanczosResult res = la::smallest_eigenvalues(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    sparse_converged = res.converged;
  }
  if (!sparse_converged && options.backend == EigenBackend::kAuto &&
      n <= options.dense_rescue_threshold) {
    // Tightly clustered interior eigenvalues can defeat Lanczos on
    // moderate graphs (e.g. Strassen Laplacians); the dense path is slow
    // but certain there.
    std::vector<double> all =
        la::symmetric_eigenvalues(dense_laplacian(g, kind));
    all.resize(static_cast<std::size_t>(h));
    return all;
  }
  if (converged != nullptr) *converged = sparse_converged;
  // Certified lower estimates θ − ‖r‖: sound for the lower bound at any
  // tolerance (clamped to the PSD floor of zero).
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = std::max(0.0, values[i] - residuals[i]);
  std::sort(values.begin(), values.end());
  return values;
}

namespace {

std::vector<SpectralBound> bound_impl_multi(const Digraph& g,
                                            std::span<const double> memories,
                                            std::int64_t processors,
                                            LaplacianKind kind, double scale,
                                            const SpectralOptions& options) {
  GIO_EXPECTS(processors >= 1);
  for (double memory : memories)
    GIO_EXPECTS_MSG(memory >= 0.0, "memory size must be non-negative");
  WallTimer timer;

  EigenBackend backend = options.backend;
  if (backend == EigenBackend::kAuto)
    backend = g.num_vertices() <= options.dense_threshold
                  ? EigenBackend::kDense
                  : EigenBackend::kLanczos;
  // The dense path produces the whole spectrum in one decomposition, so
  // adaptivity only pays on the sparse paths.
  const bool adapt = options.adaptive && backend != EigenBackend::kDense;
  const int h_cap = static_cast<int>(std::min<std::int64_t>(
      options.max_eigenvalues, g.num_vertices()));
  int h = adapt ? std::min(std::max(options.initial_eigenvalues, 2), h_cap)
                : h_cap;

  std::vector<double> lambda;
  bool converged = true;
  std::vector<BoundOverK> best(memories.size());
  for (;;) {
    lambda = smallest_laplacian_eigenvalues(g, kind, h, options, &converged);
    bool any_at_ceiling = false;
    for (std::size_t i = 0; i < memories.size(); ++i) {
      best[i] = bound_from_spectrum(lambda, g.num_vertices(), memories[i],
                                    processors, scale);
      any_at_ceiling |=
          best[i].best_k == static_cast<int>(lambda.size());
    }
    if (!adapt || h >= h_cap || !converged) break;
    // Interior maxima: more eigenvalues cannot move those k's values, and
    // the curves have already turned over — stop once every memory size's
    // maximizing k sits strictly inside the computed prefix.
    if (!any_at_ceiling) break;
    h = std::min(2 * h, h_cap);
  }

  std::vector<SpectralBound> out(memories.size());
  for (std::size_t i = 0; i < memories.size(); ++i) {
    out[i].bound = best[i].bound;
    out[i].best_k = best[i].best_k;
    out[i].eigenvalues = lambda;
    out[i].eigensolver_converged = converged;
    // Decomposition time is charged to the first entry; re-evaluations of
    // the max-over-k are effectively free.
    out[i].seconds = i == 0 ? timer.seconds() : 0.0;
  }
  return out;
}

SpectralBound bound_impl(const Digraph& g, double memory,
                         std::int64_t processors, LaplacianKind kind,
                         double scale, const SpectralOptions& options) {
  const double memories[] = {memory};
  return std::move(
      bound_impl_multi(g, memories, processors, kind, scale, options)[0]);
}

}  // namespace

std::vector<SpectralBound> spectral_bounds(const Digraph& g,
                                           std::span<const double> memories,
                                           const SpectralOptions& options) {
  return bound_impl_multi(g, memories, 1,
                          LaplacianKind::kOutDegreeNormalized, 1.0, options);
}

std::vector<SpectralBound> spectral_bounds_plain(
    const Digraph& g, std::span<const double> memories,
    const SpectralOptions& options) {
  const std::int64_t dmax = g.max_out_degree();
  if (dmax == 0) {
    // Edgeless graph: every Laplacian is zero and the bound is trivial.
    std::vector<SpectralBound> out(memories.size());
    for (auto& b : out)
      b.eigenvalues.assign(
          static_cast<std::size_t>(std::min<std::int64_t>(
              options.max_eigenvalues, g.num_vertices())),
          0.0);
    return out;
  }
  return bound_impl_multi(g, memories, 1, LaplacianKind::kPlain,
                          1.0 / static_cast<double>(dmax), options);
}

SpectralBound spectral_bound(const Digraph& g, double memory,
                             const SpectralOptions& options) {
  return bound_impl(g, memory, 1, LaplacianKind::kOutDegreeNormalized, 1.0,
                    options);
}

SpectralBound spectral_bound_plain(const Digraph& g, double memory,
                                   const SpectralOptions& options) {
  const std::int64_t dmax = g.max_out_degree();
  if (dmax == 0) {
    // Edgeless graph: every Laplacian is zero and the bound is trivial.
    SpectralBound out;
    out.eigenvalues.assign(
        static_cast<std::size_t>(std::min<std::int64_t>(
            options.max_eigenvalues, g.num_vertices())),
        0.0);
    return out;
  }
  return bound_impl(g, memory, 1, LaplacianKind::kPlain,
                    1.0 / static_cast<double>(dmax), options);
}

SpectralBound parallel_spectral_bound(const Digraph& g, double memory,
                                      std::int64_t processors,
                                      const SpectralOptions& options) {
  return bound_impl(g, memory, processors,
                    LaplacianKind::kOutDegreeNormalized, 1.0, options);
}

}  // namespace graphio
