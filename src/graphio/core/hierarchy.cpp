#include "graphio/core/hierarchy.hpp"

namespace graphio {

HierarchyProfile hierarchy_profile(const Digraph& g,
                                   std::span<const double> capacities,
                                   const SpectralOptions& options) {
  HierarchyProfile profile;
  if (capacities.empty()) return profile;
  const std::vector<SpectralBound> bounds =
      spectral_bounds(g, capacities, options);
  profile.eigenvalues = bounds.front().eigenvalues;
  profile.eigensolver_converged = bounds.front().eigensolver_converged;
  profile.levels.reserve(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i)
    profile.levels.push_back(
        {capacities[i], bounds[i].bound, bounds[i].best_k});
  return profile;
}

}  // namespace graphio
