// Multi-level memory hierarchies (an extension beyond the paper's
// two-level model, in the direction its Section 3 model naturally
// generalizes).
//
// For a hierarchy L1 ⊂ L2 ⊂ … ⊂ Lk ⊂ slow memory with capacities
// M1 < M2 < … < Mk, the traffic crossing the boundary between level i and
// level i+1 is lower-bounded by the paper's two-level bound with fast
// memory M_i: collapse levels 1..i into "fast" (capacity M_i — the
// inclusive hierarchy holds at most M_i distinct values at or below level
// i) and everything above into "slow". Each boundary is an independent
// two-level instance, so one spectral decomposition prices every level of
// a cache hierarchy at once (the spectrum does not depend on M).
#pragma once

#include <span>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/graph/digraph.hpp"

namespace graphio {

struct LevelTraffic {
  /// Capacity of the fast side of this boundary (values, not bytes).
  double capacity = 0.0;
  /// Lower bound on the values crossing this boundary during any
  /// evaluation (Theorem 4 at M = capacity).
  double traffic_bound = 0.0;
  /// The maximizing segment count for this level.
  int best_k = 0;
};

struct HierarchyProfile {
  std::vector<LevelTraffic> levels;  ///< one entry per capacity, same order
  /// The shared spectrum the levels were priced from.
  std::vector<double> eigenvalues;
  bool eigensolver_converged = true;
};

/// Prices every boundary of an inclusive memory hierarchy with the given
/// per-level capacities (ascending or not — each entry is independent).
/// Cost: one eigendecomposition regardless of the number of levels.
HierarchyProfile hierarchy_profile(const Digraph& g,
                                   std::span<const double> capacities,
                                   const SpectralOptions& options = {});

}  // namespace graphio
