#include "graphio/core/analytic_spectra.hpp"

#include <cmath>

#include "graphio/support/contracts.hpp"

namespace graphio::analytic {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double binomial(int n, int k) {
  GIO_EXPECTS(n >= 0);
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (int i = 1; i <= k; ++i)
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  return std::round(result);
}

Spectrum hypercube_spectrum(int l) {
  GIO_EXPECTS(l >= 0 && l <= 40);
  std::vector<Spectrum::Entry> entries;
  entries.reserve(static_cast<std::size_t>(l) + 1);
  for (int i = 0; i <= l; ++i)
    entries.push_back(
        {2.0 * i, static_cast<std::int64_t>(binomial(l, i))});
  return Spectrum::from_entries(std::move(entries));
}

std::vector<double> path_p_spectrum(int i) {
  GIO_EXPECTS(i >= 1);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(i));
  for (int j = 0; j < i; ++j)
    values.push_back(4.0 - 4.0 * std::cos(kPi * j / i));
  return values;
}

std::vector<double> path_pprime_spectrum(int i) {
  GIO_EXPECTS(i >= 1);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(i));
  for (int j = 0; j < i; ++j)
    values.push_back(4.0 - 4.0 * std::cos(kPi * (2 * j + 1) / (2 * i + 1)));
  return values;
}

std::vector<double> path_pdoubleprime_spectrum(int i) {
  GIO_EXPECTS(i >= 1);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(i));
  for (int j = 1; j <= i; ++j)
    values.push_back(4.0 - 4.0 * std::cos(kPi * j / (i + 1)));
  return values;
}

Spectrum butterfly_spectrum(int l) {
  GIO_EXPECTS(l >= 0 && l <= 32);
  std::vector<Spectrum::Entry> entries;

  // One copy of P_{l+1}.
  for (double v : path_p_spectrum(l + 1)) entries.push_back({v, 1});

  // 2^{l-i+1} copies of P'_i for i = 1..l.
  for (int i = 1; i <= l; ++i) {
    const std::int64_t mult = std::int64_t{1} << (l - i + 1);
    for (double v : path_pprime_spectrum(i)) entries.push_back({v, mult});
  }

  // (l-i)·2^{l-i-1} copies of P''_i for i = 1..l-1.
  for (int i = 1; i <= l - 1; ++i) {
    const std::int64_t mult =
        static_cast<std::int64_t>(l - i) * (std::int64_t{1} << (l - i - 1));
    for (double v : path_pdoubleprime_spectrum(i)) entries.push_back({v, mult});
  }

  Spectrum s = Spectrum::from_entries(std::move(entries));
  GIO_ENSURES(s.total_count() ==
              static_cast<std::int64_t>(l + 1) * (std::int64_t{1} << l));
  return s;
}

Spectrum path_spectrum(std::int64_t n) {
  GIO_EXPECTS(n >= 1);
  std::vector<Spectrum::Entry> entries;
  for (std::int64_t k = 0; k < n; ++k)
    entries.push_back(
        {2.0 - 2.0 * std::cos(kPi * static_cast<double>(k) /
                              static_cast<double>(n)),
         1});
  return Spectrum::from_entries(std::move(entries));
}

Spectrum cycle_spectrum(std::int64_t n) {
  GIO_EXPECTS(n >= 3);
  std::vector<Spectrum::Entry> entries;
  for (std::int64_t k = 0; k < n; ++k)
    entries.push_back(
        {2.0 - 2.0 * std::cos(2.0 * kPi * static_cast<double>(k) /
                              static_cast<double>(n)),
         1});
  return Spectrum::from_entries(std::move(entries));
}

Spectrum complete_spectrum(std::int64_t n) {
  GIO_EXPECTS(n >= 1);
  std::vector<Spectrum::Entry> entries;
  entries.push_back({0.0, 1});
  if (n > 1) entries.push_back({static_cast<double>(n), n - 1});
  return Spectrum::from_entries(std::move(entries));
}

Spectrum star_spectrum(std::int64_t n) {
  GIO_EXPECTS(n >= 2);
  std::vector<Spectrum::Entry> entries;
  entries.push_back({0.0, 1});
  if (n > 2) entries.push_back({1.0, n - 2});
  entries.push_back({static_cast<double>(n), 1});
  return Spectrum::from_entries(std::move(entries));
}

Spectrum cartesian_product_spectrum(const Spectrum& a, const Spectrum& b) {
  std::vector<Spectrum::Entry> entries;
  entries.reserve(a.entries().size() * b.entries().size());
  for (const Spectrum::Entry& ea : a.entries())
    for (const Spectrum::Entry& eb : b.entries())
      entries.push_back(
          {ea.value + eb.value, ea.multiplicity * eb.multiplicity});
  return Spectrum::from_entries(std::move(entries));
}

Spectrum grid_spectrum(std::int64_t rows, std::int64_t cols) {
  return cartesian_product_spectrum(path_spectrum(rows),
                                    path_spectrum(cols));
}

Spectrum torus_spectrum(std::int64_t rows, std::int64_t cols) {
  return cartesian_product_spectrum(cycle_spectrum(rows),
                                    cycle_spectrum(cols));
}

}  // namespace graphio::analytic
