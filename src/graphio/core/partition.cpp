#include "graphio/core/partition.hpp"

#include <unordered_set>

#include "graphio/la/csr_matrix.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {

std::vector<std::int64_t> balanced_partition_sizes(std::int64_t n,
                                                   std::int64_t k) {
  GIO_EXPECTS_MSG(k >= 1 && k <= n, "need 1 <= k <= n");
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(k), n / k);
  for (std::int64_t i = 0; i < n % k; ++i) ++sizes[static_cast<std::size_t>(i)];
  return sizes;
}

std::vector<std::pair<std::int64_t, std::int64_t>> balanced_segments(
    std::int64_t n, std::int64_t k) {
  std::vector<std::pair<std::int64_t, std::int64_t>> segments;
  std::int64_t start = 0;
  for (std::int64_t size : balanced_partition_sizes(n, k)) {
    segments.emplace_back(start, start + size);
    start += size;
  }
  GIO_ENSURES(start == n);
  return segments;
}

namespace {

/// segment_of[v] for the balanced k-partition of `order`.
std::vector<std::int64_t> segment_assignment(
    const Digraph& g, const std::vector<VertexId>& order, std::int64_t k) {
  const std::int64_t n = g.num_vertices();
  GIO_EXPECTS_MSG(static_cast<std::int64_t>(order.size()) == n,
                  "order must cover all vertices");
  std::vector<std::int64_t> seg(static_cast<std::size_t>(n), -1);
  const auto segments = balanced_segments(n, k);
  for (std::size_t s = 0; s < segments.size(); ++s)
    for (std::int64_t pos = segments[s].first; pos < segments[s].second; ++pos)
      seg[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] =
          static_cast<std::int64_t>(s);
  for (std::int64_t assigned : seg)
    GIO_EXPECTS_MSG(assigned >= 0, "order must be a permutation");
  return seg;
}

}  // namespace

std::int64_t lemma1_reads_writes(const Digraph& g,
                                 const std::vector<VertexId>& order,
                                 std::int64_t k) {
  const auto seg = segment_assignment(g, order, k);
  // R_S: distinct (vertex, segment) pairs with an edge from outside into S.
  // W_S: distinct vertices with an edge leaving their own segment.
  std::unordered_set<std::int64_t> reads;   // u * k + target segment
  std::unordered_set<std::int64_t> writes;  // u (a vertex leaves once)
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const std::int64_t su = seg[static_cast<std::size_t>(u)];
    for (VertexId v : g.children(u)) {
      const std::int64_t sv = seg[static_cast<std::size_t>(v)];
      if (su == sv) continue;
      reads.insert(u * k + sv);
      writes.insert(u);
    }
  }
  return static_cast<std::int64_t>(reads.size() + writes.size());
}

double partition_edge_objective(const Digraph& g,
                                const std::vector<VertexId>& order,
                                std::int64_t k) {
  const auto seg = segment_assignment(g, order, k);
  double objective = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const double dout = static_cast<double>(g.out_degree(u));
    for (VertexId v : g.children(u)) {
      if (seg[static_cast<std::size_t>(u)] == seg[static_cast<std::size_t>(v)])
        continue;
      objective += 2.0 / dout;  // the edge is in ∂S of both segments
    }
  }
  return objective;
}

double trace_objective(const Digraph& g, const std::vector<VertexId>& order,
                       std::int64_t k, LaplacianKind kind) {
  const auto seg = segment_assignment(g, order, k);
  const la::CsrMatrix lap = laplacian(g, kind);
  const std::int64_t n = g.num_vertices();
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::int64_t s = 0; s < k; ++s) {
    for (std::int64_t v = 0; v < n; ++v)
      x[static_cast<std::size_t>(v)] =
          seg[static_cast<std::size_t>(v)] == s ? 1.0 : 0.0;
    lap.matvec(x, y);
    for (std::int64_t v = 0; v < n; ++v)
      total += x[static_cast<std::size_t>(v)] * y[static_cast<std::size_t>(v)];
  }
  return total;
}

}  // namespace graphio
