#include "graphio/core/spectral_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "graphio/graph/components.hpp"
#include "graphio/la/lobpcg.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio {

namespace {

std::vector<double> dense_smallest(const Digraph& g, LaplacianKind kind,
                                   int h) {
  std::vector<double> all = la::symmetric_eigenvalues(dense_laplacian(g, kind));
  all.resize(static_cast<std::size_t>(h));
  return all;
}

}  // namespace

la::SolverChoice resolve_component_solver(std::int64_t n, std::int64_t nnz,
                                          int h,
                                          const SpectralOptions& options) {
  switch (options.backend) {
    case EigenBackend::kDense:
      return {la::SolverKind::kDense, "forced by backend"};
    case EigenBackend::kLanczos:
      return {la::SolverKind::kLanczos, "forced by backend"};
    case EigenBackend::kLobpcg:
      return {la::SolverKind::kLobpcg, "forced by backend"};
    case EigenBackend::kAuto: break;
  }
  la::SolverThresholds thresholds;
  thresholds.dense_n = options.dense_threshold;
  return la::require_solver_policy(options.solver)
      .choose({n, nnz, h}, thresholds);
}

ComponentSolve solve_component_spectrum(const Digraph& component,
                                        LaplacianKind kind, int h,
                                        const SpectralOptions& options) {
  const std::int64_t n = component.num_vertices();
  WallTimer timer;
  ComponentSolve solve;
  solve.vertices = n;
  solve.edges = component.num_edges();
  h = static_cast<int>(std::min<std::int64_t>(h, n));
  if (h <= 0) {
    solve.seconds = timer.seconds();
    return solve;
  }
  if (component.num_edges() == 0) {
    // Every Laplacian of an edgeless graph is zero; no solver needed.
    solve.values.assign(static_cast<std::size_t>(h), 0.0);
    solve.seconds = timer.seconds();
    return solve;
  }

  // nnz upper estimate without assembling the matrix: the diagonal plus
  // one symmetric pair per edge (parallel edges share a slot, so the true
  // count is never larger — close enough for tier selection).
  const la::SolverChoice choice = resolve_component_solver(
      n, n + 2 * component.num_edges(), h, options);
  solve.solver = choice.kind;
  solve.solver_ran = true;

  if (choice.kind == la::SolverKind::kDense) {
    solve.values = dense_smallest(component, kind, h);
    solve.seconds = timer.seconds();
    return solve;
  }

  const la::CsrMatrix lap = laplacian(component, kind);
  std::vector<double> values;
  std::vector<double> residuals;
  bool sparse_converged = false;
  if (choice.kind == la::SolverKind::kLobpcg) {
    la::LobpcgOptions lopts;
    lopts.rel_tol = options.eig_rel_tol;
    la::LobpcgResult res = la::lobpcg_smallest(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    sparse_converged = res.converged;
  } else {
    la::LanczosOptions lopts = options.lanczos;
    lopts.rel_tol = options.eig_rel_tol;
    la::LanczosResult res = la::smallest_eigenvalues(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    sparse_converged = res.converged;
  }
  if (!sparse_converged && options.backend == EigenBackend::kAuto &&
      options.solver == "auto" && n <= options.dense_rescue_threshold) {
    // Tightly clustered interior eigenvalues can defeat the sparse tiers
    // on moderate components (e.g. Strassen Laplacians); the dense path
    // is slow but certain there. Only shape-chosen tiers are rescued —
    // forcing a tier (via backend or a forced policy name) is an
    // explicit request for that solver's answer, ablations included.
    solve.solver = la::SolverKind::kDense;
    solve.values = dense_smallest(component, kind, h);
    solve.converged = true;
    solve.seconds = timer.seconds();
    return solve;
  }
  solve.converged = sparse_converged;
  // Certified lower estimates θ − ‖r‖: sound for the lower bound at any
  // tolerance (clamped to the PSD floor of zero).
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = std::max(0.0, values[i] - residuals[i]);
  std::sort(values.begin(), values.end());
  solve.values = std::move(values);
  solve.seconds = timer.seconds();
  return solve;
}

SpectralPipeline::SpectralPipeline(SpectralOptions options)
    : options_(std::move(options)), solver_(solve_component_spectrum) {}

void SpectralPipeline::set_component_solver(ComponentSolver solver) {
  GIO_EXPECTS_MSG(solver != nullptr, "component solver must be callable");
  solver_ = std::move(solver);
}

void SpectralPipeline::set_component_resolver(ComponentResolver resolver,
                                              ComponentPublisher publisher) {
  GIO_EXPECTS_MSG(resolver != nullptr, "component resolver must be callable");
  resolver_ = std::move(resolver);
  publisher_ = std::move(publisher);
}

ComponentSolve SpectralPipeline::solve_planned(const PlannedComponent& entry,
                                               LaplacianKind kind, int h,
                                               PipelineResult& result) const {
  const int h_c = static_cast<int>(std::min<std::int64_t>(h, entry.vertices));
  if (h_c <= 0) {
    ComponentSolve solve;
    solve.vertices = entry.vertices;
    solve.edges = entry.edges;
    return solve;
  }
  if (entry.edges == 0) {
    // Every Laplacian of an edgeless component is zero: no fingerprint,
    // no extraction, no solver — recomputing zeros beats hashing them.
    ComponentSolve solve;
    solve.vertices = entry.vertices;
    solve.edges = entry.edges;
    solve.values.assign(static_cast<std::size_t>(h_c), 0.0);
    return solve;
  }

  // Lookup first: with a resolver installed and a fingerprint available
  // (precomputed, or computable without extraction), a clean component
  // never touches vertex data.
  std::uint64_t fingerprint = entry.fingerprint;
  bool have_fingerprint = entry.fingerprinted;
  // nnz upper estimate without assembling the matrix: the diagonal plus
  // one symmetric pair per edge.
  const std::int64_t nnz = entry.vertices + 2 * entry.edges;
  if (resolver_ != nullptr) {
    if (!have_fingerprint && entry.fingerprint_fn != nullptr) {
      telemetry::Span fp_span("fingerprint");
      fingerprint = entry.fingerprint_fn();
      fp_span.end();
      result.phases.fingerprint_seconds += fp_span.seconds();
      ++result.fingerprint_computes;
      have_fingerprint = true;
    }
    if (have_fingerprint) {
      if (std::optional<ComponentSolve> hit = resolver_(
              fingerprint, entry.vertices, nnz, kind, h_c, options_))
        return *std::move(hit);
    }
  }

  // Miss: this component must materialize and solve.
  std::optional<Digraph> extracted;
  const Digraph* component = entry.in_place;
  if (component == nullptr) {
    GIO_EXPECTS_MSG(entry.materialize != nullptr,
                    "planned component needs a materializer or an in-place "
                    "graph");
    telemetry::Span extract_span("extract");
    extract_span.attr("vertices", entry.vertices).attr("edges", entry.edges);
    extracted.emplace(entry.materialize());
    extract_span.end();
    result.phases.extract_seconds += extract_span.seconds();
    ++result.subgraph_extractions;
    component = &*extracted;
  }
  GIO_EXPECTS_MSG(component->num_vertices() == entry.vertices &&
                      component->num_edges() == entry.edges,
                  "planned component shape does not match its subgraph");
  // The "solve" span brackets exactly the eigensolver invocations: clean
  // components resolve above and never reach here, so a warm trace has
  // zero solve spans (CI asserts this).
  telemetry::Span solve_span("solve");
  solve_span.attr("vertices", entry.vertices).attr("edges", entry.edges);
  ComponentSolve solve = solver_(*component, kind, h_c, options_);
  solve_span.attr("converged", solve.converged ? "true" : "false");
  solve_span.end();
  result.phases.solve_seconds += solve_span.seconds();
  if (publisher_ != nullptr && have_fingerprint && solve.solver_ran)
    publisher_(fingerprint, kind, h_c, options_, solve);
  return solve;
}

PipelineResult SpectralPipeline::run_plan(const ComponentPlan& plan,
                                          LaplacianKind kind, int h) const {
  WallTimer timer;
  PipelineResult result;
  std::int64_t total_vertices = 0;
  for (const PlannedComponent& entry : plan.components)
    total_vertices += entry.vertices;
  h = static_cast<int>(std::min<std::int64_t>(h, total_vertices));
  result.components = static_cast<int>(plan.components.size());
  if (h <= 0 || plan.components.empty()) {
    result.components = std::max(result.components, 1);
    result.seconds = timer.seconds();
    return result;
  }

  result.per_component.reserve(plan.components.size());
  std::vector<double> pooled;
  // Soundness cutoff for partial solves: a non-converged component's
  // unreturned eigenvalues are all >= its last certified value (both
  // sparse solvers lock in ascending-prefix order), so merged values at
  // or below the smallest such cutoff still satisfy merged[i] <= λ_i of
  // the true union — larger merged values might not, and are dropped.
  double certified_cutoff = std::numeric_limits<double>::infinity();
  for (const PlannedComponent& entry : plan.components) {
    ComponentSolve solve = solve_planned(entry, kind, h, result);
    result.converged = result.converged && solve.converged;
    if (!solve.converged)
      certified_cutoff = std::min(
          certified_cutoff, solve.values.empty() ? 0.0 : solve.values.back());
    if (solve.solver_ran) ++result.eigensolves;
    if (solve.from_cache) ++result.component_cache_hits;
    pooled.insert(pooled.end(), solve.values.begin(), solve.values.end());
    result.per_component.push_back(std::move(solve));
  }
  // One merge over the pooled values — Spectrum::merge semantics with
  // tolerance 0 (the union must stay exact), built in a single
  // O(Ch log(Ch)) pass rather than C incremental merges.
  telemetry::Span merge_span("merge");
  merge_span.attr("components", result.components);
  result.values = Spectrum::from_values(pooled, 0.0).smallest(h);
  while (!result.values.empty() && result.values.back() > certified_cutoff)
    result.values.pop_back();
  merge_span.end();
  result.phases.merge_seconds = merge_span.seconds();
  result.seconds = timer.seconds();
  return result;
}

PipelineResult SpectralPipeline::run(const Digraph& g, LaplacianKind kind,
                                     int h) const {
  WallTimer timer;
  PipelineResult result;
  h = static_cast<int>(std::min<std::int64_t>(h, g.num_vertices()));
  if (h <= 0) {
    result.seconds = timer.seconds();
    return result;
  }

  WeakComponents components;
  if (options_.decompose) components = weakly_connected_components(g);
  if (!options_.decompose || components.count <= 1) {
    // Connected (or decomposition disabled): solve in place, no subgraph
    // copy — the single component IS the graph, vertex order included.
    ComponentPlan plan;
    PlannedComponent whole;
    whole.vertices = g.num_vertices();
    whole.edges = g.num_edges();
    whole.in_place = &g;
    plan.components.push_back(std::move(whole));
    result = run_plan(plan, kind, h);
    result.seconds = timer.seconds();
    return result;
  }

  // Eager plan: no fingerprints (run() callers have no content-addressed
  // cache), so every non-trivial component extracts — the pre-plan
  // behavior, now with the extractions counted.
  ComponentPlan plan;
  plan.components.reserve(static_cast<std::size_t>(components.count));
  for (int c = 0; c < components.count; ++c) {
    PlannedComponent entry;
    entry.vertices = static_cast<std::int64_t>(
        components.vertices[static_cast<std::size_t>(c)].size());
    entry.edges = components.edges_in(g, c);
    entry.materialize = [&g, &components, c] {
      return components.subgraph(g, c);
    };
    plan.components.push_back(std::move(entry));
  }
  result = run_plan(plan, kind, h);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace graphio
