#include "graphio/core/spectral_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "graphio/faults/fault_injection.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/la/lobpcg.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/vector_ops.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio {

namespace {

std::vector<double> dense_smallest(const Digraph& g, LaplacianKind kind,
                                   int h) {
  std::vector<double> all = la::symmetric_eigenvalues(dense_laplacian(g, kind));
  all.resize(static_cast<std::size_t>(h));
  return all;
}

/// Dense eigenpairs of the component Laplacian: values identical to
/// dense_smallest (the QL value recurrence does not depend on vector
/// accumulation), plus the h smallest eigenvectors for retention.
void dense_smallest_with_vectors(const Digraph& g, LaplacianKind kind, int h,
                                 std::vector<double>& values,
                                 std::vector<std::vector<double>>& vectors) {
  const la::SymmetricEigen eig = la::symmetric_eigen(dense_laplacian(g, kind));
  values.assign(eig.values.begin(), eig.values.begin() + h);
  const std::size_t n = eig.values.size();
  vectors.clear();
  vectors.reserve(static_cast<std::size_t>(h));
  for (int j = 0; j < h; ++j) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i)
      col[i] = eig.vectors(i, static_cast<std::size_t>(j));
    vectors.push_back(std::move(col));
  }
}

/// One Rayleigh–Ritz pass over a retained predecessor basis: the warm
/// fast path. Orthonormalizes the basis, rotates it into Ritz pairs of
/// the patched Laplacian, and accepts when every pair's residual is at or
/// below `accept_rel_tol` of the Gershgorin scale — the returned values
/// are the same certified lower estimates max(0, θ − ‖r‖) the iterative
/// tiers emit, so acceptance never changes soundness, only how much of
/// the patch's perturbation is left in the bound. The rotated pairs
/// replace the basis (via `retained`), so repeated small patches keep
/// refreshing until drift trips the gate and a full solve resets it.
/// Returns false (leaving `solve` untouched) when the basis is too thin,
/// misshapen, or the residuals exceed the gate.
bool warm_subspace_refresh(const la::CsrMatrix& lap,
                           const std::vector<std::vector<double>>& basis,
                           int h, double accept_rel_tol,
                           ComponentSolve& solve,
                           std::vector<std::vector<double>>* retained) {
  const auto n = static_cast<std::size_t>(lap.size());
  // Two-pass modified Gram–Schmidt; columns that collapse are dropped.
  // Fewer than h survivors cannot certify h pairs.
  std::vector<std::vector<double>> v;
  v.reserve(basis.size());
  for (const std::vector<double>& col : basis) {
    if (col.size() != n) return false;
    std::vector<double> w = col;
    for (int pass = 0; pass < 2; ++pass)
      for (const std::vector<double>& b : v) la::axpy(-la::dot(b, w), b, w);
    if (la::normalize(w) > 1e-8) v.push_back(std::move(w));
  }
  if (static_cast<int>(v.size()) < h) return false;
  const std::size_t m = v.size();

  std::vector<std::vector<double>> lv(m, std::vector<double>(n));
  for (std::size_t j = 0; j < m; ++j) lap.matvec(v[j], lv[j]);
  la::DenseMatrix gram(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i; j < m; ++j)
      gram(i, j) = gram(j, i) = 0.5 * (la::dot(v[i], lv[j]) +
                                       la::dot(v[j], lv[i]));
  const la::SymmetricEigen ritz = la::symmetric_eigen(std::move(gram));

  const double accept =
      accept_rel_tol * std::max(lap.gershgorin_upper_bound(), 1e-300);
  std::vector<double> values;
  std::vector<std::vector<double>> rotated;
  values.reserve(static_cast<std::size_t>(h));
  rotated.reserve(static_cast<std::size_t>(h));
  double max_residual = 0.0;
  for (int j = 0; j < h; ++j) {
    std::vector<double> x(n, 0.0);
    std::vector<double> lx(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double w = ritz.vectors(i, static_cast<std::size_t>(j));
      if (w == 0.0) continue;
      la::axpy(w, v[i], x);
      la::axpy(w, lv[i], lx);
    }
    const double theta = ritz.values[static_cast<std::size_t>(j)];
    la::axpy(-theta, x, lx);  // lx becomes the residual
    const double rnorm = la::nrm2(lx);
    if (rnorm > accept) return false;
    max_residual = std::max(max_residual, rnorm);
    values.push_back(std::max(0.0, theta - rnorm));
    rotated.push_back(std::move(x));
  }
  std::sort(values.begin(), values.end());
  solve.values = std::move(values);
  solve.converged = true;
  solve.iterations = 1;
  solve.warm_started = true;
  solve.refresh = true;
  solve.max_residual = max_residual;
  if (retained != nullptr) *retained = std::move(rotated);
  return true;
}

/// The shared per-component solve behind both the public
/// solve_component_spectrum (no warm seed, no retention) and the
/// pipeline's warm-start path. `warm_columns` (nullable) seeds the
/// iterative tiers; `retained` (nullable) receives the converged
/// eigenvectors for the eigenbasis tier.
ComponentSolve solve_component_impl(
    const Digraph& component, LaplacianKind kind, int h,
    const SpectralOptions& options,
    const std::vector<std::vector<double>>* warm_columns,
    std::vector<std::vector<double>>* retained) {
  const std::int64_t n = component.num_vertices();
  WallTimer timer;
  ComponentSolve solve;
  solve.vertices = n;
  solve.edges = component.num_edges();
  h = static_cast<int>(std::min<std::int64_t>(h, n));
  if (h <= 0) {
    solve.seconds = timer.seconds();
    return solve;
  }
  if (component.num_edges() == 0) {
    // Every Laplacian of an edgeless graph is zero; no solver needed.
    solve.values.assign(static_cast<std::size_t>(h), 0.0);
    solve.seconds = timer.seconds();
    return solve;
  }

  const bool warm = warm_columns != nullptr && !warm_columns->empty();
  // nnz upper estimate without assembling the matrix: the diagonal plus
  // one symmetric pair per edge (parallel edges share a slot, so the true
  // count is never larger — close enough for tier selection).
  const la::SolverChoice choice = resolve_component_solver(
      n, n + 2 * component.num_edges(), h, options, warm);
  solve.solver = choice.kind;
  solve.solver_ran = true;
  solve.solver_reason = choice.reason;

  if (choice.kind == la::SolverKind::kDense) {
    if (retained != nullptr)
      dense_smallest_with_vectors(component, kind, h, solve.values, *retained);
    else
      solve.values = dense_smallest(component, kind, h);
    solve.seconds = timer.seconds();
    return solve;
  }

  const la::CsrMatrix lap = laplacian(component, kind);
  // Warm fast path: one certified Rayleigh–Ritz pass over the retained
  // basis. Applies to the iterative tiers only (a dense choice returned
  // above), whether the tier was policy-chosen or forced — forcing an
  // iterative solver, like warm-seeding it, asks for its family of
  // certified estimates, and the refresh is the 1-iteration member.
  if (warm && options.warm_refresh_rel_tol > 0.0 &&
      warm_subspace_refresh(lap, *warm_columns, h,
                            options.warm_refresh_rel_tol, solve, retained)) {
    solve.seconds = timer.seconds();
    return solve;
  }
  std::vector<double> values;
  std::vector<double> residuals;
  std::vector<std::vector<double>> vectors;
  bool sparse_converged = false;
  if (choice.kind == la::SolverKind::kLobpcg) {
    la::LobpcgOptions lopts;
    lopts.rel_tol = options.eig_rel_tol;
    lopts.return_vectors = retained != nullptr;
    if (warm) {
      // Same tolerance as a cold solve: soundness never depends on it
      // (the certified estimates below are valid at any residual), so
      // tightening here would only trade the warm head start back for
      // extra iterations.
      lopts.warm_start = *warm_columns;
      solve.warm_started = true;
    }
    la::LobpcgResult res = la::lobpcg_smallest(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    vectors = std::move(res.vectors);
    sparse_converged = res.converged;
    solve.iterations = res.iterations;
  } else {
    la::LanczosOptions lopts = options.lanczos;
    lopts.rel_tol = options.eig_rel_tol;
    lopts.return_vectors = retained != nullptr;
    if (warm) {
      lopts.warm_start = *warm_columns;
      solve.warm_started = true;
    }
    la::LanczosResult res = la::smallest_eigenvalues(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    vectors = std::move(res.vectors);
    sparse_converged = res.converged;
    solve.iterations = res.cycles;
  }
  if (!sparse_converged && options.backend == EigenBackend::kAuto &&
      options.solver == "auto" && n <= options.dense_rescue_threshold) {
    // Tightly clustered interior eigenvalues can defeat the sparse tiers
    // on moderate components (e.g. Strassen Laplacians); the dense path
    // is slow but certain there. Only shape-chosen tiers are rescued —
    // forcing a tier (via backend or a forced policy name) is an
    // explicit request for that solver's answer, ablations included. A
    // warm solve that fails to converge (e.g. a patch that disconnected
    // its component) lands here too: the fallback is cold and exact.
    solve.solver = la::SolverKind::kDense;
    solve.iterations = 0;
    if (retained != nullptr)
      dense_smallest_with_vectors(component, kind, h, solve.values, *retained);
    else
      solve.values = dense_smallest(component, kind, h);
    solve.converged = true;
    solve.seconds = timer.seconds();
    return solve;
  }
  solve.converged = sparse_converged;
  if (retained != nullptr) {
    if (sparse_converged)
      *retained = std::move(vectors);
    else
      retained->clear();  // partial bases are not worth retaining
  }
  // Certified lower estimates θ − ‖r‖: sound for the lower bound at any
  // tolerance (clamped to the PSD floor of zero).
  for (std::size_t i = 0; i < values.size(); ++i) {
    solve.max_residual = std::max(solve.max_residual, residuals[i]);
    values[i] = std::max(0.0, values[i] - residuals[i]);
  }
  std::sort(values.begin(), values.end());
  solve.values = std::move(values);
  solve.seconds = timer.seconds();
  return solve;
}

/// Maps a retained basis onto a (possibly patched) successor component of
/// `n` vertices with the given external ids. Edge-only patches keep the
/// vertex set and reuse the basis as-is; vertex add/remove patches remap
/// rows by surviving external id (both id lists are ascending) and pad
/// new rows with a small deterministic pseudo-random fill so the block
/// spans fresh directions. Returns empty when the basis cannot apply.
std::vector<std::vector<double>> remap_basis_rows(
    const Eigenbasis& basis, const std::vector<VertexId>& external_ids,
    std::int64_t n) {
  if (basis.vectors.empty()) return {};
  const auto rows = static_cast<std::int64_t>(basis.vectors.front().size());
  if (rows == n &&
      (basis.row_ids.empty() || external_ids.empty() ||
       basis.row_ids == external_ids))
    return basis.vectors;
  if (basis.row_ids.empty() || external_ids.empty() ||
      static_cast<std::int64_t>(external_ids.size()) != n)
    return {};
  std::vector<std::int64_t> old_row(static_cast<std::size_t>(n), -1);
  std::size_t j = 0;
  for (std::size_t i = 0; i < external_ids.size(); ++i) {
    while (j < basis.row_ids.size() && basis.row_ids[j] < external_ids[i]) ++j;
    if (j < basis.row_ids.size() && basis.row_ids[j] == external_ids[i])
      old_row[i] = static_cast<std::int64_t>(j);
  }
  std::vector<std::vector<double>> out;
  out.reserve(basis.vectors.size());
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (const std::vector<double>& col : basis.vectors) {
    std::vector<double> mapped(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      if (old_row[i] >= 0) {
        mapped[i] = col[static_cast<std::size_t>(old_row[i])];
      } else {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        mapped[i] =
            1e-3 * (static_cast<double>((state >> 33) & 0xFFFF) / 65536.0 -
                    0.5);
      }
    }
    out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

la::SolverChoice resolve_component_solver(std::int64_t n, std::int64_t nnz,
                                          int h,
                                          const SpectralOptions& options,
                                          bool warm) {
  switch (options.backend) {
    case EigenBackend::kDense:
      return {la::SolverKind::kDense, "forced by backend"};
    case EigenBackend::kLanczos:
      return {la::SolverKind::kLanczos, "forced by backend"};
    case EigenBackend::kLobpcg:
      return {la::SolverKind::kLobpcg, "forced by backend"};
    case EigenBackend::kAuto: break;
  }
  la::SolverThresholds thresholds;
  thresholds.dense_n = options.dense_threshold;
  return la::require_solver_policy(options.solver)
      .choose({n, nnz, h, warm}, thresholds);
}

ComponentSolve solve_component_spectrum(const Digraph& component,
                                        LaplacianKind kind, int h,
                                        const SpectralOptions& options) {
  return solve_component_impl(component, kind, h, options,
                              /*warm_columns=*/nullptr, /*retained=*/nullptr);
}

SpectralPipeline::SpectralPipeline(SpectralOptions options)
    : options_(std::move(options)), solver_(solve_component_spectrum) {}

void SpectralPipeline::set_component_solver(ComponentSolver solver) {
  GIO_EXPECTS_MSG(solver != nullptr, "component solver must be callable");
  solver_ = std::move(solver);
  custom_solver_ = true;
}

void SpectralPipeline::set_component_resolver(ComponentResolver resolver,
                                              ComponentPublisher publisher) {
  GIO_EXPECTS_MSG(resolver != nullptr, "component resolver must be callable");
  resolver_ = std::move(resolver);
  publisher_ = std::move(publisher);
}

void SpectralPipeline::set_basis_hooks(BasisResolver resolver,
                                       BasisPublisher publisher) {
  GIO_EXPECTS_MSG(resolver != nullptr && publisher != nullptr,
                  "basis hooks must both be callable");
  basis_resolver_ = std::move(resolver);
  basis_publisher_ = std::move(publisher);
}

ComponentSolve SpectralPipeline::solve_planned(const PlannedComponent& entry,
                                               LaplacianKind kind, int h,
                                               PipelineResult& result) const {
  const int h_c = static_cast<int>(std::min<std::int64_t>(h, entry.vertices));
  if (h_c <= 0) {
    ComponentSolve solve;
    solve.vertices = entry.vertices;
    solve.edges = entry.edges;
    return solve;
  }
  if (entry.edges == 0) {
    // Every Laplacian of an edgeless component is zero: no fingerprint,
    // no extraction, no solver — recomputing zeros beats hashing them.
    ComponentSolve solve;
    solve.vertices = entry.vertices;
    solve.edges = entry.edges;
    solve.values.assign(static_cast<std::size_t>(h_c), 0.0);
    return solve;
  }

  // Lookup first: with a resolver installed and a fingerprint available
  // (precomputed, or computable without extraction), a clean component
  // never touches vertex data.
  std::uint64_t fingerprint = entry.fingerprint;
  bool have_fingerprint = entry.fingerprinted;
  // nnz upper estimate without assembling the matrix: the diagonal plus
  // one symmetric pair per edge.
  const std::int64_t nnz = entry.vertices + 2 * entry.edges;
  if (resolver_ != nullptr) {
    if (!have_fingerprint && entry.fingerprint_fn != nullptr) {
      telemetry::Span fp_span("fingerprint");
      fingerprint = entry.fingerprint_fn();
      fp_span.end();
      result.phases.fingerprint_seconds += fp_span.seconds();
      ++result.fingerprint_computes;
      have_fingerprint = true;
    }
    if (have_fingerprint) {
      if (std::optional<ComponentSolve> hit = resolver_(
              fingerprint, entry.vertices, nnz, kind, h_c, options_)) {
        hit->fingerprint = fingerprint;
        hit->fingerprinted = true;
        return *std::move(hit);
      }
    }
  }

  // Miss: this component must materialize and solve. Before extracting,
  // look up a retained eigenbasis — its own fingerprint first (stream
  // sessions re-key the predecessor's basis to the successor fingerprint
  // at patch time), then the threaded pre-patch fingerprint.
  std::optional<Eigenbasis> warm_basis;
  if (options_.retain_basis && basis_resolver_ != nullptr &&
      !custom_solver_) {
    if (have_fingerprint) warm_basis = basis_resolver_(fingerprint, kind);
    if (!warm_basis && entry.has_predecessor)
      warm_basis = basis_resolver_(entry.predecessor, kind);
  }

  std::optional<Digraph> extracted;
  const Digraph* component = entry.in_place;
  if (component == nullptr) {
    GIO_EXPECTS_MSG(entry.materialize != nullptr,
                    "planned component needs a materializer or an in-place "
                    "graph");
    telemetry::Span extract_span("extract");
    extract_span.attr("vertices", entry.vertices).attr("edges", entry.edges);
    extracted.emplace(entry.materialize());
    extract_span.end();
    result.phases.extract_seconds += extract_span.seconds();
    ++result.subgraph_extractions;
    component = &*extracted;
  }
  GIO_EXPECTS_MSG(component->num_vertices() == entry.vertices &&
                      component->num_edges() == entry.edges,
                  "planned component shape does not match its subgraph");
  std::vector<std::vector<double>> warm_columns;
  if (warm_basis)
    warm_columns =
        remap_basis_rows(*warm_basis, entry.external_ids, entry.vertices);

  // The "solve" span brackets exactly the eigensolver invocations: clean
  // components resolve above and never reach here, so a warm trace has
  // zero solve spans (CI asserts this).
  telemetry::Span solve_span("solve");
  solve_span.attr("vertices", entry.vertices).attr("edges", entry.edges);
  ComponentSolve solve;
  std::vector<std::vector<double>> fresh_vectors;
  const bool retain = options_.retain_basis && basis_publisher_ != nullptr &&
                      have_fingerprint && !custom_solver_;
  if (custom_solver_) {
    solve = solver_(*component, kind, h_c, options_);
  } else {
    solve = solve_component_impl(
        *component, kind, h_c, options_,
        warm_columns.empty() ? nullptr : &warm_columns,
        retain ? &fresh_vectors : nullptr);
  }
  solve_span.attr("converged", solve.converged ? "true" : "false");
  if (solve.warm_started) solve_span.attr("warm", "true");
  solve_span.end();
  result.phases.solve_seconds += solve_span.seconds();

  // Fault seam: force this solve to report non-convergence. The values
  // are genuine, so the certified-cutoff truncation in run_plan keeps the
  // merge sound; the site only exercises the degraded path. Tripped
  // solves are never published — a fault must not pollute shared caches.
  const bool convergence_fault =
      solve.solver_ran && faults::trip("solver.converge");
  if (convergence_fault) {
    solve.converged = false;
    solve.solver_reason = "fault(solver.converge)";
  }

  solve.fingerprint = have_fingerprint ? fingerprint : 0;
  solve.fingerprinted = have_fingerprint;
  if (solve.warm_started) {
    ++result.warm_hits;
    const std::uint64_t pred = warm_basis->predecessor != 0
                                   ? warm_basis->predecessor
                                   : (entry.has_predecessor ? entry.predecessor
                                                            : fingerprint);
    solve.solver_reason = "warm(pred=" + std::to_string(pred) + ")";
    solve.warm_predecessor = pred;
    const int saved = warm_basis->source_iterations - solve.iterations;
    if (saved > 0) result.warm_iterations_saved += saved;
  }
  struct WarmCounters {
    telemetry::Counter& hits;
    telemetry::Counter& saved;
    telemetry::Counter& iterations;
  };
  static WarmCounters counters{
      telemetry::MetricsRegistry::global().counter("solver.warm_hits"),
      telemetry::MetricsRegistry::global().counter(
          "solver.warm_iterations_saved"),
      telemetry::MetricsRegistry::global().counter("solver.iterations")};
  if (solve.warm_started) {
    counters.hits.increment();
    const int saved = warm_basis->source_iterations - solve.iterations;
    if (saved > 0) counters.saved.add(saved);
  }
  if (solve.iterations > 0) counters.iterations.add(solve.iterations);

  if (retain && solve.solver_ran && solve.converged &&
      !fresh_vectors.empty()) {
    Eigenbasis fresh;
    fresh.vectors = std::move(fresh_vectors);
    fresh.row_ids = entry.external_ids;
    fresh.predecessor =
        entry.has_predecessor ? entry.predecessor : 0;
    fresh.source_iterations = solve.iterations;
    basis_publisher_(fingerprint, kind, std::move(fresh));
  }
  if (publisher_ != nullptr && have_fingerprint && solve.solver_ran &&
      !convergence_fault)
    publisher_(fingerprint, kind, h_c, options_, solve);
  return solve;
}

PipelineResult SpectralPipeline::run_plan(const ComponentPlan& plan,
                                          LaplacianKind kind, int h) const {
  WallTimer timer;
  PipelineResult result;
  std::int64_t total_vertices = 0;
  for (const PlannedComponent& entry : plan.components)
    total_vertices += entry.vertices;
  h = static_cast<int>(std::min<std::int64_t>(h, total_vertices));
  result.components = static_cast<int>(plan.components.size());
  if (h <= 0 || plan.components.empty()) {
    result.components = std::max(result.components, 1);
    result.seconds = timer.seconds();
    return result;
  }

  result.per_component.reserve(plan.components.size());
  std::vector<double> pooled;
  // Soundness cutoff for partial solves: a non-converged component's
  // unreturned eigenvalues are all >= its last certified value (both
  // sparse solvers lock in ascending-prefix order), so merged values at
  // or below the smallest such cutoff still satisfy merged[i] <= λ_i of
  // the true union — larger merged values might not, and are dropped.
  double certified_cutoff = std::numeric_limits<double>::infinity();
  const double deadline = options_.deadline_seconds;
  for (const PlannedComponent& entry : plan.components) {
    if (deadline > 0.0 && timer.seconds() >= deadline) {
      // Out of budget: claim h_c zeros for this component. Each block of
      // a Laplacian is PSD, so zeros are a complete pointwise lower bound
      // on its true spectrum — decreasing pooled elements can only
      // decrease merged order statistics, so the merge (and every bound
      // derived from it) stays valid, just weaker. Unlike a truncated
      // solve, the claim covers all h_c positions, so the cutoff rule
      // below must NOT engage for skipped components.
      ComponentSolve solve;
      solve.vertices = entry.vertices;
      solve.edges = entry.edges;
      solve.skipped = true;
      solve.converged = false;
      solve.solver_reason = "deadline";
      solve.values.assign(
          static_cast<std::size_t>(std::min<std::int64_t>(h, entry.vertices)),
          0.0);
      ++result.skipped_components;
      result.converged = false;
      pooled.insert(pooled.end(), solve.values.begin(), solve.values.end());
      result.per_component.push_back(std::move(solve));
      continue;
    }
    ComponentSolve solve = solve_planned(entry, kind, h, result);
    result.converged = result.converged && solve.converged;
    if (!solve.converged)
      certified_cutoff = std::min(
          certified_cutoff, solve.values.empty() ? 0.0 : solve.values.back());
    if (solve.solver_ran) ++result.eigensolves;
    if (solve.from_cache) ++result.component_cache_hits;
    pooled.insert(pooled.end(), solve.values.begin(), solve.values.end());
    result.per_component.push_back(std::move(solve));
  }
  // One merge over the pooled values — Spectrum::merge semantics with
  // tolerance 0 (the union must stay exact), built in a single
  // O(Ch log(Ch)) pass rather than C incremental merges.
  telemetry::Span merge_span("merge");
  merge_span.attr("components", result.components);
  result.values = Spectrum::from_values(pooled, 0.0).smallest(h);
  while (!result.values.empty() && result.values.back() > certified_cutoff)
    result.values.pop_back();
  merge_span.end();
  result.phases.merge_seconds = merge_span.seconds();
  // Any non-converged contribution means the merge was certified-cut to
  // what the completed solves support: still a valid lower-bound
  // spectrum, but weaker than a full run — surface it as degraded.
  result.degraded = !result.converged;
  result.seconds = timer.seconds();
  return result;
}

PipelineResult SpectralPipeline::run(const Digraph& g, LaplacianKind kind,
                                     int h) const {
  WallTimer timer;
  PipelineResult result;
  h = static_cast<int>(std::min<std::int64_t>(h, g.num_vertices()));
  if (h <= 0) {
    result.seconds = timer.seconds();
    return result;
  }

  WeakComponents components;
  if (options_.decompose) components = weakly_connected_components(g);
  if (!options_.decompose || components.count <= 1) {
    // Connected (or decomposition disabled): solve in place, no subgraph
    // copy — the single component IS the graph, vertex order included.
    ComponentPlan plan;
    PlannedComponent whole;
    whole.vertices = g.num_vertices();
    whole.edges = g.num_edges();
    whole.in_place = &g;
    plan.components.push_back(std::move(whole));
    result = run_plan(plan, kind, h);
    result.seconds = timer.seconds();
    return result;
  }

  // Eager plan: no fingerprints (run() callers have no content-addressed
  // cache), so every non-trivial component extracts — the pre-plan
  // behavior, now with the extractions counted.
  ComponentPlan plan;
  plan.components.reserve(static_cast<std::size_t>(components.count));
  for (int c = 0; c < components.count; ++c) {
    PlannedComponent entry;
    entry.vertices = static_cast<std::int64_t>(
        components.vertices[static_cast<std::size_t>(c)].size());
    entry.edges = components.edges_in(g, c);
    entry.materialize = [&g, &components, c] {
      return components.subgraph(g, c);
    };
    plan.components.push_back(std::move(entry));
  }
  result = run_plan(plan, kind, h);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace graphio
