#include "graphio/core/spectral_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "graphio/graph/components.hpp"
#include "graphio/la/lobpcg.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio {

namespace {

std::vector<double> dense_smallest(const Digraph& g, LaplacianKind kind,
                                   int h) {
  std::vector<double> all = la::symmetric_eigenvalues(dense_laplacian(g, kind));
  all.resize(static_cast<std::size_t>(h));
  return all;
}

}  // namespace

la::SolverChoice resolve_component_solver(std::int64_t n, std::int64_t nnz,
                                          int h,
                                          const SpectralOptions& options) {
  switch (options.backend) {
    case EigenBackend::kDense:
      return {la::SolverKind::kDense, "forced by backend"};
    case EigenBackend::kLanczos:
      return {la::SolverKind::kLanczos, "forced by backend"};
    case EigenBackend::kLobpcg:
      return {la::SolverKind::kLobpcg, "forced by backend"};
    case EigenBackend::kAuto: break;
  }
  la::SolverThresholds thresholds;
  thresholds.dense_n = options.dense_threshold;
  return la::require_solver_policy(options.solver)
      .choose({n, nnz, h}, thresholds);
}

ComponentSolve solve_component_spectrum(const Digraph& component,
                                        LaplacianKind kind, int h,
                                        const SpectralOptions& options) {
  const std::int64_t n = component.num_vertices();
  WallTimer timer;
  ComponentSolve solve;
  solve.vertices = n;
  solve.edges = component.num_edges();
  h = static_cast<int>(std::min<std::int64_t>(h, n));
  if (h <= 0) {
    solve.seconds = timer.seconds();
    return solve;
  }
  if (component.num_edges() == 0) {
    // Every Laplacian of an edgeless graph is zero; no solver needed.
    solve.values.assign(static_cast<std::size_t>(h), 0.0);
    solve.seconds = timer.seconds();
    return solve;
  }

  // nnz upper estimate without assembling the matrix: the diagonal plus
  // one symmetric pair per edge (parallel edges share a slot, so the true
  // count is never larger — close enough for tier selection).
  const la::SolverChoice choice = resolve_component_solver(
      n, n + 2 * component.num_edges(), h, options);
  solve.solver = choice.kind;
  solve.solver_ran = true;

  if (choice.kind == la::SolverKind::kDense) {
    solve.values = dense_smallest(component, kind, h);
    solve.seconds = timer.seconds();
    return solve;
  }

  const la::CsrMatrix lap = laplacian(component, kind);
  std::vector<double> values;
  std::vector<double> residuals;
  bool sparse_converged = false;
  if (choice.kind == la::SolverKind::kLobpcg) {
    la::LobpcgOptions lopts;
    lopts.rel_tol = options.eig_rel_tol;
    la::LobpcgResult res = la::lobpcg_smallest(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    sparse_converged = res.converged;
  } else {
    la::LanczosOptions lopts = options.lanczos;
    lopts.rel_tol = options.eig_rel_tol;
    la::LanczosResult res = la::smallest_eigenvalues(lap, h, lopts);
    values = std::move(res.values);
    residuals = std::move(res.residuals);
    sparse_converged = res.converged;
  }
  if (!sparse_converged && options.backend == EigenBackend::kAuto &&
      options.solver == "auto" && n <= options.dense_rescue_threshold) {
    // Tightly clustered interior eigenvalues can defeat the sparse tiers
    // on moderate components (e.g. Strassen Laplacians); the dense path
    // is slow but certain there. Only shape-chosen tiers are rescued —
    // forcing a tier (via backend or a forced policy name) is an
    // explicit request for that solver's answer, ablations included.
    solve.solver = la::SolverKind::kDense;
    solve.values = dense_smallest(component, kind, h);
    solve.converged = true;
    solve.seconds = timer.seconds();
    return solve;
  }
  solve.converged = sparse_converged;
  // Certified lower estimates θ − ‖r‖: sound for the lower bound at any
  // tolerance (clamped to the PSD floor of zero).
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = std::max(0.0, values[i] - residuals[i]);
  std::sort(values.begin(), values.end());
  solve.values = std::move(values);
  solve.seconds = timer.seconds();
  return solve;
}

SpectralPipeline::SpectralPipeline(SpectralOptions options)
    : options_(std::move(options)), solver_(solve_component_spectrum) {}

void SpectralPipeline::set_component_solver(ComponentSolver solver) {
  GIO_EXPECTS_MSG(solver != nullptr, "component solver must be callable");
  solver_ = std::move(solver);
}

PipelineResult SpectralPipeline::run(const Digraph& g, LaplacianKind kind,
                                     int h) const {
  WallTimer timer;
  PipelineResult result;
  h = static_cast<int>(std::min<std::int64_t>(h, g.num_vertices()));
  if (h <= 0) {
    result.seconds = timer.seconds();
    return result;
  }

  WeakComponents components;
  if (options_.decompose) components = weakly_connected_components(g);
  if (!options_.decompose || components.count <= 1) {
    // Connected (or decomposition disabled): solve in place, no subgraph
    // copy — the single component IS the graph, vertex order included.
    ComponentSolve solve = solver_(g, kind, h, options_);
    result.converged = solve.converged;
    result.eigensolves = solve.solver_ran ? 1 : 0;
    result.component_cache_hits = solve.from_cache ? 1 : 0;
    result.values = solve.values;
    result.per_component.push_back(std::move(solve));
    result.seconds = timer.seconds();
    return result;
  }

  result.components = components.count;
  result.per_component.reserve(static_cast<std::size_t>(components.count));
  std::vector<double> pooled;
  // Soundness cutoff for partial solves: a non-converged component's
  // unreturned eigenvalues are all >= its last certified value (both
  // sparse solvers lock in ascending-prefix order), so merged values at
  // or below the smallest such cutoff still satisfy merged[i] <= λ_i of
  // the true union — larger merged values might not, and are dropped.
  double certified_cutoff = std::numeric_limits<double>::infinity();
  for (int c = 0; c < components.count; ++c) {
    const auto n_c = static_cast<std::int64_t>(
        components.vertices[static_cast<std::size_t>(c)].size());
    const int h_c = static_cast<int>(std::min<std::int64_t>(h, n_c));
    ComponentSolve solve =
        solver_(components.subgraph(g, c), kind, h_c, options_);
    result.converged = result.converged && solve.converged;
    if (!solve.converged)
      certified_cutoff = std::min(
          certified_cutoff, solve.values.empty() ? 0.0 : solve.values.back());
    if (solve.solver_ran) ++result.eigensolves;
    if (solve.from_cache) ++result.component_cache_hits;
    pooled.insert(pooled.end(), solve.values.begin(), solve.values.end());
    result.per_component.push_back(std::move(solve));
  }
  // One merge over the pooled values — Spectrum::merge semantics with
  // tolerance 0 (the union must stay exact), built in a single
  // O(Ch log(Ch)) pass rather than C incremental merges.
  result.values = Spectrum::from_values(pooled, 0.0).smallest(h);
  while (!result.values.empty() && result.values.back() > certified_cutoff)
    result.values.pop_back();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace graphio
