// The paper's primary contribution: spectral I/O lower bounds.
//
//   Theorem 4:  J* ≥ max_k ⌊n/k⌋ · Σ_{i=1..k} λ_i(L̃) − 2kM
//   Theorem 5:  J* ≥ max_k ⌊n/k⌋/dout_max · Σ_{i=1..k} λ_i(L) − 2kM
//   Theorem 6:  J* ≥ max_k ⌊n/(kp)⌋ · Σ_{i=1..k} λ_i(L̃) − 2kM  (p procs)
//
// Any k yields a valid bound, so only the h = min(100, n) smallest
// eigenvalues are needed (Section 6.5: the optimal k stays far below 100;
// bench/ablation_k verifies). Eigenvalues come from the dense QL solver
// for small graphs and from deflated block Lanczos for large ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <string>

#include "graphio/graph/digraph.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/lanczos.hpp"
#include "graphio/la/solver_policy.hpp"

namespace graphio {

/// Legacy per-call solver switch, kept as shorthand for forcing one tier.
/// Selection proper lives in the la::SolverPolicy registry: kAuto defers
/// to SpectralOptions::solver (default the "auto" policy, which picks a
/// tier per connected component from (n, nnz, h)); the other values force
/// the matching pure policy regardless of SpectralOptions::solver.
enum class EigenBackend {
  kAuto,     ///< defer to the named solver policy (SpectralOptions::solver)
  kDense,    ///< Householder + implicit-shift QL on the full Laplacian
  kLanczos,  ///< block thick-restart Lanczos (default sparse path)
  kLobpcg,   ///< block LOBPCG (alternative sparse path; ablation_solver)
};

struct SpectralOptions {
  /// h — how many of the smallest Laplacian eigenvalues to compute (cap).
  int max_eigenvalues = 100;
  /// Adaptive h (sparse backend only): start with `initial_eigenvalues`,
  /// and double while the maximizing k runs into the ceiling — the optimal
  /// k is usually far below 100 (paper §6.5), so this avoids resolving
  /// eigenvalues the bound never uses. Every intermediate answer is a
  /// valid bound, so adaptivity cannot affect soundness.
  bool adaptive = true;
  int initial_eigenvalues = 16;
  EigenBackend backend = EigenBackend::kAuto;
  /// Solver policy name (la/solver_policy.hpp registry) consulted per
  /// connected component when backend == kAuto: auto|dense|lanczos|lobpcg.
  std::string solver = "auto";
  /// Decompose into weakly connected components and eigensolve each
  /// independently (core/spectral_pipeline.hpp). Exact — the union's
  /// spectrum is the multiset union of the components' — and cheaper
  /// whenever components are small enough to flip solver tiers. Disable
  /// to force one monolithic solve (the pre-pipeline behavior).
  bool decompose = true;
  /// The "auto" policy picks the dense path at or below this vertex count
  /// (la::SolverThresholds::dense_n).
  std::int64_t dense_threshold = 2048;
  /// When Lanczos fails to converge and n is at or below this, redo the
  /// computation densely rather than returning a partial spectrum.
  std::int64_t dense_rescue_threshold = 4096;
  /// Residual tolerance for the sparse eigensolver when computing bounds.
  /// Loose on purpose: the bound consumes *certified lower estimates*
  /// θ − ‖Az − θz‖, which stay sound at any tolerance, and convergence to
  /// 1e-6 is often orders of magnitude faster than to eigensolver-grade
  /// 1e-9 on the clustered spectra the evaluation graphs produce.
  double eig_rel_tol = 1e-6;
  /// Warm-refresh acceptance tolerance, relative to the Gershgorin scale
  /// of the component Laplacian. With a retained predecessor basis, a
  /// patched component first gets a single Rayleigh–Ritz pass over that
  /// basis; when every refreshed pair's residual is at or below this
  /// fraction of the scale, the certified lower estimates θ − ‖r‖ are
  /// accepted as a one-iteration warm solve. Rejections (big patches,
  /// stale bases) fall through to the warm-seeded iterative tiers. The
  /// certification is the same θ − ‖r‖ the iterative tiers emit, so
  /// soundness does not depend on this value; it only trades bound
  /// tightness on the patched component for solve latency. 0 disables
  /// the fast path. Dense solves never refresh — a dense tier (forced or
  /// shape-chosen for a cold start) is a request for exact values.
  double warm_refresh_rel_tol = 1e-2;
  la::LanczosOptions lanczos = {};
  /// Retain converged per-component eigenbases (Ritz vectors) in the
  /// artifact store's memory-only eigenbasis tier, keyed by component
  /// fingerprint, so a later solve of a patched successor can warm-start
  /// from them. Excluded from solver_options_equal on purpose: retention
  /// never changes what a solve computes, only what it keeps.
  bool retain_basis = false;
  /// Soft deadline for one pipeline run in seconds (0 = none), checked at
  /// component boundaries: once elapsed, remaining component solves are
  /// skipped and the merge is certified-truncated to what the solved
  /// components support — a valid (degraded) lower bound instead of an
  /// unbounded wait. Excluded from solver_options_equal on purpose, like
  /// retain_basis: a deadline changes how much gets computed this run,
  /// never the value of any individual cached solve.
  double deadline_seconds = 0.0;
};

struct SpectralBound {
  /// max(0, best over k) — the reported lower bound on J*.
  double bound = 0.0;
  /// The k attaining the maximum (0 when every k was non-positive).
  int best_k = 0;
  /// The smallest eigenvalues used (of L̃ for Theorems 4/6, L for 5).
  std::vector<double> eigenvalues;
  /// False when the sparse eigensolver returned fewer than h values; the
  /// bound is then still valid, just maximized over fewer k.
  bool eigensolver_converged = true;
  double seconds = 0.0;
};

/// Theorem 4 (out-degree-normalized Laplacian L̃).
SpectralBound spectral_bound(const Digraph& g, double memory,
                             const SpectralOptions& options = {});

/// Theorem 4 for several memory sizes at once. The spectrum does not
/// depend on M, so the (dominant) eigendecomposition is done once and the
/// cheap max-over-k is repeated per memory size — the natural shape for
/// the paper's figures, which sweep M ∈ {4, 8, 16} over one graph.
/// Returns one SpectralBound per entry of `memories`, all sharing the same
/// `eigenvalues`; `seconds` on entry i is the time attributable to that
/// entry (the decomposition is charged to the first).
std::vector<SpectralBound> spectral_bounds(const Digraph& g,
                                           std::span<const double> memories,
                                           const SpectralOptions& options = {});

/// Theorem 5 for several memory sizes from one decomposition of L.
std::vector<SpectralBound> spectral_bounds_plain(
    const Digraph& g, std::span<const double> memories,
    const SpectralOptions& options = {});

/// Theorem 5 (plain Laplacian L with the 1/max-out-degree factor) — the
/// variant used for closed-form analysis in Section 5.
SpectralBound spectral_bound_plain(const Digraph& g, double memory,
                                   const SpectralOptions& options = {});

/// Theorem 6: parallel bound for p processors (at least one processor
/// incurs this much I/O).
SpectralBound parallel_spectral_bound(const Digraph& g, double memory,
                                      std::int64_t processors,
                                      const SpectralOptions& options = {});

/// Shared primitive: max over k ≤ |lambda| of
///   scale · ⌊n/(k·p)⌋ · Σ_{i≤k} λ_i − 2kM, clamped at 0.
/// `lambda` must be ascending. Exposed for closed-form spectra (Section 5).
struct BoundOverK {
  double bound = 0.0;
  int best_k = 0;
};
BoundOverK bound_from_spectrum(std::span<const double> lambda, std::int64_t n,
                               double memory, std::int64_t processors = 1,
                               double scale = 1.0);

/// The h smallest Laplacian eigenvalues of the graph, ascending — the
/// per-component SpectralPipeline (core/spectral_pipeline.hpp) behind a
/// plain-vector interface. Returns less than h values only if a sparse
/// solve failed to converge (converged flag in `converged`).
std::vector<double> smallest_laplacian_eigenvalues(
    const Digraph& g, LaplacianKind kind, int h,
    const SpectralOptions& options = {}, bool* converged = nullptr);

/// Equality restricted to the fields that change what the eigensolver
/// computes — the one shared definition of "same solve" used by every
/// spectrum cache (engine ArtifactCache, per-component cache).
bool solver_options_equal(const SpectralOptions& a, const SpectralOptions& b);

}  // namespace graphio
