#include "graphio/core/analytic_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "graphio/core/analytic_spectra.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::analytic {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double bhk_bound(int l, double memory, int alpha) {
  GIO_EXPECTS(l >= 1 && alpha >= 0 && alpha < l);
  // k = Σ_{i≤α} C(l,i); Σ_{i≤α} i·C(l,i) enters the eigenvalue sum.
  double k = 0.0;
  double weighted = 0.0;
  for (int i = 0; i <= alpha; ++i) {
    const double c = binomial(l, i);
    k += c;
    weighted += static_cast<double>(i) * c;
  }
  const double pow2 = std::ldexp(1.0, l + 1);  // 2^{l+1}
  return weighted * pow2 / (static_cast<double>(l) * k) - 2.0 * memory * k;
}

double bhk_bound_alpha1(int l, double memory) {
  GIO_EXPECTS(l >= 2);
  return std::ldexp(1.0, l + 1) / (l + 1) - 2.0 * memory * (l + 1);
}

double bhk_bound_best_alpha(int l, double memory, int* best_alpha) {
  GIO_EXPECTS(l >= 1);
  double best = 0.0;
  int arg = 0;
  for (int alpha = 0; alpha < l; ++alpha) {
    const double value = bhk_bound(l, memory, alpha);
    if (value > best) {
      best = value;
      arg = alpha;
    }
  }
  if (best_alpha != nullptr) *best_alpha = arg;
  return best;
}

double bhk_nontrivial_memory_threshold(int l) {
  GIO_EXPECTS(l >= 1);
  const double lp1 = static_cast<double>(l) + 1.0;
  return std::ldexp(1.0, l) / (lp1 * lp1);
}

double fft_bound(int l, double memory, int alpha) {
  GIO_EXPECTS(l >= 1 && alpha >= 0 && alpha < l);
  const double n = static_cast<double>(l + 1) * std::ldexp(1.0, l);
  const double gap = 1.0 - std::cos(kPi / (2.0 * (l - alpha) + 1.0));
  return n * gap - std::ldexp(1.0, alpha + 2) * memory;
}

double fft_bound_paper_alpha(int l, double memory) {
  GIO_EXPECTS(l >= 1 && memory >= 1.0);
  const int alpha = std::clamp(
      l - static_cast<int>(std::llround(std::log2(memory))), 0, l - 1);
  return fft_bound(l, memory, alpha);
}

double fft_bound_best_alpha(int l, double memory, int* best_alpha) {
  GIO_EXPECTS(l >= 1);
  double best = 0.0;
  int arg = 0;
  for (int alpha = 0; alpha < l; ++alpha) {
    const double value = fft_bound(l, memory, alpha);
    if (value > best) {
      best = value;
      arg = alpha;
    }
  }
  if (best_alpha != nullptr) *best_alpha = arg;
  return best;
}

double fft_bound_small_angle(int l, double memory) {
  GIO_EXPECTS(l >= 1 && memory > 1.0);
  const double n = static_cast<double>(l + 1) * std::ldexp(1.0, l);
  const double log2m = std::log2(memory);
  return n * (kPi * kPi / (8.0 * log2m * log2m) - 4.0 / (l + 1));
}

double er_sparse_bound(std::int64_t n, double p0, double memory) {
  GIO_EXPECTS_MSG(p0 > 6.0, "the 5.3 sparse bound requires p0 > 6");
  GIO_EXPECTS(n >= 2);
  const double nn = static_cast<double>(n);
  return nn / (1.0 + std::sqrt(6.0 / p0)) * (1.0 - std::sqrt(2.0 / p0)) -
         4.0 * memory;
}

double er_dense_bound(std::int64_t n, double memory) {
  GIO_EXPECTS(n >= 2);
  return static_cast<double>(n) / 2.0 - 4.0 * memory;
}

}  // namespace graphio::analytic
