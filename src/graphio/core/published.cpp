#include "graphio/core/published.hpp"

#include <cmath>

#include "graphio/support/contracts.hpp"

namespace graphio::published {

double fft_hong_kung(int l, double memory) {
  GIO_EXPECTS(l >= 0 && memory > 1.0);
  return static_cast<double>(l) * std::ldexp(1.0, l) / std::log2(memory);
}

double matmul_irony(int n, double memory) {
  GIO_EXPECTS(n >= 0 && memory > 0.0);
  const double nn = static_cast<double>(n);
  return nn * nn * nn / std::sqrt(memory);
}

double strassen_ballard(int n, double memory) {
  GIO_EXPECTS(n >= 1 && memory > 0.0);
  const double log2_7 = std::log2(7.0);
  return std::pow(static_cast<double>(n) / std::sqrt(memory), log2_7) * memory;
}

double bhk_spectral_paper(int l, double memory) {
  GIO_EXPECTS(l >= 1);
  return std::ldexp(1.0, l) / static_cast<double>(l) -
         2.0 * memory * static_cast<double>(l);
}

double fft_growth(int l) {
  GIO_EXPECTS(l >= 0);
  return static_cast<double>(l) * std::ldexp(1.0, l);
}

double matmul_growth(int n) {
  const double nn = static_cast<double>(n);
  return nn * nn * nn;
}

double strassen_growth(int n) {
  GIO_EXPECTS(n >= 1);
  return std::pow(static_cast<double>(n), std::log2(7.0));
}

double bhk_growth(int l) {
  GIO_EXPECTS(l >= 1);
  return std::ldexp(1.0, l) / static_cast<double>(l);
}

}  // namespace graphio::published
