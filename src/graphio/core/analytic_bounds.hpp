// Closed-form I/O lower bounds from Section 5, derived with the spectral
// method (Theorem 5) and the closed-form spectra of analytic_spectra.
#pragma once

#include <cstdint>

namespace graphio::analytic {

/// §5.1, Bellman–Held–Karp hypercube with l cities, partition level α
/// (k = Σ_{i≤α} C(l,i) segments):
///   J* ≥ Σ_{i≤α} C(l,i) · ( i·2^{l+1} / (l·Σ_{i≤α}C(l,i)) − 2M ).
double bhk_bound(int l, double memory, int alpha);

/// §5.1 with the paper's α = 1 choice: 2^{l+1}/(l+1) − 2M(l+1).
double bhk_bound_alpha1(int l, double memory);

/// §5.1 maximized over α (0..l−1); optionally reports the best α.
double bhk_bound_best_alpha(int l, double memory, int* best_alpha = nullptr);

/// Largest M for which the α=1 bound stays positive: M ≤ 2^l/(l+1)².
double bhk_nontrivial_memory_threshold(int l);

/// §5.2, 2^l-point FFT butterfly with k = 2^{α+1}:
///   J* ≥ (l+1)·2^l · (1 − cos(π / (2(l−α)+1))) − 2^{α+2}·M.
double fft_bound(int l, double memory, int alpha);

/// §5.2 with the paper's α = l − log₂M choice (clamped into [0, l−1]).
double fft_bound_paper_alpha(int l, double memory);

/// §5.2 maximized over α; optionally reports the best α.
double fft_bound_best_alpha(int l, double memory, int* best_alpha = nullptr);

/// §5.2 small-angle form: (l+1)·2^l·(π²/(8·log₂²M) − 4/(l+1)).
double fft_bound_small_angle(int l, double memory);

/// §5.3, sparse regime p = p0·log n/(n−1) (p0 > 6): the high-probability
/// bound n/(1+√(6/p0)) · (1 − √(2/p0)) − 4M with k = 2 (leading terms of
/// the paper's expression; the O(·) corrections vanish as n → ∞).
double er_sparse_bound(std::int64_t n, double p0, double memory);

/// §5.3, dense regime np/log n → ∞: n/2 − 4M (leading term).
double er_dense_bound(std::int64_t n, double memory);

}  // namespace graphio::analytic
