#include "graphio/core/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graphio/support/contracts.hpp"

namespace graphio {

Spectrum Spectrum::from_entries(std::vector<Entry> entries,
                                double merge_tol) {
  GIO_EXPECTS_MSG(merge_tol >= 0.0, "merge tolerance must be non-negative");
  for (const Entry& e : entries)
    GIO_EXPECTS_MSG(e.multiplicity >= 0, "multiplicity must be non-negative");
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  Spectrum s;
  for (const Entry& e : entries) {
    if (e.multiplicity == 0) continue;
    // Same merge rule as from_values: compare against the surviving
    // (smallest) value of the current run, so tolerance 0 degrades to
    // exact-equality merging.
    if (!s.entries_.empty() &&
        e.value - s.entries_.back().value <= merge_tol)
      s.entries_.back().multiplicity += e.multiplicity;
    else
      s.entries_.push_back(e);
  }
  return s;
}

Spectrum Spectrum::from_values(std::span<const double> values,
                               double merge_tol) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  Spectrum s;
  for (double v : sorted) {
    if (!s.entries_.empty() &&
        std::fabs(v - s.entries_.back().value) <= merge_tol)
      ++s.entries_.back().multiplicity;
    else
      s.entries_.push_back({v, 1});
  }
  return s;
}

Spectrum Spectrum::merge(const Spectrum& other, double merge_tol) const {
  std::vector<Entry> combined = entries_;
  combined.insert(combined.end(), other.entries_.begin(),
                  other.entries_.end());
  return from_entries(std::move(combined), merge_tol);
}

std::int64_t Spectrum::total_count() const noexcept {
  std::int64_t total = 0;
  for (const Entry& e : entries_) total += e.multiplicity;
  return total;
}

std::vector<double> Spectrum::smallest(std::int64_t count) const {
  const std::int64_t total = total_count();
  if (count < 0 || count > total) count = total;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (const Entry& e : entries_) {
    for (std::int64_t i = 0;
         i < e.multiplicity &&
         static_cast<std::int64_t>(out.size()) < count;
         ++i)
      out.push_back(e.value);
    if (static_cast<std::int64_t>(out.size()) == count) break;
  }
  return out;
}

double Spectrum::max_abs_diff(const Spectrum& other,
                              std::int64_t count) const {
  std::vector<double> mine = smallest(count);
  std::vector<double> theirs = other.smallest(count);
  const std::size_t n = std::min(mine.size(), theirs.size());
  double worst =
      mine.size() != theirs.size()
          ? std::numeric_limits<double>::infinity()
          : 0.0;
  for (std::size_t i = 0; i < n; ++i)
    worst = std::max(worst, std::fabs(mine[i] - theirs[i]));
  return worst;
}

}  // namespace graphio
