// Optimal contiguous partitions for Lemma 1 (strengthening Section 4.2's
// balanced k-partitions).
//
// For a fixed evaluation order X, Lemma 1 holds for EVERY partition of X
// into contiguous segments, so the strongest per-order statement is
//
//   J(X)  ≥  max_{P ∈ P_X}  Σ_{S ∈ P} (|R_S| + |W_S|)  −  2M|P|
//
// The paper relaxes the max to balanced k-partitions (which is what makes
// the spectral step possible); this module computes the true max by
// dynamic programming over segment breakpoints in O(n² + n·E):
//
//   f(j) = max_{i < j}  f(i) + cost(i, j) − 2M,      f(0) = 0,
//
// where cost(i, j) = |R| + |W| of the segment holding positions [i, j).
// Per left anchor i the segment costs extend incrementally in O(1)
// amortized (stamped distinct-parent counting for R; last-consumer
// buckets for W).
//
// The result lower-bounds J(X) for that specific order — not J*(G) —
// so it serves as (a) a per-schedule certificate ("this order cannot do
// better than ..."), and (b) a tighter adversary for the relaxation
// ablation when minimized over sampled orders.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio {

struct OptimalPartitionResult {
  /// max(0, best partition objective) — a lower bound on J(X).
  double bound = 0.0;
  /// Number of segments in the maximizing partition (0 when bound is 0).
  std::int64_t segments = 0;
  /// Breakpoints of the maximizing partition: positions where segments
  /// start, ascending, beginning with 0 (empty when bound is 0).
  std::vector<std::int64_t> breakpoints;
  /// The raw optimum f(n), unclamped — negative when even the best
  /// partition loses to the 2M-per-segment charge. Per-component
  /// composition needs the sign-carrying value: segment costs are
  /// additive across weak components (no cross edges), so for a
  /// component-concatenated order the whole-graph optimum is
  /// Σ_c objective_c + 2M·(k−1), the boundary merges refunding one
  /// segment charge per seam.
  double objective = 0.0;
  /// Segments of the unclamped maximizing partition (equals `segments`
  /// whenever objective > 0; still meaningful when it is not).
  std::int64_t objective_segments = 0;
};

/// Evaluates the Lemma 1 objective at the optimal contiguous partition of
/// `order` (must be topological). O(n² + n·E) time, O(n) extra space.
OptimalPartitionResult optimal_lemma1_bound(
    const Digraph& g, const std::vector<VertexId>& order, double memory);

}  // namespace graphio
