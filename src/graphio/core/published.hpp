// Previously published lower bounds referenced by the paper (Section 6.2)
// and the growth terms used on the x-axes of the figure-bottom plots.
// These are asymptotic Ω(·) expressions evaluated with constant 1 — they
// set the *shape* the spectral bound is compared against, not absolute
// values.
#pragma once

namespace graphio::published {

/// Hong & Kung [17]: FFT on 2^l points, Ω(l·2^l / log M).
double fft_hong_kung(int l, double memory);

/// Irony, Toledo & Tiskin [16]: naive matmul, Ω(n³ / √M).
double matmul_irony(int n, double memory);

/// Ballard et al. [4]: Strassen, Ω((n/√M)^{log₂7} · M).
double strassen_ballard(int n, double memory);

/// The paper's own §5.1 derivation for Bellman–Held–Karp:
/// Ω(2^l/l − 2Ml) (as quoted in §6.2).
double bhk_spectral_paper(int l, double memory);

// Growth terms (figure-bottom x axes).
double fft_growth(int l);       ///< l·2^l
double matmul_growth(int n);    ///< n³
double strassen_growth(int n);  ///< n^{log₂7}
double bhk_growth(int l);       ///< 2^l / l

}  // namespace graphio::published
