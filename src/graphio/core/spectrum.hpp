// Eigenvalue multisets (spectra) with explicit multiplicities.
//
// Closed-form spectra (hypercube, butterfly, paths) naturally come as
// (value, multiplicity) pairs with multiplicities far larger than anything
// worth expanding; computed spectra come as plain sorted vectors. This
// type bridges the two.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace graphio {

class Spectrum {
 public:
  struct Entry {
    double value;
    std::int64_t multiplicity;
  };

  Spectrum() = default;

  /// From (value, multiplicity) pairs in any order; entries are sorted and
  /// values closer than merge_tol collapse into one entry (multiplicities
  /// add; the smaller value survives). The same tolerance semantics as
  /// from_values — pass 0 for exact-equality merging.
  static Spectrum from_entries(std::vector<Entry> entries,
                               double merge_tol = 1e-9);

  /// From a sorted-or-not list of plain eigenvalues; values closer than
  /// merge_tol collapse into one entry with multiplicity.
  static Spectrum from_values(std::span<const double> values,
                              double merge_tol = 1e-9);

  /// Multiset union with `other` — the spectrum of a block-diagonal
  /// (disjoint-union) Laplacian is exactly the merge of the blocks'
  /// spectra. Values closer than merge_tol collapse; pass 0 to keep the
  /// union exact.
  [[nodiscard]] Spectrum merge(const Spectrum& other,
                               double merge_tol = 0.0) const;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Total eigenvalue count (dimension of the underlying matrix).
  [[nodiscard]] std::int64_t total_count() const noexcept;

  /// The `count` smallest eigenvalues expanded with multiplicity
  /// (count < 0 or count > total: expand everything).
  [[nodiscard]] std::vector<double> smallest(std::int64_t count = -1) const;

  /// max |λ_i(this) − λ_i(other)| over the first `count` values of both.
  [[nodiscard]] double max_abs_diff(const Spectrum& other,
                                    std::int64_t count = -1) const;

 private:
  std::vector<Entry> entries_;  // ascending by value
};

}  // namespace graphio
