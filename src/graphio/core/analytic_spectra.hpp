// Closed-form Laplacian spectra (Section 5 and Appendix A).
//
// These are spectra of the *plain* undirected Laplacian L, as used by
// Theorem 5 for closed-form analysis. The butterfly spectrum (Theorem 7)
// is the paper's novel result: it is assembled here from the path
// decomposition of Lemmas 8–11 — a multiset union of the spectra of the
// weight-2 paths P_{l+1}, P'_i and P''_i. Note the paper's Theorem 7
// statement writes the first family as 4−4cos(πj/k); Lemma 11 (P_{k+1}
// with k+1 vertices) and the Section 5.2 usage give 4−4cos(πj/(k+1)),
// which is what numerical spectra confirm, so that is what we implement.
#pragma once

#include <vector>

#include "graphio/core/spectrum.hpp"

namespace graphio::analytic {

/// Q_l: eigenvalue 2i with multiplicity C(l, i), i = 0..l.
Spectrum hypercube_spectrum(int l);

/// B_l (the (l+1)·2^l-vertex unwrapped butterfly), via Theorem 7 /
/// Lemmas 8–11.
Spectrum butterfly_spectrum(int l);

/// Weight-2 path P_i (i vertices, edge weights 2):
/// 4 − 4cos(πj/i), j = 0..i−1 (Lemma 11).
std::vector<double> path_p_spectrum(int i);

/// P'_i — weight-2 path with one end-vertex weight 2:
/// 4 − 4cos(π(2j+1)/(2i+1)), j = 0..i−1 (Lemma 11).
std::vector<double> path_pprime_spectrum(int i);

/// P''_i — weight-2 path with both end-vertex weights 2 (tridiagonal
/// Toeplitz): 4 − 4cos(jπ/(i+1)), j = 1..i (Lemma 11).
std::vector<double> path_pdoubleprime_spectrum(int i);

/// Unweighted path on n vertices: 2 − 2cos(πk/n), k = 0..n−1.
Spectrum path_spectrum(std::int64_t n);

/// Cycle C_n: 2 − 2cos(2πk/n), k = 0..n−1.
Spectrum cycle_spectrum(std::int64_t n);

/// Complete graph K_n: 0 once, n with multiplicity n−1.
Spectrum complete_spectrum(std::int64_t n);

/// Star S_n (one center, n−1 leaves): 0, 1 (×(n−2)), n.
Spectrum star_spectrum(std::int64_t n);

/// Cartesian (box) product: the Laplacian of G □ H is the Kronecker sum
/// L_G ⊕ L_H, so its spectrum is every pairwise sum λ_i(G) + λ_j(H).
/// This is the engine behind grid and torus spectra — and behind the
/// hypercube too (Q_l = K_2 □ … □ K_2).
Spectrum cartesian_product_spectrum(const Spectrum& a, const Spectrum& b);

/// rows×cols grid (path □ path): 2−2cos(πi/rows) + 2−2cos(πj/cols).
Spectrum grid_spectrum(std::int64_t rows, std::int64_t cols);

/// rows×cols torus (cycle □ cycle).
Spectrum torus_spectrum(std::int64_t rows, std::int64_t cols);

/// Binomial coefficient as double (exact for the ranges used here).
double binomial(int n, int k);

}  // namespace graphio::analytic
