#include "graphio/core/partition_dp.hpp"

#include <algorithm>
#include <limits>

#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio {

OptimalPartitionResult optimal_lemma1_bound(
    const Digraph& g, const std::vector<VertexId>& order, double memory) {
  GIO_EXPECTS_MSG(is_topological(g, order),
                  "optimal_lemma1_bound requires a topological order");
  GIO_EXPECTS(memory >= 0.0);
  const std::int64_t n = g.num_vertices();
  OptimalPartitionResult result;
  if (n == 0) return result;

  std::vector<std::int64_t> position(static_cast<std::size_t>(n), 0);
  for (std::size_t t = 0; t < order.size(); ++t)
    position[static_cast<std::size_t>(order[t])] =
        static_cast<std::int64_t>(t);

  // last_use[p] = vertices whose final consumer sits at position p (their
  // W membership ends when the segment extends past p).
  std::vector<std::vector<VertexId>> last_use(static_cast<std::size_t>(n));
  std::vector<char> has_children(static_cast<std::size_t>(n), 0);
  for (VertexId v = 0; v < n; ++v) {
    std::int64_t last = -1;
    for (VertexId child : g.children(v))
      last = std::max(last, position[static_cast<std::size_t>(child)]);
    if (last >= 0) {
      has_children[static_cast<std::size_t>(v)] = 1;
      last_use[static_cast<std::size_t>(last)].push_back(v);
    }
  }

  const double kNegInf = -std::numeric_limits<double>::infinity();
  // f[j] = best objective over partitions of the first j positions;
  // f[0] = 0 and every prefix may also be "not yet started" — Lemma 1
  // allows the partition to cover all of V, so segments tile [0, n).
  std::vector<double> f(static_cast<std::size_t>(n) + 1, kNegInf);
  std::vector<std::int64_t> parent_break(static_cast<std::size_t>(n) + 1, 0);
  f[0] = 0.0;

  std::vector<std::int64_t> r_stamp(static_cast<std::size_t>(n), -1);
  for (std::int64_t i = 0; i < n; ++i) {
    if (f[static_cast<std::size_t>(i)] == kNegInf) continue;
    // Extend a segment anchored at i rightward, maintaining |R| and |W|.
    std::int64_t reads = 0;
    std::int64_t writes = 0;
    for (std::int64_t j = i; j < n; ++j) {
      const VertexId w = order[static_cast<std::size_t>(j)];
      // R: distinct producers strictly left of the anchor.
      for (VertexId u : g.parents(w)) {
        const auto ui = static_cast<std::size_t>(u);
        if (position[ui] < i && r_stamp[ui] != i) {
          r_stamp[ui] = i;
          ++reads;
        }
      }
      // W: w joins if it has any consumer (they all sit right of j).
      if (has_children[static_cast<std::size_t>(w)]) ++writes;
      // ...and vertices whose final consumer is exactly at j leave W.
      for (VertexId v : last_use[static_cast<std::size_t>(j)])
        if (position[static_cast<std::size_t>(v)] >= i) --writes;

      const double candidate =
          f[static_cast<std::size_t>(i)] +
          static_cast<double>(reads + writes) - 2.0 * memory;
      auto& best = f[static_cast<std::size_t>(j + 1)];
      if (candidate > best) {
        best = candidate;
        parent_break[static_cast<std::size_t>(j + 1)] = i;
      }
    }
  }

  result.objective = f[static_cast<std::size_t>(n)];
  for (std::int64_t pos = n; pos > 0;
       pos = parent_break[static_cast<std::size_t>(pos)])
    ++result.objective_segments;
  if (result.objective <= 0.0) return result;
  result.bound = result.objective;
  result.segments = result.objective_segments;
  for (std::int64_t pos = n; pos > 0;
       pos = parent_break[static_cast<std::size_t>(pos)])
    result.breakpoints.push_back(parent_break[static_cast<std::size_t>(pos)]);
  std::reverse(result.breakpoints.begin(), result.breakpoints.end());
  return result;
}

}  // namespace graphio
