// Partition machinery of Sections 4.1–4.2.
//
// For an evaluation order X and k, the paper splits the order into k
// contiguous segments as equal as possible (the first n mod k segments get
// one extra vertex). These helpers evaluate, for explicit orders, each
// quantity in the derivation chain
//
//   J(X) ≥ Σ_S (|R_S| + |W_S|) − 2M|P|                     (Lemma 1)
//        ≥ Σ_S Σ_{(u,v)∈∂S} 1/dout(u) − 2M|P|              (Theorem 2)
//        = tr(Xᵀ L̃ X W(k)) − 2kM                           (trace identity)
//        ≥ ⌊n/k⌋ Σ_{i≤k} λ_i(L̃) − 2kM                      (Theorem 4)
//
// so the property tests can check every inequality numerically on random
// graphs and random topological orders.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graphio/graph/digraph.hpp"
#include "graphio/graph/laplacian.hpp"

namespace graphio {

/// Sizes of the balanced k-partition of n items (first n mod k parts get
/// ⌊n/k⌋+1, the rest ⌊n/k⌋). Requires 1 ≤ k ≤ n.
std::vector<std::int64_t> balanced_partition_sizes(std::int64_t n,
                                                   std::int64_t k);

/// [start, end) position ranges of the balanced k-partition of 0..n-1.
std::vector<std::pair<std::int64_t, std::int64_t>> balanced_segments(
    std::int64_t n, std::int64_t k);

/// Σ_S (|R_S| + |W_S|) for the balanced k-partition of `order` — the
/// Lemma 1 read/write sets (R_S: vertices outside S with an edge into S;
/// W_S: vertices in S with an edge out of S). Vertices are counted once
/// per segment regardless of edge multiplicity.
std::int64_t lemma1_reads_writes(const Digraph& g,
                                 const std::vector<VertexId>& order,
                                 std::int64_t k);

/// Σ_S Σ_{(u,v)∈∂S} 1/dout(u) — the Theorem 2 objective. Each directed
/// edge crossing two segments contributes 2/dout(u) (it lies in the
/// boundary of both segments).
double partition_edge_objective(const Digraph& g,
                                const std::vector<VertexId>& order,
                                std::int64_t k);

/// tr(Xᵀ L X W(k)) computed via segment indicator vectors (Equation 3):
/// Σ_S x_Sᵀ L x_S. With kOutDegreeNormalized this must equal
/// partition_edge_objective exactly (trace identity).
double trace_objective(const Digraph& g, const std::vector<VertexId>& order,
                       std::int64_t k, LaplacianKind kind);

}  // namespace graphio
