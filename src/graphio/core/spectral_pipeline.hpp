// SpectralPipeline — decompose-and-conquer evaluation of Laplacian
// spectra, the hot path behind every Theorem 4/5/6 bound.
//
// The Laplacian of a graph is block-diagonal over its weakly connected
// components (graph/components.hpp), so its spectrum is the multiset
// union of the components' spectra (Spectrum::merge) — the same
// decomposition Section 5 exploits analytically (Lemmas 8–11) applied to
// the numerical path. The pipeline:
//
//   1. decomposes the graph into weak components (skipped when
//      options.decompose is off or the graph is connected);
//   2. solves each component independently, choosing a solver tier per
//      component through the la::SolverPolicy registry — a disjoint union
//      too big for the dense solver usually splits into components that
//      are not, turning one O(n³) monolithic solve into c solves of
//      O((n/c)³), and edgeless components into no solve at all (their
//      spectrum is identically zero);
//   3. merges the per-component spectra and returns the smallest h values
//      of the union — exactly what a monolithic solve would have
//      produced, at any tolerance, because the decomposition is exact.
//
// The hot path is *lookup-then-extract*: callers that know the
// decomposition up front (the engine's ArtifactCache, the stream
// session) describe it as a ComponentPlan — shape, content fingerprint,
// and a lazy materializer per component — and run_plan consults a
// fingerprint-first resolver (the content-addressed ArtifactStore,
// store/artifact_store.hpp) before touching any vertex data. A
// resolved (clean) component is never materialized, never re-hashed,
// and never solved: a cache hit costs one map lookup and zero
// allocations. Only resolver misses build their subgraph and run a
// solver, so batch/serve workloads sharing components across specs
// eigensolve — and extract — each distinct component once per process,
// and a stream query pays only for the components its patch dirtied.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/core/spectrum.hpp"
#include "graphio/graph/digraph.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/solver_policy.hpp"

namespace graphio {

/// The solved spectrum of one weakly connected component.
struct ComponentSolve {
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  /// Tier that produced the values (meaningful when solver_ran).
  la::SolverKind solver = la::SolverKind::kDense;
  /// False for trivial components (edgeless: spectrum identically zero)
  /// and for cache-served solves — no eigensolver ran for this call.
  bool solver_ran = false;
  /// True when a component-spectrum cache served the values.
  bool from_cache = false;
  /// True when the cached values originated in the store's disk tier
  /// (JSONL replay) rather than this process — only meaningful together
  /// with from_cache.
  bool from_disk = false;
  /// True when the solve was seeded from a retained predecessor
  /// eigenbasis (the warm tier).
  bool warm_started = false;
  /// True when the warm tier's single certified Rayleigh–Ritz refresh
  /// was accepted (implies warm_started and iterations == 1).
  bool refresh = false;
  /// Iterations (LOBPCG) or restart cycles (Lanczos) the solve spent;
  /// 0 for the dense tier.
  int iterations = 0;
  /// Largest residual norm ‖Ax − θx‖ over the returned pairs before the
  /// certified clamp — the certificate width: every reported value is at
  /// least θ − this. 0 for the dense tier and trivial components.
  double max_residual = 0.0;
  /// The solver choice's reason string; `warm(pred=<fp>)` on warm hits.
  std::string solver_reason;
  /// Predecessor fingerprint the warm seed came from (0 when cold).
  std::uint64_t warm_predecessor = 0;
  /// Content fingerprint of the component, stamped by run_plan whenever
  /// one was available (precomputed or computed for the lookup); 0 with
  /// fingerprinted == false otherwise (trivial or unplanned components).
  std::uint64_t fingerprint = 0;
  bool fingerprinted = false;
  /// Certified smallest eigenvalues of the component's Laplacian block,
  /// ascending; may be shorter than requested on non-convergence.
  std::vector<double> values;
  bool converged = true;
  /// True when the run's deadline skipped this solve entirely: `values`
  /// is then h_c zeros — a complete pointwise lower bound on the true
  /// spectrum (each Laplacian block is PSD), which keeps the merge sound
  /// without engaging the truncation cutoff.
  bool skipped = false;
  double seconds = 0.0;
};

/// A retained component eigenbasis: the converged Ritz vectors of a past
/// solve, kept in the artifact store's memory-only eigenbasis tier keyed
/// by (component fingerprint, Laplacian kind) so a patched successor can
/// warm-start from them. Rows are addressed by the session-stable
/// external vertex ids recorded at retention time — an edge-only patch
/// reuses the basis as-is, a vertex add/remove patch remaps surviving
/// rows and random-fills new ones.
struct Eigenbasis {
  /// Ritz vectors, one column of length n per retained eigenpair.
  std::vector<std::vector<double>> vectors;
  /// External id per row, ascending; empty means rows are positional
  /// (reusable only by a successor with the identical vertex count).
  std::vector<VertexId> row_ids;
  /// Fingerprint of the solve that produced the basis (0 for an original
  /// retention; the pre-patch fingerprint after a stream adoption).
  std::uint64_t predecessor = 0;
  /// Iterations the producing solve spent (its cold cost — what a warm
  /// successor saves against).
  int source_iterations = 0;
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = sizeof(Eigenbasis) + row_ids.size() * sizeof(VertexId);
    for (const std::vector<double>& col : vectors)
      total += col.size() * sizeof(double) + sizeof(col);
    return total;
  }
};

/// The merged result of one pipeline run.
struct PipelineResult {
  /// Smallest h eigenvalues of the whole graph's Laplacian, ascending.
  std::vector<double> values;
  /// False when any contributing component solve did not converge.
  bool converged = true;
  /// True when the run was certified-truncated — a deadline
  /// (options.deadline_seconds) or injected fault skipped or weakened
  /// component solves, and the merge was cut to what the completed ones
  /// certify. The values are still a valid lower-bound spectrum prefix.
  bool degraded = false;
  /// Component solves skipped outright by the deadline.
  std::int64_t skipped_components = 0;
  /// Weak components the graph decomposed into (1 when decomposition is
  /// disabled).
  int components = 1;
  /// Eigensolver runs actually performed (excludes trivial components and
  /// cache hits) — the count BENCH_solver.json and the ArtifactCache
  /// stats report.
  std::int64_t eigensolves = 0;
  /// Component solves served by an injected cache.
  std::int64_t component_cache_hits = 0;
  /// Component subgraphs actually built. On the fingerprint-first path
  /// this equals the resolver misses that reached a solver — the
  /// "extractions == dirty components" invariant of the stream bench.
  std::int64_t subgraph_extractions = 0;
  /// Component fingerprints computed by this run (entries that arrived
  /// pre-fingerprinted, e.g. from a stream session, cost zero).
  std::int64_t fingerprint_computes = 0;
  /// Solves seeded from a retained predecessor eigenbasis.
  std::int64_t warm_hits = 0;
  /// Σ max(0, producing solve's iterations − warm solve's iterations)
  /// across warm hits — the iteration count the warm starts avoided.
  std::int64_t warm_iterations_saved = 0;
  /// Where the wall time went — the stream bench's per-phase breakdown.
  struct Phases {
    double fingerprint_seconds = 0.0;
    double extract_seconds = 0.0;
    double solve_seconds = 0.0;
    double merge_seconds = 0.0;
  };
  Phases phases;
  /// Per-component detail, in component order.
  std::vector<ComponentSolve> per_component;
  double seconds = 0.0;
};

/// One component of a precomputed decomposition, described without its
/// vertex data: shape up front, content fingerprint either precomputed or
/// computable on demand, and the subgraph itself built only when a
/// fingerprint-first resolver cannot answer. This is what lets a
/// ArtifactStore hit cost one map lookup and zero allocations.
struct PlannedComponent {
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  /// Content fingerprint (engine/fingerprint.hpp scheme); consulted only
  /// when `fingerprinted` is true.
  std::uint64_t fingerprint = 0;
  bool fingerprinted = false;
  /// Computes the fingerprint on demand (null when unavailable — the
  /// resolver is then skipped for this component). Each call is counted
  /// in PipelineResult::fingerprint_computes.
  std::function<std::uint64_t()> fingerprint_fn;
  /// Builds the induced subgraph; called only when the solve cannot be
  /// resolved by fingerprint. Each call is counted in
  /// PipelineResult::subgraph_extractions.
  std::function<Digraph()> materialize;
  /// When non-null, the component IS this graph (single-component plans:
  /// a connected graph, or decomposition disabled) — solved in place,
  /// never copied.
  const Digraph* in_place = nullptr;
  /// Pre-patch fingerprint of this component's predecessor (stream dirty
  /// components); consulted by the warm-start layer when its own
  /// fingerprint has no retained basis, and recorded in the solver
  /// choice's `warm(pred=<fp>)` reason.
  std::uint64_t predecessor = 0;
  bool has_predecessor = false;
  /// External id per local vertex, ascending — lets a retained eigenbasis
  /// remap rows across vertex add/remove patches. Empty when unavailable
  /// (warm reuse then requires an identical vertex count).
  std::vector<VertexId> external_ids;
};

/// A full decomposition handed to SpectralPipeline::run_plan. Invariant:
/// the components partition one graph (their vertex counts sum to its
/// order), in the deterministic smallest-original-vertex order of
/// weakly_connected_components.
struct ComponentPlan {
  std::vector<PlannedComponent> components;
};

/// The tier one component of shape (n, nnz, h) would be solved with:
/// options.backend forces a tier, otherwise the policy named by
/// options.solver decides. Throws contract_error (listing the registered
/// names) on an unknown policy name.
la::SolverChoice resolve_component_solver(std::int64_t n, std::int64_t nnz,
                                          int h,
                                          const SpectralOptions& options,
                                          bool warm = false);

/// Solves one graph as a single block: resolves the solver tier through
/// the policy registry (options.backend forces a tier; otherwise
/// options.solver names the policy) and returns certified smallest
/// eigenvalues. The pipeline's default component solver, exposed for
/// cache layers that wrap it.
ComponentSolve solve_component_spectrum(const Digraph& component,
                                        LaplacianKind kind, int h,
                                        const SpectralOptions& options);

class SpectralPipeline {
 public:
  /// Hook signature for replacing the per-component solve (an
  /// instrumented or caching wrapper). Receives the component subgraph
  /// and the clamped per-component h. Runs only after the resolver (if
  /// any) missed — i.e. on components that must materialize.
  using ComponentSolver = std::function<ComponentSolve(
      const Digraph&, LaplacianKind, int, const SpectralOptions&)>;

  /// Fingerprint-first resolver: the cached solve for
  /// (fingerprint, kind, h, options), or nullopt. Never sees vertex data
  /// — (n, nnz) describe the component's shape so a resolver can reason
  /// about tiers without the graph.
  using ComponentResolver = std::function<std::optional<ComponentSolve>(
      std::uint64_t fingerprint, std::int64_t n, std::int64_t nnz,
      LaplacianKind kind, int h, const SpectralOptions&)>;

  /// Publishes a freshly computed solve under its fingerprint so the next
  /// run resolves it without materializing.
  using ComponentPublisher =
      std::function<void(std::uint64_t fingerprint, LaplacianKind kind,
                         int requested, const SpectralOptions&,
                         const ComponentSolve&)>;

  /// Eigenbasis hooks (the warm-start layer). The resolver returns the
  /// retained basis of (fingerprint, kind) or nullopt; the publisher
  /// retains a freshly converged basis. Consulted only when
  /// options().retain_basis is set.
  using BasisResolver = std::function<std::optional<Eigenbasis>(
      std::uint64_t fingerprint, LaplacianKind kind)>;
  using BasisPublisher = std::function<void(
      std::uint64_t fingerprint, LaplacianKind kind, Eigenbasis basis)>;

  explicit SpectralPipeline(SpectralOptions options = {});

  /// Replaces the default solve_component_spectrum with a caching or
  /// instrumented wrapper.
  void set_component_solver(ComponentSolver solver);

  /// Installs the fingerprint-first hooks (the engine's
  /// ArtifactStore). With a resolver installed, run_plan
  /// consults it before ever touching a component's vertex data;
  /// components it resolves are neither materialized nor solved.
  void set_component_resolver(ComponentResolver resolver,
                              ComponentPublisher publisher = nullptr);

  /// Installs the eigenbasis retention/warm-start hooks (the artifact
  /// store's memory-only eigenbasis tier).
  void set_basis_hooks(BasisResolver resolver, BasisPublisher publisher);

  [[nodiscard]] const SpectralOptions& options() const noexcept {
    return options_;
  }

  /// Computes the smallest h eigenvalues of g's Laplacian by per-component
  /// decomposition (per options().decompose). h is clamped to the vertex
  /// count. Decomposes and extracts eagerly — callers that already know
  /// the decomposition (and fingerprints) use run_plan instead.
  [[nodiscard]] PipelineResult run(const Digraph& g, LaplacianKind kind,
                                   int h) const;

  /// Lookup-then-extract: for each planned component, resolve by
  /// fingerprint first and materialize the subgraph only on a miss. The
  /// merged result is identical to run() on the assembled graph (the
  /// decomposition is exact); the difference is pure overhead — resolved
  /// components cost one lookup and zero allocations.
  [[nodiscard]] PipelineResult run_plan(const ComponentPlan& plan,
                                        LaplacianKind kind, int h) const;

 private:
  ComponentSolve solve_planned(const PlannedComponent& entry,
                               LaplacianKind kind, int h,
                               PipelineResult& result) const;

  SpectralOptions options_;
  ComponentSolver solver_;
  /// True after set_component_solver: a custom solver cannot accept warm
  /// seeds or emit a basis, so the warm-start layer steps aside.
  bool custom_solver_ = false;
  ComponentResolver resolver_;
  ComponentPublisher publisher_;
  BasisResolver basis_resolver_;
  BasisPublisher basis_publisher_;
};

}  // namespace graphio
