// SpectralPipeline — decompose-and-conquer evaluation of Laplacian
// spectra, the hot path behind every Theorem 4/5/6 bound.
//
// The Laplacian of a graph is block-diagonal over its weakly connected
// components (graph/components.hpp), so its spectrum is the multiset
// union of the components' spectra (Spectrum::merge) — the same
// decomposition Section 5 exploits analytically (Lemmas 8–11) applied to
// the numerical path. The pipeline:
//
//   1. decomposes the graph into weak components (skipped when
//      options.decompose is off or the graph is connected);
//   2. solves each component independently, choosing a solver tier per
//      component through the la::SolverPolicy registry — a disjoint union
//      too big for the dense solver usually splits into components that
//      are not, turning one O(n³) monolithic solve into c solves of
//      O((n/c)³), and edgeless components into no solve at all (their
//      spectrum is identically zero);
//   3. merges the per-component spectra and returns the smallest h values
//      of the union — exactly what a monolithic solve would have
//      produced, at any tolerance, because the decomposition is exact.
//
// The engine's ArtifactCache injects a component solver that consults a
// fingerprint-keyed cache (engine/component_cache.hpp), so batch/serve
// workloads sharing components across specs eigensolve each distinct
// component once per process.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/core/spectrum.hpp"
#include "graphio/graph/digraph.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/solver_policy.hpp"

namespace graphio {

/// The solved spectrum of one weakly connected component.
struct ComponentSolve {
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  /// Tier that produced the values (meaningful when solver_ran).
  la::SolverKind solver = la::SolverKind::kDense;
  /// False for trivial components (edgeless: spectrum identically zero)
  /// and for cache-served solves — no eigensolver ran for this call.
  bool solver_ran = false;
  /// True when a component-spectrum cache served the values.
  bool from_cache = false;
  /// Certified smallest eigenvalues of the component's Laplacian block,
  /// ascending; may be shorter than requested on non-convergence.
  std::vector<double> values;
  bool converged = true;
  double seconds = 0.0;
};

/// The merged result of one pipeline run.
struct PipelineResult {
  /// Smallest h eigenvalues of the whole graph's Laplacian, ascending.
  std::vector<double> values;
  /// False when any contributing component solve did not converge.
  bool converged = true;
  /// Weak components the graph decomposed into (1 when decomposition is
  /// disabled).
  int components = 1;
  /// Eigensolver runs actually performed (excludes trivial components and
  /// cache hits) — the count BENCH_solver.json and the ArtifactCache
  /// stats report.
  std::int64_t eigensolves = 0;
  /// Component solves served by an injected cache.
  std::int64_t component_cache_hits = 0;
  /// Per-component detail, in component order.
  std::vector<ComponentSolve> per_component;
  double seconds = 0.0;
};

/// The tier one component of shape (n, nnz, h) would be solved with:
/// options.backend forces a tier, otherwise the policy named by
/// options.solver decides. Throws contract_error (listing the registered
/// names) on an unknown policy name.
la::SolverChoice resolve_component_solver(std::int64_t n, std::int64_t nnz,
                                          int h,
                                          const SpectralOptions& options);

/// Solves one graph as a single block: resolves the solver tier through
/// the policy registry (options.backend forces a tier; otherwise
/// options.solver names the policy) and returns certified smallest
/// eigenvalues. The pipeline's default component solver, exposed for
/// cache layers that wrap it.
ComponentSolve solve_component_spectrum(const Digraph& component,
                                        LaplacianKind kind, int h,
                                        const SpectralOptions& options);

class SpectralPipeline {
 public:
  /// Hook signature for replacing the per-component solve (the engine's
  /// component-spectrum cache). Receives the component subgraph and the
  /// clamped per-component h.
  using ComponentSolver = std::function<ComponentSolve(
      const Digraph&, LaplacianKind, int, const SpectralOptions&)>;

  explicit SpectralPipeline(SpectralOptions options = {});

  /// Replaces the default solve_component_spectrum with a caching or
  /// instrumented wrapper.
  void set_component_solver(ComponentSolver solver);

  [[nodiscard]] const SpectralOptions& options() const noexcept {
    return options_;
  }

  /// Computes the smallest h eigenvalues of g's Laplacian by per-component
  /// decomposition (per options().decompose). h is clamped to the vertex
  /// count.
  [[nodiscard]] PipelineResult run(const Digraph& g, LaplacianKind kind,
                                   int h) const;

 private:
  SpectralOptions options_;
  ComponentSolver solver_;
};

}  // namespace graphio
