// graphio — spectral lower bounds on the I/O complexity of computation
// graphs (Jain & Zaharia, SPAA 2020). Umbrella public header.
//
// Quick start — the Engine evaluates every bound family through one API,
// sharing expensive artifacts (topological orders, Laplacians,
// eigen-spectra, wavefront cuts) across methods and memory sizes:
//
//   #include "graphio/graphio.hpp"
//   graphio::Engine engine;
//   graphio::engine::BoundRequest req;
//   req.spec = "fft:8";              // or req.graph = my_digraph
//   req.memories = {4, 8, 16};       // the M sweep
//   req.methods = {"all"};           // or {"spectral", "mincut", ...}
//   auto report = engine.evaluate(req);
//   std::cout << report.to_table();  // or report.to_json()
//   // Each report row is one (method, M) cell: bound, best k/alpha,
//   // convergence flag, wall time. Lower-bound rows hold for ANY
//   // evaluation order of the graph.
//
// Single bounds are also available as free functions when no sharing is
// needed:
//
//   auto g = graphio::builders::fft(8);                 // 2^8-point FFT
//   auto b = graphio::spectral_bound(g, /*memory=*/16); // Theorem 4
//
// For corpora instead of single graphs, the serve subsystem fans JSONL
// job streams across a work-stealing thread pool with a persistent
// on-disk result cache (warm reruns perform zero eigensolves):
//
//   graphio::serve::BatchOptions options;
//   options.threads = 8;                  // 0 = hardware_threads()
//   options.store_dir = "runs/store";     // "" disables the disk cache
//   graphio::serve::BatchSession session(options);
//   std::ifstream jobs("jobs.jsonl");     // {"spec":"fft:8","memories":[4,8]}
//   graphio::serve::BatchSummary s = session.run(jobs, std::cout);
//   std::cerr << s.to_json() << "\n";     // throughput, p50/p95, hit rates
//
// For a graph that *evolves* — autotuners, compiler rewrites — the stream
// subsystem applies patches and re-analyzes incrementally: only the
// components a patch touched are re-eigensolved, clean components come
// from the fingerprint-keyed component cache:
//
//   graphio::stream::StreamSession session("g");
//   session.load("fft:8");
//   graphio::stream::Patch patch;         // or stream::patch_from_json_line
//   patch.mutations.push_back(graphio::stream::Mutation::add_edge(0, 9));
//   auto applied = session.apply(patch);  // dirty/clean component counts
//   auto report2 = session.evaluate(req); // == from-scratch, ~C× cheaper
#pragma once

// Unified analysis API: Engine, BoundRequest/BoundReport, the BoundMethod
// registry, and the shared-artifact cache.
#include "graphio/engine/artifact_cache.hpp"
#include "graphio/store/artifact_store.hpp"
#include "graphio/engine/engine.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/engine/method.hpp"
#include "graphio/engine/report.hpp"
#include "graphio/engine/request.hpp"

// Concurrent batch-analysis service: JSONL jobs in, JSONL reports out,
// work-stealing scheduler, persistent result store.
#include "graphio/serve/batch_session.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/serve/job_queue.hpp"
#include "graphio/serve/result_store.hpp"
#include "graphio/serve/scheduler.hpp"

// Incremental analysis of evolving graphs: mutation/patch grammar,
// dynamic connectivity, and the patch-apply/invalidate/re-solve session.
#include "graphio/stream/dynamic_components.hpp"
#include "graphio/stream/dynamic_graph.hpp"
#include "graphio/stream/mutation.hpp"
#include "graphio/stream/session.hpp"

// Core: the paper's contribution.
#include "graphio/core/analytic_bounds.hpp"
#include "graphio/core/analytic_spectra.hpp"
#include "graphio/core/hierarchy.hpp"
#include "graphio/core/partition.hpp"
#include "graphio/core/partition_dp.hpp"
#include "graphio/core/published.hpp"
#include "graphio/core/spectral_bound.hpp"
#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/core/spectrum.hpp"

// Computation graphs.
#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/graph/digraph.hpp"
#include "graphio/graph/dot.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/graph/transforms.hpp"

// Baseline (convex min-cut) and max-flow substrate.
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/flow/dinic.hpp"
#include "graphio/flow/partitioner.hpp"
#include "graphio/flow/push_relabel.hpp"

// Execution simulator (upper bounds) and schedules.
#include "graphio/sim/anneal.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/sim/parallel_memsim.hpp"
#include "graphio/sim/schedule.hpp"

// Exact ground truth for small graphs.
#include "graphio/exact/enumerate.hpp"
#include "graphio/exact/pebble_recompute.hpp"
#include "graphio/exact/pebble_search.hpp"

// Operation tracer and traced reference programs.
#include "graphio/trace/programs.hpp"
#include "graphio/trace/tape.hpp"

// Observability: process-wide metrics registry and hierarchical span
// tracing (Chrome trace / JSONL export). Off by default, observe-only.
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

// Serialization.
#include "graphio/io/edgelist.hpp"
#include "graphio/io/json.hpp"

// Linear algebra substrate.
#include "graphio/la/bisection.hpp"
#include "graphio/la/csr_matrix.hpp"
#include "graphio/la/dense_matrix.hpp"
#include "graphio/la/jacobi.hpp"
#include "graphio/la/lanczos.hpp"
#include "graphio/la/lobpcg.hpp"
#include "graphio/la/power_iteration.hpp"
#include "graphio/la/solver_policy.hpp"
#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/tridiagonal.hpp"

// Support.
#include "graphio/support/env.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/prng.hpp"
#include "graphio/support/table.hpp"
#include "graphio/support/timer.hpp"
