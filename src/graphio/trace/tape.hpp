// Operation tracer — the C++ analogue of the paper's Python solver
// (Section 6.1: "we develop a solver that traces operations during a
// Python computation and thus extracts a computation graph").
//
// A Tape records every operation performed on trace::Value handles and
// builds the computation Digraph as a side effect. Arithmetic operators
// create binary vertices; Tape::op creates custom n-ary operations (the
// paper's "custom operations"). Running ordinary numeric code on Values
// therefore yields the exact graph that code computes.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::trace {

class Value;

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Records an input (source vertex).
  Value input(std::string name = "");

  /// Records an n-ary operation consuming `operands` (≥ 1), all of which
  /// must belong to this tape. Duplicate operands create parallel edges
  /// (e.g. x·x).
  Value op(std::span<const Value> operands, std::string name = "");
  Value op(std::initializer_list<Value> operands, std::string name = "");

  /// The computation graph recorded so far.
  [[nodiscard]] const Digraph& graph() const noexcept { return graph_; }

  /// Moves the recorded graph out of the tape (tape becomes empty).
  Digraph release();

  [[nodiscard]] std::int64_t num_operations() const noexcept {
    return graph_.num_vertices();
  }

 private:
  friend class Value;
  Digraph graph_;
};

/// A traced scalar: a lightweight (tape, vertex) handle with value
/// semantics. Arithmetic on Values records binary vertices on the tape.
class Value {
 public:
  Value() = default;

  [[nodiscard]] VertexId id() const noexcept { return id_; }
  [[nodiscard]] Tape* tape() const noexcept { return tape_; }
  [[nodiscard]] bool valid() const noexcept { return tape_ != nullptr; }

  friend Value operator+(Value a, Value b);
  friend Value operator-(Value a, Value b);
  friend Value operator*(Value a, Value b);
  friend Value operator/(Value a, Value b);
  Value& operator+=(Value other);
  Value& operator-=(Value other);
  Value& operator*=(Value other);
  Value& operator/=(Value other);

 private:
  friend class Tape;
  Value(Tape* tape, VertexId id) : tape_(tape), id_(id) {}

  Tape* tape_ = nullptr;
  VertexId id_ = -1;
};

/// Reduces values to one result using the given reduction shape
/// (chain = left fold of binary adds, tree = balanced, nary = one vertex).
enum class ReduceShape { kChain, kBinaryTree, kNary };
Value reduce(std::span<const Value> values, ReduceShape shape,
             std::string name = "");

}  // namespace graphio::trace
