#include "graphio/trace/programs.hpp"

#include <string>
#include <vector>

#include "graphio/support/contracts.hpp"

namespace graphio::trace {

namespace {

/// A square matrix of traced values, n×n row-major.
struct ValueMatrix {
  int n = 0;
  std::vector<Value> vals;

  const Value& at(int i, int j) const {
    return vals[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                j];
  }
  Value& at(int i, int j) {
    return vals[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                j];
  }
  static ValueMatrix sized(int n) {
    ValueMatrix m;
    m.n = n;
    m.vals.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  Value{});
    return m;
  }
};

ValueMatrix quadrant(const ValueMatrix& m, int qi, int qj) {
  const int h = m.n / 2;
  ValueMatrix out = ValueMatrix::sized(h);
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < h; ++j) out.at(i, j) = m.at(qi * h + i, qj * h + j);
  return out;
}

ValueMatrix combine2(const ValueMatrix& x, const ValueMatrix& y) {
  ValueMatrix out = ValueMatrix::sized(x.n);
  for (int i = 0; i < x.n; ++i)
    for (int j = 0; j < x.n; ++j) out.at(i, j) = x.at(i, j) + y.at(i, j);
  return out;
}

ValueMatrix combine4(Tape& tape, const ValueMatrix& a, const ValueMatrix& b,
                     const ValueMatrix& c, const ValueMatrix& d) {
  ValueMatrix out = ValueMatrix::sized(a.n);
  for (int i = 0; i < a.n; ++i)
    for (int j = 0; j < a.n; ++j)
      out.at(i, j) =
          tape.op({a.at(i, j), b.at(i, j), c.at(i, j), d.at(i, j)});
  return out;
}

ValueMatrix strassen_run(Tape& tape, const ValueMatrix& a,
                         const ValueMatrix& b) {
  if (a.n == 1) {
    ValueMatrix out = ValueMatrix::sized(1);
    out.at(0, 0) = a.at(0, 0) * b.at(0, 0);
    return out;
  }
  const ValueMatrix a11 = quadrant(a, 0, 0), a12 = quadrant(a, 0, 1);
  const ValueMatrix a21 = quadrant(a, 1, 0), a22 = quadrant(a, 1, 1);
  const ValueMatrix b11 = quadrant(b, 0, 0), b12 = quadrant(b, 0, 1);
  const ValueMatrix b21 = quadrant(b, 1, 0), b22 = quadrant(b, 1, 1);

  const ValueMatrix m1 = strassen_run(tape, combine2(a11, a22), combine2(b11, b22));
  const ValueMatrix m2 = strassen_run(tape, combine2(a21, a22), b11);
  const ValueMatrix m3 = strassen_run(tape, a11, combine2(b12, b22));
  const ValueMatrix m4 = strassen_run(tape, a22, combine2(b21, b11));
  const ValueMatrix m5 = strassen_run(tape, combine2(a11, a12), b22);
  const ValueMatrix m6 = strassen_run(tape, combine2(a21, a11), combine2(b11, b12));
  const ValueMatrix m7 = strassen_run(tape, combine2(a12, a22), combine2(b21, b22));

  const int h = a.n / 2;
  ValueMatrix c = ValueMatrix::sized(a.n);
  const ValueMatrix c11 = combine4(tape, m1, m4, m5, m7);
  const ValueMatrix c12 = combine2(m3, m5);
  const ValueMatrix c21 = combine2(m2, m4);
  const ValueMatrix c22 = combine4(tape, m1, m2, m3, m6);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      c.at(i, j) = c11.at(i, j);
      c.at(i, j + h) = c12.at(i, j);
      c.at(i + h, j) = c21.at(i, j);
      c.at(i + h, j + h) = c22.at(i, j);
    }
  }
  return c;
}

}  // namespace

Digraph traced_fft(int levels) {
  GIO_EXPECTS(levels >= 0 && levels <= 20);
  const std::int64_t width = std::int64_t{1} << levels;
  Tape tape;
  std::vector<Value> wire(static_cast<std::size_t>(width));
  for (std::int64_t r = 0; r < width; ++r)
    wire[static_cast<std::size_t>(r)] =
        tape.input("x" + std::to_string(r));
  // Iterative radix-2 butterfly: at level c each output point combines
  // its own wire with the wire `stride` away (the twiddle scaling is part
  // of the op — one value per point per level, exactly Figure 5).
  for (int c = 1; c <= levels; ++c) {
    const std::int64_t stride = std::int64_t{1} << (c - 1);
    std::vector<Value> next(static_cast<std::size_t>(width));
    for (std::int64_t r = 0; r < width; ++r)
      next[static_cast<std::size_t>(r)] =
          tape.op({wire[static_cast<std::size_t>(r)],
                   wire[static_cast<std::size_t>(r ^ stride)]});
    wire = std::move(next);
  }
  return tape.release();
}

Digraph traced_matmul(int n, ReduceShape shape) {
  GIO_EXPECTS(n >= 1);
  Tape tape;
  ValueMatrix a = ValueMatrix::sized(n);
  ValueMatrix b = ValueMatrix::sized(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a.at(i, j) = tape.input("a" + std::to_string(i) + "_" + std::to_string(j));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      b.at(i, j) = tape.input("b" + std::to_string(i) + "_" + std::to_string(j));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::vector<Value> products;
      products.reserve(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k)
        products.push_back(a.at(i, k) * b.at(k, j));
      (void)reduce(products, shape,
                   "c" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  return tape.release();
}

Digraph traced_strassen(int n) {
  GIO_EXPECTS_MSG(n >= 1 && (n & (n - 1)) == 0,
                  "Strassen requires a power-of-two side");
  Tape tape;
  ValueMatrix a = ValueMatrix::sized(n);
  ValueMatrix b = ValueMatrix::sized(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a.at(i, j) = tape.input();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b.at(i, j) = tape.input();
  (void)strassen_run(tape, a, b);
  return tape.release();
}

Digraph traced_bhk(int cities) {
  GIO_EXPECTS(cities >= 1 && cities <= 24);
  const std::uint64_t n = std::uint64_t{1} << cities;
  Tape tape;
  std::vector<Value> solution(static_cast<std::size_t>(n));
  solution[0] = tape.input("start");
  // Subsets in increasing popcount order are exactly increasing integers'
  // topological closure here: every subset k > 0 combines the solution
  // sets of all subsets with one city removed.
  for (std::uint64_t k = 1; k < n; ++k) {
    std::vector<Value> operands;
    for (std::uint64_t rest = k; rest != 0; rest &= rest - 1) {
      const std::uint64_t bit = rest & (~rest + 1);
      operands.push_back(solution[static_cast<std::size_t>(k & ~bit)]);
    }
    solution[static_cast<std::size_t>(k)] = tape.op(operands);
  }
  return tape.release();
}

Digraph traced_horner(int degree) {
  GIO_EXPECTS(degree >= 0);
  Tape tape;
  const Value x = tape.input("x");
  Value acc = tape.input("c" + std::to_string(degree));
  for (int i = degree - 1; i >= 0; --i) {
    const Value scaled = acc * x;
    const Value coeff = tape.input("c" + std::to_string(i));
    acc = scaled + coeff;
  }
  return tape.release();
}

}  // namespace graphio::trace
