// Traced reference programs (the paper's Section 6.1 workflow).
//
// Each function RUNS a real algorithm on trace::Value handles; the tape
// records exactly the computation graph that execution performs. The
// builders in graph/builders construct the same families directly from
// their structural definitions, so the pair gives two independent routes
// to each evaluation graph — the cross-validation tests check that both
// routes agree on every structural invariant and on the spectral bound
// itself.
#pragma once

#include "graphio/graph/digraph.hpp"
#include "graphio/trace/tape.hpp"

namespace graphio::trace {

/// Runs the recursive radix-2 decimation-in-time FFT on 2^levels traced
/// inputs (butterfly: a ± t·b per level — two ops per output point whose
/// operand structure matches the butterfly graph).
Digraph traced_fft(int levels);

/// Runs naive n×n matrix multiplication; each C entry reduces its n
/// products with the given shape.
Digraph traced_matmul(int n, ReduceShape shape = ReduceShape::kNary);

/// Runs Strassen's algorithm down to 1×1 base cases on n×n operands
/// (n a power of two).
Digraph traced_strassen(int n);

/// Runs the Bellman–Held–Karp dynamic program for an l-city TSP with the
/// paper's hypercube formulation: one op per visited-set vertex combining
/// its subset predecessors.
Digraph traced_bhk(int cities);

/// Runs Horner evaluation of a degree-d polynomial (chain of fused
/// multiply-adds): the canonical "arbitrary user computation".
Digraph traced_horner(int degree);

}  // namespace graphio::trace
