#include <vector>

#include "graphio/support/contracts.hpp"
#include "graphio/trace/tape.hpp"

namespace graphio::trace {

namespace {
Value binary(const char* symbol, Value a, Value b) {
  GIO_EXPECTS_MSG(a.valid() && b.valid(), "operands must be traced values");
  GIO_EXPECTS_MSG(a.tape() == b.tape(),
                  "operands must come from the same tape");
  return a.tape()->op({a, b}, symbol);
}
}  // namespace

Value operator+(Value a, Value b) { return binary("+", a, b); }
Value operator-(Value a, Value b) { return binary("-", a, b); }
Value operator*(Value a, Value b) { return binary("*", a, b); }
Value operator/(Value a, Value b) { return binary("/", a, b); }

Value& Value::operator+=(Value other) { return *this = *this + other; }
Value& Value::operator-=(Value other) { return *this = *this - other; }
Value& Value::operator*=(Value other) { return *this = *this * other; }
Value& Value::operator/=(Value other) { return *this = *this / other; }

Value reduce(std::span<const Value> values, ReduceShape shape,
             std::string name) {
  GIO_EXPECTS_MSG(!values.empty(), "cannot reduce zero values");
  if (values.size() == 1) return values[0];
  switch (shape) {
    case ReduceShape::kNary:
      return values[0].tape()->op(values, std::move(name));
    case ReduceShape::kChain: {
      Value acc = values[0];
      for (std::size_t i = 1; i < values.size(); ++i) acc = acc + values[i];
      return acc;
    }
    case ReduceShape::kBinaryTree: {
      std::vector<Value> layer(values.begin(), values.end());
      while (layer.size() > 1) {
        std::vector<Value> next;
        next.reserve((layer.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
          next.push_back(layer[i] + layer[i + 1]);
        if (layer.size() % 2 == 1) next.push_back(layer.back());
        layer = std::move(next);
      }
      return layer[0];
    }
  }
  GIO_ASSERT(false);
  return values[0];
}

}  // namespace graphio::trace
