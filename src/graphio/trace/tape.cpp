#include "graphio/trace/tape.hpp"

#include "graphio/support/contracts.hpp"

namespace graphio::trace {

Value Tape::input(std::string name) {
  const VertexId v = graph_.add_vertex();
  if (!name.empty()) graph_.set_name(v, std::move(name));
  return Value(this, v);
}

Value Tape::op(std::span<const Value> operands, std::string name) {
  GIO_EXPECTS_MSG(!operands.empty(), "an operation needs operands");
  for (const Value& operand : operands)
    GIO_EXPECTS_MSG(operand.tape() == this,
                    "all operands must come from the same tape");
  const VertexId v = graph_.add_vertex();
  if (!name.empty()) graph_.set_name(v, std::move(name));
  for (const Value& operand : operands) graph_.add_edge(operand.id(), v);
  return Value(this, v);
}

Value Tape::op(std::initializer_list<Value> operands, std::string name) {
  return op(std::span<const Value>(operands.begin(), operands.size()),
            std::move(name));
}

Digraph Tape::release() {
  Digraph out = std::move(graph_);
  graph_ = Digraph();
  return out;
}

}  // namespace graphio::trace
