#include "graphio/stream/dynamic_components.hpp"

#include <algorithm>

#include "graphio/support/contracts.hpp"

namespace graphio::stream {

void DynamicComponents::reset(const DynamicGraph& g) {
  slots_.clear();
  component_of_.assign(static_cast<std::size_t>(g.id_limit()), -1);
  dirty_flag_.clear();
  dirty_list_.clear();
  rebuild_flag_.clear();
  rebuild_list_.clear();
  alive_count_ = 0;
  journal_.clear();
  journaling_ = false;

  std::vector<VertexId> stack;
  for (VertexId root = 0; root < g.id_limit(); ++root) {
    if (!g.alive(root) ||
        component_of_[static_cast<std::size_t>(root)] != -1)
      continue;
    const int c = new_slot();
    Slot& slot = slots_[static_cast<std::size_t>(c)];
    stack.assign(1, root);
    component_of_[static_cast<std::size_t>(root)] = c;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      slot.vertices.push_back(v);
      for (std::span<const VertexId> neighbors :
           {g.children(v), g.parents(v)}) {
        for (VertexId w : neighbors) {
          if (component_of_[static_cast<std::size_t>(w)] != -1) continue;
          component_of_[static_cast<std::size_t>(w)] = c;
          stack.push_back(w);
        }
      }
    }
    std::sort(slot.vertices.begin(), slot.vertices.end());
  }
}

int DynamicComponents::new_slot() {
  slots_.emplace_back();
  slots_.back().alive = true;
  dirty_flag_.push_back(false);
  rebuild_flag_.push_back(false);
  ++alive_count_;
  return static_cast<int>(slots_.size()) - 1;
}

void DynamicComponents::mark_dirty(int c) {
  if (dirty_flag_[static_cast<std::size_t>(c)]) return;
  dirty_flag_[static_cast<std::size_t>(c)] = true;
  dirty_list_.push_back(c);
}

void DynamicComponents::queue_rebuild(int c) {
  if (rebuild_flag_[static_cast<std::size_t>(c)]) return;
  rebuild_flag_[static_cast<std::size_t>(c)] = true;
  rebuild_list_.push_back(c);
}

void DynamicComponents::begin_patch() {
  GIO_EXPECTS_MSG(rebuild_list_.empty(),
                  "begin_patch before the previous patch was flushed");
  for (int c : dirty_list_) dirty_flag_[static_cast<std::size_t>(c)] = false;
  dirty_list_.clear();
  // Arm the rollback journal: a patch starts with empty queues and all
  // flags down, so queue state needs no per-op records — only structural
  // changes do.
  journal_.clear();
  journaling_ = true;
  journal_alive_count_ = alive_count_;
  journal_label_size_ = component_of_.size();
}

void DynamicComponents::rollback_patch() {
  GIO_EXPECTS_MSG(journaling_,
                  "rollback_patch without a begin_patch in effect");
  // Queue state first (clearing the members the lists name), before any
  // undo pops the slots those members may index.
  for (int c : dirty_list_) dirty_flag_[static_cast<std::size_t>(c)] = false;
  dirty_list_.clear();
  for (int c : rebuild_list_)
    rebuild_flag_[static_cast<std::size_t>(c)] = false;
  rebuild_list_.clear();

  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    const Undo& undo = *it;
    switch (undo.kind) {
      case Undo::Kind::kNewSlot: {
        slots_.pop_back();
        dirty_flag_.pop_back();
        rebuild_flag_.pop_back();
        break;
      }
      case Undo::Kind::kMerge: {
        Slot& kept = slots_[static_cast<std::size_t>(undo.c)];
        Slot& dropped = slots_[static_cast<std::size_t>(undo.drop)];
        GIO_ASSERT(kept.vertices.size() >= undo.moved);
        // The merge appended the dropped side verbatim, so the suffix IS
        // its former list, order included.
        dropped.vertices.assign(kept.vertices.end() -
                                    static_cast<std::ptrdiff_t>(undo.moved),
                                kept.vertices.end());
        kept.vertices.resize(kept.vertices.size() - undo.moved);
        for (VertexId w : dropped.vertices)
          component_of_[static_cast<std::size_t>(w)] = undo.drop;
        kept.sorted = undo.kept_was_sorted;
        dropped.sorted = undo.drop_was_sorted;
        dropped.alive = true;
        break;
      }
      case Undo::Kind::kErase: {
        Slot& slot = slots_[static_cast<std::size_t>(undo.c)];
        slot.vertices.insert(
            slot.vertices.begin() + static_cast<std::ptrdiff_t>(undo.pos),
            undo.v);
        component_of_[static_cast<std::size_t>(undo.v)] = undo.c;
        if (undo.slot_died) slot.alive = true;
        break;
      }
    }
  }
  component_of_.resize(journal_label_size_);
  alive_count_ = journal_alive_count_;
  journal_.clear();
  journaling_ = false;
}

void DynamicComponents::on_add_vertex(VertexId v) {
  GIO_EXPECTS(v >= 0);
  if (static_cast<std::size_t>(v) >= component_of_.size())
    component_of_.resize(static_cast<std::size_t>(v) + 1, -1);
  GIO_EXPECTS_MSG(component_of_[static_cast<std::size_t>(v)] == -1,
                  "vertex already labeled");
  const int c = new_slot();
  slots_[static_cast<std::size_t>(c)].vertices.push_back(v);
  component_of_[static_cast<std::size_t>(v)] = c;
  mark_dirty(c);
  if (journaling_) {
    // Vertex ids are append-only, so a patch-added vertex always labels
    // beyond the begin_patch() range — rollback's final resize drops the
    // label, and only the slot needs a record.
    GIO_ASSERT(static_cast<std::size_t>(v) >= journal_label_size_);
    Undo undo;
    undo.kind = Undo::Kind::kNewSlot;
    journal_.push_back(undo);
  }
}

void DynamicComponents::on_add_edge(VertexId u, VertexId v) {
  const int cu = component_of(u);
  const int cv = component_of(v);
  if (cu == cv) {
    mark_dirty(cu);
    return;
  }
  // Weighted union: relabel and append the smaller side into the larger —
  // O(|smaller|), so a vertex relabels at most O(log n) times over any
  // insertion history. The kept list goes unsorted until flush() restores
  // order with one sort per dirty component.
  Slot& su = slots_[static_cast<std::size_t>(cu)];
  Slot& sv = slots_[static_cast<std::size_t>(cv)];
  const bool u_larger = su.vertices.size() >= sv.vertices.size();
  const int keep = u_larger ? cu : cv;
  const int drop = u_larger ? cv : cu;
  Slot& kept = u_larger ? su : sv;
  Slot& dropped = u_larger ? sv : su;
  if (journaling_) {
    Undo undo;
    undo.kind = Undo::Kind::kMerge;
    undo.c = keep;
    undo.drop = drop;
    undo.moved = dropped.vertices.size();
    undo.kept_was_sorted = kept.sorted;
    undo.drop_was_sorted = dropped.sorted;
    journal_.push_back(undo);
  }
  for (VertexId w : dropped.vertices)
    component_of_[static_cast<std::size_t>(w)] = keep;
  kept.vertices.insert(kept.vertices.end(), dropped.vertices.begin(),
                       dropped.vertices.end());
  kept.sorted = false;
  dropped.vertices.clear();
  dropped.vertices.shrink_to_fit();
  dropped.alive = false;
  --alive_count_;
  mark_dirty(keep);
  // A queued rebuild of either side now covers the union.
  if (rebuild_flag_[static_cast<std::size_t>(drop)]) {
    rebuild_flag_[static_cast<std::size_t>(drop)] = false;
    queue_rebuild(keep);
  }
}

void DynamicComponents::on_remove_edge(VertexId u, VertexId v) {
  const int c = component_of(u);
  GIO_ASSERT(component_of(v) == c);
  (void)v;
  mark_dirty(c);
  queue_rebuild(c);
}

void DynamicComponents::on_remove_vertex(VertexId v) {
  const int c = component_of(v);
  Slot& slot = slots_[static_cast<std::size_t>(c)];
  const auto it =
      slot.sorted
          ? std::lower_bound(slot.vertices.begin(), slot.vertices.end(), v)
          : std::find(slot.vertices.begin(), slot.vertices.end(), v);
  GIO_ASSERT(it != slot.vertices.end() && *it == v);
  const auto pos = static_cast<std::size_t>(it - slot.vertices.begin());
  slot.vertices.erase(it);
  component_of_[static_cast<std::size_t>(v)] = -1;
  mark_dirty(c);
  bool slot_died = false;
  if (slot.vertices.empty()) {
    slot_died = true;
    slot.alive = false;
    --alive_count_;
    if (rebuild_flag_[static_cast<std::size_t>(c)]) {
      rebuild_flag_[static_cast<std::size_t>(c)] = false;
      std::erase(rebuild_list_, c);
    }
  } else {
    queue_rebuild(c);
  }
  if (journaling_) {
    Undo undo;
    undo.kind = Undo::Kind::kErase;
    undo.v = v;
    undo.c = c;
    undo.pos = pos;
    undo.slot_died = slot_died;
    journal_.push_back(undo);
  }
}

void DynamicComponents::flush(const DynamicGraph& g) {
  // flush() is the commit point: every mutation of the patch applied, so
  // the rollback journal retires (split pieces created below never need
  // journaling — a failure can no longer happen inside this patch).
  journal_.clear();
  journaling_ = false;
  // Restore the ascending-order invariant on components whose lists went
  // unsorted through merges: one sort per dirty component per patch.
  for (int c : dirty_list_) {
    Slot& slot = slots_[static_cast<std::size_t>(c)];
    if (!slot.alive || slot.sorted) continue;
    std::sort(slot.vertices.begin(), slot.vertices.end());
    slot.sorted = true;
  }
  if (rebuild_list_.empty()) return;
  // Partial rebuild: BFS over the queued components' own vertices only —
  // clean components are never visited, read, or relabeled.
  std::vector<int> queued = std::move(rebuild_list_);
  rebuild_list_.clear();
  std::sort(queued.begin(), queued.end());
  std::vector<VertexId> stack;
  for (int c : queued) {
    rebuild_flag_[static_cast<std::size_t>(c)] = false;
    Slot& slot = slots_[static_cast<std::size_t>(c)];
    if (!slot.alive) continue;  // emptied or merged away after queueing
    const std::vector<VertexId> members = std::move(slot.vertices);
    slot.vertices.clear();
    // Unlabel, then re-grow pieces. Vertices of this component can only
    // connect within `members` (edges never leave a weak component).
    for (VertexId v : members) component_of_[static_cast<std::size_t>(v)] = -1;
    bool first_piece = true;
    for (VertexId root : members) {
      if (component_of_[static_cast<std::size_t>(root)] != -1) continue;
      // `members` ascends, so the first piece — which keeps id c —
      // contains the smallest member, and later pieces get fresh ids in
      // ascending smallest-vertex order: deterministic numbering.
      const int piece = first_piece ? c : new_slot();
      if (first_piece) {
        first_piece = false;
      } else {
        mark_dirty(piece);
      }
      Slot& target = slots_[static_cast<std::size_t>(piece)];
      stack.assign(1, root);
      component_of_[static_cast<std::size_t>(root)] = piece;
      while (!stack.empty()) {
        const VertexId v = stack.back();
        stack.pop_back();
        target.vertices.push_back(v);
        for (std::span<const VertexId> neighbors :
             {g.children(v), g.parents(v)}) {
          for (VertexId w : neighbors) {
            if (component_of_[static_cast<std::size_t>(w)] != -1) continue;
            component_of_[static_cast<std::size_t>(w)] = piece;
            stack.push_back(w);
          }
        }
      }
      std::sort(target.vertices.begin(), target.vertices.end());
    }
  }
}

std::vector<int> DynamicComponents::component_ids() const {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(alive_count_));
  for (std::size_t c = 0; c < slots_.size(); ++c)
    if (slots_[c].alive) ids.push_back(static_cast<int>(c));
  return ids;
}

std::vector<int> DynamicComponents::dirty() const {
  std::vector<int> ids;
  ids.reserve(dirty_list_.size());
  for (int c : dirty_list_)
    if (slots_[static_cast<std::size_t>(c)].alive) ids.push_back(c);
  std::sort(ids.begin(), ids.end());
  return ids;
}

int DynamicComponents::component_of(VertexId v) const {
  GIO_EXPECTS_MSG(v >= 0 &&
                      static_cast<std::size_t>(v) < component_of_.size() &&
                      component_of_[static_cast<std::size_t>(v)] != -1,
                  "vertex " + std::to_string(v) + " is not alive");
  return component_of_[static_cast<std::size_t>(v)];
}

const std::vector<VertexId>& DynamicComponents::vertices_of(int c) const {
  GIO_EXPECTS_MSG(c >= 0 && static_cast<std::size_t>(c) < slots_.size() &&
                      slots_[static_cast<std::size_t>(c)].alive,
                  "component " + std::to_string(c) + " is not alive");
  return slots_[static_cast<std::size_t>(c)].vertices;
}

Digraph DynamicComponents::subgraph(
    const DynamicGraph& g, int c,
    std::vector<VertexId>* external_of_local) const {
  const std::vector<VertexId>& ids = vertices_of(c);
  // Mirrors WeakComponents::subgraph: local ids in ascending external-id
  // order, edge multiplicity and list order preserved. Requires a flushed
  // structure (flush() restores the ascending invariant after merges).
  GIO_ASSERT(slots_[static_cast<std::size_t>(c)].sorted);
  Digraph sub(static_cast<std::int64_t>(ids.size()));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const VertexId v = ids[i];
    for (VertexId w : g.children(v)) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), w);
      GIO_ASSERT(it != ids.end() && *it == w);
      sub.add_edge(static_cast<VertexId>(i),
                   static_cast<VertexId>(it - ids.begin()));
    }
    if (!g.name(v).empty()) sub.set_name(static_cast<VertexId>(i), g.name(v));
  }
  if (external_of_local != nullptr) *external_of_local = ids;
  return sub;
}

bool DynamicComponents::matches(const DynamicGraph& g) const {
  // Compare partitions: same blocks regardless of numbering. Rebuild from
  // scratch and check that each structure's blocks are identical sets.
  DynamicComponents fresh(g);
  if (fresh.count() != alive_count_) return false;
  for (VertexId v = 0; v < g.id_limit(); ++v) {
    if (!g.alive(v)) continue;
    if (fresh.vertices_of(fresh.component_of(v)) !=
        vertices_of(component_of(v)))
      return false;
  }
  return true;
}

}  // namespace graphio::stream
