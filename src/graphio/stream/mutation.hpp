// Mutations — the stream subsystem's unit of change: one graph edit,
// batched into Patches, parsed from JSONL update lines.
//
// Mutation grammar (one JSON object per mutation):
//
//   {"op": "add_vertex"}                   append one isolated vertex
//   {"op": "add_vertex", "count": 3}       append several at once
//   {"op": "remove_vertex", "v": 5}        drop a vertex and its edges
//   {"op": "add_edge", "u": 0, "v": 7}     add one u -> v edge
//   {"op": "remove_edge", "u": 0, "v": 7}  drop one u -> v multiplicity
//
// A Patch is an ordered list of mutations applied atomically between two
// analyses:
//
//   {"patch": [{"op": "add_edge", "u": 0, "v": 7}, ...],
//    "label": "rewrite-17"}                label optional
//
// Vertex ids are the stream's stable external ids: ids are assigned in
// append order, never renumbered by removals, and dead ids are never
// reused — so a patch author can predict the id every add_vertex yields.
// Parsing is strict (unknown keys/ops, wrong types, negative ids throw
// contract_error with context), matching the serve job grammar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphio/graph/digraph.hpp"
#include "graphio/io/json.hpp"

namespace graphio::stream {

enum class MutationOp {
  kAddVertex,
  kRemoveVertex,
  kAddEdge,
  kRemoveEdge,
};

std::string_view to_string(MutationOp op);

struct Mutation {
  MutationOp op = MutationOp::kAddVertex;
  /// add_vertex: how many vertices to append (>= 1).
  std::int64_t count = 1;
  /// Edge endpoints (edge ops) or the removed vertex (`v`, remove_vertex).
  VertexId u = -1;
  VertexId v = -1;

  static Mutation add_vertex(std::int64_t count = 1);
  static Mutation remove_vertex(VertexId v);
  static Mutation add_edge(VertexId u, VertexId v);
  static Mutation remove_edge(VertexId u, VertexId v);
};

/// An ordered batch of mutations applied between two analyses.
struct Patch {
  std::vector<Mutation> mutations;
  /// Free-form tag echoed into patch results (display only).
  std::string label;

  [[nodiscard]] bool empty() const noexcept { return mutations.empty(); }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(mutations.size());
  }
};

/// Parses one mutation object. Throws contract_error on unknown ops or
/// keys, missing endpoints, or out-of-range values.
Mutation mutation_from_json(const io::JsonValue& value);

/// Parses a patch: either a bare JSON array of mutations, or an object
/// {"patch": [...], "label": ...}. Throws contract_error on malformed
/// input (an empty mutation array is valid — a no-op patch).
Patch patch_from_json(const io::JsonValue& value);

/// Convenience: parse one JSONL line into a patch.
Patch patch_from_json_line(const std::string& line);

/// Serializes back to the object form (round-trips with patch_from_json).
std::string patch_to_json_line(const Patch& patch);

/// Serializes one mutation into an open writer (for embedding).
void append_mutation_json(io::JsonWriter& w, const Mutation& m);

}  // namespace graphio::stream
