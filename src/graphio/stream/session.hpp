// StreamSession — incremental I/O-bound analysis of one evolving graph.
//
//   stream::StreamSession session("g");
//   session.load("fft:6");                        // or an explicit Digraph
//   stream::PatchReport r = session.apply(patch); // mutate + invalidate
//   engine::BoundRequest req;
//   req.memories = {8};
//   req.methods = {"spectral"};
//   engine::BoundReport report = session.evaluate(req);
//
// The session owns an engine::Engine and keeps the patched graph
// installed under its name, so queries between patches share one
// ArtifactCache (spectra, wavefront cuts computed once). A patch:
//
//   1. applies its mutations to the DynamicGraph, updating the
//      DynamicComponents labels incrementally (union-find insertions,
//      partial-rebuild deletions) and collecting the dirty-component set;
//   2. re-fingerprints only the dirty components and recombines the
//      session fingerprint from the per-component values — clean
//      components are never re-hashed;
//   3. invalidates exactly what died: the named graph's whole-graph
//      artifacts (replaced via Engine::install_graph) and the artifact-
//      store memory-tier entries whose content no longer occurs in the
//      graph (refcounted across equal components, evicted at zero; a
//      disk tier, being append-only, keeps them for restarts).
//
// The next evaluate() then recomputes the dirty components only — for
// every artifact kind, not just spectra: clean components hit the
// fingerprint-keyed store::ArtifactStore, and the graph itself is handed
// to the engine lazily (engine::LazyGraph), so a query for topo/min-cut/
// memsim artifacts never rematerializes the whole Digraph — while
// producing bounds identical to a from-scratch analysis of the final
// graph (the decomposition is exact; bench/stream_updates.cpp certifies
// parity and the speedup, tests/stream_session_test.cpp the property).
//
// Thread safety: all public methods serialize on one internal mutex, so a
// session can be shared by a mutating thread and querying threads; each
// caller sees a consistent patch boundary.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/stream/dynamic_components.hpp"
#include "graphio/stream/dynamic_graph.hpp"
#include "graphio/stream/mutation.hpp"

namespace graphio::stream {

/// What one apply() did — the stream result-line payload.
struct PatchReport {
  std::string graph;       ///< session name
  std::string label;       ///< patch label (may be empty)
  std::int64_t mutations = 0;
  std::int64_t vertices = 0;  ///< alive vertices after the patch
  std::int64_t edges = 0;
  int components = 0;
  int dirty_components = 0;  ///< components whose content changed
  int clean_components = 0;  ///< components untouched (spectra reusable)
  std::int64_t evicted = 0;  ///< artifact-store entries invalidated
  std::string fingerprint;   ///< session fingerprint after the patch (hex)
  double seconds = 0.0;      ///< apply wall time (excluded from JSONL)
};

class StreamSession {
 public:
  /// `name` addresses the evolving graph inside the owned Engine; it must
  /// not parse as a family spec or name an existing graph file (the
  /// closed-form method would otherwise trust the name's family metadata
  /// for a graph the patches have since changed). `store` shares a
  /// content-addressed artifact store with other sessions/engines (the
  /// serve layer passes its process-wide, possibly disk-backed one);
  /// when null the session owns a private memory-only store.
  explicit StreamSession(std::string name = "stream",
                         std::shared_ptr<store::ArtifactStore> store =
                             nullptr);

  /// Seeds the session from a spec ("fft:6", a .gel/.dot path) or an
  /// explicit graph; replaces any previous state (a load is patch zero:
  /// every component is dirty).
  PatchReport load(const std::string& spec);
  PatchReport load(const Digraph& graph);

  /// Applies one patch atomically: an inverse-mutation journal (not an
  /// O(n+m) snapshot) backs the rollback, so a failing mutation unwinds
  /// in O(state the patch touched). Throws contract_error (leaving the
  /// session on the last good graph, bit-identically) when a mutation
  /// does not apply — callers retry with a corrected patch.
  PatchReport apply(const Patch& patch);

  /// Evaluates a request against the current graph. request.spec/graph
  /// are ignored (the session's graph wins); methods/memories/options
  /// pass through. Clean components resolve from the artifact store.
  engine::BoundReport evaluate(engine::BoundRequest request);

  /// Session content fingerprint: the combination (order-independent) of
  /// the current components' content fingerprints — equal iff the graphs
  /// have equal component multisets. Maintained incrementally: a patch
  /// re-hashes dirty components only.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The current graph, frozen (compacted ids ascend with external ids).
  [[nodiscard]] Digraph graph() const;

  /// Current structural counts, without materializing anything — the
  /// serve layer stamps result lines with these.
  [[nodiscard]] std::int64_t num_vertices() const;
  [[nodiscard]] std::int64_t num_edges() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool loaded() const;

  struct Stats {
    std::int64_t patches = 0;
    std::int64_t mutations = 0;
    std::int64_t dirty_components = 0;  ///< summed over patches
    std::int64_t clean_components = 0;
    std::int64_t evicted = 0;           ///< artifact-store evictions
    std::int64_t queries = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// The owned engine (test/introspection hook; the artifact store and
  /// artifact stats live there).
  [[nodiscard]] engine::Engine& engine() noexcept { return *engine_; }

 private:
  PatchReport load_locked(const Digraph& graph);
  PatchReport finish_patch_locked(const Patch& patch,
                                  const std::vector<int>& dirty,
                                  std::int64_t evicted_before,
                                  double seconds);
  void refingerprint_locked(const std::vector<int>& dirty);
  std::uint64_t combined_fingerprint_locked() const;

  mutable std::mutex mutex_;
  std::string name_;
  std::unique_ptr<engine::Engine> engine_;
  DynamicGraph graph_;
  DynamicComponents components_;
  bool loaded_ = false;
  /// Content fingerprint per alive component id.
  std::map<int, std::uint64_t> component_fingerprint_;
  /// Pre-patch fingerprint per component dirtied by the most recent
  /// patch — the predecessor key the warm-start layer falls back to.
  std::map<int, std::uint64_t> predecessor_fingerprint_;
  /// How many current components share each content fingerprint; an
  /// eviction fires when a count reaches zero.
  std::map<std::uint64_t, int> fingerprint_refcount_;
  Stats stats_;
  /// Dirty/clean split of the most recent patch — stamped onto
  /// "stream.query" spans so a trace relates each query's cost to how
  /// much of the graph the preceding patch invalidated.
  int last_dirty_ = 0;
  int last_clean_ = 0;
};

}  // namespace graphio::stream
