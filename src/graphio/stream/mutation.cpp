#include "graphio/stream/mutation.hpp"

#include "graphio/support/contracts.hpp"

namespace graphio::stream {

std::string_view to_string(MutationOp op) {
  switch (op) {
    case MutationOp::kAddVertex: return "add_vertex";
    case MutationOp::kRemoveVertex: return "remove_vertex";
    case MutationOp::kAddEdge: return "add_edge";
    case MutationOp::kRemoveEdge: return "remove_edge";
  }
  return "?";
}

Mutation Mutation::add_vertex(std::int64_t count) {
  // Range-checked at ingest like every other numeric grammar field: one
  // job line must not be able to allocate unbounded vertices.
  GIO_EXPECTS_MSG(count >= 1 && count <= 1'000'000,
                  "add_vertex count out of range [1, 1000000]");
  Mutation m;
  m.op = MutationOp::kAddVertex;
  m.count = count;
  return m;
}

Mutation Mutation::remove_vertex(VertexId v) {
  GIO_EXPECTS_MSG(v >= 0, "vertex id must be non-negative");
  Mutation m;
  m.op = MutationOp::kRemoveVertex;
  m.v = v;
  return m;
}

Mutation Mutation::add_edge(VertexId u, VertexId v) {
  GIO_EXPECTS_MSG(u >= 0 && v >= 0, "vertex ids must be non-negative");
  GIO_EXPECTS_MSG(u != v, "self-loops are not allowed");
  Mutation m;
  m.op = MutationOp::kAddEdge;
  m.u = u;
  m.v = v;
  return m;
}

Mutation Mutation::remove_edge(VertexId u, VertexId v) {
  GIO_EXPECTS_MSG(u >= 0 && v >= 0, "vertex ids must be non-negative");
  Mutation m;
  m.op = MutationOp::kRemoveEdge;
  m.u = u;
  m.v = v;
  return m;
}

Mutation mutation_from_json(const io::JsonValue& value) {
  GIO_EXPECTS_MSG(value.is_object(), "mutation must be a JSON object");
  std::string op;
  std::int64_t count = 1;
  VertexId u = -1;
  VertexId v = -1;
  bool has_count = false;
  bool has_u = false;
  bool has_v = false;
  for (const auto& [key, field] : value.members()) {
    if (key == "op") {
      op = field.as_string();
    } else if (key == "count") {
      count = field.as_int();
      has_count = true;
    } else if (key == "u") {
      u = field.as_int();
      has_u = true;
    } else if (key == "v") {
      v = field.as_int();
      has_v = true;
    } else {
      GIO_EXPECTS_MSG(false, "unknown mutation key '" + key + "'");
    }
  }
  GIO_EXPECTS_MSG(!op.empty(), "mutation needs an \"op\"");
  GIO_EXPECTS_MSG(op == "add_vertex" || op == "remove_vertex" ||
                      op == "add_edge" || op == "remove_edge",
                  "unknown mutation op '" + op +
                      "' (known: add_vertex|remove_vertex|"
                      "add_edge|remove_edge)");
  if (op == "add_vertex") {
    GIO_EXPECTS_MSG(!has_u && !has_v, "add_vertex takes no endpoints");
    return Mutation::add_vertex(count);
  }
  GIO_EXPECTS_MSG(!has_count, "\"count\" only applies to add_vertex");
  if (op == "remove_vertex") {
    GIO_EXPECTS_MSG(has_v && !has_u, "remove_vertex needs \"v\" only");
    return Mutation::remove_vertex(v);
  }
  GIO_EXPECTS_MSG(has_u && has_v,
                  "edge mutation needs both \"u\" and \"v\"");
  return op == "add_edge" ? Mutation::add_edge(u, v)
                          : Mutation::remove_edge(u, v);
}

Patch patch_from_json(const io::JsonValue& value) {
  Patch patch;
  const io::JsonValue* mutations = &value;
  if (value.is_object()) {
    for (const auto& [key, field] : value.members()) {
      if (key == "patch") {
        mutations = &field;
      } else if (key == "label") {
        patch.label = field.as_string();
      } else {
        GIO_EXPECTS_MSG(false, "unknown patch key '" + key + "'");
      }
    }
    GIO_EXPECTS_MSG(mutations != &value, "patch object needs a \"patch\"");
  }
  GIO_EXPECTS_MSG(mutations->is_array(),
                  "\"patch\" must be an array of mutations");
  patch.mutations.reserve(mutations->size());
  for (const io::JsonValue& m : mutations->items())
    patch.mutations.push_back(mutation_from_json(m));
  return patch;
}

Patch patch_from_json_line(const std::string& line) {
  return patch_from_json(io::JsonValue::parse(line));
}

void append_mutation_json(io::JsonWriter& w, const Mutation& m) {
  w.begin_object();
  w.key("op").value(to_string(m.op));
  switch (m.op) {
    case MutationOp::kAddVertex:
      if (m.count != 1) w.key("count").value(m.count);
      break;
    case MutationOp::kRemoveVertex:
      w.key("v").value(m.v);
      break;
    case MutationOp::kAddEdge:
    case MutationOp::kRemoveEdge:
      w.key("u").value(m.u);
      w.key("v").value(m.v);
      break;
  }
  w.end_object();
}

std::string patch_to_json_line(const Patch& patch) {
  io::JsonWriter w;
  w.begin_object();
  w.key("patch").begin_array();
  for (const Mutation& m : patch.mutations) append_mutation_json(w, m);
  w.end_array();
  if (!patch.label.empty()) w.key("label").value(patch.label);
  w.end_object();
  return w.str();
}

}  // namespace graphio::stream
