// DynamicComponents — weakly-connected components of a DynamicGraph,
// maintained incrementally across patches.
//
// The per-component spectral pipeline (core/spectral_pipeline.hpp) made
// spectra component-local; for a stream of patches the remaining cost is
// knowing *which* components a patch touched, so everything else can be
// served from the fingerprint-keyed component cache. This structure keeps
// that set exact and cheap:
//
//  - insertions (add_vertex / add_edge) update labels by weighted union —
//    the smaller component's vertices relabel into the larger, the
//    classic union-find-by-size bound (each vertex relabels O(log n)
//    times across a patch history);
//  - deletions (remove_edge / remove_vertex) cannot be resolved locally
//    (the component may or may not split), so the touched component is
//    queued and flush() rebuilds just the queued components by a BFS over
//    their own vertices — an epoch-style partial rebuild that never
//    touches clean components.
//
// Every component whose *content* changed this patch (membership or any
// internal edge) lands in dirty(), even when its vertex set is unchanged;
// clean components keep their id, membership, and — because external ids
// are stable and subgraph extraction is order-deterministic — their
// content fingerprint, which is exactly what StreamSession needs to reuse
// their cached spectra.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/graph/digraph.hpp"
#include "graphio/stream/dynamic_graph.hpp"

namespace graphio::stream {

class DynamicComponents {
 public:
  DynamicComponents() = default;
  /// Full decomposition of the current graph (one BFS epoch over all).
  explicit DynamicComponents(const DynamicGraph& g) { reset(g); }

  void reset(const DynamicGraph& g);

  /// Starts a patch: clears the dirty set (the rebuild queue carries over
  /// only within a patch; flush() must have been called before) and
  /// starts the inverse-mutation journal backing rollback_patch().
  void begin_patch();

  /// Reverts every notification since begin_patch() — labels, membership
  /// lists, slot liveness, dirty/rebuild queues — in O(state the patch
  /// touched). Only valid before flush() (mutations can only fail while
  /// they are being applied; flush() commits the patch and drops the
  /// journal).
  void rollback_patch();

  // Mutation notifications, called after the DynamicGraph applied the
  // mutation (labels read the post-mutation adjacency only in flush()).
  void on_add_vertex(VertexId v);
  void on_add_edge(VertexId u, VertexId v);
  void on_remove_edge(VertexId u, VertexId v);
  /// Called *before* the graph removes v (the membership of v's component
  /// still includes v at call time).
  void on_remove_vertex(VertexId v);

  /// Resolves queued deletions by partially rebuilding only the touched
  /// components; afterwards labels are exact. Components created by a
  /// split keep ids deterministic (the split component's id goes to the
  /// piece containing its smallest vertex; new pieces get fresh ids in
  /// ascending smallest-vertex order).
  void flush(const DynamicGraph& g);

  /// Alive component count (valid after flush()).
  [[nodiscard]] int count() const noexcept { return alive_count_; }

  /// Ascending ids of the alive components.
  [[nodiscard]] std::vector<int> component_ids() const;

  /// Ids of components whose content changed since begin_patch(),
  /// ascending. Dead components (fully removed or absorbed by a merge)
  /// are not listed — they have no spectrum to solve.
  [[nodiscard]] std::vector<int> dirty() const;

  /// Component id of an alive vertex.
  [[nodiscard]] int component_of(VertexId v) const;

  /// True when `c` currently names an alive component.
  [[nodiscard]] bool alive(int c) const noexcept {
    return c >= 0 && static_cast<std::size_t>(c) < slots_.size() &&
           slots_[static_cast<std::size_t>(c)].alive;
  }

  /// External ids of component c, ascending.
  [[nodiscard]] const std::vector<VertexId>& vertices_of(int c) const;

  /// The induced subgraph of component c: local ids in ascending
  /// external-id order, adjacency-list order preserved — bit-identical
  /// (same content fingerprint) to WeakComponents::subgraph of the
  /// materialized graph, which is how cached component spectra stay valid
  /// across patches. When non-null, `external_of_local` receives the
  /// external id of each local vertex.
  [[nodiscard]] Digraph subgraph(
      const DynamicGraph& g, int c,
      std::vector<VertexId>* external_of_local = nullptr) const;

  /// Test hook: true when labels equal a from-scratch decomposition.
  [[nodiscard]] bool matches(const DynamicGraph& g) const;

 private:
  struct Slot {
    /// External ids; ascending whenever `sorted`. Merges append the
    /// smaller side unsorted (O(|smaller|)) and flush() restores order
    /// with one sort per dirty component, so a k-mutation patch never
    /// pays O(k · |component|) in list copies.
    std::vector<VertexId> vertices;
    bool alive = false;
    bool sorted = true;
  };

  /// One journaled structural change. Flag/queue state needs no per-op
  /// records (a patch starts with empty queues and all flags down, so
  /// rollback just clears the members the lists name), and neither do
  /// patch-added vertex labels (ids are append-only, so the final
  /// component_of_ resize drops them).
  struct Undo {
    enum class Kind {
      kNewSlot,  ///< a slot was appended (add_vertex, split pieces)
      kMerge,    ///< `moved` vertices were appended from `drop` to `keep`
      kErase     ///< v was erased from slot c at `pos` (remove_vertex)
    };
    Kind kind;
    VertexId v = -1;
    int c = -1;      ///< kMerge: keep; kErase: slot
    int drop = -1;   ///< kMerge: the absorbed slot
    std::size_t moved = 0;  ///< kMerge: appended vertex count
    bool kept_was_sorted = false;   ///< kMerge
    bool drop_was_sorted = false;   ///< kMerge
    std::size_t pos = 0;            ///< kErase: erased index
    bool slot_died = false;         ///< kErase: the erase emptied the slot
  };

  int new_slot();
  void mark_dirty(int c);
  void queue_rebuild(int c);

  std::vector<Slot> slots_;
  std::vector<int> component_of_;  ///< by external id; -1 for dead ids
  std::vector<bool> dirty_flag_;   ///< by slot id
  std::vector<int> dirty_list_;
  std::vector<bool> rebuild_flag_;  ///< by slot id
  std::vector<int> rebuild_list_;
  int alive_count_ = 0;
  bool journaling_ = false;
  std::vector<Undo> journal_;
  int journal_alive_count_ = 0;          ///< alive_count_ at begin_patch
  std::size_t journal_label_size_ = 0;   ///< component_of_.size() at begin
};

}  // namespace graphio::stream
