#include "graphio/stream/dynamic_graph.hpp"

#include <algorithm>
#include <utility>

#include "graphio/support/contracts.hpp"

namespace graphio::stream {

namespace {

/// Erases one occurrence of `value` (the last, so the common remove-then-
/// re-add pattern stays cheap); returns false when absent.
bool erase_one(std::vector<VertexId>& list, VertexId value) {
  const auto it = std::find(list.rbegin(), list.rend(), value);
  if (it == list.rend()) return false;
  list.erase(std::next(it).base());
  return true;
}

}  // namespace

DynamicGraph::DynamicGraph(const Digraph& g) {
  const std::int64_t n = g.num_vertices();
  out_.resize(static_cast<std::size_t>(n));
  in_.resize(static_cast<std::size_t>(n));
  alive_.assign(static_cast<std::size_t>(n), true);
  names_.resize(static_cast<std::size_t>(n));
  num_alive_ = n;
  num_edges_ = g.num_edges();
  for (VertexId v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    out_[i].assign(g.children(v).begin(), g.children(v).end());
    in_[i].assign(g.parents(v).begin(), g.parents(v).end());
    if (!g.name(v).empty()) names_[i] = g.name(v);
  }
}

void DynamicGraph::check_alive(VertexId v, const char* role) const {
  GIO_EXPECTS_MSG(v >= 0 && v < id_limit(),
                  std::string(role) + " vertex " + std::to_string(v) +
                      " does not exist (ids allocated: " +
                      std::to_string(id_limit()) + ")");
  GIO_EXPECTS_MSG(alive_[static_cast<std::size_t>(v)],
                  std::string(role) + " vertex " + std::to_string(v) +
                      " was removed");
}

VertexId DynamicGraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  alive_.push_back(true);
  names_.emplace_back();
  ++num_alive_;
  return id_limit() - 1;
}

void DynamicGraph::remove_vertex(VertexId v) {
  check_alive(v, "removed");
  const auto i = static_cast<std::size_t>(v);
  // Drop every incident multiplicity from the neighbors' mirror lists —
  // one erase per list occurrence, so parallel edges come out exactly.
  // Self-loops cannot exist, so v never appears in its own lists.
  num_edges_ -= static_cast<std::int64_t>(out_[i].size() + in_[i].size());
  for (VertexId w : out_[i]) {
    const bool mirrored = erase_one(in_[static_cast<std::size_t>(w)], v);
    GIO_ASSERT(mirrored);
    (void)mirrored;
  }
  for (VertexId w : in_[i]) {
    const bool mirrored = erase_one(out_[static_cast<std::size_t>(w)], v);
    GIO_ASSERT(mirrored);
    (void)mirrored;
  }
  out_[i].clear();
  out_[i].shrink_to_fit();
  in_[i].clear();
  in_[i].shrink_to_fit();
  names_[i].clear();
  alive_[i] = false;
  --num_alive_;
}

void DynamicGraph::add_edge(VertexId u, VertexId v) {
  check_alive(u, "edge source");
  check_alive(v, "edge target");
  GIO_EXPECTS_MSG(u != v, "self-loops are not allowed");
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
}

void DynamicGraph::remove_edge(VertexId u, VertexId v) {
  check_alive(u, "edge source");
  check_alive(v, "edge target");
  GIO_EXPECTS_MSG(erase_one(out_[static_cast<std::size_t>(u)], v),
                  "edge " + std::to_string(u) + " -> " + std::to_string(v) +
                      " does not exist");
  const bool mirrored = erase_one(in_[static_cast<std::size_t>(v)], u);
  GIO_ASSERT(mirrored);
  (void)mirrored;
  --num_edges_;
}

std::span<const VertexId> DynamicGraph::children(VertexId v) const {
  check_alive(v, "queried");
  return out_[static_cast<std::size_t>(v)];
}

std::span<const VertexId> DynamicGraph::parents(VertexId v) const {
  check_alive(v, "queried");
  return in_[static_cast<std::size_t>(v)];
}

void DynamicGraph::set_name(VertexId v, std::string name) {
  check_alive(v, "named");
  names_[static_cast<std::size_t>(v)] = std::move(name);
}

const std::string& DynamicGraph::name(VertexId v) const {
  check_alive(v, "queried");
  return names_[static_cast<std::size_t>(v)];
}

Digraph DynamicGraph::materialize(
    std::vector<VertexId>* external_of_local) const {
  std::vector<VertexId> local_of(static_cast<std::size_t>(id_limit()), -1);
  if (external_of_local != nullptr) {
    external_of_local->clear();
    external_of_local->reserve(static_cast<std::size_t>(num_alive_));
  }
  VertexId next = 0;
  for (VertexId v = 0; v < id_limit(); ++v) {
    if (!alive_[static_cast<std::size_t>(v)]) continue;
    local_of[static_cast<std::size_t>(v)] = next++;
    if (external_of_local != nullptr) external_of_local->push_back(v);
  }
  Digraph g(num_alive_);
  for (VertexId v = 0; v < id_limit(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (!alive_[i]) continue;
    const VertexId lv = local_of[i];
    for (VertexId w : out_[i])
      g.add_edge(lv, local_of[static_cast<std::size_t>(w)]);
    if (!names_[i].empty()) g.set_name(lv, names_[i]);
  }
  return g;
}

}  // namespace graphio::stream
